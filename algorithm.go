package hzccl

import (
	"hzccl/internal/cluster"
	"hzccl/internal/core"
	"hzccl/internal/costmodel"
	"hzccl/internal/telemetry"
)

// Algorithm selects which collective schedule Allreduce and ReduceScatter
// run. Every algorithm is implemented for all three backends, so a
// DegradePolicy ladder applies unchanged whichever algorithm is selected.
type Algorithm = core.Algorithm

// Algorithms. The zero value is the ring, preserving the behavior of all
// code written before algorithm selection existed.
const (
	// AlgoRing is the bandwidth-optimal ring schedule (the default).
	AlgoRing = core.AlgoRing
	// AlgoRecursiveDoubling exchanges full vectors pairwise over log₂N
	// rounds — latency-optimal, wins small messages.
	AlgoRecursiveDoubling = core.AlgoRecursiveDoubling
	// AlgoRabenseifner is recursive-halving reduce-scatter plus
	// recursive-doubling allgather (the schedule CollectiveOptions.
	// Recursive selected before algorithms were first-class).
	AlgoRabenseifner = core.AlgoRabenseifner
	// AlgoHierarchical is the two-level topology-aware schedule; node
	// grouping comes from ClusterConfig.Topology.
	AlgoHierarchical = core.AlgoHierarchical
	// AlgoAuto lets the (α, β) cost model pick per message size, world
	// size, backend and topology; the choice is recorded in
	// RunResult.AlgoChoices.
	AlgoAuto = core.AlgoAuto
)

// ParseAlgorithm parses the CLI spellings of an algorithm name
// (ring | rd | rabenseifner | hierarchical | auto).
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Topology groups ranks into "nodes" for AlgoHierarchical; set it as
// ClusterConfig.Topology. Nil means one flat node holding every rank.
type Topology = cluster.Topology

// UniformTopology returns a topology of `nodes` nodes of `perNode` ranks.
func UniformTopology(nodes, perNode int) *Topology { return cluster.UniformTopology(nodes, perNode) }

// ParseTopology parses "8x4" (8 nodes of 4) or "3,5,8" (explicit sizes).
func ParseTopology(s string) (*Topology, error) { return cluster.ParseTopology(s) }

// ModelRates holds calibrated component throughputs in raw bytes/second,
// used both to charge modeled virtual time for compute
// (CollectiveOptions.Rates) and to drive AlgoAuto's selection.
type ModelRates = core.Rates

// DefaultAutoRates are the component throughputs AlgoAuto assumes when
// CollectiveOptions.Rates is nil: single-thread fZ-light-class numbers
// (≈1 GB/s compress, 2 GB/s decompress, 8 GB/s raw sum, 6 GB/s
// homomorphic add). Being package constants, the auto choice is
// deterministic for a given shape.
var DefaultAutoRates = ModelRates{CPR: 1e9, DPR: 2e9, CPT: 8e9, HPR: 6e9}

// defaultAutoRatio is the compression ratio the auto model assumes for
// the compressed backends' wire bytes.
const defaultAutoRatio = 4.0

// AlgoChoice records which algorithm one collective call ran with.
type AlgoChoice struct {
	// Rank is the rank recording the choice (every rank resolves
	// identically; each records its own entry).
	Rank int
	// Op names the collective ("allreduce", "reduce_scatter").
	Op string
	// Backend is the backend the call ran under.
	Backend Backend
	// Algorithm is the fixed algorithm that actually executed.
	Algorithm Algorithm
	// Auto is true when the algorithm was resolved from AlgoAuto.
	Auto bool
	// ModeledSeconds is the cost model's prediction for the chosen
	// algorithm (auto resolutions only; 0 otherwise).
	ModeledSeconds float64
}

// Per-algorithm selection counters, plus one for auto resolutions.
var (
	mAlgoRing         = telemetry.C("collective.algo.ring")
	mAlgoRD           = telemetry.C("collective.algo.rd")
	mAlgoRab          = telemetry.C("collective.algo.rabenseifner")
	mAlgoHier         = telemetry.C("collective.algo.hierarchical")
	mAlgoAutoResolved = telemetry.C("collective.algo.auto_resolved")
)

func countAlgo(algo Algorithm, auto bool) {
	switch algo {
	case AlgoRecursiveDoubling:
		mAlgoRD.Inc()
	case AlgoRabenseifner:
		mAlgoRab.Inc()
	case AlgoHierarchical:
		mAlgoHier.Inc()
	default:
		mAlgoRing.Inc()
	}
	if auto {
		mAlgoAutoResolved.Inc()
	}
}

// resolveAlgorithm maps the requested algorithm to the fixed one that
// will run: the legacy Recursive flag upgrades the default ring to
// Rabenseifner for the backends that historically supported it, and
// AlgoAuto asks the cost model. The resolution is recorded (per rank) in
// RunResult.AlgoChoices and the collective.algo.* counters.
func (r *Rank) resolveAlgorithm(op string, b Backend, opt CollectiveOptions, dataLen int) Algorithm {
	algo := opt.Algorithm
	// The legacy Recursive flag only ever switched the allreduce schedule
	// (reduce-scatter always rang), and only for the backends that
	// historically supported it.
	if algo == AlgoRing && opt.Recursive && op == "allreduce" && (b == BackendMPI || b == BackendHZCCL) {
		algo = AlgoRabenseifner
	}
	auto := algo == AlgoAuto
	var modeled float64
	if auto {
		algo, modeled = r.chooseAlgorithm(op, b, opt, dataLen)
	}
	countAlgo(algo, auto)
	if r.rec != nil {
		r.rec.recordChoice(AlgoChoice{
			Rank: r.ID(), Op: op, Backend: b,
			Algorithm: algo, Auto: auto, ModeledSeconds: modeled,
		})
	}
	return algo
}

// chooseAlgorithm resolves AlgoAuto deterministically: component
// throughputs from CollectiveOptions.Rates (or DefaultAutoRates), α/β
// from the cluster configuration, topology shape from
// ClusterConfig.Topology.
func (r *Rank) chooseAlgorithm(op string, b Backend, opt CollectiveOptions, dataLen int) (Algorithm, float64) {
	cfg := r.r.Config()
	th := DefaultAutoRates
	if opt.Rates != nil {
		th = *opt.Rates
	}
	rates := costmodel.Rates{
		CPR: th.CPR, DPR: th.DPR, CPT: th.CPT, HPR: th.HPR,
		Ratio: defaultAutoRatio,
		Alpha: cfg.Latency.Seconds(),
		Beta:  cfg.BandwidthBytes,
	}
	topo := costmodel.FlatTopo(r.Size())
	if t := cfg.Topology; t != nil {
		topo = costmodel.Topo{Nodes: t.Nodes(), MaxNode: t.MaxNodeSize()}
	}
	cb := costmodel.Plain
	switch b {
	case BackendCColl:
		cb = costmodel.CColl
	case BackendHZCCL:
		cb = costmodel.HZCCL
	}
	bytes := float64(4 * dataLen)
	if op == "reduce_scatter" {
		return rates.ChooseReduceScatter(cb, r.Size(), bytes, topo)
	}
	return rates.ChooseAllreduce(cb, r.Size(), bytes, topo)
}

// dispatchAllreduce runs the resolved (backend, algorithm) pair.
func (r *Rank) dispatchAllreduce(c core.Collectives, b Backend, algo Algorithm, opt CollectiveOptions, data []float32) ([]float32, error) {
	switch b {
	case BackendCColl:
		switch algo {
		case AlgoRecursiveDoubling:
			return c.AllreduceCCollRD(r.r, data)
		case AlgoRabenseifner:
			return c.AllreduceCCollRecursive(r.r, data)
		case AlgoHierarchical:
			return c.AllreduceHierCColl(r.r, data)
		default:
			if opt.Segments > 1 {
				return c.AllreduceCCollSegmented(r.r, data)
			}
			return c.AllreduceCColl(r.r, data)
		}
	case BackendHZCCL:
		var out []float32
		var err error
		switch algo {
		case AlgoRecursiveDoubling:
			out, _, err = c.AllreduceHZRD(r.r, data)
		case AlgoRabenseifner:
			out, _, err = c.AllreduceHZRecursive(r.r, data)
		case AlgoHierarchical:
			out, _, err = c.AllreduceHierHZ(r.r, data)
		default:
			out, _, err = c.AllreduceHZ(r.r, data)
		}
		return out, err
	default:
		switch algo {
		case AlgoRecursiveDoubling:
			return c.AllreducePlainRD(r.r, data)
		case AlgoRabenseifner:
			return c.AllreducePlainRecursive(r.r, data)
		case AlgoHierarchical:
			return c.AllreduceHierPlain(r.r, data)
		default:
			return c.AllreducePlain(r.r, data)
		}
	}
}

// dispatchReduceScatter runs the resolved (backend, algorithm) pair for
// the reduce-scatter op. The rd and rabenseifner schedules have no native
// reduce-scatter; they run the allreduce and slice out the owned block
// (the cost model prices them accordingly).
func (r *Rank) dispatchReduceScatter(c core.Collectives, b Backend, algo Algorithm, opt CollectiveOptions, data []float32) ([]float32, error) {
	switch algo {
	case AlgoRecursiveDoubling, AlgoRabenseifner:
		full, err := r.dispatchAllreduce(c, b, algo, opt, data)
		if err != nil {
			return nil, err
		}
		_, s, e := r.OwnedBlock(len(data))
		out := make([]float32, e-s)
		copy(out, full[s:e])
		return out, nil
	case AlgoHierarchical:
		switch b {
		case BackendCColl:
			return c.ReduceScatterHierCColl(r.r, data)
		case BackendHZCCL:
			out, _, err := c.ReduceScatterHierHZ(r.r, data)
			return out, err
		default:
			return c.ReduceScatterHierPlain(r.r, data)
		}
	default:
		switch b {
		case BackendCColl:
			if opt.Segments > 1 {
				return c.ReduceScatterCCollSegmented(r.r, data)
			}
			return c.ReduceScatterCColl(r.r, data)
		case BackendHZCCL:
			out, _, err := c.ReduceScatterHZ(r.r, data)
			return out, err
		default:
			return c.ReduceScatterPlain(r.r, data)
		}
	}
}
