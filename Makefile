GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check runs the hygiene gate: gofmt, go vet, and a race-detector pass
# over the packages with concurrent hot paths (telemetry counters, the
# cluster runtime, the parallel reducers).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x ./...
