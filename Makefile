GO ?= go

.PHONY: build test check bench bench-all fuzz conformance chaos soak tcp-smoke scaling

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check runs the hygiene gate: gofmt, go vet, and a race-detector pass
# over the packages with concurrent hot paths (telemetry counters, the
# cluster runtime, the parallel reducers).
check:
	sh scripts/check.sh

# bench runs the hot-path gate (Fig. 6, Table V, Fig. 8 and the
# steady-state zero-allocation benches) and writes BENCH_hotpaths.json;
# it fails if the steady-state homomorphic add allocates. bench-all is
# the old full sweep: every benchmark once, no JSON.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench . -benchtime 1x ./...

# fuzz runs every native fuzz target for FUZZTIME each (default 10s, a
# CI smoke; FUZZTIME=5m makes it a real session). Committed seed corpora
# under */testdata/fuzz/ always replay as part of `make test`.
fuzz:
	sh scripts/fuzz.sh

# conformance runs the differential oracles: in-repo unit/edge-shape
# suites plus the CLI gate over the synthetic dataset catalog.
conformance:
	$(GO) test ./internal/conformance ./internal/core -run 'Oracle|Conformance|EdgeShapes' -count=1
	$(GO) run ./cmd/hzccl-conformance

# chaos exercises the self-healing transport: race-enabled robustness
# suites (reliable delivery, degradation, chaos schedules), then the
# conformance oracle and a demo Allreduce on a seeded faulty fabric.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Reliable|Degrad|Barrier|Agree|Corrupt|Fault' . ./internal/cluster ./internal/conformance
	$(GO) run ./cmd/hzccl-conformance -oracles collective -ranks 4 -n 32768 -chaos 1 -chaos-rate 0.05
	$(GO) run ./cmd/hzccl-collective -chaos 5 -nodes 6 -message 262144

# soak runs the elastic-membership chaos soak race-enabled: SOAK_ITERS
# iterations (default 25 here, 3 under plain `make test`), each killing a
# seeded random rank mid-Allreduce and checking the survivors shrink,
# finish under the cooperative-abort deadline, and match a fresh
# shrunken-world run bitwise. SOAK_SEED overrides the seed; a failure
# message includes it for replay. The membership/shrink unit suites run
# first under the race detector.
soak:
	$(GO) test -race -count=1 -run 'Agree|Shrink|Membership|ConnReset' ./internal/cluster ./internal/conformance
	SOAK_ITERS=$${SOAK_ITERS:-25} $(GO) test -race -count=1 -run 'TestShrinkSoak' -v .

# tcp-smoke runs a 4-rank hZCCL Allreduce as 4 real OS processes over
# loopback TCP and verifies the result digest is bitwise identical to the
# in-process fabric, plus the transport and daemon unit tests under the
# race detector. Each script run also boots the hzccl-serve daemon and
# submits concurrent jobs over one mesh handshake.
tcp-smoke:
	$(GO) test -race -count=1 -run 'TestTCP' ./internal/cluster
	$(GO) test -race -count=1 ./serve
	sh scripts/tcp_smoke.sh
	sh scripts/tcp_smoke.sh 65536 mpi
	sh scripts/tcp_smoke.sh 65536 hzccl hierarchical 2x2

# scaling runs the paper-scale virtual-time sweep: every algorithm
# (ring, rd, rabenseifner, hierarchical, auto) x flavor at the worlds in
# SCALING_WORLDS (default 8,64; the full paper scale is 8,64,128,512),
# checked bit-identically against a float64 oracle, plus the cost-model
# unit suite that pins the auto-selector's crossover points.
scaling:
	SCALING_WORLDS=$${SCALING_WORLDS:-8,64,128,512} $(GO) test -count=1 -run 'TestScalingSweep' -v .
	$(GO) test -count=1 ./internal/costmodel
