package hzccl_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hzccl"
)

func sineField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = float32(math.Sin(float64(i)*0.01) + v)
	}
	return out
}

func TestPublicCompressRoundTrip(t *testing.T) {
	data := sineField(10000, 1)
	comp, err := hzccl.Compress(data, hzccl.Params{ErrorBound: 1e-3, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hzccl.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(got[i])); d > 1e-3+1e-6 {
			t.Fatalf("error %g at %d", d, i)
		}
	}
	dst := make([]float32, len(data))
	if err := hzccl.DecompressInto(comp, dst); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != dst[i] {
			t.Fatal("DecompressInto differs from Decompress")
		}
	}
}

func TestPublicInfo(t *testing.T) {
	data := sineField(10000, 2)
	comp, err := hzccl.Compress(data, hzccl.Params{ErrorBound: 1e-2, Threads: 3, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	info, err := hzccl.Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	if info.ErrorBound != 1e-2 || info.BlockSize != 32 || info.Threads != 3 || info.DataLen != 10000 {
		t.Fatalf("info mismatch: %+v", info)
	}
	if info.Ratio <= 1 {
		t.Fatalf("suspicious ratio %g", info.Ratio)
	}
	if info.CompressedBytes != len(comp) {
		t.Fatal("compressed size mismatch")
	}
	if _, err := hzccl.Info([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestPublicHomomorphicAdd(t *testing.T) {
	a := sineField(5000, 3)
	b := sineField(5000, 4)
	p := hzccl.Params{ErrorBound: 1e-3}
	ca, _ := hzccl.Compress(a, p)
	cb, _ := hzccl.Compress(b, p)
	sum, st, err := hzccl.HomomorphicAddWithStats(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks == 0 || st.BothConstant+st.LeftConstant+st.RightConstant+st.BothEncoded != st.Blocks {
		t.Fatalf("inconsistent stats %+v", st)
	}
	got, err := hzccl.Decompress(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := float64(a[i]) + float64(b[i])
		if d := math.Abs(float64(got[i]) - want); d > 2e-3+1e-6 {
			t.Fatalf("sum error %g at %d", d, i)
		}
	}
	static, err := hzccl.StaticHomomorphicAdd(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := hzccl.HomomorphicAdd(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if string(static) != string(sum2) || string(sum) != string(sum2) {
		t.Fatal("static/dynamic homomorphic adds disagree")
	}
}

func TestPublicHomomorphicScale(t *testing.T) {
	a := sineField(3000, 5)
	ca, _ := hzccl.Compress(a, hzccl.Params{ErrorBound: 1e-3})
	scaled, err := hzccl.HomomorphicScale(ca, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := hzccl.Decompress(scaled)
	base, _ := hzccl.Decompress(ca)
	for i := range got {
		want := 3 * float64(base[i])
		if d := math.Abs(float64(got[i]) - want); d > 1e-5*math.Abs(want)+1e-9 {
			t.Fatalf("scale error %g at %d", d, i)
		}
	}
}

func TestPublicClusterAllreduce(t *testing.T) {
	const nRanks, n = 4, 4096
	exact := make([]float64, n)
	fields := make([][]float32, nRanks)
	for r := range fields {
		fields[r] = sineField(n, 100+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendCColl, hzccl.BackendHZCCL} {
		outs := make([][]float32, nRanks)
		res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nRanks}, func(r *hzccl.Rank) error {
			out, err := r.Allreduce(fields[r.ID()], backend, hzccl.CollectiveOptions{ErrorBound: 1e-3})
			outs[r.ID()] = out
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if res.Seconds <= 0 {
			t.Fatalf("%v: no time elapsed", backend)
		}
		for rk, out := range outs {
			for i := range out {
				if d := math.Abs(float64(out[i]) - exact[i]); d > 0.02 {
					t.Fatalf("%v rank %d: error %g at %d", backend, rk, d, i)
				}
			}
		}
	}
}

func TestPublicClusterReduceScatter(t *testing.T) {
	const nRanks, n = 4, 1000
	fields := make([][]float32, nRanks)
	exact := make([]float64, n)
	for r := range fields {
		fields[r] = sineField(n, 200+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	outs := make([][]float32, nRanks)
	starts := make([]int, nRanks)
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nRanks}, func(r *hzccl.Rank) error {
		out, err := r.ReduceScatter(fields[r.ID()], hzccl.BackendHZCCL, hzccl.CollectiveOptions{ErrorBound: 1e-3})
		if err != nil {
			return err
		}
		_, s, e := r.OwnedBlock(n)
		if len(out) != e-s {
			t.Errorf("rank %d: block length %d want %d", r.ID(), len(out), e-s)
		}
		outs[r.ID()] = out
		starts[r.ID()] = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, out := range outs {
		for i := range out {
			if d := math.Abs(float64(out[i]) - exact[starts[rk]+i]); d > 0.02 {
				t.Fatalf("rank %d: error %g", rk, d)
			}
		}
	}
}

func TestPublicSendRecvBarrier(t *testing.T) {
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 2}, func(r *hzccl.Rank) error {
		if r.Size() != 2 {
			t.Errorf("size %d", r.Size())
		}
		r.Barrier()
		if r.ID() == 0 {
			return r.Send(1, []byte{42})
		}
		got, err := r.Recv(0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := hzccl.Compress([]float32{1}, hzccl.Params{}); err == nil {
		t.Error("zero error bound accepted")
	}
	if _, err := hzccl.Decompress(nil); err == nil {
		t.Error("nil container accepted")
	}
	a, _ := hzccl.Compress([]float32{1, 2, 3}, hzccl.Params{ErrorBound: 1e-3})
	b, _ := hzccl.Compress([]float32{1, 2, 3, 4}, hzccl.Params{ErrorBound: 1e-3})
	if _, err := hzccl.HomomorphicAdd(a, b); err == nil {
		t.Error("geometry mismatch accepted")
	}
	if _, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 0}, func(*hzccl.Rank) error { return nil }); err == nil {
		t.Error("zero ranks accepted")
	}
	wantErr := errors.New("rank failure")
	if _, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 2}, func(r *hzccl.Rank) error {
		if r.ID() == 1 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("rank error not propagated: %v", err)
	}
}

func TestBackendString(t *testing.T) {
	if hzccl.BackendMPI.String() != "MPI" || hzccl.BackendCColl.String() != "C-Coll" ||
		hzccl.BackendHZCCL.String() != "hZCCL" || hzccl.Backend(99).String() != "unknown" {
		t.Fatal("backend strings wrong")
	}
}

func TestPublicHomomorphicSubAndFold(t *testing.T) {
	a := sineField(2000, 50)
	b := sineField(2000, 51)
	p := hzccl.Params{ErrorBound: 1e-3}
	ca, _ := hzccl.Compress(a, p)
	cb, _ := hzccl.Compress(b, p)
	diff, err := hzccl.HomomorphicSub(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := hzccl.Decompress(diff)
	for i := range got {
		want := float64(a[i]) - float64(b[i])
		if d := math.Abs(float64(got[i]) - want); d > 2e-3+1e-6 {
			t.Fatalf("sub error %g", d)
		}
	}
	sum, st, err := hzccl.HomomorphicFold([][]byte{ca, cb, ca})
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks == 0 {
		t.Fatal("fold stats empty")
	}
	got, _ = hzccl.Decompress(sum)
	for i := range got {
		want := 2*float64(a[i]) + float64(b[i])
		if d := math.Abs(float64(got[i]) - want); d > 3e-3+1e-6 {
			t.Fatalf("fold error %g", d)
		}
	}
}

func TestPublicCompress2D(t *testing.T) {
	h, w := 48, 32
	data := make([]float32, h*w)
	for i := range data {
		data[i] = float32(math.Sin(float64(i%w)*0.2) + float64(i/w)*0.01)
	}
	comp, err := hzccl.Compress2D(data, h, w, hzccl.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hzccl.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(got[i])); d > 1e-3+1e-6 {
			t.Fatalf("2D round trip error %g", d)
		}
	}
	sum, err := hzccl.HomomorphicAdd(comp, comp)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := hzccl.Decompress(sum)
	for i := range ds {
		want := 2 * float64(got[i])
		if d := math.Abs(float64(ds[i]) - want); d > 1e-6 {
			t.Fatalf("2D homomorphic add error %g", d)
		}
	}
}

func TestPublicCompress3D(t *testing.T) {
	d, h, w := 8, 16, 16
	data := make([]float32, d*h*w)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				data[(z*h+y)*w+x] = float32(math.Sin(float64(x)*0.2)*math.Cos(float64(y)*0.3) + float64(z)*0.1)
			}
		}
	}
	comp, err := hzccl.Compress3D(data, d, h, w, hzccl.Params{ErrorBound: 1e-3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hzccl.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if dv := math.Abs(float64(data[i]) - float64(got[i])); dv > 1e-3+1e-6 {
			t.Fatalf("3D round trip error %g", dv)
		}
	}
	sum, err := hzccl.HomomorphicAdd(comp, comp)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := hzccl.Decompress(sum)
	for i := range ds {
		if dv := math.Abs(float64(ds[i]) - 2*float64(got[i])); dv > 1e-6 {
			t.Fatalf("3D homomorphic add error %g", dv)
		}
	}
	info, err := hzccl.Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	if info.DataLen != d*h*w {
		t.Fatalf("info %+v", info)
	}
}

func TestPublicCompress64(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = math.Sin(float64(i) * 0.001)
	}
	comp, err := hzccl.Compress64(data, hzccl.Params{ErrorBound: 1e-8, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hzccl.Decompress64(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := math.Abs(data[i] - got[i]); d > 1e-8*(1+1e-9) {
			t.Fatalf("f64 error %g", d)
		}
	}
	sum, err := hzccl.HomomorphicAdd(comp, comp)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := hzccl.Decompress64(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if d := math.Abs(ds[i] - 2*got[i]); d > 1e-12 {
			t.Fatalf("f64 homomorphic add error %g", d)
		}
	}
	dst := make([]float64, len(data))
	if err := hzccl.DecompressInto64(comp, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := hzccl.Decompress(comp); err == nil {
		t.Fatal("float32 decode of float64 container accepted")
	}
}

func TestChecksumFrame(t *testing.T) {
	data := sineField(1000, 99)
	comp, err := hzccl.Compress(data, hzccl.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	frame := hzccl.AddChecksum(comp)
	inner, err := hzccl.VerifyChecksum(frame)
	if err != nil {
		t.Fatal(err)
	}
	if string(inner) != string(comp) {
		t.Fatal("frame round trip altered payload")
	}
	if _, err := hzccl.Decompress(inner); err != nil {
		t.Fatal(err)
	}
	// every single-byte corruption must be detected
	for pos := 0; pos < len(frame); pos += 7 {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x5A
		if _, err := hzccl.VerifyChecksum(bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", pos)
		}
	}
	if _, err := hzccl.VerifyChecksum(nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	if _, err := hzccl.VerifyChecksum([]byte("FZLCxxx")); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestPublicBreakdownSharesOrder(t *testing.T) {
	res := &hzccl.RunResult{Breakdown: map[string]float64{
		"MPI": 3, "CPR": 1, "OTHER": 0.5, "DPR": 0.5,
	}}
	shares := res.BreakdownShares()
	wantOrder := []string{"CPR", "DPR", "CPT", "HPR", "MPI", "OTHER"}
	if len(shares) != len(wantOrder) {
		t.Fatalf("got %d shares, want %d", len(shares), len(wantOrder))
	}
	totalFrac := 0.0
	for i, s := range shares {
		if s.Category != wantOrder[i] {
			t.Fatalf("share %d is %s, want %s", i, s.Category, wantOrder[i])
		}
		totalFrac += s.Fraction
	}
	if math.Abs(totalFrac-1) > 1e-12 {
		t.Fatalf("fractions sum to %g, want 1", totalFrac)
	}
	if shares[4].Seconds != 3 || shares[4].Fraction != 0.6 {
		t.Fatalf("MPI share = %+v", shares[4])
	}
}
