package hzccl_test

import (
	"math"
	"testing"

	"hzccl"
)

func TestPublicBroadcast(t *testing.T) {
	const nRanks, n = 5, 2000
	src := sineField(n, 60)
	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendHZCCL} {
		outs := make([][]float32, nRanks)
		_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nRanks}, func(r *hzccl.Rank) error {
			buf := src
			if r.ID() != 2 {
				buf = make([]float32, n) // non-root buffer, contents ignored
			}
			out, err := r.Broadcast(buf, 2, backend, hzccl.CollectiveOptions{ErrorBound: 1e-3})
			outs[r.ID()] = out
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		tol := 0.0
		if backend != hzccl.BackendMPI {
			tol = 1e-3 + 1e-6
		}
		for rk, out := range outs {
			for i := range out {
				if d := math.Abs(float64(out[i]) - float64(src[i])); d > tol {
					t.Fatalf("%v rank %d: err %g", backend, rk, d)
				}
			}
		}
	}
}

func TestPublicReduce(t *testing.T) {
	const nRanks, n = 6, 1500
	fields := make([][]float32, nRanks)
	exact := make([]float64, n)
	for r := range fields {
		fields[r] = sineField(n, 70+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendCColl, hzccl.BackendHZCCL} {
		var got []float32
		_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nRanks}, func(r *hzccl.Rank) error {
			out, err := r.Reduce(fields[r.ID()], 0, backend, hzccl.CollectiveOptions{ErrorBound: 1e-3})
			if r.ID() == 0 {
				got = out
			}
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if len(got) != n {
			t.Fatalf("%v: root got %d elems", backend, len(got))
		}
		for i := range got {
			if d := math.Abs(float64(got[i]) - exact[i]); d > 0.05 {
				t.Fatalf("%v: err %g at %d", backend, d, i)
			}
		}
	}
}

func TestPublicGatherAllgatherAlltoall(t *testing.T) {
	const nRanks, n = 4, 800
	fields := make([][]float32, nRanks)
	for r := range fields {
		fields[r] = sineField(n, 80+int64(r))
	}
	opt := hzccl.CollectiveOptions{ErrorBound: 1e-3}

	var rootGather [][]float32
	allgathers := make([][][]float32, nRanks)
	alltoalls := make([][][]float32, nRanks)
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nRanks}, func(r *hzccl.Rank) error {
		g, err := r.Gather(fields[r.ID()], 1, hzccl.BackendHZCCL, opt)
		if err != nil {
			return err
		}
		if r.ID() == 1 {
			rootGather = g
		}
		ag, err := r.Allgather(fields[r.ID()], hzccl.BackendCColl, opt)
		if err != nil {
			return err
		}
		allgathers[r.ID()] = ag
		at, err := r.Alltoall(fields[r.ID()], hzccl.BackendMPI, opt)
		if err != nil {
			return err
		}
		alltoalls[r.ID()] = at
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for origin, vals := range rootGather {
		for i := range vals {
			if d := math.Abs(float64(vals[i]) - float64(fields[origin][i])); d > 1e-3+1e-6 {
				t.Fatalf("gather origin %d err %g", origin, d)
			}
		}
	}
	for rk, all := range allgathers {
		for origin, vals := range all {
			tol := 1e-3 + 1e-6
			if origin == rk {
				tol = 0
			}
			for i := range vals {
				if d := math.Abs(float64(vals[i]) - float64(fields[origin][i])); d > tol {
					t.Fatalf("allgather rank %d origin %d err %g", rk, origin, d)
				}
			}
		}
	}
	for rk, blocks := range alltoalls {
		start := rk * (n / nRanks) // n divides evenly in this test
		for src, vals := range blocks {
			for i := range vals {
				if vals[i] != fields[src][start+i] {
					t.Fatalf("alltoall rank %d src %d differs", rk, src)
				}
			}
		}
	}
}

func TestPublicRecursiveAllreduce(t *testing.T) {
	const nRanks, n = 6, 2048
	fields := make([][]float32, nRanks)
	exact := make([]float64, n)
	for r := range fields {
		fields[r] = sineField(n, 90+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendHZCCL} {
		outs := make([][]float32, nRanks)
		_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nRanks}, func(r *hzccl.Rank) error {
			out, err := r.Allreduce(fields[r.ID()], backend,
				hzccl.CollectiveOptions{ErrorBound: 1e-3, Recursive: true})
			outs[r.ID()] = out
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		for rk, out := range outs {
			if len(out) != n {
				t.Fatalf("%v rank %d: %d elems", backend, rk, len(out))
			}
			for i := range out {
				if d := math.Abs(float64(out[i]) - exact[i]); d > 0.05 {
					t.Fatalf("%v rank %d: err %g", backend, rk, d)
				}
			}
		}
	}
}
