package hzccl_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"hzccl"
	"hzccl/internal/telemetry"
)

// TestChaosAllBackendsTolerant drives a ring allreduce on every backend
// through a fabric injecting well over 1% of drops, corruption bursts,
// duplicates and delays. With reliable delivery enabled the collective
// must complete with tolerance-correct results on all of them, and the
// recovery telemetry must show the self-healing actually happened.
func TestChaosAllBackendsTolerant(t *testing.T) {
	const nRanks, n = 4, 4096
	exact := make([]float64, n)
	fields := make([][]float32, nRanks)
	for r := range fields {
		fields[r] = sineField(n, 300+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	retx0 := telemetry.C("cluster.retransmits").Value()
	nack0 := telemetry.C("cluster.nacks").Value()
	dedup0 := telemetry.C("cluster.dedups").Value()

	totalFaults := int64(0)
	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendCColl, hzccl.BackendHZCCL} {
		chaos := hzccl.NewChaos(hzccl.ChaosSpec{
			Seed:            90 + int64(backend),
			DropRate:        0.06,
			CorruptRate:     0.06,
			DuplicateRate:   0.06,
			DelayRate:       0.06,
			MaxDelaySeconds: 20e-6,
		})
		outs := make([][]float32, nRanks)
		res, err := hzccl.RunCluster(hzccl.ClusterConfig{
			Ranks:       nRanks,
			Reliable:    true,
			RecvTimeout: 100 * time.Millisecond,
			Fault:       chaos.Fault(),
			Corrupt:     &hzccl.CorruptPattern{Spray: true, Burst: 2},
		}, func(r *hzccl.Rank) error {
			out, err := r.Allreduce(fields[r.ID()], backend, hzccl.CollectiveOptions{ErrorBound: 1e-3})
			outs[r.ID()] = out
			return err
		})
		if err != nil {
			t.Fatalf("%v under chaos: %v", backend, err)
		}
		if res.Seconds <= 0 {
			t.Fatalf("%v: no virtual time elapsed", backend)
		}
		for rk, out := range outs {
			if len(out) != n {
				t.Fatalf("%v rank %d: result length %d", backend, rk, len(out))
			}
			for i := range out {
				if d := math.Abs(float64(out[i]) - exact[i]); d > 0.02 {
					t.Fatalf("%v rank %d: error %g at %d (faulty fabric leaked bad data)", backend, rk, d, i)
				}
			}
		}
		totalFaults += chaos.Counts().Total()
	}
	if totalFaults == 0 {
		t.Fatal("chaos injected no faults; the test proved nothing")
	}
	if d := telemetry.C("cluster.retransmits").Value() - retx0; d < 1 {
		t.Errorf("no retransmissions counted (delta %d)", d)
	}
	if d := telemetry.C("cluster.nacks").Value() - nack0; d < 1 {
		t.Errorf("no NACKs counted (delta %d)", d)
	}
	if d := telemetry.C("cluster.dedups").Value() - dedup0; d < 1 {
		t.Errorf("no dedups counted (delta %d)", d)
	}
}

// TestChaosReduceScatter runs the homomorphic reduce-scatter under the
// same fault classes and checks each rank's owned block.
func TestChaosReduceScatter(t *testing.T) {
	const nRanks, n = 4, 2048
	fields := make([][]float32, nRanks)
	exact := make([]float64, n)
	for r := range fields {
		fields[r] = sineField(n, 400+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	chaos := hzccl.NewChaos(hzccl.ChaosSpec{
		Seed: 7, DropRate: 0.05, CorruptRate: 0.05, DuplicateRate: 0.05,
	})
	outs := make([][]float32, nRanks)
	starts := make([]int, nRanks)
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{
		Ranks:       nRanks,
		Reliable:    true,
		RecvTimeout: 100 * time.Millisecond,
		Fault:       chaos.Fault(),
	}, func(r *hzccl.Rank) error {
		out, err := r.ReduceScatter(fields[r.ID()], hzccl.BackendHZCCL, hzccl.CollectiveOptions{ErrorBound: 1e-3})
		if err != nil {
			return err
		}
		_, s, _ := r.OwnedBlock(n)
		outs[r.ID()], starts[r.ID()] = out, s
		return nil
	})
	if err != nil {
		t.Fatalf("reduce-scatter under chaos: %v", err)
	}
	if chaos.Counts().Total() == 0 {
		t.Fatal("chaos injected no faults")
	}
	for rk, out := range outs {
		for i := range out {
			if d := math.Abs(float64(out[i]) - exact[starts[rk]+i]); d > 0.02 {
				t.Fatalf("rank %d: error %g at %d", rk, d, i)
			}
		}
	}
}

// TestDegradationFallsBack makes the hzccl backend unrecoverable (one
// link drops every delivery attempt during the first epoch) and checks
// that all ranks agree to descend the ladder, complete on C-Coll, and
// record the downgrade in the result and telemetry.
func TestDegradationFallsBack(t *testing.T) {
	const nRanks, n = 4, 1024
	fields := make([][]float32, nRanks)
	exact := make([]float64, n)
	for r := range fields {
		fields[r] = sineField(n, 500+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	deg0 := telemetry.C("collective.degradations").Value()
	// Epoch 0 only: the retry after degradation runs on a healed fabric.
	blackhole := func(fc hzccl.FaultContext) (hzccl.FaultAction, float64) {
		if fc.Epoch == 0 && fc.From == 0 && fc.To == 1 {
			return hzccl.FaultDrop, 0
		}
		return hzccl.FaultDeliver, 0
	}
	outs := make([][]float32, nRanks)
	res, err := hzccl.RunCluster(hzccl.ClusterConfig{
		Ranks:       nRanks,
		Reliable:    true,
		RecvTimeout: 30 * time.Millisecond,
		RetryBudget: 2,
		Fault:       blackhole,
	}, func(r *hzccl.Rank) error {
		out, err := r.Allreduce(fields[r.ID()], hzccl.BackendHZCCL, hzccl.CollectiveOptions{
			ErrorBound: 1e-3,
			Degrade:    &hzccl.DegradePolicy{AttemptsPerBackend: 1},
		})
		outs[r.ID()] = out
		return err
	})
	if err != nil {
		t.Fatalf("degradable run failed: %v", err)
	}
	for rk, out := range outs {
		for i := range out {
			if d := math.Abs(float64(out[i]) - exact[i]); d > 0.02 {
				t.Fatalf("rank %d: error %g at %d after degradation", rk, d, i)
			}
		}
	}
	if len(res.Degradations) != nRanks {
		t.Fatalf("want one Degradation per rank, got %d: %v", len(res.Degradations), res.Degradations)
	}
	for i, d := range res.Degradations {
		if d.Rank != i || d.Op != "allreduce" || d.From != hzccl.BackendHZCCL || d.To != hzccl.BackendCColl {
			t.Fatalf("degradation %d wrong: %+v", i, d)
		}
	}
	if delta := telemetry.C("collective.degradations").Value() - deg0; delta < int64(nRanks) {
		t.Errorf("degradation counter delta %d, want >= %d", delta, nRanks)
	}
}

// TestDegradationLadderExhausted: when even the bottom rung fails, the
// collective must surface the failure rather than loop forever.
func TestDegradationLadderExhausted(t *testing.T) {
	blackhole := func(fc hzccl.FaultContext) (hzccl.FaultAction, float64) {
		if fc.From == 0 && fc.To == 1 {
			return hzccl.FaultDrop, 0 // every epoch, every attempt
		}
		return hzccl.FaultDeliver, 0
	}
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{
		Ranks:       3,
		Reliable:    true,
		RecvTimeout: 20 * time.Millisecond,
		RetryBudget: 1,
		Fault:       blackhole,
	}, func(r *hzccl.Rank) error {
		_, err := r.Allreduce(sineField(256, int64(r.ID())), hzccl.BackendHZCCL, hzccl.CollectiveOptions{
			ErrorBound: 1e-3,
			Degrade:    &hzccl.DegradePolicy{AttemptsPerBackend: 1},
		})
		return err
	})
	if err == nil {
		t.Fatal("unrecoverable fabric reported success")
	}
	if !strings.Contains(err.Error(), "ladder exhausted") && !strings.Contains(err.Error(), "consensus failed") {
		t.Fatalf("unexpected failure shape: %v", err)
	}
}

// TestDegradationRequiresRecvTimeout: without a receive deadline a
// degrading rank would strand its peers, so the policy must refuse.
func TestDegradationRequiresRecvTimeout(t *testing.T) {
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 2}, func(r *hzccl.Rank) error {
		_, err := r.Allreduce([]float32{1, 2}, hzccl.BackendMPI, hzccl.CollectiveOptions{
			Degrade: &hzccl.DegradePolicy{},
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "RecvTimeout") {
		t.Fatalf("missing RecvTimeout not rejected: %v", err)
	}
}

// TestDegradeCleanFabricNoDowngrade: with no faults the policy must be
// a no-op — same results, no recorded degradations.
func TestDegradeCleanFabricNoDowngrade(t *testing.T) {
	const nRanks, n = 3, 512
	fields := make([][]float32, nRanks)
	exact := make([]float64, n)
	for r := range fields {
		fields[r] = sineField(n, 600+int64(r))
		for i, v := range fields[r] {
			exact[i] += float64(v)
		}
	}
	res, err := hzccl.RunCluster(hzccl.ClusterConfig{
		Ranks:       nRanks,
		RecvTimeout: 200 * time.Millisecond,
	}, func(r *hzccl.Rank) error {
		out, err := r.Allreduce(fields[r.ID()], hzccl.BackendHZCCL, hzccl.CollectiveOptions{
			ErrorBound: 1e-3,
			Degrade:    &hzccl.DegradePolicy{},
		})
		if err != nil {
			return err
		}
		for i := range out {
			if d := math.Abs(float64(out[i]) - exact[i]); d > 0.02 {
				t.Errorf("rank %d: error %g at %d", r.ID(), d, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degradations) != 0 {
		t.Fatalf("clean fabric degraded: %v", res.Degradations)
	}
}

// TestPublicBarrierPeerFailure: the public Barrier must surface a peer's
// early exit instead of deadlocking the run.
func TestPublicBarrierPeerFailure(t *testing.T) {
	var barrierErr error
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 2}, func(r *hzccl.Rank) error {
		if r.ID() == 1 {
			return nil // exits without reaching the barrier
		}
		barrierErr = r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if barrierErr == nil {
		t.Fatal("barrier did not report the missing peer")
	}
}
