#!/bin/sh
# tcp_smoke.sh: multi-process loopback smoke test of the TCP transport.
#
# Launches a 4-rank hZCCL Allreduce as 4 real OS processes on localhost,
# collects each rank's result digest, and verifies that (a) all four TCP
# ranks agree, (b) the digest is bitwise identical to the same collective
# on the default in-process fabric, (c) rank 0's -obs-listen endpoint
# answers /healthz, serves a parseable Prometheus /metrics scrape and a
# 1-second CPU profile, and (d) the four per-process trace files merge
# into one multi-rank timeline with cross-process flow events. It then
# re-runs the mesh with an injected kill (elastic membership), and
# finally boots the hzccl-serve daemon on the same 4-rank shape: two
# client processes submit concurrent jobs against one mesh handshake,
# /jobs lists them, and SIGTERM shuts every rank down cleanly. Exit code
# 0 means the fabrics are observationally equivalent for this run and
# the observability + service surfaces work end to end.
#
# Usage: sh scripts/tcp_smoke.sh [MESSAGE_BYTES] [BACKEND] [ALGORITHM] [TOPOLOGY]
#
# ALGORITHM (ring, rd, rabenseifner, hierarchical, auto; default ring)
# and TOPOLOGY (e.g. 2x2 or 1,3; default flat) select the collective
# schedule and node grouping on both fabrics — `sh scripts/tcp_smoke.sh
# 65536 hzccl hierarchical 2x2` runs the two-level schedule across real
# processes with rank 0 and 2 as node leaders.
set -eu

MESSAGE="${1:-65536}"
BACKEND="${2:-hzccl}"
ALGO="${3:-ring}"
TOPO="${4:-}"
BASE_PORT="${TCP_SMOKE_PORT:-19780}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

go build -o "$OUT/hzccl-collective" ./cmd/hzccl-collective
go build -o "$OUT/hzccl-serve" ./cmd/hzccl-serve

PEERS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2)),127.0.0.1:$((BASE_PORT+3))"
OBS="127.0.0.1:$((BASE_PORT+9))"

for r in 1 2 3; do
    "$OUT/hzccl-collective" -transport=tcp -rank "$r" -peers "$PEERS" \
        -backend "$BACKEND" -algorithm "$ALGO" ${TOPO:+-topology "$TOPO"} \
        -message "$MESSAGE" -trace "$OUT/trace$r.json" \
        > "$OUT/rank$r.out" 2>&1 &
done
# Rank 0 additionally serves the live introspection endpoint and lingers
# so the scrape below hits a live process.
"$OUT/hzccl-collective" -transport=tcp -rank 0 -peers "$PEERS" \
    -backend "$BACKEND" -algorithm "$ALGO" ${TOPO:+-topology "$TOPO"} \
    -message "$MESSAGE" -trace "$OUT/trace0.json" \
    -obs-listen "$OBS" -obs-linger 10s > "$OUT/rank0.out" 2>"$OUT/rank0.err" &
OBS_PID=$!

# Wait for the endpoint, then scrape it while rank 0 lingers.
tries=0
until curl -fsS "http://$OBS/healthz" > "$OUT/healthz.json" 2>/dev/null; do
    tries=$((tries+1))
    if [ "$tries" -ge 50 ]; then
        echo "tcp_smoke: FAIL: /healthz never answered on $OBS" >&2
        cat "$OUT/rank0.err" >&2 || true
        exit 1
    fi
    sleep 0.1
done
grep -q '"status":"ok"' "$OUT/healthz.json" || {
    echo "tcp_smoke: FAIL: /healthz did not report ok: $(cat "$OUT/healthz.json")" >&2
    exit 1
}

curl -fsS "http://$OBS/metrics" > "$OUT/metrics.prom"
# The scrape must parse as Prometheus text exposition: every line is a
# comment or "name[{labels}] value".
awk '
/^#/ { next }
/^$/ { next }
/^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9][0-9.eE+-]*$/ { ok++; next }
{ print "tcp_smoke: unparseable metrics line: " $0 > "/dev/stderr"; bad++ }
END { exit (bad > 0 || ok == 0) }' "$OUT/metrics.prom" || {
    echo "tcp_smoke: FAIL: /metrics scrape does not parse" >&2
    exit 1
}
grep -q '^cluster_transport_bytes_out' "$OUT/metrics.prom" || {
    echo "tcp_smoke: FAIL: /metrics scrape is missing the transport counters" >&2
    exit 1
}

curl -fsS -o "$OUT/profile.pb.gz" "http://$OBS/debug/pprof/profile?seconds=1"
[ -s "$OUT/profile.pb.gz" ] || {
    echo "tcp_smoke: FAIL: /debug/pprof/profile returned an empty profile" >&2
    exit 1
}

wait

"$OUT/hzccl-collective" -transport=inproc -nodes 4 \
    -backend "$BACKEND" -algorithm "$ALGO" ${TOPO:+-topology "$TOPO"} \
    -message "$MESSAGE" > "$OUT/inproc.out" 2>&1

digest_of() {
    sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$1" | sort -u
}

REF="$(digest_of "$OUT/inproc.out")"
if [ -z "$REF" ] || [ "$(printf '%s\n' "$REF" | wc -l)" -ne 1 ]; then
    echo "tcp_smoke: FAIL: in-process reference did not produce one digest" >&2
    cat "$OUT/inproc.out" >&2
    exit 1
fi

FAIL=0
for r in 0 1 2 3; do
    D="$(digest_of "$OUT/rank$r.out")"
    if [ "$D" != "$REF" ]; then
        echo "tcp_smoke: FAIL: rank $r digest '$D' != in-process '$REF'" >&2
        cat "$OUT/rank$r.out" >&2
        FAIL=1
    fi
done
[ "$FAIL" -eq 0 ] || exit 1

# Merge the four per-process trace files and verify the result carries
# cross-process flow events (Perfetto's send→recv arrows).
"$OUT/hzccl-collective" -trace-merge "$OUT/merged.json" \
    "$OUT/trace0.json" "$OUT/trace1.json" "$OUT/trace2.json" "$OUT/trace3.json" \
    > /dev/null
grep -q '"ph":"s"' "$OUT/merged.json" && grep -q '"ph":"f"' "$OUT/merged.json" || {
    echo "tcp_smoke: FAIL: merged trace has no flow events" >&2
    exit 1
}

echo "tcp_smoke: OK: 4 TCP processes and in-process fabric all agree (digest=$REF, backend=$BACKEND, algo=$ALGO${TOPO:+, topo=$TOPO}, $MESSAGE bytes)"
echo "tcp_smoke: OK: obs endpoint served healthz, metrics and a CPU profile; traces merged with flow events"
grep -h 'rank\|transport' "$OUT"/rank*.out

# --- Elastic membership: kill one process mid-collective ---------------
# Relaunch the 4-rank mesh with an injected kill of rank 3 (rank 0 is the
# control-plane coordinator, so the victim must be a higher rank). The
# victim process must exit 0 reporting its injected death; the survivors
# must evict it, finish on the 3-rank world, and their digests must be
# bitwise identical to the same collective run in-process on 3 ranks.
# The kill case runs the flat topology: a 4-rank node grouping does not
# describe the 3-rank reference world.
KBASE=$((BASE_PORT+20))
KPEERS="127.0.0.1:$KBASE,127.0.0.1:$((KBASE+1)),127.0.0.1:$((KBASE+2)),127.0.0.1:$((KBASE+3))"
for r in 1 2 3; do
    "$OUT/hzccl-collective" -transport=tcp -rank "$r" -peers "$KPEERS" \
        -backend "$BACKEND" -algorithm "$ALGO" -message "$MESSAGE" \
        -kill-rank 3 -kill-step 1 > "$OUT/kill$r.out" 2>&1 &
done
"$OUT/hzccl-collective" -transport=tcp -rank 0 -peers "$KPEERS" \
    -backend "$BACKEND" -algorithm "$ALGO" -message "$MESSAGE" \
    -kill-rank 3 -kill-step 1 > "$OUT/kill0.out" 2>&1
wait

grep -q 'killed by injected fault' "$OUT/kill3.out" || {
    echo "tcp_smoke: FAIL: victim rank 3 did not report its injected death" >&2
    cat "$OUT/kill3.out" >&2
    exit 1
}

"$OUT/hzccl-collective" -transport=inproc -nodes 3 \
    -backend "$BACKEND" -algorithm "$ALGO" -message "$MESSAGE" \
    > "$OUT/inproc3.out" 2>&1
KREF="$(digest_of "$OUT/inproc3.out")"
if [ -z "$KREF" ] || [ "$(printf '%s\n' "$KREF" | wc -l)" -ne 1 ]; then
    echo "tcp_smoke: FAIL: 3-rank in-process reference did not produce one digest" >&2
    cat "$OUT/inproc3.out" >&2
    exit 1
fi

FAIL=0
for r in 0 1 2; do
    grep -q 'evicted ranks \[3\]' "$OUT/kill$r.out" || {
        echo "tcp_smoke: FAIL: survivor rank $r did not report the eviction" >&2
        cat "$OUT/kill$r.out" >&2
        FAIL=1
    }
    D="$(digest_of "$OUT/kill$r.out")"
    if [ "$D" != "$KREF" ]; then
        echo "tcp_smoke: FAIL: survivor rank $r digest '$D' != 3-rank in-process '$KREF'" >&2
        cat "$OUT/kill$r.out" >&2
        FAIL=1
    fi
done
[ "$FAIL" -eq 0 ] || exit 1

echo "tcp_smoke: OK: killed rank 3 mid-collective; survivors evicted it and match the 3-rank in-process digest ($KREF)"

# --- Collective as a service: the hzccl-serve daemon -------------------
# Boot a 4-rank daemon mesh (one handshake), submit two jobs from two
# separate client processes — concurrently, exercising session isolation —
# and verify their digests match the in-process references, the /jobs
# registry saw both, the mesh formed exactly once, and SIGTERM shuts every
# rank down cleanly (exit 0).
DBASE=$((BASE_PORT+40))
DPEERS="127.0.0.1:$DBASE,127.0.0.1:$((DBASE+1)),127.0.0.1:$((DBASE+2)),127.0.0.1:$((DBASE+3))"
DCLIENT="127.0.0.1:$((DBASE+8))"
DOBS="127.0.0.1:$((DBASE+9))"

DPIDS=""
for r in 1 2 3; do
    "$OUT/hzccl-serve" -rank "$r" -peers "$DPEERS" \
        > "$OUT/serve$r.out" 2>&1 &
    DPIDS="$DPIDS $!"
done
"$OUT/hzccl-serve" -rank 0 -peers "$DPEERS" -client-listen "$DCLIENT" \
    -obs-listen "$DOBS" > "$OUT/serve0.out" 2>&1 &
DPIDS="$DPIDS $!"

# The obs endpoint comes up after the mesh forms and the client listener
# opens, so a live /healthz means the service is ready for submissions.
tries=0
until curl -fsS "http://$DOBS/healthz" > /dev/null 2>&1; do
    tries=$((tries+1))
    if [ "$tries" -ge 100 ]; then
        echo "tcp_smoke: FAIL: daemon obs endpoint never answered on $DOBS" >&2
        cat "$OUT"/serve*.out >&2 || true
        exit 1
    fi
    sleep 0.1
done

# Two client processes, two different jobs, submitted concurrently.
"$OUT/hzccl-collective" -submit "$DCLIENT" \
    -backend "$BACKEND" -algorithm "$ALGO" ${TOPO:+-topology "$TOPO"} \
    -message "$MESSAGE" > "$OUT/job1.out" 2>&1 &
JOB1=$!
"$OUT/hzccl-collective" -submit "$DCLIENT" \
    -backend mpi -algorithm ring -message 32768 > "$OUT/job2.out" 2>&1 &
JOB2=$!
wait "$JOB1" || { echo "tcp_smoke: FAIL: daemon job 1 failed" >&2; cat "$OUT/job1.out" >&2; exit 1; }
wait "$JOB2" || { echo "tcp_smoke: FAIL: daemon job 2 failed" >&2; cat "$OUT/job2.out" >&2; exit 1; }

D1="$(digest_of "$OUT/job1.out")"
if [ "$D1" != "$REF" ]; then
    echo "tcp_smoke: FAIL: daemon job 1 digest '$D1' != in-process '$REF'" >&2
    cat "$OUT/job1.out" >&2
    exit 1
fi
"$OUT/hzccl-collective" -transport=inproc -nodes 4 \
    -backend mpi -algorithm ring -message 32768 > "$OUT/inproc-mpi.out" 2>&1
MREF="$(digest_of "$OUT/inproc-mpi.out")"
D2="$(digest_of "$OUT/job2.out")"
if [ -z "$MREF" ] || [ "$D2" != "$MREF" ]; then
    echo "tcp_smoke: FAIL: daemon job 2 digest '$D2' != in-process '$MREF'" >&2
    cat "$OUT/job2.out" >&2
    exit 1
fi

# The registry must have both jobs done, and the mesh must have formed
# exactly once: rank 0 of a 4-rank mesh accepts 3 connections and dials
# none, no matter how many jobs ran.
curl -fsS "http://$DOBS/jobs" > "$OUT/jobs.json"
[ "$(grep -o '"state":"done"' "$OUT/jobs.json" | wc -l)" -ge 2 ] || {
    echo "tcp_smoke: FAIL: /jobs does not list two completed jobs: $(cat "$OUT/jobs.json")" >&2
    exit 1
}
curl -fsS "http://$DOBS/metrics" > "$OUT/serve-metrics.prom"
grep -q '^cluster_transport_accepts 3$' "$OUT/serve-metrics.prom" || {
    echo "tcp_smoke: FAIL: daemon rank 0 accepts != 3 (mesh re-formed?)" >&2
    grep '^cluster_transport_' "$OUT/serve-metrics.prom" >&2 || true
    exit 1
}
grep -q '^cluster_transport_dials 0$' "$OUT/serve-metrics.prom" || {
    echo "tcp_smoke: FAIL: daemon rank 0 dialed mid-service (mesh re-formed?)" >&2
    grep '^cluster_transport_' "$OUT/serve-metrics.prom" >&2 || true
    exit 1
}

# Graceful shutdown: SIGTERM every rank; each must exit 0 (a rank that
# sees a peer leave first tears itself down, which is also a clean exit).
for pid in $DPIDS; do
    kill -TERM "$pid" 2>/dev/null || true
done
DFAIL=0
for pid in $DPIDS; do
    wait "$pid" || DFAIL=1
done
if [ "$DFAIL" -ne 0 ]; then
    echo "tcp_smoke: FAIL: a daemon rank exited non-zero on SIGTERM" >&2
    cat "$OUT"/serve*.out >&2
    exit 1
fi

echo "tcp_smoke: OK: daemon ran 2 concurrent jobs from 2 clients on one mesh handshake; digests match in-process ($D1, $D2); clean SIGTERM shutdown"
