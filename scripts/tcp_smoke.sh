#!/bin/sh
# tcp_smoke.sh: multi-process loopback smoke test of the TCP transport.
#
# Launches a 4-rank hZCCL Allreduce as 4 real OS processes on localhost,
# collects each rank's result digest, and verifies that (a) all four TCP
# ranks agree and (b) the digest is bitwise identical to the same
# collective on the default in-process fabric. Exit code 0 means the two
# fabrics are observationally equivalent for this run.
#
# Usage: sh scripts/tcp_smoke.sh [MESSAGE_BYTES] [BACKEND]
set -eu

MESSAGE="${1:-65536}"
BACKEND="${2:-hzccl}"
BASE_PORT="${TCP_SMOKE_PORT:-19780}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

go build -o "$OUT/hzccl-collective" ./cmd/hzccl-collective

PEERS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT+1)),127.0.0.1:$((BASE_PORT+2)),127.0.0.1:$((BASE_PORT+3))"

for r in 1 2 3; do
    "$OUT/hzccl-collective" -transport=tcp -rank "$r" -peers "$PEERS" \
        -backend "$BACKEND" -message "$MESSAGE" > "$OUT/rank$r.out" 2>&1 &
done
"$OUT/hzccl-collective" -transport=tcp -rank 0 -peers "$PEERS" \
    -backend "$BACKEND" -message "$MESSAGE" > "$OUT/rank0.out" 2>&1
wait

"$OUT/hzccl-collective" -transport=inproc -nodes 4 \
    -backend "$BACKEND" -message "$MESSAGE" > "$OUT/inproc.out" 2>&1

digest_of() {
    sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p' "$1" | sort -u
}

REF="$(digest_of "$OUT/inproc.out")"
if [ -z "$REF" ] || [ "$(printf '%s\n' "$REF" | wc -l)" -ne 1 ]; then
    echo "tcp_smoke: FAIL: in-process reference did not produce one digest" >&2
    cat "$OUT/inproc.out" >&2
    exit 1
fi

FAIL=0
for r in 0 1 2 3; do
    D="$(digest_of "$OUT/rank$r.out")"
    if [ "$D" != "$REF" ]; then
        echo "tcp_smoke: FAIL: rank $r digest '$D' != in-process '$REF'" >&2
        cat "$OUT/rank$r.out" >&2
        FAIL=1
    fi
done
[ "$FAIL" -eq 0 ] || exit 1

echo "tcp_smoke: OK: 4 TCP processes and in-process fabric all agree (digest=$REF, backend=$BACKEND, $MESSAGE bytes)"
grep -h 'rank\|transport' "$OUT"/rank*.out
