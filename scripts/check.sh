#!/bin/sh
# check.sh — the repo's fast hygiene gate: formatting, vet, and a race
# pass over the concurrent packages (telemetry's lock-free counters and
# the cluster runtime). `make check` runs this.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race (concurrent packages) =="
go test -race . ./internal/telemetry ./internal/cluster ./internal/hzdyn ./internal/core

echo "check: OK"
