#!/bin/sh
# benchdiff.sh — the benchmark regression gate: compares two
# BENCH_hotpaths.json files (baseline vs current) on the throughput
# (mb_per_s) of the Fig. 6 compressor benches and the Table V homomorphic
# add, and fails if any bench regressed more than 20% — after normalizing
# by the median ratio, so a uniformly slower or faster machine (CI runner
# vs the committed baseline's host) cancels out and only relative
# regressions of individual hot paths trip the gate.
#
# Usage: benchdiff.sh BASELINE.json CURRENT.json
# Exit:  0 ok, 1 regression, 2 usage/parse error.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 BASELINE.json CURRENT.json" >&2
    exit 2
fi
base=$1
cur=$2
[ -f "$base" ] || { echo "benchdiff: missing baseline $base" >&2; exit 2; }
[ -f "$cur" ] || { echo "benchdiff: missing current $cur" >&2; exit 2; }

# The JSON is the line-per-benchmark form bench.sh emits, so awk can pull
# name and mb_per_s without a JSON parser. Only the throughput-bearing
# hot-path benches participate; allocation and virtual-time benches have
# their own gates in bench.sh.
extract() {
    awk '
    /"name": "Benchmark(Fig6|Table5HomomorphicAdd)/ {
        name = ""; mbs = ""
        if (match($0, /"name": "[^"]+"/)) {
            name = substr($0, RSTART + 9, RLENGTH - 10)
        }
        if (match($0, /"mb_per_s": [0-9.eE+-]+/)) {
            mbs = substr($0, RSTART + 12, RLENGTH - 12)
        }
        if (name != "" && mbs != "") print name, mbs
    }' "$1"
}

tmpb=$(mktemp)
tmpc=$(mktemp)
trap 'rm -f "$tmpb" "$tmpc"' EXIT
extract "$base" > "$tmpb"
extract "$cur" > "$tmpc"

if [ ! -s "$tmpb" ] || [ ! -s "$tmpc" ]; then
    echo "benchdiff: no Fig6/Table5 mb_per_s entries to compare" >&2
    exit 2
fi

awk -v tol=0.80 '
NR == FNR { base[$1] = $2; next }
{
    if ($1 in base && base[$1] + 0 > 0) {
        ratio[$1] = $2 / base[$1]
        order[n++] = $1
    }
}
END {
    if (n == 0) {
        print "benchdiff: no common benchmarks between baseline and current" > "/dev/stderr"
        exit 2
    }
    # Median ratio = the machine-speed normalizer.
    for (i = 0; i < n; i++) r[i] = ratio[order[i]]
    for (i = 1; i < n; i++)       # insertion sort: n is tiny
        for (j = i; j > 0 && r[j-1] > r[j]; j--) {
            t = r[j]; r[j] = r[j-1]; r[j-1] = t
        }
    med = (n % 2) ? r[int(n/2)] : (r[n/2 - 1] + r[n/2]) / 2
    printf "benchdiff: %d benches, median throughput ratio %.3f (current/baseline)\n", n, med
    bad = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        norm = ratio[name] / med
        if (norm < tol) {
            printf "REGRESSION: %s at %.1f%% of baseline (normalized; raw ratio %.3f)\n",
                name, 100 * norm, ratio[name] > "/dev/stderr"
            bad = 1
        }
    }
    if (bad) exit 1
    print "benchdiff: OK (no hot path below " tol * 100 "% of the median-normalized baseline)"
}' "$tmpb" "$tmpc"
