// Command gencorpus regenerates the committed fuzz seed corpora under the
// testdata/fuzz/ directories of internal/fzlight, internal/hzdyn and
// internal/conformance. Run it from the repository root after changing the
// on-disk format or the fuzz target signatures:
//
//	go run ./scripts/gencorpus
//
// The seeds are chosen to pin known-tricky paths: chunk outliers (the raw
// first quantized value each chunk carries), the hZ-dynamic overflow
// fallback (a folded stream whose next Add overflows int32), 2D/3D and
// float64 containers, and truncated/corrupt streams.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// entry renders one corpus file in the "go test fuzz v1" encoding.
func entry(args ...any) string {
	var b strings.Builder
	b.WriteString("go test fuzz v1\n")
	for _, a := range args {
		switch v := a.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%q)\n", v)
		case uint8:
			fmt.Fprintf(&b, "uint8(%d)\n", v)
		case int64:
			fmt.Fprintf(&b, "int64(%d)\n", v)
		default:
			log.Fatalf("unsupported corpus arg type %T", a)
		}
	}
	return b.String()
}

func write(dir, name string, content string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

// floatsToBytes encodes float32 values little-endian, the layout
// floatbytes.Floats decodes.
func floatsToBytes(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		u := math.Float32bits(v)
		out[4*i] = byte(u)
		out[4*i+1] = byte(u >> 8)
		out[4*i+2] = byte(u >> 16)
		out[4*i+3] = byte(u >> 24)
	}
	return out
}

func sine(n int, phase float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(phase + float64(i)/9))
	}
	return out
}

// outlierField is small everywhere except a large first value per chunk,
// exercising the outlier (raw first quantized value) path.
func outlierField(n int) []float32 {
	out := sine(n, 0.2)
	out[0] = 9000
	if n > 64 {
		out[n/2] = -8500
	}
	return out
}

func mustCompress(data []float32, p fzlight.Params) []byte {
	comp, err := fzlight.Compress(data, p)
	if err != nil {
		log.Fatal(err)
	}
	return comp
}

func main() {
	eb := 1e-3

	// --- internal/fzlight: FuzzDecompress([]byte) ---
	dir := "internal/fzlight/testdata/fuzz/FuzzDecompress"
	c1d := mustCompress(sine(200, 0), fzlight.Params{ErrorBound: eb, Threads: 3})
	write(dir, "seed-1d-multichunk", entry(c1d))
	write(dir, "seed-outlier", entry(mustCompress(outlierField(128), fzlight.Params{ErrorBound: eb})))
	c2d, err := fzlight.Compress2D(sine(96, 0.5), 8, 12, fzlight.Params{ErrorBound: eb})
	if err != nil {
		log.Fatal(err)
	}
	write(dir, "seed-2d", entry(c2d))
	c3d, err := fzlight.Compress3D(sine(120, 1), 4, 5, 6, fzlight.Params{ErrorBound: eb})
	if err != nil {
		log.Fatal(err)
	}
	write(dir, "seed-3d", entry(c3d))
	d64 := make([]float64, 80)
	for i := range d64 {
		d64[i] = math.Cos(float64(i) / 11)
	}
	c64, err := fzlight.Compress64(d64, fzlight.Params{ErrorBound: eb})
	if err != nil {
		log.Fatal(err)
	}
	write(dir, "seed-float64", entry(c64))
	write(dir, "seed-truncated", entry(c1d[:len(c1d)/2]))

	// --- internal/fzlight: FuzzCompressRoundTrip([]byte, uint8, uint8) ---
	dir = "internal/fzlight/testdata/fuzz/FuzzCompressRoundTrip"
	write(dir, "seed-outlier", entry(floatsToBytes(outlierField(96)), uint8(2), uint8(3)))
	write(dir, "seed-alternating", entry(floatsToBytes([]float32{100, -100, 100, -100, 0.5, -0.5}), uint8(1), uint8(0)))

	// --- internal/hzdyn: FuzzAdd([]byte, []byte) ---
	dir = "internal/hzdyn/testdata/fuzz/FuzzAdd"
	p := fzlight.Params{ErrorBound: eb}
	write(dir, "seed-self", entry(c1d, c1d))
	write(dir, "seed-outlier-pair", entry(
		mustCompress(outlierField(128), p),
		mustCompress(sine(128, 2), p)))
	// Overflow regression: fold an extreme alternating stream until the
	// next Add's quantized deltas exceed int32 — this pair makes Add
	// return ErrOverflow and AddWithFallback take the DOC path.
	extreme := make([]float32, 96)
	mag := float32(eb * float64(uint32(1)<<29))
	for i := range extreme {
		if i%2 == 0 {
			extreme[i] = mag
		} else {
			extreme[i] = -mag
		}
	}
	comp := mustCompress(extreme, p)
	acc := comp
	for {
		next, _, err := hzdyn.Add(acc, comp)
		if err != nil {
			break // acc+comp overflows: that's the pair to pin
		}
		acc = next
	}
	write(dir, "seed-overflow-fallback", entry(acc, comp))
	write(dir, "seed-geometry-mismatch", entry(c1d, mustCompress(sine(64, 0), p)))

	// --- internal/hzdyn: FuzzHomomorphism([]byte, []byte) ---
	dir = "internal/hzdyn/testdata/fuzz/FuzzHomomorphism"
	write(dir, "seed-outlier", entry(
		floatsToBytes(outlierField(64)),
		floatsToBytes(sine(64, 0.7))))
	write(dir, "seed-cancellation", entry(
		floatsToBytes([]float32{5000, -5000, 2500, -2500}),
		floatsToBytes([]float32{-5000, 5000, -2500, 2500})))

	// --- internal/conformance ---
	dir = "internal/conformance/testdata/fuzz/FuzzCompressorOracle"
	write(dir, "seed-outlier", entry(floatsToBytes(outlierField(96)), uint8(2)))
	write(dir, "seed-sine", entry(floatsToBytes(sine(128, 0.1)), uint8(1)))

	dir = "internal/conformance/testdata/fuzz/FuzzHomomorphicOracle"
	write(dir, "seed-outlier", entry(
		floatsToBytes(outlierField(64)),
		floatsToBytes(outlierField(64))))

	dir = "internal/conformance/testdata/fuzz/FuzzCollectiveShapes"
	write(dir, "seed-odd-ranks", entry(uint8(6), uint8(101), int64(3)))
	write(dir, "seed-empty", entry(uint8(4), uint8(0), int64(4)))

	fmt.Println("corpora regenerated")
}
