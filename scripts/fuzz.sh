#!/bin/sh
# fuzz.sh — run every Go native fuzz target for FUZZTIME each (default a
# short smoke suitable for CI; set FUZZTIME=5m for a real session).
# Targets run one at a time because `go test -fuzz` accepts a single
# match per invocation. `make fuzz` runs this.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-10s}

run() {
    pkg=$1
    target=$2
    echo "== fuzz $pkg.$target ($FUZZTIME) =="
    go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
}

run ./internal/fzlight FuzzDecompress
run ./internal/fzlight FuzzCompressRoundTrip
run ./internal/hzdyn FuzzAdd
run ./internal/hzdyn FuzzHomomorphism
run ./internal/conformance FuzzCompressorOracle
run ./internal/conformance FuzzHomomorphicOracle
run ./internal/conformance FuzzCollectiveShapes

echo "fuzz: OK"
