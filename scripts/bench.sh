#!/bin/sh
# bench.sh — the hot-path benchmark gate: runs the compressor, homomorphic
# add, and ring-allreduce benches (the paper's Fig. 6, Table V, Fig. 8)
# plus the steady-state zero-allocation benches, and writes the results as
# machine-readable BENCH_hotpaths.json (ns/op, MB/s, B/op, allocs/op and
# any custom metrics). Exits non-zero if the steady-state homomorphic add
# allocates: the ring collectives run it every step, so a single alloc/op
# there is a hot-path regression. `make bench` and the CI bench-smoke job
# run this; -short uses -benchtime 1x for a fast smoke.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_hotpaths.json
SHORT=false
BENCHTIME=""
for arg in "$@"; do
    case "$arg" in
        -short) SHORT=true; BENCHTIME="-benchtime 1x" ;;
        *) echo "usage: $0 [-short]" >&2; exit 2 ;;
    esac
done

PATTERN='^(BenchmarkFig6|BenchmarkTable5HomomorphicAdd|BenchmarkFig8Allreduce|BenchmarkParallelAdd)'

echo "== go test -bench (hot paths) =="
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# shellcheck disable=SC2086  # BENCHTIME must word-split
go test -run '^$' -bench "$PATTERN" -benchmem $BENCHTIME . | tee "$raw"

# The steady-state benches always run a fixed 100 iterations — even in
# -short mode — because allocs/op from a single iteration would show
# one-time warmup effects (sync.Pool chain nodes) instead of the steady
# state the gate is about. 100 iterations is still ~10ms. The flight
# recorder's steady-state bench lives in internal/telemetry.
go test -run '^$' -bench '^BenchmarkSteadyState' -benchmem -benchtime 100x . | tee -a "$raw"
go test -run '^$' -bench '^BenchmarkSteadyState' -benchmem -benchtime 100x ./internal/telemetry/ | tee -a "$raw"

# The tracing-overhead bench interleaves traced and untraced Allreduces,
# so a fixed iteration count gives a stable paired comparison even in
# -short mode.
go test -run '^$' -bench '^BenchmarkAllreduceTraceOverhead$' -benchtime 25x . | tee -a "$raw"

echo "== $OUT =="
awk -v short="$SHORT" -v goversion="$(go version)" '
BEGIN {
    print "{"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"short\": %s,\n", short
    print "  \"benchmarks\": ["
    n = 0
}
/^Benchmark/ && NF >= 4 {
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s", $1, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        key = $(i + 1)
        if (key == "ns/op") key = "ns_per_op"
        else if (key == "MB/s") key = "mb_per_s"
        else if (key == "B/op") key = "bytes_per_op"
        else if (key == "allocs/op") key = "allocs_per_op"
        else gsub(/[^A-Za-z0-9]/, "_", key)
        printf ", \"%s\": %s", key, $(i)
    }
    printf "}"
}
END {
    print ""
    print "  ]"
    print "}"
}' "$raw" > "$OUT"
echo "wrote $OUT"

# The zero-allocation gate: the steady-state hot paths — the homomorphic
# add (BenchmarkSteadyStateAddInto), the compressor
# (BenchmarkSteadyStateCompressInto) AND the flight recorder
# (BenchmarkSteadyStateFlightRecord, which every send/recv/NACK records
# into) — must report 0 allocs/op (the pools are warmed before the timed
# loop). The ring collectives run all of them once per step, so a single
# alloc/op in any is a hot-path regression.
bad=$(awk '/^BenchmarkSteadyState(AddInto|CompressInto|FlightRecord|OmpCompressInto|OmpDecompressInto|SzxCompressInto|SzxDecompressInto)/ {
    for (i = 3; i + 1 <= NF; i += 2)
        if ($(i + 1) == "allocs/op" && $(i) + 0 > 0) print $1 ": " $(i) " allocs/op"
}' "$raw")
if [ -n "$bad" ]; then
    echo "FAIL: steady-state hot path allocates:" >&2
    echo "$bad" >&2
    exit 1
fi

# The fused-kernel throughput floor: the Table V CESM-ATM reduce is 94%
# pipeline ④, so its MB/s is a direct measurement of the fused bitplane
# kernel. The floor (2400 MB/s, ~4x the pre-fusion 586 MB/s baseline,
# set below the ~3000 MB/s typical to absorb this machine's ±10% noise)
# only applies when frac-p4 confirms the dataset still exercises the
# kernel; it is skipped in -short, where a single iteration is noise.
# The Fig6 allocation ceilings likewise need steady-state iteration
# counts, so they gate only on full runs.
if [ "$SHORT" = false ]; then
    cesm=$(awk '/^BenchmarkTable5HomomorphicAdd\/CESM-ATM/ {
        mbs = ""; p4 = ""
        for (i = 3; i + 1 <= NF; i += 2) {
            if ($(i + 1) == "MB/s") mbs = $(i)
            if ($(i + 1) == "frac-p4") p4 = $(i)
        }
        print mbs, p4
    }' "$raw" | tail -1)
    mbs=${cesm% *}
    p4=${cesm#* }
    if [ -z "$mbs" ] || [ -z "$p4" ]; then
        echo "FAIL: BenchmarkTable5HomomorphicAdd/CESM-ATM reported no MB/s or frac-p4" >&2
        exit 1
    fi
    if awk -v p="$p4" 'BEGIN { exit !(p >= 0.9) }'; then
        if awk -v m="$mbs" 'BEGIN { exit !(m < 2400) }'; then
            echo "FAIL: Table5 CESM-ATM homomorphic add at ${mbs} MB/s (floor 2400, frac-p4 ${p4})" >&2
            exit 1
        fi
        echo "bench: Table5 CESM-ATM ${mbs} MB/s >= 2400 floor (frac-p4 ${p4})"
    else
        echo "bench: Table5 CESM-ATM frac-p4 ${p4} < 0.9, MB/s floor not applicable"
    fi

    # The baseline-codec allocation ceiling: the Fig6 ompSZp compress and
    # decompress paths are pooled (CompressInto/DecompressInto) and must
    # stay at or under 16 allocs/op at steady state.
    badomp=$(awk '/^BenchmarkFig6\/.*\/omp-(compress|decompress)/ {
        for (i = 3; i + 1 <= NF; i += 2)
            if ($(i + 1) == "allocs/op" && $(i) + 0 > 16) print $1 ": " $(i) " allocs/op"
    }' "$raw")
    if [ -n "$badomp" ]; then
        echo "FAIL: Fig6 ompSZp path exceeds 16 allocs/op:" >&2
        echo "$badomp" >&2
        exit 1
    fi
    echo "bench: Fig6 ompSZp compress/decompress within 16 allocs/op"
fi

# The tracing-overhead gate: attaching a Trace to an Allreduce must stay
# within 5% of the untraced wall time (paired, interleaved measurement).
over=$(awk '/^BenchmarkAllreduceTraceOverhead/ {
    for (i = 3; i + 1 <= NF; i += 2)
        if ($(i + 1) == "trace-overhead-pct") print $(i)
}' "$raw" | tail -1)
if [ -z "$over" ]; then
    echo "FAIL: BenchmarkAllreduceTraceOverhead reported no trace-overhead-pct" >&2
    exit 1
fi
if awk -v o="$over" 'BEGIN { exit !(o > 5) }'; then
    echo "FAIL: tracing overhead ${over}% exceeds the 5% budget" >&2
    exit 1
fi
echo "bench: OK (steady-state AddInto, CompressInto and FlightRecord at 0 allocs/op; tracing overhead ${over}% <= 5%)"

# The paper-scale virtual-time sweep (Fig. 9's shape): every collective
# algorithm x flavor at each world size, each run checked bit-identically
# against a float64 oracle on a dyadic grid, with the modeled virtual
# times written as BENCH_scaling.json. -short sweeps 8 and 64 ranks; the
# full gate goes to the paper's 512.
WORLDS="8,64,128,512"
if [ "$SHORT" = true ]; then WORLDS="8,64"; fi
echo "== scaling sweep (worlds $WORLDS) =="
SCALING_WORLDS="$WORLDS" SCALING_OUT=BENCH_scaling.json \
    go test -run '^TestScalingSweep$' -count=1 .
echo "wrote BENCH_scaling.json"
