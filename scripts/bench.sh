#!/bin/sh
# bench.sh — the hot-path benchmark gate: runs the compressor, homomorphic
# add, and ring-allreduce benches (the paper's Fig. 6, Table V, Fig. 8)
# plus the steady-state zero-allocation benches, and writes the results as
# machine-readable BENCH_hotpaths.json (ns/op, MB/s, B/op, allocs/op and
# any custom metrics). Exits non-zero if the steady-state homomorphic add
# allocates: the ring collectives run it every step, so a single alloc/op
# there is a hot-path regression. `make bench` and the CI bench-smoke job
# run this; -short uses -benchtime 1x for a fast smoke.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_hotpaths.json
SHORT=false
BENCHTIME=""
for arg in "$@"; do
    case "$arg" in
        -short) SHORT=true; BENCHTIME="-benchtime 1x" ;;
        *) echo "usage: $0 [-short]" >&2; exit 2 ;;
    esac
done

PATTERN='^(BenchmarkFig6|BenchmarkTable5HomomorphicAdd|BenchmarkFig8Allreduce)'

echo "== go test -bench (hot paths) =="
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# shellcheck disable=SC2086  # BENCHTIME must word-split
go test -run '^$' -bench "$PATTERN" -benchmem $BENCHTIME . | tee "$raw"

# The steady-state benches always run a fixed 100 iterations — even in
# -short mode — because allocs/op from a single iteration would show
# one-time warmup effects (sync.Pool chain nodes) instead of the steady
# state the gate is about. 100 iterations is still ~10ms. The flight
# recorder's steady-state bench lives in internal/telemetry.
go test -run '^$' -bench '^BenchmarkSteadyState' -benchmem -benchtime 100x . | tee -a "$raw"
go test -run '^$' -bench '^BenchmarkSteadyState' -benchmem -benchtime 100x ./internal/telemetry/ | tee -a "$raw"

# The tracing-overhead bench interleaves traced and untraced Allreduces,
# so a fixed iteration count gives a stable paired comparison even in
# -short mode.
go test -run '^$' -bench '^BenchmarkAllreduceTraceOverhead$' -benchtime 25x . | tee -a "$raw"

echo "== $OUT =="
awk -v short="$SHORT" -v goversion="$(go version)" '
BEGIN {
    print "{"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"short\": %s,\n", short
    print "  \"benchmarks\": ["
    n = 0
}
/^Benchmark/ && NF >= 4 {
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s", $1, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        key = $(i + 1)
        if (key == "ns/op") key = "ns_per_op"
        else if (key == "MB/s") key = "mb_per_s"
        else if (key == "B/op") key = "bytes_per_op"
        else if (key == "allocs/op") key = "allocs_per_op"
        else gsub(/[^A-Za-z0-9]/, "_", key)
        printf ", \"%s\": %s", key, $(i)
    }
    printf "}"
}
END {
    print ""
    print "  ]"
    print "}"
}' "$raw" > "$OUT"
echo "wrote $OUT"

# The zero-allocation gate: the steady-state hot paths — the homomorphic
# add (BenchmarkSteadyStateAddInto), the compressor
# (BenchmarkSteadyStateCompressInto) AND the flight recorder
# (BenchmarkSteadyStateFlightRecord, which every send/recv/NACK records
# into) — must report 0 allocs/op (the pools are warmed before the timed
# loop). The ring collectives run all of them once per step, so a single
# alloc/op in any is a hot-path regression.
bad=$(awk '/^BenchmarkSteadyState(AddInto|CompressInto|FlightRecord)/ {
    for (i = 3; i + 1 <= NF; i += 2)
        if ($(i + 1) == "allocs/op" && $(i) + 0 > 0) print $1 ": " $(i) " allocs/op"
}' "$raw")
if [ -n "$bad" ]; then
    echo "FAIL: steady-state hot path allocates:" >&2
    echo "$bad" >&2
    exit 1
fi

# The tracing-overhead gate: attaching a Trace to an Allreduce must stay
# within 5% of the untraced wall time (paired, interleaved measurement).
over=$(awk '/^BenchmarkAllreduceTraceOverhead/ {
    for (i = 3; i + 1 <= NF; i += 2)
        if ($(i + 1) == "trace-overhead-pct") print $(i)
}' "$raw" | tail -1)
if [ -z "$over" ]; then
    echo "FAIL: BenchmarkAllreduceTraceOverhead reported no trace-overhead-pct" >&2
    exit 1
fi
if awk -v o="$over" 'BEGIN { exit !(o > 5) }'; then
    echo "FAIL: tracing overhead ${over}% exceeds the 5% budget" >&2
    exit 1
fi
echo "bench: OK (steady-state AddInto, CompressInto and FlightRecord at 0 allocs/op; tracing overhead ${over}% <= 5%)"

# The paper-scale virtual-time sweep (Fig. 9's shape): every collective
# algorithm x flavor at each world size, each run checked bit-identically
# against a float64 oracle on a dyadic grid, with the modeled virtual
# times written as BENCH_scaling.json. -short sweeps 8 and 64 ranks; the
# full gate goes to the paper's 512.
WORLDS="8,64,128,512"
if [ "$SHORT" = true ]; then WORLDS="8,64"; fi
echo "== scaling sweep (worlds $WORLDS) =="
SCALING_WORLDS="$WORLDS" SCALING_OUT=BENCH_scaling.json \
    go test -run '^TestScalingSweep$' -count=1 .
echo "wrote BENCH_scaling.json"
