package hzccl_test

import (
	"fmt"
	"math"

	"hzccl"
)

func ExampleCompress() {
	data := make([]float32, 100000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.001))
	}
	comp, err := hzccl.Compress(data, hzccl.Params{ErrorBound: 1e-3})
	if err != nil {
		panic(err)
	}
	back, err := hzccl.Decompress(comp)
	if err != nil {
		panic(err)
	}
	worst := 0.0
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(back[i])); d > worst {
			worst = d
		}
	}
	fmt.Printf("bound respected: %v\n", worst <= 1e-3+1e-9)
	// Output:
	// bound respected: true
}

func ExampleHomomorphicAdd() {
	a := []float32{1, 2, 3, 4}
	b := []float32{10, 20, 30, 40}
	p := hzccl.Params{ErrorBound: 0.01}
	ca, _ := hzccl.Compress(a, p)
	cb, _ := hzccl.Compress(b, p)

	// Sum entirely in compressed space.
	sum, err := hzccl.HomomorphicAdd(ca, cb)
	if err != nil {
		panic(err)
	}
	vals, _ := hzccl.Decompress(sum)
	fmt.Printf("%.1f %.1f %.1f %.1f\n", vals[0], vals[1], vals[2], vals[3])
	// Output:
	// 11.0 22.0 33.0 44.0
}

func ExampleHomomorphicScale() {
	data := []float32{1, 2, 3}
	comp, _ := hzccl.Compress(data, hzccl.Params{ErrorBound: 0.01})
	tripled, err := hzccl.HomomorphicScale(comp, 3)
	if err != nil {
		panic(err)
	}
	vals, _ := hzccl.Decompress(tripled)
	fmt.Printf("%.1f %.1f %.1f\n", vals[0], vals[1], vals[2])
	// Output:
	// 3.0 6.0 9.0
}

func ExampleRunCluster() {
	// Four simulated nodes sum their vectors with the homomorphic
	// Allreduce.
	const ranks = 4
	data := make([][]float32, ranks)
	for r := range data {
		data[r] = []float32{float32(r), float32(r * 10)}
	}
	var result []float32
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: ranks}, func(r *hzccl.Rank) error {
		out, err := r.Allreduce(data[r.ID()], hzccl.BackendHZCCL,
			hzccl.CollectiveOptions{ErrorBound: 1e-3})
		if r.ID() == 0 {
			result = out
		}
		return err
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f\n", result[0], result[1])
	// Output:
	// 6 60
}

func ExampleInfo() {
	data := make([]float32, 3200) // constant: maximal compression
	comp, _ := hzccl.Compress(data, hzccl.Params{ErrorBound: 1e-3})
	info, _ := hzccl.Info(comp)
	fmt.Printf("elements=%d constant=%.0f%%\n", info.DataLen, 100*info.ConstantBlockFraction)
	// Output:
	// elements=3200 constant=100%
}
