package hzccl

import "hzccl/internal/cluster"

// Fault injection, message integrity and chaos testing at the public API.
//
// These are aliases of the cluster substrate's types, so fault hooks,
// corruption patterns and chaos schedules written against the public API
// interoperate with the internal test oracles. Install a hook via
// ClusterConfig.Fault; enable recovery via ClusterConfig.Reliable.

// Fault decides the fate of each point-to-point message. It runs on the
// sender's goroutine and must be safe for concurrent use from all ranks.
// The returned seconds are only used with FaultDelay.
type Fault = cluster.Fault

// FaultContext identifies one point-to-point message for the fault hook.
type FaultContext = cluster.FaultContext

// FaultAction is the fate a fault hook assigns to one message.
type FaultAction = cluster.FaultAction

// Fault actions.
const (
	FaultDeliver   = cluster.FaultDeliver
	FaultDrop      = cluster.FaultDrop
	FaultDuplicate = cluster.FaultDuplicate
	FaultCorrupt   = cluster.FaultCorrupt
	FaultDelay     = cluster.FaultDelay
	FaultKill      = cluster.FaultKill
)

// KillRank crashes one rank at one send: when rank Rank issues its
// AtStep-th original send (FaultContext.RankSeq), the send returns
// ErrRankKilled and the rank is dead for the rest of the run. Install
// KillRank.Fault() as ClusterConfig.Fault, or list kills in
// ChaosSpec.Kills on top of a probabilistic schedule. Combined with
// DegradePolicy.Shrink, the survivors evict the victim and finish the
// collective on the shrunken world.
type KillRank = cluster.KillRank

// CorruptPattern configures how FaultCorrupt damages payloads (byte
// offset, XOR mask, multi-byte bursts, or deterministic spray).
type CorruptPattern = cluster.CorruptPattern

// ChaosSpec configures a seeded probabilistic fault schedule.
type ChaosSpec = cluster.ChaosSpec

// Chaos is a reusable seeded fault schedule with injection counters.
type Chaos = cluster.Chaos

// ChaosCounts tallies the faults a Chaos actually injected.
type ChaosCounts = cluster.ChaosCounts

// NewChaos builds a chaos schedule; install its Fault() as
// ClusterConfig.Fault.
func NewChaos(spec ChaosSpec) *Chaos { return cluster.NewChaos(spec) }

// FaultOn builds a hook applying action (with the given delay seconds,
// for FaultDelay) to every message matching the predicate.
func FaultOn(pred func(FaultContext) bool, action FaultAction, delay float64) Fault {
	return cluster.FaultOn(pred, action, delay)
}

// OnLink is a predicate matching the seq-th message from rank `from` to
// rank `to`.
func OnLink(from, to, seq int) func(FaultContext) bool { return cluster.OnLink(from, to, seq) }

// Transport errors surfaced by runs over a faulty fabric. Match with
// errors.Is.
var (
	// ErrMessageCorrupt: a payload no longer matches its checksum.
	ErrMessageCorrupt = cluster.ErrMessageCorrupt
	// ErrMessageLost: a sequence gap was observed.
	ErrMessageLost = cluster.ErrMessageLost
	// ErrMessageDuplicate: an already-consumed sequence number arrived
	// (strict mode only; reliable mode dedups silently).
	ErrMessageDuplicate = cluster.ErrMessageDuplicate
	// ErrRecvTimeout: no message arrived within ClusterConfig.RecvTimeout.
	ErrRecvTimeout = cluster.ErrRecvTimeout
	// ErrPeerFailed: the sending rank exited before providing a message.
	ErrPeerFailed = cluster.ErrPeerFailed
	// ErrRetryBudgetExhausted: reliable delivery gave up on a message
	// after ClusterConfig.RetryBudget recovery attempts.
	ErrRetryBudgetExhausted = cluster.ErrRetryBudgetExhausted
	// ErrRetransmitGone: a NACKed message was already evicted from the
	// sender's bounded retransmit window.
	ErrRetransmitGone = cluster.ErrRetransmitGone
	// ErrRankFailed: a specific rank was confirmed dead mid-collective
	// (cooperative abort). The concrete error is a *RankFailedError
	// carrying the dead rank; errors.Is(err, ErrPeerFailed) also matches.
	ErrRankFailed = cluster.ErrRankFailed
	// ErrRankKilled: this rank was crashed by an injected FaultKill; its
	// body must return the error (the rank is dead, not degraded).
	ErrRankKilled = cluster.ErrRankKilled
	// ErrEvicted: the surviving majority evicted this rank from the world
	// during a membership shrink.
	ErrEvicted = cluster.ErrEvicted
	// ErrConnReset: a TCP peer's connection reset or closed mid-run; feeds
	// the failure detector as the peer's cause of death.
	ErrConnReset = cluster.ErrConnReset
	// ErrWorldTooLarge: membership operations (DegradePolicy.Shrink,
	// AgreeDead, ShrinkWorld) support at most 64 ranks.
	ErrWorldTooLarge = cluster.ErrWorldTooLarge
)

// RankFailedError reports which rank was confirmed dead when a receive or
// consensus round was cooperatively aborted. Match the class with
// errors.Is(err, ErrRankFailed) and recover the rank via errors.As.
type RankFailedError = cluster.RankFailedError
