package hzccl

import (
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
	"hzccl/internal/telemetry"
)

// mParallelWorkers records the worker count of every sharded homomorphic
// add, so deployments can see how wide the executor actually runs.
var mParallelWorkers = telemetry.H("compress.parallel_workers", telemetry.LinearBuckets(1, 1, 16))

// Params configures the fZ-light compressor.
type Params struct {
	// ErrorBound is the absolute error bound: every reconstructed value
	// differs from its original by at most this amount. Must be > 0.
	ErrorBound float64
	// BlockSize is the small-block length of the fixed-length encoder.
	// 0 selects the default (32); multiples of 8 use the fast paths.
	BlockSize int
	// Threads is the number of chunks compressed concurrently (the
	// paper's per-thread chunk partitioning). 0 or 1 is sequential.
	Threads int
}

func (p Params) internal() fzlight.Params {
	return fzlight.Params{ErrorBound: p.ErrorBound, BlockSize: p.BlockSize, Threads: p.Threads}
}

// Compress compresses data with the fZ-light error-bounded lossy
// compressor and returns a self-describing container. Two containers
// produced with identical Params over equal-length inputs can be reduced
// homomorphically with HomomorphicAdd.
func Compress(data []float32, p Params) ([]byte, error) {
	return fzlight.Compress(data, p.internal())
}

// Decompress reconstructs the values of a compressed container.
func Decompress(comp []byte) ([]float32, error) {
	return fzlight.Decompress(comp)
}

// DecompressInto reconstructs into dst, which must hold at least
// Info(comp).DataLen elements. It avoids the output allocation of
// Decompress, which matters on hot paths.
func DecompressInto(comp []byte, dst []float32) error {
	return fzlight.DecompressInto(comp, dst)
}

// StreamInfo describes a compressed container.
type StreamInfo struct {
	// ErrorBound, BlockSize and Threads echo the compression parameters.
	ErrorBound float64
	BlockSize  int
	Threads    int
	// DataLen is the element count of the original data.
	DataLen int
	// CompressedBytes is the container size.
	CompressedBytes int
	// Ratio is 4*DataLen / CompressedBytes.
	Ratio float64
	// ConstantBlockFraction is the fraction of encoded blocks with code
	// length zero — the share of block pairs the homomorphic reducer can
	// handle with its lightest pipelines.
	ConstantBlockFraction float64
}

// Info parses a compressed container's header and block structure.
func Info(comp []byte) (StreamInfo, error) {
	h, err := fzlight.ParseHeader(comp)
	if err != nil {
		return StreamInfo{}, err
	}
	st, err := fzlight.Stats(comp)
	if err != nil {
		return StreamInfo{}, err
	}
	info := StreamInfo{
		ErrorBound:            h.ErrorBound,
		BlockSize:             h.BlockSize,
		Threads:               h.NumChunks,
		DataLen:               h.DataLen,
		CompressedBytes:       len(comp),
		ConstantBlockFraction: st.ConstantFraction(),
	}
	if len(comp) > 0 {
		info.Ratio = float64(4*h.DataLen) / float64(len(comp))
	}
	return info, nil
}

// PipelineStats reports how many block pairs each homomorphic pipeline
// handled during a reduction (paper Table V).
type PipelineStats struct {
	// BothConstant counts pipeline ① (both blocks constant: emit one byte).
	BothConstant int64
	// LeftConstant counts pipeline ② (copy the right block verbatim).
	LeftConstant int64
	// RightConstant counts pipeline ③ (copy the left block verbatim).
	RightConstant int64
	// BothEncoded counts pipeline ④ (decode, add integers, re-encode).
	BothEncoded int64
	// Blocks is the total block-pair count.
	Blocks int64
}

func pipelineStats(st hzdyn.Stats) PipelineStats {
	return PipelineStats{
		BothConstant:  st.Pipeline[hzdyn.PipelineBothConstant],
		LeftConstant:  st.Pipeline[hzdyn.PipelineLeftConstant],
		RightConstant: st.Pipeline[hzdyn.PipelineRightConstant],
		BothEncoded:   st.Pipeline[hzdyn.PipelineBothEncoded],
		Blocks:        st.Blocks,
	}
}

// HomomorphicAdd sums two compressed containers directly in compressed
// space: Decompress(HomomorphicAdd(a,b)) equals
// Decompress(a)+Decompress(b) exactly in the quantized domain, with no
// error beyond the original quantization. Both containers must share
// geometry (error bound, block size, thread count, length).
func HomomorphicAdd(a, b []byte) ([]byte, error) {
	out, _, err := hzdyn.Add(a, b)
	return out, err
}

// HomomorphicAddWithStats is HomomorphicAdd plus pipeline-selection
// statistics.
func HomomorphicAddWithStats(a, b []byte) ([]byte, PipelineStats, error) {
	out, st, err := hzdyn.Add(a, b)
	return out, pipelineStats(st), err
}

// HomomorphicAddParallel is HomomorphicAdd with the block work sharded
// across the given number of goroutines (hzdyn's sharded executor). The
// output is byte-identical to HomomorphicAdd for any worker count;
// workers <= 1 runs the serial path.
func HomomorphicAddParallel(a, b []byte, workers int) ([]byte, error) {
	out, _, err := HomomorphicAddParallelWithStats(a, b, workers)
	return out, err
}

// HomomorphicAddParallelWithStats is HomomorphicAddParallel plus
// pipeline-selection statistics.
func HomomorphicAddParallelWithStats(a, b []byte, workers int) ([]byte, PipelineStats, error) {
	if workers < 1 {
		workers = 1
	}
	mParallelWorkers.Observe(int64(workers))
	out, st, err := hzdyn.AddParallel(a, b, workers)
	return out, pipelineStats(st), err
}

// StaticHomomorphicAdd is the static baseline: every block pair goes
// through the decode-add-encode pipeline regardless of constancy. The
// result is byte-identical to HomomorphicAdd; only the work differs. It
// exists to quantify the dynamic heuristic's benefit.
func StaticHomomorphicAdd(a, b []byte) ([]byte, error) {
	return hzdyn.StaticAdd(a, b)
}

// HomomorphicScale multiplies every value in a compressed container by the
// integer k without decompressing.
func HomomorphicScale(comp []byte, k int32) ([]byte, error) {
	return hzdyn.ScaleInt(comp, k)
}

// HomomorphicSub subtracts compressed container b from a entirely in
// compressed space: Decompress(HomomorphicSub(a,b)) equals
// Decompress(a) − Decompress(b) exactly in the quantized domain.
func HomomorphicSub(a, b []byte) ([]byte, error) {
	out, _, err := hzdyn.Sub(a, b)
	return out, err
}

// HomomorphicFold reduces many compressed containers into their sum with
// pairwise homomorphic additions and returns aggregate pipeline stats.
func HomomorphicFold(streams [][]byte) ([]byte, PipelineStats, error) {
	out, st, err := hzdyn.Fold(streams)
	return out, pipelineStats(st), err
}

// Compress2D compresses a row-major height×width field with the 2D Lorenzo
// predictor — better ratios on image-like data with vertical structure.
// The containers it produces decompress with Decompress and remain fully
// homomorphic (the Lorenzo transform is linear); they can be reduced with
// HomomorphicAdd against other Compress2D containers of identical
// parameters and dimensions.
func Compress2D(data []float32, height, width int, p Params) ([]byte, error) {
	return fzlight.Compress2D(data, height, width, p.internal())
}

// Compress3D compresses a depth×height×width volume (x fastest) with the
// 3D Lorenzo predictor — the natural choice for the paper's volumetric
// application data (RTM, NYX, Hurricane). The containers remain fully
// homomorphic and decompress with Decompress.
func Compress3D(data []float32, depth, height, width int, p Params) ([]byte, error) {
	return fzlight.Compress3D(data, depth, height, width, p.internal())
}

// Compress64 compresses double-precision data. Use it when the error bound
// sits below float32 resolution (|v|·2⁻²³); decode with Decompress64.
// Float64 containers are homomorphic with each other but not with float32
// containers (the geometry check includes the precision).
func Compress64(data []float64, p Params) ([]byte, error) {
	return fzlight.Compress64(data, p.internal())
}

// Decompress64 reconstructs the values of a container produced by
// Compress64.
func Decompress64(comp []byte) ([]float64, error) {
	return fzlight.Decompress64(comp)
}

// DecompressInto64 is the allocation-free variant of Decompress64.
func DecompressInto64(comp []byte, dst []float64) error {
	return fzlight.DecompressInto64(comp, dst)
}
