package hzccl

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hzccl/internal/cluster"
	"hzccl/internal/telemetry"
)

// Graceful degradation: when a compressed backend repeatedly fails on a
// faulty fabric (retry budgets exhaust, peers time out), the collective
// falls back one rung down a backend ladder — BackendHZCCL → BackendCColl
// → BackendMPI by default — and retries the whole operation. All ranks
// must take the fallback together or the collective diverges (a ring can
// complete on some ranks while others fail), so each attempt ends with a
// message-free max-consensus over the per-rank outcome (AgreeMax, built
// on barrier machinery and therefore immune to injected message faults):
// every rank proposes ok / retry / abort, all adopt the maximum, and a
// retry advances the message epoch so stale traffic from the abandoned
// attempt is discarded rather than confused with the new attempt's.

// mDegradations counts every backend downgrade performed by a
// DegradePolicy, across all ranks and runs.
var mDegradations = telemetry.C("collective.degradations")

// DegradePolicy enables graceful backend degradation for a collective
// call (set it as CollectiveOptions.Degrade).
type DegradePolicy struct {
	// Ladder is the ordered fallback sequence, starting at the requested
	// backend. Empty selects the default ladder for the requested backend:
	// HZCCL → C-Coll → MPI (shorter for lower starting rungs).
	Ladder []Backend
	// AttemptsPerBackend is how many times each rung is retried before
	// descending (0 = 2). Retries on the same rung handle transient
	// faults; descending handles persistent ones.
	AttemptsPerBackend int
}

// Degradation records one backend downgrade performed during a run.
type Degradation struct {
	// Rank is the rank that recorded the downgrade (all ranks degrade
	// together; each records its own entry).
	Rank int
	// Op names the collective ("allreduce", "reduce_scatter", "reduce").
	Op string
	// From and To are the rungs descended between.
	From, To Backend
	// Reason is the error that drove the final attempt on From, if this
	// rank observed one ("peer-driven" when only a peer failed).
	Reason string
}

func (d Degradation) String() string {
	return fmt.Sprintf("rank %d %s: %s → %s (%s)", d.Rank, d.Op, d.From, d.To, d.Reason)
}

// runRecorder collects the per-rank event records of one cluster run:
// backend degradations and algorithm choices.
type runRecorder struct {
	mu      sync.Mutex
	log     []Degradation
	choices []AlgoChoice
}

func (rec *runRecorder) record(d Degradation) {
	mDegradations.Inc()
	rec.mu.Lock()
	rec.log = append(rec.log, d)
	rec.mu.Unlock()
}

// take returns the records ordered by rank (then occurrence).
func (rec *runRecorder) take() []Degradation {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]Degradation, len(rec.log))
	copy(out, rec.log)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

func (rec *runRecorder) recordChoice(ch AlgoChoice) {
	rec.mu.Lock()
	rec.choices = append(rec.choices, ch)
	rec.mu.Unlock()
}

// takeChoices returns the algorithm choices ordered by rank (then
// occurrence).
func (rec *runRecorder) takeChoices() []AlgoChoice {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]AlgoChoice, len(rec.choices))
	copy(out, rec.choices)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// defaultLadder is the fallback sequence starting at b: each rung trades
// compression benefit for simpler, more robust data movement.
func defaultLadder(b Backend) []Backend {
	switch b {
	case BackendHZCCL:
		return []Backend{BackendHZCCL, BackendCColl, BackendMPI}
	case BackendCColl:
		return []Backend{BackendCColl, BackendMPI}
	default:
		return []Backend{BackendMPI}
	}
}

// Per-attempt outcome statuses agreed across ranks; the maximum wins.
const (
	agreeOK    = 0 // attempt succeeded everywhere → deliver results
	agreeRetry = 1 // someone failed recoverably → retry / descend
	agreeAbort = 2 // someone failed non-degradably → abort the collective
)

// degradable reports whether failing with err should trigger a retry on
// a lower rung (true) or abort the collective outright (false).
func degradable(err error) bool {
	// A structural misuse (bad peer index, mismatched epochs, missing
	// error bound, unknown algorithm) will fail identically on every rung
	// — or worse, "heal" by silently landing on the uncompressed rung;
	// abort instead.
	return !errors.Is(err, cluster.ErrBadPeer) &&
		!errors.Is(err, ErrBadErrorBound) &&
		!errors.Is(err, ErrBadAlgorithm)
}

// runDegradable runs one collective under a DegradePolicy: attempt,
// agree on the outcome with all ranks, and retry or descend the ladder
// until a rung succeeds everywhere or the ladder is exhausted.
func (r *Rank) runDegradable(b Backend, opt CollectiveOptions, op string, run func(Backend) ([]float32, error)) ([]float32, error) {
	pol := opt.Degrade
	ladder := pol.Ladder
	if len(ladder) == 0 {
		ladder = defaultLadder(b)
	}
	attempts := pol.AttemptsPerBackend
	if attempts <= 0 {
		attempts = 2
	}
	if r.r.Config().RecvTimeout <= 0 {
		// Without a receive deadline a rank that abandons an attempt
		// leaves its peers blocked forever; refuse rather than deadlock.
		return nil, fmt.Errorf("hzccl: DegradePolicy requires ClusterConfig.RecvTimeout > 0 (an abandoned attempt must time out, not deadlock)")
	}

	rung, tries := 0, 0
	var lastErr error
	for {
		out, err := run(ladder[rung])
		lastErr = err
		status := agreeOK
		if err != nil {
			status = agreeRetry
			if !degradable(err) {
				status = agreeAbort
			}
		}
		agreed, aerr := r.r.AgreeMax(status)
		if aerr != nil {
			// Consensus itself failed (peer exited): nothing to salvage.
			if err != nil {
				return nil, fmt.Errorf("hzccl: %s degradation consensus failed: %v (local error: %w)", op, aerr, err)
			}
			return nil, fmt.Errorf("hzccl: %s degradation consensus failed: %w", op, aerr)
		}
		switch agreed {
		case agreeOK:
			return out, nil
		case agreeAbort:
			if err == nil {
				err = fmt.Errorf("hzccl: %s aborted by a peer's non-degradable failure", op)
			}
			return nil, err
		}
		// agreeRetry: discard the abandoned attempt's in-flight traffic,
		// then either retry this rung or descend.
		r.r.AdvanceEpoch()
		tries++
		if tries >= attempts {
			if rung+1 >= len(ladder) {
				if err == nil {
					err = fmt.Errorf("hzccl: %s failed on every backend in the ladder (last rung %s)", op, ladder[rung])
				}
				return nil, fmt.Errorf("hzccl: %s degradation ladder exhausted: %w", op, err)
			}
			reason := "peer-driven"
			if lastErr != nil {
				reason = lastErr.Error()
			}
			if r.rec != nil {
				r.rec.record(Degradation{Rank: r.ID(), Op: op, From: ladder[rung], To: ladder[rung+1], Reason: reason})
			} else {
				mDegradations.Inc()
			}
			r.r.NoteDegrade(int(ladder[rung]), int(ladder[rung+1]))
			rung++
			tries = 0
		}
	}
}
