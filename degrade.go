package hzccl

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hzccl/internal/cluster"
	"hzccl/internal/telemetry"
)

// Graceful degradation: when a compressed backend repeatedly fails on a
// faulty fabric (retry budgets exhaust, peers time out), the collective
// falls back one rung down a backend ladder — BackendHZCCL → BackendCColl
// → BackendMPI by default — and retries the whole operation. All ranks
// must take the fallback together or the collective diverges (a ring can
// complete on some ranks while others fail), so each attempt ends with a
// message-free max-consensus over the per-rank outcome (AgreeMax, built
// on barrier machinery and therefore immune to injected message faults):
// every rank proposes ok / retry / shrink / abort, all adopt the maximum,
// and a retry advances the message epoch so stale traffic from the
// abandoned attempt is discarded rather than confused with the new
// attempt's.
//
// With DegradePolicy.Shrink, a rank that died outright (crash, connection
// reset, injected kill) takes a different path than a flaky one: the
// survivors agree on the dead set (AgreeDead), evict it, renumber into a
// dense world with the topology shrunk to the survivors (ShrinkWorld),
// and re-run the collective there — shrink-and-continue instead of
// descending the backend ladder against a peer that will never answer.

// mDegradations counts every backend downgrade performed by a
// DegradePolicy, across all ranks and runs.
var mDegradations = telemetry.C("collective.degradations")

// ErrDegradeNeedsTimeout is returned when a DegradePolicy is used without
// ClusterConfig.RecvTimeout: without a receive deadline a rank that
// abandons an attempt leaves its peers blocked forever, so the
// configuration is refused rather than allowed to deadlock.
var ErrDegradeNeedsTimeout = errors.New("hzccl: DegradePolicy requires ClusterConfig.RecvTimeout > 0 (an abandoned attempt must time out, not deadlock)")

// DegradePolicy enables graceful backend degradation for a collective
// call (set it as CollectiveOptions.Degrade).
type DegradePolicy struct {
	// Ladder is the ordered fallback sequence, starting at the requested
	// backend. Empty selects the default ladder for the requested backend:
	// HZCCL → C-Coll → MPI (shorter for lower starting rungs).
	Ladder []Backend
	// AttemptsPerBackend is how many times each rung is retried before
	// descending (0 = 2). Retries on the same rung handle transient
	// faults; descending handles persistent ones.
	AttemptsPerBackend int
	// Shrink adds the elastic-membership rung below the backend ladder:
	// when an attempt fails because a rank died (crash, connection reset,
	// injected kill), the survivors agree on the set of dead ranks
	// (AgreeDead), evict them, renumber themselves into a dense world with
	// the topology shrunk to the survivors (ShrinkWorld), and re-run the
	// collective on that world — instead of burning backend retries on a
	// peer that will never answer. Evictions are recorded in
	// RunResult.Evicted, the cluster.evictions counter and the flight
	// recorder. Requires a world of at most 64 ranks (the membership
	// bitmap); larger worlds are refused with ErrWorldTooLarge.
	Shrink bool
}

// Degradation records one backend downgrade performed during a run.
type Degradation struct {
	// Rank is the rank that recorded the downgrade (all ranks degrade
	// together; each records its own entry).
	Rank int
	// Op names the collective ("allreduce", "reduce_scatter", "reduce").
	Op string
	// From and To are the rungs descended between.
	From, To Backend
	// Reason is the error that drove the final attempt on From, if this
	// rank observed one ("peer-driven" when only a peer failed).
	Reason string
}

func (d Degradation) String() string {
	return fmt.Sprintf("rank %d %s: %s → %s (%s)", d.Rank, d.Op, d.From, d.To, d.Reason)
}

// runRecorder collects the per-rank event records of one cluster run:
// backend degradations and algorithm choices.
type runRecorder struct {
	mu      sync.Mutex
	log     []Degradation
	choices []AlgoChoice
}

func (rec *runRecorder) record(d Degradation) {
	mDegradations.Inc()
	rec.mu.Lock()
	rec.log = append(rec.log, d)
	rec.mu.Unlock()
}

// take returns the records ordered by rank (then occurrence).
func (rec *runRecorder) take() []Degradation {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]Degradation, len(rec.log))
	copy(out, rec.log)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

func (rec *runRecorder) recordChoice(ch AlgoChoice) {
	rec.mu.Lock()
	rec.choices = append(rec.choices, ch)
	rec.mu.Unlock()
}

// takeChoices returns the algorithm choices ordered by rank (then
// occurrence).
func (rec *runRecorder) takeChoices() []AlgoChoice {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]AlgoChoice, len(rec.choices))
	copy(out, rec.choices)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// defaultLadder is the fallback sequence starting at b: each rung trades
// compression benefit for simpler, more robust data movement.
func defaultLadder(b Backend) []Backend {
	switch b {
	case BackendHZCCL:
		return []Backend{BackendHZCCL, BackendCColl, BackendMPI}
	case BackendCColl:
		return []Backend{BackendCColl, BackendMPI}
	default:
		return []Backend{BackendMPI}
	}
}

// Per-attempt outcome statuses agreed across ranks; the maximum wins.
const (
	agreeOK     = 0 // attempt succeeded everywhere → deliver results
	agreeRetry  = 1 // someone failed recoverably → retry / descend
	agreeShrink = 2 // someone observed a dead rank → evict it and re-run
	agreeAbort  = 3 // someone failed non-degradably → abort the collective
)

// degradable reports whether failing with err should trigger a retry on
// a lower rung (true) or abort the collective outright (false).
func degradable(err error) bool {
	// A structural misuse (bad peer index, mismatched epochs, missing
	// error bound, unknown algorithm) will fail identically on every rung
	// — or worse, "heal" by silently landing on the uncompressed rung;
	// abort instead.
	return !errors.Is(err, cluster.ErrBadPeer) &&
		!errors.Is(err, ErrBadErrorBound) &&
		!errors.Is(err, ErrBadAlgorithm)
}

// runDegradable runs one collective under a DegradePolicy: attempt,
// agree on the outcome with all ranks, and retry or descend the ladder
// until a rung succeeds everywhere or the ladder is exhausted.
func (r *Rank) runDegradable(b Backend, opt CollectiveOptions, op string, run func(Backend) ([]float32, error)) ([]float32, error) {
	pol := opt.Degrade
	ladder := pol.Ladder
	if len(ladder) == 0 {
		ladder = defaultLadder(b)
	}
	attempts := pol.AttemptsPerBackend
	if attempts <= 0 {
		attempts = 2
	}
	if r.r.Config().RecvTimeout <= 0 {
		// Without a receive deadline a rank that abandons an attempt
		// leaves its peers blocked forever; refuse rather than deadlock.
		return nil, ErrDegradeNeedsTimeout
	}
	if pol.Shrink {
		if r.Size() > 64 {
			return nil, fmt.Errorf("%w (DegradePolicy.Shrink tracks membership in a 64-bit bitmap)", ErrWorldTooLarge)
		}
		// Fail-fast receives: a confirmed rank death cancels in-flight
		// waits immediately (cooperative abort) instead of letting every
		// survivor burn a full RecvTimeout per blocked link.
		r.r.SetFailFast(true)
		defer r.r.SetFailFast(false)
	}

	rung, tries := 0, 0
	var lastErr error
	for {
		out, err := run(ladder[rung])
		lastErr = err
		if err != nil && (errors.Is(err, ErrRankKilled) || errors.Is(err, ErrEvicted)) {
			// This rank itself is dead (injected kill) or was evicted by
			// the survivors: it no longer participates in consensus.
			return nil, err
		}
		status := agreeOK
		if err != nil {
			status = agreeRetry
			if pol.Shrink && r.r.SuspectedDead() != 0 {
				// A member looks dead: propose eviction rather than burning
				// backend retries on a peer that will never answer.
				status = agreeShrink
			}
			if !degradable(err) {
				status = agreeAbort
			}
		}
		agreed, aerr := r.r.AgreeMax(status)
		if aerr != nil {
			if pol.Shrink && errors.Is(aerr, ErrPeerFailed) {
				// The consensus round itself lost a member. Every survivor
				// observes the same aborted round, so all adopt shrink and
				// proceed to membership consensus together.
				agreed = agreeShrink
			} else if err != nil {
				return nil, fmt.Errorf("hzccl: %s degradation consensus failed: %v (local error: %w)", op, aerr, err)
			} else {
				return nil, fmt.Errorf("hzccl: %s degradation consensus failed: %w", op, aerr)
			}
		}
		switch agreed {
		case agreeOK:
			return out, nil
		case agreeAbort:
			if err == nil {
				err = fmt.Errorf("hzccl: %s aborted by a peer's non-degradable failure", op)
			}
			return nil, err
		case agreeShrink:
			dead, merr := r.r.AgreeDead(r.r.SuspectedDead())
			if merr != nil {
				return nil, fmt.Errorf("hzccl: %s membership consensus failed: %w", op, merr)
			}
			if dead != 0 {
				// Evict the dead, renumber into the dense survivor world
				// (ShrinkWorld advances the epoch itself) and re-run this
				// rung from a clean slate.
				if serr := r.r.ShrinkWorld(dead); serr != nil {
					return nil, fmt.Errorf("hzccl: %s shrink failed: %w", op, serr)
				}
				tries = 0
				continue
			}
			// False alarm (a suspect recovered before the membership round):
			// fall through to plain retry bookkeeping.
		}
		// agreeRetry: discard the abandoned attempt's in-flight traffic,
		// then either retry this rung or descend.
		r.r.AdvanceEpoch()
		tries++
		if tries >= attempts {
			if rung+1 >= len(ladder) {
				if err == nil {
					err = fmt.Errorf("hzccl: %s failed on every backend in the ladder (last rung %s)", op, ladder[rung])
				}
				return nil, fmt.Errorf("hzccl: %s degradation ladder exhausted: %w", op, err)
			}
			reason := "peer-driven"
			if lastErr != nil {
				reason = lastErr.Error()
			}
			if r.rec != nil {
				r.rec.record(Degradation{Rank: r.ID(), Op: op, From: ladder[rung], To: ladder[rung+1], Reason: reason})
			} else {
				mDegradations.Inc()
			}
			r.r.NoteDegrade(int(ladder[rung]), int(ladder[rung+1]))
			rung++
			tries = 0
		}
	}
}
