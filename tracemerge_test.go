package hzccl_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hzccl"
)

// TestTCPTraceMergeFourRanks is the tentpole acceptance test for
// distributed tracing: four "processes" (goroutines, each with its own
// TCPTransport, Cluster and Trace — exactly what four real processes
// would run) execute one traced Allreduce over loopback sockets, each
// writes its own Chrome trace file, and MergeChromeTraces must stitch
// them into one Perfetto-loadable timeline with at least one
// cross-process send→recv flow pair per ring step.
func TestTCPTraceMergeFourRanks(t *testing.T) {
	const n = 4
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	data := sineField(2048, 11)
	traces := make([]*hzccl.Trace, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		traces[i] = &hzccl.Trace{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := hzccl.NewTCPTransport(hzccl.TCPOptions{
				Rank: i, Peers: peers, Listener: lns[i], DialTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			_, errs[i] = hzccl.RunCluster(hzccl.ClusterConfig{
				Ranks: n, Transport: tr, Trace: traces[i],
			}, func(r *hzccl.Rank) error {
				_, err := r.Allreduce(data, hzccl.BackendHZCCL, hzccl.CollectiveOptions{ErrorBound: 1e-4})
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}

	// Each process writes its own trace file; all four carry the same
	// handshake-agreed epoch, so the merge aligns them with zero shift.
	files := make([]*bytes.Buffer, n)
	for i, tr := range traces {
		m := tr.Meta()
		if m == nil || m.Rank != i || m.World != n {
			t.Fatalf("trace %d meta = %+v, want rank %d world %d", i, m, i, n)
		}
		files[i] = &bytes.Buffer{}
		if err := tr.WriteChrome(files[i]); err != nil {
			t.Fatalf("rank %d: WriteChrome: %v", i, err)
		}
	}
	epoch0 := traces[0].Meta().EpochNanos
	for i := 1; i < n; i++ {
		if traces[i].Meta().EpochNanos != epoch0 {
			t.Fatalf("rank %d epoch %d differs from rank 0's %d: the TCP handshake should have agreed on one mesh epoch",
				i, traces[i].Meta().EpochNanos, epoch0)
		}
	}

	var out bytes.Buffer
	readers := make([]io.Reader, n)
	for i, f := range files {
		readers[i] = f
	}
	if err := hzccl.MergeChromeTraces(&out, readers...); err != nil {
		t.Fatalf("MergeChromeTraces: %v", err)
	}

	var merged struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			ID   string  `json:"id"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		Meta            *hzccl.TraceMeta `json:"hzcclMeta"`
	}
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatalf("merged trace is not valid trace-event JSON: %v", err)
	}
	if merged.DisplayTimeUnit != "ms" || merged.Meta == nil || merged.Meta.World != n {
		t.Fatalf("merged header wrong: unit=%q meta=%+v", merged.DisplayTimeUnit, merged.Meta)
	}

	// Pair flow endpoints by ID and demand the pair spans two processes.
	// The flow ID ends in ".<seq>" and in a ring collective seq is the ring
	// step, so cross-process coverage is checked per step: the HZCCL ring
	// allreduce runs 2(n−1) steps (reduce-scatter + allgather).
	type endpoint struct {
		pid int
		ok  bool
	}
	starts := map[string]endpoint{}
	finishes := map[string]endpoint{}
	for _, ev := range merged.TraceEvents {
		switch ev.Ph {
		case "s":
			starts[ev.ID] = endpoint{ev.Pid, true}
		case "f":
			finishes[ev.ID] = endpoint{ev.Pid, true}
		}
	}
	crossByStep := map[int]int{}
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok || s.pid == f.pid {
			continue
		}
		dot := strings.LastIndex(id, ".")
		if dot < 0 {
			t.Fatalf("flow id %q does not end in a sequence number", id)
		}
		seq, err := strconv.Atoi(id[dot+1:])
		if err != nil {
			t.Fatalf("flow id %q: bad sequence suffix: %v", id, err)
		}
		crossByStep[seq]++
	}
	if len(starts) == 0 || len(finishes) == 0 {
		t.Fatalf("merged trace has %d flow starts and %d finishes; tracing did not propagate across the TCP transport",
			len(starts), len(finishes))
	}
	const steps = 2 * (n - 1)
	for step := 0; step < steps; step++ {
		if crossByStep[step] < 1 {
			t.Fatalf("ring step %d has no cross-process flow pair (coverage: %v)", step, crossByStep)
		}
	}
}
