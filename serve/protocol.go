// Package serve turns the collective runtime into a long-lived service:
// one hzccl-serve process per rank owns a TCP mesh handshaked exactly
// once, and clients submit collective jobs to rank 0 over a small
// JSON-lines protocol. Each job runs on its own transport session (a
// private sequence/epoch/consensus space multiplexed over the shared
// connections), so many jobs — including concurrent ones — execute
// without re-forming the mesh and without cross-delivering traffic.
//
// The package has three faces:
//
//   - Daemon (Start): the per-rank server. Rank 0 is the scheduler and
//     client front door; every other rank is a worker driven by job
//     control frames on the mesh itself.
//   - Client (Dial): the thin submission API clients and the
//     hzccl-collective -submit mode use.
//   - The wire types below, shared by both.
//
// A submitted job runs the exact collective configuration of
// `hzccl-collective -transport` (same dataset, error-bound derivation
// and network model), so a daemon job's per-rank digests are
// bit-identical to a standalone run with the same spec — the property
// scripts/tcp_smoke.sh verifies.
package serve

import "errors"

// ErrQueueFull is returned by Client.Submit (and carried as code
// "queue_full" on the wire) when the daemon's bounded submission queue
// has no room. It is backpressure, not failure: the job was never
// admitted, and retrying later is safe.
var ErrQueueFull = errors.New("serve: job queue full")

// Client-protocol operation names (request.Op).
const (
	opPing   = "ping"
	opSubmit = "submit"
	opJobs   = "jobs"
)

// Error codes carried in response.Code.
const (
	codeQueueFull = "queue_full"
	codeBadSpec   = "bad_spec"
	codeFailed    = "failed"
)

// Job states reported by JobStatus.State.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobSpec describes one collective job. The zero value of every field
// selects the defaults of `hzccl-collective -transport`, which keeps
// daemon digests comparable to standalone runs out of the box.
type JobSpec struct {
	// Op is the collective: "allreduce" (default) or "reduce_scatter".
	Op string `json:"op,omitempty"`
	// Backend is "mpi", "ccoll" or "hzccl" (default).
	Backend string `json:"backend,omitempty"`
	// Algorithm is "ring" (default), "rd", "rabenseifner",
	// "hierarchical" or "auto".
	Algorithm string `json:"algorithm,omitempty"`
	// Topology groups ranks into nodes ("2x2" or "3,5"); empty = flat.
	Topology string `json:"topology,omitempty"`
	// MessageBytes is the per-rank input size (default 256 KiB).
	MessageBytes int `json:"message_bytes,omitempty"`
	// RelBound is the relative error bound (default 1e-4).
	RelBound float64 `json:"rel_bound,omitempty"`
	// Dataset and Offset select the synthetic input field every rank
	// loads (default "SimSet1" at offset 0) — the same deterministic
	// inputs standalone transport runs use.
	Dataset string `json:"dataset,omitempty"`
	Offset  int    `json:"offset,omitempty"`
	// KillRank, when > 0, crashes that rank's job body mid-collective as
	// an elastic-membership exercise: the survivors evict it and finish
	// on the shrunken world. Rank 0 (the barrier coordinator) cannot be
	// the victim. KillStep is the program-order send step of the crash.
	KillRank int `json:"kill_rank,omitempty"`
	KillStep int `json:"kill_step,omitempty"`
}

// JobResult is what a successful Submit returns: the job's identity and
// the per-rank outcome. Digest keys are decimal rank numbers, values
// the 8-hex-digit crc32c fingerprint of that rank's reduced vector —
// the same fingerprint `hzccl-collective -transport` prints.
type JobResult struct {
	ID      uint32            `json:"id"`
	Digests map[string]string `json:"digests"`
	// VirtualSeconds is the modeled collective time, WallSeconds the
	// coordinator's real elapsed time.
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	// Evicted lists ranks removed by a membership shrink; Killed lists
	// ranks whose body died to an injected kill (a subset of Evicted in
	// a healthy run).
	Evicted []int `json:"evicted,omitempty"`
	Killed  []int `json:"killed,omitempty"`
}

// JobStatus is one entry of the daemon's job registry (the /jobs obs
// endpoint and the "jobs" client request).
type JobStatus struct {
	ID      uint32            `json:"id"`
	State   string            `json:"state"`
	Op      string            `json:"op"`
	Backend string            `json:"backend"`
	Bytes   int               `json:"bytes"`
	Digests map[string]string `json:"digests,omitempty"`
	Evicted []int             `json:"evicted,omitempty"`
	Err     string            `json:"error,omitempty"`
}

// request/response are the JSON-lines client protocol. One request per
// line; submit responses arrive when the job finishes, so a connection
// observes its own submissions in completion order.
type request struct {
	Op   string   `json:"op"`
	Spec *JobSpec `json:"spec,omitempty"`
}

type response struct {
	OK     bool        `json:"ok"`
	Error  string      `json:"error,omitempty"`
	Code   string      `json:"code,omitempty"`
	Result *JobResult  `json:"result,omitempty"`
	Jobs   []JobStatus `json:"jobs,omitempty"`
	World  int         `json:"world,omitempty"`
}

// Mesh job-frame kinds (the transport reserves kind 0 for its internal
// end-of-session broadcast).
const (
	kStart byte = 1 // scheduler → worker: spec JSON; open the session
	kReady byte = 2 // worker → scheduler: session open, standing by
	kGo    byte = 3 // scheduler → worker: every rank is ready, run
	kDone  byte = 4 // worker → scheduler: rankReport JSON
)

// rankReport is one rank's kDone payload.
type rankReport struct {
	Rank    int     `json:"rank"`
	Digest  string  `json:"digest,omitempty"`
	Virtual float64 `json:"virtual"`
	Wall    float64 `json:"wall"`
	Evicted []int   `json:"evicted,omitempty"`
	Killed  bool    `json:"killed,omitempty"`
	Err     string  `json:"error,omitempty"`
}
