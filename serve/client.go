package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a thin connection to a daemon's client port (rank 0's
// ClientAddr). It is safe for concurrent use, but requests on one
// client are serialized — open several clients for concurrent
// submissions, as scripts/tcp_smoke.sh does.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a daemon's client port.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) do(req request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("serve: send %s: %w", req.Op, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("serve: read %s response: %w", req.Op, err)
	}
	if !resp.OK {
		if resp.Code == codeQueueFull {
			return nil, fmt.Errorf("%w", ErrQueueFull)
		}
		return nil, errors.New(resp.Error)
	}
	return &resp, nil
}

// Ping checks liveness and returns the daemon's mesh size.
func (c *Client) Ping() (world int, err error) {
	resp, err := c.do(request{Op: opPing})
	if err != nil {
		return 0, err
	}
	return resp.World, nil
}

// Submit runs one collective job on the daemon's mesh, blocking until
// it completes. A full submission queue returns ErrQueueFull
// immediately (check with errors.Is) — the job was never admitted.
func (c *Client) Submit(spec JobSpec) (*JobResult, error) {
	resp, err := c.do(request{Op: opSubmit, Spec: &spec})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("serve: submit response without a result")
	}
	return resp.Result, nil
}

// Jobs returns the daemon's job registry, oldest first.
func (c *Client) Jobs() ([]JobStatus, error) {
	resp, err := c.do(request{Op: opJobs})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}
