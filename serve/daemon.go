package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hzccl"
	"hzccl/internal/datasets"
	"hzccl/internal/metrics"
	"hzccl/internal/telemetry"
)

// Job telemetry: every admission decision and outcome is counted, so a
// scrape of any daemon rank shows what the service has been doing.
var (
	mJobsSubmitted = telemetry.C("serve.jobs.submitted")
	mJobsCompleted = telemetry.C("serve.jobs.completed")
	mJobsFailed    = telemetry.C("serve.jobs.failed")
	mJobsRejected  = telemetry.C("serve.jobs.rejected_queue_full")
)

// Flight-recorder phase codes of serve-level FlightJob events (the
// transport records phases 0/1 for session open/close).
const (
	flightJobStart = 2
	flightJobDone  = 3
	flightJobFail  = 4
)

// Options configures one daemon rank.
type Options struct {
	// Rank and Peers describe this process's place in the mesh, exactly
	// as TCPOptions does: Peers[Rank] is our listen address.
	Rank  int
	Peers []string
	// Listener, when non-nil, replaces listening on Peers[Rank] (tests
	// use it to grab ephemeral ports).
	Listener net.Listener
	// DialTimeout bounds mesh formation (0 = the transport's 15s).
	DialTimeout time.Duration
	// ClientAddr is where rank 0 serves the client protocol
	// ("host:port"; empty selects a loopback ephemeral port). Ignored on
	// other ranks — the mesh itself carries their control traffic.
	ClientAddr string
	// QueueDepth bounds the submission queue on rank 0: a submit
	// arriving with the queue full is rejected with ErrQueueFull instead
	// of growing an unbounded backlog. 0 selects 16.
	QueueDepth int
	// MaxConcurrent caps the jobs running simultaneously. The scheduler
	// acquires a slot BEFORE telling any worker to start, so the set of
	// concurrently-running jobs is identical on every rank. 0 selects 2.
	MaxConcurrent int
	// JobTimeout bounds each job's rank-membership handshake and result
	// collection (not the collective itself, which is bounded by its own
	// receive deadline and retry budget). 0 selects 60s.
	JobTimeout time.Duration
	// RecvTimeout is the per-job receive deadline (0 = 2s, matching
	// `hzccl-collective -transport`).
	RecvTimeout time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth == 0 {
		o.QueueDepth = 16
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 2
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 60 * time.Second
	}
	if o.RecvTimeout == 0 {
		o.RecvTimeout = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// jobState is one registry entry plus the routing channels live while
// the job runs.
type jobState struct {
	status JobStatus
	// rank 0: worker readiness and result collection.
	ready chan int
	done  chan rankReport
	// workers: closed when the scheduler says go.
	goCh chan struct{}
}

// pendingJob is one queued submission on rank 0.
type pendingJob struct {
	spec JobSpec
	resp chan response
}

// Daemon is one rank of the collective-as-a-service mesh. Create it
// with Start; it serves until Close (or until the mesh dies under it —
// watch Done).
type Daemon struct {
	opt Options
	tr  *hzccl.TCPTransport

	clientLn net.Listener     // rank 0 only
	pending  chan *pendingJob // rank 0 only
	sem      chan struct{}    // rank 0 only

	mu     sync.Mutex
	jobs   map[uint32]*jobState
	order  []uint32
	nextID uint32
	conns  map[net.Conn]struct{} // live client connections (rank 0)

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// Start forms the mesh (blocking until every rank is connected) and
// begins serving jobs. Every rank of the service runs one Start; rank 0
// additionally opens the client listener.
func Start(opt Options) (*Daemon, error) {
	opt = opt.withDefaults()
	tr, err := hzccl.NewTCPTransport(hzccl.TCPOptions{
		Rank: opt.Rank, Peers: opt.Peers,
		DialTimeout: opt.DialTimeout, Listener: opt.Listener,
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		opt:    opt,
		tr:     tr,
		jobs:   make(map[uint32]*jobState),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	tr.SetJobHandler(d.handleJobFrame)
	// The service mesh has fixed membership: jobs come and go on
	// sessions, but a mesh connection dying means a peer daemon is gone,
	// and the service cannot run full-world jobs anymore. Tear down so
	// operators (and Done watchers) see a crisp exit instead of every
	// future job timing out.
	tr.SetPeerDownHandler(func(rank int, cause error) {
		opt.Logf("serve: rank %d/%d: mesh peer %d down (%v), shutting down", opt.Rank, tr.World(), rank, cause)
		go d.Close()
	})
	if opt.Rank == 0 {
		addr := opt.ClientAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("serve: client listen %s: %w", addr, err)
		}
		d.clientLn = ln
		d.pending = make(chan *pendingJob, opt.QueueDepth)
		d.sem = make(chan struct{}, opt.MaxConcurrent)
		d.wg.Add(2)
		go d.acceptClients()
		go d.schedule()
	}
	opt.Logf("serve: rank %d/%d up (mesh %s)", opt.Rank, tr.World(), tr.Addr())
	return d, nil
}

// ClientAddr returns the client-protocol listen address (rank 0), or ""
// on worker ranks.
func (d *Daemon) ClientAddr() string {
	if d.clientLn == nil {
		return ""
	}
	return d.clientLn.Addr().String()
}

// World returns the mesh size.
func (d *Daemon) World() int { return d.tr.World() }

// Done is closed when the daemon shuts down — its own Close, or the
// self-teardown triggered by a peer daemon dying. Worker ranks select
// on it to exit when the service is torn down remotely.
func (d *Daemon) Done() <-chan struct{} { return d.closed }

// Close shuts the daemon down: the client listener, the mesh, and every
// in-flight job goroutine (which observe the closed mesh and fail
// promptly).
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		close(d.closed)
		if d.clientLn != nil {
			d.clientLn.Close()
		}
		d.mu.Lock()
		for conn := range d.conns {
			conn.Close()
		}
		d.mu.Unlock()
		d.tr.Close()
	})
	d.wg.Wait()
	return nil
}

// Jobs snapshots the local job registry, oldest job first. On rank 0
// this is the service-wide view; workers list the jobs they executed.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		if js, ok := d.jobs[id]; ok {
			out = append(out, js.status)
		}
	}
	return out
}

// setJobState mutates one registry entry under the lock.
func (d *Daemon) setJobState(id uint32, f func(*JobStatus)) {
	d.mu.Lock()
	if js, ok := d.jobs[id]; ok {
		f(&js.status)
	}
	d.mu.Unlock()
}

// ---------------------------------------------------------------------
// Rank 0: client front door and scheduler.

func (d *Daemon) acceptClients() {
	defer d.wg.Done()
	for {
		conn, err := d.clientLn.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go d.serveClient(conn)
	}
}

func (d *Daemon) serveClient(conn net.Conn) {
	defer d.wg.Done()
	d.mu.Lock()
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	select {
	case <-d.closed:
		// Shutdown raced the accept: Close may have iterated the conn
		// set before this registration.
		conn.Close()
	default:
	}
	defer func() {
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case opPing:
			resp = response{OK: true, World: d.tr.World()}
		case opJobs:
			resp = response{OK: true, Jobs: d.Jobs()}
		case opSubmit:
			resp = d.submit(req.Spec)
		default:
			resp = response{Error: fmt.Sprintf("unknown op %q", req.Op), Code: codeBadSpec}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// submit validates and enqueues one job, blocking until it completes
// (the response is the job's result). A full queue rejects immediately.
func (d *Daemon) submit(spec *JobSpec) response {
	if spec == nil {
		return response{Error: "submit without a spec", Code: codeBadSpec}
	}
	s := spec.withDefaults()
	if err := d.validate(s); err != nil {
		return response{Error: err.Error(), Code: codeBadSpec}
	}
	pj := &pendingJob{spec: s, resp: make(chan response, 1)}
	select {
	case d.pending <- pj:
		mJobsSubmitted.Inc()
	default:
		mJobsRejected.Inc()
		return response{Error: ErrQueueFull.Error(), Code: codeQueueFull}
	}
	select {
	case resp := <-pj.resp:
		return resp
	case <-d.closed:
		return response{Error: "daemon shutting down", Code: codeFailed}
	}
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Op == "" {
		s.Op = "allreduce"
	}
	if s.Backend == "" {
		s.Backend = "hzccl"
	}
	if s.Algorithm == "" {
		s.Algorithm = "ring"
	}
	if s.MessageBytes == 0 {
		s.MessageBytes = 1 << 18
	}
	if s.RelBound == 0 {
		s.RelBound = 1e-4
	}
	if s.Dataset == "" {
		s.Dataset = "SimSet1"
	}
	return s
}

func (d *Daemon) validate(s JobSpec) error {
	if s.Op != "allreduce" && s.Op != "reduce_scatter" {
		return fmt.Errorf("unknown op %q (want allreduce or reduce_scatter)", s.Op)
	}
	if _, err := parseBackend(s.Backend); err != nil {
		return err
	}
	if _, err := hzccl.ParseAlgorithm(s.Algorithm); err != nil {
		return err
	}
	if s.Topology != "" {
		if _, err := hzccl.ParseTopology(s.Topology); err != nil {
			return err
		}
	}
	if s.MessageBytes < 4 {
		return fmt.Errorf("message_bytes %d too small", s.MessageBytes)
	}
	if s.KillRank != 0 {
		if s.KillRank < 0 || s.KillRank >= d.tr.World() {
			return fmt.Errorf("kill_rank %d out of range [1, %d)", s.KillRank, d.tr.World())
		}
	}
	return nil
}

// schedule is rank 0's job loop: admit one queued job at a time, claim
// a concurrency slot, assign the next (strictly increasing) job ID,
// open the local session, tell every worker to start, and hand off to a
// coordinator goroutine. Everything order-sensitive — ID assignment,
// session opening, the kStart broadcast — happens here, serialized, so
// workers observe job IDs in increasing order on their rank-0
// connection and the transport's monotonic-ID rule holds by
// construction.
func (d *Daemon) schedule() {
	defer d.wg.Done()
	for {
		var pj *pendingJob
		select {
		case pj = <-d.pending:
		case <-d.closed:
			return
		}
		select {
		case d.sem <- struct{}{}:
		case <-d.closed:
			pj.resp <- response{Error: "daemon shutting down", Code: codeFailed}
			return
		}
		d.mu.Lock()
		d.nextID++
		id := d.nextID
		d.mu.Unlock()
		sess, err := d.tr.Session(id)
		if err != nil {
			<-d.sem
			pj.resp <- response{Error: err.Error(), Code: codeFailed}
			continue
		}
		js := &jobState{
			status: JobStatus{ID: id, State: StateRunning, Op: pj.spec.Op, Backend: pj.spec.Backend, Bytes: pj.spec.MessageBytes},
			ready:  make(chan int, d.tr.World()),
			done:   make(chan rankReport, d.tr.World()),
		}
		d.mu.Lock()
		d.jobs[id] = js
		d.order = append(d.order, id)
		d.mu.Unlock()
		telemetry.Flight().Record(d.opt.Rank, telemetry.FlightJob, int64(id), flightJobStart, 0, 0)
		d.opt.Logf("serve: job %d admitted (%s/%s, %d bytes)", id, pj.spec.Op, pj.spec.Backend, pj.spec.MessageBytes)
		payload, _ := json.Marshal(pj.spec)
		startErr := error(nil)
		for w := 1; w < d.tr.World(); w++ {
			if err := d.tr.SendJob(w, id, kStart, payload); err != nil {
				startErr = fmt.Errorf("start rank %d: %w", w, err)
				break
			}
		}
		d.wg.Add(1)
		go d.coordinate(pj, id, sess, js, startErr)
	}
}

// coordinate drives one job on rank 0: gather worker readiness,
// broadcast go, run the local rank, collect every rank's report, and
// answer the submitting client.
func (d *Daemon) coordinate(pj *pendingJob, id uint32, sess hzccl.Transport, js *jobState, startErr error) {
	defer d.wg.Done()
	defer func() { <-d.sem }()
	n := d.tr.World()
	fail := func(err error) {
		sess.Close()
		d.finishJob(id, nil, err)
		pj.resp <- response{Error: fmt.Sprintf("job %d: %v", id, err), Code: codeFailed}
	}
	if startErr != nil {
		fail(startErr)
		return
	}
	deadline := time.NewTimer(d.opt.JobTimeout)
	defer deadline.Stop()
	for need := n - 1; need > 0; need-- {
		select {
		case <-js.ready:
		case <-deadline.C:
			fail(fmt.Errorf("membership handshake: %d workers missing after %v", need, d.opt.JobTimeout))
			return
		case <-d.closed:
			fail(errors.New("daemon shutting down"))
			return
		}
	}
	for w := 1; w < n; w++ {
		if err := d.tr.SendJob(w, id, kGo, nil); err != nil {
			fail(fmt.Errorf("go rank %d: %w", w, err))
			return
		}
	}
	reports := map[int]rankReport{0: d.runJob(sess, pj.spec)}
	for len(reports) < n {
		select {
		case rep := <-js.done:
			reports[rep.Rank] = rep
		case <-deadline.C:
			fail(fmt.Errorf("result collection: %d ranks missing after %v", n-len(reports), d.opt.JobTimeout))
			return
		case <-d.closed:
			fail(errors.New("daemon shutting down"))
			return
		}
	}

	result := &JobResult{ID: id, Digests: make(map[string]string)}
	var jobErr error
	for rank, rep := range reports {
		switch {
		case rep.Killed:
			result.Killed = append(result.Killed, rank)
		case rep.Err != "":
			if jobErr == nil {
				jobErr = fmt.Errorf("rank %d: %s", rank, rep.Err)
			}
		default:
			result.Digests[strconv.Itoa(rank)] = rep.Digest
		}
		if len(rep.Evicted) > len(result.Evicted) {
			result.Evicted = rep.Evicted
		}
	}
	sort.Ints(result.Killed)
	r0 := reports[0]
	result.VirtualSeconds, result.WallSeconds = r0.Virtual, r0.Wall
	if jobErr != nil {
		d.finishJob(id, nil, jobErr)
		pj.resp <- response{Error: fmt.Sprintf("job %d: %v", id, jobErr), Code: codeFailed}
		return
	}
	d.finishJob(id, result, nil)
	pj.resp <- response{OK: true, Result: result}
}

// finishJob records a job's outcome in the registry, the counters and
// the flight recorder, and releases its routing channels.
func (d *Daemon) finishJob(id uint32, result *JobResult, err error) {
	phase := int64(flightJobDone)
	d.setJobState(id, func(s *JobStatus) {
		if err != nil {
			s.State = StateFailed
			s.Err = err.Error()
		} else {
			s.State = StateDone
			s.Digests = result.Digests
			s.Evicted = result.Evicted
		}
	})
	if err != nil {
		phase = flightJobFail
		mJobsFailed.Inc()
		d.opt.Logf("serve: job %d failed: %v", id, err)
	} else {
		mJobsCompleted.Inc()
		d.opt.Logf("serve: job %d done (%d digests)", id, len(result.Digests))
	}
	telemetry.Flight().Record(d.opt.Rank, telemetry.FlightJob, int64(id), phase, 0, 0)
}

// ---------------------------------------------------------------------
// Mesh control plane: the job-frame handler every rank runs. Handlers
// execute on the reader goroutine of the originating connection, so
// everything here is non-blocking: channel sends into buffers sized for
// the mesh, map updates under a short lock, goroutine spawns.

func (d *Daemon) handleJobFrame(from int, job uint32, kind byte, payload []byte) {
	switch kind {
	case kStart:
		d.onStart(job, payload)
	case kReady:
		d.mu.Lock()
		js := d.jobs[job]
		d.mu.Unlock()
		if js != nil && js.ready != nil {
			select {
			case js.ready <- from:
			default:
			}
		}
	case kGo:
		d.mu.Lock()
		js := d.jobs[job]
		d.mu.Unlock()
		if js != nil && js.goCh != nil {
			select {
			case <-js.goCh: // already released
			default:
				close(js.goCh)
			}
		}
	case kDone:
		var rep rankReport
		if err := json.Unmarshal(payload, &rep); err != nil {
			d.opt.Logf("serve: job %d: bad done report from rank %d: %v", job, from, err)
			return
		}
		d.mu.Lock()
		js := d.jobs[job]
		d.mu.Unlock()
		if js != nil && js.done != nil {
			select {
			case js.done <- rep:
			default:
			}
		}
	}
}

// onStart is a worker's admission path: open the job's session (ordered
// — kStart frames arrive on the rank-0 connection in ID order, and this
// runs on its reader goroutine), register the job, and hand the rest to
// a goroutine that waits for the go signal.
func (d *Daemon) onStart(job uint32, payload []byte) {
	var spec JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		d.opt.Logf("serve: job %d: bad spec: %v", job, err)
		return
	}
	sess, err := d.tr.Session(job)
	if err != nil {
		d.opt.Logf("serve: job %d: session: %v", job, err)
		return
	}
	js := &jobState{
		status: JobStatus{ID: job, State: StateRunning, Op: spec.Op, Backend: spec.Backend, Bytes: spec.MessageBytes},
		goCh:   make(chan struct{}),
	}
	d.mu.Lock()
	d.jobs[job] = js
	d.order = append(d.order, job)
	d.mu.Unlock()
	telemetry.Flight().Record(d.opt.Rank, telemetry.FlightJob, int64(job), flightJobStart, 0, 0)
	if err := d.tr.SendJob(0, job, kReady, nil); err != nil {
		d.opt.Logf("serve: job %d: ready: %v", job, err)
		sess.Close()
		return
	}
	d.wg.Add(1)
	go d.runWorker(sess, job, spec, js)
}

// runWorker executes one job on a worker rank: wait for the scheduler's
// go, run the collective on the job's session, report back.
func (d *Daemon) runWorker(sess hzccl.Transport, job uint32, spec JobSpec, js *jobState) {
	defer d.wg.Done()
	deadline := time.NewTimer(d.opt.JobTimeout)
	defer deadline.Stop()
	select {
	case <-js.goCh:
	case <-deadline.C:
		sess.Close()
		d.setJobState(job, func(s *JobStatus) { s.State = StateFailed; s.Err = "go signal never arrived" })
		mJobsFailed.Inc()
		return
	case <-d.closed:
		sess.Close()
		return
	}
	rep := d.runJob(sess, spec)
	buf, _ := json.Marshal(rep)
	if err := d.tr.SendJob(0, job, kDone, buf); err != nil {
		d.opt.Logf("serve: job %d: done report: %v", job, err)
	}
	phase := int64(flightJobDone)
	d.setJobState(job, func(s *JobStatus) {
		if rep.Err != "" && !rep.Killed {
			s.State = StateFailed
			s.Err = rep.Err
			phase = flightJobFail
		} else {
			s.State = StateDone
			if rep.Digest != "" {
				s.Digests = map[string]string{strconv.Itoa(rep.Rank): rep.Digest}
			}
			s.Evicted = rep.Evicted
		}
	})
	telemetry.Flight().Record(d.opt.Rank, telemetry.FlightJob, int64(job), phase, 0, 0)
}

// ---------------------------------------------------------------------
// The collective itself.

// runJob executes the spec's collective for this rank on the given job
// session, with exactly the configuration `hzccl-collective -transport`
// uses — same deterministic inputs, error-bound derivation and network
// model — so digests are comparable bit-for-bit to standalone runs.
func (d *Daemon) runJob(sess hzccl.Transport, spec JobSpec) rankReport {
	rep := rankReport{Rank: d.opt.Rank}
	backend, err := parseBackend(spec.Backend)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	algo, err := hzccl.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	var topo *hzccl.Topology
	if spec.Topology != "" {
		if topo, err = hzccl.ParseTopology(spec.Topology); err != nil {
			rep.Err = err.Error()
			return rep
		}
	}
	base, err := datasets.Field(spec.Dataset, spec.Offset, spec.MessageBytes/4)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	opt := hzccl.CollectiveOptions{
		ErrorBound: metrics.AbsBound(spec.RelBound, base),
		Algorithm:  algo,
	}
	cfg := hzccl.ClusterConfig{
		Ranks:          d.tr.World(),
		Latency:        2 * time.Microsecond,
		BandwidthBytes: 0.4e9,
		Topology:       topo,
		RecvTimeout:    d.opt.RecvTimeout,
		Transport:      sess,
	}
	if spec.KillRank > 0 {
		cfg.Fault = hzccl.KillRank{Rank: spec.KillRank, AtStep: spec.KillStep}.Fault()
		cfg.Reliable = true
		opt.Degrade = &hzccl.DegradePolicy{Shrink: true}
	}
	var digest uint32
	var have bool
	res, err := hzccl.RunCluster(cfg, func(r *hzccl.Rank) error {
		var out []float32
		var err error
		switch spec.Op {
		case "reduce_scatter":
			out, err = r.ReduceScatter(base, backend, opt)
		default:
			out, err = r.Allreduce(base, backend, opt)
		}
		if err != nil {
			return err
		}
		digest = digest32(out)
		have = true
		return nil
	})
	if err != nil {
		if errors.Is(err, hzccl.ErrRankKilled) {
			// The injected crash: dying is this rank's expected outcome;
			// the survivors carry the collective.
			rep.Killed = true
			return rep
		}
		rep.Err = err.Error()
		return rep
	}
	if have {
		rep.Digest = fmt.Sprintf("%08x", digest)
	}
	rep.Virtual, rep.Wall = res.Seconds, res.WallSeconds
	rep.Evicted = res.Evicted
	return rep
}

func parseBackend(s string) (hzccl.Backend, error) {
	switch strings.ToLower(s) {
	case "mpi":
		return hzccl.BackendMPI, nil
	case "ccoll", "c-coll":
		return hzccl.BackendCColl, nil
	case "hzccl", "":
		return hzccl.BackendHZCCL, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want mpi, ccoll or hzccl)", s)
}

// digest32 fingerprints a reduced vector: crc32c over its little-endian
// float32 bits, the format `hzccl-collective -transport` prints.
func digest32(v []float32) uint32 {
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	return crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli))
}
