package serve

// Daemon lifecycle suite: concurrent jobs over one handshaked mesh must
// be digest-identical to standalone in-process runs, a job that loses a
// rank mid-collective must shrink and finish, and the bounded
// submission queue must reject with the typed ErrQueueFull.

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"hzccl"
	"hzccl/internal/datasets"
	"hzccl/internal/metrics"
	"hzccl/internal/telemetry"
)

func counterValue(name string) int64 { return telemetry.C(name).Value() }

// startService boots an n-rank daemon service on loopback ephemeral
// ports and returns the daemons (rank 0 first). tweak, when non-nil,
// adjusts every rank's options before start.
func startService(t *testing.T, n int, tweak func(*Options)) []*Daemon {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen rank %d: %v", i, err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	ds := make([]*Daemon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := Options{
				Rank: i, Peers: peers, Listener: lns[i],
				DialTimeout: 10 * time.Second,
				JobTimeout:  30 * time.Second,
				Logf:        t.Logf,
			}
			if tweak != nil {
				tweak(&opt)
			}
			ds[i], errs[i] = Start(opt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, d := range ds {
			if d != nil {
				d.Close()
			}
		}
	})
	return ds
}

// refDigests runs the spec's collective on the default in-process
// fabric with exactly the daemon's configuration and returns per-rank
// digests keyed like JobResult.Digests — the standalone reference a
// daemon job must match bit-for-bit.
func refDigests(t *testing.T, world int, spec JobSpec) map[string]string {
	t.Helper()
	spec = spec.withDefaults()
	backend, err := parseBackend(spec.Backend)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := hzccl.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	base, err := datasets.Field(spec.Dataset, spec.Offset, spec.MessageBytes/4)
	if err != nil {
		t.Fatal(err)
	}
	opt := hzccl.CollectiveOptions{ErrorBound: metrics.AbsBound(spec.RelBound, base), Algorithm: algo}
	cfg := hzccl.ClusterConfig{
		Ranks: world, Latency: 2 * time.Microsecond, BandwidthBytes: 0.4e9,
		RecvTimeout: 2 * time.Second,
	}
	if spec.KillRank > 0 {
		cfg.Fault = hzccl.KillRank{Rank: spec.KillRank, AtStep: spec.KillStep}.Fault()
		cfg.Reliable = true
		opt.Degrade = &hzccl.DegradePolicy{Shrink: true}
	}
	var mu sync.Mutex
	digests := make(map[string]string)
	_, err = hzccl.RunCluster(cfg, func(r *hzccl.Rank) error {
		id0 := r.ID()
		var out []float32
		var err error
		if spec.Op == "reduce_scatter" {
			out, err = r.ReduceScatter(base, backend, opt)
		} else {
			out, err = r.Allreduce(base, backend, opt)
		}
		if err != nil {
			return err
		}
		mu.Lock()
		digests[strconv.Itoa(id0)] = fmt.Sprintf("%08x", digest32(out))
		mu.Unlock()
		return nil
	})
	if err != nil && !errors.Is(err, hzccl.ErrRankKilled) {
		t.Fatalf("reference run: %v", err)
	}
	return digests
}

// The acceptance property: one 4-rank service, handshaked once, runs
// two jobs CONCURRENTLY (different backends and algorithms), and every
// per-rank digest is bit-identical to a standalone in-process run of
// the same spec.
func TestDaemonConcurrentJobsMatchStandalone(t *testing.T) {
	const n = 4
	ds := startService(t, n, nil)
	specs := []JobSpec{
		{Backend: "hzccl", Algorithm: "ring", MessageBytes: 1 << 16},
		{Backend: "mpi", Algorithm: "rd", MessageBytes: 1 << 15},
	}
	refs := make([]map[string]string, len(specs))
	for i, s := range specs {
		refs[i] = refDigests(t, n, s)
	}
	results := make([]*JobResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s JobSpec) {
			defer wg.Done()
			c, err := Dial(ds[0].ClientAddr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			results[i], errs[i] = c.Submit(s)
		}(i, s)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if len(results[i].Digests) != n {
			t.Fatalf("job %d: %d digests, want %d", i, len(results[i].Digests), n)
		}
		for rank, want := range refs[i] {
			if got := results[i].Digests[rank]; got != want {
				t.Fatalf("job %d rank %s: daemon digest %s, standalone %s", i, rank, got, want)
			}
		}
		if results[i].VirtualSeconds <= 0 {
			t.Fatalf("job %d: no virtual time reported", i)
		}
	}
	// Both jobs ran as distinct IDs in the registry, all done.
	c, err := Dial(ds[0].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(specs) {
		t.Fatalf("registry has %d jobs, want %d", len(jobs), len(specs))
	}
	for _, j := range jobs {
		if j.State != StateDone {
			t.Fatalf("job %d state %q, want done", j.ID, j.State)
		}
	}
	// Worker registries saw the same jobs.
	if got := len(ds[1].Jobs()); got != len(specs) {
		t.Fatalf("worker registry has %d jobs, want %d", got, len(specs))
	}
}

// A sequence of jobs reuses the mesh without re-handshaking: the
// transport dial/accept counters must not move after startup.
func TestDaemonReusesConnections(t *testing.T) {
	const n = 3
	ds := startService(t, n, nil)
	dials := transportConnCount()
	c, err := Dial(ds[0].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(JobSpec{MessageBytes: 1 << 14}); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if got := transportConnCount(); got != dials {
		t.Fatalf("connection count moved %d → %d across jobs; the mesh must be reused", dials, got)
	}
}

func transportConnCount() int64 {
	return counterValue("cluster.transport.dials") + counterValue("cluster.transport.accepts")
}

// A job whose spec kills a rank mid-collective must shrink and finish:
// the victim reports killed, the survivors' digests match the
// standalone kill run, and the service stays healthy for the next job.
func TestDaemonJobSurvivesKillRankShrink(t *testing.T) {
	const n = 4
	ds := startService(t, n, nil)
	spec := JobSpec{Backend: "hzccl", Algorithm: "ring", MessageBytes: 1 << 16, KillRank: 3, KillStep: 1}
	ref := refDigests(t, n, spec)
	c, err := Dial(ds[0].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("kill job: %v", err)
	}
	if len(res.Killed) != 1 || res.Killed[0] != 3 {
		t.Fatalf("killed = %v, want [3]", res.Killed)
	}
	if len(res.Evicted) == 0 {
		t.Fatalf("no eviction recorded for the killed rank")
	}
	if len(res.Digests) != n-1 {
		t.Fatalf("%d survivor digests, want %d", len(res.Digests), n-1)
	}
	for rank, want := range ref {
		if got := res.Digests[rank]; got != want {
			t.Fatalf("survivor rank %s: daemon digest %s, standalone %s", rank, got, want)
		}
	}
	// The shrink was job-scoped: the mesh is intact and the next healthy
	// job runs on the full world.
	after, err := c.Submit(JobSpec{MessageBytes: 1 << 14})
	if err != nil {
		t.Fatalf("job after shrink: %v", err)
	}
	if len(after.Digests) != n {
		t.Fatalf("post-shrink job got %d digests, want %d (shrink leaked across jobs)", len(after.Digests), n)
	}
}

// The submission queue is bounded: with the only concurrency slot
// occupied and the queue full, the next submit is rejected with the
// typed ErrQueueFull — deterministically, by holding the slot from the
// test.
func TestDaemonQueueFullTyped(t *testing.T) {
	const n = 2
	ds := startService(t, n, func(o *Options) {
		o.QueueDepth = 1
		o.MaxConcurrent = 1
	})
	d0 := ds[0]
	rejectedBefore := counterValue("serve.jobs.rejected_queue_full")

	// Occupy the only concurrency slot so admitted jobs cannot start.
	d0.sem <- struct{}{}
	release := func() { <-d0.sem }

	submitAsync := func() (<-chan *JobResult, <-chan error) {
		rc, ec := make(chan *JobResult, 1), make(chan error, 1)
		go func() {
			c, err := Dial(d0.ClientAddr())
			if err != nil {
				ec <- err
				return
			}
			defer c.Close()
			r, err := c.Submit(JobSpec{MessageBytes: 1 << 14})
			if err != nil {
				ec <- err
			} else {
				rc <- r
			}
		}()
		return rc, ec
	}
	// Job A: dequeued by the scheduler, blocked on the held slot.
	ra, ea := submitAsync()
	time.Sleep(200 * time.Millisecond)
	// Job B: sits in the (depth-1) queue.
	rb, eb := submitAsync()
	time.Sleep(200 * time.Millisecond)

	// Job C: queue full — typed rejection, immediately.
	c, err := Dial(d0.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Submit(JobSpec{MessageBytes: 1 << 14})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into a full queue: %v, want ErrQueueFull", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("queue-full rejection took %v; must not wait for running jobs", since)
	}
	if got := counterValue("serve.jobs.rejected_queue_full"); got != rejectedBefore+1 {
		t.Fatalf("rejection counter %d, want %d", got, rejectedBefore+1)
	}

	// Backpressure, not failure: released, both admitted jobs complete.
	release()
	for i, pair := range []struct {
		rc <-chan *JobResult
		ec <-chan error
	}{{ra, ea}, {rb, eb}} {
		select {
		case r := <-pair.rc:
			if len(r.Digests) != n {
				t.Fatalf("job %d: %d digests, want %d", i, len(r.Digests), n)
			}
		case err := <-pair.ec:
			t.Fatalf("queued job %d failed: %v", i, err)
		case <-time.After(30 * time.Second):
			t.Fatalf("queued job %d never completed after release", i)
		}
	}
}

// Spec validation happens at admission, not mid-job.
func TestDaemonRejectsBadSpecs(t *testing.T) {
	ds := startService(t, 2, nil)
	c, err := Dial(ds[0].ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, spec := range []JobSpec{
		{Backend: "turbo"},
		{Algorithm: "psychic"},
		{Op: "allgather"},
		{KillRank: 7},                  // out of the 2-rank world
		{MessageBytes: 2},              // below one element
		{Topology: "not-a-topology-#"}, // unparseable
	} {
		if _, err := c.Submit(spec); err == nil {
			t.Fatalf("bad spec %+v accepted", spec)
		} else if errors.Is(err, ErrQueueFull) {
			t.Fatalf("bad spec %+v misreported as queue pressure", spec)
		}
	}
	// The service is still healthy.
	if world, err := c.Ping(); err != nil || world != 2 {
		t.Fatalf("ping after rejections: world %d, err %v", world, err)
	}
}

// Closing rank 0 tears the whole service down: workers observe the dead
// mesh through Done.
func TestDaemonShutdownPropagates(t *testing.T) {
	ds := startService(t, 3, nil)
	ds[0].Close()
	for i := 1; i < 3; i++ {
		select {
		case <-ds[i].Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d never observed the mesh dying", i)
		}
	}
}
