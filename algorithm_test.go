package hzccl_test

import (
	"errors"
	"math"
	"testing"

	"hzccl"
)

// rankedField returns per-rank deterministic data for collective tests.
func rankedField(rank, n int) []float32 {
	return sineField(n, int64(rank)*104729+7)
}

func exactAllreduce(ranks, n int) []float64 {
	out := make([]float64, n)
	for r := 0; r < ranks; r++ {
		for i, v := range rankedField(r, n) {
			out[i] += float64(v)
		}
	}
	return out
}

// TestAlgorithmsAllBackends runs every (algorithm × backend) pair through
// the public API and checks the result against the float64 oracle.
func TestAlgorithmsAllBackends(t *testing.T) {
	const ranks, n = 8, 2000
	exact := exactAllreduce(ranks, n)
	topo := hzccl.UniformTopology(2, 4)
	algos := []hzccl.Algorithm{
		hzccl.AlgoRing, hzccl.AlgoRecursiveDoubling,
		hzccl.AlgoRabenseifner, hzccl.AlgoHierarchical, hzccl.AlgoAuto,
	}
	for _, b := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendCColl, hzccl.BackendHZCCL} {
		for _, algo := range algos {
			opt := hzccl.CollectiveOptions{ErrorBound: 1e-3, Algorithm: algo}
			outs := make([][]float32, ranks)
			blocks := make([][]float32, ranks)
			bounds := make([][2]int, ranks)
			res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: ranks, Topology: topo}, func(r *hzccl.Rank) error {
				out, err := r.Allreduce(rankedField(r.ID(), n), b, opt)
				if err != nil {
					return err
				}
				outs[r.ID()] = out
				block, err := r.ReduceScatter(rankedField(r.ID(), n), b, opt)
				if err != nil {
					return err
				}
				blocks[r.ID()] = block
				_, s, e := r.OwnedBlock(n)
				bounds[r.ID()] = [2]int{s, e}
				return nil
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", b, algo, err)
			}
			bound := 1e-3
			if b != hzccl.BackendMPI {
				bound = 2*float64(ranks+8)*1e-3 + 1e-4
			}
			for rk, out := range outs {
				if len(out) != n {
					t.Fatalf("%v/%v rank %d: %d elems", b, algo, rk, len(out))
				}
				for i := range out {
					if d := math.Abs(float64(out[i]) - exact[i]); d > bound {
						t.Fatalf("%v/%v rank %d elem %d: err %g", b, algo, rk, i, d)
					}
				}
			}
			// Reduce-scatter returns the world-owned block of the same sum.
			for rk, block := range blocks {
				s, e := bounds[rk][0], bounds[rk][1]
				if len(block) != e-s {
					t.Fatalf("%v/%v rank %d: block len %d, want %d", b, algo, rk, len(block), e-s)
				}
				for i := range block {
					if d := math.Abs(float64(block[i]) - exact[s+i]); d > bound {
						t.Fatalf("%v/%v rank %d rs elem %d: err %g", b, algo, rk, i, d)
					}
				}
			}
			// Every rank recorded two choices (allreduce + reduce_scatter),
			// all resolving to the same fixed algorithm.
			if len(res.AlgoChoices) != 2*ranks {
				t.Fatalf("%v/%v: %d algo choices, want %d", b, algo, len(res.AlgoChoices), 2*ranks)
			}
			for _, ch := range res.AlgoChoices {
				if algo == hzccl.AlgoAuto {
					if !ch.Auto || ch.Algorithm == hzccl.AlgoAuto {
						t.Fatalf("%v/%v: unresolved auto choice %+v", b, algo, ch)
					}
					if ch.ModeledSeconds <= 0 {
						t.Fatalf("%v/%v: auto choice without modeled cost %+v", b, algo, ch)
					}
				} else if ch.Auto || ch.Algorithm != algo {
					t.Fatalf("%v/%v: unexpected choice %+v", b, algo, ch)
				}
			}
		}
	}
}

// TestAutoDeterministic checks that AlgoAuto resolves identically across
// ranks and across runs.
func TestAutoDeterministic(t *testing.T) {
	opt := hzccl.CollectiveOptions{ErrorBound: 1e-3, Algorithm: hzccl.AlgoAuto}
	pick := func() hzccl.Algorithm {
		var res *hzccl.RunResult
		var err error
		res, err = hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 8, Topology: hzccl.UniformTopology(4, 2)},
			func(r *hzccl.Rank) error {
				_, e := r.Allreduce(rankedField(r.ID(), 512), hzccl.BackendHZCCL, opt)
				return e
			})
		if err != nil {
			t.Fatal(err)
		}
		got := res.AlgoChoices[0].Algorithm
		for _, ch := range res.AlgoChoices {
			if ch.Algorithm != got {
				t.Fatalf("ranks disagree: %+v vs %v", ch, got)
			}
		}
		return got
	}
	first := pick()
	for i := 0; i < 3; i++ {
		if got := pick(); got != first {
			t.Fatalf("run %d chose %v, first chose %v", i, got, first)
		}
	}
}

// TestBadAlgorithmRejected checks the typed, non-degradable rejection of
// unknown algorithms.
func TestBadAlgorithmRejected(t *testing.T) {
	_, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 2}, func(r *hzccl.Rank) error {
		_, err := r.Allreduce(make([]float32, 64), hzccl.BackendMPI,
			hzccl.CollectiveOptions{Algorithm: hzccl.Algorithm(42)})
		if err == nil {
			return errors.New("accepted Algorithm(42)")
		}
		if !errors.Is(err, hzccl.ErrBadAlgorithm) {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Under a DegradePolicy the error must abort, not walk the ladder.
	res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 2, RecvTimeout: 200 * 1e6}, func(r *hzccl.Rank) error {
		_, err := r.Allreduce(make([]float32, 64), hzccl.BackendHZCCL, hzccl.CollectiveOptions{
			ErrorBound: 1e-3,
			Algorithm:  hzccl.Algorithm(-1),
			Degrade:    &hzccl.DegradePolicy{},
		})
		if err == nil {
			return errors.New("degrade ladder healed an invalid algorithm")
		}
		if !errors.Is(err, hzccl.ErrBadAlgorithm) {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degradations) != 0 {
		t.Fatalf("invalid algorithm caused degradations: %v", res.Degradations)
	}
}

// TestLegacyRecursiveMapsToRabenseifner preserves the documented meaning
// of CollectiveOptions.Recursive.
func TestLegacyRecursiveMapsToRabenseifner(t *testing.T) {
	for _, b := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendHZCCL, hzccl.BackendCColl} {
		res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 4}, func(r *hzccl.Rank) error {
			_, err := r.Allreduce(rankedField(r.ID(), 256), b,
				hzccl.CollectiveOptions{ErrorBound: 1e-3, Recursive: true})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		want := hzccl.AlgoRabenseifner
		if b == hzccl.BackendCColl {
			want = hzccl.AlgoRing // C-Coll historically always rang
		}
		for _, ch := range res.AlgoChoices {
			if ch.Algorithm != want {
				t.Fatalf("%v: Recursive resolved to %v, want %v", b, ch.Algorithm, want)
			}
		}
	}
}
