package hzccl_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"hzccl"
	"hzccl/internal/costmodel"
)

// Paper-scale virtual-time scaling sweep (the shape of the paper's Fig. 9):
// every algorithm × backend combination runs at each world size with
// modeled compute charging (CollectiveOptions.Rates), so 512-rank worlds
// complete in seconds of wall time while virtual times follow the (α, β)
// machine model.
//
// Correctness is checked the strongest way available: the sweep data
// lives on the dyadic grid (every value a multiple of 2·eb with eb = 0.25,
// all partial sums far below 2²⁴), where fZ-light's quantizer is exactly
// lossless and float32 addition is exact. On that grid every algorithm,
// every backend and the float64 oracle agree *bitwise*, so any schedule
// bug — a misrouted block, a double-add, an off-by-one fold — fails the
// test outright instead of hiding inside an error-bound tolerance.
//
// Environment knobs (used by scripts/bench.sh):
//
//	SCALING_WORLDS  comma-separated world sizes (default "8,64")
//	SCALING_OUT     path to write the Fig.-9-style JSON curve (optional)

const (
	sweepEB    = 0.25
	sweepElems = 4096
)

// sweepTopology returns the paper-shaped node grouping for a world size.
func sweepTopology(world int) *hzccl.Topology {
	switch world {
	case 8:
		return hzccl.UniformTopology(2, 4)
	case 64:
		return hzccl.UniformTopology(8, 8)
	case 128:
		return hzccl.UniformTopology(8, 16)
	case 512:
		return hzccl.UniformTopology(16, 32)
	}
	return nil // flat
}

// dyadicField returns rank-distinct data on the 0.5 grid, |v| ≤ 8.
func dyadicField(rank, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = 0.5 * float32((rank*31+i*7)%33-16)
	}
	return out
}

// dyadicOracle computes the float64 reference sum; on the dyadic grid the
// float32 downcast is exact.
func dyadicOracle(world, n int) []float32 {
	sum := make([]float64, n)
	for r := 0; r < world; r++ {
		for i, v := range dyadicField(r, n) {
			sum[i] += float64(v)
		}
	}
	out := make([]float32, n)
	for i, v := range sum {
		out[i] = float32(v)
	}
	return out
}

func sweepWorlds(t *testing.T) []int {
	spec := os.Getenv("SCALING_WORLDS")
	if spec == "" {
		spec = "8,64"
	}
	var out []int
	for _, p := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			t.Fatalf("bad SCALING_WORLDS entry %q", p)
		}
		out = append(out, v)
	}
	return out
}

type scalingPoint struct {
	World     int     `json:"world"`
	Topology  string  `json:"topology"`
	Backend   string  `json:"backend"`
	Algorithm string  `json:"algorithm"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedupVsMPI"`
}

func TestScalingSweep(t *testing.T) {
	worlds := sweepWorlds(t)
	rates := hzccl.DefaultAutoRates
	backends := []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendCColl, hzccl.BackendHZCCL}
	algos := []hzccl.Algorithm{
		hzccl.AlgoRing, hzccl.AlgoRecursiveDoubling,
		hzccl.AlgoRabenseifner, hzccl.AlgoHierarchical, hzccl.AlgoAuto,
	}
	var points []scalingPoint

	for _, world := range worlds {
		topo := sweepTopology(world)
		oracle := dyadicOracle(world, sweepElems)
		// Virtual completion time of the plain ring, the speedup baseline.
		var mpiRing float64

		for _, b := range backends {
			for _, algo := range algos {
				opt := hzccl.CollectiveOptions{
					ErrorBound: sweepEB,
					Algorithm:  algo,
					Rates:      &rates,
				}
				outs := make([][]float32, world)
				res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: world, Topology: topo},
					func(r *hzccl.Rank) error {
						out, err := r.Allreduce(dyadicField(r.ID(), sweepElems), b, opt)
						outs[r.ID()] = out
						return err
					})
				if err != nil {
					t.Fatalf("world=%d %v/%v: %v", world, b, algo, err)
				}

				// Bit-identity against the float64 oracle, every rank.
				for rk, out := range outs {
					if len(out) != sweepElems {
						t.Fatalf("world=%d %v/%v rank %d: %d elems", world, b, algo, rk, len(out))
					}
					for i := range out {
						if math.Float32bits(out[i]) != math.Float32bits(oracle[i]) {
							t.Fatalf("world=%d %v/%v rank %d elem %d: got %v want %v (not bit-identical)",
								world, b, algo, rk, i, out[i], oracle[i])
						}
					}
				}

				// AlgoAuto must resolve deterministically across ranks, and
				// its modeled cost can never exceed the worst fixed
				// algorithm's (it argmins over exactly that set).
				if algo == hzccl.AlgoAuto {
					checkAutoChoices(t, res, world, b, topo, rates)
				}

				if algo == hzccl.AlgoRing && b == hzccl.BackendMPI {
					mpiRing = res.Seconds
				}
				sp := 0.0
				if res.Seconds > 0 && mpiRing > 0 {
					sp = mpiRing / res.Seconds
				}
				points = append(points, scalingPoint{
					World: world, Topology: topo.String(),
					Backend: b.String(), Algorithm: algo.String(),
					Seconds: res.Seconds, Speedup: sp,
				})
			}
		}
	}

	if out := os.Getenv("SCALING_OUT"); out != "" {
		writeScalingJSON(t, out, worlds, points)
	}
}

func checkAutoChoices(t *testing.T, res *hzccl.RunResult, world int, b hzccl.Backend, topo *hzccl.Topology, rates hzccl.ModelRates) {
	t.Helper()
	if len(res.AlgoChoices) != world {
		t.Fatalf("world=%d %v auto: %d choices, want %d", world, b, len(res.AlgoChoices), world)
	}
	first := res.AlgoChoices[0]
	for _, ch := range res.AlgoChoices {
		if !ch.Auto || ch.Algorithm != first.Algorithm {
			t.Fatalf("world=%d %v auto: ranks disagree (%+v vs %+v)", world, b, ch, first)
		}
	}

	cm := costmodel.Rates{
		CPR: rates.CPR, DPR: rates.DPR, CPT: rates.CPT, HPR: rates.HPR,
		Ratio: 4, Alpha: 1.5e-6, Beta: 12.5e9, // ClusterConfig defaults
	}
	cb := costmodel.Plain
	switch b {
	case hzccl.BackendCColl:
		cb = costmodel.CColl
	case hzccl.BackendHZCCL:
		cb = costmodel.HZCCL
	}
	shape := costmodel.FlatTopo(world)
	if topo != nil {
		shape = costmodel.Topo{Nodes: topo.Nodes(), MaxNode: topo.MaxNodeSize()}
	}
	worst := 0.0
	for _, a := range []hzccl.Algorithm{hzccl.AlgoRing, hzccl.AlgoRecursiveDoubling, hzccl.AlgoRabenseifner, hzccl.AlgoHierarchical} {
		if c := cm.AllreduceAlgo(cb, a, world, 4*sweepElems, shape); c > worst {
			worst = c
		}
	}
	if first.ModeledSeconds > worst {
		t.Fatalf("world=%d %v auto: modeled %g exceeds worst fixed %g", world, b, first.ModeledSeconds, worst)
	}
}

func writeScalingJSON(t *testing.T, path string, worlds []int, points []scalingPoint) {
	t.Helper()
	doc := struct {
		Worlds []int          `json:"worlds"`
		Elems  int            `json:"elems"`
		EB     float64        `json:"errorBound"`
		Points []scalingPoint `json:"points"`
	}{Worlds: worlds, Elems: sweepElems, EB: sweepEB, Points: points}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("SCALING_OUT: %v", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatalf("SCALING_OUT: %v", err)
	}
	fmt.Printf("scaling curve written to %s (%d points)\n", path, len(points))
}

// TestScalingSweepDeterministic reruns one sweep cell and checks bitwise
// reproducibility of results and choices.
func TestScalingSweepDeterministic(t *testing.T) {
	run := func() ([][]float32, []hzccl.AlgoChoice) {
		rates := hzccl.DefaultAutoRates
		outs := make([][]float32, 8)
		res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: 8, Topology: sweepTopology(8)},
			func(r *hzccl.Rank) error {
				out, err := r.Allreduce(dyadicField(r.ID(), sweepElems), hzccl.BackendHZCCL,
					hzccl.CollectiveOptions{ErrorBound: sweepEB, Algorithm: hzccl.AlgoAuto, Rates: &rates})
				outs[r.ID()] = out
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		return outs, res.AlgoChoices
	}
	o1, c1 := run()
	o2, c2 := run()
	for rk := range o1 {
		for i := range o1[rk] {
			if math.Float32bits(o1[rk][i]) != math.Float32bits(o2[rk][i]) {
				t.Fatalf("rank %d elem %d differs across runs", rk, i)
			}
		}
	}
	if len(c1) != len(c2) {
		t.Fatalf("choice counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("choice %d differs: %+v vs %+v", i, c1[i], c2[i])
		}
	}
}
