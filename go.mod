module hzccl

go 1.24
