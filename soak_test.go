package hzccl

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"
)

// Seeded chaos soak: run a batch of collectives, killing a random rank
// mid-collective each iteration, and assert the survivors always
// converge on results bitwise identical to a fresh run on the shrunken
// world — and do so by cooperative abort, far faster than every survivor
// burning its receive deadline. `make soak` runs this race-enabled with
// more iterations; SOAK_ITERS and SOAK_SEED override the defaults.

func soakEnvInt(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// soakRand is a tiny deterministic splitmix64 stream, so a soak failure
// reproduces from its printed seed alone.
type soakRand uint64

func (r *soakRand) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	x := uint64(*r)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func soakField(n int, seed uint64) []float32 {
	r := soakRand(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(r.next()%2000)/100 - 10
	}
	return out
}

func TestShrinkSoak(t *testing.T) {
	const (
		world       = 5
		elems       = 64
		recvTimeout = 500 * time.Millisecond
	)
	iters := int(soakEnvInt("SOAK_ITERS", 3))
	seed := soakEnvInt("SOAK_SEED", 20260808)
	rng := soakRand(seed)
	algos := []Algorithm{AlgoRing, AlgoRecursiveDoubling, AlgoRabenseifner, AlgoHierarchical}
	topo := &Topology{NodeSizes: []int{2, 2, 1}}

	for it := 0; it < iters; it++ {
		victim := int(rng.next() % world)
		step := int(rng.next() % 2)
		algo := algos[rng.next()%uint64(len(algos))]
		kill := KillRank{Rank: victim, AtStep: step}
		name := fmt.Sprintf("iter%d_victim%d_step%d_algo%d", it, victim, step, algo)

		inputs := make([][]float32, world)
		for i := range inputs {
			inputs[i] = soakField(elems, uint64(seed)+uint64(it)*1019+uint64(i)*271)
		}
		opt := CollectiveOptions{
			ErrorBound: 1e-3,
			Algorithm:  algo,
			Degrade:    &DegradePolicy{Shrink: true},
		}

		chaosOut := make([][]float32, world)
		start := time.Now()
		res, err := RunCluster(ClusterConfig{
			Ranks:       world,
			Topology:    topo,
			Reliable:    true,
			RecvTimeout: recvTimeout,
			Fault:       kill.Fault(),
		}, func(r *Rank) error {
			id0 := r.ID()
			out, err := r.Allreduce(inputs[id0], BackendHZCCL, opt)
			if err != nil {
				return err
			}
			chaosOut[id0] = out
			return nil
		})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%s (seed %d): survivors did not converge: %v", name, seed, err)
		}
		if len(res.Evicted) == 0 && chaosOut[victim] != nil {
			// The victim never reached send #step (e.g. a rank folded out
			// early by the non-power-of-two handling): no kill fired, the
			// full world completed. Nothing to verify this iteration.
			continue
		}
		if len(res.Evicted) != 1 || res.Evicted[0] != victim {
			t.Fatalf("%s (seed %d): evicted %v, want [%d]", name, seed, res.Evicted, victim)
		}
		// Cooperative abort must beat the naive worst case of every rank
		// serially burning its receive deadline.
		if limit := time.Duration(world) * recvTimeout; elapsed >= limit {
			t.Fatalf("%s (seed %d): took %v, cooperative abort should stay under %v", name, seed, elapsed, limit)
		}

		// Fresh fault-free reference on the survivor world.
		survivors := make([]int, 0, world-1)
		for p := 0; p < world; p++ {
			if p != victim {
				survivors = append(survivors, p)
			}
		}
		freshOut := make([][]float32, len(survivors))
		freshOpt := opt
		freshOpt.Degrade = nil
		if _, err := RunCluster(ClusterConfig{
			Ranks:       len(survivors),
			Topology:    topo.WithoutRanks(world, func(v int) bool { return v == victim }),
			Reliable:    true,
			RecvTimeout: recvTimeout,
		}, func(r *Rank) error {
			out, err := r.Allreduce(inputs[survivors[r.ID()]], BackendHZCCL, freshOpt)
			if err != nil {
				return err
			}
			freshOut[r.ID()] = out
			return nil
		}); err != nil {
			t.Fatalf("%s (seed %d): reference run failed: %v", name, seed, err)
		}
		for v, p := range survivors {
			for i := range freshOut[v] {
				if math.Float32bits(chaosOut[p][i]) != math.Float32bits(freshOut[v][i]) {
					t.Fatalf("%s (seed %d): survivor phys %d element %d: %g != fresh %g (bitwise)",
						name, seed, p, i, chaosOut[p][i], freshOut[v][i])
				}
			}
		}
	}
}

// TestDegradeNeedsTimeoutTyped pins the config-time guard: a DegradePolicy
// without RecvTimeout is refused with the typed ErrDegradeNeedsTimeout
// before any rank can deadlock.
func TestDegradeNeedsTimeoutTyped(t *testing.T) {
	_, err := RunCluster(ClusterConfig{Ranks: 2}, func(r *Rank) error {
		_, err := r.Allreduce([]float32{1, 2}, BackendMPI,
			CollectiveOptions{Degrade: &DegradePolicy{}})
		return err
	})
	if !errors.Is(err, ErrDegradeNeedsTimeout) {
		t.Fatalf("degrade without RecvTimeout: %v, want ErrDegradeNeedsTimeout", err)
	}
}

// TestShrinkRefusesLargeWorlds pins the bitmap limit: DegradePolicy.Shrink
// on a >64-rank world is refused with ErrWorldTooLarge at the first call.
func TestShrinkRefusesLargeWorlds(t *testing.T) {
	_, err := RunCluster(ClusterConfig{Ranks: 65, RecvTimeout: time.Second}, func(r *Rank) error {
		_, err := r.Allreduce([]float32{1}, BackendMPI,
			CollectiveOptions{Degrade: &DegradePolicy{Shrink: true}})
		return err
	})
	if !errors.Is(err, ErrWorldTooLarge) {
		t.Fatalf("shrink on 65 ranks: %v, want ErrWorldTooLarge", err)
	}
}
