package hzccl

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"hzccl/internal/cluster"
	"hzccl/internal/core"
	"hzccl/internal/telemetry"
)

// ClusterConfig describes the simulated multi-node machine the collectives
// run on: each rank is a goroutine with its own virtual clock; messages
// move real bytes while time is charged by an (α, β) network model.
type ClusterConfig struct {
	// Ranks is the number of simulated nodes (one process per node, as in
	// the paper's evaluation).
	Ranks int
	// Latency is the per-message latency α. 0 selects 1.5 µs.
	Latency time.Duration
	// BandwidthBytes is the per-link bandwidth β in bytes/second.
	// 0 selects 12.5e9 (100 Gbps line rate). The experiment harness uses
	// a lower, calibrated effective bandwidth; see DESIGN.md.
	BandwidthBytes float64
	// Fault, when non-nil, is consulted for every point-to-point message
	// and may drop, duplicate, corrupt or delay it (see Fault, NewChaos).
	// Leave nil for a healthy fabric.
	Fault Fault
	// Corrupt shapes FaultCorrupt injections (nil = single-bit default).
	Corrupt *CorruptPattern
	// RecvTimeout bounds the wall-clock time a receive waits for a
	// message. 0 waits forever; set it in fault-injection runs so a
	// dropped message surfaces as ErrRecvTimeout instead of a deadlock.
	RecvTimeout time.Duration
	// Reliable enables NACK-driven retransmission: corrupted or lost
	// messages are replayed from a bounded per-link sender window and
	// duplicates are silently deduplicated, so collectives complete with
	// correct results on a faulty fabric (at a physically modeled time
	// cost). Defaults RecvTimeout to 500ms when unset.
	Reliable bool
	// RetryBudget caps recovery attempts per message (0 = 8).
	RetryBudget int
	// RetryBackoff is the exponential-backoff base charged after each
	// failed recovery attempt (0 = 20µs of virtual time).
	RetryBackoff time.Duration
	// Transport selects the message fabric. Nil selects the default
	// in-process fabric: every rank is a goroutine of this process and the
	// virtual-time numbers are the calibrated ones all experiments report.
	// A *TCPTransport (see NewTCPTransport) makes this process one rank of
	// a multi-process cluster over real sockets; RunCluster then executes
	// the body only for the local rank, and peers run their own processes
	// against the same peer list.
	Transport Transport
	// Topology groups ranks into "nodes" for AlgoHierarchical and the
	// cost model behind AlgoAuto (see Topology, UniformTopology,
	// ParseTopology). Nil means one flat node holding every rank. Being
	// pure configuration, it works identically on every Transport.
	Topology *Topology
	// Trace, when non-nil, records the run's execution trace: virtual-time
	// slices, wall-clock compute spans, and one flow edge per
	// point-to-point message (send → recv), exported in Chrome trace-event
	// JSON by Trace.WriteChrome. On a TCP transport each process records
	// its own file; MergeChromeTraces joins them into one multi-process
	// timeline with arrows crossing process boundaries.
	Trace *Trace
}

// Trace accumulates the execution trace of one run; see
// ClusterConfig.Trace. The zero value is ready to use.
type Trace = cluster.Trace

// TraceMeta identifies the process that produced a trace file (rank,
// world size, wall-clock epoch); MergeChromeTraces uses it to align
// per-process files.
type TraceMeta = cluster.TraceMeta

// MergeChromeTraces joins per-process Chrome trace files from a
// TCP-transport run into one multi-rank timeline: pids are remapped per
// rank, wall clocks are aligned via the handshake-agreed epoch in each
// file's hzcclMeta, and send→recv flow arrows pair up across process
// boundaries. See `hzccl-collective -trace-merge`.
func MergeChromeTraces(w io.Writer, traces ...io.Reader) error {
	return cluster.MergeChromeTraces(w, traces...)
}

// Transport is the message fabric a cluster runs on. It is a sealed
// interface: the in-process fabric (the default) and the TCP mesh
// (NewTCPTransport) are the two implementations.
type Transport = cluster.Transport

// TCPTransport runs this process as one rank of a multi-process cluster
// over real TCP sockets.
type TCPTransport = cluster.TCPTransport

// TCPOptions configures NewTCPTransport.
type TCPOptions = cluster.TCPOptions

// NewTCPTransport forms the full TCP mesh for one rank of a multi-process
// cluster: it listens on Peers[Rank], dials every lower rank, accepts a
// connection from every higher one, and blocks until the mesh is complete
// or DialTimeout expires. Pass the result as ClusterConfig.Transport. All
// point-to-point integrity machinery (checksums, sequence numbers,
// NACK-driven retransmission, chaos hooks) and the (α, β) virtual-time
// model work identically on this fabric; RunResult additionally reports
// the real wall-clock time next to the model.
func NewTCPTransport(opt TCPOptions) (*TCPTransport, error) {
	return cluster.NewTCPTransport(opt)
}

// Backend selects a collective implementation.
type Backend int

// Collective backends.
const (
	// BackendMPI is the uncompressed baseline (original MPI collectives).
	BackendMPI Backend = iota
	// BackendCColl is the C-Coll baseline: compression-accelerated
	// collectives with the decompress-operate-compress workflow.
	BackendCColl
	// BackendHZCCL is the homomorphic co-design: operations run directly
	// on compressed blocks.
	BackendHZCCL
)

func (b Backend) String() string {
	switch b {
	case BackendMPI:
		return "MPI"
	case BackendCColl:
		return "C-Coll"
	case BackendHZCCL:
		return "hZCCL"
	}
	return "unknown"
}

// CollectiveOptions configures the compressed backends.
type CollectiveOptions struct {
	// ErrorBound is the absolute error bound for compression. Required for
	// BackendCColl and BackendHZCCL.
	ErrorBound float64
	// MultiThread selects the multi-thread compression mode (the paper's
	// MT kernels); MTThreads and MTSpeedup tune it (defaults 18 and 12).
	MultiThread bool
	MTThreads   int
	MTSpeedup   float64
	// Segments > 1 pipelines the C-Coll backend's rounds: each block is
	// compressed, sent and reduced in that many overlapping pieces.
	Segments int
	// Recursive selects Rabenseifner's recursive-halving/doubling
	// allreduce (log₂N rounds) instead of the ring (N−1 rounds); it wins
	// once per-message latency matters. Kept for compatibility: it maps
	// to Algorithm = AlgoRabenseifner for BackendMPI and BackendHZCCL
	// (the backends that historically supported it) when Algorithm is
	// unset. New code should set Algorithm directly.
	Recursive bool
	// Algorithm selects the collective schedule for Allreduce and
	// ReduceScatter: AlgoRing (the zero value, the historical behavior),
	// AlgoRecursiveDoubling, AlgoRabenseifner, AlgoHierarchical, or
	// AlgoAuto to let the cost model pick per shape. Every algorithm is
	// implemented for every backend. An out-of-range value is rejected
	// with ErrBadAlgorithm.
	Algorithm Algorithm
	// Rates, when non-nil, switches compute-time charging from measured
	// wall time to the calibrated model (rawBytes/rate); required for
	// paper-scale rank counts where measuring each tiny block would
	// dominate. The same throughputs also drive AlgoAuto's selection
	// (DefaultAutoRates is assumed when nil).
	Rates *ModelRates
	// Degrade, when non-nil, enables graceful backend degradation: if the
	// collective fails (retry budget exhausted, receive timeout), all
	// ranks agree to retry and, persistently failing, fall back down the
	// policy's ladder (HZCCL → C-Coll → MPI by default). Requires
	// ClusterConfig.RecvTimeout > 0. Downgrades are recorded in
	// RunResult.Degradations and the collective.degradations counter.
	// Supported by Allreduce, ReduceScatter and Reduce.
	Degrade *DegradePolicy
}

func (o CollectiveOptions) core() core.Options {
	mode := core.SingleThread
	if o.MultiThread {
		mode = core.MultiThread
	}
	return core.Options{
		ErrorBound: o.ErrorBound,
		Mode:       mode,
		MTThreads:  o.MTThreads,
		MTSpeedup:  o.MTSpeedup,
		Segments:   o.Segments,
		Rates:      o.Rates,
	}
}

// RunResult aggregates a finished cluster run.
type RunResult struct {
	// Seconds is the collective completion time in virtual seconds (the
	// maximum over ranks).
	Seconds float64
	// RankSeconds holds each rank's final virtual clock.
	RankSeconds []float64
	// Breakdown sums virtual time per category across ranks; keys are
	// "CPR", "DPR", "CPT", "HPR", "MPI", "OTHER". Range over
	// BreakdownShares instead when printing: map iteration order varies
	// run to run.
	Breakdown map[string]float64
	// Degradations records every backend downgrade a DegradePolicy
	// performed during the run, ordered by rank then occurrence.
	Degradations []Degradation
	// AlgoChoices records which algorithm each Allreduce/ReduceScatter
	// call resolved to (one entry per rank per call, ordered by rank then
	// occurrence), including cost-model resolutions of AlgoAuto.
	AlgoChoices []AlgoChoice
	// WallSeconds is the real elapsed time of the run, reported next to
	// the virtual model. On the default in-process fabric it includes all
	// ranks' serialized compute; on a TCP transport it is this process's
	// end-to-end wall time.
	WallSeconds float64
	// Evicted lists the physical ranks removed from the world by a
	// membership shrink (DegradePolicy.Shrink) during the run, in
	// ascending order. Empty means the world finished intact. Surviving
	// ranks' results are reported under their original (physical) indices
	// in per-rank slices like RankSeconds.
	Evicted []int
}

// BreakdownShare is one category's absolute and fractional share of a
// run's summed virtual time.
type BreakdownShare struct {
	Category string
	Seconds  float64
	Fraction float64
}

// BreakdownShares returns the per-category shares in the fixed display
// order CPR, DPR, CPT, HPR, MPI, OTHER. Unlike ranging over the Breakdown
// map, iteration order is deterministic, so printed breakdowns (and any
// golden text derived from them) are reproducible run to run.
func (r *RunResult) BreakdownShares() []BreakdownShare {
	total := 0.0
	for _, v := range r.Breakdown {
		total += v
	}
	out := make([]BreakdownShare, 0, len(cluster.Categories))
	for _, cat := range cluster.Categories {
		s := BreakdownShare{Category: string(cat), Seconds: r.Breakdown[string(cat)]}
		if total > 0 {
			s.Fraction = s.Seconds / total
		}
		out = append(out, s)
	}
	return out
}

// Rank is one simulated process inside RunCluster. Its methods must only
// be called from the rank's own body function.
type Rank struct {
	r   *cluster.Rank
	rec *runRecorder
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.r.ID }

// Size returns the number of ranks in the cluster.
func (r *Rank) Size() int { return r.r.N }

// Send transmits bytes to a peer (the payload is copied).
func (r *Rank) Send(to int, data []byte) error { return r.r.Send(to, data) }

// Recv blocks for the next message from a peer.
func (r *Rank) Recv(from int) ([]byte, error) { return r.r.Recv(from) }

// Barrier synchronizes all ranks and their virtual clocks. If a peer
// rank exits before reaching the barrier, the remaining ranks abort with
// an error (wrapping ErrPeerFailed) instead of waiting forever; with
// RecvTimeout set the wait is additionally deadline-bounded.
func (r *Rank) Barrier() error { return r.r.Barrier() }

// Quiesce runs f without charging virtual time, serialized against other
// ranks' measured compute. Stage inputs and post-process outputs inside
// Quiesce so they neither pollute other ranks' measurements nor count as
// collective time.
func (r *Rank) Quiesce(f func()) { r.r.Quiesce(f) }

// Allreduce sums data element-wise across all ranks and returns the full
// reduced vector, using the selected backend. All ranks must call it with
// equal-length data.
func (r *Rank) Allreduce(data []float32, b Backend, opt CollectiveOptions) ([]float32, error) {
	if err := validateOptions("allreduce", b, opt); err != nil {
		return nil, err
	}
	if opt.Degrade != nil {
		return r.runDegradable(b, opt, "allreduce", func(eff Backend) ([]float32, error) {
			o := opt
			o.Degrade = nil
			return r.Allreduce(data, eff, o)
		})
	}
	r.r.BeginOp("allreduce")
	algo := r.resolveAlgorithm("allreduce", b, opt, len(data))
	return r.dispatchAllreduce(core.New(opt.core()), b, algo, opt, data)
}

// ReduceScatter sums data element-wise across all ranks and returns this
// rank's owned block of the result (see OwnedBlock for its index).
func (r *Rank) ReduceScatter(data []float32, b Backend, opt CollectiveOptions) ([]float32, error) {
	if err := validateOptions("reduce_scatter", b, opt); err != nil {
		return nil, err
	}
	if opt.Degrade != nil {
		return r.runDegradable(b, opt, "reduce_scatter", func(eff Backend) ([]float32, error) {
			o := opt
			o.Degrade = nil
			return r.ReduceScatter(data, eff, o)
		})
	}
	r.r.BeginOp("reduce_scatter")
	algo := r.resolveAlgorithm("reduce_scatter", b, opt, len(data))
	return r.dispatchReduceScatter(core.New(opt.core()), b, algo, opt, data)
}

// OwnedBlock returns the block index this rank holds after ReduceScatter,
// and the [start, end) element range of that block within the input.
func (r *Rank) OwnedBlock(dataLen int) (index, start, end int) {
	index = core.BlockOwned(r.r.ID, r.r.N)
	start, end = core.BlockBounds(dataLen, r.r.N, index)
	return
}

// RunCluster executes body once per rank, each on its own goroutine, and
// returns the virtual-time result. If any rank's body returns an error,
// RunCluster returns the first one after all ranks finish.
func RunCluster(cfg ClusterConfig, body func(*Rank) error) (*RunResult, error) {
	rec := &runRecorder{}
	res, err := cluster.Run(cluster.Config{
		Ranks:          cfg.Ranks,
		Latency:        cfg.Latency,
		BandwidthBytes: cfg.BandwidthBytes,
		Fault:          cfg.Fault,
		Corrupt:        cfg.Corrupt,
		RecvTimeout:    cfg.RecvTimeout,
		Reliable:       cfg.Reliable,
		RetryBudget:    cfg.RetryBudget,
		RetryBackoff:   cfg.RetryBackoff,
		Transport:      cfg.Transport,
		Topology:       cfg.Topology,
		Trace:          cfg.Trace,
	}, func(cr *cluster.Rank) error {
		return body(&Rank{r: cr, rec: rec})
	})
	if err != nil && !errors.Is(err, ErrRankKilled) && !errors.Is(err, ErrEvicted) {
		// A failed collective is exactly what the flight recorder exists
		// for: dump the last events (NACKs, retransmissions, faults,
		// consensus rounds) before the caller sees the error. Benign
		// errors — a rank crashed by an injected kill or evicted by a
		// shrink while the survivors completed — are the expected outcome
		// of an elastic run, not a post-mortem.
		dumpFlightOnError(err)
	}
	if res == nil {
		return nil, err
	}
	mWallSeconds.Observe(int64(res.WallSeconds * 1e9))
	out := &RunResult{
		Seconds:      res.Time,
		RankSeconds:  res.RankTimes,
		Breakdown:    make(map[string]float64, len(res.Breakdown)),
		Degradations: rec.take(),
		AlgoChoices:  rec.takeChoices(),
		WallSeconds:  res.WallSeconds,
		Evicted:      res.Evicted,
	}
	for k, v := range res.Breakdown {
		out.Breakdown[string(k)] = v
	}
	return out, err
}

// mWallSeconds is the real elapsed time of every RunCluster call.
// Observations are in nanoseconds (the registry's integer unit); the
// name matches RunResult.WallSeconds, the value it samples.
var mWallSeconds = telemetry.H("collective.wall_seconds", telemetry.DurationBuckets())

// flightDump controls the automatic flight-recorder dump on collective
// failure: nil (the default) disables it; CLIs opt in with
// SetFlightDumpWriter.
var (
	flightDumpMu sync.Mutex
	flightDump   io.Writer
)

// SetFlightDumpWriter makes every failed RunCluster dump the flight
// recorder's retained events to w (typically os.Stderr) before returning
// the error. Pass nil to disable. CLIs enable this so a chaos abort or
// exhausted retry budget ships its own post-mortem.
func SetFlightDumpWriter(w io.Writer) {
	flightDumpMu.Lock()
	flightDump = w
	flightDumpMu.Unlock()
}

func dumpFlightOnError(err error) {
	flightDumpMu.Lock()
	w := flightDump
	flightDumpMu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, "collective failed: %v\n", err)
	telemetry.Flight().WriteText(w)
}
