// Benchmarks regenerating every table and figure of the hZCCL paper's
// evaluation (one benchmark per element, named after it), plus ablation
// benches for the design choices DESIGN.md calls out. Custom metrics:
//
//	ratio        compression ratio (raw/compressed)
//	speedup      baseline time / optimized time
//	frac-*       runtime breakdown fractions
//
// Run: go test -bench=. -benchmem .
package hzccl

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"hzccl/internal/bitio"
	"hzccl/internal/cluster"
	"hzccl/internal/core"
	"hzccl/internal/datasets"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
	"hzccl/internal/imagestack"
	"hzccl/internal/metrics"
	"hzccl/internal/ompszp"
	"hzccl/internal/stream"
	"hzccl/internal/szx"
)

const benchLen = 1 << 19 // elements per field in compressor benches

func benchField(b *testing.B, name string) []float32 {
	b.Helper()
	data, err := datasets.Field(name, 0, benchLen)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func benchPair(b *testing.B, name string) (x, y []float32) {
	b.Helper()
	x, y, err := datasets.Pair(name, benchLen)
	if err != nil {
		b.Fatal(err)
	}
	return x, y
}

// BenchmarkTable3Ratio reports the compression ratios of fZ-light and
// ompSZp per dataset at REL 1e-3 (Table III's centre column).
func BenchmarkTable3Ratio(b *testing.B) {
	for _, name := range datasets.Names() {
		b.Run(name, func(b *testing.B) {
			data := benchField(b, name)
			eb := metrics.AbsBound(1e-3, data)
			var fzLen, ompLen int
			b.SetBytes(int64(4 * len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fc, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb})
				if err != nil {
					b.Fatal(err)
				}
				fzLen = len(fc)
			}
			oc, err := ompszp.Compress(data, ompszp.Params{ErrorBound: eb})
			if err != nil {
				b.Fatal(err)
			}
			ompLen = len(oc)
			b.ReportMetric(metrics.Ratio(4*len(data), fzLen), "ratio-fz")
			b.ReportMetric(metrics.Ratio(4*len(data), ompLen), "ratio-omp")
		})
	}
}

// BenchmarkFig6 measures compression and decompression throughput of both
// compressors (Figure 6's bars; b.SetBytes makes MB/s visible).
func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"SimSet2", "NYX", "CESM-ATM"} {
		data := benchField(b, name)
		eb := metrics.AbsBound(1e-3, data)
		fp := fzlight.Params{ErrorBound: eb}
		fc, err := fzlight.Compress(data, fp)
		if err != nil {
			b.Fatal(err)
		}
		op := ompszp.Params{ErrorBound: eb}
		oc, err := ompszp.Compress(data, op)
		if err != nil {
			b.Fatal(err)
		}
		oh, err := ompszp.ParseHeader(oc)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]float32, len(data))

		b.Run(name+"/fz-compress", func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fzlight.Compress(data, fp); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/fz-decompress", func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fzlight.DecompressInto(fc, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		ompDst := make([]byte, ompszp.CompressBound(len(data), op))
		b.Run(name+"/omp-compress", func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ompszp.CompressInto(ompDst, data, op); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/omp-decompress", func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := ompszp.DecompressInto(out, oc, oh, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Stream measures the STREAM peak this machine's
// memory-bandwidth efficiencies are computed against.
func BenchmarkTable4Stream(b *testing.B) {
	n := 1 << 21
	b.SetBytes(int64(24 * n)) // triad traffic
	b.ReportAllocs()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = stream.Run(n, 1).Best()
	}
	b.ReportMetric(peak, "peak-GB/s")
}

// BenchmarkTable5HomomorphicAdd measures hZ-dynamic reducing the Table V
// field pairs, reporting the dominant pipeline fraction.
func BenchmarkTable5HomomorphicAdd(b *testing.B) {
	for _, name := range datasets.Names() {
		b.Run(name, func(b *testing.B) {
			x, y := benchPair(b, name)
			eb := metrics.AbsBound(1e-3, x)
			if e2 := metrics.AbsBound(1e-3, y); e2 > eb {
				eb = e2
			}
			p := fzlight.Params{ErrorBound: eb}
			cx, err := fzlight.Compress(x, p)
			if err != nil {
				b.Fatal(err)
			}
			cy, err := fzlight.Compress(y, p)
			if err != nil {
				b.Fatal(err)
			}
			var st hzdyn.Stats
			b.SetBytes(int64(4 * len(x)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err = hzdyn.Add(cx, cy)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Fraction(hzdyn.PipelineBothConstant), "frac-p1")
			b.ReportMetric(st.Fraction(hzdyn.PipelineBothEncoded), "frac-p4")
		})
	}
}

// BenchmarkTable6 compares the homomorphic reduce against the traditional
// DOC workflow (decompress both, add, recompress) on each dataset.
func BenchmarkTable6(b *testing.B) {
	for _, name := range datasets.Names() {
		x, y := benchPair(b, name)
		eb := metrics.AbsBound(1e-3, x)
		if e2 := metrics.AbsBound(1e-3, y); e2 > eb {
			eb = e2
		}
		p := fzlight.Params{ErrorBound: eb}
		cx, _ := fzlight.Compress(x, p)
		cy, _ := fzlight.Compress(y, p)

		b.Run(name+"/hz-dynamic", func(b *testing.B) {
			b.SetBytes(int64(4 * len(x)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := hzdyn.Add(cx, cy); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/doc", func(b *testing.B) {
			b.SetBytes(int64(4 * len(x)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dx, err := fzlight.Decompress(cx)
				if err != nil {
					b.Fatal(err)
				}
				dy, err := fzlight.Decompress(cy)
				if err != nil {
					b.Fatal(err)
				}
				for j := range dx {
					dx[j] += dy[j]
				}
				if _, err := fzlight.Compress(dx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// collectiveBench holds shared inputs for the collective benchmarks.
type collectiveBench struct {
	nodes int
	n     int
	eb    float64
	rates *core.Rates
	data  [][]float32
}

func newCollectiveBench(b *testing.B, nodes, n int) *collectiveBench {
	b.Helper()
	cb := &collectiveBench{nodes: nodes, n: n}
	cb.data = make([][]float32, nodes)
	for r := range cb.data {
		cb.data[r] = sparseSnapshot(n, r, nodes)
	}
	cb.eb = metrics.AbsBound(1e-4, cb.data[0])
	// Calibrated rates typical for this codec on snapshot data; fixed
	// values keep benches deterministic.
	cb.rates = &core.Rates{CPR: 1.2e9, DPR: 3e9, CPT: 7e9, HPR: 5e9}
	return cb
}

// sparseSnapshot mirrors the harness's RTM-like snapshot generator.
func sparseSnapshot(n, rank, nRanks int) []float32 {
	out := make([]float32, n)
	w := n / 4
	if lim := 3 * n / (2 * nRanks); lim > 0 && w > lim {
		w = lim
	}
	if w < 64 {
		w = 64
	}
	if w > n {
		w = n
	}
	start := (rank * 2654435761) % (n - w + 1)
	if start < 0 {
		start += n - w + 1
	}
	for i := 0; i < w; i++ {
		out[start+i] = float32(1000 * float64(i%180) / 180)
	}
	return out
}

func (cb *collectiveBench) run(b *testing.B, kernel string, mode core.Mode) float64 {
	b.Helper()
	b.ReportAllocs()
	c := core.New(core.Options{ErrorBound: cb.eb, Mode: mode, Rates: cb.rates, MTSpeedup: 6})
	cfg := cluster.Config{Ranks: cb.nodes, BandwidthBytes: 0.4e9}
	var last, lastWall float64
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cfg, func(r *cluster.Rank) error {
			var err error
			switch kernel {
			case "mpi":
				_, err = c.AllreducePlain(r, cb.data[r.ID])
			case "ccoll":
				_, err = c.AllreduceCColl(r, cb.data[r.ID])
			case "hz":
				_, _, err = c.AllreduceHZ(r, cb.data[r.ID])
			case "hz-naive":
				_, _, err = c.AllreduceHZNaive(r, cb.data[r.ID])
			case "rs-mpi":
				_, err = c.ReduceScatterPlain(r, cb.data[r.ID])
			case "rs-ccoll":
				_, err = c.ReduceScatterCColl(r, cb.data[r.ID])
			case "rs-hz":
				_, _, err = c.ReduceScatterHZ(r, cb.data[r.ID])
			default:
				b.Fatalf("unknown kernel %s", kernel)
			}
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Time
		lastWall = res.WallSeconds
	}
	b.ReportMetric(last*1e6, "virtual-us")
	b.ReportMetric(lastWall*1e3, "wall-ms")
	return last
}

// BenchmarkAllreduceTraceOverhead quantifies what execution tracing costs:
// the same 8-rank hZCCL Allreduce runs untraced and traced, interleaved
// within one timed loop so machine drift hits both sides equally, and the
// relative wall-time difference is reported as trace-overhead-pct.
// scripts/bench.sh gates it at 5%.
func BenchmarkAllreduceTraceOverhead(b *testing.B) {
	cb := newCollectiveBench(b, 8, 1<<17)
	c := core.New(core.Options{ErrorBound: cb.eb, Mode: core.SingleThread, Rates: cb.rates})
	cfg := cluster.Config{Ranks: cb.nodes, BandwidthBytes: 0.4e9}
	body := func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, cb.data[r.ID])
		return err
	}
	run := func(traced bool) float64 {
		var res *cluster.Result
		var err error
		if traced {
			cl, _, terr := cluster.NewTraced(cfg)
			if terr != nil {
				b.Fatal(terr)
			}
			res, err = cl.Run(body)
		} else {
			res, err = cluster.Run(cfg, body)
		}
		if err != nil {
			b.Fatal(err)
		}
		return res.WallSeconds
	}
	run(false) // warm pools once so neither side pays first-run setup
	run(true)
	b.ResetTimer()
	untraced := make([]float64, 0, b.N)
	traced := make([]float64, 0, b.N)
	for i := 0; i < b.N; i++ {
		untraced = append(untraced, run(false))
		traced = append(traced, run(true))
	}
	b.StopTimer()
	// Medians, not means: a single GC pause or scheduler preemption in one
	// ~4ms iteration would otherwise dominate the comparison.
	medU, medT := median(untraced), median(traced)
	b.ReportMetric(medU*1e3, "untraced-wall-ms")
	b.ReportMetric(medT*1e3, "traced-wall-ms")
	if medU > 0 {
		b.ReportMetric((medT-medU)/medU*100, "trace-overhead-pct")
	}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// BenchmarkFig2Breakdown reproduces the C-Coll runtime breakdown.
func BenchmarkFig2Breakdown(b *testing.B) {
	b.ReportAllocs()
	cb := newCollectiveBench(b, 8, 1<<17)
	c := core.New(core.Options{ErrorBound: cb.eb, Rates: cb.rates})
	cfg := cluster.Config{Ranks: cb.nodes, BandwidthBytes: 0.4e9}
	var doc, mpi float64
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cfg, func(r *cluster.Rank) error {
			_, err := c.AllreduceCColl(r, cb.data[r.ID])
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		fr := res.BreakdownFractions()
		doc = fr[cluster.CatCPR] + fr[cluster.CatDPR] + fr[cluster.CatCPT]
		mpi = fr[cluster.CatMPI]
	}
	b.ReportMetric(doc, "frac-doc")
	b.ReportMetric(mpi, "frac-mpi")
}

// BenchmarkFig7ReduceScatter and BenchmarkFig8Allreduce compare hZCCL with
// C-Coll (Figures 7 and 8).
func BenchmarkFig7ReduceScatter(b *testing.B) {
	cb := newCollectiveBench(b, 8, 1<<17)
	for _, k := range []string{"rs-ccoll", "rs-hz"} {
		b.Run(k, func(b *testing.B) { cb.run(b, k, core.SingleThread) })
	}
}

func BenchmarkFig8Allreduce(b *testing.B) {
	cb := newCollectiveBench(b, 8, 1<<17)
	for _, k := range []string{"ccoll", "hz"} {
		b.Run(k, func(b *testing.B) { cb.run(b, k, core.SingleThread) })
	}
}

// BenchmarkFig9 and BenchmarkFig11 sweep message sizes for all kernels.
func BenchmarkFig9ReduceScatterSizes(b *testing.B) {
	for _, n := range []int{1 << 15, 1 << 17} {
		cb := newCollectiveBench(b, 8, n)
		for _, k := range []string{"rs-mpi", "rs-ccoll", "rs-hz"} {
			b.Run(fmt.Sprintf("%dKB/%s", 4*n/1024, k), func(b *testing.B) {
				cb.run(b, k, core.SingleThread)
			})
		}
	}
}

func BenchmarkFig11AllreduceSizes(b *testing.B) {
	for _, n := range []int{1 << 15, 1 << 17} {
		cb := newCollectiveBench(b, 8, n)
		for _, k := range []string{"mpi", "ccoll", "hz"} {
			b.Run(fmt.Sprintf("%dKB/%s", 4*n/1024, k), func(b *testing.B) {
				cb.run(b, k, core.SingleThread)
			})
		}
	}
}

// BenchmarkFig10 and BenchmarkFig12 sweep node counts.
func BenchmarkFig10ReduceScatterNodes(b *testing.B) {
	for _, nodes := range []int{4, 16, 64} {
		cb := newCollectiveBench(b, nodes, 1<<16)
		for _, k := range []string{"rs-mpi", "rs-hz"} {
			b.Run(fmt.Sprintf("n%d/%s", nodes, k), func(b *testing.B) {
				cb.run(b, k, core.MultiThread)
			})
		}
	}
}

func BenchmarkFig12AllreduceNodes(b *testing.B) {
	for _, nodes := range []int{4, 16, 64} {
		cb := newCollectiveBench(b, nodes, 1<<16)
		for _, k := range []string{"mpi", "hz"} {
			b.Run(fmt.Sprintf("n%d/%s", nodes, k), func(b *testing.B) {
				cb.run(b, k, core.MultiThread)
			})
		}
	}
}

// BenchmarkTable7Stacking reproduces the image-stacking Allreduce.
func BenchmarkTable7Stacking(b *testing.B) {
	const nodes, side = 8, 256
	scene := imagestack.Scene(side, side, 42)
	exps := make([][]float32, nodes)
	for r := range exps {
		exps[r] = imagestack.Exposure(scene, r, 0.002).Pix
	}
	eb := metrics.AbsBound(1e-4, exps[0])
	rates := &core.Rates{CPR: 1.2e9, DPR: 3e9, CPT: 7e9, HPR: 5e9}
	for _, kernel := range []string{"mpi", "ccoll", "hz"} {
		b.Run(kernel, func(b *testing.B) {
			b.ReportAllocs()
			c := core.New(core.Options{ErrorBound: eb, Rates: rates})
			cfg := cluster.Config{Ranks: nodes, BandwidthBytes: 0.4e9}
			for i := 0; i < b.N; i++ {
				_, err := cluster.Run(cfg, func(r *cluster.Rank) error {
					var err error
					switch kernel {
					case "mpi":
						_, err = c.AllreducePlain(r, exps[r.ID])
					case "ccoll":
						_, err = c.AllreduceCColl(r, exps[r.ID])
					default:
						_, _, err = c.AllreduceHZ(r, exps[r.ID])
					}
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices called out in DESIGN.md §6)
// ---------------------------------------------------------------------------

// BenchmarkAblationDynamicVsStatic quantifies the dynamic pipeline
// heuristic against the always-decode static baseline.
func BenchmarkAblationDynamicVsStatic(b *testing.B) {
	x, y := benchPair(b, "SimSet2") // constant-block heavy: dynamic should win big
	eb := metrics.AbsBound(1e-3, x)
	p := fzlight.Params{ErrorBound: eb}
	cx, _ := fzlight.Compress(x, p)
	cy, _ := fzlight.Compress(y, p)
	b.Run("dynamic", func(b *testing.B) {
		b.SetBytes(int64(4 * len(x)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := hzdyn.Add(cx, cy); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("static", func(b *testing.B) {
		b.SetBytes(int64(4 * len(x)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hzdyn.StaticAdd(cx, cy); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEncoding compares the byte-plane + residual-bit-shifting
// fixed-length encoding against cuSZp's bit-shuffle on one block stream.
func BenchmarkAblationEncoding(b *testing.B) {
	const n = 1 << 16
	mags := make([]uint32, n)
	for i := range mags {
		mags[i] = uint32(i*2654435761) & 0x1FFF // 13-bit magnitudes
	}
	const c = 13
	b.Run("bitshift", func(b *testing.B) {
		dst := make([]byte, bitio.PlaneBytes(n, c)+bitio.RemainderBytes(n, c))
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			off := bitio.PackPlanes(dst, mags, c/8)
			bitio.PackRemainder(dst[off:], mags, 8*(c/8), c%8)
		}
	})
	b.Run("bitshuffle", func(b *testing.B) {
		dst := make([]byte, c*((n+7)/8))
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bitio.BitShuffle(dst, mags, c)
		}
	})
}

// BenchmarkAblationFusedSum compares the fused pipeline-④ kernel against
// separate decode + add + encode calls.
func BenchmarkAblationFusedSum(b *testing.B) {
	x, y := benchPair(b, "CESM-ATM") // pipeline-④ heavy
	eb := metrics.AbsBound(1e-3, x)
	p := fzlight.Params{ErrorBound: eb}
	cx, _ := fzlight.Compress(x, p)
	cy, _ := fzlight.Compress(y, p)
	b.Run("fused", func(b *testing.B) {
		b.SetBytes(int64(4 * len(x)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := hzdyn.Add(cx, cy); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAllreduceFusion quantifies the Allreduce co-design:
// fused (no RS-final decompress, no AG compress) versus the naive staging.
func BenchmarkAblationAllreduceFusion(b *testing.B) {
	cb := newCollectiveBench(b, 8, 1<<17)
	for _, k := range []string{"hz", "hz-naive"} {
		b.Run(k, func(b *testing.B) { cb.run(b, k, core.SingleThread) })
	}
}

// BenchmarkAblationOutlierScheme contrasts the per-chunk outlier of
// fZ-light with ompSZp's per-block outlier on constant data, where the
// metadata overhead dominates compressed size.
func BenchmarkAblationOutlierScheme(b *testing.B) {
	data := make([]float32, benchLen)
	for i := range data {
		data[i] = 3.5
	}
	fc, err := fzlight.Compress(data, fzlight.Params{ErrorBound: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	oc, err := ompszp.Compress(data, ompszp.Params{ErrorBound: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(metrics.Ratio(4*len(data), len(fc)), "ratio-fz")
	b.ReportMetric(metrics.Ratio(4*len(data), len(oc)), "ratio-omp")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fzlight.Compress(data, fzlight.Params{ErrorBound: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThreadChunking measures the chunked-parallel compression
// path at several thread counts (structure cost on a single core).
func BenchmarkAblationThreadChunking(b *testing.B) {
	data := benchField(b, "SimSet2")
	eb := metrics.AbsBound(1e-3, data)
	for _, threads := range []int{1, 4, 18} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb, Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPredictors compares the 1D delta, 2D Lorenzo and 3D
// Lorenzo predictors on volumetric data: compressed size (ratio metric)
// and throughput.
func BenchmarkAblationPredictors(b *testing.B) {
	d, h, w := 32, 128, 128
	data := make([]float32, d*h*w)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				data[(z*h+y)*w+x] = float32(100*math.Sin(float64(y)*0.2)*math.Cos(float64(x)*0.15) +
					0.5*float64(z) + 0.3*float64(y))
			}
		}
	}
	eb := 1e-3
	raw := 4 * len(data)
	variants := []struct {
		name string
		f    func() ([]byte, error)
	}{
		{"1d-delta", func() ([]byte, error) { return fzlight.Compress(data, fzlight.Params{ErrorBound: eb}) }},
		{"2d-lorenzo", func() ([]byte, error) { return fzlight.Compress2D(data, d*h, w, fzlight.Params{ErrorBound: eb}) }},
		{"3d-lorenzo", func() ([]byte, error) { return fzlight.Compress3D(data, d, h, w, fzlight.Params{ErrorBound: eb}) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(raw))
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				comp, err := v.f()
				if err != nil {
					b.Fatal(err)
				}
				size = len(comp)
			}
			b.ReportMetric(metrics.Ratio(raw, size), "ratio")
		})
	}
}

// BenchmarkAblationSegmentation quantifies the C-Coll DOC/wire overlap:
// the same allreduce with 1, 4 and 16 segments per round.
func BenchmarkAblationSegmentation(b *testing.B) {
	const nodes, n = 8, 1 << 17
	data := make([][]float32, nodes)
	for r := range data {
		d := make([]float32, n)
		for i := range d {
			d[i] = float32(math.Sin(float64(i)*0.01 + float64(r)))
		}
		data[r] = d
	}
	rates := &core.Rates{CPR: 1e9, DPR: 2e9, CPT: 8e9, HPR: 8e9}
	for _, segs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("segments%d", segs), func(b *testing.B) {
			b.ReportAllocs()
			c := core.New(core.Options{ErrorBound: 1e-3, Rates: rates, Segments: segs})
			cfg := cluster.Config{Ranks: nodes, BandwidthBytes: 0.3e9}
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(cfg, func(r *cluster.Rank) error {
					_, err := c.AllreduceCCollSegmented(r, data[r.ID])
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Time
			}
			b.ReportMetric(last*1e6, "virtual-us")
		})
	}
}

// ---------------------------------------------------------------------------
// Steady-state (zero-allocation) hot-path benches
// ---------------------------------------------------------------------------

// BenchmarkSteadyStateAddInto measures the in-place homomorphic add the
// ring collectives run every step: caller-provided destination, pooled
// scratch. allocs/op must be 0 — scripts/bench.sh gates on it.
func BenchmarkSteadyStateAddInto(b *testing.B) {
	x, y := benchPair(b, "SimSet2")
	eb := metrics.AbsBound(1e-3, x)
	if e2 := metrics.AbsBound(1e-3, y); e2 > eb {
		eb = e2
	}
	p := fzlight.Params{ErrorBound: eb}
	cx, err := fzlight.Compress(x, p)
	if err != nil {
		b.Fatal(err)
	}
	cy, err := fzlight.Compress(y, p)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, hzdyn.AddBound(len(cx), len(cy)))
	// Warm the scratch pools so the timed loop sees steady state (the
	// first calls also pay one-time sync.Pool chain-node allocations).
	for i := 0; i < 4; i++ {
		if _, _, err := hzdyn.AddInto(dst, cx, cy); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(x)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hzdyn.AddInto(dst, cx, cy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateCompressInto measures the compressor writing into a
// caller-provided CompressBound buffer, as the collectives do per block.
func BenchmarkSteadyStateCompressInto(b *testing.B) {
	data := benchField(b, "SimSet2")
	eb := metrics.AbsBound(1e-3, data)
	p := fzlight.Params{ErrorBound: eb}
	dst := make([]byte, fzlight.CompressBound(len(data), p))
	for i := 0; i < 4; i++ {
		if _, err := fzlight.CompressInto(dst, data, p); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fzlight.CompressInto(dst, data, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateOmpCompressInto is the zero-allocation twin of
// Fig6's omp-compress: CompressInto with a caller-provided CompressBound
// buffer and warm scratch pools. allocs/op must be 0 — scripts/bench.sh
// gates on it.
func BenchmarkSteadyStateOmpCompressInto(b *testing.B) {
	data := benchField(b, "SimSet2")
	op := ompszp.Params{ErrorBound: metrics.AbsBound(1e-3, data)}
	dst := make([]byte, ompszp.CompressBound(len(data), op))
	for i := 0; i < 4; i++ {
		if _, err := ompszp.CompressInto(dst, data, op); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ompszp.CompressInto(dst, data, op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateOmpDecompressInto is the zero-allocation twin of
// Fig6's omp-decompress: pre-parsed header, caller-provided output.
func BenchmarkSteadyStateOmpDecompressInto(b *testing.B) {
	data := benchField(b, "SimSet2")
	op := ompszp.Params{ErrorBound: metrics.AbsBound(1e-3, data)}
	oc, err := ompszp.Compress(data, op)
	if err != nil {
		b.Fatal(err)
	}
	oh, err := ompszp.ParseHeader(oc)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float32, len(data))
	for i := 0; i < 4; i++ {
		if err := ompszp.DecompressInto(out, oc, oh, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ompszp.DecompressInto(out, oc, oh, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateSzxCompressInto measures the SZx baseline's
// caller-buffer compression path. allocs/op must be 0.
func BenchmarkSteadyStateSzxCompressInto(b *testing.B) {
	data := benchField(b, "SimSet2")
	sp := szx.Params{ErrorBound: metrics.AbsBound(1e-3, data)}
	dst := make([]byte, szx.CompressBound(len(data), sp.BlockSize))
	for i := 0; i < 4; i++ {
		if _, err := szx.CompressInto(dst, data, sp); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := szx.CompressInto(dst, data, sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateSzxDecompressInto measures the SZx baseline's
// caller-buffer decompression path. allocs/op must be 0.
func BenchmarkSteadyStateSzxDecompressInto(b *testing.B) {
	data := benchField(b, "SimSet2")
	sp := szx.Params{ErrorBound: metrics.AbsBound(1e-3, data)}
	sc, err := szx.Compress(data, sp)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float32, len(data))
	for i := 0; i < 4; i++ {
		if err := szx.DecompressInto(out, sc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := szx.DecompressInto(out, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAdd measures the sharded homomorphic-add executor on
// the pipeline-④-heavy CESM-ATM pair across worker counts. On a
// single-core machine the win is bounded; the benchmark exists to show
// the sharding overhead stays small and the output path scales.
func BenchmarkParallelAdd(b *testing.B) {
	x, y := benchPair(b, "CESM-ATM")
	eb := metrics.AbsBound(1e-3, x)
	if e2 := metrics.AbsBound(1e-3, y); e2 > eb {
		eb = e2
	}
	p := fzlight.Params{ErrorBound: eb}
	cx, err := fzlight.Compress(x, p)
	if err != nil {
		b.Fatal(err)
	}
	cy, err := fzlight.Compress(y, p)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, hzdyn.AddBound(len(cx), len(cy)))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < 4; i++ {
				if _, _, err := hzdyn.AddIntoParallel(dst, cx, cy, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(4 * len(x)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := hzdyn.AddIntoParallel(dst, cx, cy, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCPRP2P reproduces the paper's §III-A baseline ladder:
// per-message compression (CPR-P2P) vs the C-Coll co-design vs hZCCL.
func BenchmarkAblationCPRP2P(b *testing.B) {
	cb := newCollectiveBench(b, 8, 1<<17)
	kernels := []struct {
		name string
		run  func(c core.Collectives, r *cluster.Rank, data []float32) error
	}{
		{"cpr-p2p", func(c core.Collectives, r *cluster.Rank, data []float32) error {
			_, err := c.AllreduceCPRP2P(r, data)
			return err
		}},
		{"ccoll", func(c core.Collectives, r *cluster.Rank, data []float32) error {
			_, err := c.AllreduceCColl(r, data)
			return err
		}},
		{"hzccl", func(c core.Collectives, r *cluster.Rank, data []float32) error {
			_, _, err := c.AllreduceHZ(r, data)
			return err
		}},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			c := core.New(core.Options{ErrorBound: cb.eb, Rates: cb.rates})
			cfg := cluster.Config{Ranks: cb.nodes, BandwidthBytes: 0.4e9}
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(cfg, func(r *cluster.Rank) error {
					return k.run(c, r, cb.data[r.ID])
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Time
			}
			b.ReportMetric(last*1e6, "virtual-us")
		})
	}
}
