// Gradient aggregation: the data-parallel training pattern the paper's
// introduction motivates. W simulated workers each hold a local gradient;
// an Allreduce sums them so every worker sees the global gradient. The
// example runs all three backends — original MPI, C-Coll (DOC) and hZCCL
// (homomorphic) — and reports collective time, accuracy and speedup.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hzccl"
)

const (
	workers  = 16
	gradLen  = 1 << 20
	errBound = 1e-4
)

// localGradient synthesizes worker w's gradient: a shared smooth direction
// (the true gradient) plus sparse worker noise — most coordinates agree,
// which is exactly where homomorphic compression shines.
func localGradient(w int) []float32 {
	rng := rand.New(rand.NewSource(int64(w) + 7))
	g := make([]float32, gradLen)
	for i := range g {
		g[i] = float32(0.01 * math.Sin(2*math.Pi*float64(i)/float64(gradLen)))
	}
	// sparse salient coordinates for this worker's minibatch
	for k := 0; k < gradLen/100; k++ {
		g[rng.Intn(gradLen)] += float32(rng.NormFloat64())
	}
	return g
}

func main() {
	// Exact reference.
	exact := make([]float64, gradLen)
	for w := 0; w < workers; w++ {
		for i, v := range localGradient(w) {
			exact[i] += float64(v)
		}
	}

	// Stage every worker's gradient up front so the timed region contains
	// only the collective itself.
	grads := make([][]float32, workers)
	for w := range grads {
		grads[w] = localGradient(w)
	}

	// The network model uses an effective per-link bandwidth of 0.4 GB/s —
	// the large-message MPI efficiency the paper's own runtime breakdowns
	// imply (see DESIGN.md) — so compression has the same opportunity to
	// pay for itself as on the paper's congested fabric.
	cfg := hzccl.ClusterConfig{Ranks: workers, BandwidthBytes: 0.4e9}
	opts := hzccl.CollectiveOptions{ErrorBound: errBound, MultiThread: true}

	var tMPI float64
	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendCColl, hzccl.BackendHZCCL} {
		var out0 []float32
		res, err := hzccl.RunCluster(cfg, func(r *hzccl.Rank) error {
			out, err := r.Allreduce(grads[r.ID()], backend, opts)
			if r.ID() == 0 {
				out0 = out
			}
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for i := range out0 {
			if d := math.Abs(float64(out0[i]) - exact[i]); d > maxErr {
				maxErr = d
			}
		}
		speedup := ""
		if backend == hzccl.BackendMPI {
			tMPI = res.Seconds
		} else {
			speedup = fmt.Sprintf("  speedup %.2fx", tMPI/res.Seconds)
		}
		fmt.Printf("%-7s allreduce of %d x %d floats: %8.2f ms  max err %.2e%s\n",
			backend, workers, gradLen, res.Seconds*1e3, maxErr, speedup)
	}
	fmt.Printf("\nerror budget: %d workers x eb %.0e = %.0e\n", workers, errBound, float64(workers)*errBound)
}
