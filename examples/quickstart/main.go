// Quickstart: compress a field with an error bound, decompress it, and
// reduce two compressed fields homomorphically — no decompression needed.
package main

import (
	"fmt"
	"log"
	"math"

	"hzccl"
)

func main() {
	// A smooth scientific-looking field.
	const n = 1 << 20
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		x := float64(i) * 1e-5
		a[i] = float32(math.Sin(2*math.Pi*x) * 100)
		b[i] = float32(math.Cos(2*math.Pi*x) * 100)
	}

	// Compress with an absolute error bound of 1e-3.
	p := hzccl.Params{ErrorBound: 1e-3, Threads: 4}
	ca, err := hzccl.Compress(a, p)
	if err != nil {
		log.Fatal(err)
	}
	cb, err := hzccl.Compress(b, p)
	if err != nil {
		log.Fatal(err)
	}
	info, err := hzccl.Info(ca)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d floats: %d bytes (ratio %.1f, %.0f%% constant blocks)\n",
		info.DataLen, info.CompressedBytes, info.Ratio, 100*info.ConstantBlockFraction)

	// Decompression respects the bound.
	back, err := hzccl.Decompress(ca)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(back[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("round-trip max error: %.3g (bound 1e-3)\n", maxErr)

	// Homomorphic reduction: sum the two fields entirely in compressed
	// space. The result decompresses to a+b with no additional error.
	sum, stats, err := hzccl.HomomorphicAddWithStats(ca, cb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homomorphic add over %d block pairs: ①%d ②%d ③%d ④%d\n",
		stats.Blocks, stats.BothConstant, stats.LeftConstant, stats.RightConstant, stats.BothEncoded)

	got, err := hzccl.Decompress(sum)
	if err != nil {
		log.Fatal(err)
	}
	maxErr = 0
	for i := range a {
		want := float64(a[i]) + float64(b[i])
		if d := math.Abs(float64(got[i]) - want); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("homomorphic sum max error vs exact: %.3g (2 operands x 1e-3)\n", maxErr)
}
