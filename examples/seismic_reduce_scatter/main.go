// Seismic partial reduction: reverse-time-migration style workload where
// each node holds one wavefield snapshot and the cluster reduce-scatters
// the stacked image, each node keeping its own shard (the paper's
// Reduce_scatter evaluation, Figures 7/9/10).
package main

import (
	"fmt"
	"log"
	"math"

	"hzccl"
	"hzccl/internal/datasets"
	"hzccl/internal/metrics"
)

const (
	nodes    = 8
	snapshot = 1 << 20
)

func main() {
	// Each node holds one RTM snapshot (field index = rank).
	fields := make([][]float32, nodes)
	exact := make([]float64, snapshot)
	for r := range fields {
		f, err := datasets.Field("SimSet1", r, snapshot)
		if err != nil {
			log.Fatal(err)
		}
		fields[r] = f
		for i, v := range f {
			exact[i] += float64(v)
		}
	}
	eb := metrics.AbsBound(1e-4, fields[0])

	for _, backend := range []hzccl.Backend{hzccl.BackendMPI, hzccl.BackendHZCCL} {
		shards := make([][]float32, nodes)
		starts := make([]int, nodes)
		// Effective congested-fabric bandwidth; see DESIGN.md.
		res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: nodes, BandwidthBytes: 0.4e9}, func(r *hzccl.Rank) error {
			out, err := r.ReduceScatter(fields[r.ID()], backend,
				hzccl.CollectiveOptions{ErrorBound: eb, MultiThread: true})
			if err != nil {
				return err
			}
			_, s, _ := r.OwnedBlock(snapshot)
			shards[r.ID()] = out
			starts[r.ID()] = s
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for rk, shard := range shards {
			for i, v := range shard {
				if d := math.Abs(float64(v) - exact[starts[rk]+i]); d > maxErr {
					maxErr = d
				}
			}
		}
		fmt.Printf("%-6s reduce_scatter of %d snapshots (%d floats): %8.2f ms (virtual), max err %.2e\n",
			backend, nodes, snapshot, res.Seconds*1e3, maxErr)
	}
	fmt.Printf("\nerror stays within %d x eb = %.2e by construction\n", nodes, float64(nodes)*eb)
}
