// Snapshot differencing: compare two timesteps of a simulation entirely in
// compressed space. The difference of two compressed snapshots is itself a
// compressed field (HomomorphicSub), usually far smaller than either input
// because unchanged regions collapse to constant blocks — a practical
// pattern for in-situ change detection and delta archiving.
package main

import (
	"fmt"
	"log"
	"math"

	"hzccl"
	"hzccl/internal/datasets"
	"hzccl/internal/metrics"
)

func main() {
	const n = 1 << 21
	// Two RTM timesteps: the wavefront moved a little between them.
	t0, err := datasets.Field("SimSet2", 0, n)
	if err != nil {
		log.Fatal(err)
	}
	t1 := make([]float32, n)
	copy(t1, t0)
	// Perturb a localized region — the "event" between snapshots.
	for i := n / 2; i < n/2+n/50; i++ {
		t1[i] += float32(3 * math.Sin(float64(i)*0.05))
	}

	eb := metrics.AbsBound(1e-4, t0)
	p := hzccl.Params{ErrorBound: eb, Threads: 4}
	c0, err := hzccl.Compress(t0, p)
	if err != nil {
		log.Fatal(err)
	}
	c1, err := hzccl.Compress(t1, p)
	if err != nil {
		log.Fatal(err)
	}

	diff, err := hzccl.HomomorphicSub(c1, c0)
	if err != nil {
		log.Fatal(err)
	}
	i0, _ := hzccl.Info(c0)
	id, _ := hzccl.Info(diff)
	fmt.Printf("snapshot:   %8d bytes (ratio %.1f)\n", i0.CompressedBytes, i0.Ratio)
	fmt.Printf("difference: %8d bytes (ratio %.1f, %.1f%% constant blocks)\n",
		id.CompressedBytes, id.Ratio, 100*id.ConstantBlockFraction)

	// Locate the change without ever decompressing the full snapshots:
	// decompress only the (tiny) difference.
	d, err := hzccl.Decompress(diff)
	if err != nil {
		log.Fatal(err)
	}
	first, last := -1, -1
	for i, v := range d {
		if math.Abs(float64(v)) > 2*eb {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	fmt.Printf("change detected in [%d, %d] (injected [%d, %d))\n", first, last, n/2, n/2+n/50)

	// And the algebra closes: t0 + diff == t1 within the compressed domain.
	recon, err := hzccl.HomomorphicAdd(c0, diff)
	if err != nil {
		log.Fatal(err)
	}
	r1, _ := hzccl.Decompress(recon)
	d1, _ := hzccl.Decompress(c1)
	maxErr := 0.0
	for i := range r1 {
		if d := math.Abs(float64(r1[i]) - float64(d1[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("t0 + (t1 - t0) vs t1: max deviation %.3g (exact in the quantized domain)\n", maxErr)
}
