// Image stacking (paper §IV-E): sum many single-exposure images into one
// high-SNR image via Allreduce on compressed data, then verify the result
// visually (PGM output) and numerically (PSNR / NRMSE).
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"hzccl"
	"hzccl/internal/imagestack"
	"hzccl/internal/metrics"
)

const (
	exposuresN = 16
	side       = 512
	noiseSigma = 0.002
)

func main() {
	scene := imagestack.Scene(side, side, 42)
	exposures := make([]*imagestack.Image, exposuresN)
	for i := range exposures {
		exposures[i] = imagestack.Exposure(scene, i, noiseSigma)
	}
	exact, err := imagestack.ExactStack(exposures)
	if err != nil {
		log.Fatal(err)
	}
	eb := metrics.AbsBound(1e-4, exposures[0].Pix)

	var stacked []float32
	res, err := hzccl.RunCluster(hzccl.ClusterConfig{Ranks: exposuresN}, func(r *hzccl.Rank) error {
		out, err := r.Allreduce(exposures[r.ID()].Pix, hzccl.BackendHZCCL,
			hzccl.CollectiveOptions{ErrorBound: eb, MultiThread: true})
		if r.ID() == 0 {
			stacked = out
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	img := &imagestack.Image{W: side, H: side, Pix: stacked}
	q := imagestack.Quality(exact, img)
	fmt.Printf("stacked %d exposures of %dx%d in %.2f ms (virtual), eb=%.3g\n",
		exposuresN, side, side, res.Seconds*1e3, eb)
	fmt.Printf("vs exact stack: PSNR %.2f dB, NRMSE %.2e, max abs err %.3g\n", q.PSNR, q.NRMSE, q.MaxAbs)
	if math.IsInf(q.PSNR, 1) || q.PSNR > 60 {
		fmt.Println("quality check: PASS (paper reports PSNR 62.00 with eb 1e-4)")
	}

	for name, im := range map[string]*imagestack.Image{"stack_exact.pgm": exact, "stack_hzccl.pgm": img} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := imagestack.WritePGM(f, im); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
