// Distributed data-parallel training — the deep-learning motivation of the
// paper's introduction. W workers hold data shards; every step they
// Allreduce their local gradients and take a synchronous SGD step. The
// gradients travel through the hZCCL homomorphic path, and the run
// verifies that error-bounded gradient aggregation leaves convergence
// intact: the compressed-collective model reaches the same loss as exact
// aggregation.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hzccl"
)

const (
	workers  = 8
	features = 512
	perShard = 256
	epochs   = 30
	lr       = 0.05
	errBound = 1e-5
)

// shard holds one worker's slice of the regression dataset.
type shard struct {
	x [][]float32
	y []float32
}

// trueWeights defines the regression target the workers should recover.
func trueWeights() []float32 {
	rng := rand.New(rand.NewSource(7))
	w := make([]float32, features)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	return w
}

func makeShards() []shard {
	w := trueWeights()
	out := make([]shard, workers)
	for s := range out {
		rng := rand.New(rand.NewSource(100 + int64(s)))
		sh := shard{y: make([]float32, perShard)}
		for r := 0; r < perShard; r++ {
			row := make([]float32, features)
			dot := 0.0
			for j := range row {
				row[j] = float32(rng.NormFloat64())
				dot += float64(row[j]) * float64(w[j])
			}
			sh.x = append(sh.x, row)
			sh.y[r] = float32(dot + rng.NormFloat64()*0.01)
		}
		out[s] = sh
	}
	return out
}

// gradient computes the local MSE gradient for the current weights.
func (s *shard) gradient(w []float32) ([]float32, float64) {
	g := make([]float32, features)
	loss := 0.0
	for r, row := range s.x {
		pred := 0.0
		for j, v := range row {
			pred += float64(v) * float64(w[j])
		}
		err := pred - float64(s.y[r])
		loss += err * err
		for j, v := range row {
			g[j] += float32(2 * err * float64(v) / perShard)
		}
	}
	return g, loss / perShard
}

// train runs synchronous SGD; aggregate selects how gradients are summed.
func train(shards []shard, aggregate func(step int, local [][]float32) ([]float32, error)) ([]float64, error) {
	w := make([]float32, features)
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		locals := make([][]float32, workers)
		total := 0.0
		for s := range shards {
			g, loss := shards[s].gradient(w)
			locals[s] = g
			total += loss
		}
		sum, err := aggregate(e, locals)
		if err != nil {
			return nil, err
		}
		for j := range w {
			w[j] -= lr * sum[j] / workers
		}
		losses = append(losses, total/workers)
	}
	return losses, nil
}

func main() {
	shards := makeShards()

	exactLosses, err := train(shards, func(_ int, local [][]float32) ([]float32, error) {
		sum := make([]float32, features)
		for _, g := range local {
			for j, v := range g {
				sum[j] += v
			}
		}
		return sum, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := hzccl.ClusterConfig{Ranks: workers, BandwidthBytes: 0.4e9}
	opts := hzccl.CollectiveOptions{ErrorBound: errBound, MultiThread: true}
	var virtualSeconds float64
	hzLosses, err := train(shards, func(step int, local [][]float32) ([]float32, error) {
		var sum []float32
		res, err := hzccl.RunCluster(cfg, func(r *hzccl.Rank) error {
			out, err := r.Allreduce(local[r.ID()], hzccl.BackendHZCCL, opts)
			if r.ID() == 0 {
				sum = out
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		virtualSeconds += res.Seconds
		return sum, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s  %-14s  %-14s\n", "epoch", "exact loss", "hZCCL loss")
	for e := 0; e < epochs; e += 5 {
		fmt.Printf("%-6d  %-14.6f  %-14.6f\n", e, exactLosses[e], hzLosses[e])
	}
	last := epochs - 1
	fmt.Printf("%-6d  %-14.6f  %-14.6f\n", last, exactLosses[last], hzLosses[last])
	drift := math.Abs(exactLosses[last] - hzLosses[last])
	fmt.Printf("\nfinal-loss drift from exact aggregation: %.2e (gradient eb %.0e)\n", drift, errBound)
	fmt.Printf("aggregate collective time across %d steps: %.2f ms (virtual)\n", epochs, virtualSeconds*1e3)
	if drift < 1e-3 {
		fmt.Println("convergence check: PASS — compressed aggregation tracks exact SGD")
	}
}
