package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"hzccl/internal/floatbytes"
)

func writeRaw(t *testing.T, dir, name string, vals []float32) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, floatbytes.Bytes(vals), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompressDecompressCycle(t *testing.T) {
	dir := t.TempDir()
	vals := make([]float32, 5000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) * 0.01))
	}
	in := writeRaw(t, dir, "in.f32", vals)
	comp := filepath.Join(dir, "out.fzl")
	back := filepath.Join(dir, "back.f32")

	if err := run(1e-3, 2, "", false, false, 1, false, comp, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 1, "", false, false, 1, true, "", "", []string{comp}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run(0, 1, "", true, false, 1, false, back, "", []string{comp}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	raw, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	got := floatbytes.Floats(raw)
	for i := range vals {
		if d := math.Abs(float64(vals[i]) - float64(got[i])); d > 1e-3+1e-6 {
			t.Fatalf("cycle error %g at %d", d, i)
		}
	}

	sum := filepath.Join(dir, "sum.fzl")
	if err := run(0, 1, "", false, true, 1, false, sum, "", []string{comp, comp}); err != nil {
		t.Fatalf("add: %v", err)
	}
	back2 := filepath.Join(dir, "sum.f32")
	if err := run(0, 1, "", true, false, 1, false, back2, "", []string{sum}); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(back2)
	got2 := floatbytes.Floats(raw2)
	for i := range vals {
		if d := math.Abs(float64(got2[i]) - 2*float64(got[i])); d > 1e-6 {
			t.Fatalf("homomorphic CLI sum error %g", d)
		}
	}

	// The sharded executor must produce the exact bytes of the serial add.
	psum := filepath.Join(dir, "psum.fzl")
	if err := run(0, 1, "", false, true, 4, false, psum, "", []string{comp, comp}); err != nil {
		t.Fatalf("parallel add: %v", err)
	}
	serialBytes, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	parallelBytes, err := os.ReadFile(psum)
	if err != nil {
		t.Fatal(err)
	}
	if string(serialBytes) != string(parallelBytes) {
		t.Fatalf("-parallel 4 add differs from serial (%d vs %d bytes)",
			len(parallelBytes), len(serialBytes))
	}
}

func TestDimsFlag(t *testing.T) {
	dir := t.TempDir()
	h, w := 32, 64
	vals := make([]float32, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			vals[i*w+j] = float32(math.Sin(float64(j)*0.2) + float64(i)*0.01)
		}
	}
	in := writeRaw(t, dir, "img.f32", vals)
	out1 := filepath.Join(dir, "1d.fzl")
	out2 := filepath.Join(dir, "2d.fzl")
	if err := run(1e-3, 1, "", false, false, 1, false, out1, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	if err := run(1e-3, 1, "32x64", false, false, 1, false, out2, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	s1, _ := os.Stat(out1)
	s2, _ := os.Stat(out2)
	if s2.Size() >= s1.Size() {
		t.Fatalf("2D (%d) should beat 1D (%d) on this image", s2.Size(), s1.Size())
	}
	if err := run(1e-3, 1, "bogus", false, false, 1, false, out2, "", []string{in}); err == nil {
		t.Fatal("bogus dims accepted")
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(0, 1, "", false, false, 1, false, filepath.Join(dir, "x"), "", []string{"nope.f32"}); err == nil {
		t.Error("missing input accepted")
	}
	in := writeRaw(t, dir, "short.f32", []float32{1})
	odd := filepath.Join(dir, "odd.bin")
	if err := os.WriteFile(odd, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(1e-3, 1, "", false, false, 1, false, filepath.Join(dir, "x"), "", []string{odd}); err == nil {
		t.Error("non-multiple-of-4 input accepted")
	}
	if err := run(0, 1, "", false, false, 1, false, filepath.Join(dir, "x"), "", []string{in}); err == nil {
		t.Error("zero error bound accepted")
	}
	if err := run(1e-3, 1, "", false, false, 1, false, "", "", []string{in}); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run(0, 1, "", false, false, 1, true, "", "", []string{}); err == nil {
		t.Error("info without file accepted")
	}
	if err := run(0, 1, "", false, true, 1, false, "x", "", []string{in}); err == nil {
		t.Error("add with one file accepted")
	}
}

func TestParseDims(t *testing.T) {
	if d := parseDims(""); d != nil {
		t.Fatal("empty dims")
	}
	if d := parseDims("4x8"); len(d) != 2 || d[0] != 4 || d[1] != 8 {
		t.Fatalf("2d dims: %v", d)
	}
	if d := parseDims("2X3x4"); len(d) != 3 || d[0] != 2 || d[2] != 4 {
		t.Fatalf("3d dims: %v", d)
	}
	if d := parseDims("axb"); len(d) == 2 {
		t.Fatal("garbage dims parsed")
	}
}

func TestCompareFlag(t *testing.T) {
	dir := t.TempDir()
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i) * 0.02))
	}
	in := writeRaw(t, dir, "in.f32", vals)
	comp := filepath.Join(dir, "out.fzl")
	back := filepath.Join(dir, "back.f32")
	if err := run(1e-3, 1, "", false, false, 1, false, comp, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 1, "", true, false, 1, false, back, in, []string{comp}); err != nil {
		t.Fatalf("decompress with -compare: %v", err)
	}
	// A length mismatch between original and reconstruction must error,
	// not print metrics over nothing.
	short := writeRaw(t, dir, "short.f32", vals[:10])
	if err := run(0, 1, "", true, false, 1, false, back, short, []string{comp}); err == nil {
		t.Fatal("-compare with mismatched length should fail")
	}
}

func TestFmtMetric(t *testing.T) {
	if got := fmtMetric(math.NaN()); got != "n/a" {
		t.Fatalf("NaN prints %q, want n/a", got)
	}
	if got := fmtMetric(math.Inf(1)); got != "+Inf" {
		t.Fatalf("+Inf prints %q", got)
	}
	if got := fmtMetric(0.5); got != "0.5" {
		t.Fatalf("0.5 prints %q", got)
	}
}
