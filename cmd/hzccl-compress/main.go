// Command hzccl-compress is a file-level interface to the fZ-light
// compressor and the hZ-dynamic homomorphic reducer. Data files are raw
// little-endian float32 arrays (the SDRBench convention).
//
// Usage:
//
//	hzccl-compress -eb 1e-3 [-threads N] [-dims DxHxW] -o out.fzl in.f32   compress
//	hzccl-compress -d [-compare orig.f32] -o out.f32 in.fzl         decompress
//	hzccl-compress -info in.fzl                                     inspect
//	hzccl-compress -add [-parallel N] -o sum.fzl a.fzl b.fzl        homomorphic add
//
// -compare prints reconstruction quality (max abs error, RMSE, NRMSE,
// max rel error, PSNR) of the decompressed output against the original
// raw file. Range-normalized metrics of a constant original are undefined
// and print as "n/a".
//
// Any mode accepts -metrics FILE|- to dump the runtime telemetry snapshot
// (codec byte counters, chunk encode/decode spans, hzdyn pipeline
// selection) at exit: "-" writes JSON to stdout; a ".prom" file suffix
// selects the Prometheus text format.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"hzccl"
	"hzccl/internal/floatbytes"
	"hzccl/internal/metrics"
	"hzccl/internal/telemetry"
)

// parseDims parses "HxW" or "DxHxW"; empty input yields nil (1D), invalid
// input yields a slice of the wrong length so the caller reports it.
func parseDims(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(strings.ToLower(s), "x")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return []int{-1}
		}
		out = append(out, v)
	}
	return out
}

func main() {
	var (
		eb         = flag.Float64("eb", 0, "absolute error bound (compress mode)")
		threads    = flag.Int("threads", 1, "compression threads")
		dims       = flag.String("dims", "", "optional dimensions HxW or DxHxW for the Lorenzo predictors")
		decompress = flag.Bool("d", false, "decompress instead of compress")
		add        = flag.Bool("add", false, "homomorphically add two compressed files")
		parallel   = flag.Int("parallel", 1, "goroutines for the sharded homomorphic-add executor (-add mode)")
		info       = flag.Bool("info", false, "print stream info and exit")
		out        = flag.String("o", "", "output file (required except for -info)")
		compare    = flag.String("compare", "", "raw float32 file to compare the decompressed output against (-d mode): prints error metrics")
		metricsOut = flag.String("metrics", "", "dump the telemetry snapshot at exit: '-' = JSON to stdout, FILE = JSON, FILE.prom = Prometheus text format")
	)
	flag.Parse()
	if err := run(*eb, *threads, *dims, *decompress, *add, *parallel, *info, *out, *compare, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-compress: %v\n", err)
		os.Exit(1)
	}
	if err := telemetry.DumpSnapshot(*metricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-compress: metrics: %v\n", err)
		os.Exit(1)
	}
}

// fmtMetric formats one quality metric, printing undefined (NaN) values —
// the range-normalized metrics of a constant original — as "n/a" instead
// of a number that could be misread as measured.
func fmtMetric(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%.6g", v)
}

func run(eb float64, threads int, dims string, decompress, add bool, parallel int, info bool, out, compare string, args []string) error {
	switch {
	case info:
		if len(args) != 1 {
			return fmt.Errorf("-info needs exactly one compressed file")
		}
		comp, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		st, err := hzccl.Info(comp)
		if err != nil {
			return err
		}
		fmt.Printf("elements:         %d\n", st.DataLen)
		fmt.Printf("error bound:      %g\n", st.ErrorBound)
		fmt.Printf("block size:       %d\n", st.BlockSize)
		fmt.Printf("threads (chunks): %d\n", st.Threads)
		fmt.Printf("compressed bytes: %d\n", st.CompressedBytes)
		fmt.Printf("ratio:            %.2f\n", st.Ratio)
		fmt.Printf("constant blocks:  %.2f%%\n", 100*st.ConstantBlockFraction)
		return nil

	case add:
		if len(args) != 2 || out == "" {
			return fmt.Errorf("-add needs two compressed inputs and -o")
		}
		a, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		b, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		sum, st, err := hzccl.HomomorphicAddParallelWithStats(a, b, parallel)
		if err != nil {
			return err
		}
		if st.Blocks > 0 {
			fmt.Printf("pipelines: ①%.1f%% ②%.1f%% ③%.1f%% ④%.1f%% over %d blocks\n",
				100*float64(st.BothConstant)/float64(st.Blocks),
				100*float64(st.LeftConstant)/float64(st.Blocks),
				100*float64(st.RightConstant)/float64(st.Blocks),
				100*float64(st.BothEncoded)/float64(st.Blocks), st.Blocks)
		}
		return os.WriteFile(out, sum, 0o644)

	case decompress:
		if len(args) != 1 || out == "" {
			return fmt.Errorf("-d needs one compressed input and -o")
		}
		comp, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		vals, err := hzccl.Decompress(comp)
		if err != nil {
			return err
		}
		if compare != "" {
			raw, err := os.ReadFile(compare)
			if err != nil {
				return err
			}
			if len(raw)%4 != 0 {
				return fmt.Errorf("%s: size %d is not a multiple of 4 (raw float32 expected)", compare, len(raw))
			}
			s := metrics.Compare(floatbytes.Floats(raw), vals)
			if s.Mismatched {
				return fmt.Errorf("%s has %d values, decompressed output has %d", compare, len(raw)/4, len(vals))
			}
			fmt.Printf("max abs err: %s\n", fmtMetric(s.MaxAbs))
			fmt.Printf("rmse:        %s\n", fmtMetric(s.RMSE))
			fmt.Printf("nrmse:       %s\n", fmtMetric(s.NRMSE))
			fmt.Printf("max rel err: %s\n", fmtMetric(s.MaxRel))
			fmt.Printf("psnr:        %s\n", fmtMetric(s.PSNR))
		}
		return os.WriteFile(out, floatbytes.Bytes(vals), 0o644)

	default:
		if len(args) != 1 || out == "" {
			return fmt.Errorf("compression needs one raw float32 input and -o")
		}
		if eb <= 0 {
			return fmt.Errorf("compression needs -eb > 0")
		}
		raw, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		if len(raw)%4 != 0 {
			return fmt.Errorf("%s: size %d is not a multiple of 4 (raw float32 expected)", args[0], len(raw))
		}
		vals := floatbytes.Floats(raw)
		p := hzccl.Params{ErrorBound: eb, Threads: threads}
		var comp []byte
		switch d := parseDims(dims); len(d) {
		case 0:
			comp, err = hzccl.Compress(vals, p)
		case 2:
			comp, err = hzccl.Compress2D(vals, d[0], d[1], p)
		case 3:
			comp, err = hzccl.Compress3D(vals, d[0], d[1], d[2], p)
		default:
			return fmt.Errorf("-dims must be HxW or DxHxW, got %q", dims)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%d -> %d bytes (ratio %.2f)\n", len(raw), len(comp), float64(len(raw))/float64(len(comp)))
		return os.WriteFile(out, comp, 0o644)
	}
}
