// Command hzccl-stacking regenerates the paper's image-stacking use case
// (§IV-E): Table VII (speedups and runtime breakdown) and Figure 13
// (stacked-image quality, with optional PGM output for visual comparison).
//
// Usage:
//
//	hzccl-stacking [-nodes N] [-message BYTES] [-out DIR] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"hzccl/internal/harness"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 0, "number of exposures / simulated nodes (0 = default)")
		message = flag.Int("message", 0, "bytes per image (0 = default)")
		outDir  = flag.String("out", "", "directory for exact.pgm and hzccl.pgm (empty = skip)")
		quick   = flag.Bool("quick", false, "shrink scales for a fast smoke run")
	)
	flag.Parse()

	opt := harness.Options{Nodes: *nodes, MessageBytes: *message, OutDir: *outDir, Quick: *quick}
	for _, id := range []string{"table7", "fig13"} {
		e, _ := harness.Find(id)
		fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-stacking: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
