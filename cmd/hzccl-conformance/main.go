// Command hzccl-conformance runs the differential conformance oracles
// (internal/conformance) on real data: raw little-endian float32 files
// (the SDRBench convention) or the synthetic dataset catalog.
//
// Usage:
//
//	hzccl-conformance [-eb 1e-3] [-ranks 5] [-oracles compressor,homomorphic,collective] \
//	    [-algorithms ring,rd,rabenseifner,hierarchical] [-topology NODESxSIZE|s0,s1,...] [file.f32 ...]
//
// With no file arguments every catalog dataset is checked at -n elements.
// The exit status is non-zero if any oracle reports a contract violation,
// making the command usable as a CI gate over real dataset files.
// -metrics dumps the telemetry snapshot at exit ('-' = JSON to stdout,
// FILE.prom = Prometheus text); -obs-listen serves the live introspection
// endpoint (healthz, metrics, pprof, flight recorder) while the oracles
// run, and -obs-linger keeps it up afterwards for scrapers.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hzccl/internal/cluster"
	"hzccl/internal/conformance"
	"hzccl/internal/core"
	"hzccl/internal/datasets"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/metrics"
	"hzccl/internal/obs"
	"hzccl/internal/telemetry"
)

type input struct {
	name string
	data []float32
}

func loadInputs(args []string, n int) ([]input, error) {
	if len(args) > 0 {
		out := make([]input, 0, len(args))
		for _, path := range args {
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			vals := floatbytes.Floats(raw)
			if len(vals) == 0 {
				return nil, fmt.Errorf("%s: no float32 values", path)
			}
			for i, v := range vals {
				f64 := float64(v)
				if math.IsNaN(f64) || math.IsInf(f64, 0) {
					return nil, fmt.Errorf("%s: non-finite value at element %d", path, i)
				}
			}
			out = append(out, input{name: filepath.Base(path), data: vals})
		}
		return out, nil
	}
	names := datasets.Names()
	out := make([]input, 0, len(names))
	for _, name := range names {
		data, err := datasets.Field(name, 0, n)
		if err != nil {
			return nil, err
		}
		out = append(out, input{name: name, data: data})
	}
	return out, nil
}

// rotate returns data shifted left by k elements (wrapping), giving each
// simulated rank a distinct but statistically identical input.
func rotate(data []float32, k int) []float32 {
	n := len(data)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	k %= n
	copy(out, data[k:])
	copy(out[n-k:], data[:k])
	return out
}

func main() {
	var (
		eb      = flag.Float64("eb", 1e-3, "error bound, relative to each input's value range (the SDRBench convention)")
		abs     = flag.Bool("abs", false, "treat -eb as an absolute bound instead")
		threads = flag.Int("threads", 2, "compression threads")
		ranks   = flag.Int("ranks", 5, "simulated ranks for the collective oracle")
		n       = flag.Int("n", 1<<16, "elements per synthetic dataset (catalog mode)")
		which   = flag.String("oracles", "compressor,homomorphic,collective",
			"comma-separated oracle subset to run")
		algoSpec = flag.String("algorithms", "",
			"comma-separated collective schedules for the collective oracle (ring, rd, rabenseifner, hierarchical); empty = ring")
		topoSpec = flag.String("topology", "",
			"node grouping for the collective oracle: NODESxSIZE (e.g. 2x2) or comma-separated node sizes summing to -ranks; empty = flat")
		verbose   = flag.Bool("v", false, "print per-input pass lines")
		chaosSeed = flag.Int64("chaos", 0, "run the collective oracle over a faulty fabric seeded with this value (0 = healthy fabric)")
		chaosRate = flag.Float64("chaos-rate", 0.03, "per-class fault probability (drop/corrupt/duplicate/delay) for -chaos")

		metricsOut = flag.String("metrics", "", "dump the telemetry snapshot at exit: '-' = JSON to stdout, FILE = JSON, FILE.prom = Prometheus text format")
		obsListen  = flag.String("obs-listen", "", "serve the live introspection endpoint (healthz, metrics, pprof, flight recorder) on this host:port")
		obsLinger  = flag.Duration("obs-linger", 0, "keep the -obs-listen endpoint up this long after the oracles finish")
	)
	flag.Parse()
	if *obsListen != "" {
		srv, err := obs.Start(*obsListen, obs.Options{Rank: -1, World: *ranks, Transport: "inproc"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-conformance: obs: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving on http://%s\n", srv.Addr())
	}
	err := run(*eb, *abs, *threads, *ranks, *n, *which, *algoSpec, *topoSpec, *verbose, *chaosSeed, *chaosRate, flag.Args())
	if merr := telemetry.DumpSnapshot(*metricsOut); merr != nil {
		fmt.Fprintf(os.Stderr, "hzccl-conformance: metrics: %v\n", merr)
		os.Exit(1)
	}
	if *obsListen != "" && *obsLinger > 0 {
		fmt.Fprintf(os.Stderr, "obs: lingering %v\n", *obsLinger)
		time.Sleep(*obsLinger)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-conformance: %v\n", err)
		os.Exit(1)
	}
}

func run(eb float64, abs bool, threads, ranks, n int, which, algoSpec, topoSpec string, verbose bool, chaosSeed int64, chaosRate float64, args []string) error {
	if eb <= 0 {
		return fmt.Errorf("-eb must be positive")
	}
	if chaosRate < 0 || chaosRate > 0.2 {
		return fmt.Errorf("-chaos-rate must be in [0, 0.2] (four classes share one draw)")
	}
	var algos []core.Algorithm
	if algoSpec != "" {
		for _, s := range strings.Split(algoSpec, ",") {
			a, err := core.ParseAlgorithm(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			if a == core.AlgoAuto {
				return fmt.Errorf("-algorithms: the collective oracle verifies fixed schedules; auto is not one")
			}
			algos = append(algos, a)
		}
	}
	var topo *cluster.Topology
	if topoSpec != "" {
		t, err := cluster.ParseTopology(topoSpec)
		if err != nil {
			return err
		}
		if err := t.Validate(ranks); err != nil {
			return err
		}
		topo = t
	}
	// With -chaos the collective oracle runs over a seeded faulty fabric
	// with reliable delivery on: the contract must hold anyway, proving the
	// self-healing transport end to end on real data.
	var chaos *cluster.Chaos
	if chaosSeed != 0 {
		chaos = cluster.NewChaos(cluster.ChaosSpec{
			Seed:            chaosSeed,
			DropRate:        chaosRate,
			CorruptRate:     chaosRate,
			DuplicateRate:   chaosRate,
			DelayRate:       chaosRate,
			MaxDelaySeconds: 20e-6,
		})
	}
	enabled := map[string]bool{}
	for _, w := range strings.Split(which, ",") {
		enabled[strings.TrimSpace(w)] = true
	}
	inputs, err := loadInputs(args, n)
	if err != nil {
		return err
	}

	totalChecks, totalFailures := 0, 0
	report := func(inputName, oracle string, rep *conformance.Report) {
		totalChecks += rep.Checks
		totalFailures += len(rep.Failures)
		if rep.OK() {
			if verbose {
				fmt.Printf("ok   %-12s %-12s %d checks\n", oracle, inputName, rep.Checks)
			}
			return
		}
		for i, f := range rep.Failures {
			if i == 5 {
				fmt.Printf("FAIL %-12s %-12s ... and %d more failures\n", oracle, inputName, len(rep.Failures)-i)
				break
			}
			fmt.Printf("FAIL %-12s %-12s %v\n", oracle, inputName, f)
		}
	}

	for _, in := range inputs {
		// Per-input absolute bound: relative bounds follow each dataset's
		// value range, so NYX-scale magnitudes stay inside every codec's
		// quantization range.
		ebAbs := eb
		if !abs {
			ebAbs = metrics.AbsBound(eb, in.data)
			if ebAbs == 0 { // constant input: any positive bound works
				ebAbs = eb
			}
		}
		if enabled["compressor"] {
			rep := conformance.CompressorOracle{Threads: threads}.Check(in.data, ebAbs)
			report(in.name, "compressor", rep)
		}
		if enabled["homomorphic"] {
			o := conformance.HomomorphicOracle{Params: fzlight.Params{ErrorBound: ebAbs, Threads: threads}}
			half := len(in.data) / 2
			res, err := o.Check(in.data[:half], in.data[half:2*half])
			if err != nil {
				return fmt.Errorf("%s: homomorphic oracle: %w", in.name, err)
			}
			report(in.name, "homomorphic", res.Report)
		}
		if enabled["collective"] {
			o := conformance.CollectiveOracle{
				Opt:        core.Options{ErrorBound: ebAbs},
				Algorithms: algos,
				Topology:   topo,
			}
			if chaos != nil {
				o.Fault = chaos.Fault()
				o.Reliable = true
				o.RecvTimeout = 200 * time.Millisecond
				o.Corrupt = &cluster.CorruptPattern{Spray: true, Burst: 2}
			}
			gen := func(rank int) []float32 {
				return rotate(in.data, rank*len(in.data)/ranks)
			}
			rep, err := o.CheckReduceScatter(ranks, gen)
			if err != nil {
				return fmt.Errorf("%s: collective oracle (reduce_scatter): %w", in.name, err)
			}
			report(in.name, "collective/rs", rep)
			rep, err = o.CheckAllreduce(ranks, gen)
			if err != nil {
				return fmt.Errorf("%s: collective oracle (allreduce): %w", in.name, err)
			}
			report(in.name, "collective/ar", rep)
		}
	}

	if chaos != nil {
		c := chaos.Counts()
		fmt.Printf("chaos: %d faults injected (%d drops, %d corrupts, %d duplicates, %d delays), all healed\n",
			c.Total(), c.Drops, c.Corrupts, c.Duplicates, c.Delays)
	}
	fmt.Printf("%d inputs, %d checks, %d failures\n", len(inputs), totalChecks, totalFailures)
	if totalFailures > 0 {
		return fmt.Errorf("%d contract violations", totalFailures)
	}
	return nil
}
