// Command hzccl-compressor regenerates the compressor-side experiments of
// the hZCCL paper: Table III (ratio/quality), Figure 6 (throughput),
// Table IV (memory-bandwidth efficiency), Table V (homomorphic pipeline
// selection) and Table VI (homomorphic vs DOC reduce performance).
//
// Usage:
//
//	hzccl-compressor -experiment table3|fig6|table4|table5|table6|all [-len N] [-quick] [-trials K]
package main

import (
	"flag"
	"fmt"
	"os"

	"hzccl/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id: table3, fig6, table4, table5, table6, szx-quality, predictors or all")
		length     = flag.Int("len", 0, "elements per field (0 = default)")
		quick      = flag.Bool("quick", false, "shrink scales for a fast smoke run")
		trials     = flag.Int("trials", 0, "timing trials per measurement (0 = default)")
	)
	flag.Parse()

	opt := harness.Options{Len: *length, Quick: *quick, Trials: *trials}
	ids := []string{"table3", "fig6", "table4", "table5", "table6", "szx-quality", "predictors"}
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		e, ok := harness.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "hzccl-compressor: unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-compressor: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
