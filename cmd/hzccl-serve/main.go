// Command hzccl-serve runs one rank of the collective-as-a-service mesh:
// a long-lived daemon that handshakes a TCP mesh once and then executes
// many collective jobs over it, each on an isolated transport session.
//
// Usage (one process per rank, same flags everywhere):
//
//	hzccl-serve -rank R -peers h0:p0,h1:p1,... \
//	    [-client-listen ADDR] [-queue-depth N] [-max-concurrent N] \
//	    [-job-timeout DUR] [-recv-timeout DUR] [-dial-timeout DUR] \
//	    [-obs-listen ADDR] [-metrics FILE|-]
//
// Rank 0 is the scheduler and client front door: it serves the JSON-lines
// submission protocol on -client-listen (default a loopback ephemeral
// port, printed on stdout at startup). Submit jobs with
// `hzccl-collective -submit ADDR ...` or the hzccl/serve client package.
//
// The submission queue is bounded (-queue-depth): a submit landing on a
// full queue is rejected immediately with a typed queue-full error
// instead of growing a backlog. -max-concurrent caps the jobs running
// simultaneously; the slot is claimed before any rank starts, so the
// concurrent set is identical mesh-wide.
//
// The daemon exits on SIGINT/SIGTERM, or tears itself down when a peer
// daemon dies — the service mesh has fixed membership (elasticity is
// per-job, via each job's own shrink consensus), so a lost peer means
// the service cannot run full-world jobs anymore.
//
// Observability: -obs-listen serves the standard introspection endpoint
// plus /jobs, the live job registry. -metrics dumps the telemetry
// snapshot at exit ('-' = JSON to stdout, FILE.prom = Prometheus text).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hzccl/internal/obs"
	"hzccl/internal/telemetry"
	"hzccl/serve"
)

func main() {
	var (
		rank       = flag.Int("rank", 0, "this process's rank in the service mesh")
		peers      = flag.String("peers", "", "comma-separated host:port listen addresses of all ranks (indexed by rank)")
		clientAddr = flag.String("client-listen", "", "rank 0's client-protocol listen address (empty = loopback ephemeral, printed at startup)")
		queueDepth = flag.Int("queue-depth", 0, "bounded submission queue size on rank 0 (0 = 16); a full queue rejects with a typed error")
		maxConc    = flag.Int("max-concurrent", 0, "cap on simultaneously running jobs (0 = 2)")
		jobTO      = flag.Duration("job-timeout", 0, "per-job membership-handshake and result-collection deadline (0 = 60s)")
		recvTO     = flag.Duration("recv-timeout", 0, "per-job receive deadline (0 = 2s, matching hzccl-collective -transport)")
		dialTO     = flag.Duration("dial-timeout", 0, "mesh formation deadline (0 = 15s)")
		obsListen  = flag.String("obs-listen", "", "serve the live introspection endpoint (healthz, metrics, pprof, flight recorder, /jobs) on this host:port")
		metricsOut = flag.String("metrics", "", "dump the telemetry snapshot at exit: '-' = JSON to stdout, FILE = JSON, FILE.prom = Prometheus text format")
	)
	flag.Parse()

	peerList := strings.Split(*peers, ",")
	if *peers == "" || len(peerList) < 2 {
		fmt.Fprintln(os.Stderr, "hzccl-serve: -peers needs at least two comma-separated host:port addresses")
		os.Exit(2)
	}

	d, err := serve.Start(serve.Options{
		Rank:          *rank,
		Peers:         peerList,
		ClientAddr:    *clientAddr,
		QueueDepth:    *queueDepth,
		MaxConcurrent: *maxConc,
		JobTimeout:    *jobTO,
		RecvTimeout:   *recvTO,
		DialTimeout:   *dialTO,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-serve: %v\n", err)
		os.Exit(1)
	}
	if *rank == 0 {
		// Stdout so scripts can capture the (possibly ephemeral) address.
		fmt.Printf("client protocol on %s\n", d.ClientAddr())
	}

	if *obsListen != "" {
		srv, err := obs.Start(*obsListen, obs.Options{
			Rank: *rank, World: d.World(), Transport: "tcp",
			Jobs: func() any { return d.Jobs() },
		})
		if err != nil {
			d.Close()
			fmt.Fprintf(os.Stderr, "hzccl-serve: obs: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving on http://%s\n", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hzccl-serve: rank %d: %v, shutting down\n", *rank, s)
	case <-d.Done():
		fmt.Fprintf(os.Stderr, "hzccl-serve: rank %d: service stopped\n", *rank)
	}
	d.Close()

	if err := telemetry.DumpSnapshot(*metricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-serve: metrics: %v\n", err)
		os.Exit(1)
	}
}
