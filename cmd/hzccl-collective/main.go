// Command hzccl-collective regenerates the collective-communication
// experiments of the hZCCL paper: Figure 2 (C-Coll runtime breakdown),
// Figures 7/8 (hZCCL vs C-Coll), Figures 9/11 (message-size sweeps) and
// Figures 10/12 (node-count sweeps up to 512 simulated nodes).
//
// Usage:
//
//	hzccl-collective -experiment fig2|fig7|fig8|fig9|fig10|fig11|fig12|all \
//	    [-nodes N] [-maxnodes N] [-message BYTES] [-rel BOUND] \
//	    [-latency DUR] [-bandwidth GBPS] [-quick] [-trials K] \
//	    [-metrics FILE|-]
//
// -metrics dumps the accumulated runtime telemetry (compressor byte
// counters, per-stage span histograms, hzdyn pipeline selection) at exit:
// "-" writes the JSON snapshot to stdout, any other value is a file path,
// and a path ending in ".prom" selects the Prometheus text format.
//
// Multi-process mode: with -transport=tcp the process becomes ONE rank of
// a real cluster over TCP sockets and runs a single Allreduce:
//
//	hzccl-collective -transport=tcp -rank 0 -peers h0:p0,h1:p1,... \
//	    [-backend mpi|ccoll|hzccl] [-algorithm ring|rd|rabenseifner|hierarchical|auto] \
//	    [-topology NODESxSIZE|s0,s1,...] [-message BYTES] [-rel BOUND] \
//	    [-recv-timeout DUR] [-kill-rank R -kill-step S]
//
// Transport runs always carry a receive deadline (-recv-timeout, default
// 2s) so a dropped peer surfaces as an error instead of a deadlock.
// -kill-rank crashes one rank mid-collective as an elastic-membership
// demo: every process passes the same flags, the victim exits reporting
// its injected death, and the survivors evict it and print digests of the
// shrunken-world result (which must match an inproc run of the survivor
// count).
//
// Service mode: -serve makes this process one rank of the long-lived
// collective-as-a-service mesh (the hzccl-serve daemon in the same
// binary), and -submit ADDR sends one job — described by the usual
// -backend/-algorithm/-topology/-message/-rel flags — to a running
// daemon and prints its digests in the standalone format:
//
//	hzccl-collective -serve -rank R -peers h0:p0,... [-client-listen ADDR]
//	hzccl-collective -submit HOST:PORT -backend hzccl -message 65536
//
// Every process prints its rank's result digest, virtual time and
// wall-clock time; digests must agree across ranks and match
// -transport=inproc (same flags, no -rank/-peers), which runs the
// identical collective on the default in-process fabric and prints each
// rank's digest in the same format. scripts/tcp_smoke.sh automates the
// comparison.
//
// Observability: -obs-listen ADDR serves /healthz, /metrics (Prometheus),
// /debug/vars, /debug/pprof/*, /flightrecorder and /trace over HTTP for
// the lifetime of the process (-obs-linger keeps it up after the work
// finishes, for scrapers). -trace works in transport mode too: on
// -transport=tcp each process writes its own trace file, and
//
//	hzccl-collective -trace-merge merged.json rank0.json rank1.json ...
//
// joins them into one Perfetto-loadable multi-rank timeline. On any
// collective failure the flight recorder's retained events are dumped to
// stderr.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hzccl"
	"hzccl/internal/cluster"
	"hzccl/internal/core"
	"hzccl/internal/datasets"
	"hzccl/internal/harness"
	"hzccl/internal/metrics"
	"hzccl/internal/obs"
	"hzccl/internal/telemetry"
	"hzccl/serve"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id: fig2, fig7..fig12 or all")
		nodes      = flag.Int("nodes", 0, "node count for fixed-node experiments (0 = default)")
		maxNodes   = flag.Int("maxnodes", 0, "maximum node count for scaling sweeps (0 = default 512)")
		message    = flag.Int("message", 0, "per-rank message bytes for node sweeps (0 = default)")
		rel        = flag.Float64("rel", 0, "relative error bound (0 = default 1e-4)")
		latency    = flag.Duration("latency", 0, "modeled per-message latency (0 = default 2us)")
		bandwidth  = flag.Float64("bandwidth", 0, "modeled effective link bandwidth in GB/s (0 = default 0.4)")
		quick      = flag.Bool("quick", false, "shrink scales for a fast smoke run")
		trials     = flag.Int("trials", 0, "timing trials per kernel (0 = default)")
		traceFile  = flag.String("trace", "", "write a Chrome trace of one hZCCL Allreduce to this file and exit")
		metricsOut = flag.String("metrics", "", "dump the telemetry snapshot at exit: '-' = JSON to stdout, FILE = JSON, FILE.prom = Prometheus text format")
		chaosSeed  = flag.Int64("chaos", 0, "run a self-healing demo: one Allreduce over a faulty fabric seeded with this value, then exit (0 = off)")
		chaosRate  = flag.Float64("chaos-rate", 0.04, "per-class fault probability (drop/corrupt/duplicate/delay) for -chaos")
		transport  = flag.String("transport", "", "run one Allreduce on a specific fabric and exit: 'tcp' (this process is one rank; requires -rank and -peers) or 'inproc' (all ranks in-process, -nodes ranks)")
		tcpRank    = flag.Int("rank", 0, "this process's rank for -transport=tcp")
		tcpPeers   = flag.String("peers", "", "comma-separated host:port listen addresses of all ranks (indexed by rank) for -transport=tcp")
		backendStr = flag.String("backend", "hzccl", "collective backend for -transport: mpi, ccoll or hzccl")
		algoStr    = flag.String("algorithm", "ring", "collective algorithm for -transport: ring, rd, rabenseifner, hierarchical or auto")
		topoStr    = flag.String("topology", "", "node grouping for -transport: NODESxSIZE (e.g. 2x2) or comma-separated node sizes (e.g. 3,5,8); empty = flat")
		killRank   = flag.Int("kill-rank", -1, "elastic-membership demo for -transport: crash this rank mid-collective; survivors evict it and finish on the shrunken world (-1 = off)")
		killStep   = flag.Int("kill-step", 0, "program-order send step at which -kill-rank crashes")
		recvTO     = flag.Duration("recv-timeout", 0, "receive deadline for -transport runs (0 = 2s; a dropped peer must surface as an error, not a deadlock)")
		serveMode  = flag.Bool("serve", false, "run as one rank of the collective-as-a-service daemon (hzccl-serve equivalent; requires -rank and -peers, rank 0 serves clients on -client-listen)")
		clientLn   = flag.String("client-listen", "", "rank 0's client-protocol listen address for -serve (empty = loopback ephemeral, printed at startup)")
		submitAddr = flag.String("submit", "", "submit one job to a running daemon's client address and print its digests (uses -backend/-algorithm/-topology/-message/-rel/-kill-rank/-kill-step)")
		obsListen  = flag.String("obs-listen", "", "serve the live introspection endpoint (healthz, metrics, pprof, flight recorder, trace) on this host:port")
		obsLinger  = flag.Duration("obs-linger", 0, "keep the -obs-listen endpoint up this long after the work finishes")
		traceMerge = flag.String("trace-merge", "", "merge the per-process trace files given as arguments into this output file and exit")
	)
	flag.Parse()

	// Collective failures dump the flight recorder's retained events, so a
	// crashed run leaves a post-mortem on stderr.
	hzccl.SetFlightDumpWriter(os.Stderr)

	if *traceMerge != "" {
		if err := mergeTraces(*traceMerge, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: trace-merge: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (merged %d traces; open in chrome://tracing or ui.perfetto.dev)\n", *traceMerge, len(flag.Args()))
		return
	}

	// In transport mode -trace records this process's rank-local trace;
	// the same Trace object backs the /trace endpoint.
	var transportTrace *hzccl.Trace
	if *transport != "" && *traceFile != "" {
		transportTrace = &hzccl.Trace{}
	}
	if *obsListen != "" && !*serveMode {
		srv, err := startObs(*obsListen, *transport, *tcpRank, *tcpPeers, *nodes, transportTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: obs: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	// finish runs the common exit work: the -metrics snapshot, then the
	// -obs-linger window during which the endpoint stays scrapable.
	finish := func() {
		if err := telemetry.DumpSnapshot(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: metrics: %v\n", err)
			os.Exit(1)
		}
		if *obsListen != "" && *obsLinger > 0 {
			fmt.Fprintf(os.Stderr, "obs: lingering %v\n", *obsLinger)
			time.Sleep(*obsLinger)
		}
	}

	if *serveMode {
		// -serve manages its own obs server so the /jobs endpoint can see
		// the daemon's registry (the generic startObs above is skipped).
		if err := runServe(*tcpRank, *tcpPeers, *clientLn, *obsListen, *recvTO); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: serve: %v\n", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *submitAddr != "" {
		if err := runSubmit(*submitAddr, *backendStr, *algoStr, *topoStr, *message, *rel, *killRank, *killStep); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: submit: %v\n", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *transport != "" {
		if err := runTransport(*transport, *tcpRank, *tcpPeers, *backendStr, *algoStr, *topoStr, *nodes, *message, *rel, *traceFile, transportTrace, *killRank, *killStep, *recvTO); err != nil {
			if errors.Is(err, hzccl.ErrRankKilled) {
				// The injected crash: this rank is the victim, and dying is
				// its expected outcome — the survivors carry the collective.
				fmt.Printf("rank %d killed by injected fault at send #%d (expected; survivors continue)\n", *tcpRank, *killStep)
				finish()
				return
			}
			fmt.Fprintf(os.Stderr, "hzccl-collective: transport: %v\n", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *chaosSeed != 0 {
		if err := runChaosDemo(*chaosSeed, *chaosRate, *nodes, *message); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: chaos: %v\n", err)
			os.Exit(1)
		}
		finish()
		return
	}

	if *traceFile != "" {
		if err := writeTrace(*traceFile, *nodes, *message); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceFile)
		finish()
		return
	}

	opt := harness.Options{
		Nodes:        *nodes,
		MaxNodes:     *maxNodes,
		MessageBytes: *message,
		RelBound:     *rel,
		Latency:      *latency,
		Bandwidth:    *bandwidth * 1e9,
		Quick:        *quick,
		Trials:       *trials,
	}
	ids := []string{"fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		e, ok := harness.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "hzccl-collective: unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "hzccl-collective: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	finish()
}

// startObs boots the live introspection endpoint with this process's
// identity: in transport mode the rank and world size from the flags, in
// experiment/chaos/trace mode rank −1 (one process hosts every rank).
func startObs(addr, transportKind string, tcpRank int, tcpPeers string, nodes int, trace *hzccl.Trace) (*obs.Server, error) {
	rank, world, name := -1, nodes, transportKind
	switch transportKind {
	case "tcp":
		rank = tcpRank
		world = len(strings.Split(tcpPeers, ","))
	case "":
		name = "inproc"
	}
	if transportKind != "tcp" && world == 0 {
		world = 4 // runTransport's inproc default
	}
	opts := obs.Options{Rank: rank, World: world, Transport: name}
	if trace != nil {
		opts.Trace = trace.WriteChrome
	}
	srv, err := obs.Start(addr, opts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "obs: serving on http://%s\n", srv.Addr())
	return srv, nil
}

// mergeTraces joins per-process trace files (written by -transport=tcp
// -trace) into one multi-rank timeline.
func mergeTraces(out string, inputs []string) error {
	if len(inputs) < 2 {
		return fmt.Errorf("need at least two per-process trace files as arguments")
	}
	readers := make([]io.Reader, len(inputs))
	for i, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		readers[i] = f
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return hzccl.MergeChromeTraces(f, readers...)
}

// runServe turns this process into one rank of the collective-as-a-service
// mesh (the hzccl-serve daemon, reachable from the same binary for
// single-binary deployments). It blocks until SIGINT/SIGTERM or until the
// service tears itself down because a peer daemon died.
func runServe(rank int, peers, clientListen, obsListen string, recvTO time.Duration) error {
	peerList := strings.Split(peers, ",")
	if peers == "" || len(peerList) < 2 {
		return fmt.Errorf("-serve needs -peers with at least two comma-separated host:port addresses")
	}
	d, err := serve.Start(serve.Options{
		Rank: rank, Peers: peerList, ClientAddr: clientListen, RecvTimeout: recvTO,
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	if rank == 0 {
		// Stdout so scripts can capture the (possibly ephemeral) address.
		fmt.Printf("client protocol on %s\n", d.ClientAddr())
	}
	if obsListen != "" {
		srv, err := obs.Start(obsListen, obs.Options{
			Rank: rank, World: d.World(), Transport: "tcp",
			Jobs: func() any { return d.Jobs() },
		})
		if err != nil {
			d.Close()
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving on http://%s\n", srv.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "serve: rank %d: %v, shutting down\n", rank, s)
	case <-d.Done():
		fmt.Fprintf(os.Stderr, "serve: rank %d: service stopped\n", rank)
	}
	return d.Close()
}

// runSubmit sends one job to a running daemon and prints the per-rank
// digest lines in the exact format of a -transport run, so smoke scripts
// compare daemon and standalone results with the same extraction.
func runSubmit(addr, backendStr, algoStr, topoStr string, message int, rel float64, killRank, killStep int) error {
	backend, err := parseBackend(backendStr)
	if err != nil {
		return err
	}
	if message == 0 {
		message = 1 << 18
	}
	if rel == 0 {
		rel = 1e-4
	}
	c, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	world, err := c.Ping()
	if err != nil {
		return err
	}
	spec := serve.JobSpec{
		Backend: strings.ToLower(backendStr), Algorithm: algoStr, Topology: topoStr,
		MessageBytes: message, RelBound: rel,
	}
	if killRank >= 0 {
		spec.KillRank = killRank
		spec.KillStep = killStep
	}
	res, err := c.Submit(spec)
	if err != nil {
		return err
	}
	if len(res.Evicted) > 0 {
		fmt.Printf("evicted ranks %v: survivors finished on a %d-rank world\n", res.Evicted, world-len(res.Evicted))
	}
	ranks := make([]int, 0, len(res.Digests))
	for k := range res.Digests {
		id, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("daemon returned non-numeric rank %q", k)
		}
		ranks = append(ranks, id)
	}
	sort.Ints(ranks)
	for _, id := range ranks {
		fmt.Printf("rank %d/%d backend=%s algo=%s bytes=%d digest=%s virtual=%.3fms wall=%.3fms\n",
			id, world, backend, algoStr, message, res.Digests[strconv.Itoa(id)],
			res.VirtualSeconds*1e3, res.WallSeconds*1e3)
	}
	fmt.Printf("job %d done on %s\n", res.ID, addr)
	return nil
}

// parseBackend maps a -backend flag value to a collective backend.
func parseBackend(s string) (hzccl.Backend, error) {
	switch strings.ToLower(s) {
	case "mpi":
		return hzccl.BackendMPI, nil
	case "ccoll", "c-coll":
		return hzccl.BackendCColl, nil
	case "hzccl", "":
		return hzccl.BackendHZCCL, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want mpi, ccoll or hzccl)", s)
}

// digest32 is the result fingerprint printed by transport mode: crc32c
// over the little-endian bytes of the reduced vector. Ranks running the
// same collective on any fabric must print identical digests.
func digest32(v []float32) uint32 {
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	return crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli))
}

// runTransport runs one Allreduce on an explicitly selected fabric and
// prints, per local rank, a digest of the reduced vector plus the virtual
// (modeled) and wall-clock times. "tcp" makes this process rank `rank` of
// the mesh described by `peers`; "inproc" runs all ranks in this process
// so its digests serve as the reference the TCP run must match bitwise.
// With a trace attached the run is recorded and written to traceFile —
// on TCP each process produces its own rank-local file for -trace-merge.
func runTransport(kind string, rank int, peers, backendStr, algoStr, topoStr string, nodes, message int, rel float64, traceFile string, trace *hzccl.Trace, killRank, killStep int, recvTO time.Duration) error {
	backend, err := parseBackend(backendStr)
	if err != nil {
		return err
	}
	algo, err := hzccl.ParseAlgorithm(algoStr)
	if err != nil {
		return err
	}
	var topo *hzccl.Topology
	if topoStr != "" {
		topo, err = hzccl.ParseTopology(topoStr)
		if err != nil {
			return err
		}
	}
	if message == 0 {
		message = 1 << 18
	}
	if rel == 0 {
		rel = 1e-4
	}
	base, err := datasets.Field("SimSet1", 0, message/4)
	if err != nil {
		return err
	}
	eb := metrics.AbsBound(rel, base)
	opt := hzccl.CollectiveOptions{ErrorBound: eb, Algorithm: algo}

	// A receive deadline always: a transport run whose peer drops must
	// surface an error, never deadlock-by-config.
	if recvTO <= 0 {
		recvTO = 2 * time.Second
	}
	cfg := hzccl.ClusterConfig{
		Latency:        2 * time.Microsecond,
		BandwidthBytes: 0.4e9,
		Topology:       topo,
		Trace:          trace,
		RecvTimeout:    recvTO,
	}
	if killRank >= 0 {
		// Elastic-membership demo: crash the victim mid-collective; the
		// survivors detect it, evict it and finish on the shrunken world.
		cfg.Fault = hzccl.KillRank{Rank: killRank, AtStep: killStep}.Fault()
		cfg.Reliable = true
		opt.Degrade = &hzccl.DegradePolicy{Shrink: true}
	}
	switch kind {
	case "tcp":
		peerList := strings.Split(peers, ",")
		if peers == "" || len(peerList) < 2 {
			return fmt.Errorf("-transport=tcp needs -peers with at least two comma-separated host:port addresses")
		}
		tr, err := hzccl.NewTCPTransport(hzccl.TCPOptions{Rank: rank, Peers: peerList})
		if err != nil {
			return err
		}
		defer tr.Close()
		cfg.Ranks = len(peerList)
		cfg.Transport = tr
	case "inproc":
		if nodes == 0 {
			nodes = 4
		}
		cfg.Ranks = nodes
	default:
		return fmt.Errorf("unknown transport %q (want tcp or inproc)", kind)
	}

	var mu sync.Mutex
	digests := make(map[int]uint32, cfg.Ranks)
	res, err := hzccl.RunCluster(cfg, func(r *hzccl.Rank) error {
		id0 := r.ID() // pre-shrink identity: a kill run renumbers survivors
		out, err := r.Allreduce(base, backend, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		digests[id0] = digest32(out)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	if len(res.Evicted) > 0 {
		fmt.Printf("evicted ranks %v: survivors finished on a %d-rank world\n", res.Evicted, cfg.Ranks-len(res.Evicted))
	}
	ranks := make([]int, 0, len(digests))
	for id := range digests {
		ranks = append(ranks, id)
	}
	sort.Ints(ranks)
	algoLabel := algo.String()
	if algo == hzccl.AlgoAuto && len(res.AlgoChoices) > 0 {
		algoLabel = "auto:" + res.AlgoChoices[0].Algorithm.String()
	}
	for _, id := range ranks {
		fmt.Printf("rank %d/%d backend=%s algo=%s bytes=%d digest=%08x virtual=%.3fms wall=%.3fms\n",
			id, cfg.Ranks, backend, algoLabel, message, digests[id], res.Seconds*1e3, res.WallSeconds*1e3)
	}
	if kind == "tcp" {
		for _, name := range []string{
			"cluster.transport.dials", "cluster.transport.accepts",
			"cluster.transport.reconnects", "cluster.transport.bytes_out",
			"cluster.transport.bytes_in",
		} {
			fmt.Printf("  %-30s %d\n", name, telemetry.C(name).Value())
		}
	}
	if trace != nil && traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChrome(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (merge per-process files with -trace-merge)\n", traceFile)
	}
	return nil
}

// runChaosDemo drives one hZCCL Allreduce through a seeded chaotic
// fabric with the self-healing transport on, then reports what the
// recovery layer had to do: faults injected, NACKs, retransmissions,
// dedups and any backend degradations.
func runChaosDemo(seed int64, rate float64, nodes, message int) error {
	if rate < 0 || rate > 0.2 {
		return fmt.Errorf("-chaos-rate must be in [0, 0.2]")
	}
	if nodes == 0 {
		nodes = 8
	}
	if message == 0 {
		message = 1 << 18
	}
	n := message / 4
	base, err := datasets.Field("SimSet1", 0, n)
	if err != nil {
		return err
	}
	eb := metrics.AbsBound(1e-4, base)
	chaos := hzccl.NewChaos(hzccl.ChaosSpec{
		Seed:            seed,
		DropRate:        rate,
		CorruptRate:     rate,
		DuplicateRate:   rate,
		DelayRate:       rate,
		MaxDelaySeconds: 20e-6,
	})
	counters := []string{"cluster.nacks", "cluster.retransmits", "cluster.dedups", "collective.degradations"}
	before := make(map[string]int64, len(counters))
	for _, name := range counters {
		before[name] = telemetry.C(name).Value()
	}
	res, err := hzccl.RunCluster(hzccl.ClusterConfig{
		Ranks:       nodes,
		Latency:     2 * time.Microsecond,
		Reliable:    true,
		RecvTimeout: 500 * time.Millisecond,
		Fault:       chaos.Fault(),
		Corrupt:     &hzccl.CorruptPattern{Spray: true, Burst: 2},
	}, func(r *hzccl.Rank) error {
		_, err := r.Allreduce(base, hzccl.BackendHZCCL, hzccl.CollectiveOptions{
			ErrorBound: eb,
			Degrade:    &hzccl.DegradePolicy{},
		})
		return err
	})
	if err != nil {
		return err
	}
	c := chaos.Counts()
	fmt.Printf("self-healing Allreduce: %d nodes, %d KB, seed %d\n", nodes, message>>10, seed)
	fmt.Printf("  injected: %d faults (%d drops, %d corrupts, %d duplicates, %d delays)\n",
		c.Total(), c.Drops, c.Corrupts, c.Duplicates, c.Delays)
	for _, name := range counters {
		fmt.Printf("  %-24s %d\n", name, telemetry.C(name).Value()-before[name])
	}
	for _, d := range res.Degradations {
		fmt.Printf("  degraded: %v\n", d)
	}
	fmt.Printf("  completed in %.3f ms virtual time\n", res.Seconds*1e3)
	return nil
}

// writeTrace records the virtual timeline of one hZCCL multi-thread
// Allreduce and saves it in Chrome trace-event format.
func writeTrace(path string, nodes, message int) error {
	if nodes == 0 {
		nodes = 8
	}
	if message == 0 {
		message = 1 << 20
	}
	n := message / 4
	base, err := datasets.Field("SimSet1", 0, n)
	if err != nil {
		return err
	}
	eb := metrics.AbsBound(1e-4, base)
	c := core.New(core.Options{ErrorBound: eb, Mode: core.MultiThread})
	cl, tr, err := cluster.NewTraced(cluster.Config{
		Ranks:          nodes,
		Latency:        2 * time.Microsecond,
		BandwidthBytes: 0.4e9,
	})
	if err != nil {
		return err
	}
	if _, err := cl.Run(func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, base)
		return err
	}); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteChrome(f)
}
