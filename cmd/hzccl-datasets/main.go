// Command hzccl-datasets generates the synthetic application fields used
// throughout the evaluation as raw little-endian float32 files (the
// SDRBench convention), and summarizes their compression-relevant
// statistics. The files feed directly into hzccl-compress.
//
// Usage:
//
//	hzccl-datasets -list
//	hzccl-datasets -dataset NYX -field 0 -len 4194304 -o nyx0.f32
//	hzccl-datasets -dataset NYX -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"hzccl/internal/datasets"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/metrics"
	"hzccl/internal/telemetry"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available datasets")
		name    = flag.String("dataset", "", "dataset name")
		field   = flag.Int("field", 0, "field index")
		length  = flag.Int("len", 1<<22, "elements to generate")
		out     = flag.String("o", "", "output file (raw float32)")
		summary = flag.Bool("summary", false, "print compression statistics instead of writing a file")

		metricsOut = flag.String("metrics", "", "dump the telemetry snapshot at exit: '-' = JSON to stdout, FILE = JSON, FILE.prom = Prometheus text format")
	)
	flag.Parse()
	if err := run(*list, *name, *field, *length, *out, *summary); err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-datasets: %v\n", err)
		os.Exit(1)
	}
	if err := telemetry.DumpSnapshot(*metricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "hzccl-datasets: metrics: %v\n", err)
		os.Exit(1)
	}
}

func run(list bool, name string, field, length int, out string, summary bool) error {
	if list {
		fmt.Printf("%-10s %-14s %-8s %s\n", "Name", "Domain", "Fields", "DefaultLen")
		for _, m := range datasets.Catalog {
			fmt.Printf("%-10s %-14s %-8d %d\n", m.Name, m.Domain, m.Fields, m.DefaultLen)
		}
		return nil
	}
	if name == "" {
		return fmt.Errorf("need -dataset (or -list)")
	}
	data, err := datasets.Field(name, field, length)
	if err != nil {
		return err
	}
	if summary {
		mn, mx := metrics.MinMax(data)
		fmt.Printf("dataset %s field %d: %d elements, range [%.4g, %.4g]\n", name, field, length, mn, mx)
		fmt.Printf("%-8s  %-8s  %-10s  %s\n", "REL", "abs eb", "fZ ratio", "constant blocks")
		for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
			eb := metrics.AbsBound(rel, data)
			comp, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb})
			if err != nil {
				return err
			}
			st, err := fzlight.Stats(comp)
			if err != nil {
				return err
			}
			fmt.Printf("%-8.0e  %-8.3g  %-10.2f  %.1f%%\n",
				rel, eb, metrics.Ratio(4*len(data), len(comp)), 100*st.ConstantFraction())
		}
		return nil
	}
	if out == "" {
		return fmt.Errorf("need -o or -summary")
	}
	if err := os.WriteFile(out, floatbytes.Bytes(data), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d float32 values (%d bytes)\n", out, length, 4*length)
	return nil
}
