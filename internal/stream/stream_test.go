package stream

import "testing"

func TestRunProducesPositiveRates(t *testing.T) {
	r := Run(1<<16, 2)
	for name, v := range map[string]float64{
		"Copy": r.Copy, "Scale": r.Scale, "Add": r.Add, "Triad": r.Triad,
	} {
		if !(v > 0) {
			t.Errorf("%s rate %g", name, v)
		}
	}
	best := r.Best()
	for _, v := range []float64{r.Copy, r.Scale, r.Add, r.Triad} {
		if best < v {
			t.Fatalf("Best %g below component %g", best, v)
		}
	}
}

func TestRunClampsDegenerateArgs(t *testing.T) {
	r := Run(0, 0)
	if !(r.Copy > 0) {
		t.Fatal("degenerate args should still run")
	}
}
