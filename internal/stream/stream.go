// Package stream is a Go port of McCalpin's STREAM memory-bandwidth
// benchmark (Copy, Scale, Add, Triad). The hZCCL paper uses the best of
// the four STREAM rates as the machine's peak memory throughput when
// computing the memory-bandwidth efficiency of fZ-light and ompSZp
// (Table IV); this package serves the same role here.
package stream

import "time"

// Result holds the measured bandwidth of each kernel in GB/s (decimal).
type Result struct {
	Copy  float64
	Scale float64
	Add   float64
	Triad float64
}

// Best returns the highest of the four rates — the "peak memory
// throughput" divisor used for efficiency percentages.
func (r Result) Best() float64 {
	best := r.Copy
	for _, v := range []float64{r.Scale, r.Add, r.Triad} {
		if v > best {
			best = v
		}
	}
	return best
}

// Run executes the four STREAM kernels over arrays of n float64 elements,
// repeating each kernel iters times and keeping the best (lowest-time)
// trial, exactly as the reference STREAM does. n should exceed the last
// level cache several times over for a meaningful result.
func Run(n, iters int) Result {
	if n < 1 {
		n = 1
	}
	if iters < 1 {
		iters = 1
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1.0
		b[i] = 2.0
		c[i] = 0.0
	}
	const scalar = 3.0

	best := func(f func()) float64 {
		bt := time.Duration(1 << 62)
		for k := 0; k < iters; k++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < bt {
				bt = d
			}
		}
		return bt.Seconds()
	}

	tCopy := best(func() {
		for i := 0; i < n; i++ {
			c[i] = a[i]
		}
	})
	tScale := best(func() {
		for i := 0; i < n; i++ {
			b[i] = scalar * c[i]
		}
	})
	tAdd := best(func() {
		for i := 0; i < n; i++ {
			c[i] = a[i] + b[i]
		}
	})
	tTriad := best(func() {
		for i := 0; i < n; i++ {
			a[i] = b[i] + scalar*c[i]
		}
	})

	bytes2 := float64(16 * n) // two arrays touched
	bytes3 := float64(24 * n) // three arrays touched
	return Result{
		Copy:  bytes2 / tCopy / 1e9,
		Scale: bytes2 / tScale / 1e9,
		Add:   bytes3 / tAdd / 1e9,
		Triad: bytes3 / tTriad / 1e9,
	}
}
