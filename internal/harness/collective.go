package harness

import (
	"fmt"
	"io"
	"math"

	"hzccl/internal/cluster"
	"hzccl/internal/core"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
	"hzccl/internal/metrics"
	"hzccl/internal/telemetry"
)

// Kernel numbering follows the paper's artifact:
//
//	0: original MPI, 1: C-Coll multi-thread, 2: hZCCL multi-thread,
//	3: C-Coll single-thread, 4: hZCCL single-thread.
const (
	KernelMPI     = 0
	KernelCCollMT = 1
	KernelHZMT    = 2
	KernelCCollST = 3
	KernelHZST    = 4
)

// KernelName returns the artifact name of a kernel index.
func KernelName(k int) string {
	switch k {
	case KernelMPI:
		return "MPI"
	case KernelCCollMT:
		return "C-Coll (MT)"
	case KernelHZMT:
		return "hZCCL (MT)"
	case KernelCCollST:
		return "C-Coll (ST)"
	case KernelHZST:
		return "hZCCL (ST)"
	}
	return fmt.Sprintf("kernel%d", k)
}

// Kernels lists all kernel indices in artifact order.
var Kernels = []int{KernelMPI, KernelCCollMT, KernelHZMT, KernelCCollST, KernelHZST}

func init() {
	register(Experiment{ID: "fig2", Title: "C-Coll Allreduce runtime breakdown (DOC vs MPI vs OTHER)", Run: runFig2})
	register(Experiment{ID: "fig7", Title: "Reduce_scatter: hZCCL vs C-Coll on RTM datasets", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Allreduce: hZCCL vs C-Coll on RTM datasets", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "Reduce_scatter vs message size (5 kernels)", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "Reduce_scatter vs node count (5 kernels)", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Allreduce vs message size (5 kernels)", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Allreduce vs node count (5 kernels)", Run: runFig12})
}

func (o Options) clusterConfig(nodes int) cluster.Config {
	return cluster.Config{
		Ranks:          nodes,
		Latency:        o.Latency,
		BandwidthBytes: o.Bandwidth,
	}
}

func (o Options) coreOptions(mode core.Mode, eb float64, rates *core.Rates) core.Options {
	return core.Options{
		ErrorBound: eb,
		Mode:       mode,
		MTThreads:  o.MTThreads,
		MTSpeedup:  o.MTSpeedup,
		Rates:      rates,
	}
}

// fieldKind selects the RTM-like profile of per-rank collective inputs.
type fieldKind int

const (
	// sparseRTM models early reverse-time-migration snapshots: a narrow
	// wavefront shell over an exactly-zero background (the paper's
	// Simulation Setting 1).
	sparseRTM fieldKind = iota
	// smoothRTM models late snapshots: long-wavelength swells everywhere
	// plus the wavefront shell (Setting 2).
	smoothRTM
)

// collectiveField builds rank r's contribution to a collective: snapshot r
// of an RTM-like time series. Successive snapshots put the wavefront shell
// at different depths, so the non-constant regions of ring-reduce operand
// pairs rarely coincide — reproducing the pipeline profile the paper
// reports for RTM reductions (Table V: ≈0% pipeline ④).
func collectiveField(kind fieldKind, n, rank, nRanks int) []float32 {
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	// Shell width: ~40% of the domain for small clusters, shrinking toward
	// ~1.5/N for large ones so shells stay near-disjoint.
	w := int(0.40 * float64(n))
	if lim := 3 * n / (2 * nRanks); lim > 0 && w > lim {
		w = lim
	}
	if w < 64 {
		w = 64
	}
	if w > n {
		w = n
	}
	// Golden-ratio stagger spreads shells evenly for any rank count.
	frac := math.Mod(float64(rank)*0.6180339887498949, 1)
	start := int(frac * float64(n-w+1))
	if start > n-w {
		start = n - w
	}

	if kind == smoothRTM {
		// Smooth background common to all snapshots (locally constant at
		// the experiment bounds), individually scaled per rank.
		amp := 100 * (1 + 0.003*float64(rank%16))
		k1 := 2 * math.Pi / float64(n)
		for i := range out {
			out[i] = float32(amp * math.Sin(k1*float64(i)))
		}
	}
	carrier := 2 * math.Pi / 180
	for i := 0; i < w; i++ {
		t := float64(i)
		env := math.Sin(math.Pi * t / float64(w))
		out[start+i] += float32(1000 * env * math.Sin(carrier*t+float64(rank)))
	}
	return out
}

// calibrate measures single-thread component rates on representative rank
// fields: compression/decompression of rank 0's snapshot and homomorphic
// folding of the first few snapshots (the ring's operand profile).
func calibrate(kind fieldKind, n, nRanks int, eb float64) (*core.Rates, error) {
	base := collectiveField(kind, n, 0, nRanks)
	p := fzlight.Params{ErrorBound: eb}
	raw := 4 * n

	c0, err := fzlight.Compress(base, p)
	if err != nil {
		return nil, err
	}
	tCPR, err := bestOf(2, func() error { _, err := fzlight.Compress(base, p); return err })
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	tDPR, err := bestOf(2, func() error { return fzlight.DecompressInto(c0, out) })
	if err != nil {
		return nil, err
	}
	tCPT, err := bestOf(2, func() error {
		for i := range out {
			out[i] += base[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Fold a few snapshots homomorphically, as the ring does, isolating
	// the Add time from the compression of the folded operands.
	folds := 3
	if nRanks-1 < folds {
		folds = nRanks - 1
	}
	if folds < 1 {
		folds = 1
	}
	operands := make([][]byte, folds)
	for k := 1; k <= folds; k++ {
		operands[k-1], err = fzlight.Compress(collectiveField(kind, n, k, nRanks), p)
		if err != nil {
			return nil, err
		}
	}
	tHPR, err := bestOf(2, func() error {
		acc := c0
		for _, next := range operands {
			sum, _, err := hzdyn.Add(acc, next)
			if err != nil {
				return err
			}
			acc = sum
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	return &core.Rates{
		CPR: float64(raw) / tCPR.Seconds(),
		DPR: float64(raw) / tDPR.Seconds(),
		CPT: float64(raw) / tCPT.Seconds(),
		HPR: float64(raw) * float64(folds) / tHPR.Seconds(),
	}, nil
}

// collectiveOp distinguishes the two measured collectives.
type collectiveOp int

const (
	opReduceScatter collectiveOp = iota
	opAllreduce
)

// KernelRun is the outcome of one timed collective: the virtual-time
// result plus the run's telemetry delta (counters, spans and pipeline
// histograms attributable to the kept trial).
type KernelRun struct {
	*cluster.Result
	// Telemetry holds the growth of the process-global telemetry registry
	// over the kept (fastest) trial.
	Telemetry telemetry.Snapshot
}

// runKernel executes one (kernel, op) on `nodes` ranks, each contributing
// its own snapshot, and returns the virtual-time result with the per-run
// telemetry delta.
func runKernel(opt Options, op collectiveOp, kernel, nodes int, kind fieldKind, n int, eb float64, rates *core.Rates) (*KernelRun, error) {
	mode := core.SingleThread
	switch kernel {
	case KernelCCollMT, KernelHZMT:
		mode = core.MultiThread
	}
	c := core.New(opt.coreOptions(mode, eb, rates))

	body := func(r *cluster.Rank) error {
		var data []float32
		r.Quiesce(func() { data = collectiveField(kind, n, r.ID, nodes) })
		var err error
		switch {
		case op == opReduceScatter && kernel == KernelMPI:
			_, err = c.ReduceScatterPlain(r, data)
		case op == opReduceScatter && (kernel == KernelCCollMT || kernel == KernelCCollST):
			_, err = c.ReduceScatterCColl(r, data)
		case op == opReduceScatter:
			_, _, err = c.ReduceScatterHZ(r, data)
		case kernel == KernelMPI:
			_, err = c.AllreducePlain(r, data)
		case kernel == KernelCCollMT || kernel == KernelCCollST:
			_, err = c.AllreduceCColl(r, data)
		default:
			_, _, err = c.AllreduceHZ(r, data)
		}
		return err
	}

	var best *KernelRun
	for trial := 0; trial < opt.Trials; trial++ {
		before := telemetry.Capture()
		res, err := cluster.Run(opt.clusterConfig(nodes), body)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Time < best.Time {
			best = &KernelRun{Result: res, Telemetry: telemetry.Capture().Delta(before)}
		}
	}
	return best, nil
}

// collectiveBound derives the absolute error bound for a collective
// experiment from rank 0's snapshot, as the paper derives its default
// bound from the RTM data.
func collectiveBound(opt Options, kind fieldKind, n, nodes int) float64 {
	return metrics.AbsBound(opt.RelBound, collectiveField(kind, n, 0, nodes))
}

func runFig2(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	n := opt.MessageBytes / 4
	eb := collectiveBound(opt, sparseRTM, n, opt.Nodes)
	rates, err := calibrate(sparseRTM, n, opt.Nodes, eb)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C-Coll ring Allreduce on %d nodes, %s per rank, eb=%.3g\n", opt.Nodes, Bytes(opt.MessageBytes), eb)
	fmt.Fprintf(w, "paper reference — ST: 78.18/21.56/0.26, MT: 52.26/47.02/0.72\n\n")
	t := NewTable("Mode", "DPR+CPT+CPR", "MPI", "OTHER")
	for _, kernel := range []int{KernelCCollST, KernelCCollMT} {
		res, err := runKernel(opt, opAllreduce, kernel, opt.Nodes, sparseRTM, n, eb, rates)
		if err != nil {
			return err
		}
		fr := res.BreakdownFractions()
		doc := fr[cluster.CatCPR] + fr[cluster.CatDPR] + fr[cluster.CatCPT]
		t.Row(KernelName(kernel), Pct(doc), Pct(fr[cluster.CatMPI]), Pct(fr[cluster.CatOther]))
	}
	t.Fprint(w)
	return nil
}

// runVsCColl produces the Figure 7/8 comparison: hZCCL vs C-Coll on the
// two RTM-like profiles, single- and multi-thread, across message sizes.
func runVsCColl(w io.Writer, opt Options, op collectiveOp) error {
	opt = opt.WithDefaults()
	t := NewTable("Dataset", "Size", "C-Coll ST us", "hZCCL ST us", "ST speedup", "C-Coll MT us", "hZCCL MT us", "MT speedup")
	for _, ds := range []struct {
		name string
		kind fieldKind
	}{{"SimSet1", sparseRTM}, {"SimSet2", smoothRTM}} {
		for _, size := range opt.SweepBytes {
			n := size / 4
			eb := collectiveBound(opt, ds.kind, n, opt.Nodes)
			rates, err := calibrate(ds.kind, n, opt.Nodes, eb)
			if err != nil {
				return err
			}
			times := map[int]float64{}
			for _, kernel := range []int{KernelCCollST, KernelHZST, KernelCCollMT, KernelHZMT} {
				res, err := runKernel(opt, op, kernel, opt.Nodes, ds.kind, n, eb, rates)
				if err != nil {
					return err
				}
				times[kernel] = res.Time
			}
			t.Row(ds.name, Bytes(size),
				F(times[KernelCCollST]*1e6), F(times[KernelHZST]*1e6),
				F(times[KernelCCollST]/times[KernelHZST])+"x",
				F(times[KernelCCollMT]*1e6), F(times[KernelHZMT]*1e6),
				F(times[KernelCCollMT]/times[KernelHZMT])+"x")
		}
	}
	t.Fprint(w)
	return nil
}

func runFig7(w io.Writer, opt Options) error { return runVsCColl(w, opt, opReduceScatter) }
func runFig8(w io.Writer, opt Options) error { return runVsCColl(w, opt, opAllreduce) }

func fiveKernelHeader(xlabel string) *Table {
	return NewTable(xlabel, "MPI us", "C-Coll MT us", "hZCCL MT us", "C-Coll ST us", "hZCCL ST us",
		"MT spd C-Coll", "MT spd hZCCL", "ST spd C-Coll", "ST spd hZCCL")
}

func fiveKernelRow(t *Table, label string, times map[int]float64) {
	t.Row(label,
		F(times[KernelMPI]*1e6),
		F(times[KernelCCollMT]*1e6), F(times[KernelHZMT]*1e6),
		F(times[KernelCCollST]*1e6), F(times[KernelHZST]*1e6),
		F(times[KernelMPI]/times[KernelCCollMT])+"x",
		F(times[KernelMPI]/times[KernelHZMT])+"x",
		F(times[KernelMPI]/times[KernelCCollST])+"x",
		F(times[KernelMPI]/times[KernelHZST])+"x")
}

// runSizeSweep produces Figures 9/11: all five kernels across message
// sizes at a fixed node count, with speedups over the MPI kernel.
func runSizeSweep(w io.Writer, opt Options, op collectiveOp) error {
	opt = opt.WithDefaults()
	fmt.Fprintf(w, "%d nodes, RTM-like snapshots, REL bound %.0e, α=%v, effective β=%.2g GB/s\n\n",
		opt.Nodes, opt.RelBound, opt.Latency, opt.Bandwidth/1e9)
	t := fiveKernelHeader("Size")
	for _, size := range opt.SweepBytes {
		n := size / 4
		eb := collectiveBound(opt, sparseRTM, n, opt.Nodes)
		rates, err := calibrate(sparseRTM, n, opt.Nodes, eb)
		if err != nil {
			return err
		}
		times := map[int]float64{}
		for _, kernel := range Kernels {
			res, err := runKernel(opt, op, kernel, opt.Nodes, sparseRTM, n, eb, rates)
			if err != nil {
				return err
			}
			times[kernel] = res.Time
		}
		fiveKernelRow(t, Bytes(size), times)
	}
	t.Fprint(w)
	return nil
}

func runFig9(w io.Writer, opt Options) error  { return runSizeSweep(w, opt, opReduceScatter) }
func runFig11(w io.Writer, opt Options) error { return runSizeSweep(w, opt, opAllreduce) }

// runNodeSweep produces Figures 10/12: all five kernels across node counts
// at a fixed per-rank message size.
func runNodeSweep(w io.Writer, opt Options, op collectiveOp) error {
	opt = opt.WithDefaults()
	n := opt.MessageBytes / 4
	fmt.Fprintf(w, "%s per rank, RTM-like snapshots, REL bound %.0e, α=%v, effective β=%.2g GB/s\n\n",
		Bytes(opt.MessageBytes), opt.RelBound, opt.Latency, opt.Bandwidth/1e9)
	t := fiveKernelHeader("Nodes")
	for nodes := 2; nodes <= opt.MaxNodes; nodes *= 2 {
		eb := collectiveBound(opt, sparseRTM, n, nodes)
		rates, err := calibrate(sparseRTM, n, nodes, eb)
		if err != nil {
			return err
		}
		times := map[int]float64{}
		for _, kernel := range Kernels {
			res, err := runKernel(opt, op, kernel, nodes, sparseRTM, n, eb, rates)
			if err != nil {
				return err
			}
			times[kernel] = res.Time
		}
		fiveKernelRow(t, fmt.Sprint(nodes), times)
	}
	t.Fprint(w)
	return nil
}

func runFig10(w io.Writer, opt Options) error { return runNodeSweep(w, opt, opReduceScatter) }
func runFig12(w io.Writer, opt Options) error { return runNodeSweep(w, opt, opAllreduce) }
