// Package harness implements the experiment suite: one registered
// experiment per table and figure of the hZCCL paper's evaluation section,
// each printing the same rows or series the paper reports.
//
// Experiments are self-contained functions over Options so the CLI tools
// (cmd/hzccl-compressor, cmd/hzccl-collective, cmd/hzccl-stacking), the
// root-level benchmarks and EXPERIMENTS.md all drive the same code.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Options configures experiment scale. Zero values select defaults sized
// for a single modest machine; Quick shrinks them further for smoke runs.
type Options struct {
	// Len is the per-field element count for compressor experiments
	// (default 1<<21; Quick 1<<18).
	Len int
	// Nodes is the rank count for fixed-node collective experiments
	// (default 16, standing in for the paper's 64; Quick 8).
	Nodes int
	// MaxNodes caps the node-scaling sweeps (default 512 as in the paper;
	// Quick 64).
	MaxNodes int
	// MessageBytes is the per-rank message size for node-scaling sweeps
	// (default 4 MB, standing in for the paper's 646 MB; Quick 1 MB).
	MessageBytes int
	// SweepBytes are the per-rank message sizes for the message-size
	// sweeps (Figures 9 and 11).
	SweepBytes []int
	// RelBound is the relative error bound used to derive the absolute
	// bound for collective experiments (default 1e-4, the paper's
	// default bound).
	RelBound float64
	// Latency is the modeled per-message latency α (default 2 µs).
	Latency time.Duration
	// Bandwidth is the modeled *effective* per-link bandwidth in
	// bytes/second (default 0.4e9). The paper's fabric is 100 Gbps line
	// rate, but its own Figure 2 / Table VII breakdowns imply an
	// effective per-hop MPI bandwidth well under 1 GB/s for
	// large-message ring collectives (DOC at ~1 GB/s accounts for
	// 78%/52% of C-Coll runtime while C-Coll still beats MPI); using an
	// effective figure in that band reproduces the paper's
	// compute/communication balance on this machine.
	Bandwidth float64
	// MTThreads and MTSpeedup configure the multi-thread compression mode.
	// Defaults: 18 threads, 6× modeled speedup — the paper's own Fig. 2
	// multi-thread breakdown (DOC 52% vs MPI 47%) implies an effective
	// in-collective thread scaling well below the 18-thread ideal.
	MTThreads int
	MTSpeedup float64
	// Trials repeats each timed collective and keeps the fastest run
	// (default 1 — with calibrated rates the virtual time is already
	// deterministic; raise it when measuring on a loaded machine).
	Trials int
	// Quick shrinks all scales for fast smoke runs.
	Quick bool
	// OutDir receives image artifacts (Figure 13); empty disables writes.
	OutDir string
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	def := func(v *int, normal, quick int) {
		if *v == 0 {
			if o.Quick {
				*v = quick
			} else {
				*v = normal
			}
		}
	}
	def(&o.Len, 1<<21, 1<<18)
	def(&o.Nodes, 16, 8)
	def(&o.MaxNodes, 512, 64)
	def(&o.MessageBytes, 4<<20, 1<<20)
	if len(o.SweepBytes) == 0 {
		if o.Quick {
			o.SweepBytes = []int{128 << 10, 512 << 10, 2 << 20}
		} else {
			o.SweepBytes = []int{256 << 10, 1 << 20, 4 << 20, 16 << 20}
		}
	}
	if o.RelBound == 0 {
		o.RelBound = 1e-4
	}
	if o.Latency == 0 {
		o.Latency = 2 * time.Microsecond
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = 0.4e9
	}
	if o.MTThreads == 0 {
		o.MTThreads = 18
	}
	if o.MTSpeedup == 0 {
		o.MTSpeedup = 6
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	return o
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key, e.g. "table3" or "fig10".
	ID string
	// Title describes the paper element the experiment regenerates.
	Title string
	// Run prints the experiment's rows/series to w.
	Run func(w io.Writer, opt Options) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID (tables
// first, then figures, each numerically).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return idKey(out[i].ID) < idKey(out[j].ID) })
	return out
}

func idKey(id string) string {
	// "table3" → "0-03", "fig10" → "1-10"
	kind, num := "9", id
	switch {
	case strings.HasPrefix(id, "table"):
		kind, num = "0", id[len("table"):]
	case strings.HasPrefix(id, "fig"):
		kind, num = "1", id[len("fig"):]
	}
	return fmt.Sprintf("%s-%02s", kind, num)
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every registered experiment in order.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n===== %s: %s =====\n", e.ID, e.Title)
		if err := e.Run(w, opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends one row; cells beyond the header count are dropped.
func (t *Table) Row(cells ...string) {
	if len(cells) > len(t.headers) {
		cells = cells[:len(t.headers)]
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Fprint writes the table with padded columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// F formats a float compactly for table cells. Undefined values (NaN,
// e.g. a range-normalized metric of a constant field) print as "n/a" so
// they cannot be misread as a measured zero.
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// E formats a float in scientific notation (for NRMSE-style cells).
// Undefined values (NaN) print as "n/a".
func E(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2e", v)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Bytes formats a byte count with binary units.
func Bytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.0fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
