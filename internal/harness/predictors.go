package harness

import (
	"fmt"
	"io"

	"hzccl/internal/datasets"
	"hzccl/internal/fzlight"
	"hzccl/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "predictors",
		Title: "Predictor choice on dimensional data: 1D delta vs 2D/3D Lorenzo",
		Run:   runPredictors,
	})
}

// runPredictors quantifies the future-work extension: on data with real
// 2D/3D structure, the dimensional Lorenzo predictors buy substantial
// ratio over the paper's 1D delta at the same error bound — and the
// containers remain fully homomorphic.
func runPredictors(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	// Volume sized to ~opt.Len elements.
	depth := 16
	side := 1
	for side*side*depth < opt.Len {
		side *= 2
	}
	fmt.Fprintf(w, "volumes of %dx%dx%d (%s), REL bound 1e-3\n\n", depth, side, side, Bytes(4*depth*side*side))
	t := NewTable("Dataset", "1D ratio", "2D ratio", "3D ratio", "3D/1D gain", "1D GB/s", "3D GB/s")
	for _, name := range []string{"SimSet2", "NYX", "CESM-ATM"} {
		vol, err := datasets.Field3D(name, 0, depth, side, side)
		if err != nil {
			return err
		}
		raw := 4 * len(vol)
		eb := metrics.AbsBound(1e-3, vol)
		p := fzlight.Params{ErrorBound: eb}

		c1, err := fzlight.Compress(vol, p)
		if err != nil {
			return err
		}
		c2, err := fzlight.Compress2D(vol, depth*side, side, p)
		if err != nil {
			return err
		}
		c3, err := fzlight.Compress3D(vol, depth, side, side, p)
		if err != nil {
			return err
		}
		t1, err := bestOf(opt.Trials, func() error {
			_, err := fzlight.Compress(vol, p)
			return err
		})
		if err != nil {
			return err
		}
		t3, err := bestOf(opt.Trials, func() error {
			_, err := fzlight.Compress3D(vol, depth, side, side, p)
			return err
		})
		if err != nil {
			return err
		}
		r1 := metrics.Ratio(raw, len(c1))
		r3 := metrics.Ratio(raw, len(c3))
		t.Row(name,
			F(r1), F(metrics.Ratio(raw, len(c2))), F(r3),
			F(r3/r1)+"x",
			F(metrics.GBps(raw, t1.Seconds())), F(metrics.GBps(raw, t3.Seconds())))
	}
	t.Fprint(w)
	return nil
}
