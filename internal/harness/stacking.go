package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hzccl/internal/cluster"
	"hzccl/internal/core"
	"hzccl/internal/imagestack"
	"hzccl/internal/metrics"
)

func init() {
	register(Experiment{ID: "table7", Title: "Image stacking: speedups and runtime breakdown", Run: runTable7})
	register(Experiment{ID: "fig13", Title: "Image stacking: stacked image quality and PGM output", Run: runFig13})
}

// stackNoiseSigma is the per-pixel read noise of synthetic exposures. It
// sits below the default error bound (REL 1e-4 of the ~200-unit dynamic
// range) so dark-sky blocks quantize to constants, as in the paper's RTM
// and stacking workloads.
const stackNoiseSigma = 0.002

// stackDims derives image dimensions from the option message size.
func stackDims(opt Options) (int, int) {
	// roughly square images totalling MessageBytes
	side := 1
	for side*side*4 < opt.MessageBytes {
		side *= 2
	}
	return side, side / 1
}

// runStack performs the Allreduce-based stacking with one kernel and
// returns the cluster result plus rank 0's stacked image.
func runStack(opt Options, kernel int, scene *imagestack.Image, eb float64, rates *core.Rates) (*cluster.Result, *imagestack.Image, error) {
	mode := core.SingleThread
	if kernel == KernelCCollMT || kernel == KernelHZMT {
		mode = core.MultiThread
	}
	c := core.New(opt.coreOptions(mode, eb, rates))

	var out0 *imagestack.Image
	body := func(r *cluster.Rank) error {
		var exp *imagestack.Image
		r.Quiesce(func() { exp = imagestack.Exposure(scene, r.ID, stackNoiseSigma) })
		var stacked []float32
		var err error
		switch kernel {
		case KernelMPI:
			stacked, err = c.AllreducePlain(r, exp.Pix)
		case KernelCCollMT, KernelCCollST:
			stacked, err = c.AllreduceCColl(r, exp.Pix)
		default:
			stacked, _, err = c.AllreduceHZ(r, exp.Pix)
		}
		if err != nil {
			return err
		}
		if r.ID == 0 {
			out0 = &imagestack.Image{W: scene.W, H: scene.H, Pix: stacked}
		}
		return nil
	}
	var best *cluster.Result
	var img *imagestack.Image
	for trial := 0; trial < opt.Trials; trial++ {
		res, err := cluster.Run(opt.clusterConfig(opt.Nodes), body)
		if err != nil {
			return nil, nil, err
		}
		if best == nil || res.Time < best.Time {
			best = res
			img = out0
		}
	}
	return best, img, nil
}

// stackSetup builds the scene, exact stack, error bound and calibrated
// rates shared by table7 and fig13.
func stackSetup(opt Options) (*imagestack.Image, *imagestack.Image, float64, *core.Rates, error) {
	w, h := stackDims(opt)
	scene := imagestack.Scene(w, h, 42)
	exposures := make([]*imagestack.Image, opt.Nodes)
	for r := range exposures {
		exposures[r] = imagestack.Exposure(scene, r, stackNoiseSigma)
	}
	exact, err := imagestack.ExactStack(exposures)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	// The paper uses an absolute bound of 1e-4 on image data; we scale it
	// to our synthetic dynamic range via the relative bound option.
	eb := metrics.AbsBound(opt.RelBound, exposures[0].Pix)
	rates, err := calibrateOnSample(exposures[0].Pix, exposures[1%len(exposures)].Pix, eb)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	return scene, exact, eb, rates, nil
}

func runTable7(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	scene, exact, eb, rates, err := stackSetup(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stacking %d exposures of %dx%d (%s each), eb=%.3g\n", opt.Nodes, scene.W, scene.H, Bytes(4*scene.W*scene.H), eb)
	fmt.Fprintf(w, "paper reference speedups — hZCCL ST 1.81x / C-Coll ST 1.45x / hZCCL MT 5.02x / C-Coll MT 3.34x\n\n")

	var tMPI float64
	t := NewTable("Solution", "Speedup", "CPR+CPT", "MPI", "Others", "PSNR", "NRMSE")
	for _, kernel := range []int{KernelMPI, KernelHZST, KernelCCollST, KernelHZMT, KernelCCollMT} {
		res, img, err := runStack(opt, kernel, scene, eb, rates)
		if err != nil {
			return err
		}
		if kernel == KernelMPI {
			tMPI = res.Time
			continue
		}
		fr := res.BreakdownFractions()
		comp := fr[cluster.CatCPR] + fr[cluster.CatDPR] + fr[cluster.CatCPT] + fr[cluster.CatHPR]
		q := imagestack.Quality(exact, img)
		t.Row(KernelName(kernel), F(tMPI/res.Time)+"x", Pct(comp), Pct(fr[cluster.CatMPI]), Pct(fr[cluster.CatOther]),
			F(q.PSNR), E(q.NRMSE))
	}
	t.Fprint(w)
	return nil
}

func runFig13(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	scene, exact, eb, rates, err := stackSetup(opt)
	if err != nil {
		return err
	}
	_, hzImg, err := runStack(opt, KernelHZST, scene, eb, rates)
	if err != nil {
		return err
	}
	q := imagestack.Quality(exact, hzImg)
	fmt.Fprintf(w, "hZCCL-stacked %dx%d image vs exact stack: PSNR %.2f dB, NRMSE %.2e, max abs err %.3g (eb per exposure %.3g)\n",
		scene.W, scene.H, q.PSNR, q.NRMSE, q.MaxAbs, eb)
	if opt.OutDir == "" {
		fmt.Fprintln(w, "set -out <dir> to write exact.pgm and hzccl.pgm for visual comparison")
		return nil
	}
	if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
		return err
	}
	for name, img := range map[string]*imagestack.Image{"exact.pgm": exact, "hzccl.pgm": hzImg} {
		f, err := os.Create(filepath.Join(opt.OutDir, name))
		if err != nil {
			return err
		}
		if err := imagestack.WritePGM(f, img); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "wrote %s and %s\n", filepath.Join(opt.OutDir, "exact.pgm"), filepath.Join(opt.OutDir, "hzccl.pgm"))
	return nil
}
