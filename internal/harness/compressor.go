package harness

import (
	"fmt"
	"io"
	"time"

	"hzccl/internal/datasets"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
	"hzccl/internal/metrics"
	"hzccl/internal/ompszp"
	"hzccl/internal/stream"
)

// relBounds is the relative-error-bound sweep of Tables III–VI.
var relBounds = []float64{1e-1, 1e-2, 1e-3, 1e-4}

func init() {
	register(Experiment{ID: "table3", Title: "Compression quality (NRMSE/STD) and ratio: fZ-light vs ompSZp", Run: runTable3})
	register(Experiment{ID: "fig6", Title: "Compression/decompression throughput (GB/s): fZ-light vs ompSZp", Run: runFig6})
	register(Experiment{ID: "table4", Title: "Memory bandwidth efficiency vs STREAM peak", Run: runTable4})
	register(Experiment{ID: "table5", Title: "hZ-dynamic throughput and pipeline selection percentages", Run: runTable5})
	register(Experiment{ID: "table6", Title: "Overall reduce performance: hZ-dynamic vs fZ-light (DOC)", Run: runTable6})
}

// bestOf runs f trials times and returns the shortest duration.
func bestOf(trials int, f func() error) (time.Duration, error) {
	best := time.Duration(1 << 62)
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

func runTable3(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	t := NewTable("Dataset", "REL", "fZ Ratio", "fZ NRMSE", "fZ STD", "omp Ratio", "omp NRMSE", "omp STD")
	for _, name := range datasets.Names() {
		data, err := datasets.Field(name, 0, opt.Len)
		if err != nil {
			return err
		}
		raw := 4 * len(data)
		for _, rel := range relBounds {
			eb := metrics.AbsBound(rel, data)

			fc, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb})
			if err != nil {
				return fmt.Errorf("%s rel=%g: %w", name, rel, err)
			}
			fd, err := fzlight.Decompress(fc)
			if err != nil {
				return err
			}
			fs := metrics.Compare(data, fd)

			oc, err := ompszp.Compress(data, ompszp.Params{ErrorBound: eb})
			if err != nil {
				return err
			}
			od, err := ompszp.Decompress(oc)
			if err != nil {
				return err
			}
			os := metrics.Compare(data, od)

			t.Row(name, E(rel),
				F(metrics.Ratio(raw, len(fc))), E(fs.NRMSE), E(fs.ErrStd),
				F(metrics.Ratio(raw, len(oc))), E(os.NRMSE), E(os.ErrStd))
		}
	}
	t.Fprint(w)
	return nil
}

func runFig6(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	t := NewTable("Dataset", "REL", "fZ Compr GB/s", "fZ Decom GB/s", "omp Compr GB/s", "omp Decom GB/s",
		"Compr speedup", "Decom speedup")
	for _, name := range datasets.Names() {
		data, err := datasets.Field(name, 0, opt.Len)
		if err != nil {
			return err
		}
		raw := 4 * len(data)
		out := make([]float32, len(data))
		for _, rel := range relBounds {
			eb := metrics.AbsBound(rel, data)
			fp := fzlight.Params{ErrorBound: eb}
			fc, err := fzlight.Compress(data, fp)
			if err != nil {
				return err
			}
			tFC, err := bestOf(opt.Trials, func() error { _, err := fzlight.Compress(data, fp); return err })
			if err != nil {
				return err
			}
			tFD, err := bestOf(opt.Trials, func() error { return fzlight.DecompressInto(fc, out) })
			if err != nil {
				return err
			}

			op := ompszp.Params{ErrorBound: eb}
			oc, err := ompszp.Compress(data, op)
			if err != nil {
				return err
			}
			oh, err := ompszp.ParseHeader(oc)
			if err != nil {
				return err
			}
			tOC, err := bestOf(opt.Trials, func() error { _, err := ompszp.Compress(data, op); return err })
			if err != nil {
				return err
			}
			tOD, err := bestOf(opt.Trials, func() error { _, err := ompszp.DecompressThreads(oc, oh, 1); return err })
			if err != nil {
				return err
			}

			fcGBs := metrics.GBps(raw, tFC.Seconds())
			fdGBs := metrics.GBps(raw, tFD.Seconds())
			ocGBs := metrics.GBps(raw, tOC.Seconds())
			odGBs := metrics.GBps(raw, tOD.Seconds())
			t.Row(name, E(rel), F(fcGBs), F(fdGBs), F(ocGBs), F(odGBs),
				F(fcGBs/ocGBs)+"x", F(fdGBs/odGBs)+"x")
		}
	}
	t.Fprint(w)
	return nil
}

func runTable4(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	streamN := 1 << 23
	iters := 5
	if opt.Quick {
		streamN = 1 << 21
		iters = 3
	}
	peakRes := stream.Run(streamN, iters)
	peak := peakRes.Best()
	fmt.Fprintf(w, "STREAM (n=%d): Copy %.2f  Scale %.2f  Add %.2f  Triad %.2f  => peak %.2f GB/s\n\n",
		streamN, peakRes.Copy, peakRes.Scale, peakRes.Add, peakRes.Triad, peak)

	t := NewTable("Dataset", "REL", "omp Compr", "omp Decom", "fZ Compr", "fZ Decom")
	for _, name := range []string{"SimSet2", "NYX"} {
		data, err := datasets.Field(name, 0, opt.Len)
		if err != nil {
			return err
		}
		raw := 4 * len(data)
		out := make([]float32, len(data))
		for _, rel := range []float64{1e-3, 1e-4} {
			eb := metrics.AbsBound(rel, data)
			fp := fzlight.Params{ErrorBound: eb}
			fc, _ := fzlight.Compress(data, fp)
			tFC, err := bestOf(opt.Trials, func() error { _, err := fzlight.Compress(data, fp); return err })
			if err != nil {
				return err
			}
			tFD, err := bestOf(opt.Trials, func() error { return fzlight.DecompressInto(fc, out) })
			if err != nil {
				return err
			}
			op := ompszp.Params{ErrorBound: eb}
			oc, _ := ompszp.Compress(data, op)
			oh, _ := ompszp.ParseHeader(oc)
			tOC, err := bestOf(opt.Trials, func() error { _, err := ompszp.Compress(data, op); return err })
			if err != nil {
				return err
			}
			tOD, err := bestOf(opt.Trials, func() error { _, err := ompszp.DecompressThreads(oc, oh, 1); return err })
			if err != nil {
				return err
			}
			eff := func(d time.Duration) string {
				return Pct(metrics.GBps(raw, d.Seconds()) / peak)
			}
			t.Row(name, E(rel), eff(tOC), eff(tOD), eff(tFC), eff(tFD))
		}
	}
	t.Fprint(w)
	return nil
}

func runTable5(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	t := NewTable("Dataset", "Speedup", "hZ GB/s", "Pipeline1", "Pipeline2", "Pipeline3", "Pipeline4")
	for _, name := range datasets.Names() {
		a, b, err := datasets.Pair(name, opt.Len)
		if err != nil {
			return err
		}
		eb := metrics.AbsBound(1e-3, a)
		if eb2 := metrics.AbsBound(1e-3, b); eb2 > eb {
			eb = eb2
		}
		p := fzlight.Params{ErrorBound: eb}
		ca, err := fzlight.Compress(a, p)
		if err != nil {
			return err
		}
		cb, err := fzlight.Compress(b, p)
		if err != nil {
			return err
		}
		raw := 4 * len(a)

		var stats hzdyn.Stats
		tHZ, err := bestOf(opt.Trials, func() error {
			_, st, err := hzdyn.Add(ca, cb)
			stats = st
			return err
		})
		if err != nil {
			return err
		}
		tDOC, err := bestOf(opt.Trials, func() error { return docReduce(ca, cb, p) })
		if err != nil {
			return err
		}

		t.Row(name,
			F(tDOC.Seconds()/tHZ.Seconds()),
			F(metrics.GBps(raw, tHZ.Seconds())),
			Pct(stats.Fraction(hzdyn.PipelineBothConstant)),
			Pct(stats.Fraction(hzdyn.PipelineLeftConstant)),
			Pct(stats.Fraction(hzdyn.PipelineRightConstant)),
			Pct(stats.Fraction(hzdyn.PipelineBothEncoded)))
	}
	t.Fprint(w)
	return nil
}

// docReduce is the traditional DOC workflow the paper compares hZ-dynamic
// against: decompress both operands, add in the raw domain, recompress.
func docReduce(ca, cb []byte, p fzlight.Params) error {
	da, err := fzlight.Decompress(ca)
	if err != nil {
		return err
	}
	db, err := fzlight.Decompress(cb)
	if err != nil {
		return err
	}
	for i := range da {
		da[i] += db[i]
	}
	_, err = fzlight.Compress(da, p)
	return err
}

func runTable6(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	t := NewTable("Dataset", "REL", "hZ GB/s", "hZ Ratio", "hZ NRMSE", "DOC GB/s", "DOC Ratio", "DOC NRMSE", "Speedup")
	for _, name := range datasets.Names() {
		a, b, err := datasets.Pair(name, opt.Len)
		if err != nil {
			return err
		}
		raw := 4 * len(a)
		exact := make([]float64, len(a))
		for i := range a {
			exact[i] = float64(a[i]) + float64(b[i])
		}
		exact32 := make([]float32, len(a))
		for i := range exact {
			exact32[i] = float32(exact[i])
		}
		for _, rel := range relBounds {
			eb := metrics.AbsBound(rel, a)
			if eb2 := metrics.AbsBound(rel, b); eb2 > eb {
				eb = eb2
			}
			p := fzlight.Params{ErrorBound: eb}
			ca, err := fzlight.Compress(a, p)
			if err != nil {
				return err
			}
			cb, err := fzlight.Compress(b, p)
			if err != nil {
				return err
			}

			// hZ-dynamic: direct homomorphic reduce.
			var hsum []byte
			tHZ, err := bestOf(opt.Trials, func() error {
				s, _, err := hzdyn.Add(ca, cb)
				hsum = s
				return err
			})
			if err != nil {
				return err
			}
			hd, err := fzlight.Decompress(hsum)
			if err != nil {
				return err
			}
			hstats := metrics.Compare(exact32, hd)

			// DOC: decompress both, add, recompress.
			var dsum []byte
			tDOC, err := bestOf(opt.Trials, func() error {
				da, err := fzlight.Decompress(ca)
				if err != nil {
					return err
				}
				db, err := fzlight.Decompress(cb)
				if err != nil {
					return err
				}
				for i := range da {
					da[i] += db[i]
				}
				dsum, err = fzlight.Compress(da, p)
				return err
			})
			if err != nil {
				return err
			}
			dd, err := fzlight.Decompress(dsum)
			if err != nil {
				return err
			}
			dstats := metrics.Compare(exact32, dd)

			t.Row(name, E(rel),
				F(metrics.GBps(raw, tHZ.Seconds())), F(metrics.Ratio(raw, len(hsum))), E(hstats.NRMSE),
				F(metrics.GBps(raw, tDOC.Seconds())), F(metrics.Ratio(raw, len(dsum))), E(dstats.NRMSE),
				F(tDOC.Seconds()/tHZ.Seconds())+"x")
		}
	}
	t.Fprint(w)
	return nil
}
