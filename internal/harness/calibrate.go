package harness

import (
	"hzccl/internal/core"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// calibrateOnSample measures single-thread component rates on a concrete
// workload pair: compression, decompression and raw summation on a, and
// homomorphic reduction of C(a) with C(b). Used by experiments whose
// operand profile is defined by application data (image stacking) rather
// than generated snapshots.
func calibrateOnSample(a, b []float32, eb float64) (*core.Rates, error) {
	p := fzlight.Params{ErrorBound: eb}
	raw := 4 * len(a)

	ca, err := fzlight.Compress(a, p)
	if err != nil {
		return nil, err
	}
	cb, err := fzlight.Compress(b, p)
	if err != nil {
		return nil, err
	}
	tCPR, err := bestOf(2, func() error { _, err := fzlight.Compress(a, p); return err })
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(a))
	tDPR, err := bestOf(2, func() error { return fzlight.DecompressInto(ca, out) })
	if err != nil {
		return nil, err
	}
	tCPT, err := bestOf(2, func() error {
		for i := range out {
			out[i] += a[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tHPR, err := bestOf(2, func() error { _, _, err := hzdyn.Add(ca, cb); return err })
	if err != nil {
		return nil, err
	}
	return &core.Rates{
		CPR: float64(raw) / tCPR.Seconds(),
		DPR: float64(raw) / tDPR.Seconds(),
		CPT: float64(raw) / tCPT.Seconds(),
		HPR: float64(raw) / tHPR.Seconds(),
	}, nil
}
