package harness

import (
	"fmt"
	"io"

	"hzccl/internal/datasets"
	"hzccl/internal/fzlight"
	"hzccl/internal/metrics"
	"hzccl/internal/szx"
)

func init() {
	register(Experiment{
		ID:    "szx-quality",
		Title: "§III-B1 compressor choice: SZx constant-block vs fZ-light quantization",
		Run:   runSZxQuality,
	})
}

// runSZxQuality quantifies the argument of paper §III-B1: SZx is fast but
// its constant-block design degrades reconstruction quality. At equal
// error bounds we compare ratio, NRMSE, throughput and — the artifact the
// NRMSE alone hides — the lag-1 error autocorrelation: quantization noise
// decorrelates, staircase artifacts do not.
func runSZxQuality(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	fmt.Fprintln(w, "equal absolute bounds; ErrAC = lag-1 error autocorrelation (staircase indicator)")
	fmt.Fprintln(w)
	t := NewTable("Dataset", "REL",
		"SZx Ratio", "SZx NRMSE", "SZx ErrAC", "SZx Compr GB/s",
		"fZ Ratio", "fZ NRMSE", "fZ ErrAC", "fZ Compr GB/s")
	for _, name := range datasets.Names() {
		data, err := datasets.Field(name, 0, opt.Len)
		if err != nil {
			return err
		}
		raw := 4 * len(data)
		for _, rel := range []float64{1e-2, 1e-3} {
			eb := metrics.AbsBound(rel, data)

			sc, err := szx.Compress(data, szx.Params{ErrorBound: eb})
			if err != nil {
				return err
			}
			sd, err := szx.Decompress(sc)
			if err != nil {
				return err
			}
			tS, err := bestOf(opt.Trials, func() error {
				_, err := szx.Compress(data, szx.Params{ErrorBound: eb})
				return err
			})
			if err != nil {
				return err
			}
			ss := metrics.Compare(data, sd)

			fc, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb})
			if err != nil {
				return err
			}
			fd, err := fzlight.Decompress(fc)
			if err != nil {
				return err
			}
			tF, err := bestOf(opt.Trials, func() error {
				_, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb})
				return err
			})
			if err != nil {
				return err
			}
			fs := metrics.Compare(data, fd)

			t.Row(name, E(rel),
				F(metrics.Ratio(raw, len(sc))), E(ss.NRMSE), F(metrics.ErrAutocorr(data, sd)),
				F(metrics.GBps(raw, tS.Seconds())),
				F(metrics.Ratio(raw, len(fc))), E(fs.NRMSE), F(metrics.ErrAutocorr(data, fd)),
				F(metrics.GBps(raw, tF.Seconds())))
		}
	}
	t.Fprint(w)
	return nil
}
