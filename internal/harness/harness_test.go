package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Len == 0 || o.Nodes == 0 || o.MaxNodes == 0 || o.MessageBytes == 0 ||
		len(o.SweepBytes) == 0 || o.RelBound == 0 || o.Latency == 0 ||
		o.Bandwidth == 0 || o.MTThreads == 0 || o.MTSpeedup == 0 || o.Trials == 0 {
		t.Fatalf("unfilled defaults: %+v", o)
	}
	q := Options{Quick: true}.WithDefaults()
	if q.Len >= o.Len || q.Nodes >= o.Nodes || q.MaxNodes >= o.MaxNodes {
		t.Fatalf("quick options not smaller: %+v vs %+v", q, o)
	}
	// explicit values survive
	e := Options{Nodes: 3, Latency: time.Second}.WithDefaults()
	if e.Nodes != 3 || e.Latency != time.Second {
		t.Fatalf("explicit values overwritten: %+v", e)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table3", "table4", "table5", "table6", "table7",
		"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"szx-quality", "predictors"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestExperimentsSorted(t *testing.T) {
	exps := Experiments()
	var prev string
	for _, e := range exps {
		k := idKey(e.ID)
		if k < prev {
			t.Fatalf("registry not sorted: %s after %s", e.ID, prev)
		}
		prev = k
	}
	// tables come before figures
	if exps[0].ID[:5] != "table" {
		t.Fatalf("first experiment %s, want a table", exps[0].ID)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("A", "Blah")
	tb.Row("x", "1")
	tb.Row("longer", "2", "dropped-cell")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Blah") {
		t.Fatalf("header: %q", lines[0])
	}
	if strings.Contains(out, "dropped-cell") {
		t.Fatal("extra cell not dropped")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[float64]string{0: "0", 12345: "12345", 42.3: "42.3", 3.14159: "3.14", 0.0001: "1.00e-04"}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%g) = %q want %q", in, got, want)
		}
	}
	if Pct(0.5) != "50.00%" {
		t.Errorf("Pct: %s", Pct(0.5))
	}
	if Bytes(2<<30) != "2GB" || Bytes(3<<20) != "3MB" || Bytes(5<<10) != "5KB" || Bytes(100) != "100B" {
		t.Error("Bytes formatting wrong")
	}
}

func TestKernelNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kernels {
		name := KernelName(k)
		if name == "" || seen[name] {
			t.Fatalf("bad kernel name %q", name)
		}
		seen[name] = true
	}
	if KernelName(42) != "kernel42" {
		t.Fatal("unknown kernel name")
	}
}

func TestCollectiveFieldProfiles(t *testing.T) {
	n := 1 << 16
	a := collectiveField(sparseRTM, n, 0, 16)
	zeros := 0
	for _, v := range a {
		if v == 0 {
			zeros++
		}
	}
	if float64(zeros)/float64(n) < 0.5 {
		t.Fatalf("sparse snapshot only %.1f%% zeros", 100*float64(zeros)/float64(n))
	}
	b := collectiveField(sparseRTM, n, 1, 16)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("snapshots identical across ranks")
	}
	s := collectiveField(smoothRTM, n, 0, 16)
	zeros = 0
	for _, v := range s {
		if v == 0 {
			zeros++
		}
	}
	if zeros > n/2 {
		t.Fatal("smooth snapshot unexpectedly sparse")
	}
	if len(collectiveField(sparseRTM, 0, 0, 4)) != 0 {
		t.Fatal("zero-length field")
	}
	// tiny fields must not panic
	_ = collectiveField(sparseRTM, 10, 3, 512)
}

func TestCalibrateProducesRates(t *testing.T) {
	r, err := calibrate(sparseRTM, 1<<14, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{"CPR": r.CPR, "DPR": r.DPR, "CPT": r.CPT, "HPR": r.HPR} {
		if !(v > 0) {
			t.Errorf("%s rate %g", name, v)
		}
	}
}

// Smoke-run every experiment at miniature scale: each must complete and
// print at least a header row.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs take a few seconds")
	}
	opt := Options{
		Quick:        true,
		Len:          1 << 14,
		Nodes:        4,
		MaxNodes:     8,
		MessageBytes: 1 << 16,
		SweepBytes:   []int{1 << 15, 1 << 16},
		Trials:       1,
		OutDir:       t.TempDir(),
	}
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := e.Run(&buf, opt); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
	}
	// fig13 must have written the PGMs
	for _, name := range []string{"exact.pgm", "hzccl.pgm"} {
		if _, err := os.Stat(filepath.Join(opt.OutDir, name)); err != nil {
			t.Errorf("fig13 output %s missing: %v", name, err)
		}
	}
}
