// Package floatbytes converts between float32 slices and little-endian
// byte slices. The cluster substrate moves opaque []byte messages, so the
// plain (no-compression) collectives serialize through these helpers.
package floatbytes

import (
	"encoding/binary"
	"math"
)

// FromFloat32 encodes src into dst (which must be at least 4*len(src)
// bytes) and returns the number of bytes written.
func FromFloat32(dst []byte, src []float32) int {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
	return 4 * len(src)
}

// ToFloat32 decodes src (little-endian float32s) into dst (which must hold
// at least len(src)/4 elements) and returns the number of values decoded.
func ToFloat32(dst []float32, src []byte) int {
	n := len(src) / 4
	for i := 0; i < n; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return n
}

// Bytes allocates and returns the encoding of src.
func Bytes(src []float32) []byte {
	out := make([]byte, 4*len(src))
	FromFloat32(out, src)
	return out
}

// Floats allocates and returns the decoding of src. len(src) must be a
// multiple of 4; trailing bytes are ignored.
func Floats(src []byte) []float32 {
	out := make([]float32, len(src)/4)
	ToFloat32(out, src)
	return out
}
