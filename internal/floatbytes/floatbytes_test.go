package floatbytes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	vals := []float32{0, 1, -1, 3.14, -2.5e-7, 1e20, float32(math.Inf(1)), float32(math.NaN())}
	buf := Bytes(vals)
	if len(buf) != 4*len(vals) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), 4*len(vals))
	}
	got := Floats(buf)
	for i := range vals {
		a, b := math.Float32bits(vals[i]), math.Float32bits(got[i])
		if a != b {
			t.Fatalf("bit mismatch at %d: %x vs %x", i, a, b)
		}
	}
}

func TestInPlaceVariants(t *testing.T) {
	vals := []float32{1, 2, 3}
	buf := make([]byte, 12)
	if n := FromFloat32(buf, vals); n != 12 {
		t.Fatalf("wrote %d", n)
	}
	out := make([]float32, 3)
	if n := ToFloat32(out, buf); n != 3 {
		t.Fatalf("decoded %d", n)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatal("mismatch")
		}
	}
}

func TestTrailingBytesIgnored(t *testing.T) {
	buf := append(Bytes([]float32{7}), 0xAA, 0xBB)
	got := Floats(buf)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestEmpty(t *testing.T) {
	if len(Bytes(nil)) != 0 || len(Floats(nil)) != 0 {
		t.Fatal("empty round trip failed")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		got := Floats(Bytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float32bits(got[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
