package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hzccl/internal/telemetry"
)

// startServer boots a server on an ephemeral port and tears it down with
// the test.
func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// get fetches one endpoint and returns the body, failing the test on any
// transport error or non-200 status.
func get(t *testing.T, s *Server, path string) (string, http.Header) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), resp.Header
}

func TestHealthz(t *testing.T) {
	s := startServer(t, Options{Rank: 2, World: 4, Transport: "tcp"})
	body, hdr := get(t, s, "/healthz")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("healthz content-type = %q", ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Rank != 2 || h.World != 4 || h.Transport != "tcp" {
		t.Fatalf("healthz = %+v", h)
	}
	if !h.TelemetryEnabled {
		t.Fatal("healthz reports telemetry disabled in a default process")
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", h.UptimeSeconds)
	}
}

func TestMetricsPrometheusAndJSON(t *testing.T) {
	telemetry.C("obs.test.requests").Add(7)
	s := startServer(t, Options{})

	prom, hdr := get(t, s, "/metrics")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type = %q, want the Prometheus text exposition type", ct)
	}
	if !strings.Contains(prom, "# TYPE obs_test_requests counter") ||
		!strings.Contains(prom, "obs_test_requests 7") {
		t.Fatalf("/metrics missing the test counter:\n%s", prom)
	}

	js, _ := get(t, s, "/metrics?format=json")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(js), &snap); err != nil {
		t.Fatalf("/metrics?format=json is not a snapshot: %v", err)
	}
	if snap.Counters["obs.test.requests"] < 7 {
		t.Fatalf("JSON snapshot counter = %d, want >= 7", snap.Counters["obs.test.requests"])
	}
}

func TestExpvarIncludesTelemetry(t *testing.T) {
	s := startServer(t, Options{})
	body, _ := get(t, s, "/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	raw, ok := vars["hzccl"]
	if !ok {
		t.Fatal("/debug/vars does not publish the telemetry snapshot under \"hzccl\"")
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("published snapshot does not decode: %v", err)
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	telemetry.Flight().Record(3, telemetry.FlightNack, 1, 3, 9, 1)
	s := startServer(t, Options{})

	body, hdr := get(t, s, "/flightrecorder")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/flightrecorder content-type = %q", ct)
	}
	var dump struct {
		Events []struct {
			Rank int    `json:"rank"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/flightrecorder is not JSON: %v\n%s", err, body)
	}
	found := false
	for _, ev := range dump.Events {
		if ev.Rank == 3 && ev.Kind == "nack" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/flightrecorder dump does not contain the recorded nack: %s", body)
	}

	text, _ := get(t, s, "/flightrecorder?format=text")
	if !strings.Contains(text, "flight recorder:") || !strings.Contains(text, "nack") {
		t.Fatalf("/flightrecorder?format=text missing dump header or event:\n%s", text)
	}
}

func TestTraceEndpoint(t *testing.T) {
	noTrace := startServer(t, Options{})
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + noTrace.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without a source: status %d, want 404", resp.StatusCode)
	}

	withTrace := startServer(t, Options{Trace: func(w io.Writer) error {
		_, err := fmt.Fprint(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}})
	body, _ := get(t, withTrace, "/trace")
	var ct struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("/trace is not trace-event JSON: %v", err)
	}
}

func TestJobsEndpoint(t *testing.T) {
	noJobs := startServer(t, Options{})
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + noJobs.Addr() + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/jobs without a source: status %d, want 404", resp.StatusCode)
	}

	type job struct {
		ID    uint32 `json:"id"`
		State string `json:"state"`
	}
	withJobs := startServer(t, Options{Jobs: func() any {
		return []job{{ID: 1, State: "done"}, {ID: 2, State: "running"}}
	}})
	body, hdr := get(t, withJobs, "/jobs")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/jobs content-type = %q", ct)
	}
	var got []job
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/jobs is not a JSON array: %v\n%s", err, body)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].State != "running" {
		t.Fatalf("/jobs = %+v", got)
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := startServer(t, Options{})
	if body, _ := get(t, s, "/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
	get(t, s, "/debug/pprof/cmdline")
	// The CPU profile itself (seconds=1) is exercised by
	// scripts/tcp_smoke.sh against a live rank; here the cheap endpoints
	// prove the handlers are wired on the private mux.
	if body, _ := get(t, s, "/debug/pprof/symbol"); body == "" {
		t.Fatal("/debug/pprof/symbol returned nothing")
	}
}

func TestServerCloseReleasesPort(t *testing.T) {
	s := startServer(t, Options{})
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
