// Package obs serves live introspection over HTTP: Prometheus metrics,
// expvar, pprof, a health probe, the flight recorder, and the current
// execution trace. A CLI opts in with -obs-listen; nothing is served (and
// nothing is registered on the global http mux) otherwise.
//
// Endpoints:
//
//	/healthz                 liveness + identity (rank, world, transport,
//	                         uptime, degradation and flight-event counts)
//	/metrics                 telemetry snapshot, Prometheus text format
//	                         (?format=json for the JSON snapshot)
//	/debug/vars              expvar JSON including the live telemetry
//	                         snapshot under "hzccl"
//	/debug/pprof/*           the standard Go profiling endpoints
//	/flightrecorder          the flight recorder's retained events, JSON
//	                         (?format=text for the dump format used on
//	                         collective failure)
//	/trace                   the current Chrome trace, when the process
//	                         registered a trace source
//	/jobs                    the job registry, when the process registered
//	                         a jobs source (hzccl-serve does)
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"hzccl/internal/telemetry"
)

// Options identifies the serving process and optionally connects a trace
// source.
type Options struct {
	// Rank and World identify this process on a multi-process transport;
	// leave Rank -1 (and World the rank count) for in-process runs.
	Rank  int
	World int
	// Transport names the fabric ("tcp", "inproc").
	Transport string
	// Trace, when non-nil, renders the current execution trace (Chrome
	// trace-event JSON) for GET /trace.
	Trace func(io.Writer) error
	// Jobs, when non-nil, snapshots the process's job registry for GET
	// /jobs (served as a JSON array). hzccl-serve wires its daemon's
	// registry here; processes without one 404.
	Jobs func() any
}

// Server is one live introspection endpoint bound to a listener.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	opts  Options
	start time.Time
}

// expvarOnce guards telemetry.PublishExpvar, which panics on a second
// registration (an expvar rule). Tests start many servers per process.
var expvarOnce sync.Once

// Start listens on addr (host:port; an empty or ":0" port picks an
// ephemeral one) and serves the introspection endpoints until Close. The
// handlers live on a private mux, so nothing leaks into the process-global
// http.DefaultServeMux.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	expvarOnce.Do(func() { telemetry.PublishExpvar("hzccl") })
	s := &Server{ln: ln, opts: opts, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/flightrecorder", s.handleFlight)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"`
	Rank          int     `json:"rank"`
	World         int     `json:"world"`
	Transport     string  `json:"transport"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Degradations is the process-cumulative backend-downgrade count; a
	// non-zero value on a healthy fabric is worth a look.
	Degradations int64 `json:"degradations"`
	// FlightEvents is the number of events the flight recorder retains
	// right now.
	FlightEvents int `json:"flight_events"`
	// TelemetryEnabled reports whether the metric/flight sinks are live.
	TelemetryEnabled bool `json:"telemetry_enabled"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:           "ok",
		Rank:             s.opts.Rank,
		World:            s.opts.World,
		Transport:        s.opts.Transport,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Degradations:     telemetry.C("collective.degradations").Value(),
		FlightEvents:     int(telemetry.Flight().Len()),
		TelemetryEnabled: telemetry.Enabled(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h) //nolint:errcheck // best-effort response
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := telemetry.Capture()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w) //nolint:errcheck
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := telemetry.Flight()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.WriteText(w) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", "application/json")
	f.WriteJSON(w) //nolint:errcheck
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.opts.Jobs == nil {
		http.Error(w, "no jobs source registered (only hzccl-serve has a job registry)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.opts.Jobs()) //nolint:errcheck // best-effort response
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Trace == nil {
		http.Error(w, "no trace source registered (run with tracing enabled)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.opts.Trace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
