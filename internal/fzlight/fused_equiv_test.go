package fzlight

import (
	"bytes"
	"math/rand"
	"testing"

	"hzccl/internal/datasets"
	"hzccl/internal/metrics"
)

// encodeWidthBlock builds an encoded 32-element block whose code length is
// exactly c (0 forces all-zero deltas), returning the encoded bytes.
func encodeWidthBlock(t *testing.T, rng *rand.Rand, c int) []byte {
	t.Helper()
	var p [32]int32
	if c > 0 {
		mask := uint32(1)<<uint(c) - 1
		for i := range p {
			m := rng.Uint32() & mask
			if rng.Intn(2) == 1 {
				p[i] = -int32(m)
			} else {
				p[i] = int32(m)
			}
		}
		// Pin one element to the full width so c is tight.
		p[rng.Intn(32)] = int32(uint32(1) << uint(c-1))
	}
	scratch := make([]uint32, 32)
	dst := make([]byte, 1+4+32*4+8)
	n := EncodeBlock(dst, p[:], scratch)
	return dst[:n]
}

// legacySum is the reference reduction: decode both blocks, add in int64,
// re-encode. It is the semantics every fused kernel must reproduce
// byte-for-byte.
func legacySum(t *testing.T, sa, sb []byte) (out []byte, overflow bool) {
	t.Helper()
	var pa, pb [32]int32
	scratch := make([]uint32, 32)
	if _, err := DecodeBlock(sa, pa[:], scratch); err != nil {
		t.Fatalf("reference decode a: %v", err)
	}
	if _, err := DecodeBlock(sb, pb[:], scratch); err != nil {
		t.Fatalf("reference decode b: %v", err)
	}
	for i := range pa {
		s := int64(pa[i]) + int64(pb[i])
		if s > 1<<31-1 || s < -(1<<31) {
			return nil, true
		}
		pa[i] = int32(s)
	}
	dst := make([]byte, 1+4+32*4+8)
	n := EncodeBlock(dst, pa[:], scratch)
	return dst[:n], false
}

func checkFusedPair(t *testing.T, sa, sb []byte, ctx string) {
	t.Helper()
	want, wantOverflow := legacySum(t, sa, sb)
	var sc SumScratch32
	dst := make([]byte, len(sa)+len(sb)+16)
	wrote, usedA, usedB, overflow, err := SumBlocks32(dst, sa, sb, &sc)
	if err != nil {
		t.Fatalf("%s: SumBlocks32: %v", ctx, err)
	}
	if overflow != wantOverflow {
		t.Fatalf("%s: overflow %v, want %v", ctx, overflow, wantOverflow)
	}
	if wantOverflow {
		return
	}
	if usedA != len(sa) || usedB != len(sb) {
		t.Fatalf("%s: consumed %d/%d bytes, want %d/%d", ctx, usedA, usedB, len(sa), len(sb))
	}
	if wrote != len(want) || !bytes.Equal(dst[:wrote], want) {
		t.Fatalf("%s: fused output differs from legacy\n got % x\nwant % x", ctx, dst[:wrote], want)
	}
	// Exactly-sized dst must produce the same bytes through the bounce
	// paths without writing out of bounds.
	exact := make([]byte, len(want))
	wrote, _, _, _, err = SumBlocks32(exact, sa, sb, &sc)
	if err != nil {
		t.Fatalf("%s: exact-dst SumBlocks32: %v", ctx, err)
	}
	if wrote != len(want) || !bytes.Equal(exact, want) {
		t.Fatalf("%s: exact-dst output differs from legacy", ctx)
	}
}

// TestSumBlocks32WidthSweep pins the fused pipeline-④ kernels (SWAR pair
// kernels, scalar word-wise kernels, wide checked fallback) against the
// decode-add-encode reference for every operand width pair 0..32.
func TestSumBlocks32WidthSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for ca := 0; ca <= 32; ca++ {
		for cb := 0; cb <= 32; cb++ {
			for trial := 0; trial < 4; trial++ {
				sa := encodeWidthBlock(t, rng, ca)
				sb := encodeWidthBlock(t, rng, cb)
				checkFusedPair(t, sa, sb, "width sweep")
			}
		}
	}
}

// TestSumBlocks32Datasets walks every block pair of the five paper
// datasets' compressed Table V operands through the fused kernel and the
// legacy reference, requiring byte-identical output. This is the
// conformance anchor for the fused bitplane pipeline: the exact streams
// the benchmarks reduce are re-reduced block by block.
func TestSumBlocks32Datasets(t *testing.T) {
	const n = 1 << 14
	for _, name := range datasets.Names() {
		va, vb, err := datasets.Pair(name, n)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{ErrorBound: metrics.AbsBound(1e-3, va)}
		ca, err := Compress(va, p)
		if err != nil {
			t.Fatalf("%s: compress a: %v", name, err)
		}
		cb, err := Compress(vb, p)
		if err != nil {
			t.Fatalf("%s: compress b: %v", name, err)
		}
		ha, err := ParseHeaderLite(ca)
		if err != nil {
			t.Fatal(err)
		}
		B := ha.BlockSize
		if B != 32 {
			t.Fatalf("%s: block size %d, want 32", name, B)
		}
		// Single chunk: payload is outlier + block sequence.
		oa := ha.PayloadStart() + 4
		ob := oa
		pairs := 0
		for base := 0; base < ha.DataLen; base += B {
			bn := B
			if base+bn > ha.DataLen {
				bn = ha.DataLen - base
			}
			sa, err := BlockBytes(ca[oa:], bn)
			if err != nil {
				t.Fatalf("%s: block walk a: %v", name, err)
			}
			sb, err := BlockBytes(cb[ob:], bn)
			if err != nil {
				t.Fatalf("%s: block walk b: %v", name, err)
			}
			if bn == 32 {
				checkFusedPair(t, ca[oa:oa+sa], cb[ob:ob+sb], name)
				pairs++
			}
			oa += sa
			ob += sb
		}
		if pairs == 0 {
			t.Fatalf("%s: no full blocks checked", name)
		}
	}
}

// FuzzFusedAdd feeds arbitrary delta blocks through the fused kernel and
// the legacy reference. The committed seeds cover the overflow and
// width-growth edges: operand widths at the SWAR/scalar boundary (6/7),
// the scalar/wide boundary (30/31) and full-width 31+31 sums that must
// trip the overflow flag.
func FuzzFusedAdd(f *testing.F) {
	mk := func(fill int32) []byte {
		var p [32]int32
		for i := range p {
			if i%2 == 0 {
				p[i] = fill
			} else {
				p[i] = -fill
			}
		}
		scratch := make([]uint32, 32)
		dst := make([]byte, 1+4+32*4+8)
		n := EncodeBlock(dst, p[:], scratch)
		return dst[:n]
	}
	// SWAR boundary: 6-bit and 7-bit operands.
	f.Add(mk(63), mk(63))
	f.Add(mk(63), mk(64))
	f.Add(mk(64), mk(64))
	// Scalar/wide boundary: 30-bit and 31-bit operands.
	f.Add(mk(1<<29), mk(1<<29))
	f.Add(mk(1<<30), mk(1<<29))
	// Width growth across the top: 31-bit + 31-bit overflows int32.
	f.Add(mk(1<<30+1<<29), mk(1<<30+1<<29))
	// Zero against everything.
	f.Add(mk(0), mk(1<<30))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		decode := func(raw []byte) []byte {
			var p [32]int32
			for i := range p {
				var v uint32
				for j := 0; j < 4; j++ {
					k := 4*i + j
					if k < len(raw) {
						v |= uint32(raw[k]) << uint(8*j)
					}
				}
				p[i] = int32(v)
				if p[i] == -(1 << 31) {
					p[i]++ // |min int32| is not representable in sign/magnitude
				}
			}
			scratch := make([]uint32, 32)
			dst := make([]byte, 1+4+32*4+8)
			n := EncodeBlock(dst, p[:], scratch)
			return dst[:n]
		}
		sa, sb := decode(rawA), decode(rawB)
		want, wantOverflow := fuzzLegacySum(sa, sb)
		var sc SumScratch32
		dst := make([]byte, len(sa)+len(sb)+16)
		wrote, usedA, usedB, overflow, err := SumBlocks32(dst, sa, sb, &sc)
		if err != nil {
			t.Fatalf("SumBlocks32: %v", err)
		}
		if overflow != wantOverflow {
			t.Fatalf("overflow %v, want %v", overflow, wantOverflow)
		}
		if wantOverflow {
			return
		}
		if usedA != len(sa) || usedB != len(sb) {
			t.Fatalf("consumed %d/%d, want %d/%d", usedA, usedB, len(sa), len(sb))
		}
		if wrote != len(want) || !bytes.Equal(dst[:wrote], want) {
			t.Fatalf("fused output differs from legacy\n got % x\nwant % x", dst[:wrote], want)
		}
	})
}

// fuzzLegacySum is legacySum without the testing.T plumbing (fuzz targets
// get a fresh *T per input).
func fuzzLegacySum(sa, sb []byte) (out []byte, overflow bool) {
	var pa, pb [32]int32
	scratch := make([]uint32, 32)
	if _, err := DecodeBlock(sa, pa[:], scratch); err != nil {
		panic(err)
	}
	if _, err := DecodeBlock(sb, pb[:], scratch); err != nil {
		panic(err)
	}
	for i := range pa {
		s := int64(pa[i]) + int64(pb[i])
		if s > 1<<31-1 || s < -(1<<31) {
			return nil, true
		}
		pa[i] = int32(s)
	}
	dst := make([]byte, 1+4+32*4+8)
	n := EncodeBlock(dst, pa[:], scratch)
	return dst[:n], false
}
