package fzlight

import (
	"math"
	"testing"

	"hzccl/internal/floatbytes"
)

// Native fuzz targets. `go test` runs the seed corpus on every test run;
// `go test -fuzz=FuzzDecompress ./internal/fzlight` explores further.

func FuzzDecompress(f *testing.F) {
	data := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	comp, err := Compress(data, Params{ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp)
	f.Add([]byte("FZL1"))
	f.Add([]byte{})
	comp2, err := Compress2D(data, 2, 4, Params{ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp2)
	comp3, err := Compress3D(data, 2, 2, 2, Params{ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp3)
	f.Fuzz(func(t *testing.T, b []byte) {
		// must never panic or allocate absurdly; errors are fine
		out, err := Decompress(b)
		if err == nil && len(out) > len(b)*64 {
			t.Fatalf("implausible expansion: %d values from %d bytes", len(out), len(b))
		}
		_, _ = Decompress64(b)
		_, _ = Stats(b)
	})
}

func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, ebSel, threads uint8) {
		vals := floatbytes.Floats(raw)
		clean := vals[:0]
		for _, v := range vals {
			f64 := float64(v)
			if !math.IsNaN(f64) && !math.IsInf(f64, 0) && math.Abs(f64) < 1e5 {
				clean = append(clean, v)
			}
		}
		eb := []float64{1e-1, 1e-2, 1e-3, 1e-4}[ebSel%4]
		comp, err := Compress(clean, Params{ErrorBound: eb, Threads: 1 + int(threads%5)})
		if err != nil {
			t.Fatalf("compress rejected clean input: %v", err)
		}
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(got) != len(clean) {
			t.Fatalf("length %d != %d", len(got), len(clean))
		}
		maxAbs := 0.0
		for _, v := range clean {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		limit := eb + maxAbs*math.Pow(2, -23)
		for i := range clean {
			if d := math.Abs(float64(clean[i]) - float64(got[i])); d > limit {
				t.Fatalf("bound violated at %d: err %g > %g", i, d, limit)
			}
		}
	})
}
