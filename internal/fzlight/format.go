package fzlight

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Container layout (all little-endian):
//
//	offset 0  : magic "FZL1"
//	offset 4  : version (1)
//	offset 5  : flags (reserved, 0)
//	offset 6  : block size (uint16)
//	offset 8  : absolute error bound (float64)
//	offset 16 : number of chunks (uint32)
//	offset 20 : element count (uint64)
//	offset 28 : compressed byte size of each chunk (numChunks × uint32)
//	then      : chunk payloads, concatenated
const (
	magic         = "FZL1"
	formatVersion = 1
	fixedHeader   = 28
)

// Header describes a compressed container. It is returned by ParseHeader
// and Info and is sufficient to locate and decode every chunk in parallel.
type Header struct {
	ErrorBound float64
	BlockSize  int
	NumChunks  int
	DataLen    int
	// Version is the container format version: 1 = 1D delta, 2 = 2D
	// Lorenzo, 3 = 3D Lorenzo.
	Version int
	// Float64 records that the source data was double-precision
	// (Compress64); decode with Decompress64.
	Float64 bool
	// Width is the row length of a 2D/3D container; 0 for 1D.
	Width int
	// Height is the plane height of a 3D container; 0 otherwise.
	Height     int
	ChunkSizes []uint32
}

func headerBytes(numChunks int) int { return fixedHeader + 4*numChunks }

// HeaderOverhead reports the container header size in bytes for a stream
// compressed with the given chunk count. Exposed so cost models can account
// for metadata exactly.
func HeaderOverhead(numChunks int) int { return headerBytes(numChunks) }

// flagFloat64 marks a container whose source values were float64.
const flagFloat64 = 0x01

func (h *Header) flags() byte {
	if h.Float64 {
		return flagFloat64
	}
	return 0
}

func (h *Header) marshal(dst []byte) int {
	copy(dst, magic)
	dst[4] = formatVersion
	dst[5] = h.flags()
	binary.LittleEndian.PutUint16(dst[6:], uint16(h.BlockSize))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(h.ErrorBound))
	binary.LittleEndian.PutUint32(dst[16:], uint32(h.NumChunks))
	binary.LittleEndian.PutUint64(dst[20:], uint64(h.DataLen))
	o := fixedHeader
	for _, s := range h.ChunkSizes {
		binary.LittleEndian.PutUint32(dst[o:], s)
		o += 4
	}
	return o
}

// MarshalHeader writes h into dst (which must be at least
// HeaderOverhead(h.NumChunks) bytes) and returns the bytes written. It is
// exported for the homomorphic reducer, which assembles containers with the
// same geometry but new chunk sizes.
func MarshalHeader(dst []byte, h *Header) int { return h.marshal(dst) }

// ParseHeader validates and decodes the container header.
func ParseHeader(comp []byte) (*Header, error) {
	if len(comp) < fixedHeader {
		return nil, ErrCorrupt
	}
	if string(comp[:4]) != magic {
		return nil, ErrBadMagic
	}
	switch comp[4] {
	case 2:
		return parseHeader2(comp)
	case 3:
		return parseHeader3(comp)
	case formatVersion:
	default:
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, comp[4])
	}
	rawLen := binary.LittleEndian.Uint64(comp[20:])
	h := &Header{
		Version:    1,
		Float64:    comp[5]&flagFloat64 != 0,
		BlockSize:  int(binary.LittleEndian.Uint16(comp[6:])),
		ErrorBound: math.Float64frombits(binary.LittleEndian.Uint64(comp[8:])),
		NumChunks:  int(binary.LittleEndian.Uint32(comp[16:])),
	}
	if h.BlockSize < 1 || h.NumChunks < 1 {
		return nil, ErrCorrupt
	}
	if !(h.ErrorBound > 0) {
		return nil, ErrCorrupt
	}
	// Containers arrive from the network: every size field is untrusted.
	// Each chunk costs at least 4 outlier bytes and each block at least
	// one marker byte, so the payload bounds both the chunk count and the
	// element count; reject anything a well-formed container cannot hold
	// before any allocation is sized from it.
	payload := uint64(len(comp) - fixedHeader)
	if uint64(h.NumChunks) > payload/8 {
		return nil, ErrCorrupt
	}
	if rawLen > payload*uint64(h.BlockSize) {
		return nil, ErrCorrupt
	}
	h.DataLen = int(rawLen)
	if h.DataLen > 0 && h.NumChunks > h.DataLen {
		return nil, ErrCorrupt
	}
	if len(comp) < headerBytes(h.NumChunks) {
		return nil, ErrCorrupt
	}
	h.ChunkSizes = make([]uint32, h.NumChunks)
	o := fixedHeader
	for i := range h.ChunkSizes {
		h.ChunkSizes[i] = binary.LittleEndian.Uint32(comp[o:])
		o += 4
	}
	return h, nil
}

// Info is an alias for ParseHeader, provided for API clarity.
func Info(comp []byte) (*Header, error) { return ParseHeader(comp) }

// HeaderLite is the stack-allocated header view used by the zero-allocation
// hot paths (CompressInto, hzdyn.AddInto). It covers version-1 (1D)
// containers only — the 2D/3D Lorenzo layouts keep the pointer-based
// ParseHeader. Two HeaderLite values compare equal exactly when the
// containers are homomorphically compatible, so `ha == hb` is the lite
// geometry check.
type HeaderLite struct {
	ErrorBound float64
	BlockSize  int
	NumChunks  int
	DataLen    int
	Float64    bool
}

// ParseHeaderLite validates a version-1 container header — including the
// full chunk-size table, exactly as ParseHeader does — without allocating.
// Containers in the 2D/3D layouts return ErrBadVersion; callers needing
// those fall back to ParseHeader.
func ParseHeaderLite(comp []byte) (HeaderLite, error) {
	var h HeaderLite
	if len(comp) < fixedHeader {
		return h, ErrCorrupt
	}
	if string(comp[:4]) != magic {
		return h, ErrBadMagic
	}
	if comp[4] != formatVersion {
		return h, fmt.Errorf("%w: version %d (lite header is 1D-only)", ErrBadVersion, comp[4])
	}
	h.Float64 = comp[5]&flagFloat64 != 0
	h.BlockSize = int(binary.LittleEndian.Uint16(comp[6:]))
	h.ErrorBound = math.Float64frombits(binary.LittleEndian.Uint64(comp[8:]))
	h.NumChunks = int(binary.LittleEndian.Uint32(comp[16:]))
	rawLen := binary.LittleEndian.Uint64(comp[20:])
	if h.BlockSize < 1 || h.NumChunks < 1 || !(h.ErrorBound > 0) {
		return HeaderLite{}, ErrCorrupt
	}
	// Same untrusted-input bounds as ParseHeader: the payload limits both
	// the chunk count and the element count.
	payload := uint64(len(comp) - fixedHeader)
	if uint64(h.NumChunks) > payload/8 {
		return HeaderLite{}, ErrCorrupt
	}
	if rawLen > payload*uint64(h.BlockSize) {
		return HeaderLite{}, ErrCorrupt
	}
	h.DataLen = int(rawLen)
	if h.DataLen > 0 && h.NumChunks > h.DataLen {
		return HeaderLite{}, ErrCorrupt
	}
	if len(comp) < headerBytes(h.NumChunks) {
		return HeaderLite{}, ErrCorrupt
	}
	// The size table must exactly cover the payload — the chunkOffsets
	// check, without materializing the offsets.
	o := headerBytes(h.NumChunks)
	for i := 0; i < h.NumChunks; i++ {
		o += int(binary.LittleEndian.Uint32(comp[fixedHeader+4*i:]))
		if o > len(comp) {
			return HeaderLite{}, ErrCorrupt
		}
	}
	if o != len(comp) {
		return HeaderLite{}, fmt.Errorf("%w: container size %d, chunks end at %d", ErrCorrupt, len(comp), o)
	}
	return h, nil
}

// ChunkSize reads chunk i's payload size from the container's size table
// (bounds were validated by ParseHeaderLite).
func (h HeaderLite) ChunkSize(comp []byte, i int) int {
	return int(binary.LittleEndian.Uint32(comp[fixedHeader+4*i:]))
}

// PayloadStart returns the offset of the first chunk payload.
func (h HeaderLite) PayloadStart() int { return headerBytes(h.NumChunks) }

// MarshalHeaderLite writes the fixed header fields of a version-1 container
// into dst; the per-chunk size table is filled separately with PutChunkSize
// as payload sizes become known. dst must hold HeaderOverhead(h.NumChunks)
// bytes.
func MarshalHeaderLite(dst []byte, h HeaderLite) {
	copy(dst, magic)
	dst[4] = formatVersion
	var fl byte
	if h.Float64 {
		fl = flagFloat64
	}
	dst[5] = fl
	binary.LittleEndian.PutUint16(dst[6:], uint16(h.BlockSize))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(h.ErrorBound))
	binary.LittleEndian.PutUint32(dst[16:], uint32(h.NumChunks))
	binary.LittleEndian.PutUint64(dst[20:], uint64(h.DataLen))
}

// PutChunkSize records chunk i's payload size in dst's size table.
func PutChunkSize(dst []byte, i, size int) {
	binary.LittleEndian.PutUint32(dst[fixedHeader+4*i:], uint32(size))
}

// chunkOffsets returns numChunks+1 byte offsets into the container such
// that chunk i occupies comp[offs[i]:offs[i+1]], verifying that the sizes
// exactly cover the container.
func (h *Header) chunkOffsets(compLen int) ([]int, error) {
	offs := make([]int, h.NumChunks+1)
	o := headerBytes(h.NumChunks)
	for i, s := range h.ChunkSizes {
		offs[i] = o
		o += int(s)
		if o > compLen {
			return nil, ErrCorrupt
		}
	}
	offs[h.NumChunks] = o
	if o != compLen {
		return nil, fmt.Errorf("%w: container size %d, chunks end at %d", ErrCorrupt, compLen, o)
	}
	return offs, nil
}

// ChunkOffsets exposes chunk payload locations for external block-level
// consumers (the homomorphic reducer).
func ChunkOffsets(comp []byte) (*Header, []int, error) {
	h, err := ParseHeader(comp)
	if err != nil {
		return nil, nil, err
	}
	offs, err := h.offsets(len(comp))
	if err != nil {
		return nil, nil, err
	}
	return h, offs, nil
}

// offsets dispatches between the per-version chunk layouts.
func (h *Header) offsets(compLen int) ([]int, error) {
	switch h.Version {
	case 3:
		return h.chunkOffsets3(compLen)
	case 2:
		return h.chunkOffsets2(compLen)
	default:
		return h.chunkOffsets(compLen)
	}
}

// ChunkElemRange returns the [start, end) element range of chunk i: a
// direct element partition for 1D containers, a row-band partition for 2D
// ones. Exported for the homomorphic reducer.
func ChunkElemRange(h *Header, i int) (start, end int) {
	switch h.Version {
	case 3:
		plane := h.Width * h.Height
		depth := h.DataLen / plane
		zs, ze := ChunkBounds(depth, h.NumChunks, i)
		return zs * plane, ze * plane
	case 2:
		rows := h.DataLen / h.Width
		rs, re := ChunkBounds(rows, h.NumChunks, i)
		return rs * h.Width, re * h.Width
	default:
		return ChunkBounds(h.DataLen, h.NumChunks, i)
	}
}

// AssembleLike builds a container with h's geometry (and format version)
// around freshly produced chunk payloads. Exported for the homomorphic
// reducer.
func AssembleLike(h *Header, chunks [][]byte) []byte {
	nh := &Header{
		ErrorBound: h.ErrorBound,
		BlockSize:  h.BlockSize,
		NumChunks:  h.NumChunks,
		DataLen:    h.DataLen,
		Version:    h.Version,
		Float64:    h.Float64,
		Width:      h.Width,
		Height:     h.Height,
		ChunkSizes: make([]uint32, h.NumChunks),
	}
	total := 0
	for i, c := range chunks {
		nh.ChunkSizes[i] = uint32(len(c))
		total += len(c)
	}
	var out []byte
	var o int
	switch h.Version {
	case 3:
		out = make([]byte, headerBytes3(h.NumChunks)+total)
		o = nh.marshal3(out)
	case 2:
		out = make([]byte, headerBytes2(h.NumChunks)+total)
		o = nh.marshal2(out)
	default:
		out = make([]byte, headerBytes(h.NumChunks)+total)
		o = nh.marshal(out)
	}
	for _, c := range chunks {
		o += copy(out[o:], c)
	}
	return out[:o]
}

// SameGeometry reports whether two headers describe streams that can be
// reduced homomorphically: identical error bound, block size, chunk count
// and element count.
func SameGeometry(a, b *Header) bool {
	return a.ErrorBound == b.ErrorBound &&
		a.BlockSize == b.BlockSize &&
		a.NumChunks == b.NumChunks &&
		a.DataLen == b.DataLen &&
		a.Version == b.Version &&
		a.Float64 == b.Float64 &&
		a.Width == b.Width &&
		a.Height == b.Height
}

// StreamStats summarizes the block structure of a compressed stream. The
// constant-block fraction predicts which homomorphic pipelines hZ-dynamic
// will select (paper Table V).
type StreamStats struct {
	Blocks         int
	ConstantBlocks int
	CodeLenHist    [33]int
	PayloadBytes   int
}

// ConstantFraction returns the fraction of blocks with code length zero.
func (s StreamStats) ConstantFraction() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.ConstantBlocks) / float64(s.Blocks)
}

// Stats walks a compressed stream and returns its block statistics.
func Stats(comp []byte) (StreamStats, error) {
	var st StreamStats
	h, offs, err := ChunkOffsets(comp)
	if err != nil {
		return st, err
	}
	for i := 0; i < h.NumChunks; i++ {
		start, end := ChunkElemRange(h, i)
		src := comp[offs[i]:offs[i+1]]
		if len(src) < 4 {
			return st, ErrCorrupt
		}
		o := 4
		for base := start; base < end; base += h.BlockSize {
			n := h.BlockSize
			if base+n > end {
				n = end - base
			}
			size, err := BlockBytes(src[o:], n)
			if err != nil {
				return st, err
			}
			c := int(src[o])
			st.Blocks++
			st.CodeLenHist[c]++
			if c == 0 {
				st.ConstantBlocks++
			}
			st.PayloadBytes += size
			o += size
		}
	}
	return st, nil
}
