package fzlight

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// volume builds a depth×height×width field with smooth 3D structure.
func volume(d, h, w int, seed int64, noise float64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, d*h*w)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := math.Sin(float64(z)*0.1)*math.Cos(float64(y)*0.07)*math.Sin(float64(x)*0.05)*8 +
					float64(z)*0.02 + rng.NormFloat64()*noise
				out[(z*h+y)*w+x] = float32(v)
			}
		}
	}
	return out
}

func TestCompress3DRoundTrip(t *testing.T) {
	for _, dims := range [][3]int{{16, 16, 16}, {5, 11, 7}, {1, 8, 8}, {8, 1, 8}, {8, 8, 1}, {2, 2, 2}} {
		d, h, w := dims[0], dims[1], dims[2]
		data := volume(d, h, w, 1, 0.001)
		for _, threads := range []int{1, 3} {
			comp, err := Compress3D(data, d, h, w, Params{ErrorBound: 1e-3, Threads: threads})
			if err != nil {
				t.Fatalf("%v threads=%d: %v", dims, threads, err)
			}
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("%v: %v", dims, err)
			}
			if len(got) != d*h*w {
				t.Fatalf("%v: %d elems", dims, len(got))
			}
			if m := maxAbsErr(data, got); m > tol(1e-3, data) {
				t.Fatalf("%v threads=%d: err %g", dims, threads, m)
			}
		}
	}
}

func TestCompress3DValidation(t *testing.T) {
	data := make([]float32, 24)
	if _, err := Compress3D(data, 2, 3, 5, Params{ErrorBound: 1e-3}); !errors.Is(err, ErrBadParams) {
		t.Errorf("dims mismatch: %v", err)
	}
	if _, err := Compress3D(data, 2, 3, 4, Params{}); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero bound: %v", err)
	}
	if _, err := Compress3D(nil, 0, 0, 0, Params{ErrorBound: 1e-3}); err != nil {
		t.Errorf("empty volume: %v", err)
	}
}

// On volumetric data with strong cross-plane correlation the 3D predictor
// must beat both the 1D delta and the 2D stencil.
func TestLorenzo3DBeats2DAnd1D(t *testing.T) {
	d, h, w := 32, 64, 64
	data := make([]float32, d*h*w)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// planes repeat with a slow drift: ideal for 3D prediction
				data[(z*h+y)*w+x] = float32(math.Sin(float64(y)*0.3)*math.Cos(float64(x)*0.2)*40 +
					float64(z)*0.3 + float64(y)*0.5)
			}
		}
	}
	eb := 1e-3
	c1, err := Compress(data, Params{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compress2D(data, d*h, w, Params{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := Compress3D(data, d, h, w, Params{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if !(len(c3) < len(c2) && len(c2) < len(c1)) {
		t.Fatalf("expected 3D < 2D < 1D, got %d %d %d", len(c3), len(c2), len(c1))
	}
}

func TestHeader3RoundTrip(t *testing.T) {
	data := volume(6, 10, 8, 2, 0.01)
	comp, err := Compress3D(data, 6, 10, 8, Params{ErrorBound: 1e-3, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 3 || h.Width != 8 || h.Height != 10 || h.DataLen != 480 || h.NumChunks != 4 {
		t.Fatalf("header %+v", h)
	}
	prev := 0
	for i := 0; i < h.NumChunks; i++ {
		s, e := ChunkElemRange(h, i)
		if s != prev || (e-s)%(8*10) != 0 {
			t.Fatalf("chunk %d range [%d,%d)", i, s, e)
		}
		prev = e
	}
	if prev != 480 {
		t.Fatalf("chunks end at %d", prev)
	}
	if _, err := Stats(comp); err != nil {
		t.Fatal(err)
	}
}

func TestCorrupt3DStreams(t *testing.T) {
	data := volume(4, 8, 8, 3, 0.01)
	comp, err := Compress3D(data, 4, 8, 8, Params{ErrorBound: 1e-3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:20]); err == nil {
		t.Error("truncated v3 header accepted")
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		bad := append([]byte(nil), comp...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		_, _ = Decompress(bad) // must not panic
	}
}
