//go:build !race

package fzlight

const raceEnabled = false
