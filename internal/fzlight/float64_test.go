package fzlight

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func smooth64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 1e-7
		out[i] = math.Sin(float64(i)*0.001) + v
	}
	return out
}

func TestCompress64RoundTrip(t *testing.T) {
	data := smooth64(10000, 1)
	// Bounds below float32 resolution — the reason Compress64 exists.
	// (The quantization range caps eb at |v|/2^29, so ~2e-9 is the floor
	// for O(1) values.)
	for _, eb := range []float64{1e-6, 1e-8, 4e-9} {
		for _, threads := range []int{1, 3} {
			comp, err := Compress64(data, Params{ErrorBound: eb, Threads: threads})
			if err != nil {
				t.Fatalf("eb=%g: %v", eb, err)
			}
			got, err := Decompress64(comp)
			if err != nil {
				t.Fatal(err)
			}
			maxErr := 0.0
			for i := range data {
				if d := math.Abs(data[i] - got[i]); d > maxErr {
					maxErr = d
				}
			}
			if maxErr > eb*(1+1e-9) {
				t.Fatalf("eb=%g threads=%d: err %g", eb, threads, maxErr)
			}
		}
	}
}

func TestPrecisionMismatchRejected(t *testing.T) {
	d64 := smooth64(100, 2)
	c64, err := Compress64(d64, Params{ErrorBound: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(c64); !errors.Is(err, ErrWrongPrecision) {
		t.Fatalf("float32 decode of float64 container: %v", err)
	}
	d32 := make([]float32, 100)
	c32, err := Compress(d32, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress64(c32); !errors.Is(err, ErrWrongPrecision) {
		t.Fatalf("float64 decode of float32 container: %v", err)
	}
	// Homomorphic geometry check must separate precisions too.
	h64, err := ParseHeader(c64)
	if err != nil {
		t.Fatal(err)
	}
	if !h64.Float64 {
		t.Fatal("Float64 flag not recorded")
	}
}

func TestCompress64BetterThanFloat32AtTinyBounds(t *testing.T) {
	// At eb = 1e-10 a float32 round-trip cannot honor the bound for values
	// of magnitude ~1e-3 (float32 has only 24 mantissa bits); Compress64
	// must.
	data := smooth64(1000, 5)
	for i := range data {
		data[i] *= 1e-3
	}
	comp, err := Compress64(data, Params{ErrorBound: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress64(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := math.Abs(data[i] - got[i]); d > 1e-10*(1+1e-9) {
			t.Fatalf("float64 path violated tiny bound: %g", d)
		}
	}
}
