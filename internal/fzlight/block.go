package fzlight

import (
	"fmt"
	"math"
	"math/bits"

	"hzccl/internal/bitio"
)

// This file holds the per-block codecs. Full 32-element blocks — the
// default and the only size the experiments use — take branchless
// specialized paths: the quantization loop folds sign extraction, magnitude
// computation and the running code-length OR into straight-line integer
// arithmetic, and sign bits are accumulated into a single machine word
// instead of a per-element byte loop. Other block sizes (and the tail
// block of a chunk) use the generic paths.

// Float constrains the element types the codec accepts.
type Float interface {
	~float32 | ~float64
}

// quantErr classifies an out-of-range quantization input.
func quantErr(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return ErrNonFinite
	}
	return ErrRange
}

// encodeBlock32 quantizes, predicts and encodes one full 32-element block.
// qprev carries the previous quantized value across blocks of a chunk.
func encodeBlock32[T Float](dst []byte, blk []T, recip float64, qprev *int32, mscratch *[32]uint32) (int, error) {
	mbuf := mscratch
	var signW, ormag uint32
	q := *qprev
	blk = blk[:32]
	for i := 0; i < 32; i++ {
		x := float64(blk[i]) * recip
		if !(x > -quantLimit && x < quantLimit) {
			return 0, quantErr(x)
		}
		qi := int32(math.Floor(x + 0.5)) // Floor compiles to a rounding instruction
		p := qi - q
		q = qi
		s := p >> 31 // 0 or -1
		m := uint32((p ^ s) - s)
		mbuf[i] = m
		signW |= uint32(s) & (1 << uint(i))
		ormag |= m
	}
	*qprev = q
	c := bits.Len32(ormag)
	dst[0] = byte(c)
	if c == 0 {
		return 1, nil
	}
	dst[1] = byte(signW)
	dst[2] = byte(signW >> 8)
	dst[3] = byte(signW >> 16)
	dst[4] = byte(signW >> 24)
	o := 5
	bc, r := c/8, c%8
	o += bitio.PackPlanes(dst[o:], mbuf[:], bc)
	o += bitio.PackRemainder(dst[o:], mbuf[:], 8*bc, r)
	return o, nil
}

// encodeBlockGeneric handles arbitrary block lengths and the first block of
// a chunk (whose leading element is the outlier and encodes a zero delta).
func encodeBlockGeneric[T Float](dst []byte, blk []T, recip float64, qprev *int32,
	first *bool, outlier *int32, pbuf []int32, mbuf []uint32) (int, error) {
	n := len(blk)
	var maxmag uint32
	q := *qprev
	for i := 0; i < n; i++ {
		x := float64(blk[i]) * recip
		if !(x > -quantLimit && x < quantLimit) {
			return 0, quantErr(x)
		}
		qi := int32(math.Floor(x + 0.5))
		p := qi - q
		q = qi
		if *first {
			*outlier = qi
			p = 0
			*first = false
		}
		pbuf[i] = p
		s := p >> 31
		m := uint32((p ^ s) - s)
		mbuf[i] = m
		if m > maxmag {
			maxmag = m
		}
	}
	*qprev = q
	c := bits.Len32(maxmag)
	dst[0] = byte(c)
	if c == 0 {
		return 1, nil
	}
	o := 1
	o += bitio.PackSigns(dst[o:], pbuf[:n])
	bc, r := c/8, c%8
	o += bitio.PackPlanes(dst[o:], mbuf[:n], bc)
	o += bitio.PackRemainder(dst[o:], mbuf[:n], 8*bc, r)
	return o, nil
}

// decodeBlock32 decodes one full 32-element block directly into
// reconstructed float32 values, carrying the quantized accumulator.
func decodeBlock32[T Float](src []byte, out []T, acc *int32, eb2 float64, mscratch *[32]uint32) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	c := int(src[0])
	if c > 32 {
		return 0, fmt.Errorf("%w: code length %d", ErrCorrupt, c)
	}
	out = out[:32]
	if c == 0 {
		v := T(eb2 * float64(*acc))
		for i := range out {
			out[i] = v
		}
		return 1, nil
	}
	bc, r := c/8, c%8
	need := 5 + 32*bc + 4*r
	if len(src) < need {
		return 0, ErrCorrupt
	}
	signW := uint32(src[1]) | uint32(src[2])<<8 | uint32(src[3])<<16 | uint32(src[4])<<24
	mbuf := mscratch
	if bc == 0 {
		for i := range mbuf {
			mbuf[i] = 0
		}
	}
	o := 5
	o += bitio.UnpackPlanesAssign(src[o:], mbuf[:], bc)
	bitio.UnpackRemainder(src[o:], mbuf[:], 8*bc, r)
	a := *acc
	for i := 0; i < 32; i++ {
		neg := -int32(signW >> uint(i) & 1) // 0 or -1
		d := (int32(mbuf[i]) ^ neg) - neg
		a += d
		out[i] = T(eb2 * float64(a))
	}
	*acc = a
	return need, nil
}

// DecodeBlock decodes one encoded block from src into the prediction slice
// p (whose length selects the element count) and returns the number of
// bytes consumed. scratch must be at least len(p) long; it is clobbered.
// DecodeBlock is exported for the homomorphic reducer in package hzdyn.
func DecodeBlock(src []byte, p []int32, scratch []uint32) (int, error) {
	n := len(p)
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	c := int(src[0])
	if c > 32 {
		return 0, fmt.Errorf("%w: code length %d", ErrCorrupt, c)
	}
	if c == 0 {
		for i := range p {
			p[i] = 0
		}
		return 1, nil
	}
	need := 1 + bitio.EncodedBytes(n, c)
	if len(src) < need {
		return 0, ErrCorrupt
	}
	bc, r := c/8, c%8
	if n == 32 {
		signW := uint32(src[1]) | uint32(src[2])<<8 | uint32(src[3])<<16 | uint32(src[4])<<24
		var mbuf [32]uint32
		o := 5
		o += bitio.UnpackPlanes(src[o:], mbuf[:], bc)
		bitio.UnpackRemainder(src[o:], mbuf[:], 8*bc, r)
		for i := 0; i < 32; i++ {
			neg := -int32(signW >> uint(i) & 1)
			p[i] = (int32(mbuf[i]) ^ neg) - neg
		}
		return need, nil
	}
	mags := scratch[:n]
	for i := range mags {
		mags[i] = 0
	}
	o := 1 + bitio.SignBytes(n)
	o += bitio.UnpackPlanes(src[o:], mags, bc)
	bitio.UnpackRemainder(src[o:], mags, 8*bc, r)
	for i := range p {
		p[i] = int32(mags[i])
	}
	bitio.ApplySigns(src[1:], p)
	return need, nil
}

// EncodeBlock encodes the prediction values p as one block (code-length
// byte plus payload) into dst and returns the number of bytes written.
// scratch must be at least len(p) long; it is clobbered. EncodeBlock is
// exported for the homomorphic reducer in package hzdyn.
func EncodeBlock(dst []byte, p []int32, scratch []uint32) int {
	n := len(p)
	if n == 32 {
		var mbuf [32]uint32
		var signW, ormag uint32
		for i := 0; i < 32; i++ {
			v := p[i]
			s := v >> 31
			m := uint32((v ^ s) - s)
			mbuf[i] = m
			signW |= uint32(s) & (1 << uint(i))
			ormag |= m
		}
		c := bits.Len32(ormag)
		dst[0] = byte(c)
		if c == 0 {
			return 1
		}
		dst[1] = byte(signW)
		dst[2] = byte(signW >> 8)
		dst[3] = byte(signW >> 16)
		dst[4] = byte(signW >> 24)
		o := 5
		bc, r := c/8, c%8
		o += bitio.PackPlanes(dst[o:], mbuf[:], bc)
		o += bitio.PackRemainder(dst[o:], mbuf[:], 8*bc, r)
		return o
	}
	mags := scratch[:n]
	var maxmag uint32
	for i, v := range p {
		s := v >> 31
		m := uint32((v ^ s) - s)
		mags[i] = m
		if m > maxmag {
			maxmag = m
		}
	}
	c := bits.Len32(maxmag)
	dst[0] = byte(c)
	if c == 0 {
		return 1
	}
	o := 1
	o += bitio.PackSigns(dst[o:], p)
	bc, r := c/8, c%8
	o += bitio.PackPlanes(dst[o:], mags, bc)
	o += bitio.PackRemainder(dst[o:], mags, 8*bc, r)
	return o
}

// SumScratch32 is the per-call scratch for SumBlocks32. Callers declare
// one per stream (or per worker) and reuse it across blocks so the
// kernel does not pay a fresh stack-zeroing per block.
type SumScratch32 struct {
	d    [32]int32
	mags [32]uint32
}

// SumBlocks32 is the fused pipeline-④ kernel for full 32-element blocks:
// it inverse fixed-length decodes the two encoded blocks at sa and sb,
// adds the prediction integers, and fixed-length encodes the sum into dst,
// in one bitplane-wise pass over the packed words — the unpacked []int32
// block is never materialized. It returns the bytes written and the bytes
// consumed from each input. overflow reports a sum that no longer fits in
// int32.
//
// Both operand code lengths ≤ 30 (the overwhelmingly common case — the
// compressor emits ≤ 30 for any physically plausible delta stream) take
// the word-wise fast path: operand A is decoded to deltas with the
// dispatch-table kernels in package bitio, operand B's decode is fused
// with the add and the sign/magnitude re-extraction (running magnitude-OR
// gives the output width), and the packed output is written straight into
// dst. The width bound proves |a|,|b| < 1<<30, so the sum always fits in
// int32 and the per-element overflow checks vanish. Code lengths 31 and
// 32 fall back to the checked wide kernel.
//
// dst must have room for the written block; when it extends at least 8
// bytes past the block's end the kernel may scribble zero bytes into that
// slack (they are always overwritten by the next block or ignored).
func SumBlocks32(dst, sa, sb []byte, sc *SumScratch32) (wrote, usedA, usedB int, overflow bool, err error) {
	if len(sa) < 1 || len(sb) < 1 {
		return 0, 0, 0, false, ErrCorrupt
	}
	ca, cb := int(sa[0]), int(sb[0])
	if ca > 30 || cb > 30 {
		return sumBlocks32Wide(dst, sa, sb)
	}
	if ca <= 6 && cb <= 6 {
		// Narrow regime: every magnitude < 64, so the whole block pair
		// adds 8 lanes per machine word (bitio's SWAR kernel).
		usedA, usedB = 1, 1
		var swa, swb uint32
		var pa, pb []byte
		if ca > 0 {
			usedA = 5 + 4*ca
			if len(sa) < usedA {
				return 0, 0, 0, false, ErrCorrupt
			}
			swa = uint32(sa[1]) | uint32(sa[2])<<8 | uint32(sa[3])<<16 | uint32(sa[4])<<24
			pa = sa[5:usedA]
		}
		if cb > 0 {
			usedB = 5 + 4*cb
			if len(sb) < usedB {
				return 0, 0, 0, false, ErrCorrupt
			}
			swb = uint32(sb[1]) | uint32(sb[2])<<8 | uint32(sb[3])<<16 | uint32(sb[4])<<24
			pb = sb[5:usedB]
		}
		if ca <= 3 && ca > 0 && cb <= 3 && cb > 0 {
			// Hottest widths get a direct specialised-kernel call with
			// no intermediate dispatch frame.
			return bitio.NarrowPairTab[(ca-1)*3+(cb-1)](dst, pa, pb, swa, swb), usedA, usedB, false, nil
		}
		return bitio.AddBlocks32Narrow(dst, pa, pb, swa, swb, ca, cb), usedA, usedB, false, nil
	}
	usedA, usedB = 1, 1
	if ca > 0 {
		usedA = 5 + 32*(ca/8) + 4*(ca%8)
		if len(sa) < usedA {
			return 0, 0, 0, false, ErrCorrupt
		}
		signWa := uint32(sa[1]) | uint32(sa[2])<<8 | uint32(sa[3])<<16 | uint32(sa[4])<<24
		bitio.UnpackDeltas32(sa[5:], signWa, ca, &sc.d)
	} else {
		sc.d = [32]int32{}
	}
	var signWb uint32
	pb := []byte(nil)
	if cb > 0 {
		usedB = 5 + 32*(cb/8) + 4*(cb%8)
		if len(sb) < usedB {
			return 0, 0, 0, false, ErrCorrupt
		}
		signWb = uint32(sb[1]) | uint32(sb[2])<<8 | uint32(sb[3])<<16 | uint32(sb[4])<<24
		pb = sb[5:]
	}
	signW, ormag := bitio.UnpackAddMags32(pb, signWb, cb, &sc.d, &sc.mags)
	c := bits.Len32(ormag)
	dst[0] = byte(c)
	if c == 0 {
		return 1, usedA, usedB, false, nil
	}
	dst[1] = byte(signW)
	dst[2] = byte(signW >> 8)
	dst[3] = byte(signW >> 16)
	dst[4] = byte(signW >> 24)
	return 5 + bitio.PackMags32(dst[5:], &sc.mags, c), usedA, usedB, false, nil
}

// sumBlocks32Wide is the checked fallback for operand code lengths 31 and
// 32, where a summed magnitude may overflow int32: it unpacks both
// magnitude arrays, adds in int64 with per-element overflow detection,
// and re-encodes. It also performs the full marker validation (> 32
// rejection) for both operands.
func sumBlocks32Wide(dst, sa, sb []byte) (wrote, usedA, usedB int, overflow bool, err error) {
	var maga, magb, msum [32]uint32
	signWa, usedA, err := unpackMags32(sa, &maga)
	if err != nil {
		return 0, 0, 0, false, err
	}
	signWb, usedB, err := unpackMags32(sb, &magb)
	if err != nil {
		return 0, 0, 0, false, err
	}
	var signW, ormag uint32
	for i := 0; i < 32; i++ {
		nega := -int32(signWa >> uint(i) & 1)
		negb := -int32(signWb >> uint(i) & 1)
		da := (int32(maga[i]) ^ nega) - nega
		db := (int32(magb[i]) ^ negb) - negb
		sum := int64(da) + int64(db)
		if sum != int64(int32(sum)) {
			overflow = true
		}
		p := int32(sum)
		s := p >> 31
		m := uint32((p ^ s) - s)
		msum[i] = m
		signW |= uint32(s) & (1 << uint(i))
		ormag |= m
	}
	if overflow {
		return 0, usedA, usedB, true, nil
	}
	c := bits.Len32(ormag)
	dst[0] = byte(c)
	if c == 0 {
		return 1, usedA, usedB, false, nil
	}
	dst[1] = byte(signW)
	dst[2] = byte(signW >> 8)
	dst[3] = byte(signW >> 16)
	dst[4] = byte(signW >> 24)
	o := 5
	bc, r := c/8, c%8
	o += bitio.PackPlanes(dst[o:], msum[:], bc)
	o += bitio.PackRemainder(dst[o:], msum[:], 8*bc, r)
	return o, usedA, usedB, false, nil
}

// unpackMags32 reads one encoded 32-element block: magnitudes into mags,
// sign bits returned as a word. A constant block yields zero magnitudes.
func unpackMags32(src []byte, mags *[32]uint32) (signW uint32, used int, err error) {
	if len(src) < 1 {
		return 0, 0, ErrCorrupt
	}
	c := int(src[0])
	if c > 32 {
		return 0, 0, fmt.Errorf("%w: code length %d", ErrCorrupt, c)
	}
	if c == 0 {
		for i := range mags {
			mags[i] = 0
		}
		return 0, 1, nil
	}
	bc, r := c/8, c%8
	need := 5 + 32*bc + 4*r
	if len(src) < need {
		return 0, 0, ErrCorrupt
	}
	signW = uint32(src[1]) | uint32(src[2])<<8 | uint32(src[3])<<16 | uint32(src[4])<<24
	if bc == 0 {
		for i := range mags {
			mags[i] = 0
		}
	}
	o := 5
	o += bitio.UnpackPlanesAssign(src[o:], mags[:], bc)
	bitio.UnpackRemainder(src[o:], mags[:], 8*bc, r)
	return signW, need, nil
}

// BlockBytes returns the encoded size of the block starting at src[0] for
// n elements, without decoding its payload.
func BlockBytes(src []byte, n int) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	c := int(src[0])
	if c > 32 {
		return 0, fmt.Errorf("%w: code length %d", ErrCorrupt, c)
	}
	size := 1 + bitio.EncodedBytes(n, c)
	if len(src) < size {
		return 0, ErrCorrupt
	}
	return size, nil
}
