package fzlight

import "hzccl/internal/telemetry"

// Telemetry instrumentation for the compressor hot paths. Metrics are
// resolved once at package init; the per-call cost is a handful of atomic
// adds plus two clock reads per *chunk* (never per element), which the
// overhead benchmark in telemetry_bench_test.go bounds at <2% of
// Compress.
var (
	mCompressCalls   = telemetry.C("fzlight.compress.calls")
	mCompressRaw     = telemetry.C("fzlight.compress.raw_bytes")
	mCompressOut     = telemetry.C("fzlight.compress.compressed_bytes")
	mCompressOutlier = telemetry.C("fzlight.compress.outliers")
	mCompressErrs    = telemetry.C("fzlight.compress.errors")
	mChunkEncodeNS   = telemetry.H("fzlight.chunk.encode_ns", telemetry.DurationBuckets())

	mDecompressCalls = telemetry.C("fzlight.decompress.calls")
	mDecompressRaw   = telemetry.C("fzlight.decompress.raw_bytes")
	mDecompressIn    = telemetry.C("fzlight.decompress.compressed_bytes")
	mDecompressErrs  = telemetry.C("fzlight.decompress.errors")
	mChunkDecodeNS   = telemetry.H("fzlight.chunk.decode_ns", telemetry.DurationBuckets())
)

func init() {
	// Achieved compression ratio over the life of the process, derived from
	// the cumulative byte counters at export time.
	telemetry.Gauge("fzlight.compress.achieved_ratio", func() float64 {
		out := mCompressOut.Value()
		if out == 0 {
			return 0
		}
		return float64(mCompressRaw.Value()) / float64(out)
	})
}

// elemBytes returns the raw byte width of the container's element type.
func elemBytes(wide bool) int {
	if wide {
		return 8
	}
	return 4
}
