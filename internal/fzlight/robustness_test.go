package fzlight

import (
	"math/rand"
	"testing"
)

// Robustness: arbitrary garbage and systematically corrupted containers
// must produce errors, never panics or out-of-range accesses. This is the
// property a network-facing decoder needs: every received buffer is
// attacker-controlled in the worst case.

func TestDecompressRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must not panic; errors are expected and fine.
		_, _ = Decompress(buf)
	}
}

func TestDecompressValidHeaderGarbagePayload(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	data := make([]float32, 1000)
	for i := range data {
		data[i] = rng.Float32()
	}
	comp, err := Compress(data, Params{ErrorBound: 1e-3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), comp...)
		// corrupt a few random payload bytes, keeping the header intact
		for k := 0; k < 1+rng.Intn(8); k++ {
			pos := fixedHeader + rng.Intn(len(bad)-fixedHeader)
			bad[pos] ^= byte(1 + rng.Intn(255))
		}
		out, err := Decompress(bad)
		// Either an error, or a decode that stayed in bounds.
		if err == nil && len(out) != 1000 {
			t.Fatalf("corrupt stream decoded to %d values", len(out))
		}
	}
}

func TestDecompressTruncationSweep(t *testing.T) {
	data := make([]float32, 500)
	for i := range data {
		data[i] = float32(i)
	}
	comp, err := Compress(data, Params{ErrorBound: 1e-2, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(comp); cut += 3 {
		if _, err := Decompress(comp[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(comp))
		}
	}
}

func TestHeaderFieldFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	data := make([]float32, 300)
	comp, err := Compress(data, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		bad := append([]byte(nil), comp...)
		pos := rng.Intn(fixedHeader)
		bad[pos] ^= byte(1 + rng.Intn(255))
		_, _ = Decompress(bad) // must not panic
	}
}
