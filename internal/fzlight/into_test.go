package fzlight

// Tests for the allocation-free Into API: CompressInto must be a
// byte-for-byte drop-in for Compress, the lite header must round-trip,
// and the single-chunk steady state (the configuration the ring
// collectives run) must not allocate at all.

import (
	"bytes"
	"errors"
	"testing"
)

// CompressInto writing at the front of a CompressBound buffer must produce
// exactly the container Compress allocates, for every chunking/blocking
// configuration (single- and multi-chunk paths diverge internally).
func TestCompressIntoMatchesCompress(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 1000, 4097} {
		for _, threads := range []int{1, 3, 8} {
			for _, bs := range []int{32, 13} {
				data := smoothField(n, int64(n)+1)
				p := Params{ErrorBound: 1e-3, Threads: threads, BlockSize: bs}
				want, err := Compress(data, p)
				if err != nil {
					t.Fatalf("Compress(n=%d,t=%d,bs=%d): %v", n, threads, bs, err)
				}
				dst := make([]byte, CompressBound(len(data), p))
				m, err := CompressInto(dst, data, p)
				if err != nil {
					t.Fatalf("CompressInto(n=%d,t=%d,bs=%d): %v", n, threads, bs, err)
				}
				if !bytes.Equal(dst[:m], want) {
					t.Fatalf("n=%d t=%d bs=%d: CompressInto output differs from Compress (%d vs %d bytes)",
						n, threads, bs, m, len(want))
				}
			}
		}
	}
}

// The float64 variant must match Compress64 the same way.
func TestCompressInto64MatchesCompress64(t *testing.T) {
	data := make([]float64, 1000)
	f32 := smoothField(len(data), 7)
	for i := range data {
		data[i] = float64(f32[i])
	}
	p := Params{ErrorBound: 1e-3, Threads: 4}
	want, err := Compress64(data, p)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, CompressBound(len(data), p))
	m, err := CompressInto64(dst, data, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:m], want) {
		t.Fatalf("CompressInto64 output differs from Compress64 (%d vs %d bytes)", m, len(want))
	}
}

// A destination below CompressBound must be rejected with ErrShortOutput
// before any bytes are written.
func TestCompressIntoShortOutput(t *testing.T) {
	data := smoothField(1000, 3)
	p := Params{ErrorBound: 1e-3}
	dst := make([]byte, CompressBound(len(data), p)-1)
	if _, err := CompressInto(dst, data, p); !errors.Is(err, ErrShortOutput) {
		t.Fatalf("short dst: got %v, want ErrShortOutput", err)
	}
}

// The lite header parsed from a real container must agree with the
// marshal side, and re-marshalling it must reproduce the fixed header.
func TestHeaderLiteRoundTrip(t *testing.T) {
	data := smoothField(4097, 5)
	p := Params{ErrorBound: 1e-3, Threads: 3}
	comp, err := Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeaderLite(comp)
	if err != nil {
		t.Fatal(err)
	}
	want := HeaderLite{ErrorBound: 1e-3, BlockSize: DefaultBlockSize, NumChunks: 3, DataLen: 4097}
	if h != want {
		t.Fatalf("ParseHeaderLite = %+v, want %+v", h, want)
	}
	// Payload bytes must be fully covered by the chunk size table.
	total := 0
	for i := 0; i < h.NumChunks; i++ {
		total += h.ChunkSize(comp, i)
	}
	if h.PayloadStart()+total != len(comp) {
		t.Fatalf("size table covers %d payload bytes, container has %d",
			total, len(comp)-h.PayloadStart())
	}
	dst := make([]byte, h.PayloadStart())
	MarshalHeaderLite(dst, h)
	for i := 0; i < h.NumChunks; i++ {
		PutChunkSize(dst, i, h.ChunkSize(comp, i))
	}
	if !bytes.Equal(dst, comp[:h.PayloadStart()]) {
		t.Fatal("MarshalHeaderLite does not reproduce the container header")
	}
}

// The lite parser is 1D-only: 2D containers must fail with ErrBadVersion
// so callers can fall back to the allocating path.
func TestHeaderLiteRejects2D(t *testing.T) {
	data := smoothField(64*64, 6)
	comp, err := Compress2D(data, 64, 64, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHeaderLite(comp); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("2D container: got %v, want ErrBadVersion", err)
	}
}

// The single-chunk steady state — the configuration every ring collective
// runs per block — must not allocate once the scratch pools are warm.
func TestCompressIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	data := smoothField(1<<14, 8)
	p := Params{ErrorBound: 1e-3}
	dst := make([]byte, CompressBound(len(data), p))
	// Warm the pools (first call may miss and allocate the scratch).
	for i := 0; i < 4; i++ {
		if _, err := CompressInto(dst, data, p); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := CompressInto(dst, data, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CompressInto allocates %v objects/op, want 0", allocs)
	}
}
