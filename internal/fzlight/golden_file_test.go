package fzlight

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*.bin from the current encoder")

// On-disk golden vectors: full containers committed under testdata/golden/
// and compared byte-for-byte against the current encoder. Unlike the
// in-code vectors above (which pin single blocks and the header layout),
// these lock the complete wire format — chunk tables, outliers, markers,
// payload packing — across 1D/2D/3D and float64 containers. If one fails,
// the format changed: bump the version byte and provide migration, don't
// regenerate blindly.

type goldenVector struct {
	name     string
	params   Params
	compress func(p Params) ([]byte, error)
	decode   func(comp []byte) (int, error) // returns element count
}

func goldenVectors() []goldenVector {
	sine := func(n int, phase float64) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = float32(math.Sin(phase + float64(i)/9))
		}
		return out
	}
	f32 := func(data []float32) func(comp []byte) (int, error) {
		return func(comp []byte) (int, error) {
			got, err := Decompress(comp)
			return len(got), err
		}
	}
	outlier := sine(128, 0.2)
	outlier[0] = 9000
	outlier[64] = -8500
	constant := make([]float32, 96)
	for i := range constant {
		constant[i] = 2.5
	}
	d64 := make([]float64, 100)
	for i := range d64 {
		d64[i] = math.Cos(float64(i) / 11)
	}
	oneD := sine(300, 0)
	twoD := sine(12*16, 0.5)
	threeD := sine(4*5*6, 1)
	return []goldenVector{
		{
			name:   "1d-sine",
			params: Params{ErrorBound: 1e-3, Threads: 2},
			compress: func(p Params) ([]byte, error) {
				return Compress(oneD, p)
			},
			decode: f32(oneD),
		},
		{
			name:   "1d-outlier",
			params: Params{ErrorBound: 1e-3},
			compress: func(p Params) ([]byte, error) {
				return Compress(outlier, p)
			},
			decode: f32(outlier),
		},
		{
			name:   "1d-constant",
			params: Params{ErrorBound: 1e-3},
			compress: func(p Params) ([]byte, error) {
				return Compress(constant, p)
			},
			decode: f32(constant),
		},
		{
			name:   "2d-ramp",
			params: Params{ErrorBound: 1e-2},
			compress: func(p Params) ([]byte, error) {
				return Compress2D(twoD, 12, 16, p)
			},
			decode: f32(twoD),
		},
		{
			name:   "3d-wave",
			params: Params{ErrorBound: 1e-2},
			compress: func(p Params) ([]byte, error) {
				return Compress3D(threeD, 4, 5, 6, p)
			},
			decode: f32(threeD),
		},
		{
			name:   "f64-cos",
			params: Params{ErrorBound: 1e-4},
			compress: func(p Params) ([]byte, error) {
				return Compress64(d64, p)
			},
			decode: func(comp []byte) (int, error) {
				got, err := Decompress64(comp)
				return len(got), err
			},
		},
	}
}

func TestGoldenFiles(t *testing.T) {
	for _, gv := range goldenVectors() {
		t.Run(gv.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", gv.name+".bin")
			comp, err := gv.compress(gv.params)
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, comp, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/fzlight -run TestGoldenFiles -update`): %v", err)
			}
			if !bytes.Equal(comp, want) {
				t.Fatalf("%s: encoder output diverged from committed wire format (%d vs %d bytes)",
					gv.name, len(comp), len(want))
			}
			// The committed bytes must also still decode.
			n, err := gv.decode(want)
			if err != nil {
				t.Fatalf("%s: committed container no longer decodes: %v", gv.name, err)
			}
			h, err := ParseHeader(want)
			if err != nil {
				t.Fatal(err)
			}
			if n != h.DataLen {
				t.Fatalf("%s: decoded %d elements, header says %d", gv.name, n, h.DataLen)
			}
		})
	}
}
