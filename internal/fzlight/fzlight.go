// Package fzlight implements the fZ-light error-bounded lossy compressor
// for float32 scientific data, the CPU-optimized compressor the hZCCL paper
// builds its homomorphic pipeline on.
//
// Design (paper §III-B2, §III-B3):
//
//   - Multi-layer block partitioning: the input is split into one large
//     contiguous chunk per thread; each chunk is subdivided into small
//     blocks of BlockSize elements. Threads always walk contiguous memory.
//   - Fused quantization + prediction: each float is quantized to
//     q = round(v / (2·eb)) and immediately delta-predicted against the
//     previous quantized value in the same chunk, in a single pass.
//   - A single 4-byte outlier per chunk: the first quantized value of the
//     chunk is stored raw; its delta slot is forced to zero so the first
//     block's code length is not inflated.
//   - Ultra-fast fixed-length encoding: per small block, a 1-byte code
//     length, packed sign bits, complete byte planes, then the residual
//     bits packed with the specialized bit-shifting routines in bitio.
//
// The format is additively homomorphic: quantized deltas and outliers are
// linear in the input, so two compressed streams with identical geometry
// can be summed block-by-block without decompression (package hzdyn).
package fzlight

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hzccl/internal/bufpool"
)

// DefaultBlockSize is the small-block length used when Params.BlockSize is
// zero. 32 elements keeps the per-block marker overhead at 1/128 of the raw
// size and lets every block use the fast (multiple-of-8) packing paths.
const DefaultBlockSize = 32

// quantLimit bounds |v|/(2·eb). Keeping quantized values below 2^29
// guarantees chunk-internal deltas fit in 31 bits and one homomorphic
// addition cannot overflow int32 magnitudes mid-stream.
const quantLimit = 1 << 29

// Errors returned by the codec.
var (
	ErrBadParams   = errors.New("fzlight: invalid parameters")
	ErrRange       = errors.New("fzlight: value exceeds quantization range (decrease precision or scale data)")
	ErrCorrupt     = errors.New("fzlight: corrupt or truncated stream")
	ErrBadMagic    = errors.New("fzlight: not an fZ-light stream")
	ErrBadVersion  = errors.New("fzlight: unsupported stream version")
	ErrNonFinite   = errors.New("fzlight: input contains NaN or Inf")
	ErrShortOutput = errors.New("fzlight: output buffer too small")
)

// Params configures compression.
type Params struct {
	// ErrorBound is the absolute error bound eb: every reconstructed value
	// differs from the original by at most eb. Must be > 0.
	ErrorBound float64
	// BlockSize is the small-block length. 0 selects DefaultBlockSize.
	// Multiples of 8 use the fast packing paths.
	BlockSize int
	// Threads is the number of chunks the input is partitioned into, each
	// compressed by its own goroutine. 0 and 1 select sequential operation
	// with a single chunk.
	Threads int
}

func (p Params) withDefaults() Params {
	if p.BlockSize == 0 {
		p.BlockSize = DefaultBlockSize
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	return p
}

func (p Params) validate() error {
	if !(p.ErrorBound > 0) || math.IsInf(p.ErrorBound, 0) {
		return fmt.Errorf("%w: ErrorBound must be a positive finite number, got %v", ErrBadParams, p.ErrorBound)
	}
	if p.BlockSize < 1 {
		return fmt.Errorf("%w: BlockSize must be >= 1, got %d", ErrBadParams, p.BlockSize)
	}
	if p.Threads < 1 {
		return fmt.Errorf("%w: Threads must be >= 1, got %d", ErrBadParams, p.Threads)
	}
	return nil
}

// ChunkBounds returns the [start, end) element range of chunk i when
// dataLen elements are partitioned into numChunks chunks. The first
// dataLen%numChunks chunks get one extra element, so chunk lengths differ
// by at most one and every chunk is contiguous (paper: thread t processes
// one chunk of length ~D/N).
func ChunkBounds(dataLen, numChunks, i int) (start, end int) {
	base := dataLen / numChunks
	extra := dataLen % numChunks
	if i < extra {
		start = i * (base + 1)
		end = start + base + 1
		return
	}
	start = extra*(base+1) + (i-extra)*base
	end = start + base
	return
}

// worstChunkBytes bounds the compressed size of a chunk of n elements with
// block size B: 4 outlier bytes plus, per block, 1 marker byte, sign bytes,
// and at most 4 bytes per value of planes+remainder.
func worstChunkBytes(n, B int) int {
	if n == 0 {
		return 4
	}
	nblocks := (n + B - 1) / B
	return 4 + nblocks*(1+(B+7)/8+8) + 4*n
}

// Compress compresses float32 data under the given parameters and returns
// a self-describing fZ-light container.
func Compress(data []float32, p Params) ([]byte, error) {
	return compressAny(data, p, false)
}

// Compress64 compresses float64 data. The container records the source
// precision; decode it with Decompress64/DecompressInto64. Containers of
// either precision are mutually homomorphic only with their own kind (the
// geometry check includes the element type).
func Compress64(data []float64, p Params) ([]byte, error) {
	return compressAny(data, p, true)
}

func compressAny[T Float](data []T, p Params, wide bool) ([]byte, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	buf := bufpool.Bytes(CompressBound(len(data), p))
	n, err := compressIntoAny(buf, data, p, wide)
	if err != nil {
		bufpool.PutBytes(buf)
		return nil, err
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	bufpool.PutBytes(buf)
	return out, nil
}

// compressChunkCount is the effective chunk count for n elements under p:
// Params.Threads clamped so no chunk is empty.
func compressChunkCount(n int, p Params) int {
	nc := p.Threads
	if nc > n {
		nc = n
	}
	if nc < 1 {
		nc = 1
	}
	return nc
}

// CompressBound returns the smallest dst length guaranteed to be
// sufficient for CompressInto of n elements under p (header plus the
// worst-case encoding of every chunk).
func CompressBound(n int, p Params) int {
	p = p.withDefaults()
	nc := compressChunkCount(n, p)
	total := headerBytes(nc)
	for i := 0; i < nc; i++ {
		s, e := ChunkBounds(n, nc, i)
		total += worstChunkBytes(e-s, p.BlockSize)
	}
	return total
}

// CompressInto compresses float32 data into dst, which must hold at least
// CompressBound(len(data), p) bytes, and returns the container size. It is
// the reusable-buffer form of Compress: with a single chunk (the
// collectives' configuration) the steady state performs zero heap
// allocations — the chunk encodes directly into dst behind an
// inline-written header, and the per-block scratch comes from bufpool.
func CompressInto(dst []byte, data []float32, p Params) (int, error) {
	return compressIntoAny(dst, data, p, false)
}

// CompressInto64 is CompressInto for float64 data (see Compress64).
func CompressInto64(dst []byte, data []float64, p Params) (int, error) {
	return compressIntoAny(dst, data, p, true)
}

func compressIntoAny[T Float](dst []byte, data []T, p Params, wide bool) (int, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return 0, err
	}
	if need := CompressBound(len(data), p); len(dst) < need {
		return 0, fmt.Errorf("%w: CompressInto needs %d bytes, got %d", ErrShortOutput, need, len(dst))
	}
	numChunks := compressChunkCount(len(data), p)
	hdr := headerBytes(numChunks)
	recip := 1 / (2 * p.ErrorBound)
	h := HeaderLite{
		ErrorBound: p.ErrorBound,
		BlockSize:  p.BlockSize,
		NumChunks:  numChunks,
		DataLen:    len(data),
		Float64:    wide,
	}

	var total int
	if numChunks == 1 {
		sp := mChunkEncodeNS.Start()
		n, err := compressChunk(dst[hdr:], data, recip, p.BlockSize)
		sp.End()
		if err != nil {
			mCompressErrs.Inc()
			return 0, err
		}
		MarshalHeaderLite(dst, h)
		PutChunkSize(dst, 0, n)
		total = n
	} else {
		// Every chunk encodes in parallel at its worst-case offset in dst;
		// the payloads are then compacted left so chunks abut (copy is a
		// memmove, safe for the overlapping forward shift).
		offs := make([]int, numChunks+1)
		sizes := make([]int, numChunks)
		errs := make([]error, numChunks)
		offs[0] = hdr
		for i := 0; i < numChunks; i++ {
			s, e := ChunkBounds(len(data), numChunks, i)
			offs[i+1] = offs[i] + worstChunkBytes(e-s, p.BlockSize)
		}
		// Capture the block size as a plain int: closing over p would move
		// the whole Params to the heap and cost the single-chunk fast path
		// its zero-allocation guarantee.
		B := p.BlockSize
		var wg sync.WaitGroup
		wg.Add(numChunks)
		for i := 0; i < numChunks; i++ {
			go func(i int) {
				defer wg.Done()
				s, e := ChunkBounds(len(data), numChunks, i)
				sp := mChunkEncodeNS.Start()
				sizes[i], errs[i] = compressChunk(dst[offs[i]:offs[i+1]], data[s:e], recip, B)
				sp.End()
			}(i)
		}
		wg.Wait()
		MarshalHeaderLite(dst, h)
		o := hdr
		for i := 0; i < numChunks; i++ {
			if errs[i] != nil {
				mCompressErrs.Inc()
				return 0, errs[i]
			}
			copy(dst[o:], dst[offs[i]:offs[i]+sizes[i]])
			PutChunkSize(dst, i, sizes[i])
			o += sizes[i]
		}
		total = o - hdr
	}
	mCompressCalls.Inc()
	mCompressRaw.Add(int64(len(data) * elemBytes(wide)))
	mCompressOut.Add(int64(hdr + total))
	mCompressOutlier.Add(int64(numChunks)) // one raw outlier per chunk
	return hdr + total, nil
}

// compressChunk writes one chunk (outlier + encoded blocks) into dst and
// returns the number of bytes written. This is the fused
// quantization+prediction+encoding loop of the paper: full 32-element
// blocks go through the branchless encodeBlock32 path; the first block
// (which hosts the chunk outlier) and tail/odd-sized blocks use the
// generic path.
func compressChunk[T Float](dst []byte, data []T, recip float64, B int) (int, error) {
	putInt32(dst, 0) // outlier placeholder
	o := 4
	if len(data) == 0 {
		return o, nil
	}
	pbuf := bufpool.Int32s(B)
	mbuf := bufpool.Uint32s(B)
	defer bufpool.PutInt32s(pbuf)
	defer bufpool.PutUint32s(mbuf)
	var mscratch [32]uint32
	var qprev int32
	first := true
	var outlier int32

	for base := 0; base < len(data); base += B {
		end := base + B
		if end > len(data) {
			end = len(data)
		}
		blk := data[base:end]
		var used int
		var err error
		if len(blk) == 32 && base > 0 {
			used, err = encodeBlock32(dst[o:], blk, recip, &qprev, &mscratch)
		} else {
			used, err = encodeBlockGeneric(dst[o:], blk, recip, &qprev, &first, &outlier, pbuf, mbuf)
		}
		if err != nil {
			return 0, err
		}
		o += used
	}
	putInt32(dst, outlier)
	return o, nil
}

// Decompress decodes a float32 container produced by Compress (or by a
// homomorphic reduction of such containers) and returns the reconstructed
// values. Use Decompress64 for containers produced by Compress64.
func Decompress(comp []byte) ([]float32, error) {
	h, err := ParseHeader(comp)
	if err != nil {
		return nil, err
	}
	out := make([]float32, h.DataLen)
	if err := DecompressInto(comp, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Decompress64 decodes a float64 container produced by Compress64.
func Decompress64(comp []byte) ([]float64, error) {
	h, err := ParseHeader(comp)
	if err != nil {
		return nil, err
	}
	out := make([]float64, h.DataLen)
	if err := DecompressInto64(comp, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ErrWrongPrecision is returned when a container's source precision does
// not match the requested decode type.
var ErrWrongPrecision = errors.New("fzlight: container precision does not match decode type")

// DecompressInto decodes comp into dst, which must hold at least
// Header.DataLen elements.
func DecompressInto(comp []byte, dst []float32) error {
	h, err := ParseHeader(comp)
	if err != nil {
		return err
	}
	if h.Float64 {
		return ErrWrongPrecision
	}
	if len(dst) < h.DataLen {
		return ErrShortOutput
	}
	switch h.Version {
	case 3:
		return decompress3D(comp, h, dst[:h.DataLen])
	case 2:
		return decompress2D(comp, h, dst[:h.DataLen])
	}
	return decompressIntoAny(comp, h, dst)
}

// DecompressInto64 decodes a float64 container into dst.
func DecompressInto64(comp []byte, dst []float64) error {
	h, err := ParseHeader(comp)
	if err != nil {
		return err
	}
	if !h.Float64 {
		return ErrWrongPrecision
	}
	if len(dst) < h.DataLen {
		return ErrShortOutput
	}
	return decompressIntoAny(comp, h, dst)
}

func decompressIntoAny[T Float](comp []byte, h *Header, dst []T) error {
	offs, err := h.chunkOffsets(len(comp))
	if err != nil {
		return err
	}
	eb2 := 2 * h.ErrorBound
	errs := make([]error, h.NumChunks)
	work := func(i int) {
		start, end := ChunkBounds(h.DataLen, h.NumChunks, i)
		sp := mChunkDecodeNS.Start()
		errs[i] = decompressChunk(comp[offs[i]:offs[i+1]], dst[start:end], eb2, h.BlockSize)
		sp.End()
	}
	if h.NumChunks == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(h.NumChunks)
		for i := 0; i < h.NumChunks; i++ {
			go func(i int) { defer wg.Done(); work(i) }(i)
		}
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			mDecompressErrs.Inc()
			return e
		}
	}
	mDecompressCalls.Inc()
	mDecompressRaw.Add(int64(h.DataLen * elemBytes(h.Float64)))
	mDecompressIn.Add(int64(len(comp)))
	return nil
}

func decompressChunk[T Float](src []byte, dst []T, eb2 float64, B int) error {
	if len(src) < 4 {
		return ErrCorrupt
	}
	acc := getInt32(src)
	o := 4
	pbuf := bufpool.Int32s(B)
	mbuf := bufpool.Uint32s(B)
	defer bufpool.PutInt32s(pbuf)
	defer bufpool.PutUint32s(mbuf)
	var mscratch [32]uint32
	for base := 0; base < len(dst); base += B {
		end := base + B
		if end > len(dst) {
			end = len(dst)
		}
		n := end - base
		if n == 32 {
			used, err := decodeBlock32(src[o:], dst[base:end], &acc, eb2, &mscratch)
			if err != nil {
				return err
			}
			o += used
			continue
		}
		used, err := DecodeBlock(src[o:], pbuf[:n], mbuf)
		if err != nil {
			return err
		}
		o += used
		blk := dst[base:end]
		for i := 0; i < n; i++ {
			acc += pbuf[i]
			blk[i] = T(eb2 * float64(acc))
		}
	}
	if o != len(src) {
		return fmt.Errorf("%w: %d trailing bytes in chunk", ErrCorrupt, len(src)-o)
	}
	return nil
}

func putInt32(b []byte, v int32) {
	u := uint32(v)
	b[0] = byte(u)
	b[1] = byte(u >> 8)
	b[2] = byte(u >> 16)
	b[3] = byte(u >> 24)
}

func getInt32(b []byte) int32 {
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}
