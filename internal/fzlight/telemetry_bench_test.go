package fzlight

import (
	"math"
	"testing"

	"hzccl/internal/telemetry"
)

func telemetryBenchData(n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i)*0.002) + 0.1*math.Sin(float64(i)*0.11))
	}
	return data
}

// Compress must advance the byte counters and the per-chunk encode span
// histogram; Decompress mirrors them.
func TestCompressTelemetryCounters(t *testing.T) {
	data := telemetryBenchData(10000)
	before := telemetry.Capture()
	comp, err := Compress(data, Params{ErrorBound: 1e-3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp); err != nil {
		t.Fatal(err)
	}
	d := telemetry.Capture().Delta(before)
	if got := d.Counters["fzlight.compress.calls"]; got != 1 {
		t.Fatalf("compress.calls = %d, want 1", got)
	}
	if got := d.Counters["fzlight.compress.raw_bytes"]; got != 4*10000 {
		t.Fatalf("compress.raw_bytes = %d, want %d", got, 4*10000)
	}
	if got := d.Counters["fzlight.compress.compressed_bytes"]; got != int64(len(comp)) {
		t.Fatalf("compress.compressed_bytes = %d, want %d", got, len(comp))
	}
	if got := d.Counters["fzlight.compress.outliers"]; got != 2 {
		t.Fatalf("compress.outliers = %d, want 2 (one per chunk)", got)
	}
	if hs := d.Histograms["fzlight.chunk.encode_ns"]; hs.Count != 2 {
		t.Fatalf("chunk.encode_ns count = %d, want 2", hs.Count)
	}
	if got := d.Counters["fzlight.decompress.raw_bytes"]; got != 4*10000 {
		t.Fatalf("decompress.raw_bytes = %d, want %d", got, 4*10000)
	}
	if hs := d.Histograms["fzlight.chunk.decode_ns"]; hs.Count != 2 {
		t.Fatalf("chunk.decode_ns count = %d, want 2", hs.Count)
	}
}

// BenchmarkCompressTelemetry compares Compress with telemetry recording
// (the default) against the disabled nop sink. The instrumentation is a
// fixed handful of atomic adds plus two clock reads per chunk, so the
// delta must vanish against the per-element encode work.
func BenchmarkCompressTelemetry(b *testing.B) {
	data := telemetryBenchData(1 << 20)
	p := Params{ErrorBound: 1e-3}
	run := func(b *testing.B) {
		b.SetBytes(int64(4 * len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Compress(data, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("on", run)
	b.Run("off", func(b *testing.B) {
		telemetry.SetEnabled(false)
		defer telemetry.SetEnabled(true)
		run(b)
	})
}

// TestCompressTelemetryOverhead bounds the telemetry overhead on the
// Compress hot path at <2%, the ISSUE's acceptance threshold. On/off
// trials are interleaved (so a transient load spike hits both sides) and
// the comparison retries before failing, because a wall-clock ratio on a
// shared machine is noisy in the false-positive direction only: telemetry
// cannot get cheaper under load.
func TestCompressTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	data := telemetryBenchData(1 << 20)
	p := Params{ErrorBound: 1e-3}
	measure := func() float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compress(data, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		var on, off float64
		for k := 0; k < 3; k++ {
			if v := measure(); on == 0 || v < on {
				on = v
			}
			telemetry.SetEnabled(false)
			v := measure()
			telemetry.SetEnabled(true)
			if off == 0 || v < off {
				off = v
			}
		}
		if off <= 0 {
			t.Fatal("degenerate baseline measurement")
		}
		overhead = on/off - 1
		t.Logf("attempt %d: telemetry on %.0fns/op, off %.0fns/op, overhead %.2f%%",
			attempt, on, off, 100*overhead)
		if overhead <= 0.02 {
			return
		}
	}
	t.Fatalf("telemetry overhead %.2f%% exceeds 2%% budget in all attempts", 100*overhead)
}
