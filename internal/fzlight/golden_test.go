package fzlight

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// Golden vectors: hand-computed encodings that pin the on-disk format.
// If any of these fail, the format changed — bump the version byte and
// provide migration, don't silently re-interpret old containers.

func TestGoldenBlockEncoding(t *testing.T) {
	// 32 prediction values: p[0]=1, p[1]=-1, rest 0.
	p := make([]int32, 32)
	p[0], p[1] = 1, -1
	dst := make([]byte, 64)
	scratch := make([]uint32, 32)
	n := EncodeBlock(dst, p, scratch)
	// code length 1; sign word has bit 1 set → 0x02,0,0,0;
	// residual bits (LSB-first): values (1,1,0,...) → first byte 0b11.
	want := []byte{
		0x01,                   // code length
		0x02, 0x00, 0x00, 0x00, // sign bits
		0x03, 0x00, 0x00, 0x00, // 1-bit magnitudes, packed
	}
	if !bytes.Equal(dst[:n], want) {
		t.Fatalf("block encoding changed:\n got %x\nwant %x", dst[:n], want)
	}
}

func TestGoldenConstantBlock(t *testing.T) {
	p := make([]int32, 32)
	dst := make([]byte, 8)
	n := EncodeBlock(dst, p, make([]uint32, 32))
	if n != 1 || dst[0] != 0 {
		t.Fatalf("constant block encoding changed: %x", dst[:n])
	}
}

func TestGoldenTwoByteCodeLength(t *testing.T) {
	// p[0] = 300 (9 bits): c=9, one byte plane + 1 residual bit per value.
	p := make([]int32, 32)
	p[0] = 300 // 0b100101100
	dst := make([]byte, 128)
	n := EncodeBlock(dst, p, make([]uint32, 32))
	want := make([]byte, 1+4+32+4)
	want[0] = 9    // code length
	want[5] = 0x2C // plane 0 of value 0: 300 & 0xFF
	want[37] = 1   // residual bit (bit 8 of 300) of value 0
	if !bytes.Equal(dst[:n], want) {
		t.Fatalf("9-bit encoding changed:\n got %x\nwant %x", dst[:n], want)
	}
}

func TestGoldenContainerHeader(t *testing.T) {
	data := make([]float32, 64) // all zeros → two constant blocks
	comp, err := Compress(data, Params{ErrorBound: 0.001, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// fixed header
	if string(comp[:4]) != "FZL1" {
		t.Fatalf("magic %q", comp[:4])
	}
	if comp[4] != 1 || comp[5] != 0 {
		t.Fatalf("version/flags %x %x", comp[4], comp[5])
	}
	if binary.LittleEndian.Uint16(comp[6:]) != 32 {
		t.Fatal("block size field")
	}
	if binary.LittleEndian.Uint64(comp[8:]) != math.Float64bits(0.001) {
		t.Fatal("error bound field")
	}
	if binary.LittleEndian.Uint32(comp[16:]) != 2 {
		t.Fatal("chunk count field")
	}
	if binary.LittleEndian.Uint64(comp[20:]) != 64 {
		t.Fatal("element count field")
	}
	// each chunk: 4-byte outlier (0) + one constant-block marker
	if binary.LittleEndian.Uint32(comp[28:]) != 5 || binary.LittleEndian.Uint32(comp[32:]) != 5 {
		t.Fatalf("chunk sizes %v %v", binary.LittleEndian.Uint32(comp[28:]), binary.LittleEndian.Uint32(comp[32:]))
	}
	wantChunk := []byte{0, 0, 0, 0, 0}
	if !bytes.Equal(comp[36:41], wantChunk) || !bytes.Equal(comp[41:46], wantChunk) {
		t.Fatalf("chunk payloads changed: %x", comp[36:])
	}
	if len(comp) != 46 {
		t.Fatalf("container length %d, want 46", len(comp))
	}
}

func TestGoldenQuantization(t *testing.T) {
	// round(v / 2eb) with eb=0.5 → q = round(v): pin the rounding rule
	// (floor(x+0.5), i.e. halfway cases round toward +inf).
	comp, err := Compress([]float32{0.5, -0.5, 1.49, -1.51}, Params{ErrorBound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 0, 1, -2} // q = 1, 0 (-0.5→floor(0)=0), 1, -2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rounding rule changed at %d: got %v want %v", i, got[i], want[i])
		}
	}
}
