package fzlight

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smoothField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = float32(math.Sin(float64(i)*0.01) + v)
	}
	return out
}

func maxAbsErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// tol returns the effective error tolerance: the quantization bound eb plus
// one float32 ulp of the data magnitude (the bound holds exactly in double
// precision; storing reconstructed values as float32 costs one rounding).
func tol(eb float64, data []float32) float64 {
	maxAbs := 0.0
	for _, v := range data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	return eb + maxAbs*math.Pow(2, -23)
}

func TestRoundTripErrorBound(t *testing.T) {
	data := smoothField(10000, 1)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		for _, threads := range []int{1, 3, 8} {
			for _, bs := range []int{32, 64, 16, 13} {
				comp, err := Compress(data, Params{ErrorBound: eb, BlockSize: bs, Threads: threads})
				if err != nil {
					t.Fatalf("Compress(eb=%g,t=%d,bs=%d): %v", eb, threads, bs, err)
				}
				got, err := Decompress(comp)
				if err != nil {
					t.Fatalf("Decompress(eb=%g,t=%d,bs=%d): %v", eb, threads, bs, err)
				}
				if len(got) != len(data) {
					t.Fatalf("length mismatch: %d vs %d", len(got), len(data))
				}
				if m := maxAbsErr(data, got); m > tol(eb, data) {
					t.Fatalf("eb=%g t=%d bs=%d: max abs err %g exceeds bound", eb, threads, bs, m)
				}
			}
		}
	}
}

func TestReconstructionIndependentOfPartitioning(t *testing.T) {
	// The reconstruction is 2·eb·round(v/2·eb) regardless of how the input
	// is chunked or blocked, so every (Threads, BlockSize) combination must
	// produce bit-identical decompressed output.
	data := smoothField(4097, 2)
	eb := 1e-3
	ref, err := Decompress(mustCompress(t, data, Params{ErrorBound: eb}))
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 5, 16} {
		for _, bs := range []int{8, 32, 100} {
			got, err := Decompress(mustCompress(t, data, Params{ErrorBound: eb, Threads: threads, BlockSize: bs}))
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("threads=%d bs=%d: reconstruction differs at %d: %v vs %v", threads, bs, i, ref[i], got[i])
				}
			}
		}
	}
}

func mustCompress(t *testing.T, data []float32, p Params) []byte {
	t.Helper()
	comp, err := Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestDeterminism(t *testing.T) {
	data := smoothField(5000, 3)
	p := Params{ErrorBound: 1e-3, Threads: 4}
	a := mustCompress(t, data, p)
	b := mustCompress(t, data, p)
	if !bytes.Equal(a, b) {
		t.Fatal("compression is not deterministic")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 31, 32, 33} {
		data := smoothField(n, int64(n))
		comp := mustCompress(t, data, Params{ErrorBound: 1e-3, Threads: 4})
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d elements", n, len(got))
		}
		if m := maxAbsErr(data, got); m > tol(1e-3, data) {
			t.Fatalf("n=%d: err %g", n, m)
		}
	}
}

func TestConstantInput(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = 42.5
	}
	comp := mustCompress(t, data, Params{ErrorBound: 1e-4})
	st, err := Stats(comp)
	if err != nil {
		t.Fatal(err)
	}
	if st.ConstantBlocks != st.Blocks {
		t.Fatalf("constant input should give all-constant blocks, got %d/%d", st.ConstantBlocks, st.Blocks)
	}
	// ~1 byte per block + header: enormous ratio
	if len(comp) > 200 {
		t.Fatalf("constant input compressed to %d bytes, expected < 200", len(comp))
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAbsErr(data, got); m > tol(1e-4, data) {
		t.Fatalf("err %g", m)
	}
}

func TestParamValidation(t *testing.T) {
	data := []float32{1, 2, 3}
	cases := []Params{
		{ErrorBound: 0},
		{ErrorBound: -1},
		{ErrorBound: math.NaN()},
		{ErrorBound: math.Inf(1)},
	}
	for _, p := range cases {
		if _, err := Compress(data, p); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: want ErrBadParams, got %v", p, err)
		}
	}
}

func TestNonFiniteInput(t *testing.T) {
	if _, err := Compress([]float32{1, float32(math.NaN())}, Params{ErrorBound: 1e-3}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
	if _, err := Compress([]float32{float32(math.Inf(1))}, Params{ErrorBound: 1e-3}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
}

func TestRangeOverflow(t *testing.T) {
	// 1e9 / (2*1e-9) far exceeds the 2^29 quantization limit.
	if _, err := Compress([]float32{1e9}, Params{ErrorBound: 1e-9}); !errors.Is(err, ErrRange) {
		t.Fatalf("want ErrRange, got %v", err)
	}
}

func TestCorruptStreams(t *testing.T) {
	data := smoothField(1000, 4)
	comp := mustCompress(t, data, Params{ErrorBound: 1e-3, Threads: 2})

	if _, err := Decompress(comp[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Decompress(comp[:len(comp)-5]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), comp...)
	copy(bad, "XXXX")
	if _, err := Decompress(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	bad = append([]byte(nil), comp...)
	bad[4] = 99
	if _, err := Decompress(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("nil input accepted")
	}
}

func TestDecompressIntoShortBuffer(t *testing.T) {
	data := smoothField(100, 5)
	comp := mustCompress(t, data, Params{ErrorBound: 1e-3})
	if err := DecompressInto(comp, make([]float32, 10)); !errors.Is(err, ErrShortOutput) {
		t.Fatalf("want ErrShortOutput, got %v", err)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, d := range []int{0, 1, 7, 100, 101, 1023} {
		for _, n := range []int{1, 2, 3, 7, 16} {
			if n > d && d > 0 {
				continue
			}
			if d == 0 && n > 1 {
				continue
			}
			prevEnd := 0
			minLen, maxLen := 1<<30, 0
			for i := 0; i < n; i++ {
				s, e := ChunkBounds(d, n, i)
				if s != prevEnd {
					t.Fatalf("d=%d n=%d chunk %d: gap (start %d, prev end %d)", d, n, i, s, prevEnd)
				}
				l := e - s
				if l < minLen {
					minLen = l
				}
				if l > maxLen {
					maxLen = l
				}
				prevEnd = e
			}
			if prevEnd != d {
				t.Fatalf("d=%d n=%d: chunks end at %d", d, n, prevEnd)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("d=%d n=%d: unbalanced chunks (%d..%d)", d, n, minLen, maxLen)
			}
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	data := smoothField(777, 6)
	p := Params{ErrorBound: 2.5e-4, BlockSize: 48, Threads: 3}
	comp := mustCompress(t, data, p)
	h, err := ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.ErrorBound != p.ErrorBound || h.BlockSize != p.BlockSize || h.NumChunks != 3 || h.DataLen != 777 {
		t.Fatalf("header mismatch: %+v", h)
	}
}

func TestStatsCoverStream(t *testing.T) {
	data := smoothField(10000, 7)
	comp := mustCompress(t, data, Params{ErrorBound: 1e-3, Threads: 4})
	st, err := Stats(comp)
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := 0
	for i := 0; i < 4; i++ {
		s, e := ChunkBounds(10000, 4, i)
		wantBlocks += (e - s + DefaultBlockSize - 1) / DefaultBlockSize
	}
	if st.Blocks != wantBlocks {
		t.Fatalf("Stats counted %d blocks, want %d", st.Blocks, wantBlocks)
	}
	sum := 0
	for _, c := range st.CodeLenHist {
		sum += c
	}
	if sum != st.Blocks {
		t.Fatalf("histogram sums to %d, want %d", sum, st.Blocks)
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{32, 8, 5, 1} {
		for trial := 0; trial < 50; trial++ {
			p := make([]int32, n)
			shift := uint(rng.Intn(28))
			for i := range p {
				p[i] = int32(rng.Intn(1<<shift)) - int32(rng.Intn(1<<shift))
			}
			dst := make([]byte, 1+5*n+16)
			scratch := make([]uint32, n)
			wrote := EncodeBlock(dst, p, scratch)
			got := make([]int32, n)
			used, err := DecodeBlock(dst[:wrote], got, scratch)
			if err != nil {
				t.Fatal(err)
			}
			if used != wrote {
				t.Fatalf("encode wrote %d, decode used %d", wrote, used)
			}
			for i := range p {
				if got[i] != p[i] {
					t.Fatalf("block codec mismatch at %d: %d vs %d", i, got[i], p[i])
				}
			}
		}
	}
}

// Property: for arbitrary finite inputs within range, the error bound holds
// and decompression inverts compression structurally.
func TestPropertyErrorBound(t *testing.T) {
	f := func(vals []float32, ebSeed uint8) bool {
		eb := []float64{1e-1, 1e-2, 1e-3, 1e-4}[ebSeed%4]
		clean := make([]float32, 0, len(vals))
		for _, v := range vals {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) || math.Abs(f64) > 1e4 {
				continue
			}
			clean = append(clean, v)
		}
		comp, err := Compress(clean, Params{ErrorBound: eb, Threads: 2})
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxAbsErr(clean, got) <= tol(eb, clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
