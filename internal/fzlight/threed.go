package fzlight

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hzccl/internal/bufpool"
)

// 3D support (format version 3). The paper's application data is
// three-dimensional (RTM 449×449×235, NYX 512³, Hurricane 100×500×500);
// the 3D Lorenzo predictor
//
//	r(z,y,x) = q(z,y,x) − q(z,y,x−1) − q(z,y−1,x) + q(z,y−1,x−1)
//	           − q(z−1,y,x) + q(z−1,y,x−1) + q(z−1,y−1,x) − q(z−1,y−1,x−1)
//
// is, like its 1D and 2D relatives, linear in the quantized values, so
// version-3 containers remain additively homomorphic and hzdyn operates on
// them unchanged. Chunks partition z-planes; the first plane of each chunk
// falls back to the 2D stencil, its first row to the 1D delta.
//
//	version-3 fixed header = version-1 fields + uint32 width + uint32 height
const fixedHeader3 = 36

// Compress3D compresses a depth×height×width field (x fastest) with the
// 3D Lorenzo predictor. p.Threads partitions z-planes.
func Compress3D(data []float32, depth, height, width int, p Params) ([]byte, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if depth < 0 || height < 0 || width < 0 || depth*height*width != len(data) {
		return nil, fmt.Errorf("%w: dims %dx%dx%d for %d values", ErrBadParams, depth, height, width, len(data))
	}
	if width == 0 {
		width = 1
	}
	if height == 0 {
		height = 1
	}
	numChunks := p.Threads
	if numChunks > depth {
		numChunks = depth
	}
	if numChunks < 1 {
		numChunks = 1
	}
	h := Header{
		ErrorBound: p.ErrorBound,
		BlockSize:  p.BlockSize,
		NumChunks:  numChunks,
		DataLen:    len(data),
		Version:    3,
		Width:      width,
		Height:     height,
		ChunkSizes: make([]uint32, numChunks),
	}
	plane := width * height

	chunks := make([][]byte, numChunks)
	bufs := make([][]byte, numChunks)
	errs := make([]error, numChunks)
	recip := 1 / (2 * p.ErrorBound)

	work := func(i int) {
		zs, ze := ChunkBounds(depth, numChunks, i)
		n := (ze - zs) * plane
		buf := bufpool.Bytes(worstChunkBytes(n, p.BlockSize))
		bufs[i] = buf
		written, err := compressChunk3D(buf, data[zs*plane:ze*plane], width, height, recip, p.BlockSize)
		chunks[i] = buf[:written]
		errs[i] = err
	}
	if numChunks == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(numChunks)
		for i := 0; i < numChunks; i++ {
			go func(i int) { defer wg.Done(); work(i) }(i)
		}
		wg.Wait()
	}
	total := 0
	for i, c := range chunks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		h.ChunkSizes[i] = uint32(len(c))
		total += len(c)
	}
	out := make([]byte, headerBytes3(numChunks)+total)
	o := h.marshal3(out)
	for i, c := range chunks {
		o += copy(out[o:], c)
		bufpool.PutBytes(bufs[i])
	}
	return out[:o], nil
}

func headerBytes3(numChunks int) int { return fixedHeader3 + 4*numChunks }

func (h *Header) marshal3(dst []byte) int {
	copy(dst, magic)
	dst[4] = 3
	dst[5] = 0
	binary.LittleEndian.PutUint16(dst[6:], uint16(h.BlockSize))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(h.ErrorBound))
	binary.LittleEndian.PutUint32(dst[16:], uint32(h.NumChunks))
	binary.LittleEndian.PutUint64(dst[20:], uint64(h.DataLen))
	binary.LittleEndian.PutUint32(dst[28:], uint32(h.Width))
	binary.LittleEndian.PutUint32(dst[32:], uint32(h.Height))
	o := fixedHeader3
	for _, s := range h.ChunkSizes {
		binary.LittleEndian.PutUint32(dst[o:], s)
		o += 4
	}
	return o
}

// lorenzoResiduals3D computes the residual stream of a z-band in place.
func lorenzoResiduals3D(q []int32, width, height int) []int32 {
	plane := width * height
	planes := len(q) / plane
	res := make([]int32, len(q))
	// plane 0: 2D Lorenzo (first row 1D delta with res[0]=0 for the outlier)
	for j := 1; j < width; j++ {
		res[j] = q[j] - q[j-1]
	}
	for y := 1; y < height; y++ {
		row := y * width
		prev := row - width
		res[row] = q[row] - q[prev]
		for x := 1; x < width; x++ {
			res[row+x] = q[row+x] - q[row+x-1] - q[prev+x] + q[prev+x-1]
		}
	}
	for z := 1; z < planes; z++ {
		p0 := z * plane
		pz := p0 - plane
		// corner
		res[p0] = q[p0] - q[pz]
		// first row (y=0): 2D stencil across x and z
		for x := 1; x < width; x++ {
			res[p0+x] = q[p0+x] - q[p0+x-1] - q[pz+x] + q[pz+x-1]
		}
		for y := 1; y < height; y++ {
			row := p0 + y*width
			prow := row - width
			zrow := row - plane
			zprow := zrow - width
			// first column (x=0): 2D stencil across y and z
			res[row] = q[row] - q[prow] - q[zrow] + q[zprow]
			for x := 1; x < width; x++ {
				res[row+x] = q[row+x] - q[row+x-1] - q[prow+x] + q[prow+x-1] -
					q[zrow+x] + q[zrow+x-1] + q[zprow+x] - q[zprow+x-1]
			}
		}
	}
	return res
}

// invertLorenzo3D reconstructs quantized values from residuals (the exact
// inverse of lorenzoResiduals3D given the outlier in slot 0).
func invertLorenzo3D(res []int32, outlier int32, width, height int) []int32 {
	plane := width * height
	planes := len(res) / plane
	q := make([]int32, len(res))
	q[0] = outlier
	for j := 1; j < width; j++ {
		q[j] = q[j-1] + res[j]
	}
	for y := 1; y < height; y++ {
		row := y * width
		prev := row - width
		q[row] = q[prev] + res[row]
		for x := 1; x < width; x++ {
			q[row+x] = res[row+x] + q[row+x-1] + q[prev+x] - q[prev+x-1]
		}
	}
	for z := 1; z < planes; z++ {
		p0 := z * plane
		pz := p0 - plane
		q[p0] = q[pz] + res[p0]
		for x := 1; x < width; x++ {
			q[p0+x] = res[p0+x] + q[p0+x-1] + q[pz+x] - q[pz+x-1]
		}
		for y := 1; y < height; y++ {
			row := p0 + y*width
			prow := row - width
			zrow := row - plane
			zprow := zrow - width
			q[row] = res[row] + q[prow] + q[zrow] - q[zprow]
			for x := 1; x < width; x++ {
				q[row+x] = res[row+x] + q[row+x-1] + q[prow+x] - q[prow+x-1] +
					q[zrow+x] - q[zrow+x-1] - q[zprow+x] + q[zprow+x-1]
			}
		}
	}
	return q
}

func compressChunk3D(dst []byte, band []float32, width, height int, recip float64, B int) (int, error) {
	putInt32(dst, 0)
	o := 4
	if len(band) == 0 {
		return o, nil
	}
	q := make([]int32, len(band))
	for i, v := range band {
		x := float64(v) * recip
		if !(x > -quantLimit && x < quantLimit) {
			return 0, quantErr(x)
		}
		q[i] = int32(math.Floor(x + 0.5))
	}
	outlier := q[0]
	res := lorenzoResiduals3D(q, width, height)
	res[0] = 0

	scratch := make([]uint32, B)
	for base := 0; base < len(res); base += B {
		end := base + B
		if end > len(res) {
			end = len(res)
		}
		o += EncodeBlock(dst[o:], res[base:end], scratch)
	}
	putInt32(dst, outlier)
	return o, nil
}

func decompressChunk3D(src []byte, dst []float32, width, height int, eb2 float64, B int) error {
	if len(src) < 4 {
		return ErrCorrupt
	}
	outlier := getInt32(src)
	o := 4
	if len(dst) == 0 {
		if o != len(src) {
			return ErrCorrupt
		}
		return nil
	}
	res := make([]int32, len(dst))
	scratch := make([]uint32, B)
	for base := 0; base < len(res); base += B {
		end := base + B
		if end > len(res) {
			end = len(res)
		}
		used, err := DecodeBlock(src[o:], res[base:end], scratch)
		if err != nil {
			return err
		}
		o += used
	}
	if o != len(src) {
		return fmt.Errorf("%w: %d trailing bytes in chunk", ErrCorrupt, len(src)-o)
	}
	q := invertLorenzo3D(res, outlier, width, height)
	for i, v := range q {
		dst[i] = float32(eb2 * float64(v))
	}
	return nil
}

func parseHeader3(comp []byte) (*Header, error) {
	if len(comp) < fixedHeader3 {
		return nil, ErrCorrupt
	}
	rawLen := binary.LittleEndian.Uint64(comp[20:])
	h := &Header{
		Version:    3,
		BlockSize:  int(binary.LittleEndian.Uint16(comp[6:])),
		ErrorBound: math.Float64frombits(binary.LittleEndian.Uint64(comp[8:])),
		NumChunks:  int(binary.LittleEndian.Uint32(comp[16:])),
		Width:      int(binary.LittleEndian.Uint32(comp[28:])),
		Height:     int(binary.LittleEndian.Uint32(comp[32:])),
	}
	if h.BlockSize < 1 || h.NumChunks < 1 || h.Width < 1 || h.Height < 1 {
		return nil, ErrCorrupt
	}
	if !(h.ErrorBound > 0) {
		return nil, ErrCorrupt
	}
	payload := uint64(len(comp) - fixedHeader3)
	if uint64(h.NumChunks) > payload/8 {
		return nil, ErrCorrupt
	}
	if rawLen > payload*uint64(h.BlockSize) {
		return nil, ErrCorrupt
	}
	h.DataLen = int(rawLen)
	plane := h.Width * h.Height
	if plane <= 0 || h.DataLen%plane != 0 {
		return nil, ErrCorrupt
	}
	depth := h.DataLen / plane
	if h.DataLen > 0 && h.NumChunks > depth {
		return nil, ErrCorrupt
	}
	if len(comp) < headerBytes3(h.NumChunks) {
		return nil, ErrCorrupt
	}
	h.ChunkSizes = make([]uint32, h.NumChunks)
	o := fixedHeader3
	for i := range h.ChunkSizes {
		h.ChunkSizes[i] = binary.LittleEndian.Uint32(comp[o:])
		o += 4
	}
	return h, nil
}

func (h *Header) chunkOffsets3(compLen int) ([]int, error) {
	offs := make([]int, h.NumChunks+1)
	o := headerBytes3(h.NumChunks)
	for i, s := range h.ChunkSizes {
		offs[i] = o
		o += int(s)
		if o > compLen {
			return nil, ErrCorrupt
		}
	}
	offs[h.NumChunks] = o
	if o != compLen {
		return nil, fmt.Errorf("%w: container size %d, chunks end at %d", ErrCorrupt, compLen, o)
	}
	return offs, nil
}

func decompress3D(comp []byte, h *Header, dst []float32) error {
	offs, err := h.chunkOffsets3(len(comp))
	if err != nil {
		return err
	}
	plane := h.Width * h.Height
	depth := 0
	if plane > 0 {
		depth = h.DataLen / plane
	}
	eb2 := 2 * h.ErrorBound
	errs := make([]error, h.NumChunks)
	work := func(i int) {
		zs, ze := ChunkBounds(depth, h.NumChunks, i)
		errs[i] = decompressChunk3D(comp[offs[i]:offs[i+1]], dst[zs*plane:ze*plane],
			h.Width, h.Height, eb2, h.BlockSize)
	}
	if h.NumChunks == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(h.NumChunks)
		for i := 0; i < h.NumChunks; i++ {
			go func(i int) { defer wg.Done(); work(i) }(i)
		}
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
