package fzlight

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// image builds a height×width field with smooth 2D structure plus noise.
func image(h, w int, seed int64, noise float64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			v := math.Sin(float64(i)*0.05)*math.Cos(float64(j)*0.05)*10 +
				float64(i)*0.01 + rng.NormFloat64()*noise
			out[i*w+j] = float32(v)
		}
	}
	return out
}

func TestCompress2DRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {100, 37}, {1, 50}, {50, 1}, {3, 3}} {
		h, w := dims[0], dims[1]
		data := image(h, w, 1, 0.001)
		for _, threads := range []int{1, 3} {
			for _, eb := range []float64{1e-2, 1e-3} {
				comp, err := Compress2D(data, h, w, Params{ErrorBound: eb, Threads: threads})
				if err != nil {
					t.Fatalf("%dx%d eb=%g: %v", h, w, eb, err)
				}
				got, err := Decompress(comp)
				if err != nil {
					t.Fatalf("%dx%d eb=%g: %v", h, w, eb, err)
				}
				if len(got) != h*w {
					t.Fatalf("got %d elems want %d", len(got), h*w)
				}
				if m := maxAbsErr(data, got); m > tol(eb, data) {
					t.Fatalf("%dx%d eb=%g threads=%d: err %g", h, w, eb, threads, m)
				}
			}
		}
	}
}

func TestCompress2DEmpty(t *testing.T) {
	comp, err := Compress2D(nil, 0, 0, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d", len(got))
	}
}

func TestCompress2DValidation(t *testing.T) {
	data := make([]float32, 12)
	if _, err := Compress2D(data, 3, 5, Params{ErrorBound: 1e-3}); !errors.Is(err, ErrBadParams) {
		t.Errorf("dims mismatch: %v", err)
	}
	if _, err := Compress2D(data, -3, -4, Params{ErrorBound: 1e-3}); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative dims: %v", err)
	}
	if _, err := Compress2D(data, 3, 4, Params{}); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero bound: %v", err)
	}
}

// The 2D Lorenzo predictor must beat the 1D delta on fields with strong
// vertical structure — the reason the extension exists.
func TestLorenzo2DBeats1DOnImages(t *testing.T) {
	h, w := 256, 256
	// Vertical gradient dominates: every row is the previous row shifted.
	data := make([]float32, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			data[i*w+j] = float32(math.Sin(float64(j)*0.3)*50 + float64(i)*0.5)
		}
	}
	eb := 1e-3
	c1, err := Compress(data, Params{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compress2D(data, h, w, Params{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2) >= len(c1) {
		t.Fatalf("2D (%d bytes) should beat 1D (%d bytes) on row-repetitive data", len(c2), len(c1))
	}
}

func TestHeader2RoundTrip(t *testing.T) {
	data := image(40, 30, 2, 0.01)
	comp, err := Compress2D(data, 40, 30, Params{ErrorBound: 1e-3, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Width != 30 || h.DataLen != 1200 || h.NumChunks != 4 {
		t.Fatalf("header %+v", h)
	}
	// chunk element ranges cover the data in row multiples
	prev := 0
	for i := 0; i < h.NumChunks; i++ {
		s, e := ChunkElemRange(h, i)
		if s != prev || (e-s)%30 != 0 {
			t.Fatalf("chunk %d range [%d,%d)", i, s, e)
		}
		prev = e
	}
	if prev != 1200 {
		t.Fatalf("chunks end at %d", prev)
	}
	st, err := Stats(comp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks == 0 {
		t.Fatal("no blocks counted")
	}
}

func TestCompress2DDeterministicReconstruction(t *testing.T) {
	// As in 1D, reconstruction must not depend on the thread partitioning.
	data := image(64, 48, 3, 0.01)
	ref, err := Decompress(mustCompress2D(t, data, 64, 48, Params{ErrorBound: 1e-3, Threads: 1}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(mustCompress2D(t, data, 64, 48, Params{ErrorBound: 1e-3, Threads: 5}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("partitioning changed 2D reconstruction at %d", i)
		}
	}
}

func mustCompress2D(t *testing.T, data []float32, h, w int, p Params) []byte {
	t.Helper()
	comp, err := Compress2D(data, h, w, p)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestCorrupt2DStreams(t *testing.T) {
	data := image(32, 32, 4, 0.01)
	comp := mustCompress2D(t, data, 32, 32, Params{ErrorBound: 1e-3, Threads: 2})
	if _, err := Decompress(comp[:16]); err == nil {
		t.Error("truncated v2 header accepted")
	}
	if _, err := Decompress(comp[:len(comp)-3]); err == nil {
		t.Error("truncated v2 payload accepted")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		bad := append([]byte(nil), comp...)
		pos := rng.Intn(len(bad))
		bad[pos] ^= byte(1 + rng.Intn(255))
		_, _ = Decompress(bad) // must not panic
	}
}
