package fzlight

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hzccl/internal/bufpool"
)

// 2D support (format version 2). The paper's future work calls for
// tailoring the compression to application data characteristics; for
// image-like fields (CESM-ATM slices, stacked exposures) the 1D delta
// leaves vertical structure on the table. Version-2 containers use the 2D
// Lorenzo predictor
//
//	r(i,j) = q(i,j) − q(i,j−1) − q(i−1,j) + q(i−1,j−1)
//
// which — like the 1D delta — is *linear* in the quantized values, so
// version-2 streams remain additively homomorphic: hzdyn.Add works on
// them unchanged, block by block, and Decompress(Add(a,b)) still equals
// Decompress(a)+Decompress(b) exactly in the quantized domain.
//
// Chunks partition rows (each chunk is a contiguous band of rows,
// predicted independently), so multi-threaded compression, parallel
// decompression and per-chunk homomorphic reduction all carry over.
//
//	version-2 fixed header = version-1 fields + uint32 width
const fixedHeader2 = 32

// Compress2D compresses a row-major height×width field with the 2D
// Lorenzo predictor. p.Threads partitions rows.
func Compress2D(data []float32, height, width int, p Params) ([]byte, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if height < 0 || width < 0 || height*width != len(data) {
		return nil, fmt.Errorf("%w: dims %dx%d for %d values", ErrBadParams, height, width, len(data))
	}
	if width == 0 {
		width = 1 // degenerate empty container; keeps the header valid
	}
	numChunks := p.Threads
	if numChunks > height {
		numChunks = height
	}
	if numChunks < 1 {
		numChunks = 1
	}
	h := Header{
		ErrorBound: p.ErrorBound,
		BlockSize:  p.BlockSize,
		NumChunks:  numChunks,
		DataLen:    len(data),
		Version:    2,
		Width:      width,
		ChunkSizes: make([]uint32, numChunks),
	}

	chunks := make([][]byte, numChunks)
	bufs := make([][]byte, numChunks)
	errs := make([]error, numChunks)
	recip := 1 / (2 * p.ErrorBound)

	work := func(i int) {
		rs, re := ChunkBounds(height, numChunks, i)
		n := (re - rs) * width
		buf := bufpool.Bytes(worstChunkBytes(n, p.BlockSize))
		bufs[i] = buf
		written, err := compressChunk2D(buf, data[rs*width:re*width], width, recip, p.BlockSize)
		chunks[i] = buf[:written]
		errs[i] = err
	}
	if numChunks == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(numChunks)
		for i := 0; i < numChunks; i++ {
			go func(i int) { defer wg.Done(); work(i) }(i)
		}
		wg.Wait()
	}
	total := 0
	for i, c := range chunks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		h.ChunkSizes[i] = uint32(len(c))
		total += len(c)
	}
	out := make([]byte, headerBytes2(numChunks)+total)
	o := h.marshal2(out)
	for i, c := range chunks {
		o += copy(out[o:], c)
		bufpool.PutBytes(bufs[i])
	}
	return out[:o], nil
}

func headerBytes2(numChunks int) int { return fixedHeader2 + 4*numChunks }

func (h *Header) marshal2(dst []byte) int {
	copy(dst, magic)
	dst[4] = 2
	dst[5] = 0
	binary.LittleEndian.PutUint16(dst[6:], uint16(h.BlockSize))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(h.ErrorBound))
	binary.LittleEndian.PutUint32(dst[16:], uint32(h.NumChunks))
	binary.LittleEndian.PutUint64(dst[20:], uint64(h.DataLen))
	binary.LittleEndian.PutUint32(dst[28:], uint32(h.Width))
	o := fixedHeader2
	for _, s := range h.ChunkSizes {
		binary.LittleEndian.PutUint32(dst[o:], s)
		o += 4
	}
	return o
}

// compressChunk2D encodes a band of rows: the first row of the band uses
// the 1D delta (bands are independent), later rows the 2D Lorenzo
// predictor. Residuals stream through the same block encoder as 1D.
func compressChunk2D(dst []byte, band []float32, width int, recip float64, B int) (int, error) {
	putInt32(dst, 0)
	o := 4
	if len(band) == 0 {
		return o, nil
	}
	rows := len(band) / width
	q := make([]int32, len(band)) // quantized values, needed for row context
	// Quantize everything first (the row predictor needs random access to
	// the previous row).
	for i, v := range band {
		x := float64(v) * recip
		if !(x > -quantLimit && x < quantLimit) {
			return 0, quantErr(x)
		}
		q[i] = int32(math.Floor(x + 0.5))
	}
	outlier := q[0]

	// Residual stream in scan order.
	res := make([]int32, len(band))
	for j := 0; j < width; j++ {
		if j == 0 {
			res[0] = 0 // outlier slot
		} else {
			res[j] = q[j] - q[j-1]
		}
	}
	for i := 1; i < rows; i++ {
		row := i * width
		prev := row - width
		res[row] = q[row] - q[prev] // first column: vertical delta
		for j := 1; j < width; j++ {
			res[row+j] = q[row+j] - q[row+j-1] - q[prev+j] + q[prev+j-1]
		}
	}

	// Block-encode the residual stream.
	scratch := make([]uint32, B)
	var mscratch [32]uint32
	for base := 0; base < len(res); base += B {
		end := base + B
		if end > len(res) {
			end = len(res)
		}
		blk := res[base:end]
		if len(blk) == 32 {
			o += encodeResiduals32(dst[o:], blk, &mscratch)
		} else {
			o += EncodeBlock(dst[o:], blk, scratch)
		}
	}
	putInt32(dst, outlier)
	return o, nil
}

// encodeResiduals32 encodes 32 already-computed residuals (EncodeBlock's
// fast path without the generic-length preamble).
func encodeResiduals32(dst []byte, p []int32, mscratch *[32]uint32) int {
	return EncodeBlock(dst, p, mscratch[:])
}

// decompressChunk2D reverses compressChunk2D.
func decompressChunk2D(src []byte, dst []float32, width int, eb2 float64, B int) error {
	if len(src) < 4 {
		return ErrCorrupt
	}
	outlier := getInt32(src)
	o := 4
	if len(dst) == 0 {
		if o != len(src) {
			return ErrCorrupt
		}
		return nil
	}
	rows := len(dst) / width
	res := make([]int32, len(dst))
	scratch := make([]uint32, B)
	for base := 0; base < len(res); base += B {
		end := base + B
		if end > len(res) {
			end = len(res)
		}
		used, err := DecodeBlock(src[o:], res[base:end], scratch)
		if err != nil {
			return err
		}
		o += used
	}
	if o != len(src) {
		return fmt.Errorf("%w: %d trailing bytes in chunk", ErrCorrupt, len(src)-o)
	}
	// Invert the predictor: first row is a prefix sum from the outlier,
	// later rows invert the Lorenzo stencil.
	q := make([]int32, len(dst))
	q[0] = outlier
	for j := 1; j < width; j++ {
		q[j] = q[j-1] + res[j]
	}
	for i := 1; i < rows; i++ {
		row := i * width
		prev := row - width
		q[row] = q[prev] + res[row]
		for j := 1; j < width; j++ {
			q[row+j] = res[row+j] + q[row+j-1] + q[prev+j] - q[prev+j-1]
		}
	}
	for i, v := range q {
		dst[i] = float32(eb2 * float64(v))
	}
	return nil
}

// parseHeader2 decodes a version-2 header (caller verified magic+version).
func parseHeader2(comp []byte) (*Header, error) {
	if len(comp) < fixedHeader2 {
		return nil, ErrCorrupt
	}
	rawLen := binary.LittleEndian.Uint64(comp[20:])
	h := &Header{
		Version:    2,
		BlockSize:  int(binary.LittleEndian.Uint16(comp[6:])),
		ErrorBound: math.Float64frombits(binary.LittleEndian.Uint64(comp[8:])),
		NumChunks:  int(binary.LittleEndian.Uint32(comp[16:])),
		Width:      int(binary.LittleEndian.Uint32(comp[28:])),
	}
	if h.BlockSize < 1 || h.NumChunks < 1 || h.Width < 1 {
		return nil, ErrCorrupt
	}
	if !(h.ErrorBound > 0) {
		return nil, ErrCorrupt
	}
	payload := uint64(len(comp) - fixedHeader2)
	if uint64(h.NumChunks) > payload/8 {
		return nil, ErrCorrupt
	}
	if rawLen > payload*uint64(h.BlockSize) {
		return nil, ErrCorrupt
	}
	h.DataLen = int(rawLen)
	if h.DataLen%h.Width != 0 {
		return nil, ErrCorrupt
	}
	rows := h.DataLen / h.Width
	if h.DataLen > 0 && h.NumChunks > rows {
		return nil, ErrCorrupt
	}
	if len(comp) < headerBytes2(h.NumChunks) {
		return nil, ErrCorrupt
	}
	h.ChunkSizes = make([]uint32, h.NumChunks)
	o := fixedHeader2
	for i := range h.ChunkSizes {
		h.ChunkSizes[i] = binary.LittleEndian.Uint32(comp[o:])
		o += 4
	}
	return h, nil
}

// chunkOffsets2 mirrors chunkOffsets for version-2 headers.
func (h *Header) chunkOffsets2(compLen int) ([]int, error) {
	offs := make([]int, h.NumChunks+1)
	o := headerBytes2(h.NumChunks)
	for i, s := range h.ChunkSizes {
		offs[i] = o
		o += int(s)
		if o > compLen {
			return nil, ErrCorrupt
		}
	}
	offs[h.NumChunks] = o
	if o != compLen {
		return nil, fmt.Errorf("%w: container size %d, chunks end at %d", ErrCorrupt, compLen, o)
	}
	return offs, nil
}

// decompress2D decodes a version-2 container into dst.
func decompress2D(comp []byte, h *Header, dst []float32) error {
	offs, err := h.chunkOffsets2(len(comp))
	if err != nil {
		return err
	}
	rows := 0
	if h.Width > 0 {
		rows = h.DataLen / h.Width
	}
	eb2 := 2 * h.ErrorBound
	errs := make([]error, h.NumChunks)
	work := func(i int) {
		rs, re := ChunkBounds(rows, h.NumChunks, i)
		errs[i] = decompressChunk2D(comp[offs[i]:offs[i+1]], dst[rs*h.Width:re*h.Width],
			h.Width, eb2, h.BlockSize)
	}
	if h.NumChunks == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(h.NumChunks)
		for i := 0; i < h.NumChunks; i++ {
			go func(i int) { defer wg.Done(); work(i) }(i)
		}
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
