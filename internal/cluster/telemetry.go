package cluster

import "hzccl/internal/telemetry"

// Recovery telemetry. The reliable-delivery layer counts every NACK it
// issues, every replay actually delivered, every silently deduplicated
// message (duplicate sequence numbers and stale-epoch traffic from
// abandoned attempts), and every replay request that missed the sender's
// bounded window. Together with the collective-level degradation counter
// these drive the acceptance checks for self-healing runs.
var (
	mRetransmits   = telemetry.C("cluster.retransmits")
	mNacks         = telemetry.C("cluster.nacks")
	mDedups        = telemetry.C("cluster.dedups")
	mRetxEvictions = telemetry.C("cluster.retx_window_evictions")
)
