package cluster

import "hzccl/internal/telemetry"

// Recovery telemetry. The reliable-delivery layer counts every NACK it
// issues, every replay actually delivered, every silently deduplicated
// message (duplicate sequence numbers and stale-epoch traffic from
// abandoned attempts), and every replay request that missed the sender's
// bounded window. Together with the collective-level degradation counter
// these drive the acceptance checks for self-healing runs.
var (
	mRetransmits   = telemetry.C("cluster.retransmits")
	mNacks         = telemetry.C("cluster.nacks")
	mDedups        = telemetry.C("cluster.dedups")
	mRetxEvictions = telemetry.C("cluster.retx_window_evictions")
)

// Failure-detector telemetry. The elastic-membership layer counts every
// rank that transitions into the suspected state (a receive from it timed
// out or exhausted its retry budget), every suspicion confirmed into a
// death (connection reset, rank body error, or transport close), and
// every rank actually evicted by a membership-shrink consensus round.
var (
	mSuspects  = telemetry.C("cluster.suspects")
	mConfirms  = telemetry.C("cluster.confirms")
	mEvictions = telemetry.C("cluster.evictions")
)

// Transport telemetry. The TCP backend counts every outbound connection
// it establishes (dials), every inbound one it admits (accepts), every
// failed dial attempt that was retried while the mesh formed
// (reconnects), and the framed bytes that actually crossed the wire in
// each direction — the observable difference between the simulated
// fabric and a real one.
var (
	mTransportDials      = telemetry.C("cluster.transport.dials")
	mTransportAccepts    = telemetry.C("cluster.transport.accepts")
	mTransportReconnects = telemetry.C("cluster.transport.reconnects")
	mTransportBytesOut   = telemetry.C("cluster.transport.bytes_out")
	mTransportBytesIn    = telemetry.C("cluster.transport.bytes_in")
	mTransportJobFrames  = telemetry.C("cluster.transport.job_frames")
)

// flight is the process-global flight recorder: every send, delivery,
// NACK, retransmission, dedup, epoch advance, consensus round,
// degradation move and injected fault leaves a structured event in its
// lock-free ring, dumped on collective failure or via the /flightrecorder
// endpoint. Recording is allocation-free and gated on the telemetry
// enabled flag.
var flight = telemetry.Flight()
