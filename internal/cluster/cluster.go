// Package cluster is the communication substrate hZCCL runs on in this
// reproduction: a message-passing runtime that stands in for MPI over a
// 100 Gbps fabric.
//
// Each rank has its own virtual clock. Point-to-point sends move real
// bytes through a pluggable Transport — by default an in-process channel
// fabric where every rank is a goroutine, or a TCP mesh where every rank
// is its own OS process (see transport.go) — while *time* is charged
// through a LogP-style (α, β) model: receiving a message completes at
//
//	max(receiver clock, sender clock at send + α + bytes/β)
//
// which is the same analytic model the paper's Section III-C cost
// equations use. Compute is charged either as measured wall time of the
// actual work (optionally scaled, to model multi-threaded compression on
// this single-core build machine) or as an explicit duration.
//
// The per-rank clock advance is tracked per category (CPR, DPR, CPT, HPR,
// MPI, OTHER) so the Figure 2 / Table VII runtime breakdowns fall out of
// any collective run for free.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hzccl/internal/bufpool"
	"hzccl/internal/telemetry"
)

// Category labels where virtual time went, matching the paper's breakdown
// buckets.
type Category string

// Breakdown categories.
const (
	CatCPR   Category = "CPR"   // compression
	CatDPR   Category = "DPR"   // decompression
	CatCPT   Category = "CPT"   // reduction arithmetic on raw values
	CatHPR   Category = "HPR"   // homomorphic reduction on compressed data
	CatMPI   Category = "MPI"   // communication (network model)
	CatOther Category = "OTHER" // everything else (packing, bookkeeping)
)

// Categories lists all breakdown categories in display order.
var Categories = []Category{CatCPR, CatDPR, CatCPT, CatHPR, CatMPI, CatOther}

// Config describes the simulated machine.
type Config struct {
	// Ranks is the number of processes (paper: one per node).
	Ranks int
	// Latency is the per-message latency α. Defaults to 1.5µs
	// (Omni-Path-class).
	Latency time.Duration
	// BandwidthBytes is the link bandwidth β in bytes/second. Defaults to
	// 12.5e9 (100 Gbps).
	BandwidthBytes float64
	// ParallelCompute lets Time closures of different ranks run
	// concurrently. By default they are serialized under a cluster-wide
	// lock so that measured durations are not polluted by other ranks'
	// goroutines — on a single-core machine the work is serialized anyway
	// and this makes measurements clean.
	ParallelCompute bool
	// Fault, when non-nil, is consulted for every point-to-point message
	// and may drop, duplicate, corrupt or delay it (see fault.go). Leave
	// nil for a healthy fabric.
	Fault Fault
	// RecvTimeout bounds the wall-clock time Recv waits for a message.
	// 0 (the default) waits forever. Set it in fault-injection runs so a
	// dropped message surfaces as ErrRecvTimeout instead of a deadlock.
	RecvTimeout time.Duration
	// Corrupt shapes FaultCorrupt injections. Nil keeps the legacy
	// single-bit pattern (bit 5 of the middle byte); see CorruptPattern.
	Corrupt *CorruptPattern
	// Reliable enables the NACK-driven retransmission layer (reliable.go):
	// senders keep a bounded per-link replay window, the receiver recovers
	// corrupted/lost messages by requesting a replay (with exponential
	// backoff and a retry budget), and duplicate sequence numbers are
	// silently deduplicated instead of erroring. Drop recovery requires
	// RecvTimeout; enabling Reliable defaults it to 500ms when unset.
	Reliable bool
	// RetryBudget is the maximum number of recovery attempts per message
	// before Recv gives up with ErrRetryBudgetExhausted. 0 selects 8.
	RetryBudget int
	// RetryBackoff is the base of the exponential backoff charged (as MPI
	// virtual time, on the stalled receiver) after each failed recovery
	// attempt: attempt k waits RetryBackoff·2^(k−1). 0 selects 20µs.
	RetryBackoff time.Duration
	// RetxWindow is how many recent messages each sender retains per link
	// for replay. A NACK for an evicted message fails with
	// ErrRetransmitGone. 0 selects 128.
	RetxWindow int
	// Transport selects the message fabric. Nil selects the in-process
	// channel transport (every rank a goroutine of this process, the
	// behavior all virtual-time experiments are calibrated against). A
	// TCPTransport runs this process as one rank of a multi-process
	// cluster; Run then executes the body only for that local rank.
	Transport Transport
	// Topology groups ranks into "nodes" for the hierarchical collectives
	// (see Topology). Nil means one flat node holding every rank. Being
	// pure configuration, it applies identically on every Transport.
	Topology *Topology
	// Trace, when non-nil, records every virtual-time advance, wall-clock
	// compute span and cross-rank message flow into the given trace —
	// equivalent to NewTraced but usable when the caller owns Trace
	// creation (each process of a TCP mesh writes its own file, merged
	// later with MergeChromeTraces).
	Trace *Trace

	// onPeerDown, set by New before the transport binds, routes transport
	// evidence of a remote peer's death (TCP connection reset/EOF) into
	// the cluster's failure detector.
	onPeerDown func(rank int, cause error)
}

func (c Config) withDefaults() Config {
	if c.Latency == 0 {
		c.Latency = 1500 * time.Nanosecond
	}
	if c.BandwidthBytes == 0 {
		c.BandwidthBytes = 12.5e9
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 8
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 20 * time.Microsecond
	}
	if c.RetxWindow == 0 {
		c.RetxWindow = 128
	}
	if c.Reliable && c.RecvTimeout == 0 {
		c.RecvTimeout = 500 * time.Millisecond
	}
	return c
}

// agreeTimeout bounds Barrier/AgreeMax waits: a peer may legitimately
// spend up to RetryBudget receive timeouts in recovery before arriving,
// so the deadline scales with the budget. 0 (no RecvTimeout) waits until
// a rank exits.
func (c Config) agreeTimeout() time.Duration {
	if c.RecvTimeout <= 0 {
		return 0
	}
	return c.RecvTimeout * time.Duration(c.RetryBudget+2)
}

// Result aggregates a finished run.
type Result struct {
	// Time is the collective completion time: the maximum final virtual
	// clock over all participating local ranks, in seconds.
	Time float64
	// RankTimes holds each local rank's final virtual clock. With the
	// default in-process transport it has one entry per rank; with a
	// multi-process transport it has a single entry (the local rank's).
	RankTimes []float64
	// Breakdown sums each category's virtual time across the local ranks.
	Breakdown map[Category]float64
	// WallSeconds is the real elapsed time of the run, reported next to
	// the virtual model. On the in-process fabric it includes all ranks'
	// serialized compute; on a real-socket transport it is the local
	// process's end-to-end wall time.
	WallSeconds float64
	// Evicted lists the physical ranks removed from the world by a
	// membership-shrink consensus during the run, ascending. Empty on a
	// healthy run.
	Evicted []int
}

// AvgTime returns the mean final clock across ranks (the paper's kernels
// report avg/max/min).
func (r *Result) AvgTime() float64 {
	if len(r.RankTimes) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range r.RankTimes {
		s += t
	}
	return s / float64(len(r.RankTimes))
}

// MinTime returns the minimum final clock across ranks.
func (r *Result) MinTime() float64 {
	if len(r.RankTimes) == 0 {
		return 0
	}
	m := r.RankTimes[0]
	for _, t := range r.RankTimes {
		if t < m {
			m = t
		}
	}
	return m
}

// BreakdownFractions returns each category's share of the summed virtual
// time (Figure 2 / Table VII percentages).
func (r *Result) BreakdownFractions() map[Category]float64 {
	total := 0.0
	for _, v := range r.Breakdown {
		total += v
	}
	out := make(map[Category]float64, len(r.Breakdown))
	if total == 0 {
		return out
	}
	for k, v := range r.Breakdown {
		out[k] = v / total
	}
	return out
}

// BreakdownShare is one category's absolute and fractional share of a
// run's summed virtual time.
type BreakdownShare struct {
	Category Category
	Seconds  float64
	Fraction float64
}

// BreakdownShares returns the per-category shares in the fixed display
// order of Categories. Unlike ranging over the Breakdown map, iteration
// order is deterministic, so printed breakdowns are reproducible run to
// run (golden text outputs in results/ depend on this).
func (r *Result) BreakdownShares() []BreakdownShare {
	total := 0.0
	for _, v := range r.Breakdown {
		total += v
	}
	out := make([]BreakdownShare, 0, len(Categories))
	for _, cat := range Categories {
		s := BreakdownShare{Category: cat, Seconds: r.Breakdown[cat]}
		if total > 0 {
			s.Fraction = s.Seconds / total
		}
		out = append(out, s)
	}
	return out
}

type message struct {
	data   []byte
	sentAt float64
	// from is the sender rank, seq its 0-based ordinal on the (from, to)
	// link, sum the payload crc32c and delay extra modeled in-flight
	// seconds (fault injection). epoch tags the message with the sender's
	// AdvanceEpoch generation so aborted-attempt traffic can be discarded.
	from  int
	seq   int
	sum   uint32
	delay float64
	epoch int
	// trace is the sender's collective-op trace ID (BeginOp), carried with
	// the message — across the wire on the TCP fabric — so the receiver
	// can pair its delivery with the remote send in a merged trace.
	trace uint64
}

// Cluster owns the transport and timing state for one run.
type Cluster struct {
	cfg     Config
	tr      Transport
	compute sync.Mutex

	// det is the failure detector feeding cooperative abort and
	// shrink-and-continue (membership.go).
	det *detector
	// evicted records the physical ranks removed by membership shrinks,
	// deduplicated across the survivor ranks reporting them.
	evictMu sync.Mutex
	evicted map[int]bool

	// trace, when non-nil, records every virtual-time advance (set by
	// NewTraced).
	trace *Trace
	// epoch anchors the wall-clock timeline of traced runs: wall spans are
	// recorded relative to cluster creation.
	epoch time.Time
}

// New creates a cluster with the given configuration.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("cluster: Ranks must be >= 1, got %d", cfg.Ranks)
	}
	if err := cfg.Topology.Validate(cfg.Ranks); err != nil {
		return nil, err
	}
	c := &Cluster{epoch: time.Now(), det: newDetector(), evicted: make(map[int]bool)}
	// Wire the transport's death evidence into the failure detector
	// before the transport binds: a reader goroutine may observe a
	// connection reset at any point after that.
	cfg.onPeerDown = func(rank int, cause error) { c.det.confirm(rank, cause) }
	tr := cfg.Transport
	if tr == nil {
		tr = newChanTransport()
	}
	if err := tr.bind(cfg); err != nil {
		return nil, err
	}
	c.cfg, c.tr = cfg, tr
	if hint, ok := tr.epochHint(); ok {
		// A multi-process transport supplies a mesh-wide epoch so wall
		// timestamps from different processes share one time base.
		c.epoch = hint
	}
	if cfg.Trace != nil {
		c.attachTrace(cfg.Trace)
	}
	return c, nil
}

// attachTrace wires a trace into the cluster and stamps it with the
// producing process's identity (rank −1 means this process hosts every
// rank) and wall-clock epoch.
func (c *Cluster) attachTrace(tr *Trace) {
	c.trace = tr
	meta := TraceMeta{Rank: -1, World: c.cfg.Ranks, EpochNanos: c.epoch.UnixNano()}
	if local, ok := c.tr.LocalRank(); ok {
		meta.Rank = local
	}
	tr.setMeta(meta)
}

// Run executes body once per rank, each on its own goroutine, and gathers
// timing results. If any rank returns an error, Run returns the first one
// (by rank order) after all ranks finish.
func Run(cfg Config, body func(*Rank) error) (*Result, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run(body)
}

func (c *Cluster) newRank(id int) *Rank {
	r := &Rank{
		ID: id, N: c.cfg.Ranks, phys: id, c: c, breakdown: make(map[Category]float64),
		sendSeq: make([]int, c.cfg.Ranks), recvSeq: make([]int, c.cfg.Ranks),
		pending: make([]map[int]message, c.cfg.Ranks),
	}
	if n := c.cfg.Ranks; n <= 64 {
		r.memberMask = ^uint64(0) >> (64 - uint(n))
	}
	return r
}

// Run executes body for every local rank of the transport: once per rank
// on the default in-process fabric, or exactly once — for this process's
// rank — on a multi-process transport. A Cluster must not be reused after
// Run returns.
func (c *Cluster) Run(body func(*Rank) error) (*Result, error) {
	if local, ok := c.tr.LocalRank(); ok {
		return c.runLocal(local, body)
	}
	start := time.Now()
	n := c.cfg.Ranks
	ranks := make([]*Rank, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		r := c.newRank(i)
		ranks[i] = r
		go func(r *Rank, i int) {
			defer wg.Done()
			// When a rank exits, close every channel it feeds so peers
			// blocked on Recv fail fast (ErrPeerFailed) instead of
			// deadlocking the whole run.
			defer c.tr.closeRank(i)
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("cluster: rank %d panicked: %v", i, p)
					c.det.confirm(i, errs[i])
				}
			}()
			errs[i] = body(r)
			if errs[i] != nil {
				// Hard evidence for the failure detector: the rank's body
				// died. Confirm before closeRank so cooperative aborts on
				// the surviving ranks see the cause.
				c.det.confirm(i, errs[i])
			}
		}(r, i)
	}
	wg.Wait()
	res := &Result{
		RankTimes:   make([]float64, n),
		Breakdown:   make(map[Category]float64),
		WallSeconds: time.Since(start).Seconds(),
		Evicted:     c.evictedList(),
	}
	for i, r := range ranks {
		res.RankTimes[i] = r.now
		if r.now > res.Time {
			res.Time = r.now
		}
		for k, v := range r.breakdown {
			res.Breakdown[k] += v
		}
	}
	// Prefer a root-cause error over the ErrPeerFailed cascade it triggers
	// on other ranks: when one rank aborts (e.g. on a checksum mismatch),
	// its peers observe closed channels, and reporting those would mask
	// the rank that actually detected the problem. A killed or evicted
	// rank's own exit error is benign as long as the survivors succeeded —
	// that is shrink-and-continue working as intended — but becomes the
	// reported error when every rank died.
	var peerErr, benignErr error
	okRanks := 0
	for _, e := range errs {
		if e == nil {
			okRanks++
			continue
		}
		if errors.Is(e, ErrRankKilled) || errors.Is(e, ErrEvicted) {
			if benignErr == nil {
				benignErr = e
			}
			continue
		}
		if errors.Is(e, ErrPeerFailed) {
			if peerErr == nil {
				peerErr = e
			}
			continue
		}
		return res, e
	}
	if peerErr != nil {
		return res, peerErr
	}
	if okRanks == 0 && benignErr != nil {
		return res, benignErr
	}
	return res, nil
}

// runLocal executes body for the single rank this process hosts; its
// peers run the same body in their own processes against the same
// transport mesh.
func (c *Cluster) runLocal(id int, body func(*Rank) error) (*Result, error) {
	start := time.Now()
	r := c.newRank(id)
	err := func() (err error) {
		defer c.tr.closeRank(id)
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("cluster: rank %d panicked: %v", id, p)
			}
		}()
		return body(r)
	}()
	res := &Result{
		Time:        r.now,
		RankTimes:   []float64{r.now},
		Breakdown:   r.Breakdown(),
		WallSeconds: time.Since(start).Seconds(),
		Evicted:     c.evictedList(),
	}
	return res, err
}

// Rank is one simulated process. All methods must be called only from the
// rank's own goroutine.
//
// ID and N are the rank's *virtual* view of the world: initially
// identical to the physical ids the cluster was created with, they
// renumber densely when ShrinkWorld evicts dead members, so every
// schedule written against ID/N runs on a shrunken world unchanged. All
// internal per-link state (sequence numbers, replay windows, telemetry)
// stays indexed by the immutable physical id.
type Rank struct {
	ID int
	N  int

	c         *Cluster
	now       float64
	breakdown map[Category]float64
	// phys is the immutable physical rank id (see PhysID).
	phys int
	// members maps virtual → physical ids after a shrink; nil means the
	// identity mapping. memberMask is the physical bitmap of current
	// members (0 on worlds beyond the 64-rank elastic limit); topo, when
	// non-nil, overrides the configured Topology with the shrunken one.
	members    []int
	memberMask uint64
	topo       *Topology
	// failFast arms cooperative abort (SetFailFast); killed is latched
	// once a FaultKill terminated this rank; suspected tracks which peers
	// this rank reported to the failure detector; sendCount numbers this
	// rank's original sends across all links (FaultContext.RankSeq).
	failFast  bool
	killed    bool
	suspected uint64
	sendCount int
	// sendSeq[to] / recvSeq[from] count messages per link, backing the
	// sequence-number integrity check. Only touched from the rank's own
	// goroutine.
	sendSeq []int
	recvSeq []int
	// epoch is this rank's AdvanceEpoch generation; messages from older
	// epochs are silently discarded by Recv.
	epoch int
	// pending[from] retains messages that arrived ahead of the expected
	// sequence number (a loss was detected before them) so they can be
	// redelivered in order instead of being sacrificed with the lost one.
	pending []map[int]message
	// opCount numbers collective operations started on this rank (BeginOp);
	// opTrace is the current operation's trace ID, stamped on every
	// outgoing message. Collectives execute in the same program order on
	// every rank, so the per-rank ordinal is a cluster-wide consistent ID
	// with no coordination — the same invariant the AgreeMax generation
	// counter relies on.
	opCount uint64
	opTrace uint64
}

// BeginOp marks the start of a collective operation on this rank and
// returns its trace ID: the 1-based ordinal of the op in this rank's
// program order, which — because every rank runs the collectives in the
// same order — identifies the same operation on every rank without any
// coordination. Until the next BeginOp, every message this rank sends
// carries the ID, so merged multi-process traces and flight-recorder
// dumps attribute traffic to the collective that produced it.
func (r *Rank) BeginOp(name string) uint64 {
	r.opCount++
	r.opTrace = r.opCount
	flight.Record(r.phys, telemetry.FlightOp, int64(r.opTrace), 0, 0, 0)
	if tr := r.c.trace; tr != nil {
		tr.recordInstant(Instant{Name: "op " + name, Rank: r.phys, Ts: r.wallNow()})
	}
	return r.opTrace
}

// wallNow returns wall seconds since the cluster's trace epoch.
func (r *Rank) wallNow() float64 { return time.Since(r.c.epoch).Seconds() }

// flowID renders the globally unique identity of one message for flow
// pairing: trace ID, link, epoch and sequence number. Sender and receiver
// derive the same string independently.
func flowID(trace uint64, from, to, epoch, seq int) string {
	return fmt.Sprintf("t%d:%d>%d:%d.%d", trace, from, to, epoch, seq)
}

// noteRecv records the delivery side of a message: a flight-recorder
// event always, plus — when traced — the finish half of the flow edge,
// anchored to a wall slice spanning the receive wait.
func (r *Rank) noteRecv(m message, waitStart time.Time) {
	flight.Record(r.phys, telemetry.FlightRecv, int64(m.from), int64(r.phys), int64(m.seq), int64(len(m.data)))
	if tr := r.c.trace; tr != nil {
		tr.recordFlow(FlowPoint{
			Phase: 'f',
			ID:    flowID(m.trace, m.from, r.phys, m.epoch, m.seq),
			Name:  fmt.Sprintf("recv %d<%d", r.phys, m.from),
			Rank:  r.phys,
			Start: waitStart.Sub(r.c.epoch).Seconds(),
			Dur:   time.Since(waitStart).Seconds(),
		})
	}
}

// NoteDegrade records a degradation-ladder move (backend indices `from` →
// `to`) in the flight recorder and, when traced, as an instant on the
// wall timeline. Purely observational; the ladder logic lives above the
// cluster.
func (r *Rank) NoteDegrade(from, to int) {
	flight.Record(r.phys, telemetry.FlightDegrade, int64(from), int64(to), 0, 0)
	if tr := r.c.trace; tr != nil {
		tr.recordInstant(Instant{Name: fmt.Sprintf("degrade %d→%d", from, to), Rank: r.phys, Ts: r.wallNow()})
	}
}

// Config returns the cluster configuration (with defaults applied) the
// rank is running under. After a ShrinkWorld the returned Topology is
// the shrunken one, matching the rank's virtual ID/N view, so schedules
// that consult it keep working on the smaller world.
func (r *Rank) Config() Config {
	cfg := r.c.cfg
	if r.topo != nil {
		cfg.Topology = r.topo
	}
	return cfg
}

// ErrBadPeer is returned when a peer rank index is out of range.
var ErrBadPeer = errors.New("cluster: peer rank out of range")

// ErrPeerFailed is returned by Recv when the sending rank exited (with an
// error or otherwise) before providing the awaited message, so the value
// will never arrive.
var ErrPeerFailed = errors.New("cluster: peer rank exited before sending")

// Now returns the rank's current virtual time in seconds.
func (r *Rank) Now() float64 { return r.now }

// Breakdown returns this rank's per-category virtual time.
func (r *Rank) Breakdown() map[Category]float64 {
	out := make(map[Category]float64, len(r.breakdown))
	for k, v := range r.breakdown {
		out[k] = v
	}
	return out
}

// Elapse advances the virtual clock by the given seconds, attributed to
// the category.
func (r *Rank) Elapse(cat Category, seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	if tr := r.c.trace; tr != nil && seconds > 0 {
		tr.record(TraceEvent{Rank: r.phys, Category: cat, Start: r.now, Dur: seconds})
	}
	r.now += seconds
	r.breakdown[cat] += seconds
}

// Time runs f (real work), measures its wall-clock duration and charges it
// to cat. f must not communicate: when SerializeCompute is active the
// cluster-wide compute lock is held during f.
func (r *Rank) Time(cat Category, f func()) {
	r.TimeScaled(cat, 1, f)
}

// TimeScaled is Time with the measured duration multiplied by scale before
// being charged. The collectives use scale = 1/speedup to model
// multi-threaded compression whose wall time cannot be observed on a
// single-core build machine.
func (r *Rank) TimeScaled(cat Category, scale float64, f func()) {
	serialize := !r.c.cfg.ParallelCompute
	if serialize {
		r.c.compute.Lock()
	}
	t0 := time.Now()
	f()
	dt := time.Since(t0).Seconds()
	if serialize {
		r.c.compute.Unlock()
	}
	// Bridge the real measurement into the trace: the wall timeline shows
	// where the work actually ran, alongside the virtual schedule it is
	// charged into.
	if tr := r.c.trace; tr != nil && dt > 0 {
		tr.recordWall(TraceEvent{Rank: r.phys, Category: cat, Start: t0.Sub(r.c.epoch).Seconds(), Dur: dt})
	}
	r.Elapse(cat, dt*scale)
}

// Quiesce runs f under the cluster-wide compute lock without charging any
// virtual time. Use it for real work that has no modeled cost (input
// staging, result assembly) so it cannot preempt — and pollute — another
// rank's measured Time section.
func (r *Rank) Quiesce(f func()) {
	if r.c.cfg.ParallelCompute {
		f()
		return
	}
	r.c.compute.Lock()
	f()
	r.c.compute.Unlock()
}

// Send transmits data to peer `to`. The payload is copied, so the caller
// may reuse — or recycle through bufpool — its buffer the moment Send
// returns; this copy-on-send rule is what lets the collectives run their
// hot paths out of pooled buffers without aliasing anything the transport
// retains (the reliable layer's retransmit window keeps its own pristine
// copy, recorded below). The copy itself draws from bufpool; on the
// in-process fabric the receiver ends up owning it exclusively, so a
// receiver that fully consumes a payload may hand it back with
// bufpool.PutBytes. Sending is asynchronous (eager): the sender's clock
// does not advance; transfer time is charged on the receiver, which
// models the overlapped sends of a ring pipeline.
//
// Each message carries a crc32c checksum and a per-link sequence number,
// verified by Recv; a configured Fault hook may drop, duplicate, corrupt
// or delay the message before it is enqueued.
func (r *Rank) Send(to int, data []byte) error {
	if r.killed {
		return fmt.Errorf("%w: rank %d", ErrRankKilled, r.phys)
	}
	if to < 0 || to >= r.N {
		return fmt.Errorf("%w: send to %d of %d", ErrBadPeer, to, r.N)
	}
	if to == r.ID {
		return fmt.Errorf("%w: self-send", ErrBadPeer)
	}
	pt := r.peerPhys(to)
	m := message{sentAt: r.now, from: r.phys, seq: r.sendSeq[pt], epoch: r.epoch, trace: r.opTrace}
	r.sendSeq[pt]++
	rankSeq := r.sendCount
	r.sendCount++
	tr := r.c.trace
	var wallStart time.Time
	if tr != nil {
		wallStart = time.Now()
	}
	r.Quiesce(func() {
		m.data = bufpool.Bytes(len(data))
		copy(m.data, data)
		m.sum = checksum(m.data)
	})
	flight.Record(r.phys, telemetry.FlightSend, int64(r.phys), int64(pt), int64(m.seq), int64(len(data)))
	if tr != nil {
		// The send half of the flow edge, anchored to the copy/checksum
		// work that physically happened on this rank.
		tr.recordFlow(FlowPoint{
			Phase: 's',
			ID:    flowID(m.trace, r.phys, pt, m.epoch, m.seq),
			Name:  fmt.Sprintf("send %d>%d", r.phys, pt),
			Rank:  r.phys,
			Start: wallStart.Sub(r.c.epoch).Seconds(),
			Dur:   time.Since(wallStart).Seconds(),
		})
	}
	if r.c.cfg.Reliable {
		// Record the pristine payload in the per-link replay window before
		// the fault hook can damage or drop it.
		r.c.tr.recordRetx(r.phys, pt, m.seq, m.epoch, m.data, m.sum)
	}
	copies, dropped, killed := r.c.applyFault(&m, pt, rankSeq)
	if killed {
		// This rank dies at this send: the message is never transmitted,
		// the replay windows of a dead process are gone (so peers cannot
		// salvage anything it "sent" after death), and every later
		// Send/Recv fails immediately.
		bufpool.PutBytes(m.data)
		r.killed = true
		r.c.tr.clearRetx(r.phys)
		return fmt.Errorf("%w: rank %d at send #%d", ErrRankKilled, r.phys, rankSeq)
	}
	if dropped {
		bufpool.PutBytes(m.data)
		return nil
	}
	return r.c.tr.send(r.phys, pt, m, copies)
}

// Recv blocks until a message from peer `from` arrives and returns its
// payload. The rank's clock advances to the modeled arrival time
// max(now, sentAt + α + len/β), with the advance charged to MPI.
//
// In the default (strict) mode Recv verifies message integrity and
// surfaces every violation: a checksum mismatch returns
// ErrMessageCorrupt, a sequence gap ErrMessageLost (the later message is
// retained and redelivered by the next Recv) and a replayed sequence
// number ErrMessageDuplicate. With Config.RecvTimeout set, a message
// that never arrives returns ErrRecvTimeout instead of blocking forever.
//
// With Config.Reliable set, Recv instead *recovers*: corrupted or lost
// messages are NACKed and replayed from the sender's retransmit window
// (bounded by RetryBudget, with exponential backoff), and duplicates are
// silently deduplicated. See reliable.go.
func (r *Rank) Recv(from int) ([]byte, error) {
	if r.killed {
		return nil, fmt.Errorf("%w: rank %d", ErrRankKilled, r.phys)
	}
	if from < 0 || from >= r.N {
		return nil, fmt.Errorf("%w: recv from %d of %d", ErrBadPeer, from, r.N)
	}
	if from == r.ID {
		return nil, fmt.Errorf("%w: self-recv", ErrBadPeer)
	}
	pf := r.peerPhys(from)
	if r.c.cfg.Reliable {
		return r.recvReliable(pf)
	}
	return r.recvStrict(pf)
}

// recvStrict is the fail-fast receive path: every integrity violation is
// reported to the caller. `from` is a physical rank id.
func (r *Rank) recvStrict(from int) ([]byte, error) {
	waitStart := time.Now()
	want := r.recvSeq[from]
	if m, ok := r.takePending(from, want); ok {
		r.recvSeq[from] = want + 1
		data, err := r.verifyPayload(m, from)
		if err == nil {
			r.noteRecv(m, waitStart)
		}
		return data, err
	}
	for {
		// Cooperative abort: fetch the watch channel BEFORE checking the
		// confirmed set, so a confirmation landing in between still fires
		// the channel during the wait.
		abort := r.abortWatch()
		if r.failFast {
			if d := r.confirmedPeer(from); d >= 0 {
				return nil, r.rankFailedErr(d)
			}
		}
		m, ok, err := r.c.tr.recv(from, r.phys, r.c.cfg.RecvTimeout, abort)
		if errors.Is(err, errAborted) {
			if d := r.confirmedPeer(from); d >= 0 {
				return nil, r.rankFailedErr(d)
			}
			// The confirmed rank is `from` itself: treat it exactly like
			// its exit.
			ok, err = false, nil
		}
		if err != nil {
			r.noteSuspect(from)
			return nil, fmt.Errorf("%w: from rank %d after %v", err, from, r.c.cfg.RecvTimeout)
		}
		if !ok {
			r.c.det.confirm(from, nil)
			return nil, r.peerFailedErr(from)
		}
		r.unsuspect(from)
		// The bytes moved (and were charged) regardless; integrity failures
		// surface after the clock advance so timing stays physical.
		r.chargeArrival(m)
		if m.epoch != r.epoch {
			if m.epoch < r.epoch {
				mDedups.Inc() // stale traffic from an aborted attempt
				flight.Record(r.phys, telemetry.FlightDedup, int64(m.from), int64(r.phys), int64(m.seq), int64(m.epoch))
				continue
			}
			return nil, fmt.Errorf("cluster: rank %d got epoch %d message from rank %d while in epoch %d (AdvanceEpoch must be globally synchronized)",
				r.phys, m.epoch, from, r.epoch)
		}
		switch {
		case m.seq < want:
			return nil, fmt.Errorf("%w: from rank %d, seq %d already consumed", ErrMessageDuplicate, from, m.seq)
		case m.seq > want:
			// Retain the later message: only the lost one is sacrificed,
			// and the next Recv redelivers this payload in order.
			r.stashPending(from, m)
			r.recvSeq[from] = want + 1
			return nil, fmt.Errorf("%w: from rank %d, expected seq %d got %d (later message retained)", ErrMessageLost, from, want, m.seq)
		}
		r.recvSeq[from] = want + 1
		data, err := r.verifyPayload(m, from)
		if err == nil {
			r.noteRecv(m, waitStart)
		}
		return data, err
	}
}

// chargeArrival advances the virtual clock to the modeled arrival time of
// m, charging the advance to MPI.
func (r *Rank) chargeArrival(m message) {
	arrive := m.sentAt + m.delay + r.c.cfg.Latency.Seconds() + float64(len(m.data))/r.c.cfg.BandwidthBytes
	if arrive > r.now {
		if tr := r.c.trace; tr != nil {
			tr.record(TraceEvent{Rank: r.phys, Category: CatMPI, Start: r.now, Dur: arrive - r.now})
		}
		r.breakdown[CatMPI] += arrive - r.now
		r.now = arrive
	}
}

// verifyPayload checks m's checksum and returns its payload.
func (r *Rank) verifyPayload(m message, from int) ([]byte, error) {
	var sum uint32
	r.Quiesce(func() { sum = checksum(m.data) })
	if sum != m.sum {
		return nil, fmt.Errorf("%w: from rank %d, seq %d, %d bytes", ErrMessageCorrupt, from, m.seq, len(m.data))
	}
	return m.data, nil
}

// stashPending retains an ahead-of-sequence message for in-order
// redelivery. Only current-epoch messages are stashed.
func (r *Rank) stashPending(from int, m message) {
	if r.pending[from] == nil {
		r.pending[from] = make(map[int]message)
	}
	r.pending[from][m.seq] = m
}

// takePending removes and returns the retained message with the given
// sequence number, if any.
func (r *Rank) takePending(from, seq int) (message, bool) {
	m, ok := r.pending[from][seq]
	if ok {
		delete(r.pending[from], seq)
	}
	return m, ok
}

// AdvanceEpoch moves this rank into the next message epoch: per-link
// sequence numbers reset, in-flight messages from older epochs are
// silently discarded by Recv, and this rank's retransmit windows are
// cleared. Collectives use it to retry on a clean slate after a failed
// attempt. All ranks must advance together at a synchronization point
// (Barrier or AgreeMax) — an epoch from the future observed by Recv is a
// protocol error.
func (r *Rank) AdvanceEpoch() {
	r.epoch++
	flight.Record(r.ID, telemetry.FlightEpoch, int64(r.epoch), 0, 0, 0)
	for i := range r.sendSeq {
		r.sendSeq[i] = 0
	}
	for i := range r.recvSeq {
		r.recvSeq[i] = 0
	}
	for i := range r.pending {
		r.pending[i] = nil
	}
	r.c.tr.clearRetx(r.phys)
}

// SendRecv posts a send to `to` and then receives from `from`, the
// exchange pattern of one ring round.
func (r *Rank) SendRecv(to int, data []byte, from int) ([]byte, error) {
	if err := r.Send(to, data); err != nil {
		return nil, err
	}
	return r.Recv(from)
}

// Barrier synchronizes all ranks and their clocks: everyone leaves at
// max(clock) + α·ceil(log2 N), the cost of a tree barrier. If a peer
// exits (its body returns) before reaching the barrier, the remaining
// ranks abort with an ErrPeerFailed-wrapped error instead of waiting
// forever; with Config.RecvTimeout set, the wait is additionally bounded
// by a deadline scaled to the retry budget.
func (r *Rank) Barrier() error {
	_, err := r.AgreeMax(0)
	return err
}

// AgreeMax is a Barrier that additionally agrees on a value: every rank
// contributes v, all ranks leave together (clocks synchronized exactly
// like Barrier, with the same α·ceil(log2 N) tree cost), and each
// receives the maximum contributed value. Because it runs over the
// transport's control plane rather than point-to-point messages, it is
// immune to injected fabric faults — the collectives use it as the
// control plane for agreeing to retry or degrade after a failed attempt.
func (r *Rank) AgreeMax(v int) (int, error) {
	leave, agreed, _, err := r.c.tr.agree(r.phys, r.now, v, 0, false)
	if err != nil {
		return 0, err
	}
	flight.Record(r.phys, telemetry.FlightAgree, int64(v), int64(agreed), 0, 0)
	if leave > r.now {
		if tr := r.c.trace; tr != nil {
			tr.record(TraceEvent{Rank: r.phys, Category: CatMPI, Start: r.now, Dur: leave - r.now})
		}
		r.breakdown[CatMPI] += leave - r.now
		r.now = leave
	}
	return agreed, nil
}
