package cluster

import (
	"errors"
	"hash/crc32"

	"hzccl/internal/telemetry"
)

// Fault injection and message integrity.
//
// Every point-to-point message carries a crc32c checksum and a per-pair
// sequence number. The receiver verifies both, so a corrupted, lost or
// duplicated message surfaces as a clear error at the first rank that
// observes it instead of silently propagating wrong bytes into a
// collective's result.
//
// A Cluster can additionally be configured with a Fault hook that decides,
// per message, whether the fabric delivers it intact, drops it, duplicates
// it, corrupts it in flight, or delays it. Conformance and robustness
// tests use the hook to prove that the integrity layer actually catches
// each failure mode on real collective traffic.

// Integrity errors returned by Recv.
var (
	// ErrMessageCorrupt means the payload no longer matches its checksum:
	// the message was damaged in flight.
	ErrMessageCorrupt = errors.New("cluster: message checksum mismatch (corruption detected)")
	// ErrMessageLost means a sequence gap was observed: an earlier message
	// from the same sender never arrived.
	ErrMessageLost = errors.New("cluster: message sequence gap (message lost in flight)")
	// ErrMessageDuplicate means a message with an already-consumed sequence
	// number arrived.
	ErrMessageDuplicate = errors.New("cluster: duplicate message sequence")
	// ErrRecvTimeout means no message arrived within Config.RecvTimeout of
	// wall-clock time. It is the backstop that turns a dropped-message
	// deadlock into a diagnosable failure.
	ErrRecvTimeout = errors.New("cluster: receive timed out")
)

// FaultAction is the fate the fault hook assigns to one message.
type FaultAction int

// Fault actions.
const (
	// FaultDeliver delivers the message unchanged (the default).
	FaultDeliver FaultAction = iota
	// FaultDrop discards the message. The receiver observes either a
	// sequence gap (if a later message arrives), ErrPeerFailed (if the
	// sender exits) or ErrRecvTimeout.
	FaultDrop
	// FaultDuplicate delivers the message twice. The second copy fails the
	// receiver's sequence check.
	FaultDuplicate
	// FaultCorrupt flips a payload bit in flight. The receiver's checksum
	// verification fails.
	FaultCorrupt
	// FaultDelay delivers the message with extra latency (the hook's
	// second return value, in seconds, added to the modeled arrival time).
	FaultDelay
	// FaultKill terminates the *sending* rank at this message: the message
	// is never transmitted, the rank's replay windows are discarded, and
	// every later Send/Recv on it fails with ErrRankKilled — the injected
	// equivalent of a process crash, driving the elastic-membership path
	// (failure detection, cooperative abort, shrink-and-continue). Only
	// honoured on original sends (Attempt == 0); a kill decision on a
	// retransmission is ignored.
	FaultKill
)

// FaultContext identifies one point-to-point message for the fault hook.
type FaultContext struct {
	// From and To are the sender and receiver ranks.
	From, To int
	// Seq is the 0-based ordinal of this message on the (From, To) link.
	// In a ring collective it equals the round number.
	Seq int
	// Len is the payload size in bytes.
	Len int
	// Epoch is the sender's AdvanceEpoch generation (0 until a collective
	// retries). Hooks can scope faults to the first attempt of a degrading
	// run by matching Epoch == 0.
	Epoch int
	// Attempt is 0 for the original send and k ≥ 1 for the k-th
	// retransmission of this message by the reliable-delivery layer. Hooks
	// that return the same action regardless of Attempt make a message
	// unrecoverable and exhaust the retry budget.
	Attempt int
	// RankSeq is the 0-based ordinal of this send among all of the sending
	// rank's original sends across every link (its program-order step
	// counter), or -1 for retransmissions. Kill schedules key off it to
	// crash a rank at a deterministic point of the collective regardless of
	// which link that step happens to use.
	RankSeq int
}

// Fault decides the fate of each message. It runs on the sender's
// goroutine and must be safe for concurrent use from all ranks. The
// returned seconds are only used with FaultDelay.
type Fault func(FaultContext) (FaultAction, float64)

// FaultOn builds a fault hook that applies action (with the given delay
// seconds, for FaultDelay) to every message matching the predicate and
// delivers everything else.
func FaultOn(pred func(FaultContext) bool, action FaultAction, delay float64) Fault {
	return func(fc FaultContext) (FaultAction, float64) {
		if pred(fc) {
			return action, delay
		}
		return FaultDeliver, 0
	}
}

// OnLink is a predicate matching one message on one link: the seq-th
// message from rank `from` to rank `to`.
func OnLink(from, to, seq int) func(FaultContext) bool {
	return func(fc FaultContext) bool {
		return fc.From == from && fc.To == to && fc.Seq == seq
	}
}

// CorruptPattern configures how FaultCorrupt damages a payload. The
// legacy behavior (Config.Corrupt == nil) flips bit 5 of the middle byte;
// a pattern makes the damage shape explicit so the checksum path is
// exercised beyond a single fixed bit.
type CorruptPattern struct {
	// Offset is the byte offset of the first damaged byte, clamped into
	// the payload. Ignored when Spray is set.
	Offset int
	// Mask is XORed into each damaged byte. 0 selects 0x20 (one bit).
	Mask byte
	// Burst is the number of consecutive bytes damaged (multi-bit burst
	// errors). Values below 1 select 1.
	Burst int
	// Spray derives the offset deterministically from the message identity
	// (link, sequence, epoch, attempt) instead of Offset, so a fault
	// schedule damages a different location in every message while staying
	// reproducible.
	Spray bool
}

// apply damages data in place according to the pattern. Empty payloads
// are handled by the caller (checksum poisoning).
func (p CorruptPattern) apply(data []byte, fc FaultContext) {
	if len(data) == 0 {
		return
	}
	off := p.Offset
	if p.Spray {
		off = int(chaosHash(0x5eed, fc) % uint64(len(data)))
	}
	if off < 0 {
		off = 0
	}
	if off >= len(data) {
		off = len(data) - 1
	}
	mask := p.Mask
	if mask == 0 {
		mask = 0x20
	}
	burst := p.Burst
	if burst < 1 {
		burst = 1
	}
	for i := 0; i < burst && off+i < len(data); i++ {
		data[off+i] ^= mask
	}
}

var msgTable = crc32.MakeTable(crc32.Castagnoli)

// checksum is the per-message integrity sum (crc32c, hardware-accelerated
// on amd64/arm64).
func checksum(data []byte) uint32 { return crc32.Checksum(data, msgTable) }

// applyFault runs the configured hook (if any) on a message about to be
// enqueued and returns how many copies to deliver plus the extra delay.
// Corruption mutates the (already checksummed) payload copy, so the
// receiver's verification fails — or, for an empty payload, poisons the
// stored checksum directly.
func (c *Cluster) applyFault(m *message, to, rankSeq int) (copies int, drop, kill bool) {
	return c.applyFaultAttempt(m, to, 0, rankSeq)
}

// applyFaultAttempt is applyFault for a specific delivery attempt
// (attempt 0 is the original send, k ≥ 1 the k-th retransmission; rankSeq
// is -1 for retransmissions, which can never kill).
func (c *Cluster) applyFaultAttempt(m *message, to, attempt, rankSeq int) (copies int, drop, kill bool) {
	if c.cfg.Fault == nil {
		return 1, false, false
	}
	fc := FaultContext{From: m.from, To: to, Seq: m.seq, Len: len(m.data), Epoch: m.epoch, Attempt: attempt, RankSeq: rankSeq}
	action, delay := c.cfg.Fault(fc)
	if action != FaultDeliver {
		// Every injected fault — original sends and retransmissions alike,
		// chaos schedules included — leaves a flight-recorder event, so a
		// post-mortem dump shows which link was sabotaged and how.
		flight.Record(m.from, telemetry.FlightFault, int64(m.from), int64(to), int64(m.seq), int64(action))
	}
	switch action {
	case FaultDrop:
		return 0, true, false
	case FaultDuplicate:
		return 2, false, false
	case FaultCorrupt:
		if len(m.data) > 0 {
			if p := c.cfg.Corrupt; p != nil {
				p.apply(m.data, fc)
			} else {
				m.data[len(m.data)/2] ^= 0x20
			}
		} else {
			m.sum ^= 0xdeadbeef
		}
		return 1, false, false
	case FaultDelay:
		m.delay += delay
		return 1, false, false
	case FaultKill:
		if attempt == 0 {
			return 0, false, true
		}
	}
	return 1, false, false
}
