package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Trace merging. On a TCP transport every process records its own trace
// file — rank-local virtual and wall timelines plus its half of each
// message-flow edge. MergeChromeTraces stitches those files into one
// Chrome trace: process ids are remapped so every rank keeps its two
// timelines (virtual and wall) side by side, wall timestamps are shifted
// onto a common clock using the handshake-agreed epoch carried in each
// file's hzcclMeta, and the flow endpoints — whose ids were derived
// independently but identically by sender and receiver — pair up so
// Perfetto draws arrows across process boundaries.

// MergeChromeTraces reads per-process Chrome trace files (as written by
// Trace.WriteChrome on a TCP-transport run) and writes one merged trace.
// Each input must carry hzcclMeta with a non-negative rank; wall-clock
// timestamps are aligned by shifting each file onto the earliest epoch
// observed across the inputs. The merged file loads in chrome://tracing
// or https://ui.perfetto.dev as one multi-rank timeline.
func MergeChromeTraces(w io.Writer, traces ...io.Reader) error {
	if len(traces) == 0 {
		return errors.New("cluster: no trace files to merge")
	}
	files := make([]chromeTrace, 0, len(traces))
	var minEpoch int64
	for i, r := range traces {
		var ct chromeTrace
		if err := json.NewDecoder(r).Decode(&ct); err != nil {
			return fmt.Errorf("cluster: trace input %d: %w", i, err)
		}
		if ct.Meta == nil {
			return fmt.Errorf("cluster: trace input %d carries no hzcclMeta; only traces written by this package's tracer can be merged", i)
		}
		if ct.Meta.Rank < 0 {
			return fmt.Errorf("cluster: trace input %d was recorded by an in-process run (rank -1); merging applies to one-process-per-rank TCP runs", i)
		}
		if i == 0 || ct.Meta.EpochNanos < minEpoch {
			minEpoch = ct.Meta.EpochNanos
		}
		files = append(files, ct)
	}
	seen := make(map[int]bool, len(files))
	out := make([]chromeEvent, 0, 64)
	for i, ct := range files {
		rank := ct.Meta.Rank
		if seen[rank] {
			return fmt.Errorf("cluster: trace input %d duplicates rank %d", i, rank)
		}
		seen[rank] = true
		// Two merged pids per rank keep the virtual and wall timelines
		// adjacent and stable regardless of input order.
		basePid := rank * 2
		shift := float64(ct.Meta.EpochNanos-minEpoch) / 1e3 // ns → µs
		out = append(out,
			chromeEvent{Name: "process_name", Ph: "M", Pid: basePid + chromePidVirtual,
				Args: map[string]any{"name": fmt.Sprintf("rank %d virtual time", rank)}},
			chromeEvent{Name: "process_name", Ph: "M", Pid: basePid + chromePidWall,
				Args: map[string]any{"name": fmt.Sprintf("rank %d wall clock", rank)}},
		)
		for _, ev := range ct.TraceEvents {
			if ev.Ph == "M" {
				continue // per-file metadata is replaced by the per-rank names above
			}
			if ev.Pid == chromePidWall {
				ev.Ts += shift
			}
			ev.Pid = basePid + ev.Pid
			out = append(out, ev)
		}
	}
	// Stable timestamp order (metadata first) makes the merged file easy to
	// diff and stream; viewers do not require it.
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return out[i].Ts < out[j].Ts
	})
	merged := chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		Meta:            &TraceMeta{Rank: -1, World: files[0].Meta.World, EpochNanos: minEpoch},
	}
	return json.NewEncoder(w).Encode(merged)
}
