package cluster

// chanTransport is the original in-process fabric: every rank is a
// goroutine of one process, each (from, to) link is a buffered Go
// channel, and the barrier control plane is a shared condition variable.
// This is the default Transport and its observable behavior is exactly
// what the pre-Transport cluster did — the virtual-time numbers of every
// experiment are reproduced bit-for-bit.

import (
	"fmt"
	"math"
	"sync"
	"time"
)

type chanTransport struct {
	cfg    Config
	mailMu sync.Mutex
	mail   map[[2]int]chan message
	// done[i] is set once rank i's body has returned; its channels are
	// closed so blocked receivers fail instead of hanging.
	done []bool

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	// live[i] is false once rank i was evicted by a membership shrink:
	// consensus generations stop waiting on it. exitedRank[i] is set once
	// rank i's body returned — a *live* rank exiting aborts the
	// generations it never joined (it will never arrive).
	live       []bool
	exitedRank []bool
	// agreeSeq[i] is rank i's consensus-call ordinal. Every rank calls
	// agree in identical program order, so rank r's k-th call joins
	// generation k; gens holds each generation's state until its waiters
	// have left.
	agreeSeq []int
	gens     map[int]*chanGen

	// retx holds the per-link sender-side retransmit windows of the
	// reliable-delivery layer (reliable.go).
	retx retxStore
}

// chanGen is one consensus generation: the contributions folded so far
// and, once done, the latched results (late leavers must not be affected
// by ranks already entering the next generation).
type chanGen struct {
	tolerant bool
	joined   []bool
	in       int
	maxClk   float64
	maxVal   int
	dead     uint64
	done     bool
	aborted  bool
	outClk   float64
	outVal   int
	outDead  uint64
}

func newChanTransport() *chanTransport {
	t := &chanTransport{mail: make(map[[2]int]chan message)}
	t.barrierCond = sync.NewCond(&t.barrierMu)
	return t
}

func (t *chanTransport) LocalRank() (int, bool) { return 0, false }

// epochHint: all ranks share this process's clock, so no alignment is
// needed.
func (t *chanTransport) epochHint() (time.Time, bool) { return time.Time{}, false }

func (t *chanTransport) Close() error { return nil }

func (t *chanTransport) bind(cfg Config) error {
	t.cfg = cfg
	t.done = make([]bool, cfg.Ranks)
	t.live = make([]bool, cfg.Ranks)
	for i := range t.live {
		t.live[i] = true
	}
	t.exitedRank = make([]bool, cfg.Ranks)
	t.agreeSeq = make([]int, cfg.Ranks)
	t.gens = make(map[int]*chanGen)
	t.retx.window = cfg.RetxWindow
	return nil
}

func (t *chanTransport) chanFor(from, to int) chan message {
	key := [2]int{from, to}
	t.mailMu.Lock()
	defer t.mailMu.Unlock()
	if t.done[from] {
		// The sender already exited; give the receiver a closed channel.
		ch, ok := t.mail[key]
		if !ok {
			ch = make(chan message)
			close(ch)
			t.mail[key] = ch
		}
		return ch
	}
	ch, ok := t.mail[key]
	if !ok {
		// Eager-send buffer: deep enough that pipelined protocols (e.g.
		// segmented rings) never block the sender in lockstep patterns.
		ch = make(chan message, 64)
		t.mail[key] = ch
	}
	return ch
}

func (t *chanTransport) send(from, to int, m message, copies int) error {
	ch := t.chanFor(from, to)
	for i := 0; i < copies; i++ {
		ch <- m
	}
	return nil
}

// recv pulls the next message from the link's channel, honouring the
// wall-clock timeout and the cooperative-abort channel.
func (t *chanTransport) recv(from, to int, timeout time.Duration, abort <-chan struct{}) (message, bool, error) {
	ch := t.chanFor(from, to)
	if timeout <= 0 && abort == nil {
		m, ok := <-ch
		return m, ok, nil
	}
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	// A nil channel blocks forever, so absent cases simply never fire.
	select {
	case m, ok := <-ch:
		return m, ok, nil
	case <-timeoutC:
		return message{}, false, ErrRecvTimeout
	case <-abort:
		return message{}, false, errAborted
	}
}

func (t *chanTransport) recordRetx(from, to, seq, epoch int, data []byte, sum uint32) {
	t.retx.record(from, to, seq, epoch, data, sum)
}

// retransmit reads the sender's replay window directly: all ranks share
// one address space, so a NACK is just a map lookup. The window even
// survives the sender's exit, letting a receiver salvage messages a
// finished rank sent before leaving.
func (t *chanTransport) retransmit(from, to, seq, epoch int) ([]byte, uint32, error) {
	return t.retx.lookup(from, to, seq, epoch)
}

func (t *chanTransport) clearRetx(rank int) { t.retx.clear(rank) }

// closeRank marks rank as finished and closes every mailbox it feeds. It
// also re-checks open consensus generations: a generation missing a live
// exited rank can never complete, so its waiters abort (or, in a
// tolerant membership round, complete without the dead member).
func (t *chanTransport) closeRank(rank int) {
	t.mailMu.Lock()
	t.done[rank] = true
	for key, ch := range t.mail {
		if key[0] == rank {
			close(ch)
		}
	}
	t.mailMu.Unlock()

	t.barrierMu.Lock()
	t.exitedRank[rank] = true
	for _, g := range t.gens {
		t.checkGen(g)
	}
	t.barrierCond.Broadcast()
	t.barrierMu.Unlock()
}

// setMembers restricts the consensus plane to the surviving ranks after
// a membership shrink. All survivors call it with the identical list, so
// concurrent calls are idempotent.
func (t *chanTransport) setMembers(members []int) {
	t.barrierMu.Lock()
	for i := range t.live {
		t.live[i] = false
	}
	for _, m := range members {
		if m >= 0 && m < len(t.live) {
			t.live[m] = true
		}
	}
	for _, g := range t.gens {
		t.checkGen(g)
	}
	t.barrierCond.Broadcast()
	t.barrierMu.Unlock()
}

// checkGen (caller holds barrierMu) decides whether a generation can
// complete or must abort, given the current live/exited state.
func (t *chanTransport) checkGen(g *chanGen) {
	if g.done {
		return
	}
	liveN, missing := 0, 0
	var missingBits uint64
	for i := 0; i < t.cfg.Ranks; i++ {
		if !t.live[i] {
			continue
		}
		liveN++
		if t.exitedRank[i] && !g.joined[i] {
			missing++
			missingBits |= rankBit(i)
		}
	}
	if !g.tolerant {
		if g.in >= liveN {
			t.completeGen(g, liveN)
		} else if missing > 0 {
			// A live member exited without joining: the classic round can
			// never complete. Latch the dead set so every waiter reports
			// the same failed rank.
			g.aborted = true
			g.outDead = g.dead | missingBits
			g.done = true
			t.barrierCond.Broadcast()
		}
		return
	}
	// Membership round: completes once every live member that can still
	// arrive has arrived; exited members join the dead set instead of
	// blocking the round.
	if g.in > 0 && g.in >= liveN-missing {
		g.dead |= missingBits
		t.completeGen(g, liveN-missing)
	}
}

// completeGen (caller holds barrierMu) latches a generation's results:
// leave clock = max contribution + the α·ceil(log2 n) tree cost over the
// n actual participants.
func (t *chanTransport) completeGen(g *chanGen, n int) {
	cost := 0.0
	if n > 1 {
		cost = t.cfg.Latency.Seconds() * math.Ceil(math.Log2(float64(n)))
	}
	g.outClk = g.maxClk + cost
	g.outVal = g.maxVal
	g.outDead = g.dead
	g.done = true
	t.barrierCond.Broadcast()
}

// agree is the shared-memory consensus plane: rank's k-th call joins
// generation k (identical program order across ranks), contributions are
// folded into the generation, and everyone still live leaves together
// with the latched results.
func (t *chanTransport) agree(rank int, clock float64, v int, propose uint64, tolerant bool) (float64, int, uint64, error) {
	var deadline time.Time
	if d := t.cfg.agreeTimeout(); d > 0 {
		deadline = time.Now().Add(d)
		wake := time.AfterFunc(d, func() {
			t.barrierMu.Lock()
			t.barrierCond.Broadcast()
			t.barrierMu.Unlock()
		})
		defer wake.Stop()
	}
	t.barrierMu.Lock()
	genID := t.agreeSeq[rank]
	t.agreeSeq[rank]++
	g, ok := t.gens[genID]
	if !ok {
		g = &chanGen{tolerant: tolerant, joined: make([]bool, t.cfg.Ranks), maxClk: math.Inf(-1)}
		t.gens[genID] = g
	}
	g.joined[rank] = true
	g.in++
	if clock > g.maxClk {
		g.maxClk = clock
	}
	if v > g.maxVal {
		g.maxVal = v
	}
	g.dead |= propose
	t.checkGen(g)
	for !g.done {
		if !deadline.IsZero() && time.Now().After(deadline) {
			t.barrierMu.Unlock()
			return 0, 0, 0, fmt.Errorf("%w: barrier, peers missing after %v", ErrRecvTimeout, t.cfg.agreeTimeout())
		}
		t.barrierCond.Wait()
	}
	leave, agreed, dead, aborted := g.outClk, g.outVal, g.outDead, g.aborted
	// Trim completed generations: every waiter holds its own *chanGen, so
	// dropping old map entries is safe.
	delete(t.gens, genID-2)
	t.barrierMu.Unlock()
	if aborted {
		return 0, 0, dead, fmt.Errorf("%w: barrier aborted, a rank exited before reaching it", rankFailedFromBits(dead, nil))
	}
	return leave, agreed, dead, nil
}

// retxStore is the per-link sender-side replay buffer shared by both
// transports: the in-process fabric keeps every rank's windows here, the
// TCP fabric only its local rank's (peers are NACKed over the wire).
type retxStore struct {
	mu     sync.Mutex
	window int
	m      map[[2]int]*retxWindow
}

func (s *retxStore) windowFor(from, to int) *retxWindow {
	key := [2]int{from, to}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[[2]int]*retxWindow)
	}
	w, ok := s.m[key]
	if !ok {
		w = &retxWindow{buf: make(map[int]retxEntry)}
		s.m[key] = w
	}
	return w
}

// record stores a pristine copy of an outgoing message, evicting entries
// older than the configured window.
func (s *retxStore) record(from, to, seq, epoch int, data []byte, sum uint32) {
	w := s.windowFor(from, to)
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch != w.epoch {
		// First send of a new epoch: old-epoch entries are unreachable.
		w.epoch = epoch
		w.buf = make(map[int]retxEntry)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	w.buf[seq] = retxEntry{data: cp, sum: sum}
	w.next = seq + 1
	if old := seq - s.window; old >= 0 {
		delete(w.buf, old)
	}
}

// lookup fetches a fresh copy of a windowed message for replay.
func (s *retxStore) lookup(from, to, seq, epoch int) (data []byte, sum uint32, err error) {
	w := s.windowFor(from, to)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.epoch < epoch || seq >= w.next {
		return nil, 0, errNotYetSent
	}
	if w.epoch > epoch {
		// The sender already moved to a newer epoch; the old attempt's
		// traffic is unrecoverable.
		mRetxEvictions.Inc()
		return nil, 0, fmt.Errorf("%w: link %d→%d seq %d (sender in epoch %d, wanted %d)", ErrRetransmitGone, from, to, seq, w.epoch, epoch)
	}
	e, ok := w.buf[seq]
	if !ok {
		mRetxEvictions.Inc()
		return nil, 0, fmt.Errorf("%w: link %d→%d seq %d (window %d)", ErrRetransmitGone, from, to, seq, s.window)
	}
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, e.sum, nil
}

// clear drops every replay window fed by rank `from` (epoch change: the
// retained traffic belongs to an abandoned attempt).
func (s *retxStore) clear(from int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.m {
		if key[0] == from {
			delete(s.m, key)
		}
	}
}
