package cluster

// chanTransport is the original in-process fabric: every rank is a
// goroutine of one process, each (from, to) link is a buffered Go
// channel, and the barrier control plane is a shared condition variable.
// This is the default Transport and its observable behavior is exactly
// what the pre-Transport cluster did — the virtual-time numbers of every
// experiment are reproduced bit-for-bit.

import (
	"fmt"
	"math"
	"sync"
	"time"
)

type chanTransport struct {
	cfg    Config
	mailMu sync.Mutex
	mail   map[[2]int]chan message
	// done[i] is set once rank i's body has returned; its channels are
	// closed so blocked receivers fail instead of hanging.
	done []bool

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierGen  int
	barrierIn   int
	barrierMax  float64
	// barrierVal accumulates the max of the values contributed to the
	// in-progress AgreeMax generation; barrierOutMax/barrierOutVal latch
	// the released generation's results so late leavers are not affected
	// by ranks already entering the next one.
	barrierVal    int
	barrierOutMax float64
	barrierOutVal int
	// exited counts ranks whose body has returned. A positive count while
	// a barrier generation is incomplete means it can never complete, so
	// waiters abort instead of hanging.
	exited int

	// retx holds the per-link sender-side retransmit windows of the
	// reliable-delivery layer (reliable.go).
	retx retxStore
}

func newChanTransport() *chanTransport {
	t := &chanTransport{mail: make(map[[2]int]chan message)}
	t.barrierCond = sync.NewCond(&t.barrierMu)
	return t
}

func (t *chanTransport) LocalRank() (int, bool) { return 0, false }

// epochHint: all ranks share this process's clock, so no alignment is
// needed.
func (t *chanTransport) epochHint() (time.Time, bool) { return time.Time{}, false }

func (t *chanTransport) Close() error { return nil }

func (t *chanTransport) bind(cfg Config) error {
	t.cfg = cfg
	t.done = make([]bool, cfg.Ranks)
	t.retx.window = cfg.RetxWindow
	return nil
}

func (t *chanTransport) chanFor(from, to int) chan message {
	key := [2]int{from, to}
	t.mailMu.Lock()
	defer t.mailMu.Unlock()
	if t.done[from] {
		// The sender already exited; give the receiver a closed channel.
		ch, ok := t.mail[key]
		if !ok {
			ch = make(chan message)
			close(ch)
			t.mail[key] = ch
		}
		return ch
	}
	ch, ok := t.mail[key]
	if !ok {
		// Eager-send buffer: deep enough that pipelined protocols (e.g.
		// segmented rings) never block the sender in lockstep patterns.
		ch = make(chan message, 64)
		t.mail[key] = ch
	}
	return ch
}

func (t *chanTransport) send(from, to int, m message, copies int) error {
	ch := t.chanFor(from, to)
	for i := 0; i < copies; i++ {
		ch <- m
	}
	return nil
}

// recv pulls the next message from the link's channel, honouring the
// wall-clock timeout.
func (t *chanTransport) recv(from, to int, timeout time.Duration) (message, bool, error) {
	ch := t.chanFor(from, to)
	if timeout <= 0 {
		m, ok := <-ch
		return m, ok, nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		return m, ok, nil
	case <-timer.C:
		return message{}, false, ErrRecvTimeout
	}
}

func (t *chanTransport) recordRetx(from, to, seq, epoch int, data []byte, sum uint32) {
	t.retx.record(from, to, seq, epoch, data, sum)
}

// retransmit reads the sender's replay window directly: all ranks share
// one address space, so a NACK is just a map lookup. The window even
// survives the sender's exit, letting a receiver salvage messages a
// finished rank sent before leaving.
func (t *chanTransport) retransmit(from, to, seq, epoch int) ([]byte, uint32, error) {
	return t.retx.lookup(from, to, seq, epoch)
}

func (t *chanTransport) clearRetx(rank int) { t.retx.clear(rank) }

// closeRank marks rank as finished and closes every mailbox it feeds. It
// also wakes barrier waiters: a barrier generation missing an exited rank
// can never complete, so waiting on it would deadlock.
func (t *chanTransport) closeRank(rank int) {
	t.mailMu.Lock()
	t.done[rank] = true
	for key, ch := range t.mail {
		if key[0] == rank {
			close(ch)
		}
	}
	t.mailMu.Unlock()

	t.barrierMu.Lock()
	t.exited++
	t.barrierCond.Broadcast()
	t.barrierMu.Unlock()
}

// agreeMax is the shared-memory barrier: every rank contributes
// (clock, v), the last one in computes the leave clock (max + tree cost)
// and the agreed value (max), and everyone is released together.
func (t *chanTransport) agreeMax(rank int, clock float64, v int) (float64, int, error) {
	n := t.cfg.Ranks
	var deadline time.Time
	if d := t.cfg.agreeTimeout(); d > 0 {
		deadline = time.Now().Add(d)
		wake := time.AfterFunc(d, func() {
			t.barrierMu.Lock()
			t.barrierCond.Broadcast()
			t.barrierMu.Unlock()
		})
		defer wake.Stop()
	}
	t.barrierMu.Lock()
	gen := t.barrierGen
	if clock > t.barrierMax {
		t.barrierMax = clock
	}
	if v > t.barrierVal {
		t.barrierVal = v
	}
	t.barrierIn++
	if t.barrierIn == n {
		cost := 0.0
		if n > 1 {
			cost = t.cfg.Latency.Seconds() * math.Ceil(math.Log2(float64(n)))
		}
		t.barrierMax += cost
		// Latch this generation's results: a fast rank may re-enter the
		// next barrier (and mutate barrierMax/barrierVal) before slow
		// leavers have read theirs.
		t.barrierOutMax = t.barrierMax
		t.barrierOutVal = t.barrierVal
		t.barrierIn = 0
		t.barrierVal = 0
		t.barrierGen++
		t.barrierCond.Broadcast()
	} else {
		for gen == t.barrierGen {
			if t.exited > 0 {
				t.barrierMu.Unlock()
				return 0, 0, fmt.Errorf("%w: barrier aborted, a rank exited before reaching it", ErrPeerFailed)
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				t.barrierMu.Unlock()
				return 0, 0, fmt.Errorf("%w: barrier, peers missing after %v", ErrRecvTimeout, t.cfg.agreeTimeout())
			}
			t.barrierCond.Wait()
		}
	}
	leave, agreed := t.barrierOutMax, t.barrierOutVal
	t.barrierMu.Unlock()
	return leave, agreed, nil
}

// retxStore is the per-link sender-side replay buffer shared by both
// transports: the in-process fabric keeps every rank's windows here, the
// TCP fabric only its local rank's (peers are NACKed over the wire).
type retxStore struct {
	mu     sync.Mutex
	window int
	m      map[[2]int]*retxWindow
}

func (s *retxStore) windowFor(from, to int) *retxWindow {
	key := [2]int{from, to}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[[2]int]*retxWindow)
	}
	w, ok := s.m[key]
	if !ok {
		w = &retxWindow{buf: make(map[int]retxEntry)}
		s.m[key] = w
	}
	return w
}

// record stores a pristine copy of an outgoing message, evicting entries
// older than the configured window.
func (s *retxStore) record(from, to, seq, epoch int, data []byte, sum uint32) {
	w := s.windowFor(from, to)
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch != w.epoch {
		// First send of a new epoch: old-epoch entries are unreachable.
		w.epoch = epoch
		w.buf = make(map[int]retxEntry)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	w.buf[seq] = retxEntry{data: cp, sum: sum}
	w.next = seq + 1
	if old := seq - s.window; old >= 0 {
		delete(w.buf, old)
	}
}

// lookup fetches a fresh copy of a windowed message for replay.
func (s *retxStore) lookup(from, to, seq, epoch int) (data []byte, sum uint32, err error) {
	w := s.windowFor(from, to)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.epoch < epoch || seq >= w.next {
		return nil, 0, errNotYetSent
	}
	if w.epoch > epoch {
		// The sender already moved to a newer epoch; the old attempt's
		// traffic is unrecoverable.
		mRetxEvictions.Inc()
		return nil, 0, fmt.Errorf("%w: link %d→%d seq %d (sender in epoch %d, wanted %d)", ErrRetransmitGone, from, to, seq, w.epoch, epoch)
	}
	e, ok := w.buf[seq]
	if !ok {
		mRetxEvictions.Inc()
		return nil, 0, fmt.Errorf("%w: link %d→%d seq %d (window %d)", ErrRetransmitGone, from, to, seq, s.window)
	}
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, e.sum, nil
}

// clear drops every replay window fed by rank `from` (epoch change: the
// retained traffic belongs to an abandoned attempt).
func (s *retxStore) clear(from int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.m {
		if key[0] == from {
			delete(s.m, key)
		}
	}
}
