package cluster

// Reliable delivery: NACK-driven retransmission over the faulty fabric.
//
// With Config.Reliable set, every sender keeps a bounded per-link window
// of recently sent messages (pristine copies, recorded before the fault
// hook can damage them). When the receiver detects a damaged or missing
// message — checksum mismatch, sequence gap, or receive timeout — it
// issues a NACK and the sender replays the message from its window. On
// the in-process fabric the NACK is a direct lookup into the sender's
// shared-memory window; on the TCP fabric it is a control frame answered
// with a replay frame (see tcptransport.go) — the recovery protocol
// itself is transport-agnostic. A replay passes through the fault hook
// again (with FaultContext.Attempt set), so recovery itself can fail;
// each failed attempt charges an exponentially growing backoff, and after
// Config.RetryBudget attempts Recv gives up with
// ErrRetryBudgetExhausted. Duplicate sequence numbers are silently
// deduplicated instead of erroring.
//
// All recovery traffic is charged through the same (α, β) virtual-time
// model as regular traffic, on the receiver (the rank that actually
// stalls): a NACK is a control message costing α, the replay costs
// α + bytes/β (plus any injected delay), and backoff is charged to MPI.
// Degraded-fabric runs therefore show physically meaningful slowdowns in
// BreakdownShares and Chrome traces.
//
// Buffer ownership: the retransmit window NEVER aliases a caller's (or a
// pool's) buffer. retxStore.record copies the payload into a private
// allocation at Send time, and lookups hand replays out as fresh copies,
// so collectives recycling their send buffers through bufpool immediately
// after Send cannot corrupt a later retransmission.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hzccl/internal/telemetry"
)

// Reliable-delivery errors.
var (
	// ErrRetryBudgetExhausted means a message could not be recovered
	// within Config.RetryBudget NACK/replay attempts.
	ErrRetryBudgetExhausted = errors.New("cluster: retransmission retry budget exhausted")
	// ErrRetransmitGone means the sender's retransmit window no longer
	// holds the NACKed message (it was evicted by newer traffic).
	ErrRetransmitGone = errors.New("cluster: message evicted from retransmit window")
)

// errNotYetSent reports that a NACKed sequence number has not been sent
// at all: the sender is merely slow, so the receiver should keep waiting
// rather than treat the message as lost.
var errNotYetSent = errors.New("cluster: message not yet sent")

// retxEntry is one replayable message: the pristine payload and its
// original checksum.
type retxEntry struct {
	data []byte
	sum  uint32
}

// retxWindow is the sender-side bounded replay buffer for one link.
type retxWindow struct {
	mu    sync.Mutex
	epoch int
	next  int // next sequence number to be recorded
	buf   map[int]retxEntry
}

// recvReliable is the recovering receive path (Config.Reliable).
func (r *Rank) recvReliable(from int) ([]byte, error) {
	waitStart := time.Now()
	timeouts := 0
	for {
		want := r.recvSeq[from]
		if m, ok := r.takePending(from, want); ok {
			return r.deliverReliable(m, from, want, waitStart)
		}
		abort := r.abortWatch()
		if r.failFast {
			if d := r.confirmedPeer(from); d >= 0 {
				return nil, r.rankFailedErr(d)
			}
		}
		m, ok, err := r.c.tr.recv(from, r.phys, r.c.cfg.RecvTimeout, abort)
		if errors.Is(err, errAborted) {
			// Cooperative abort: a rank was confirmed dead while we waited.
			// If it is another rank, bail out typed; if it is `from` itself,
			// fall through to the sender-exited salvage path.
			if d := r.confirmedPeer(from); d >= 0 {
				return nil, r.rankFailedErr(d)
			}
			ok, err = false, nil
		}
		if err != nil {
			// Timeout: the message was likely dropped in flight — recover
			// from the sender's window. If it simply has not been sent yet
			// the sender is slow, so wait again (bounded by the budget).
			r.noteSuspect(from)
			data, rerr := r.recover(from, want, err)
			if rerr == nil {
				r.unsuspect(from)
				r.recvSeq[from] = want + 1
				return data, nil
			}
			if errors.Is(rerr, errNotYetSent) {
				timeouts++
				if timeouts > r.c.cfg.RetryBudget {
					return nil, fmt.Errorf("%w: from rank %d after %d waits of %v", ErrRecvTimeout, from, timeouts, r.c.cfg.RecvTimeout)
				}
				continue
			}
			return nil, rerr
		}
		if !ok {
			// Sender exited; on the in-process fabric its replay window
			// survives, so messages it sent before exiting can still be
			// salvaged.
			r.c.det.confirm(from, nil)
			data, rerr := r.recover(from, want, ErrPeerFailed)
			if rerr == nil {
				r.recvSeq[from] = want + 1
				return data, nil
			}
			return nil, r.peerFailedErr(from)
		}
		r.unsuspect(from)
		r.chargeArrival(m)
		if m.epoch != r.epoch {
			if m.epoch < r.epoch {
				mDedups.Inc() // stale traffic from an abandoned attempt
				flight.Record(r.phys, telemetry.FlightDedup, int64(m.from), int64(r.phys), int64(m.seq), int64(m.epoch))
				continue
			}
			return nil, fmt.Errorf("cluster: rank %d got epoch %d message from rank %d while in epoch %d (AdvanceEpoch must be globally synchronized)",
				r.phys, m.epoch, from, r.epoch)
		}
		switch {
		case m.seq < want:
			mDedups.Inc() // duplicate delivery: silently dedup
			flight.Record(r.phys, telemetry.FlightDedup, int64(m.from), int64(r.phys), int64(m.seq), int64(m.epoch))
			continue
		case m.seq > want:
			// A gap means `want` was dropped: retain the later message for
			// in-order delivery and recover the missing one right away.
			r.stashPending(from, m)
			data, rerr := r.recover(from, want, fmt.Errorf("%w: from rank %d, expected seq %d got %d", ErrMessageLost, from, want, m.seq))
			if rerr != nil {
				return nil, rerr
			}
			r.recvSeq[from] = want + 1
			return data, nil
		}
		return r.deliverReliable(m, from, want, waitStart)
	}
}

// deliverReliable verifies an in-sequence message and, on corruption,
// drives the NACK/replay recovery.
func (r *Rank) deliverReliable(m message, from, want int, waitStart time.Time) ([]byte, error) {
	data, err := r.verifyPayload(m, from)
	if err == nil {
		r.unsuspect(from)
		r.recvSeq[from] = want + 1
		r.noteRecv(m, waitStart)
		return data, nil
	}
	if !errors.Is(err, ErrMessageCorrupt) {
		return nil, err
	}
	data, rerr := r.recover(from, want, err)
	if rerr != nil {
		return nil, rerr
	}
	r.recvSeq[from] = want + 1
	return data, nil
}

// recover drives the NACK → replay → backoff loop for one damaged or
// missing message and returns its recovered payload.
func (r *Rank) recover(from, want int, cause error) ([]byte, error) {
	cfg := r.c.cfg
	alpha := cfg.Latency.Seconds()
	for attempt := 1; attempt <= cfg.RetryBudget; attempt++ {
		mNacks.Inc()
		flight.Record(r.phys, telemetry.FlightNack, int64(from), int64(r.phys), int64(want), int64(attempt))
		// The NACK control message flies back to the sender: one α.
		r.Elapse(CatMPI, alpha)
		data, sum, err := r.c.tr.retransmit(from, r.phys, want, r.epoch)
		if err != nil {
			if errors.Is(err, errNotYetSent) {
				return nil, errNotYetSent
			}
			return nil, fmt.Errorf("%w (root cause: %v)", err, cause)
		}
		m := message{data: data, sentAt: r.now, from: from, seq: want, sum: sum, epoch: r.epoch}
		// The replay crosses the same faulty fabric as the original.
		_, dropped, _ := r.c.applyFaultAttempt(&m, r.phys, attempt, -1)
		if !dropped {
			mRetransmits.Inc()
			flight.Record(r.phys, telemetry.FlightRetransmit, int64(from), int64(r.phys), int64(want), int64(attempt))
			if tr := r.c.trace; tr != nil {
				tr.recordInstant(Instant{
					Name: fmt.Sprintf("retransmit %d>%d seq %d", from, r.phys, want),
					Rank: r.phys, Ts: r.wallNow(),
				})
			}
			r.chargeArrival(m) // α + bytes/β (+ injected delay)
			var s uint32
			r.Quiesce(func() { s = checksum(m.data) })
			if s == m.sum {
				return m.data, nil
			}
		}
		// Failed attempt: exponential backoff before the next NACK.
		r.Elapse(CatMPI, cfg.RetryBackoff.Seconds()*float64(uint64(1)<<uint(attempt-1)))
	}
	return nil, fmt.Errorf("%w: link %d→%d seq %d after %d attempts (root cause: %w)",
		ErrRetryBudgetExhausted, from, r.phys, want, cfg.RetryBudget, cause)
}
