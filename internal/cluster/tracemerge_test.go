package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// encodeTrace renders a chromeTrace as a merge input.
func encodeTrace(t *testing.T, ct chromeTrace) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ct); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestMergeChromeTracesAlignsAndRemaps(t *testing.T) {
	rank0 := chromeTrace{
		TraceEvents: []chromeEvent{
			{Name: "process_name", Ph: "M", Pid: chromePidVirtual},
			{Name: "CPR", Ph: "X", Ts: 5, Dur: 3, Pid: chromePidVirtual, Tid: 0},
			{Name: "send 0>1", Ph: "X", Ts: 10, Dur: 2, Pid: chromePidWall, Tid: 0},
			{Name: "msg", Ph: "s", Cat: "msg", ID: "t1:0>1:0.0", Ts: 11, Pid: chromePidWall, Tid: 0},
		},
		DisplayTimeUnit: "ms",
		Meta:            &TraceMeta{Rank: 0, World: 2, EpochNanos: 1_000_000},
	}
	rank1 := chromeTrace{
		TraceEvents: []chromeEvent{
			{Name: "recv 1<0", Ph: "X", Ts: 4, Dur: 2, Pid: chromePidWall, Tid: 1},
			{Name: "msg", Ph: "f", Cat: "msg", ID: "t1:0>1:0.0", Bp: "e", Ts: 5, Pid: chromePidWall, Tid: 1},
		},
		DisplayTimeUnit: "ms",
		// 9 µs behind rank 0's epoch: wall events must shift by +9 µs...
		Meta: &TraceMeta{Rank: 1, World: 2, EpochNanos: 1_000_000 - 9_000},
	}

	var out bytes.Buffer
	if err := MergeChromeTraces(&out, encodeTrace(t, rank0), encodeTrace(t, rank1)); err != nil {
		t.Fatal(err)
	}
	var merged chromeTrace
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	if merged.Meta == nil || merged.Meta.World != 2 || merged.Meta.Rank != -1 {
		t.Fatalf("merged meta = %+v, want world 2, rank -1", merged.Meta)
	}
	if merged.Meta.EpochNanos != 1_000_000-9_000 {
		t.Fatalf("merged epoch = %d, want the minimum input epoch", merged.Meta.EpochNanos)
	}

	byName := map[string]chromeEvent{}
	var procNames []string
	for _, ev := range merged.TraceEvents {
		if ev.Ph == "M" {
			procNames = append(procNames, ev.Args["name"].(string))
			continue
		}
		byName[ev.Name+"/"+ev.Ph] = ev
	}
	// Per-rank process names replace the per-file metadata.
	if len(procNames) != 4 {
		t.Fatalf("merged trace has %d process_name entries, want 4 (2 ranks × 2 timelines)", len(procNames))
	}
	for _, want := range []string{"rank 0 virtual time", "rank 0 wall clock", "rank 1 virtual time", "rank 1 wall clock"} {
		if !strings.Contains(strings.Join(procNames, "|"), want) {
			t.Fatalf("merged process names %v missing %q", procNames, want)
		}
	}

	// Rank 1 holds the minimum epoch, so its wall timeline stays put while
	// rank 0's shifts forward by the 9 µs its clock started later.
	if ev := byName["CPR/X"]; ev.Pid != 0 || ev.Ts != 5 {
		t.Fatalf("virtual event remapped to pid %d ts %v, want pid 0 ts 5 (virtual timelines never shift)", ev.Pid, ev.Ts)
	}
	if ev := byName["send 0>1/X"]; ev.Pid != 0*2+chromePidWall || ev.Ts != 10+9 {
		t.Fatalf("rank 0 wall event at pid %d ts %v, want pid 1 ts 19", ev.Pid, ev.Ts)
	}
	if ev := byName["recv 1<0/X"]; ev.Pid != 1*2+chromePidWall || ev.Ts != 4 {
		t.Fatalf("rank 1 wall event at pid %d ts %v, want pid 3 ts 4", ev.Pid, ev.Ts)
	}
	// The flow endpoints keep their shared ID and land on different pids.
	s, f := byName["msg/s"], byName["msg/f"]
	if s.ID != f.ID || s.ID == "" {
		t.Fatalf("flow ids diverged after merge: s=%q f=%q", s.ID, f.ID)
	}
	if s.Pid == f.Pid {
		t.Fatalf("flow endpoints share pid %d after merge; want distinct processes", s.Pid)
	}
	if f.Bp != "e" {
		t.Fatalf("flow finish lost its binding point: %+v", f)
	}
}

func TestMergeChromeTracesRejectsBadInput(t *testing.T) {
	if err := MergeChromeTraces(&bytes.Buffer{}); err == nil {
		t.Fatal("merging zero inputs should fail")
	}
	if err := MergeChromeTraces(&bytes.Buffer{}, strings.NewReader("not json")); err == nil {
		t.Fatal("merging a non-JSON input should fail")
	}
	noMeta := encodeTrace(t, chromeTrace{DisplayTimeUnit: "ms"})
	if err := MergeChromeTraces(&bytes.Buffer{}, noMeta); err == nil || !strings.Contains(err.Error(), "hzcclMeta") {
		t.Fatalf("merging a meta-less input: err = %v, want hzcclMeta complaint", err)
	}
	inProc := encodeTrace(t, chromeTrace{Meta: &TraceMeta{Rank: -1, World: 4}})
	if err := MergeChromeTraces(&bytes.Buffer{}, inProc); err == nil || !strings.Contains(err.Error(), "in-process") {
		t.Fatalf("merging an in-process trace: err = %v, want in-process complaint", err)
	}
	dup0 := encodeTrace(t, chromeTrace{Meta: &TraceMeta{Rank: 0, World: 2}})
	dup0b := encodeTrace(t, chromeTrace{Meta: &TraceMeta{Rank: 0, World: 2}})
	if err := MergeChromeTraces(&bytes.Buffer{}, dup0, dup0b); err == nil || !strings.Contains(err.Error(), "duplicates rank") {
		t.Fatalf("merging duplicate ranks: err = %v, want duplicate complaint", err)
	}
}
