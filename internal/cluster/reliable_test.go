package cluster

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// onLinkAttempts builds a hook applying action to every delivery attempt
// (original send and all retransmissions) of the seq-th message on one
// link, making that message unrecoverable.
func onLinkAttempts(from, to, seq int, action FaultAction) Fault {
	return func(fc FaultContext) (FaultAction, float64) {
		if fc.From == from && fc.To == to && fc.Seq == seq {
			return action, 0
		}
		return FaultDeliver, 0
	}
}

// onFirstAttempts corrupts the first k delivery attempts of one message
// and lets later retransmissions through.
func onFirstAttempts(from, to, seq, k int, action FaultAction) Fault {
	return func(fc FaultContext) (FaultAction, float64) {
		if fc.From == from && fc.To == to && fc.Seq == seq && fc.Attempt < k {
			return action, 0
		}
		return FaultDeliver, 0
	}
}

func TestReliableRecoversCorruption(t *testing.T) {
	retx0 := mRetransmits.Value()
	payload := []byte("precious bytes")
	var got []byte
	var recvErr error
	_, err := Run(Config{
		Ranks:    2,
		Reliable: true,
		Fault:    onFirstAttempts(0, 1, 0, 1, FaultCorrupt),
	}, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, payload)
		}
		got, recvErr = r.Recv(0)
		return nil
	})
	if err != nil || recvErr != nil {
		t.Fatalf("run/recv failed: %v / %v", err, recvErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("recovered payload mismatch: %q", got)
	}
	if d := mRetransmits.Value() - retx0; d < 1 {
		t.Fatalf("no retransmission counted (delta %d)", d)
	}
}

func TestReliableRecoversDropViaGap(t *testing.T) {
	// The first message is dropped (original attempt only); the second
	// arrives and exposes the gap, triggering immediate recovery. Both
	// payloads must be delivered, in order.
	var got [2][]byte
	var errs [2]error
	_, err := Run(Config{
		Ranks:    2,
		Reliable: true,
		Fault:    onFirstAttempts(0, 1, 0, 1, FaultDrop),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("first")); err != nil {
				return err
			}
			return r.Send(1, []byte("second"))
		}
		got[0], errs[0] = r.Recv(0)
		got[1], errs[1] = r.Recv(0)
		return nil
	})
	if err != nil || errs[0] != nil || errs[1] != nil {
		t.Fatalf("run failed: %v / %v / %v", err, errs[0], errs[1])
	}
	if string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("out-of-order or wrong recovery: %q, %q", got[0], got[1])
	}
}

func TestReliableRecoversDropViaTimeout(t *testing.T) {
	// Only one message, dropped in flight: nothing ever exposes a gap, so
	// the wall-clock timeout drives the NACK.
	var got []byte
	var recvErr error
	_, err := Run(Config{
		Ranks:       2,
		Reliable:    true,
		RecvTimeout: 30 * time.Millisecond,
		Fault:       onFirstAttempts(0, 1, 0, 1, FaultDrop),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("vanished once")); err != nil {
				return err
			}
			_, err := r.Recv(1) // stay alive until the receiver is done
			return err
		}
		got, recvErr = r.Recv(0)
		if recvErr != nil {
			return recvErr
		}
		return r.Send(0, []byte("done"))
	})
	if err != nil || recvErr != nil {
		t.Fatalf("run/recv failed: %v / %v", err, recvErr)
	}
	if string(got) != "vanished once" {
		t.Fatalf("recovered payload mismatch: %q", got)
	}
}

func TestReliableDedupsDuplicates(t *testing.T) {
	dedup0 := mDedups.Value()
	var got [2][]byte
	var errs [2]error
	_, err := Run(Config{
		Ranks:    2,
		Reliable: true,
		Fault:    FaultOn(OnLink(0, 1, 0), FaultDuplicate, 0),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("once")); err != nil {
				return err
			}
			return r.Send(1, []byte("twice"))
		}
		got[0], errs[0] = r.Recv(0)
		got[1], errs[1] = r.Recv(0)
		return nil
	})
	if err != nil || errs[0] != nil || errs[1] != nil {
		t.Fatalf("run failed: %v / %v / %v", err, errs[0], errs[1])
	}
	if string(got[0]) != "once" || string(got[1]) != "twice" {
		t.Fatalf("dedup delivered wrong payloads: %q, %q", got[0], got[1])
	}
	if d := mDedups.Value() - dedup0; d < 1 {
		t.Fatalf("duplicate not counted as dedup (delta %d)", d)
	}
}

func TestReliableRetryBudgetExhaustedOnPersistentCorruption(t *testing.T) {
	var recvErr error
	_, err := Run(Config{
		Ranks:       2,
		Reliable:    true,
		RetryBudget: 3,
		Fault:       onLinkAttempts(0, 1, 0, FaultCorrupt),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("doomed")); err != nil {
				return err
			}
			_, err := r.Recv(1)
			return err
		}
		_, recvErr = r.Recv(0)
		if recvErr == nil {
			return r.Send(0, []byte("unexpected"))
		}
		return nil
	})
	if !errors.Is(recvErr, ErrRetryBudgetExhausted) {
		t.Fatalf("want ErrRetryBudgetExhausted, got recv=%v run=%v", recvErr, err)
	}
	if !errors.Is(recvErr, ErrMessageCorrupt) {
		t.Fatalf("exhaustion should wrap the root cause: %v", recvErr)
	}
}

func TestReliableRetryBudgetExhaustedOnPersistentDrop(t *testing.T) {
	var recvErr error
	done := make(chan struct{})
	_, err := Run(Config{
		Ranks:       2,
		Reliable:    true,
		RetryBudget: 2,
		RecvTimeout: 25 * time.Millisecond,
		Fault:       onLinkAttempts(0, 1, 0, FaultDrop),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("black hole")); err != nil {
				return err
			}
			<-done // stay alive so the receiver exercises the NACK path
			return nil
		}
		_, recvErr = r.Recv(0)
		close(done)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !errors.Is(recvErr, ErrRetryBudgetExhausted) {
		t.Fatalf("want ErrRetryBudgetExhausted, got %v", recvErr)
	}
}

func TestReliableRetransmitWindowEviction(t *testing.T) {
	// The first message is dropped permanently and four more pushes evict
	// it from a 2-entry window before the receiver starts: the NACK must
	// fail with ErrRetransmitGone, not hang or fabricate data.
	var recvErr error
	var wg sync.WaitGroup
	wg.Add(1) // receiver waits until all sends are recorded
	_, err := Run(Config{
		Ranks:       2,
		Reliable:    true,
		RetxWindow:  2,
		RetryBudget: 2,
		RecvTimeout: 25 * time.Millisecond,
		Fault:       onLinkAttempts(0, 1, 0, FaultDrop),
	}, func(r *Rank) error {
		if r.ID == 0 {
			for i := 0; i < 5; i++ {
				if err := r.Send(1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			wg.Done()
			return nil
		}
		wg.Wait()
		_, recvErr = r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !errors.Is(recvErr, ErrRetransmitGone) {
		t.Fatalf("want ErrRetransmitGone, got %v", recvErr)
	}
}

func TestReliableRecoveryChargesVirtualTime(t *testing.T) {
	// Two corrupt attempts before success: recovery must charge NACK
	// latency and at least one backoff interval to the receiver's MPI time.
	const backoff = time.Millisecond
	var mpi float64
	_, err := Run(Config{
		Ranks:        2,
		Reliable:     true,
		RetryBackoff: backoff,
		Fault:        onFirstAttempts(0, 1, 0, 2, FaultCorrupt),
	}, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte("costly"))
		}
		if _, err := r.Recv(0); err != nil {
			return err
		}
		mpi = r.Breakdown()[CatMPI]
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if mpi < backoff.Seconds() {
		t.Fatalf("recovery backoff not charged: MPI %g < %g", mpi, backoff.Seconds())
	}
}

func TestAdvanceEpochDiscardsStaleTraffic(t *testing.T) {
	// A message sent in epoch 0 must not be confused with epoch 1 traffic
	// after all ranks advance: the receiver silently discards it and
	// delivers the new epoch's payload.
	for _, reliable := range []bool{false, true} {
		var got []byte
		var recvErr error
		_, err := Run(Config{Ranks: 2, Reliable: reliable}, func(r *Rank) error {
			if r.ID == 0 {
				if err := r.Send(1, []byte("stale")); err != nil {
					return err
				}
				if err := r.Barrier(); err != nil {
					return err
				}
				r.AdvanceEpoch()
				return r.Send(1, []byte("fresh"))
			}
			if err := r.Barrier(); err != nil {
				return err
			}
			r.AdvanceEpoch()
			got, recvErr = r.Recv(0)
			return nil
		})
		if err != nil || recvErr != nil {
			t.Fatalf("reliable=%v: run/recv failed: %v / %v", reliable, err, recvErr)
		}
		if string(got) != "fresh" {
			t.Fatalf("reliable=%v: stale traffic delivered: %q", reliable, got)
		}
	}
}

func TestOutOfOrderRetainsLaterMessage(t *testing.T) {
	// Strict mode: a sequence gap errors, but the later message that
	// exposed it must be redelivered by the next Recv, not discarded.
	var first, second error
	var got []byte
	_, err := Run(Config{
		Ranks: 2,
		Fault: FaultOn(OnLink(0, 1, 0), FaultDrop, 0),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("lost")); err != nil {
				return err
			}
			return r.Send(1, []byte("survivor"))
		}
		_, first = r.Recv(0)
		got, second = r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !errors.Is(first, ErrMessageLost) {
		t.Fatalf("gap not detected: %v", first)
	}
	if second != nil || string(got) != "survivor" {
		t.Fatalf("later message not retained: err=%v payload=%q", second, got)
	}
}

func TestBarrierAbortsWhenPeerExits(t *testing.T) {
	// Rank 2 exits before reaching the barrier; the others must abort with
	// ErrPeerFailed instead of deadlocking.
	barrierErrs := make([]error, 3)
	deserter := errors.New("rank 2 deserts")
	_, err := Run(Config{Ranks: 3}, func(r *Rank) error {
		if r.ID == 2 {
			return deserter
		}
		barrierErrs[r.ID] = r.Barrier()
		return barrierErrs[r.ID]
	})
	if !errors.Is(err, deserter) {
		t.Fatalf("root-cause error masked: %v", err)
	}
	for _, id := range []int{0, 1} {
		if !errors.Is(barrierErrs[id], ErrPeerFailed) {
			t.Fatalf("rank %d barrier did not abort: %v", id, barrierErrs[id])
		}
	}
}

func TestBarrierDeadlineWhenPeerStalls(t *testing.T) {
	// Rank 1 stalls (alive but never arriving); with RecvTimeout set, the
	// waiter's deadline must fire instead of waiting forever.
	var barrierErr error
	release := make(chan struct{})
	_, _ = Run(Config{
		Ranks:       2,
		RecvTimeout: 10 * time.Millisecond,
	}, func(r *Rank) error {
		if r.ID == 1 {
			<-release
			return nil
		}
		barrierErr = r.Barrier()
		close(release)
		return barrierErr
	})
	if !errors.Is(barrierErr, ErrRecvTimeout) {
		t.Fatalf("stalled barrier did not time out: %v", barrierErr)
	}
}

func TestAgreeMaxAgreesOnMaximum(t *testing.T) {
	const n = 4
	agreed := make([][]int, n)
	_, err := Run(Config{Ranks: n}, func(r *Rank) error {
		for round := 0; round < 3; round++ {
			v, err := r.AgreeMax(r.ID + round*10)
			if err != nil {
				return err
			}
			agreed[r.ID] = append(agreed[r.ID], v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	for id := 0; id < n; id++ {
		for round := 0; round < 3; round++ {
			want := (n - 1) + round*10
			if agreed[id][round] != want {
				t.Fatalf("rank %d round %d agreed on %d, want %d", id, round, agreed[id][round], want)
			}
		}
	}
}
