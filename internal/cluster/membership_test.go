package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestAgreeMaxConcurrentEpochStraggler stresses the consensus plane the
// way the degradation ladder actually uses it: every rank runs several
// AgreeMax rounds interleaved with AdvanceEpoch (which tears down replay
// windows concurrently with the barrier machinery), and one rank
// straggles into each round late. Run with -race; the invariants are
// that every round agrees on the true maximum and no round deadlocks or
// observes a stale generation.
func TestAgreeMaxConcurrentEpochStraggler(t *testing.T) {
	const n, rounds = 5, 8
	cfg := Config{Ranks: n, RecvTimeout: 2 * time.Second, Reliable: true}
	_, err := Run(cfg, func(r *Rank) error {
		for round := 0; round < rounds; round++ {
			if r.ID == round%n {
				// The straggler arrives last — after its peers are already
				// blocked in the round — and with fresh epoch state.
				time.Sleep(5 * time.Millisecond)
			}
			r.AdvanceEpoch()
			v, err := r.AgreeMax(r.ID*10 + round)
			if err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			if want := (n-1)*10 + round; v != want {
				return fmt.Errorf("round %d: agreed %d, want %d", round, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgreeDeadToleratesExitedRank verifies the membership round
// completes without a dead member: the victim exits immediately, the
// survivors' AgreeDead still terminates and reports the exited rank in
// the agreed dead set (transport-observed, beyond what anyone proposed).
func TestAgreeDeadToleratesExitedRank(t *testing.T) {
	const n = 4
	cfg := Config{Ranks: n, RecvTimeout: 2 * time.Second}
	var agreedDead atomic.Uint64
	_, err := Run(cfg, func(r *Rank) error {
		if r.ID == 2 {
			return nil // dies before contributing
		}
		// Give the victim time to exit so the round observes it missing.
		time.Sleep(10 * time.Millisecond)
		dead, err := r.AgreeDead(0)
		if err != nil {
			return err
		}
		agreedDead.Store(dead)
		if dead&rankBit(2) == 0 {
			return fmt.Errorf("rank %d: agreed dead %b does not include exited rank 2", r.ID, dead)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if agreedDead.Load()&rankBit(2) == 0 {
		t.Fatalf("agreed dead set %b missing rank 2", agreedDead.Load())
	}
}

// TestShrinkWorldRenumbers pins the renumbering contract: after evicting
// rank 1 of a 2,2 topology, survivors are dense, Members maps virtual to
// physical ids, and the shrunken topology drops the dead slot.
func TestShrinkWorldRenumbers(t *testing.T) {
	const n = 4
	cfg := Config{Ranks: n, RecvTimeout: 2 * time.Second, Topology: &Topology{NodeSizes: []int{2, 2}}}
	res, err := Run(cfg, func(r *Rank) error {
		if r.ID == 1 {
			err := r.ShrinkWorld(rankBit(1))
			if !errors.Is(err, ErrEvicted) {
				return fmt.Errorf("self-eviction returned %v, want ErrEvicted", err)
			}
			return err
		}
		if err := r.ShrinkWorld(rankBit(1)); err != nil {
			return err
		}
		if r.N != 3 {
			return fmt.Errorf("post-shrink N = %d, want 3", r.N)
		}
		wantID := map[int]int{0: 0, 2: 1, 3: 2}[r.PhysID()]
		if r.ID != wantID {
			return fmt.Errorf("phys %d renumbered to %d, want %d", r.PhysID(), r.ID, wantID)
		}
		members := r.Members()
		for v, p := range []int{0, 2, 3} {
			if members[v] != p {
				return fmt.Errorf("members = %v, want [0 2 3]", members)
			}
		}
		topo := r.Config().Topology
		if topo == nil || len(topo.NodeSizes) != 2 || topo.NodeSizes[0] != 1 || topo.NodeSizes[1] != 2 {
			return fmt.Errorf("shrunken topology = %v, want [1 2]", topo)
		}
		// The shrunken world must still communicate: a full barrier.
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Fatalf("Evicted = %v, want [1]", res.Evicted)
	}
}
