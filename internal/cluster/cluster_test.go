package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := Run(Config{Ranks: -1}, func(r *Rank) error { return nil }); err == nil {
		t.Fatal("negative ranks accepted")
	}
}

func TestSendRecvMovesData(t *testing.T) {
	res, err := Run(Config{Ranks: 2}, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte("hello"))
		}
		data, err := r.Recv(0)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no time charged for communication")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(Config{Ranks: 2}, func(r *Rank) error {
		if r.ID == 0 {
			buf := []byte{1, 2, 3}
			if err := r.Send(1, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not be visible to the receiver
			return nil
		}
		data, err := r.Recv(0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			return fmt.Errorf("send did not copy payload: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNetworkModelCharging(t *testing.T) {
	// 1 MB at 1 GB/s with 1 ms latency: arrival = 1 ms + 1 ms = 2 ms.
	cfg := Config{Ranks: 2, Latency: time.Millisecond, BandwidthBytes: 1e9}
	payload := make([]byte, 1_000_000)
	res, err := Run(cfg, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, payload)
		}
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.002
	if math.Abs(res.Time-want) > 1e-9 {
		t.Fatalf("collective time %g, want %g", res.Time, want)
	}
	if math.Abs(res.Breakdown[CatMPI]-want) > 1e-9 {
		t.Fatalf("MPI breakdown %g, want %g", res.Breakdown[CatMPI], want)
	}
}

func TestRecvAfterComputeOverlaps(t *testing.T) {
	// If the receiver is busy past the arrival time, Recv must not add
	// network time (communication fully overlapped).
	cfg := Config{Ranks: 2, Latency: time.Millisecond, BandwidthBytes: 1e9}
	res, err := Run(cfg, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, make([]byte, 1000))
		}
		r.Elapse(CatCPT, 1.0) // busy for a full virtual second
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown[CatMPI] != 0 {
		t.Fatalf("overlapped recv charged %g MPI seconds", res.Breakdown[CatMPI])
	}
	if math.Abs(res.Time-1.0) > 1e-9 {
		t.Fatalf("time %g, want 1.0", res.Time)
	}
}

func TestElapseAndBreakdown(t *testing.T) {
	res, err := Run(Config{Ranks: 3}, func(r *Rank) error {
		r.Elapse(CatCPR, 0.5)
		r.Elapse(CatDPR, 0.25)
		r.Elapse(CatCPR, -1) // ignored
		r.Elapse(CatCPR, math.NaN())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown[CatCPR] != 1.5 || res.Breakdown[CatDPR] != 0.75 {
		t.Fatalf("breakdown %v", res.Breakdown)
	}
	if res.Time != 0.75 || res.AvgTime() != 0.75 || res.MinTime() != 0.75 {
		t.Fatalf("times: %v %v %v", res.Time, res.AvgTime(), res.MinTime())
	}
	fr := res.BreakdownFractions()
	if math.Abs(fr[CatCPR]-2.0/3) > 1e-12 {
		t.Fatalf("fractions %v", fr)
	}
}

func TestTimeMeasuresWork(t *testing.T) {
	res, err := Run(Config{Ranks: 1}, func(r *Rank) error {
		r.Time(CatCPT, func() { time.Sleep(5 * time.Millisecond) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown[CatCPT] < 0.004 {
		t.Fatalf("measured %g, want >= 4ms", res.Breakdown[CatCPT])
	}
}

func TestTimeScaled(t *testing.T) {
	res, err := Run(Config{Ranks: 1}, func(r *Rank) error {
		r.TimeScaled(CatCPR, 0.1, func() { time.Sleep(10 * time.Millisecond) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Breakdown[CatCPR]
	if got < 0.0009 || got > 0.01 {
		t.Fatalf("scaled measurement %g, want ~1ms", got)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	res, err := Run(Config{Ranks: 4, Latency: time.Microsecond}, func(r *Rank) error {
		r.Elapse(CatCPT, float64(r.ID)*0.1)
		r.Barrier()
		if r.Now() < 0.3 {
			return fmt.Errorf("rank %d left barrier at %g", r.ID, r.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// all ranks leave at the same time
	for _, rt := range res.RankTimes {
		if math.Abs(rt-res.RankTimes[0]) > 1e-12 {
			t.Fatalf("ranks left barrier at different times: %v", res.RankTimes)
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	_, err := Run(Config{Ranks: 3}, func(r *Rank) error {
		for i := 0; i < 10; i++ {
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeerValidation(t *testing.T) {
	_, err := Run(Config{Ranks: 2}, func(r *Rank) error {
		if err := r.Send(5, nil); !errors.Is(err, ErrBadPeer) {
			return fmt.Errorf("send oob: %v", err)
		}
		if err := r.Send(r.ID, nil); !errors.Is(err, ErrBadPeer) {
			return fmt.Errorf("self send: %v", err)
		}
		if _, err := r.Recv(-1); !errors.Is(err, ErrBadPeer) {
			return fmt.Errorf("recv oob: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorPropagates(t *testing.T) {
	want := errors.New("boom")
	_, err := Run(Config{Ranks: 2}, func(r *Rank) error {
		if r.ID == 1 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

func TestRankPanicRecovered(t *testing.T) {
	_, err := Run(Config{Ranks: 1}, func(r *Rank) error {
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	_, err := Run(Config{Ranks: 2}, func(r *Rank) error {
		if r.ID == 0 {
			for i := 0; i < 5; i++ {
				if err := r.Send(1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 5; i++ {
			data, err := r.Recv(0)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order: %d", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A full ring pipeline: the virtual completion time of N-1 rounds must be
// close to (N-1)(α + m/β), the textbook ring bound, because sends overlap.
func TestRingPipelineTiming(t *testing.T) {
	const n = 8
	const m = 100_000
	cfg := Config{Ranks: n, Latency: 10 * time.Microsecond, BandwidthBytes: 1e9}
	res, err := Run(cfg, func(r *Rank) error {
		buf := make([]byte, m)
		next := (r.ID + 1) % n
		prev := (r.ID - 1 + n) % n
		for round := 0; round < n-1; round++ {
			got, err := r.SendRecv(next, buf, prev)
			if err != nil {
				return err
			}
			buf = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	perRound := 10e-6 + float64(m)/1e9
	want := float64(n-1) * perRound
	if math.Abs(res.Time-want)/want > 0.01 {
		t.Fatalf("ring time %g, want ~%g", res.Time, want)
	}
}

func TestTraceRecordsTimeline(t *testing.T) {
	c, tr, err := NewTraced(Config{Ranks: 2, Latency: time.Millisecond, BandwidthBytes: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(func(r *Rank) error {
		r.Elapse(CatCPR, 0.01)
		if r.ID == 0 {
			return r.Send(1, make([]byte, 1000))
		}
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) < 3 {
		t.Fatalf("expected >=3 events, got %d: %v", len(evs), evs)
	}
	var sawCPR, sawMPI bool
	for _, ev := range evs {
		if ev.Dur <= 0 {
			t.Fatalf("non-positive duration: %+v", ev)
		}
		switch ev.Category {
		case CatCPR:
			sawCPR = true
		case CatMPI:
			sawMPI = true
		}
	}
	if !sawCPR || !sawMPI {
		t.Fatalf("missing categories in %v", evs)
	}
	// events per rank must be non-overlapping and ordered
	lastEnd := map[int]float64{}
	for _, ev := range evs {
		if ev.Start+1e-12 < lastEnd[ev.Rank] {
			t.Fatalf("overlapping events on rank %d: %+v", ev.Rank, ev)
		}
		lastEnd[ev.Rank] = ev.Start + ev.Dur
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", decoded.DisplayTimeUnit)
	}
	var complete, meta, flows int
	for _, ev := range decoded.TraceEvents {
		switch ev["ph"] {
		case "X":
			// Virtual-time slices live on pid 0; the wall pid additionally
			// carries the flow-anchor slices of every send/recv.
			if ev["pid"] == float64(chromePidVirtual) {
				complete++
			}
		case "M":
			meta++
		case "s", "f":
			flows++
		}
	}
	if complete != len(evs) {
		t.Fatalf("chrome trace has %d virtual complete events, want %d", complete, len(evs))
	}
	if flows < 2 {
		t.Fatalf("chrome trace has %d flow events, want at least the send/recv pair", flows)
	}
	if meta == 0 {
		t.Fatal("chrome trace missing process_name metadata")
	}
}

// Time/TimeScaled must bridge the real measurement into the trace's
// wall-clock timeline, in parallel with the virtual-time events.
func TestTraceRecordsWallSpans(t *testing.T) {
	c, tr, err := NewTraced(Config{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(func(r *Rank) error {
		r.Time(CatCPR, func() { time.Sleep(2 * time.Millisecond) })
		r.TimeScaled(CatHPR, 0.5, func() { time.Sleep(time.Millisecond) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := tr.WallEvents()
	if len(wall) != 2 {
		t.Fatalf("wall events = %d, want 2: %v", len(wall), wall)
	}
	for _, ev := range wall {
		if ev.Dur < 0.5e-3 {
			t.Fatalf("wall span too short (%.2gs): %+v", ev.Dur, ev)
		}
		if ev.Start < 0 {
			t.Fatalf("wall span before epoch: %+v", ev)
		}
	}
	// TimeScaled charges scaled virtual time but records unscaled wall time:
	// the HPR wall span must be >= its virtual charge.
	evs := tr.Events()
	var virtHPR, wallHPR float64
	for _, ev := range evs {
		if ev.Category == CatHPR {
			virtHPR = ev.Dur
		}
	}
	for _, ev := range wall {
		if ev.Category == CatHPR {
			wallHPR = ev.Dur
		}
	}
	if wallHPR <= virtHPR {
		t.Fatalf("wall HPR %.3g should exceed scaled virtual HPR %.3g", wallHPR, virtHPR)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	sawWallPid := false
	for _, ev := range decoded.TraceEvents {
		if pid, _ := ev["pid"].(float64); pid == 1 && ev["ph"] == "X" {
			sawWallPid = true
		}
	}
	if !sawWallPid {
		t.Fatal("chrome trace has no wall-clock (pid 1) events")
	}
}

func TestUntracedClusterRecordsNothing(t *testing.T) {
	_, err := Run(Config{Ranks: 1}, func(r *Rank) error {
		r.Elapse(CatCPT, 0.5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A rank that fails mid-collective must not deadlock its peers: their
// pending receives fail fast with ErrPeerFailed.
func TestPeerFailurePropagates(t *testing.T) {
	boom := errors.New("simulated rank crash")
	_, err := Run(Config{Ranks: 3}, func(r *Rank) error {
		if r.ID == 1 {
			return boom // dies before sending anything
		}
		// ranks 0 and 2 wait for messages from rank 1
		_, err := r.Recv(1)
		if !errors.Is(err, ErrPeerFailed) {
			return fmt.Errorf("rank %d: expected ErrPeerFailed, got %v", r.ID, err)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("crash not reported: %v", err)
	}
}

// Buffered messages sent before a rank exits must still be delivered.
func TestMessagesDrainAfterSenderExits(t *testing.T) {
	_, err := Run(Config{Ranks: 2}, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte{7}) // exits immediately after
		}
		got, err := r.Recv(0)
		if err != nil {
			return err
		}
		if got[0] != 7 {
			return fmt.Errorf("got %v", got)
		}
		// a second receive must now fail rather than hang
		if _, err := r.Recv(0); !errors.Is(err, ErrPeerFailed) {
			return fmt.Errorf("second recv: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A failure inside a real collective must surface as an error on every
// rank rather than a hang.
func TestCollectiveSurvivesPeerPanic(t *testing.T) {
	_, err := Run(Config{Ranks: 4}, func(r *Rank) error {
		if r.ID == 2 {
			panic("rank 2 exploded")
		}
		next, prev := (r.ID+1)%4, (r.ID+3)%4
		for round := 0; round < 3; round++ {
			if err := r.Send(next, []byte{byte(round)}); err != nil {
				return err
			}
			if _, err := r.Recv(prev); err != nil {
				return err // expected for rank 3 (recv from 2)
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}
