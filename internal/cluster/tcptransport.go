package cluster

// TCPTransport: the real-socket backend. Each rank of the cluster is its
// own OS process; point-to-point messages travel as length-prefixed
// frames over a full TCP mesh (one connection per rank pair, dialed by
// the higher rank, accepted by the lower). Everything the in-process
// fabric models stays live on the wire: the crc32c checksum, sequence
// number, epoch, virtual send time and injected delay all travel inside
// the frame, so integrity checking, the (α, β) clock model, fault
// injection and NACK-driven recovery behave identically — except that a
// NACK here is an actual control frame answered by the sender's process
// with a replay frame, and the barrier control plane is a gather/release
// exchange through rank 0 instead of a shared condition variable.
//
// Wire protocol (all integers little-endian):
//
//	handshake   "hZCC" ver=3 | u32 rank | u32 world | u64 epochNanos   (both directions)
//	frame       u32 length | u8 type | body
//	  data      u32 seq | u32 epoch | u32 sum | f64 sentAt | f64 delay | u64 trace | payload
//	  nack      u32 seq | u32 epoch
//	  retx      u8 status | u32 seq | u32 epoch | u32 sum | payload
//	  agree     u32 gen | u8 flags | f64 clock | i64 value | u64 dead
//	  release   u32 gen | u8 flags | f64 clock | i64 value | u64 dead
//
// The frame length covers everything after the length field itself.
//
// Version 2 extended version 1 in two places, both for distributed
// tracing: the handshake carries the sender's start time (UnixNano), and
// every process anchors its trace timestamps to the minimum start time
// observed across the mesh — the full mesh guarantees every process sees
// every other's epoch, so the minimum is identical everywhere and merged
// per-process traces line up without a clock-sync protocol. Data frames
// additionally carry the sender's 64-bit collective trace ID, so a
// receiving process can pair its delivery with the remote send.
//
// Version 3 makes the control plane failure-aware for elastic
// membership: agree/release frames carry a flags byte (bit 0 = tolerant
// membership round) and a u64 dead-set bitmap of physical ranks. The
// coordinator — the lowest *live* rank, no longer hardwired to rank 0 —
// marks peers whose connections closed mid-round as dead instead of
// failing the gather, and always releases the survivors with the dead
// set so everyone observes the same failure. A reader goroutine that
// observes its connection reset reports the peer to the failure detector
// (Config.onPeerDown), which is how a remote process crash feeds
// cooperative abort and shrink-and-continue.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hzccl/internal/bufpool"
)

// TCP protocol constants.
const (
	tcpMagic   = "hZCC"
	tcpVersion = 3

	// tcpHelloLen is the handshake size: magic, version, rank, world,
	// epoch nanos.
	tcpHelloLen = 4 + 1 + 4 + 4 + 8

	// tcpDataHdrLen is the data-frame body prefix after the type byte:
	// seq, epoch, sum, sentAt, delay, trace.
	tcpDataHdrLen = 4 + 4 + 4 + 8 + 8 + 8

	frameData    = 1
	frameNack    = 2
	frameRetx    = 3
	frameAgree   = 4
	frameRelease = 5

	// retxOK/retxNotYetSent/retxGone are the status codes of a retx frame.
	retxOK         = 0
	retxNotYetSent = 1
	retxGone       = 2

	// maxFrameBytes bounds a single frame (1 GiB): anything larger is a
	// corrupted length prefix, not a payload this system produces.
	maxFrameBytes = 1 << 30
)

// ErrTransportClosed is returned by TCP transport operations after the
// local endpoint shut down.
var ErrTransportClosed = errors.New("cluster: tcp transport closed")

// TCPOptions configures a TCPTransport.
type TCPOptions struct {
	// Rank is this process's rank in [0, len(Peers)).
	Rank int
	// Peers lists every rank's listen address ("host:port"), indexed by
	// rank. All processes must pass the same list in the same order.
	Peers []string
	// DialTimeout bounds the total time spent forming the mesh (dialing
	// lower ranks, accepting higher ones). Peers start at different
	// moments, so dials are retried with backoff until the deadline.
	// 0 selects 15s.
	DialTimeout time.Duration
	// Listener, when non-nil, is used instead of listening on
	// Peers[Rank]. Tests use it to grab ephemeral ports (":0") before the
	// peer list is assembled.
	Listener net.Listener
}

// tcpCtl is one control-plane event (agree or release frame) delivered to
// a waiting consensus round.
type tcpCtl struct {
	kind  byte
	gen   uint32
	flags byte
	clock float64
	val   int64
	dead  uint64
}

// tcpCtlBodyLen is the control-frame body after the type byte: gen,
// flags, clock, value, dead bitmap.
const tcpCtlBodyLen = 4 + 1 + 8 + 8 + 8

// tcpRetx is a replay answer for an outstanding NACK.
type tcpRetx struct {
	status byte
	seq    uint32
	epoch  uint32
	sum    uint32
	data   []byte
}

// tcpPeer is one live connection of the mesh.
type tcpPeer struct {
	rank int
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	inbox chan message // data frames, in arrival order
	retx  chan tcpRetx // replay answers (one outstanding NACK at a time)
	ctl   chan tcpCtl  // agree/release frames

	closeOnce sync.Once
}

func (p *tcpPeer) close() {
	p.closeOnce.Do(func() { p.conn.Close() })
}

// TCPTransport is the multi-process Transport. Create one per process
// with NewTCPTransport, hand it to Config.Transport, and Run executes the
// body for this process's rank only.
type TCPTransport struct {
	rank  int
	n     int
	cfg   Config
	bound bool

	ln    net.Listener
	peers []*tcpPeer // indexed by rank; nil at self

	// retx holds the local rank's sender-side replay windows; peers reach
	// them through NACK frames serviced by the reader goroutines.
	retxW retxStore

	// agreeGen numbers consensus rounds. Collectives call AgreeMax in the
	// same program order on every rank, so a plain counter matches
	// generations across the mesh; the generation travels in the frame so
	// a mismatch is detected as a protocol error instead of silently
	// pairing different barriers. live[i] is false once rank i was
	// evicted by a membership shrink: consensus rounds skip it, and the
	// round coordinator is the lowest live rank. Every surviving process
	// applies the same shrink, so the coordinator is identical everywhere.
	agreeMu  sync.Mutex
	agreeGen uint32
	live     []bool

	// onDown, set at bind, reports a peer whose connection reset to the
	// failure detector. Stored atomically because reader goroutines start
	// before bind runs.
	onDown atomic.Value // of func(rank int, cause error)

	// ownEpochNanos is this process's start time, sent in every handshake;
	// meshEpochNanos tracks the minimum over all epochs observed (our own
	// and every peer's), which every process of the full mesh resolves to
	// the same value — the shared trace-clock anchor.
	ownEpochNanos  int64
	meshEpochNanos atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once
}

// NewTCPTransport listens on Peers[Rank] and forms the full mesh: this
// process dials every lower rank and accepts a connection from every
// higher one, each direction verified by a magic/version/rank/world
// handshake. It blocks until the mesh is complete or DialTimeout expires.
func NewTCPTransport(opt TCPOptions) (*TCPTransport, error) {
	n := len(opt.Peers)
	if n < 1 {
		return nil, fmt.Errorf("cluster: tcp transport needs a non-empty peer list")
	}
	if opt.Rank < 0 || opt.Rank >= n {
		return nil, fmt.Errorf("cluster: tcp rank %d out of range [0, %d)", opt.Rank, n)
	}
	deadline := time.Now().Add(opt.DialTimeout)
	if opt.DialTimeout == 0 {
		deadline = time.Now().Add(15 * time.Second)
	}
	t := &TCPTransport{
		rank:   opt.Rank,
		n:      n,
		peers:  make([]*tcpPeer, n),
		live:   make([]bool, n),
		closed: make(chan struct{}),
	}
	for i := range t.live {
		t.live[i] = true
	}
	t.ownEpochNanos = time.Now().UnixNano()
	t.meshEpochNanos.Store(t.ownEpochNanos)
	ln := opt.Listener
	if ln == nil && n > 1 {
		var err error
		ln, err = net.Listen("tcp", opt.Peers[opt.Rank])
		if err != nil {
			return nil, fmt.Errorf("cluster: tcp rank %d listen %s: %w", opt.Rank, opt.Peers[opt.Rank], err)
		}
	}
	t.ln = ln

	// Accept from higher ranks and dial lower ranks concurrently: a
	// middle rank must do both at once or two middles can deadlock
	// waiting on each other.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	higher := n - 1 - opt.Rank
	if higher > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[0] = t.acceptPeers(higher, deadline)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[1] = t.dialPeers(opt.Peers, deadline)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Close()
			return nil, err
		}
	}
	// The mesh is complete: start one reader per connection.
	for _, p := range t.peers {
		if p != nil {
			go t.readLoop(p)
		}
	}
	return t, nil
}

// Addr returns the transport's listen address (useful with an ephemeral
// ":0" listener). Nil-listener transports (single rank) return "".
func (t *TCPTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// acceptPeers admits `count` inbound connections, each identifying itself
// as a distinct higher rank.
func (t *TCPTransport) acceptPeers(count int, deadline time.Time) error {
	for admitted := 0; admitted < count; {
		if d, ok := t.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: tcp rank %d accept (%d/%d peers admitted): %w", t.rank, admitted, count, err)
		}
		rank, err := t.handshake(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("cluster: tcp rank %d handshake: %w", t.rank, err)
		}
		if rank <= t.rank || rank >= t.n || t.peers[rank] != nil {
			conn.Close()
			return fmt.Errorf("cluster: tcp rank %d got unexpected hello from rank %d", t.rank, rank)
		}
		t.peers[rank] = newTCPPeer(rank, conn)
		mTransportAccepts.Inc()
		admitted++
	}
	return nil
}

// dialPeers connects to every lower rank, retrying with backoff until the
// deadline (peers start at different times).
func (t *TCPTransport) dialPeers(peers []string, deadline time.Time) error {
	for to := 0; to < t.rank; to++ {
		backoff := 10 * time.Millisecond
		for {
			conn, err := net.DialTimeout("tcp", peers[to], time.Until(deadline))
			if err == nil {
				rank, herr := t.handshake(conn)
				if herr == nil && rank == to {
					t.peers[to] = newTCPPeer(to, conn)
					mTransportDials.Inc()
					break
				}
				conn.Close()
				if herr == nil {
					herr = fmt.Errorf("peer identified as rank %d, expected %d", rank, to)
				}
				err = herr
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: tcp rank %d dial rank %d (%s): %w", t.rank, to, peers[to], err)
			}
			mTransportReconnects.Inc()
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
	}
	return nil
}

func newTCPPeer(rank int, conn net.Conn) *tcpPeer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency-bound control frames (NACK, agree)
	}
	return &tcpPeer{
		rank:  rank,
		conn:  conn,
		inbox: make(chan message, 64),
		retx:  make(chan tcpRetx, 1),
		ctl:   make(chan tcpCtl, 4),
	}
}

// handshake exchanges identity with a freshly connected peer (both sides
// send, both verify) and returns the peer's rank. The peer's start time
// folds into the mesh epoch (minimum over all ranks' start times).
func (t *TCPTransport) handshake(conn net.Conn) (int, error) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	var out [tcpHelloLen]byte
	copy(out[:4], tcpMagic)
	out[4] = tcpVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(t.rank))
	binary.LittleEndian.PutUint32(out[9:13], uint32(t.n))
	binary.LittleEndian.PutUint64(out[13:21], uint64(t.ownEpochNanos))
	if _, err := conn.Write(out[:]); err != nil {
		return 0, err
	}
	var in [tcpHelloLen]byte
	if _, err := io.ReadFull(conn, in[:]); err != nil {
		return 0, err
	}
	if string(in[:4]) != tcpMagic {
		return 0, fmt.Errorf("bad magic %q", in[:4])
	}
	if in[4] != tcpVersion {
		return 0, fmt.Errorf("protocol version %d, want %d", in[4], tcpVersion)
	}
	rank := int(binary.LittleEndian.Uint32(in[5:9]))
	world := int(binary.LittleEndian.Uint32(in[9:13]))
	if world != t.n {
		return 0, fmt.Errorf("peer rank %d built for a %d-rank world, this one has %d", rank, world, t.n)
	}
	peerEpoch := int64(binary.LittleEndian.Uint64(in[13:21]))
	for {
		cur := t.meshEpochNanos.Load()
		if peerEpoch >= cur || t.meshEpochNanos.CompareAndSwap(cur, peerEpoch) {
			break
		}
	}
	return rank, nil
}

// epochHint anchors trace wall clocks to the mesh epoch, the minimum
// start time across all ranks — identical in every process once the mesh
// is complete, so merged per-process traces share one time base.
func (t *TCPTransport) epochHint() (time.Time, bool) {
	return time.Unix(0, t.meshEpochNanos.Load()), true
}

// LocalRank reports that exactly one rank lives in this process.
func (t *TCPTransport) LocalRank() (int, bool) { return t.rank, true }

func (t *TCPTransport) bind(cfg Config) error {
	if cfg.Ranks != t.n {
		return fmt.Errorf("cluster: Config.Ranks = %d but the tcp mesh has %d peers", cfg.Ranks, t.n)
	}
	t.cfg = cfg
	t.retxW.window = cfg.RetxWindow
	if cfg.onPeerDown != nil {
		t.onDown.Store(cfg.onPeerDown)
	}
	t.bound = true
	return nil
}

// setMembers restricts the consensus plane to the surviving ranks after
// a membership shrink. Only the local process calls it (each process
// hosts one rank), but every survivor applies the identical list, so the
// lowest-live-rank coordinator stays consistent across the mesh.
func (t *TCPTransport) setMembers(members []int) {
	t.agreeMu.Lock()
	for i := range t.live {
		t.live[i] = false
	}
	for _, m := range members {
		if m >= 0 && m < t.n {
			t.live[m] = true
		}
	}
	t.agreeMu.Unlock()
}

// liveView snapshots the consensus membership: the coordinator (lowest
// live rank), the live count, and the live remote peers.
func (t *TCPTransport) liveView() (coord, count int, peers []*tcpPeer) {
	t.agreeMu.Lock()
	defer t.agreeMu.Unlock()
	coord = -1
	for i := 0; i < t.n; i++ {
		if !t.live[i] {
			continue
		}
		count++
		if coord < 0 {
			coord = i
		}
		if i != t.rank && t.peers[i] != nil {
			peers = append(peers, t.peers[i])
		}
	}
	return coord, count, peers
}

// DropConn force-closes the connection to the given peer rank: a test
// hook injecting a TCP connection failure without killing the peer's
// process. Both reader goroutines observe the reset and feed their
// failure detectors, exactly as if the peer had crashed.
func (t *TCPTransport) DropConn(rank int) error {
	p, err := t.peer(rank)
	if err != nil {
		return err
	}
	p.close()
	return nil
}

// Close tears down the mesh: the listener and every connection. Peers
// observe EOF, which surfaces to their collectives as ErrPeerFailed —
// the same semantics as an exited goroutine on the in-process fabric.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		for _, p := range t.peers {
			if p != nil {
				p.close()
			}
		}
	})
	return nil
}

// closeRank is invoked when the local rank's body returns; the whole
// process is done with the fabric.
func (t *TCPTransport) closeRank(rank int) {
	if rank == t.rank {
		t.Close()
	}
}

func (t *TCPTransport) peer(rank int) (*tcpPeer, error) {
	if rank < 0 || rank >= t.n || rank == t.rank {
		return nil, fmt.Errorf("%w: tcp peer %d of %d (local rank %d)", ErrBadPeer, rank, t.n, t.rank)
	}
	p := t.peers[rank]
	if p == nil {
		return nil, fmt.Errorf("cluster: tcp rank %d has no connection to rank %d", t.rank, rank)
	}
	return p, nil
}

// writeFrame sends one length-prefixed frame: hdr is the body prefix
// (starting with the type byte), payload an optional trailing byte
// string. Writes to one connection are serialized.
func (p *tcpPeer) writeFrame(hdr, payload []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)+len(payload)))
	p.wmu.Lock()
	defer p.wmu.Unlock()
	bufs := net.Buffers{lenBuf[:], hdr}
	if len(payload) > 0 {
		bufs = append(bufs, payload)
	}
	n, err := bufs.WriteTo(p.conn)
	mTransportBytesOut.Add(n)
	return err
}

// send frames a data message onto the wire. The transport recycles
// m.data once written: unlike the channel fabric no receiver in this
// address space will ever own it.
func (t *TCPTransport) send(from, to int, m message, copies int) error {
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	var hdr [1 + tcpDataHdrLen]byte
	hdr[0] = frameData
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(m.seq))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(m.epoch))
	binary.LittleEndian.PutUint32(hdr[9:13], m.sum)
	binary.LittleEndian.PutUint64(hdr[13:21], math.Float64bits(m.sentAt))
	binary.LittleEndian.PutUint64(hdr[21:29], math.Float64bits(m.delay))
	binary.LittleEndian.PutUint64(hdr[29:37], m.trace)
	for i := 0; i < copies; i++ {
		if err := p.writeFrame(hdr[:], m.data); err != nil {
			return fmt.Errorf("cluster: tcp send %d→%d seq %d: %w", from, to, m.seq, err)
		}
	}
	bufpool.PutBytes(m.data)
	return nil
}

// recv waits for the next data frame from the peer, honouring the
// wall-clock timeout and the cooperative-abort channel.
func (t *TCPTransport) recv(from, to int, timeout time.Duration, abort <-chan struct{}) (message, bool, error) {
	p, err := t.peer(from)
	if err != nil {
		return message{}, false, err
	}
	if timeout <= 0 && abort == nil {
		m, ok := <-p.inbox
		return m, ok, nil
	}
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case m, ok := <-p.inbox:
		return m, ok, nil
	case <-timeoutC:
		return message{}, false, ErrRecvTimeout
	case <-abort:
		return message{}, false, errAborted
	}
}

func (t *TCPTransport) recordRetx(from, to, seq, epoch int, data []byte, sum uint32) {
	t.retxW.record(from, to, seq, epoch, data, sum)
}

func (t *TCPTransport) clearRetx(rank int) { t.retxW.clear(rank) }

// retransmit NACKs the sending peer over the wire and waits for its
// replay frame. The sender's reader goroutine services the NACK from its
// local replay window, so recovery works across process boundaries. One
// semantic differs from the in-process fabric: there the replay window
// survives the sender's exit, while here the sender's process must still
// be alive to answer — collectives satisfy this naturally because every
// attempt ends with an AgreeMax before any rank leaves.
func (t *TCPTransport) retransmit(from, to, seq, epoch int) ([]byte, uint32, error) {
	p, err := t.peer(from)
	if err != nil {
		return nil, 0, err
	}
	var hdr [9]byte
	hdr[0] = frameNack
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(seq))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(epoch))
	if err := p.writeFrame(hdr[:], nil); err != nil {
		return nil, 0, fmt.Errorf("%w: nack %d→%d seq %d undeliverable (%v)", ErrPeerFailed, from, to, seq, err)
	}
	timeout := t.cfg.RecvTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case a, ok := <-p.retx:
		if !ok {
			return nil, 0, fmt.Errorf("%w: rank %d closed while replaying seq %d", ErrPeerFailed, from, seq)
		}
		if int(a.seq) != seq || int(a.epoch) != epoch {
			return nil, 0, fmt.Errorf("cluster: tcp replay mismatch from rank %d: got seq %d epoch %d, want %d/%d", from, a.seq, a.epoch, seq, epoch)
		}
		switch a.status {
		case retxOK:
			return a.data, a.sum, nil
		case retxNotYetSent:
			return nil, 0, errNotYetSent
		default:
			mRetxEvictions.Inc()
			return nil, 0, fmt.Errorf("%w: link %d→%d seq %d (remote window)", ErrRetransmitGone, from, to, seq)
		}
	case <-timer.C:
		// The replay itself went missing; the caller's retry budget
		// decides whether to NACK again.
		return nil, 0, errNotYetSent
	}
}

// agree is the TCP control plane: every live rank sends
// (clock, value, propose) to the coordinator — the lowest live rank —
// which answers with the maximum clock (plus the α·ceil(log2 n) tree
// cost over the actual participants, matching the in-process barrier),
// the maximum value, and the dead-set bitmap.
//
// Failure handling differs by round kind. In a classic round
// (tolerant == false) a peer observed dead fails the round for everyone:
// the coordinator still releases the survivors, carrying the dead set,
// so they all abort promptly with the same *RankFailedError instead of
// burning their own timeouts. In a tolerant membership round the dead
// peers simply join the released dead set and the round succeeds.
//
// One limitation is inherent to the star shape: if the *coordinator*
// process dies, its peers cannot complete any further round, so a TCP
// world only survives the death of non-coordinator ranks. The in-process
// fabric has no such restriction.
func (t *TCPTransport) agree(rank int, clock float64, v int, propose uint64, tolerant bool) (float64, int, uint64, error) {
	if t.n == 1 {
		return clock, v, propose, nil
	}
	t.agreeMu.Lock()
	gen := t.agreeGen
	t.agreeGen++
	t.agreeMu.Unlock()
	coord, liveN, livePeers := t.liveView()
	if liveN <= 1 {
		return clock, v, propose, nil
	}
	timeout := t.cfg.agreeTimeout()
	var flags byte
	if tolerant {
		flags = 1
	}

	if rank != coord {
		p, err := t.peer(coord)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := p.writeCtl(frameAgree, gen, flags, clock, int64(v), propose); err != nil {
			return 0, 0, 0, &RankFailedError{Rank: coord, Cause: fmt.Errorf("barrier proposal undeliverable: %w", err)}
		}
		rel, err := p.waitCtl(frameRelease, gen, timeout)
		if err != nil {
			if errors.Is(err, ErrPeerFailed) {
				return 0, 0, 0, &RankFailedError{Rank: coord, Cause: err}
			}
			return 0, 0, 0, err
		}
		if !tolerant && rel.dead != 0 {
			return 0, 0, rel.dead, fmt.Errorf("%w: barrier aborted", rankFailedFromBits(rel.dead, nil))
		}
		return rel.clock, int(rel.val), rel.dead, nil
	}

	// Coordinator: gather every live peer's proposal. A peer whose
	// connection closed mid-round is marked dead instead of failing the
	// gather; only a protocol error or a full timeout aborts.
	maxClock, maxVal, dead := clock, int64(v), propose
	participants := 1
	for _, p := range livePeers {
		a, err := p.waitCtl(frameAgree, gen, timeout)
		if err != nil {
			if errors.Is(err, ErrPeerFailed) {
				dead |= rankBit(p.rank)
				continue
			}
			return 0, 0, 0, err
		}
		participants++
		if a.clock > maxClock {
			maxClock = a.clock
		}
		if a.val > maxVal {
			maxVal = a.val
		}
		dead |= a.dead
	}
	leave := maxClock
	if participants > 1 {
		leave += t.cfg.Latency.Seconds() * math.Ceil(math.Log2(float64(participants)))
	}
	// Always release the survivors, carrying the dead set: in a failed
	// classic round this is what lets them abort promptly. A release that
	// cannot be written means the peer died after its proposal — the next
	// round will observe the closed connection; this round's dead set is
	// already fixed (other peers may have read it).
	for _, p := range livePeers {
		if dead&rankBit(p.rank) != 0 {
			continue
		}
		_ = p.writeCtl(frameRelease, gen, flags, leave, maxVal, dead)
	}
	if !tolerant && dead != 0 {
		return 0, 0, dead, fmt.Errorf("%w: barrier aborted", rankFailedFromBits(dead, nil))
	}
	return leave, int(maxVal), dead, nil
}

func (p *tcpPeer) writeCtl(kind byte, gen uint32, flags byte, clock float64, val int64, dead uint64) error {
	var hdr [1 + tcpCtlBodyLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], gen)
	hdr[5] = flags
	binary.LittleEndian.PutUint64(hdr[6:14], math.Float64bits(clock))
	binary.LittleEndian.PutUint64(hdr[14:22], uint64(val))
	binary.LittleEndian.PutUint64(hdr[22:30], dead)
	return p.writeFrame(hdr[:], nil)
}

// waitCtl blocks for the next control frame from the peer and verifies
// its kind and generation.
func (p *tcpPeer) waitCtl(kind byte, gen uint32, timeout time.Duration) (tcpCtl, error) {
	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case c, ok := <-p.ctl:
		if !ok {
			return tcpCtl{}, fmt.Errorf("%w: barrier aborted, rank %d disconnected", ErrPeerFailed, p.rank)
		}
		if c.kind != kind || c.gen != gen {
			return tcpCtl{}, fmt.Errorf("cluster: tcp barrier protocol error with rank %d: got kind %d gen %d, want %d/%d (AgreeMax must be called in the same order on every rank)",
				p.rank, c.kind, c.gen, kind, gen)
		}
		return c, nil
	case <-expired:
		return tcpCtl{}, fmt.Errorf("%w: barrier, rank %d missing after %v", ErrRecvTimeout, p.rank, timeout)
	}
}

// errReadLoopStopped is the internal marker for a reader that stopped on
// purpose (local transport shutdown), not because the peer failed.
var errReadLoopStopped = errors.New("cluster: tcp reader stopped by local close")

// classifyPeerErr maps the error that ended a reader goroutine to the
// typed evidence fed into the failure detector: connection reset/EOF
// style failures become ErrConnReset (the peer's process died or the
// link dropped), anything else stays a generic connection failure.
func classifyPeerErr(rank int, err error) error {
	switch {
	case err == nil,
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return fmt.Errorf("%w: rank %d", ErrConnReset, rank)
	}
	return fmt.Errorf("cluster: tcp rank %d connection failed: %w", rank, err)
}

// readLoop demultiplexes one connection: data frames feed the inbox,
// NACKs are serviced inline from the local replay window, replay answers
// and control frames wake their waiters. On error or EOF every channel
// is closed so blocked receivers fail fast — exactly the closed-mailbox
// semantics of the in-process fabric — and, unless the local transport
// itself is shutting down, the peer is reported to the failure detector
// with the classified cause.
func (t *TCPTransport) readLoop(p *tcpPeer) {
	err := t.readFrames(p)
	p.close()
	close(p.inbox)
	close(p.retx)
	close(p.ctl)
	if errors.Is(err, errReadLoopStopped) {
		return
	}
	select {
	case <-t.closed:
		// Local shutdown: the read error is our own close, not evidence
		// about the peer.
	default:
		if f, ok := t.onDown.Load().(func(rank int, cause error)); ok {
			f(p.rank, classifyPeerErr(p.rank, err))
		}
	}
}

func (t *TCPTransport) readFrames(p *tcpPeer) error {
	br := bufio.NewReaderSize(p.conn, 64<<10)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return err
		}
		frameLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if frameLen < 1 || frameLen > maxFrameBytes {
			return fmt.Errorf("cluster: tcp frame length %d out of range", frameLen)
		}
		mTransportBytesIn.Add(int64(frameLen) + 4)
		kind, err := br.ReadByte()
		if err != nil {
			return err
		}
		body := frameLen - 1
		switch kind {
		case frameData:
			if body < tcpDataHdrLen {
				return fmt.Errorf("cluster: tcp data frame body %d too short", body)
			}
			var hdr [tcpDataHdrLen]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			payload := bufpool.Bytes(body - tcpDataHdrLen)
			if _, err := io.ReadFull(br, payload); err != nil {
				return err
			}
			m := message{
				data:   payload,
				from:   p.rank,
				seq:    int(binary.LittleEndian.Uint32(hdr[0:4])),
				epoch:  int(binary.LittleEndian.Uint32(hdr[4:8])),
				sum:    binary.LittleEndian.Uint32(hdr[8:12]),
				sentAt: math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:20])),
				delay:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:28])),
				trace:  binary.LittleEndian.Uint64(hdr[28:36]),
			}
			select {
			case p.inbox <- m:
			case <-t.closed:
				return errReadLoopStopped
			}
		case frameNack:
			if body != 8 {
				return fmt.Errorf("cluster: tcp nack frame body %d, want 8", body)
			}
			var hdr [8]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			seq := int(binary.LittleEndian.Uint32(hdr[0:4]))
			epoch := int(binary.LittleEndian.Uint32(hdr[4:8]))
			if err := t.serveNack(p, seq, epoch); err != nil {
				return err
			}
		case frameRetx:
			if body < 13 {
				return fmt.Errorf("cluster: tcp retx frame body %d too short", body)
			}
			var hdr [13]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			a := tcpRetx{
				status: hdr[0],
				seq:    binary.LittleEndian.Uint32(hdr[1:5]),
				epoch:  binary.LittleEndian.Uint32(hdr[5:9]),
				sum:    binary.LittleEndian.Uint32(hdr[9:13]),
			}
			a.data = make([]byte, body-13)
			if _, err := io.ReadFull(br, a.data); err != nil {
				return err
			}
			select {
			case p.retx <- a:
			case <-t.closed:
				return errReadLoopStopped
			}
		case frameAgree, frameRelease:
			if body != tcpCtlBodyLen {
				return fmt.Errorf("cluster: tcp control frame body %d, want %d", body, tcpCtlBodyLen)
			}
			var hdr [tcpCtlBodyLen]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			c := tcpCtl{
				kind:  kind,
				gen:   binary.LittleEndian.Uint32(hdr[0:4]),
				flags: hdr[4],
				clock: math.Float64frombits(binary.LittleEndian.Uint64(hdr[5:13])),
				val:   int64(binary.LittleEndian.Uint64(hdr[13:21])),
				dead:  binary.LittleEndian.Uint64(hdr[21:29]),
			}
			select {
			case p.ctl <- c:
			case <-t.closed:
				return errReadLoopStopped
			}
		default:
			return fmt.Errorf("cluster: tcp unknown frame type %d", kind)
		}
	}
}

// serveNack answers a peer's replay request from the local rank's
// sender-side window.
func (t *TCPTransport) serveNack(p *tcpPeer, seq, epoch int) error {
	data, sum, err := t.retxW.lookup(t.rank, p.rank, seq, epoch)
	status := byte(retxOK)
	if err != nil {
		data, sum = nil, 0
		if errors.Is(err, errNotYetSent) {
			status = retxNotYetSent
		} else {
			status = retxGone
		}
	}
	var hdr [14]byte
	hdr[0] = frameRetx
	hdr[1] = status
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(seq))
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(epoch))
	binary.LittleEndian.PutUint32(hdr[10:14], sum)
	return p.writeFrame(hdr[:], data)
}
