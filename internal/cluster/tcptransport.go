package cluster

// TCPTransport: the real-socket backend. Each rank of the cluster is its
// own OS process; point-to-point messages travel as length-prefixed
// frames over a full TCP mesh (one connection per rank pair, dialed by
// the higher rank, accepted by the lower). Everything the in-process
// fabric models stays live on the wire: the crc32c checksum, sequence
// number, epoch, virtual send time and injected delay all travel inside
// the frame, so integrity checking, the (α, β) clock model, fault
// injection and NACK-driven recovery behave identically — except that a
// NACK here is an actual control frame answered by the sender's process
// with a replay frame, and the barrier control plane is a gather/release
// exchange through rank 0 instead of a shared condition variable.
//
// Wire protocol (all integers little-endian):
//
//	handshake   "hZCC" ver=4 | u32 rank | u32 world | u64 epochNanos   (both directions)
//	frame       u32 length | u8 type | body
//	  data      u32 job | u32 seq | u32 epoch | u32 sum | f64 sentAt | f64 delay | u64 trace | payload
//	  nack      u32 job | u32 seq | u32 epoch
//	  retx      u32 job | u8 status | u32 seq | u32 epoch | u32 sum | payload
//	  agree     u32 job | u32 gen | u8 flags | f64 clock | i64 value | u64 dead
//	  release   u32 job | u32 gen | u8 flags | f64 clock | i64 value | u64 dead
//	  job       u32 job | u8 kind | payload
//
// The frame length covers everything after the length field itself.
//
// Version 2 extended version 1 in two places, both for distributed
// tracing: the handshake carries the sender's start time (UnixNano), and
// every process anchors its trace timestamps to the minimum start time
// observed across the mesh — the full mesh guarantees every process sees
// every other's epoch, so the minimum is identical everywhere and merged
// per-process traces line up without a clock-sync protocol. Data frames
// additionally carry the sender's 64-bit collective trace ID, so a
// receiving process can pair its delivery with the remote send.
//
// Version 3 made the control plane failure-aware for elastic
// membership: agree/release frames carry a flags byte (bit 0 = tolerant
// membership round) and a u64 dead-set bitmap of physical ranks. The
// coordinator — the lowest *live* rank, no longer hardwired to rank 0 —
// marks peers whose connections closed mid-round as dead instead of
// failing the gather, and always releases the survivors with the dead
// set so everyone observes the same failure. A reader goroutine that
// observes its connection reset reports the peer to the failure detector
// (Config.onPeerDown), which is how a remote process crash feeds
// cooperative abort and shrink-and-continue.
//
// Version 4 multiplexes *jobs* over one mesh: every frame carries a u32
// job ID, and each job runs on its own session (Session) with private
// sequence/epoch space, replay windows, consensus generations and
// membership — so a long-lived daemon executes many collectives, even
// concurrently, over connections handshaked exactly once. Job 0 is the
// transport's built-in session, which the Transport methods on
// TCPTransport itself delegate to; single-job users never see the
// machinery. A new `job` frame kind carries daemon control traffic
// (submit/start/done) outside any session, delivered to the handler
// registered with SetJobHandler; its kind 0 is reserved for the internal
// end-of-session broadcast that closes the job's mailboxes on every
// peer.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hzccl/internal/bufpool"
	"hzccl/internal/telemetry"
)

// TCP protocol constants.
const (
	tcpMagic   = "hZCC"
	tcpVersion = 4

	// tcpHelloLen is the handshake size: magic, version, rank, world,
	// epoch nanos.
	tcpHelloLen = 4 + 1 + 4 + 4 + 8

	// tcpDataHdrLen is the data-frame body prefix after the type byte:
	// job, seq, epoch, sum, sentAt, delay, trace.
	tcpDataHdrLen = 4 + 4 + 4 + 4 + 8 + 8 + 8

	frameData    = 1
	frameNack    = 2
	frameRetx    = 3
	frameAgree   = 4
	frameRelease = 5
	frameJob     = 6

	// retxOK/retxNotYetSent/retxGone are the status codes of a retx frame.
	retxOK         = 0
	retxNotYetSent = 1
	retxGone       = 2

	// maxFrameBytes bounds a single frame (1 GiB): anything larger is a
	// corrupted length prefix, not a payload this system produces.
	maxFrameBytes = 1 << 30

	// defaultJob is the job ID of the transport's built-in session; it is
	// reserved and cannot be claimed through Session.
	defaultJob = 0

	// jobByeKind is the reserved job-frame kind a session broadcasts when
	// it ends, so peers close that job's mailboxes instead of blocking.
	jobByeKind = 0
)

// Flight-recorder phase codes of FlightJob events recorded by sessions.
const (
	flightJobOpen  = 0
	flightJobClose = 1
)

// ErrTransportClosed is returned by TCP transport operations after the
// local endpoint shut down.
var ErrTransportClosed = errors.New("cluster: tcp transport closed")

// TCPOptions configures a TCPTransport.
type TCPOptions struct {
	// Rank is this process's rank in [0, len(Peers)).
	Rank int
	// Peers lists every rank's listen address ("host:port"), indexed by
	// rank. All processes must pass the same list in the same order.
	Peers []string
	// DialTimeout bounds the total time spent forming the mesh (dialing
	// lower ranks, accepting higher ones). Peers start at different
	// moments, so dials are retried with backoff until the deadline.
	// 0 selects 15s.
	DialTimeout time.Duration
	// Listener, when non-nil, is used instead of listening on
	// Peers[Rank]. Tests use it to grab ephemeral ports (":0") before the
	// peer list is assembled.
	Listener net.Listener
}

// tcpCtl is one control-plane event (agree or release frame) delivered to
// a waiting consensus round.
type tcpCtl struct {
	kind  byte
	gen   uint32
	flags byte
	clock float64
	val   int64
	dead  uint64
}

// tcpCtlBodyLen is the control-frame body after the type byte: job, gen,
// flags, clock, value, dead bitmap.
const tcpCtlBodyLen = 4 + 4 + 1 + 8 + 8 + 8

// tcpRetx is a replay answer for an outstanding NACK.
type tcpRetx struct {
	status byte
	seq    uint32
	epoch  uint32
	sum    uint32
	data   []byte
}

// tcpMailbox is the delivery state of one (peer, job) pair: the three
// channels a session's consumers block on, plus the bye fence that frees
// the reader goroutine from delivering into a job that ended locally.
type tcpMailbox struct {
	inbox chan message // data frames, in arrival order
	retx  chan tcpRetx // replay answers (one outstanding NACK at a time)
	ctl   chan tcpCtl  // agree/release frames

	// bye closes when the job ended on the local side; the reader drops
	// further frames instead of blocking on a consumer that will never
	// come back.
	bye     chan struct{}
	byeOnce sync.Once

	// chansClosed guards against double-closing the delivery channels.
	// Only the peer's reader goroutine — the sole writer — closes them
	// (or the creation path, for mailboxes born after the job/conn died).
	chansClosed bool
}

func newMailbox(dead bool) *tcpMailbox {
	mb := &tcpMailbox{
		inbox: make(chan message, 64),
		retx:  make(chan tcpRetx, 1),
		ctl:   make(chan tcpCtl, 4),
		bye:   make(chan struct{}),
	}
	if dead {
		mb.markBye()
		mb.closeChans()
	}
	return mb
}

func (mb *tcpMailbox) markBye() { mb.byeOnce.Do(func() { close(mb.bye) }) }

// closeChans closes the delivery channels. Callers must guarantee no
// writer is active: either they are the reader goroutine, the reader has
// exited, or the mailbox was just created.
func (mb *tcpMailbox) closeChans() {
	if mb.chansClosed {
		return
	}
	mb.chansClosed = true
	close(mb.inbox)
	close(mb.retx)
	close(mb.ctl)
}

// peerGoneCap bounds the per-peer memory of ended-job tombstones. Frames
// of an ended job can only be in flight briefly (the bye broadcast and
// the peer's own session end bound them), so FIFO eviction of old
// tombstones is safe long before the cap recycles.
const peerGoneCap = 4096

// tcpPeer is one live connection of the mesh, shared by every job.
type tcpPeer struct {
	rank int
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu        sync.Mutex
	mail      map[uint32]*tcpMailbox // per-job delivery state
	gone      map[uint32]struct{}    // jobs ended locally: drop their frames
	goneOrder []uint32
	dead      bool // reader exited; every mailbox is (and will be born) closed

	closeOnce sync.Once
}

func (p *tcpPeer) close() {
	p.closeOnce.Do(func() { p.conn.Close() })
}

// mailbox returns the job's delivery state, creating it if needed.
// Consumers of ended jobs or dead connections get a pre-closed mailbox,
// so they observe "peer gone" instead of blocking forever.
func (p *tcpPeer) mailbox(job uint32) *tcpMailbox {
	p.mu.Lock()
	defer p.mu.Unlock()
	if mb, ok := p.mail[job]; ok {
		return mb
	}
	_, gone := p.gone[job]
	mb := newMailbox(gone || p.dead)
	p.mail[job] = mb
	return mb
}

// deliverable returns the mailbox the reader goroutine should deliver a
// job's frame into, or nil when the job ended locally and the frame must
// be dropped.
func (p *tcpPeer) deliverable(job uint32) *tcpMailbox {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return nil
	}
	if _, gone := p.gone[job]; gone {
		return nil
	}
	mb, ok := p.mail[job]
	if !ok {
		mb = newMailbox(false)
		p.mail[job] = mb
	}
	if mb.chansClosed {
		return nil
	}
	return mb
}

// endJob marks a job finished on this peer. closeChannels must be true
// only when called from the peer's reader goroutine (the job-bye frame
// arrived, so the remote side is done writing) or after the reader
// exited; a local session end passes false and relies on the bye fence.
// The mailbox itself stays in the map: frames the peer sent before its
// bye remain buffered in the (closed) channels, and a consumer that
// looks the job up late must still drain them — receiving from a closed
// channel yields the buffered values first. The tombstone FIFO evicts
// the oldest ended jobs' state once the cap recycles.
func (p *tcpPeer) endJob(job uint32, closeChannels bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.gone[job]; !ok {
		p.gone[job] = struct{}{}
		p.goneOrder = append(p.goneOrder, job)
		if len(p.goneOrder) > peerGoneCap {
			old := p.goneOrder[0]
			delete(p.gone, old)
			delete(p.mail, old)
			p.goneOrder = p.goneOrder[1:]
		}
	}
	mb, ok := p.mail[job]
	if !ok {
		return
	}
	mb.markBye()
	if closeChannels {
		mb.closeChans()
	}
}

// markDead closes every mailbox after the reader goroutine exited: no
// writer remains, and consumers of any job must fail fast.
func (p *tcpPeer) markDead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = true
	for _, mb := range p.mail {
		mb.markBye()
		mb.closeChans()
	}
}

// JobHandler consumes job control frames (kinds ≥ 1) sent by peers via
// SendJob: daemon-level traffic such as submit/start/done messages that
// travels over the mesh but belongs to no session. Handlers run on the
// reader goroutine of the originating connection and own payload; they
// must not block, or that peer's entire connection stalls.
type JobHandler func(from int, job uint32, kind byte, payload []byte)

// TCPTransport is the multi-process Transport. Create one per process
// with NewTCPTransport, hand it to Config.Transport, and Run executes the
// body for this process's rank only. The Transport methods on the
// transport itself drive the built-in job-0 session; long-lived daemons
// carve additional isolated sessions out of the same mesh with Session.
type TCPTransport struct {
	rank int
	n    int

	ln net.Listener

	// peersMu guards peers while the mesh forms (the accept and dial
	// goroutines fill disjoint slots concurrently, and an early abort may
	// close the transport while they run). After NewTCPTransport returns
	// the slice is immutable and read lock-free.
	peersMu sync.Mutex
	peers   []*tcpPeer // indexed by rank; nil at self

	// def is the built-in job-0 session every single-job user drives
	// through the Transport methods on TCPTransport itself.
	def *tcpSession

	// sessions routes inbound NACK service and lifecycle by job ID.
	// maxJob enforces monotonic job allocation: IDs are never reused, so
	// a late frame of a finished job can never reach a new session.
	sessMu   sync.Mutex
	sessions map[uint32]*tcpSession
	maxJob   uint32

	// jobHandler, when set, consumes daemon job-control frames.
	jobHandler atomic.Value // of JobHandler

	// peerDown, when set, observes mesh-connection death (as opposed to
	// the per-session detectors, which see per-job evidence). A daemon
	// uses it to tear itself down when the fixed service mesh loses a
	// member — job-level elasticity never closes connections, so any
	// conn death is a process death.
	peerDown atomic.Value // of func(rank int, cause error)

	// ownEpochNanos is this process's start time, sent in every handshake;
	// meshEpochNanos tracks the minimum over all epochs observed (our own
	// and every peer's), which every process of the full mesh resolves to
	// the same value — the shared trace-clock anchor.
	ownEpochNanos  int64
	meshEpochNanos atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once
}

// NewTCPTransport listens on Peers[Rank] and forms the full mesh: this
// process dials every lower rank and accepts a connection from every
// higher one, each direction verified by a magic/version/rank/world
// handshake. It blocks until the mesh is complete or DialTimeout expires.
// On failure every resource acquired so far — the listener and any
// already-connected peers — is closed before returning, and a failure on
// one side (accept or dial) aborts the other immediately instead of
// letting it burn out the rest of the deadline.
func NewTCPTransport(opt TCPOptions) (*TCPTransport, error) {
	n := len(opt.Peers)
	if n < 1 {
		return nil, fmt.Errorf("cluster: tcp transport needs a non-empty peer list")
	}
	if opt.Rank < 0 || opt.Rank >= n {
		return nil, fmt.Errorf("cluster: tcp rank %d out of range [0, %d)", opt.Rank, n)
	}
	deadline := time.Now().Add(opt.DialTimeout)
	if opt.DialTimeout == 0 {
		deadline = time.Now().Add(15 * time.Second)
	}
	t := &TCPTransport{
		rank:   opt.Rank,
		n:      n,
		peers:  make([]*tcpPeer, n),
		closed: make(chan struct{}),
	}
	t.def = newTCPSession(t, defaultJob)
	t.sessions = map[uint32]*tcpSession{defaultJob: t.def}
	t.ownEpochNanos = time.Now().UnixNano()
	t.meshEpochNanos.Store(t.ownEpochNanos)
	ln := opt.Listener
	if ln == nil && n > 1 {
		var err error
		ln, err = net.Listen("tcp", opt.Peers[opt.Rank])
		if err != nil {
			return nil, fmt.Errorf("cluster: tcp rank %d listen %s: %w", opt.Rank, opt.Peers[opt.Rank], err)
		}
	}
	t.ln = ln

	// Bound the accept side by the formation deadline. Listeners that can
	// take a deadline (net.TCPListener and any test wrapper exposing
	// SetDeadline) get one directly; for anything else a watchdog closes
	// the listener at the deadline so a mesh that never forms cannot hang
	// Accept forever.
	var disarm func()
	if ln != nil {
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(deadline)
			disarm = func() { d.SetDeadline(time.Time{}) }
		} else {
			timer := time.AfterFunc(time.Until(deadline), func() { ln.Close() })
			disarm = func() { timer.Stop() }
		}
	}

	// Accept from higher ranks and dial lower ranks concurrently: a
	// middle rank must do both at once or two middles can deadlock
	// waiting on each other. The first error closes the transport, which
	// unblocks the sibling goroutine (closed listener, closed conns,
	// abandoned dial retries).
	var wg sync.WaitGroup
	errs := make([]error, 2)
	higher := n - 1 - opt.Rank
	if higher > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if errs[0] = t.acceptPeers(higher); errs[0] != nil {
				t.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if errs[1] = t.dialPeers(opt.Peers, deadline); errs[1] != nil {
			t.Close()
		}
	}()
	wg.Wait()
	if err := firstMeshError(errs); err != nil {
		t.Close()
		return nil, err
	}
	if disarm != nil {
		disarm()
	}
	// The mesh is complete: start one reader per connection.
	for _, p := range t.peers {
		if p != nil {
			go t.readLoop(p)
		}
	}
	return t, nil
}

// firstMeshError picks the error to report from a failed mesh formation,
// preferring the root cause over the sibling goroutine's "closed by our
// own abort" follow-up.
func firstMeshError(errs []error) error {
	var closedErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, net.ErrClosed) {
			if closedErr == nil {
				closedErr = err
			}
			continue
		}
		return err
	}
	return closedErr
}

// addPeer records a freshly handshaked connection, unless the transport
// already aborted — then the connection is closed instead of leaked.
func (t *TCPTransport) addPeer(rank int, conn net.Conn) bool {
	t.peersMu.Lock()
	defer t.peersMu.Unlock()
	select {
	case <-t.closed:
		conn.Close()
		return false
	default:
	}
	t.peers[rank] = newTCPPeer(rank, conn)
	return true
}

// Addr returns the transport's listen address (useful with an ephemeral
// ":0" listener). Nil-listener transports (single rank) return "".
func (t *TCPTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// World returns the mesh size (the number of ranks).
func (t *TCPTransport) World() int { return t.n }

// Done is closed when the transport shuts down — by Close, or by the
// abort path of a failed mesh formation. Long-lived daemons select on it
// to notice the mesh dying under them.
func (t *TCPTransport) Done() <-chan struct{} { return t.closed }

// acceptPeers admits `count` inbound connections, each identifying itself
// as a distinct higher rank. The listener's deadline (set by
// NewTCPTransport) bounds the total wait.
func (t *TCPTransport) acceptPeers(count int) error {
	for admitted := 0; admitted < count; {
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: tcp rank %d accept (%d/%d peers admitted): %w", t.rank, admitted, count, err)
		}
		rank, err := t.handshake(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("cluster: tcp rank %d handshake: %w", t.rank, err)
		}
		if rank <= t.rank || rank >= t.n || t.peers[rank] != nil {
			conn.Close()
			return fmt.Errorf("cluster: tcp rank %d got unexpected hello from rank %d", t.rank, rank)
		}
		if !t.addPeer(rank, conn) {
			return fmt.Errorf("cluster: tcp rank %d accept: %w", t.rank, net.ErrClosed)
		}
		mTransportAccepts.Inc()
		admitted++
	}
	return nil
}

// dialPeers connects to every lower rank, retrying with backoff until the
// deadline (peers start at different times) — or until the transport
// aborts because the accept side already failed.
func (t *TCPTransport) dialPeers(peers []string, deadline time.Time) error {
	for to := 0; to < t.rank; to++ {
		backoff := 10 * time.Millisecond
		for {
			select {
			case <-t.closed:
				return fmt.Errorf("cluster: tcp rank %d dial rank %d abandoned: %w", t.rank, to, net.ErrClosed)
			default:
			}
			conn, err := net.DialTimeout("tcp", peers[to], time.Until(deadline))
			if err == nil {
				rank, herr := t.handshake(conn)
				if herr == nil && rank == to {
					if !t.addPeer(to, conn) {
						return fmt.Errorf("cluster: tcp rank %d dial rank %d: %w", t.rank, to, net.ErrClosed)
					}
					mTransportDials.Inc()
					break
				}
				conn.Close()
				if herr == nil {
					herr = fmt.Errorf("peer identified as rank %d, expected %d", rank, to)
				}
				err = herr
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: tcp rank %d dial rank %d (%s): %w", t.rank, to, peers[to], err)
			}
			mTransportReconnects.Inc()
			select {
			case <-t.closed:
			case <-time.After(backoff):
			}
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
	}
	return nil
}

func newTCPPeer(rank int, conn net.Conn) *tcpPeer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency-bound control frames (NACK, agree)
	}
	return &tcpPeer{
		rank: rank,
		conn: conn,
		mail: make(map[uint32]*tcpMailbox),
		gone: make(map[uint32]struct{}),
	}
}

// handshake exchanges identity with a freshly connected peer (both sides
// send, both verify) and returns the peer's rank. The peer's start time
// folds into the mesh epoch (minimum over all ranks' start times).
func (t *TCPTransport) handshake(conn net.Conn) (int, error) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	var out [tcpHelloLen]byte
	copy(out[:4], tcpMagic)
	out[4] = tcpVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(t.rank))
	binary.LittleEndian.PutUint32(out[9:13], uint32(t.n))
	binary.LittleEndian.PutUint64(out[13:21], uint64(t.ownEpochNanos))
	if _, err := conn.Write(out[:]); err != nil {
		return 0, err
	}
	var in [tcpHelloLen]byte
	if _, err := io.ReadFull(conn, in[:]); err != nil {
		return 0, err
	}
	if string(in[:4]) != tcpMagic {
		return 0, fmt.Errorf("bad magic %q", in[:4])
	}
	if in[4] != tcpVersion {
		return 0, fmt.Errorf("protocol version %d, want %d", in[4], tcpVersion)
	}
	rank := int(binary.LittleEndian.Uint32(in[5:9]))
	world := int(binary.LittleEndian.Uint32(in[9:13]))
	if world != t.n {
		return 0, fmt.Errorf("peer rank %d built for a %d-rank world, this one has %d", rank, world, t.n)
	}
	peerEpoch := int64(binary.LittleEndian.Uint64(in[13:21]))
	for {
		cur := t.meshEpochNanos.Load()
		if peerEpoch >= cur || t.meshEpochNanos.CompareAndSwap(cur, peerEpoch) {
			break
		}
	}
	return rank, nil
}

// epochHint anchors trace wall clocks to the mesh epoch, the minimum
// start time across all ranks — identical in every process once the mesh
// is complete, so merged per-process traces share one time base.
func (t *TCPTransport) epochHint() (time.Time, bool) {
	return time.Unix(0, t.meshEpochNanos.Load()), true
}

// LocalRank reports that exactly one rank lives in this process.
func (t *TCPTransport) LocalRank() (int, bool) { return t.rank, true }

// Session claims an isolated job session on the mesh: a Transport whose
// sequence numbers, epochs, replay windows, consensus generations and
// membership are private to the job, so concurrent jobs on the same
// connections cannot cross-deliver. Job IDs must be allocated
// monotonically increasing (the daemon's scheduler does) and are never
// reused — that is what makes a straggler frame of a finished job
// undeliverable to a future one. Job 0 is the transport's own built-in
// session. Close the session (or let the run's closeRank do it) to
// release its per-peer state and tell peers the job is over.
func (t *TCPTransport) Session(job uint32) (Transport, error) {
	if job == defaultJob {
		return nil, fmt.Errorf("cluster: job %d is the transport's built-in session", defaultJob)
	}
	select {
	case <-t.closed:
		return nil, ErrTransportClosed
	default:
	}
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	if _, ok := t.sessions[job]; ok {
		return nil, fmt.Errorf("cluster: job %d already has an active session", job)
	}
	if job <= t.maxJob {
		return nil, fmt.Errorf("cluster: job IDs must be monotonically increasing (got %d after %d)", job, t.maxJob)
	}
	t.maxJob = job
	s := newTCPSession(t, job)
	t.sessions[job] = s
	flight.Record(t.rank, telemetry.FlightJob, int64(job), flightJobOpen, 0, 0)
	return s, nil
}

// sessionFor routes an inbound job-tagged frame to its session, or nil
// when the job is unknown (never opened here, or already closed).
func (t *TCPTransport) sessionFor(job uint32) *tcpSession {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	return t.sessions[job]
}

func (t *TCPTransport) dropSession(job uint32) {
	t.sessMu.Lock()
	delete(t.sessions, job)
	t.sessMu.Unlock()
}

// SetJobHandler registers the consumer of job control frames (SendJob).
// Pass nil to drop them. See JobHandler for the threading contract.
func (t *TCPTransport) SetJobHandler(h JobHandler) {
	t.jobHandler.Store(h)
}

// SetPeerDownHandler registers a callback invoked (on the dead
// connection's reader goroutine — it must not block) when a peer's mesh
// connection dies for any reason other than local shutdown. Session
// ends never close connections, so firing means the peer process is
// gone or the link dropped. Pass nil to drop the callback.
func (t *TCPTransport) SetPeerDownHandler(f func(rank int, cause error)) {
	t.peerDown.Store(f)
}

// SendJob sends one job control frame to a peer. Kind 0 is reserved for
// the transport's internal end-of-session broadcast.
func (t *TCPTransport) SendJob(to int, job uint32, kind byte, payload []byte) error {
	if kind == jobByeKind {
		return fmt.Errorf("cluster: job-frame kind %d is reserved", jobByeKind)
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	return p.writeJob(job, kind, payload)
}

// DropConn force-closes the connection to the given peer rank: a test
// hook injecting a TCP connection failure without killing the peer's
// process. Both reader goroutines observe the reset and feed their
// failure detectors, exactly as if the peer had crashed.
func (t *TCPTransport) DropConn(rank int) error {
	p, err := t.peer(rank)
	if err != nil {
		return err
	}
	p.close()
	return nil
}

// Close tears down the mesh: the listener and every connection. Peers
// observe EOF, which surfaces to their collectives as ErrPeerFailed —
// the same semantics as an exited goroutine on the in-process fabric.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		t.peersMu.Lock()
		for _, p := range t.peers {
			if p != nil {
				p.close()
			}
		}
		t.peersMu.Unlock()
	})
	return nil
}

// closeRank is invoked when the local rank's body returns; the whole
// process is done with the fabric. (Daemon jobs run on sessions, whose
// closeRank ends only that job.)
func (t *TCPTransport) closeRank(rank int) {
	if rank == t.rank {
		t.Close()
	}
}

func (t *TCPTransport) peer(rank int) (*tcpPeer, error) {
	if rank < 0 || rank >= t.n || rank == t.rank {
		return nil, fmt.Errorf("%w: tcp peer %d of %d (local rank %d)", ErrBadPeer, rank, t.n, t.rank)
	}
	p := t.peers[rank]
	if p == nil {
		return nil, fmt.Errorf("cluster: tcp rank %d has no connection to rank %d", t.rank, rank)
	}
	return p, nil
}

// Transport methods on TCPTransport drive the built-in job-0 session, so
// a transport handed directly to Config.Transport behaves exactly as the
// single-job versions of this protocol did.
func (t *TCPTransport) bind(cfg Config) error { return t.def.bind(cfg) }
func (t *TCPTransport) send(from, to int, m message, copies int) error {
	return t.def.send(from, to, m, copies)
}
func (t *TCPTransport) recv(from, to int, timeout time.Duration, abort <-chan struct{}) (message, bool, error) {
	return t.def.recv(from, to, timeout, abort)
}
func (t *TCPTransport) recordRetx(from, to, seq, epoch int, data []byte, sum uint32) {
	t.def.recordRetx(from, to, seq, epoch, data, sum)
}
func (t *TCPTransport) clearRetx(rank int) { t.def.clearRetx(rank) }
func (t *TCPTransport) retransmit(from, to, seq, epoch int) ([]byte, uint32, error) {
	return t.def.retransmit(from, to, seq, epoch)
}
func (t *TCPTransport) agree(rank int, clock float64, v int, propose uint64, tolerant bool) (float64, int, uint64, error) {
	return t.def.agree(rank, clock, v, propose, tolerant)
}
func (t *TCPTransport) setMembers(members []int) { t.def.setMembers(members) }

// tcpSession is one job's view of the mesh: a full Transport whose
// per-run state (config, replay windows, consensus generations, live
// membership, failure callback) is private to the job while the sockets
// underneath are shared with every other session.
type tcpSession struct {
	t   *TCPTransport
	job uint32

	cfg   Config
	bound bool

	// retxW holds the local rank's sender-side replay windows for this
	// job; peers reach them through job-tagged NACK frames serviced by
	// the reader goroutines.
	retxW retxStore

	// agreeGen numbers consensus rounds within the job. Collectives call
	// AgreeMax in the same program order on every rank, so a plain
	// counter matches generations across the mesh; the generation travels
	// in the frame so a mismatch is detected as a protocol error instead
	// of silently pairing different barriers. live[i] is false once rank
	// i was evicted by a membership shrink of this job: consensus rounds
	// skip it, and the round coordinator is the lowest live rank. Every
	// surviving process applies the same shrink, so the coordinator is
	// identical everywhere.
	agreeMu  sync.Mutex
	agreeGen uint32
	live     []bool

	// onDown, set at bind, reports a peer whose connection reset to the
	// failure detector. Stored atomically because reader goroutines run
	// before bind does.
	onDown atomic.Value // of func(rank int, cause error)

	endOnce sync.Once
}

func newTCPSession(t *TCPTransport, job uint32) *tcpSession {
	s := &tcpSession{t: t, job: job, live: make([]bool, t.n)}
	for i := range s.live {
		s.live[i] = true
	}
	return s
}

// LocalRank reports that exactly one rank lives in this process.
func (s *tcpSession) LocalRank() (int, bool) { return s.t.rank, true }

func (s *tcpSession) epochHint() (time.Time, bool) { return s.t.epochHint() }

func (s *tcpSession) bind(cfg Config) error {
	if cfg.Ranks != s.t.n {
		return fmt.Errorf("cluster: Config.Ranks = %d but the tcp mesh has %d peers", cfg.Ranks, s.t.n)
	}
	s.cfg = cfg
	s.retxW.window = cfg.RetxWindow
	if cfg.onPeerDown != nil {
		s.onDown.Store(cfg.onPeerDown)
	}
	s.bound = true
	return nil
}

// Close ends the session: peers are told the job is over (so their
// mailboxes for it close), local per-peer state is released, and the
// job's NACK service starts answering retxGone. The built-in job-0
// session is ended by closing the transport instead.
func (s *tcpSession) Close() error {
	if s.job == defaultJob {
		return s.t.Close()
	}
	s.end()
	return nil
}

// closeRank is invoked when the local rank's body returns: this process
// is done with the job (each process hosts exactly one rank), so the
// session ends.
func (s *tcpSession) closeRank(rank int) {
	if rank == s.t.rank && s.job != defaultJob {
		s.end()
	}
	if s.job == defaultJob {
		s.t.closeRank(rank)
	}
}

func (s *tcpSession) end() {
	s.endOnce.Do(func() {
		// Unregister first: from here the NACK service answers retxGone
		// and a straggler frame finds no session.
		s.t.dropSession(s.job)
		for _, p := range s.t.peers {
			if p == nil {
				continue
			}
			// Best effort: a dead connection already closed the job's
			// mailboxes on the other side.
			_ = p.writeJob(s.job, jobByeKind, nil)
			p.endJob(s.job, false)
		}
		flight.Record(s.t.rank, telemetry.FlightJob, int64(s.job), flightJobClose, 0, 0)
	})
}

// setMembers restricts the consensus plane to the surviving ranks after
// a membership shrink. Only the local process calls it (each process
// hosts one rank), but every survivor applies the identical list, so the
// lowest-live-rank coordinator stays consistent across the mesh.
func (s *tcpSession) setMembers(members []int) {
	s.agreeMu.Lock()
	for i := range s.live {
		s.live[i] = false
	}
	for _, m := range members {
		if m >= 0 && m < s.t.n {
			s.live[m] = true
		}
	}
	s.agreeMu.Unlock()
}

// liveView snapshots the consensus membership: the coordinator (lowest
// live rank), the live count, and the live remote peers.
func (s *tcpSession) liveView() (coord, count int, peers []*tcpPeer) {
	s.agreeMu.Lock()
	defer s.agreeMu.Unlock()
	coord = -1
	for i := 0; i < s.t.n; i++ {
		if !s.live[i] {
			continue
		}
		count++
		if coord < 0 {
			coord = i
		}
		if i != s.t.rank && s.t.peers[i] != nil {
			peers = append(peers, s.t.peers[i])
		}
	}
	return coord, count, peers
}

// writeFrame sends one length-prefixed frame: hdr is the body prefix
// (starting with the type byte), payload an optional trailing byte
// string. Writes to one connection are serialized.
func (p *tcpPeer) writeFrame(hdr, payload []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)+len(payload)))
	p.wmu.Lock()
	defer p.wmu.Unlock()
	bufs := net.Buffers{lenBuf[:], hdr}
	if len(payload) > 0 {
		bufs = append(bufs, payload)
	}
	n, err := bufs.WriteTo(p.conn)
	mTransportBytesOut.Add(n)
	return err
}

// writeJob sends one job control frame.
func (p *tcpPeer) writeJob(job uint32, kind byte, payload []byte) error {
	var hdr [6]byte
	hdr[0] = frameJob
	binary.LittleEndian.PutUint32(hdr[1:5], job)
	hdr[5] = kind
	return p.writeFrame(hdr[:], payload)
}

// send frames a data message onto the wire. The transport recycles
// m.data once written: unlike the channel fabric no receiver in this
// address space will ever own it.
func (s *tcpSession) send(from, to int, m message, copies int) error {
	p, err := s.t.peer(to)
	if err != nil {
		return err
	}
	var hdr [1 + tcpDataHdrLen]byte
	hdr[0] = frameData
	binary.LittleEndian.PutUint32(hdr[1:5], s.job)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(m.seq))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(m.epoch))
	binary.LittleEndian.PutUint32(hdr[13:17], m.sum)
	binary.LittleEndian.PutUint64(hdr[17:25], math.Float64bits(m.sentAt))
	binary.LittleEndian.PutUint64(hdr[25:33], math.Float64bits(m.delay))
	binary.LittleEndian.PutUint64(hdr[33:41], m.trace)
	for i := 0; i < copies; i++ {
		if err := p.writeFrame(hdr[:], m.data); err != nil {
			return fmt.Errorf("cluster: tcp send %d→%d seq %d: %w", from, to, m.seq, err)
		}
	}
	bufpool.PutBytes(m.data)
	return nil
}

// recv waits for the next data frame the peer sent within this job,
// honouring the wall-clock timeout and the cooperative-abort channel.
func (s *tcpSession) recv(from, to int, timeout time.Duration, abort <-chan struct{}) (message, bool, error) {
	p, err := s.t.peer(from)
	if err != nil {
		return message{}, false, err
	}
	mb := p.mailbox(s.job)
	if timeout <= 0 && abort == nil {
		m, ok := <-mb.inbox
		return m, ok, nil
	}
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case m, ok := <-mb.inbox:
		return m, ok, nil
	case <-timeoutC:
		return message{}, false, ErrRecvTimeout
	case <-abort:
		return message{}, false, errAborted
	}
}

func (s *tcpSession) recordRetx(from, to, seq, epoch int, data []byte, sum uint32) {
	s.retxW.record(from, to, seq, epoch, data, sum)
}

func (s *tcpSession) clearRetx(rank int) { s.retxW.clear(rank) }

// retransmit NACKs the sending peer over the wire and waits for its
// replay frame. The sender's reader goroutine services the NACK from its
// local replay window for this job, so recovery works across process
// boundaries. One semantic differs from the in-process fabric: there the
// replay window survives the sender's exit, while here the sender's
// process must still be alive to answer — collectives satisfy this
// naturally because every attempt ends with an AgreeMax before any rank
// leaves.
func (s *tcpSession) retransmit(from, to, seq, epoch int) ([]byte, uint32, error) {
	p, err := s.t.peer(from)
	if err != nil {
		return nil, 0, err
	}
	mb := p.mailbox(s.job)
	var hdr [13]byte
	hdr[0] = frameNack
	binary.LittleEndian.PutUint32(hdr[1:5], s.job)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(seq))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(epoch))
	if err := p.writeFrame(hdr[:], nil); err != nil {
		return nil, 0, fmt.Errorf("%w: nack %d→%d seq %d undeliverable (%v)", ErrPeerFailed, from, to, seq, err)
	}
	timeout := s.cfg.RecvTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case a, ok := <-mb.retx:
		if !ok {
			return nil, 0, fmt.Errorf("%w: rank %d closed while replaying seq %d", ErrPeerFailed, from, seq)
		}
		if int(a.seq) != seq || int(a.epoch) != epoch {
			return nil, 0, fmt.Errorf("cluster: tcp replay mismatch from rank %d: got seq %d epoch %d, want %d/%d", from, a.seq, a.epoch, seq, epoch)
		}
		switch a.status {
		case retxOK:
			return a.data, a.sum, nil
		case retxNotYetSent:
			return nil, 0, errNotYetSent
		default:
			mRetxEvictions.Inc()
			return nil, 0, fmt.Errorf("%w: link %d→%d seq %d (remote window)", ErrRetransmitGone, from, to, seq)
		}
	case <-timer.C:
		// The replay itself went missing; the caller's retry budget
		// decides whether to NACK again.
		return nil, 0, errNotYetSent
	}
}

// agree is the TCP control plane: every live rank sends
// (clock, value, propose) to the coordinator — the lowest live rank —
// which answers with the maximum clock (plus the α·ceil(log2 n) tree
// cost over the actual participants, matching the in-process barrier),
// the maximum value, and the dead-set bitmap. Rounds are scoped to the
// session: concurrent jobs run their own generations over their own
// mailboxes and never pair up.
//
// Failure handling differs by round kind. In a classic round
// (tolerant == false) a peer observed dead fails the round for everyone:
// the coordinator still releases the survivors, carrying the dead set,
// so they all abort promptly with the same *RankFailedError instead of
// burning their own timeouts. In a tolerant membership round the dead
// peers simply join the released dead set and the round succeeds.
//
// One limitation is inherent to the star shape: if the *coordinator*
// process dies, its peers cannot complete any further round, so a TCP
// world only survives the death of non-coordinator ranks. The in-process
// fabric has no such restriction.
func (s *tcpSession) agree(rank int, clock float64, v int, propose uint64, tolerant bool) (float64, int, uint64, error) {
	if s.t.n == 1 {
		return clock, v, propose, nil
	}
	s.agreeMu.Lock()
	gen := s.agreeGen
	s.agreeGen++
	s.agreeMu.Unlock()
	coord, liveN, livePeers := s.liveView()
	if liveN <= 1 {
		return clock, v, propose, nil
	}
	timeout := s.cfg.agreeTimeout()
	var flags byte
	if tolerant {
		flags = 1
	}

	if rank != coord {
		p, err := s.t.peer(coord)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := p.writeCtl(s.job, frameAgree, gen, flags, clock, int64(v), propose); err != nil {
			return 0, 0, 0, &RankFailedError{Rank: coord, Cause: fmt.Errorf("barrier proposal undeliverable: %w", err)}
		}
		rel, err := s.waitCtl(p, frameRelease, gen, timeout)
		if err != nil {
			if errors.Is(err, ErrPeerFailed) {
				return 0, 0, 0, &RankFailedError{Rank: coord, Cause: err}
			}
			return 0, 0, 0, err
		}
		if !tolerant && rel.dead != 0 {
			return 0, 0, rel.dead, fmt.Errorf("%w: barrier aborted", rankFailedFromBits(rel.dead, nil))
		}
		return rel.clock, int(rel.val), rel.dead, nil
	}

	// Coordinator: gather every live peer's proposal. A peer whose
	// connection closed mid-round is marked dead instead of failing the
	// gather; only a protocol error or a full timeout aborts.
	maxClock, maxVal, dead := clock, int64(v), propose
	participants := 1
	for _, p := range livePeers {
		a, err := s.waitCtl(p, frameAgree, gen, timeout)
		if err != nil {
			if errors.Is(err, ErrPeerFailed) {
				dead |= rankBit(p.rank)
				continue
			}
			return 0, 0, 0, err
		}
		participants++
		if a.clock > maxClock {
			maxClock = a.clock
		}
		if a.val > maxVal {
			maxVal = a.val
		}
		dead |= a.dead
	}
	leave := maxClock
	if participants > 1 {
		leave += s.cfg.Latency.Seconds() * math.Ceil(math.Log2(float64(participants)))
	}
	// Always release the survivors, carrying the dead set: in a failed
	// classic round this is what lets them abort promptly. A release that
	// cannot be written means the peer died after its proposal — the next
	// round will observe the closed connection; this round's dead set is
	// already fixed (other peers may have read it).
	for _, p := range livePeers {
		if dead&rankBit(p.rank) != 0 {
			continue
		}
		_ = p.writeCtl(s.job, frameRelease, gen, flags, leave, maxVal, dead)
	}
	if !tolerant && dead != 0 {
		return 0, 0, dead, fmt.Errorf("%w: barrier aborted", rankFailedFromBits(dead, nil))
	}
	return leave, int(maxVal), dead, nil
}

func (p *tcpPeer) writeCtl(job uint32, kind byte, gen uint32, flags byte, clock float64, val int64, dead uint64) error {
	var hdr [1 + tcpCtlBodyLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], job)
	binary.LittleEndian.PutUint32(hdr[5:9], gen)
	hdr[9] = flags
	binary.LittleEndian.PutUint64(hdr[10:18], math.Float64bits(clock))
	binary.LittleEndian.PutUint64(hdr[18:26], uint64(val))
	binary.LittleEndian.PutUint64(hdr[26:34], dead)
	return p.writeFrame(hdr[:], nil)
}

// waitCtl blocks for the next control frame the peer sent within this
// job and verifies its kind and generation.
func (s *tcpSession) waitCtl(p *tcpPeer, kind byte, gen uint32, timeout time.Duration) (tcpCtl, error) {
	mb := p.mailbox(s.job)
	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case c, ok := <-mb.ctl:
		if !ok {
			return tcpCtl{}, fmt.Errorf("%w: barrier aborted, rank %d disconnected", ErrPeerFailed, p.rank)
		}
		if c.kind != kind || c.gen != gen {
			return tcpCtl{}, fmt.Errorf("cluster: tcp barrier protocol error with rank %d: got kind %d gen %d, want %d/%d (AgreeMax must be called in the same order on every rank)",
				p.rank, c.kind, c.gen, kind, gen)
		}
		return c, nil
	case <-expired:
		return tcpCtl{}, fmt.Errorf("%w: barrier, rank %d missing after %v", ErrRecvTimeout, p.rank, timeout)
	}
}

// errReadLoopStopped is the internal marker for a reader that stopped on
// purpose (local transport shutdown), not because the peer failed.
var errReadLoopStopped = errors.New("cluster: tcp reader stopped by local close")

// classifyPeerErr maps the error that ended a reader goroutine to the
// typed evidence fed into the failure detector: connection reset/EOF
// style failures become ErrConnReset (the peer's process died or the
// link dropped), anything else stays a generic connection failure.
func classifyPeerErr(rank int, err error) error {
	switch {
	case err == nil,
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return fmt.Errorf("%w: rank %d", ErrConnReset, rank)
	}
	return fmt.Errorf("cluster: tcp rank %d connection failed: %w", rank, err)
}

// readLoop demultiplexes one connection: data frames feed the job's
// inbox, NACKs are serviced inline from the job's local replay window,
// replay answers and control frames wake their waiters, job control
// frames go to the registered handler. On error or EOF every mailbox of
// every job closes so blocked receivers fail fast — exactly the
// closed-mailbox semantics of the in-process fabric — and, unless the
// local transport itself is shutting down, the peer is reported to every
// active session's failure detector with the classified cause.
func (t *TCPTransport) readLoop(p *tcpPeer) {
	err := t.readFrames(p)
	p.close()
	p.markDead()
	if errors.Is(err, errReadLoopStopped) {
		return
	}
	select {
	case <-t.closed:
		// Local shutdown: the read error is our own close, not evidence
		// about the peer.
	default:
		cause := classifyPeerErr(p.rank, err)
		t.sessMu.Lock()
		sessions := make([]*tcpSession, 0, len(t.sessions))
		for _, s := range t.sessions {
			sessions = append(sessions, s)
		}
		t.sessMu.Unlock()
		for _, s := range sessions {
			if f, ok := s.onDown.Load().(func(rank int, cause error)); ok {
				f(p.rank, cause)
			}
		}
		if f, ok := t.peerDown.Load().(func(rank int, cause error)); ok && f != nil {
			f(p.rank, cause)
		}
	}
}

// deliver routes one inbound frame into a job's mailbox channel-send,
// dropping it when the job already ended locally.
func (t *TCPTransport) readFrames(p *tcpPeer) error {
	br := bufio.NewReaderSize(p.conn, 64<<10)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return err
		}
		frameLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if frameLen < 1 || frameLen > maxFrameBytes {
			return fmt.Errorf("cluster: tcp frame length %d out of range", frameLen)
		}
		mTransportBytesIn.Add(int64(frameLen) + 4)
		kind, err := br.ReadByte()
		if err != nil {
			return err
		}
		body := frameLen - 1
		switch kind {
		case frameData:
			if body < tcpDataHdrLen {
				return fmt.Errorf("cluster: tcp data frame body %d too short", body)
			}
			var hdr [tcpDataHdrLen]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			payload := bufpool.Bytes(body - tcpDataHdrLen)
			if _, err := io.ReadFull(br, payload); err != nil {
				bufpool.PutBytes(payload)
				return err
			}
			job := binary.LittleEndian.Uint32(hdr[0:4])
			m := message{
				data:   payload,
				from:   p.rank,
				seq:    int(binary.LittleEndian.Uint32(hdr[4:8])),
				epoch:  int(binary.LittleEndian.Uint32(hdr[8:12])),
				sum:    binary.LittleEndian.Uint32(hdr[12:16]),
				sentAt: math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:24])),
				delay:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:32])),
				trace:  binary.LittleEndian.Uint64(hdr[32:40]),
			}
			mb := p.deliverable(job)
			if mb == nil {
				bufpool.PutBytes(payload)
				continue
			}
			select {
			case mb.inbox <- m:
			case <-mb.bye:
				bufpool.PutBytes(m.data)
			case <-t.closed:
				bufpool.PutBytes(m.data)
				return errReadLoopStopped
			}
		case frameNack:
			if body != 12 {
				return fmt.Errorf("cluster: tcp nack frame body %d, want 12", body)
			}
			var hdr [12]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			job := binary.LittleEndian.Uint32(hdr[0:4])
			seq := int(binary.LittleEndian.Uint32(hdr[4:8]))
			epoch := int(binary.LittleEndian.Uint32(hdr[8:12]))
			if err := t.serveNack(p, job, seq, epoch); err != nil {
				return err
			}
		case frameRetx:
			if body < 17 {
				return fmt.Errorf("cluster: tcp retx frame body %d too short", body)
			}
			var hdr [17]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			job := binary.LittleEndian.Uint32(hdr[0:4])
			a := tcpRetx{
				status: hdr[4],
				seq:    binary.LittleEndian.Uint32(hdr[5:9]),
				epoch:  binary.LittleEndian.Uint32(hdr[9:13]),
				sum:    binary.LittleEndian.Uint32(hdr[13:17]),
			}
			a.data = make([]byte, body-17)
			if _, err := io.ReadFull(br, a.data); err != nil {
				return err
			}
			mb := p.deliverable(job)
			if mb == nil {
				continue
			}
			select {
			case mb.retx <- a:
			case <-mb.bye:
			case <-t.closed:
				return errReadLoopStopped
			}
		case frameAgree, frameRelease:
			if body != tcpCtlBodyLen {
				return fmt.Errorf("cluster: tcp control frame body %d, want %d", body, tcpCtlBodyLen)
			}
			var hdr [tcpCtlBodyLen]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			job := binary.LittleEndian.Uint32(hdr[0:4])
			c := tcpCtl{
				kind:  kind,
				gen:   binary.LittleEndian.Uint32(hdr[4:8]),
				flags: hdr[8],
				clock: math.Float64frombits(binary.LittleEndian.Uint64(hdr[9:17])),
				val:   int64(binary.LittleEndian.Uint64(hdr[17:25])),
				dead:  binary.LittleEndian.Uint64(hdr[25:33]),
			}
			mb := p.deliverable(job)
			if mb == nil {
				continue
			}
			select {
			case mb.ctl <- c:
			case <-mb.bye:
			case <-t.closed:
				return errReadLoopStopped
			}
		case frameJob:
			if body < 5 {
				return fmt.Errorf("cluster: tcp job frame body %d too short", body)
			}
			var hdr [5]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			job := binary.LittleEndian.Uint32(hdr[0:4])
			jkind := hdr[4]
			payload := make([]byte, body-5)
			if _, err := io.ReadFull(br, payload); err != nil {
				return err
			}
			mTransportJobFrames.Inc()
			if jkind == jobByeKind {
				// The peer's side of this job ended: close its mailboxes
				// here (we are its sole writer) so blocked receivers see
				// "peer gone".
				p.endJob(job, true)
				// Surface the end to the job's failure detector exactly
				// like a connection reset would in a one-rank-per-process
				// world. A healthy job's bye follows its final agreement
				// round, so the evidence is inert; a killed rank's
				// mid-collective bye is what lets blocked survivors abort
				// their waits and blame the right rank instead of timing
				// out on the stalled neighbors in between.
				if s := t.sessionFor(job); s != nil {
					if f, ok := s.onDown.Load().(func(rank int, cause error)); ok && f != nil {
						f(p.rank, fmt.Errorf("%w: rank %d (job %d session ended)", ErrConnReset, p.rank, job))
					}
				}
				continue
			}
			if h, ok := t.jobHandler.Load().(JobHandler); ok && h != nil {
				h(p.rank, job, jkind, payload)
			}
		default:
			return fmt.Errorf("cluster: tcp unknown frame type %d", kind)
		}
	}
}

// serveNack answers a peer's replay request from the identified job's
// local sender-side window. An unknown job — never opened here, or
// already closed — answers retxGone: its window is unrecoverable.
func (t *TCPTransport) serveNack(p *tcpPeer, job uint32, seq, epoch int) error {
	var data []byte
	var sum uint32
	status := byte(retxGone)
	if s := t.sessionFor(job); s != nil {
		var err error
		data, sum, err = s.retxW.lookup(t.rank, p.rank, seq, epoch)
		status = retxOK
		if err != nil {
			data, sum = nil, 0
			if errors.Is(err, errNotYetSent) {
				status = retxNotYetSent
			} else {
				status = retxGone
			}
		}
	} else {
		mRetxEvictions.Inc()
	}
	var hdr [18]byte
	hdr[0] = frameRetx
	binary.LittleEndian.PutUint32(hdr[1:5], job)
	hdr[5] = status
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(seq))
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(epoch))
	binary.LittleEndian.PutUint32(hdr[14:18], sum)
	return p.writeFrame(hdr[:], data)
}
