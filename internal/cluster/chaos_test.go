package cluster

import (
	"bytes"
	"testing"
	"time"
)

// chaosFates applies the hook to a grid of message identities and returns
// the action sequence.
func chaosFates(f Fault, n int) []FaultAction {
	out := make([]FaultAction, 0, n*4)
	for seq := 0; seq < n; seq++ {
		for attempt := 0; attempt < 4; attempt++ {
			a, _ := f(FaultContext{From: 0, To: 1, Seq: seq, Len: 64, Attempt: attempt})
			out = append(out, a)
		}
	}
	return out
}

func TestChaosDeterministic(t *testing.T) {
	spec := ChaosSpec{Seed: 42, DropRate: 0.1, CorruptRate: 0.1, DuplicateRate: 0.1, DelayRate: 0.1}
	a := chaosFates(NewChaos(spec).Fault(), 200)
	b := chaosFates(NewChaos(spec).Fault(), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := chaosFates(NewChaos(ChaosSpec{Seed: 43, DropRate: 0.1, CorruptRate: 0.1, DuplicateRate: 0.1, DelayRate: 0.1}).Fault(), 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestChaosCountsAndRates(t *testing.T) {
	x := NewChaos(ChaosSpec{Seed: 7, DropRate: 0.25, CorruptRate: 0.25})
	f := x.Fault()
	const n = 4000
	for i := 0; i < n; i++ {
		f(FaultContext{From: 0, To: 1, Seq: i, Len: 8})
	}
	c := x.Counts()
	if c.Total() != c.Drops+c.Corrupts+c.Duplicates+c.Delays {
		t.Fatalf("Total inconsistent: %+v", c)
	}
	// Loose bounds: the draw is a uniform hash, so each 25% rate should
	// land well within [15%, 35%] over 4000 draws.
	for name, got := range map[string]int64{"drops": c.Drops, "corrupts": c.Corrupts} {
		if got < n*15/100 || got > n*35/100 {
			t.Fatalf("%s = %d, far from 25%% of %d", name, got, n)
		}
	}
	if c.Duplicates != 0 || c.Delays != 0 {
		t.Fatalf("unconfigured fault classes fired: %+v", c)
	}
}

func TestChaosMaxFaultsCap(t *testing.T) {
	x := NewChaos(ChaosSpec{Seed: 1, DropRate: 1, MaxFaults: 5})
	f := x.Fault()
	for i := 0; i < 100; i++ {
		f(FaultContext{From: 0, To: 1, Seq: i})
	}
	if got := x.Counts().Total(); got != 5 {
		t.Fatalf("MaxFaults cap not enforced: %d faults", got)
	}
	// Past the cap everything is delivered.
	if a, _ := f(FaultContext{From: 0, To: 1, Seq: 1000}); a != FaultDeliver {
		t.Fatalf("capped chaos still injecting: %v", a)
	}
}

func TestChaosAttemptsDrawIndependently(t *testing.T) {
	// A retransmission must get an independent fate draw, or a dropped
	// message would be dropped on every replay and never recover.
	f := NewChaos(ChaosSpec{Seed: 3, DropRate: 0.5}).Fault()
	varied := false
	for seq := 0; seq < 8 && !varied; seq++ {
		first, _ := f(FaultContext{From: 0, To: 1, Seq: seq, Attempt: 0})
		for attempt := 1; attempt < 8; attempt++ {
			a, _ := f(FaultContext{From: 0, To: 1, Seq: seq, Attempt: attempt})
			if a != first {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Fatal("fate is identical across attempts: retransmission can never succeed")
	}
}

func TestChaosReliableTransportDeliversUnderFaults(t *testing.T) {
	// End-to-end: a 4-rank ring pushes 25 messages per link through a
	// fabric injecting ≥1% of every fault class; reliable delivery must
	// hand every payload over intact and in order.
	const n, msgs = 4, 25
	x := NewChaos(ChaosSpec{
		Seed:            20260805,
		DropRate:        0.04,
		CorruptRate:     0.04,
		DuplicateRate:   0.04,
		DelayRate:       0.04,
		MaxDelaySeconds: 50e-6,
	})
	_, err := Run(Config{
		Ranks:       n,
		Reliable:    true,
		RecvTimeout: 50 * time.Millisecond,
		Fault:       x.Fault(),
		Corrupt:     &CorruptPattern{Spray: true, Burst: 3, Mask: 0xA5},
	}, func(r *Rank) error {
		to, from := (r.ID+1)%n, (r.ID+n-1)%n
		for i := 0; i < msgs; i++ {
			want := []byte{byte(from), byte(i), byte(from ^ i), 0x5a}
			got, err := r.SendRecv(to, []byte{byte(r.ID), byte(i), byte(r.ID ^ i), 0x5a}, from)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				t.Errorf("rank %d msg %d: got % x want % x", r.ID, i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reliable transport failed under chaos: %v", err)
	}
	if x.Counts().Total() == 0 {
		t.Fatal("chaos injected no faults; the test proved nothing")
	}
}

func TestCorruptPatternShapes(t *testing.T) {
	fc := FaultContext{From: 0, To: 1, Seq: 3, Len: 8}
	base := []byte{0, 1, 2, 3, 4, 5, 6, 7}

	t.Run("offset+mask", func(t *testing.T) {
		d := append([]byte(nil), base...)
		CorruptPattern{Offset: 2, Mask: 0xFF}.apply(d, fc)
		if d[2] != 2^0xFF {
			t.Fatalf("offset byte untouched: % x", d)
		}
		if d[0] != 0 || d[3] != 3 {
			t.Fatalf("bytes outside the pattern damaged: % x", d)
		}
	})
	t.Run("burst", func(t *testing.T) {
		d := append([]byte(nil), base...)
		CorruptPattern{Offset: 5, Burst: 10, Mask: 0x01}.apply(d, fc)
		for i := 5; i < 8; i++ {
			if d[i] == base[i] {
				t.Fatalf("burst byte %d untouched: % x", i, d)
			}
		}
		if d[4] != base[4] {
			t.Fatalf("burst leaked before offset: % x", d)
		}
	})
	t.Run("clamped offset", func(t *testing.T) {
		d := append([]byte(nil), base...)
		CorruptPattern{Offset: 99, Mask: 0x01}.apply(d, fc)
		if d[7] == base[7] {
			t.Fatalf("out-of-range offset not clamped to last byte: % x", d)
		}
	})
	t.Run("default mask flips one bit", func(t *testing.T) {
		d := append([]byte(nil), base...)
		CorruptPattern{}.apply(d, fc)
		if d[0] != base[0]^0x20 {
			t.Fatalf("zero pattern did not flip bit 5 of byte 0: % x", d)
		}
	})
	t.Run("spray is deterministic", func(t *testing.T) {
		d1 := append([]byte(nil), base...)
		d2 := append([]byte(nil), base...)
		p := CorruptPattern{Spray: true, Mask: 0x0F}
		p.apply(d1, fc)
		p.apply(d2, fc)
		if !bytes.Equal(d1, d2) {
			t.Fatalf("spray diverged for identical identity: % x vs % x", d1, d2)
		}
		if bytes.Equal(d1, base) {
			t.Fatal("spray damaged nothing")
		}
	})
}

func TestCorruptPatternDetectedByStrictRecv(t *testing.T) {
	err := twoRankExchange(t, Config{
		Fault:   FaultOn(OnLink(0, 1, 0), FaultCorrupt, 0),
		Corrupt: &CorruptPattern{Offset: 0, Mask: 0xFF, Burst: 4},
	}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err == nil {
		t.Fatal("burst corruption went undetected")
	}
}
