package cluster

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Execution tracing. When a Cluster is created with NewTraced, every
// virtual-time advance (compute categories and communication waits) is
// recorded as an interval on the owning rank's timeline. The trace exports
// in the Chrome trace-event JSON format (chrome://tracing, Perfetto), which
// makes ring pipelines, stragglers and overlap visually inspectable —
// the debugging view used while calibrating the experiments.

// TraceEvent is one interval on a rank's virtual timeline.
type TraceEvent struct {
	Rank     int
	Category Category
	// Start and Dur are in virtual seconds.
	Start float64
	Dur   float64
}

// Trace accumulates events from all ranks of one run. Virtual-time and
// wall-clock intervals are kept on separate timelines: virtual events
// carry modeled seconds, wall events carry real measured seconds since
// the cluster was created (recorded by Time/TimeScaled around the actual
// work). The Chrome export shows them as two processes so modeled and
// measured schedules can be compared side by side.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
	wall   []TraceEvent
}

func (t *Trace) record(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

func (t *Trace) recordWall(ev TraceEvent) {
	t.mu.Lock()
	t.wall = append(t.wall, ev)
	t.mu.Unlock()
}

func sortEvents(out []TraceEvent) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
}

// Events returns the recorded virtual-time intervals sorted by
// (rank, start).
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// WallEvents returns the recorded wall-clock intervals sorted by
// (rank, start). Start is real seconds since cluster creation; Dur is the
// measured duration of the work (unscaled).
func (t *Trace) WallEvents() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.wall))
	copy(out, t.wall)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// chromeEvent is the trace-event JSON schema (complete events, phase "X";
// timestamps in microseconds; metadata events, phase "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event format: wrapping the
// event array lets viewers (Perfetto in particular) pick up the display
// unit, while the array stays readable inside "traceEvents".
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome trace process ids: virtual-time events on pid 0, wall-clock
// events on pid 1.
const (
	chromePidVirtual = 0
	chromePidWall    = 1
)

// WriteChrome writes the trace in Chrome trace-event JSON (object form,
// {"traceEvents": [...], "displayTimeUnit": "ms"}). Virtual-time events
// appear under the "virtual time" process (pid 0), wall-clock spans under
// "wall clock" (pid 1). Load the file in chrome://tracing or
// https://ui.perfetto.dev to inspect the timeline.
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := t.Events()
	wall := t.WallEvents()
	out := make([]chromeEvent, 0, len(evs)+len(wall)+2)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePidVirtual,
		Args: map[string]any{"name": "virtual time"},
	})
	if len(wall) > 0 {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: chromePidWall,
			Args: map[string]any{"name": "wall clock"},
		})
	}
	emit := func(pid int, evs []TraceEvent) {
		for _, ev := range evs {
			out = append(out, chromeEvent{
				Name: string(ev.Category),
				Ph:   "X",
				Ts:   ev.Start * 1e6,
				Dur:  ev.Dur * 1e6,
				Pid:  pid,
				Tid:  ev.Rank,
			})
		}
	}
	emit(chromePidVirtual, evs)
	emit(chromePidWall, wall)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// NewTraced creates a cluster whose ranks record every virtual-time
// advance into the returned Trace.
func NewTraced(cfg Config) (*Cluster, *Trace, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	tr := &Trace{}
	c.trace = tr
	return c, tr, nil
}
