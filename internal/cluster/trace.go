package cluster

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Execution tracing. When a Cluster is created with NewTraced, every
// virtual-time advance (compute categories and communication waits) is
// recorded as an interval on the owning rank's timeline. The trace exports
// in the Chrome trace-event JSON format (chrome://tracing, Perfetto), which
// makes ring pipelines, stragglers and overlap visually inspectable —
// the debugging view used while calibrating the experiments.

// TraceEvent is one interval on a rank's virtual timeline.
type TraceEvent struct {
	Rank     int
	Category Category
	// Start and Dur are in virtual seconds.
	Start float64
	Dur   float64
}

// Trace accumulates events from all ranks of one run.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (t *Trace) record(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns the recorded intervals sorted by (rank, start).
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// chromeEvent is the trace-event JSON schema (complete events, phase "X";
// timestamps in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChrome writes the trace in Chrome trace-event JSON. Load the file
// in chrome://tracing or https://ui.perfetto.dev to inspect the timeline.
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := t.Events()
	out := make([]chromeEvent, len(evs))
	for i, ev := range evs {
		out[i] = chromeEvent{
			Name: string(ev.Category),
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  ev.Dur * 1e6,
			Pid:  0,
			Tid:  ev.Rank,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// NewTraced creates a cluster whose ranks record every virtual-time
// advance into the returned Trace.
func NewTraced(cfg Config) (*Cluster, *Trace, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	tr := &Trace{}
	c.trace = tr
	return c, tr, nil
}
