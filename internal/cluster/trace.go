package cluster

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Execution tracing. When a Cluster is created with NewTraced, every
// virtual-time advance (compute categories and communication waits) is
// recorded as an interval on the owning rank's timeline. The trace exports
// in the Chrome trace-event JSON format (chrome://tracing, Perfetto), which
// makes ring pipelines, stragglers and overlap visually inspectable —
// the debugging view used while calibrating the experiments.

// TraceEvent is one interval on a rank's virtual timeline.
type TraceEvent struct {
	Rank     int
	Category Category
	// Name optionally overrides the displayed slice label; empty means the
	// category name.
	Name string
	// Start and Dur are in virtual seconds.
	Start float64
	Dur   float64
}

// TraceMeta identifies the process that produced a trace file, letting
// the merge path (MergeChromeTraces) stitch per-process files into one
// timeline: Rank remaps process ids, EpochNanos aligns wall clocks.
// Rank is -1 when one process hosted every rank (the in-process fabric).
type TraceMeta struct {
	Rank       int   `json:"rank"`
	World      int   `json:"world"`
	EpochNanos int64 `json:"epochNanos"`
}

// FlowPoint is one endpoint of a cross-rank message edge: phase 's' is
// recorded by the sender, phase 'f' by the receiver on delivery, and the
// shared ID pairs them. The exporter renders each point as a small
// wall-clock slice with the flow event bound to it, so Perfetto draws an
// arrow from the send slice to the matching recv slice — across process
// boundaries once traces are merged.
type FlowPoint struct {
	Phase byte // 's' (start, at the sender) or 'f' (finish, at the receiver)
	// ID pairs the two endpoints: trace ID, link, epoch and sequence
	// number together identify one message globally.
	ID   string
	Name string
	Rank int
	// Start and Dur are wall seconds since the trace epoch.
	Start float64
	Dur   float64
}

// Instant is a point event on the wall timeline (retransmissions,
// degradation moves, op starts).
type Instant struct {
	Name string
	Rank int
	Ts   float64 // wall seconds since the trace epoch
}

// Trace accumulates events from all ranks of one run. Virtual-time and
// wall-clock intervals are kept on separate timelines: virtual events
// carry modeled seconds, wall events carry real measured seconds since
// the cluster was created (recorded by Time/TimeScaled around the actual
// work). The Chrome export shows them as two processes so modeled and
// measured schedules can be compared side by side.
type Trace struct {
	mu       sync.Mutex
	events   []TraceEvent
	wall     []TraceEvent
	flows    []FlowPoint
	instants []Instant
	meta     *TraceMeta
}

func (t *Trace) record(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

func (t *Trace) recordWall(ev TraceEvent) {
	t.mu.Lock()
	t.wall = append(t.wall, ev)
	t.mu.Unlock()
}

func (t *Trace) recordFlow(p FlowPoint) {
	t.mu.Lock()
	t.flows = append(t.flows, p)
	t.mu.Unlock()
}

func (t *Trace) recordInstant(i Instant) {
	t.mu.Lock()
	t.instants = append(t.instants, i)
	t.mu.Unlock()
}

func (t *Trace) setMeta(m TraceMeta) {
	t.mu.Lock()
	t.meta = &m
	t.mu.Unlock()
}

// Meta returns the producing process's identity, or nil when the trace
// was never attached to a cluster.
func (t *Trace) Meta() *TraceMeta {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.meta == nil {
		return nil
	}
	m := *t.meta
	return &m
}

// Flows returns the recorded message-flow endpoints sorted by (rank,
// start).
func (t *Trace) Flows() []FlowPoint {
	t.mu.Lock()
	out := make([]FlowPoint, len(t.flows))
	copy(out, t.flows)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Instants returns the recorded point events sorted by (rank, ts).
func (t *Trace) Instants() []Instant {
	t.mu.Lock()
	out := make([]Instant, len(t.instants))
	copy(out, t.instants)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Ts < out[j].Ts
	})
	return out
}

func sortEvents(out []TraceEvent) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
}

// Events returns the recorded virtual-time intervals sorted by
// (rank, start).
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// WallEvents returns the recorded wall-clock intervals sorted by
// (rank, start). Start is real seconds since cluster creation; Dur is the
// measured duration of the work (unscaled).
func (t *Trace) WallEvents() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.wall))
	copy(out, t.wall)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// chromeEvent is the trace-event JSON schema: complete events (phase
// "X"), flow events ("s"/"f", paired by ID), instants ("i") and metadata
// ("M"); timestamps in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope ("t": thread)
	Bp   string         `json:"bp,omitempty"` // flow binding point ("e": enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event format: wrapping the
// event array lets viewers (Perfetto in particular) pick up the display
// unit, while the array stays readable inside "traceEvents". Meta rides
// along as an extension field (ignored by viewers) so MergeChromeTraces
// can identify and align per-process files.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Meta            *TraceMeta    `json:"hzcclMeta,omitempty"`
}

// Chrome trace process ids: virtual-time events on pid 0, wall-clock
// events on pid 1.
const (
	chromePidVirtual = 0
	chromePidWall    = 1
)

// WriteChrome writes the trace in Chrome trace-event JSON (object form,
// {"traceEvents": [...], "displayTimeUnit": "ms"}). Virtual-time events
// appear under the "virtual time" process (pid 0), wall-clock spans under
// "wall clock" (pid 1). Load the file in chrome://tracing or
// https://ui.perfetto.dev to inspect the timeline.
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := t.Events()
	wall := t.WallEvents()
	flows := t.Flows()
	instants := t.Instants()
	out := make([]chromeEvent, 0, len(evs)+len(wall)+2*len(flows)+len(instants)+2)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePidVirtual,
		Args: map[string]any{"name": "virtual time"},
	})
	if len(wall) > 0 || len(flows) > 0 || len(instants) > 0 {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: chromePidWall,
			Args: map[string]any{"name": "wall clock"},
		})
	}
	emit := func(pid int, evs []TraceEvent) {
		for _, ev := range evs {
			name := string(ev.Category)
			if ev.Name != "" {
				name = ev.Name
			}
			out = append(out, chromeEvent{
				Name: name,
				Ph:   "X",
				Ts:   ev.Start * 1e6,
				Dur:  ev.Dur * 1e6,
				Pid:  pid,
				Tid:  ev.Rank,
			})
		}
	}
	emit(chromePidVirtual, evs)
	emit(chromePidWall, wall)
	// Each flow endpoint renders as a small wall slice with the flow event
	// bound inside it: "s" points at the sender, "f" points (binding point
	// "e", the enclosing slice) at the receiver, and Perfetto draws the
	// arrow between the two slices sharing the ID — across processes once
	// traces are merged.
	for _, f := range flows {
		dur := f.Dur
		if dur <= 0 {
			dur = 1e-9
		}
		out = append(out, chromeEvent{
			Name: f.Name, Ph: "X",
			Ts: f.Start * 1e6, Dur: dur * 1e6,
			Pid: chromePidWall, Tid: f.Rank,
		})
		fe := chromeEvent{
			Name: "msg", Ph: string(f.Phase), Cat: "msg", ID: f.ID,
			Ts:  (f.Start + dur/2) * 1e6,
			Pid: chromePidWall, Tid: f.Rank,
		}
		if f.Phase == 'f' {
			fe.Bp = "e"
		}
		out = append(out, fe)
	}
	for _, i := range instants {
		out = append(out, chromeEvent{
			Name: i.Name, Ph: "i", S: "t",
			Ts:  i.Ts * 1e6,
			Pid: chromePidWall, Tid: i.Rank,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms", Meta: t.Meta()})
}

// NewTraced creates a cluster whose ranks record every virtual-time
// advance into the returned Trace.
func NewTraced(cfg Config) (*Cluster, *Trace, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	tr := &Trace{}
	c.attachTrace(tr)
	return c, tr, nil
}
