package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology describes how ranks group into physical "nodes" for the
// hierarchical collectives: ranks are assigned to nodes in contiguous
// runs, node i holding NodeSizes[i] consecutive ranks. The first rank of
// each node is its leader (the rank that speaks for the node in the
// inter-node stage). A nil *Topology means "one flat node containing
// every rank" — see Normalize.
//
// The topology is pure configuration: it rides on Config and therefore
// works identically on every Transport (the in-process fabric and the
// TCP mesh), since it only changes which peers a collective addresses,
// not how messages move.
type Topology struct {
	// NodeSizes[i] is the number of consecutive ranks in node i. Every
	// entry must be >= 1 and the sizes must sum to the world size.
	NodeSizes []int
}

// UniformTopology returns a topology of `nodes` nodes of `perNode` ranks
// each.
func UniformTopology(nodes, perNode int) *Topology {
	sizes := make([]int, nodes)
	for i := range sizes {
		sizes[i] = perNode
	}
	return &Topology{NodeSizes: sizes}
}

// ParseTopology parses the two CLI spellings of a topology:
//
//	"8x4"   — 8 nodes of 4 ranks each
//	"3,5,8" — explicit node sizes (non-uniform)
func ParseTopology(s string) (*Topology, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("cluster: empty topology spec")
	}
	if i := strings.IndexByte(s, 'x'); i >= 0 {
		nodes, err1 := strconv.Atoi(strings.TrimSpace(s[:i]))
		per, err2 := strconv.Atoi(strings.TrimSpace(s[i+1:]))
		if err1 != nil || err2 != nil || nodes < 1 || per < 1 {
			return nil, fmt.Errorf("cluster: bad topology %q (want NODESxSIZE, e.g. 8x4)", s)
		}
		return UniformTopology(nodes, per), nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("cluster: bad topology node size %q in %q", p, s)
		}
		sizes = append(sizes, v)
	}
	return &Topology{NodeSizes: sizes}, nil
}

// Normalize returns a topology usable for a `world`-rank cluster: t
// itself when non-nil, else the single-node topology holding every rank.
// The hierarchical algorithms call this so "no topology configured"
// degrades to a pure intra-node run instead of an error.
func (t *Topology) Normalize(world int) *Topology {
	if t == nil {
		return &Topology{NodeSizes: []int{world}}
	}
	return t
}

// WithoutRanks returns the topology left behind when some virtual ranks
// of an n-rank world are evicted (membership shrink): each node keeps its
// surviving members, nodes emptied entirely are removed, and the result
// describes the renumbered dense world of survivors. n is the world size
// t is normalized against (the pre-shrink virtual world).
func (t *Topology) WithoutRanks(n int, dead func(rank int) bool) *Topology {
	norm := t.Normalize(n)
	sizes := make([]int, 0, len(norm.NodeSizes))
	rank := 0
	for _, s := range norm.NodeSizes {
		alive := 0
		for i := 0; i < s; i++ {
			if !dead(rank) {
				alive++
			}
			rank++
		}
		if alive > 0 {
			sizes = append(sizes, alive)
		}
	}
	return &Topology{NodeSizes: sizes}
}

// Validate checks the topology against a world size.
func (t *Topology) Validate(world int) error {
	if t == nil {
		return nil
	}
	if len(t.NodeSizes) == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	sum := 0
	for i, s := range t.NodeSizes {
		if s < 1 {
			return fmt.Errorf("cluster: topology node %d has size %d (want >= 1)", i, s)
		}
		sum += s
	}
	if sum != world {
		return fmt.Errorf("cluster: topology node sizes sum to %d, want world size %d", sum, world)
	}
	return nil
}

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return len(t.NodeSizes) }

// MaxNodeSize returns the largest node's rank count.
func (t *Topology) MaxNodeSize() int {
	m := 0
	for _, s := range t.NodeSizes {
		if s > m {
			m = s
		}
	}
	return m
}

// NodeOf returns the node index holding the given rank.
func (t *Topology) NodeOf(rank int) int {
	start := 0
	for i, s := range t.NodeSizes {
		if rank < start+s {
			return i
		}
		start += s
	}
	return len(t.NodeSizes) - 1
}

// NodeStart returns the first (leader) rank of the given node.
func (t *Topology) NodeStart(node int) int {
	start := 0
	for i := 0; i < node; i++ {
		start += t.NodeSizes[i]
	}
	return start
}

// Members returns the ranks of the given node in ascending order; the
// first entry is the node's leader.
func (t *Topology) Members(node int) []int {
	start := t.NodeStart(node)
	out := make([]int, t.NodeSizes[node])
	for i := range out {
		out[i] = start + i
	}
	return out
}

// Leader returns the leader rank of the given node.
func (t *Topology) Leader(node int) int { return t.NodeStart(node) }

// Leaders returns every node's leader rank in node order.
func (t *Topology) Leaders() []int {
	out := make([]int, len(t.NodeSizes))
	start := 0
	for i, s := range t.NodeSizes {
		out[i] = start
		start += s
	}
	return out
}

func (t *Topology) String() string {
	if t == nil {
		return "flat"
	}
	// Prefer the compact NODESxSIZE form when uniform.
	uniform := true
	for _, s := range t.NodeSizes[1:] {
		if s != t.NodeSizes[0] {
			uniform = false
			break
		}
	}
	if uniform && len(t.NodeSizes) > 0 {
		return fmt.Sprintf("%dx%d", len(t.NodeSizes), t.NodeSizes[0])
	}
	parts := make([]string, len(t.NodeSizes))
	for i, s := range t.NodeSizes {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, ",")
}
