package cluster

// Elastic membership: failure detection, cooperative abort, and
// shrink-and-continue worlds.
//
// Every collective used to assume a fixed, immortal world: when a rank
// died, the best the degradation machinery could do was time out and
// descend the *backend* ladder, never touch the *membership*. This file
// adds the three pieces that let a running cluster survive rank death:
//
//   - A failure detector with suspect/confirm states. Liveness is
//     piggybacked on regular traffic rather than on heartbeats (which
//     would disturb the virtual-time model): a receive timeout or an
//     exhausted retry budget *suspects* the peer, a successful delivery
//     clears the suspicion, and hard evidence — the peer's body
//     returning an error in-process, or its TCP connection resetting —
//     *confirms* the death. Transitions feed the cluster.{suspects,
//     confirms} counters and suspect/confirm flight-recorder events.
//   - Cooperative abort. When armed (Rank.SetFailFast, used by the
//     Shrink degradation rung), every blocked receive watches the
//     detector's notification channel: the moment any member is
//     confirmed dead, all survivors abandon the attempt with a typed
//     *RankFailedError instead of each burning a full RecvTimeout.
//   - Shrink-and-continue. Survivors agree on the dead set with
//     Rank.AgreeDead (a death-tolerant consensus round that completes
//     without the dead ranks) and call Rank.ShrinkWorld: ranks renumber
//     densely, the Topology drops the dead slots, the epoch advances,
//     and the collective re-runs on the smaller world. Internally all
//     per-link state stays indexed by the immutable *physical* rank id;
//     only the public ID/N view and the peer arguments of Send/Recv are
//     virtual, which is why every schedule in internal/core runs on a
//     shrunken world unchanged.
//
// Dead-set bookkeeping uses uint64 bitmaps, so elastic membership
// supports worlds of at most 64 ranks (ErrWorldTooLarge beyond); the
// fixed-world behavior is unlimited as before.

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"hzccl/internal/telemetry"
)

// Membership errors.
var (
	// ErrRankFailed is the class of "a member of the world died" errors:
	// every *RankFailedError matches it (and, for compatibility with the
	// fixed-world API, ErrPeerFailed too).
	ErrRankFailed = errors.New("cluster: rank failed")
	// ErrRankKilled is returned by Send/Recv on a rank that a FaultKill
	// injection has terminated: from the fabric's point of view the rank
	// is dead and must stop talking.
	ErrRankKilled = errors.New("cluster: rank killed by fault injection")
	// ErrEvicted is returned by ShrinkWorld on a rank that the membership
	// consensus declared dead (it was suspected by the survivors — e.g. a
	// network partition isolated it). The evicted rank must exit; the
	// survivors continue without it.
	ErrEvicted = errors.New("cluster: rank evicted by membership consensus")
	// ErrConnReset marks a TCP peer connection that reset or closed
	// mid-run — the transport-level evidence feeding the failure
	// detector's confirm state.
	ErrConnReset = errors.New("cluster: peer connection reset")
	// ErrWorldTooLarge is returned by the elastic-membership operations
	// (AgreeDead, ShrinkWorld) on worlds beyond the 64-rank bitmap limit.
	ErrWorldTooLarge = errors.New("cluster: elastic membership supports at most 64 ranks")
)

// RankFailedError reports that a specific rank died while the cluster
// needed it. It matches both ErrRankFailed and — because a dead rank is
// a peer that will never send — ErrPeerFailed under errors.Is, so
// fixed-world error handling keeps working while elastic callers can
// extract the rank and the underlying cause.
type RankFailedError struct {
	// Rank is the physical rank that failed.
	Rank int
	// Cause is the evidence, when known: ErrConnReset, ErrRankKilled, the
	// failed rank's body error, or nil when only the exit was observed.
	Cause error
}

func (e *RankFailedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("cluster: rank %d failed: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("cluster: rank %d failed", e.Rank)
}

// Is reports the error classes a rank failure belongs to. The Cause is
// deliberately NOT unwrapped: "rank X died" must not inherit the error
// classes of *what killed X* (a survivor's error matching the victim's
// ErrRankKilled would make the survivor look killed too). Inspect Cause
// directly (errors.As to *RankFailedError, then errors.Is on .Cause).
func (e *RankFailedError) Is(target error) bool {
	return target == ErrRankFailed || target == ErrPeerFailed
}

// errAborted is the internal sentinel a transport recv returns when the
// cooperative-abort channel fired while waiting. It never escapes the
// receive path: Recv translates it into a *RankFailedError.
var errAborted = errors.New("cluster: receive aborted by failure detector")

// rankBit returns the bitmap bit of a rank, or 0 for ranks outside the
// 64-rank elastic-membership range.
func rankBit(rank int) uint64 {
	if rank < 0 || rank >= 64 {
		return 0
	}
	return uint64(1) << uint(rank)
}

// firstRank returns the lowest rank set in the bitmap, or -1.
func firstRank(mask uint64) int {
	if mask == 0 {
		return -1
	}
	return bits.TrailingZeros64(mask)
}

// ranksOf expands a bitmap into its ranks in ascending order.
func ranksOf(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		r := bits.TrailingZeros64(mask)
		out = append(out, r)
		mask &^= uint64(1) << uint(r)
	}
	return out
}

// rankFailedFromBits builds the typed failure for a dead-set bitmap
// (lowest dead rank named).
func rankFailedFromBits(dead uint64, cause error) error {
	return &RankFailedError{Rank: firstRank(dead), Cause: cause}
}

// detector is the per-cluster failure detector. In-process it is shared
// by every rank goroutine; on a multi-process transport each process
// holds its own, fed by its local evidence (its receive timeouts, its
// connections' resets) — the full mesh makes a real death visible to
// every survivor independently.
type detector struct {
	mu sync.Mutex
	// suspects and confirmed are physical-rank bitmaps. A rank moves
	// suspects → confirmed on hard evidence and out of suspects again on
	// a successful delivery (piggybacked liveness); confirmed is cleared
	// only by forget (eviction).
	suspects  uint64
	confirmed uint64
	// causes records the first evidence per confirmed rank.
	causes map[int]error
	// notify is closed (and replaced) on every new confirm, waking armed
	// receives.
	notify chan struct{}
}

func newDetector() *detector {
	return &detector{causes: make(map[int]error), notify: make(chan struct{})}
}

// suspect marks a rank as suspected dead (receive timeout / exhausted
// retry budget). Idempotent; already-confirmed ranks stay confirmed.
func (d *detector) suspect(rank int) {
	bit := rankBit(rank)
	if bit == 0 {
		return
	}
	d.mu.Lock()
	if d.suspects&bit == 0 && d.confirmed&bit == 0 {
		d.suspects |= bit
		mSuspects.Inc()
		flight.Record(rank, telemetry.FlightSuspect, int64(rank), 0, 0, 0)
	}
	d.mu.Unlock()
}

// clear retracts a suspicion: the rank proved alive by delivering a
// message.
func (d *detector) clear(rank int) {
	bit := rankBit(rank)
	if bit == 0 {
		return
	}
	d.mu.Lock()
	d.suspects &^= bit
	d.mu.Unlock()
}

// confirm marks a rank as dead on hard evidence and wakes every armed
// receive. Only the first confirmation per rank counts (and keeps its
// cause).
func (d *detector) confirm(rank int, cause error) {
	bit := rankBit(rank)
	if bit == 0 {
		return
	}
	d.mu.Lock()
	if d.confirmed&bit == 0 {
		d.confirmed |= bit
		d.suspects &^= bit
		if cause != nil {
			d.causes[rank] = cause
		}
		mConfirms.Inc()
		flight.Record(rank, telemetry.FlightConfirm, int64(rank), 0, 0, 0)
		// Wake current watchers, then arm a fresh channel for the next
		// confirmation.
		close(d.notify)
		d.notify = make(chan struct{})
	}
	d.mu.Unlock()
}

// watch returns the channel closed by the next confirmation. Callers
// must fetch the channel BEFORE checking confirmedIn, or a confirmation
// landing between the check and the wait would be missed.
func (d *detector) watch() <-chan struct{} {
	d.mu.Lock()
	ch := d.notify
	d.mu.Unlock()
	return ch
}

// confirmedIn returns the confirmed-dead ranks within the mask.
func (d *detector) confirmedIn(mask uint64) uint64 {
	d.mu.Lock()
	v := d.confirmed & mask
	d.mu.Unlock()
	return v
}

// deadIn returns the suspected-or-confirmed ranks within the mask — the
// proposal a survivor feeds into AgreeDead.
func (d *detector) deadIn(mask uint64) uint64 {
	d.mu.Lock()
	v := (d.suspects | d.confirmed) & mask
	d.mu.Unlock()
	return v
}

// cause returns the recorded evidence for a confirmed rank, or nil.
func (d *detector) cause(rank int) error {
	d.mu.Lock()
	c := d.causes[rank]
	d.mu.Unlock()
	return c
}

// forget erases all state about a rank (it was evicted; the shrunken
// world has no member to suspect).
func (d *detector) forget(rank int) {
	bit := rankBit(rank)
	if bit == 0 {
		return
	}
	d.mu.Lock()
	d.suspects &^= bit
	d.confirmed &^= bit
	delete(d.causes, rank)
	d.mu.Unlock()
}

// --- Rank-level membership API -------------------------------------------

// PhysID returns this rank's immutable physical id: the id it was
// created with, unchanged by ShrinkWorld renumbering. Telemetry, traces
// and the flight recorder always speak physical ids.
func (r *Rank) PhysID() int { return r.phys }

// Members returns the physical ids of the current world members in
// virtual-rank order (Members()[v] is the physical id of virtual rank
// v). Before any shrink it is the identity [0..N).
func (r *Rank) Members() []int {
	out := make([]int, r.N)
	copy(out, r.membersList())
	return out
}

// membersList is the internal, non-copying view of Members.
func (r *Rank) membersList() []int {
	if r.members != nil {
		return r.members
	}
	ids := make([]int, r.N)
	for i := range ids {
		ids[i] = i
	}
	r.members = ids
	return ids
}

// peerPhys translates a virtual peer rank into its physical id.
func (r *Rank) peerPhys(v int) int {
	if r.members == nil {
		return v
	}
	return r.members[v]
}

// peerMask is the physical bitmap of the current members excluding this
// rank.
func (r *Rank) peerMask() uint64 {
	return r.memberMask &^ rankBit(r.phys)
}

// SetFailFast arms (or disarms) cooperative abort on this rank: while
// armed, a blocked Recv aborts with a *RankFailedError the moment the
// failure detector confirms any member dead, instead of waiting out its
// own RecvTimeout. The Shrink degradation rung arms it for the duration
// of the guarded collective. A no-op on worlds beyond the 64-rank
// elastic-membership limit.
func (r *Rank) SetFailFast(on bool) {
	r.failFast = on && r.c.cfg.Ranks <= 64
}

// SuspectedDead returns the physical bitmap of current members this
// process's failure detector holds suspected or confirmed dead (self
// excluded) — the proposal to feed into AgreeDead.
func (r *Rank) SuspectedDead() uint64 {
	return r.c.det.deadIn(r.peerMask())
}

// abortWatch returns the detector notification channel when cooperative
// abort is armed, else nil (a nil channel never fires).
func (r *Rank) abortWatch() <-chan struct{} {
	if !r.failFast {
		return nil
	}
	return r.c.det.watch()
}

// confirmedPeer returns the lowest confirmed-dead member other than
// `except` (pass -1 for none), or -1.
func (r *Rank) confirmedPeer(except int) int {
	return firstRank(r.c.det.confirmedIn(r.peerMask() &^ rankBit(except)))
}

// rankFailedErr builds the typed cooperative-abort error for a confirmed
// rank.
func (r *Rank) rankFailedErr(rank int) error {
	return &RankFailedError{Rank: rank, Cause: r.c.det.cause(rank)}
}

// peerFailedErr is the "peer will never send" receive error: typed with
// the detector's cause when one was recorded, the legacy ErrPeerFailed
// wrap otherwise.
func (r *Rank) peerFailedErr(from int) error {
	if cause := r.c.det.cause(from); cause != nil {
		return &RankFailedError{Rank: from, Cause: cause}
	}
	return fmt.Errorf("%w: rank %d", ErrPeerFailed, from)
}

// noteSuspect reports a receive stall on `from` to the failure detector,
// remembering locally that this rank raised it (so the matching success
// can retract it cheaply).
func (r *Rank) noteSuspect(from int) {
	if r.suspected&rankBit(from) != 0 {
		return
	}
	r.suspected |= rankBit(from)
	r.c.det.suspect(from)
}

// unsuspect retracts this rank's suspicion of `from` after a successful
// delivery (piggybacked liveness). One branch on the hot path.
func (r *Rank) unsuspect(from int) {
	if r.suspected&rankBit(from) == 0 {
		return
	}
	r.suspected &^= rankBit(from)
	r.c.det.clear(from)
}

// AgreeDead runs one death-tolerant membership consensus round: every
// *live* member contributes a proposed dead-set bitmap (physical ranks,
// from SuspectedDead), the round completes without waiting on members
// that died or exited, and every survivor receives the identical union
// of all proposals plus the members the transport itself observed dead.
// Like AgreeMax it synchronizes the survivors' clocks (tree cost over
// the participants) and runs on the transport control plane, immune to
// injected point-to-point faults. The result is what survivors hand to
// ShrinkWorld — all of them receive the same bitmap, so all of them
// shrink to the same world.
func (r *Rank) AgreeDead(propose uint64) (uint64, error) {
	if r.c.cfg.Ranks > 64 {
		return 0, fmt.Errorf("%w: world has %d ranks", ErrWorldTooLarge, r.c.cfg.Ranks)
	}
	leave, _, dead, err := r.c.tr.agree(r.phys, r.now, 0, propose, true)
	if err != nil {
		return 0, err
	}
	flight.Record(r.phys, telemetry.FlightAgree, int64(propose), int64(dead), 1, 0)
	if leave > r.now {
		if tr := r.c.trace; tr != nil {
			tr.record(TraceEvent{Rank: r.phys, Category: CatMPI, Start: r.now, Dur: leave - r.now})
		}
		r.breakdown[CatMPI] += leave - r.now
		r.now = leave
	}
	return dead, nil
}

// ShrinkWorld removes the agreed-dead ranks from this rank's world view:
// the survivors renumber densely (ID/N become the virtual view), the
// Topology drops the dead slots (emptied nodes disappear), the transport
// membership updates so consensus rounds stop waiting on the dead, the
// failure detector forgets them, and the message epoch advances so stale
// traffic from the abandoned attempt is discarded. A rank that finds
// itself in the dead set returns ErrEvicted and must exit; everyone else
// returns nil and continues on the shrunken world.
//
// All survivors must call ShrinkWorld with the same bitmap (the result
// of the same AgreeDead round) at the same point in program order.
// Evictions surface in Result.Evicted, the cluster.evictions counter and
// evict/shrink flight-recorder events.
func (r *Rank) ShrinkWorld(dead uint64) error {
	if r.c.cfg.Ranks > 64 {
		return fmt.Errorf("%w: world has %d ranks", ErrWorldTooLarge, r.c.cfg.Ranks)
	}
	dead &= r.memberMask
	if dead == 0 {
		return nil
	}
	if dead&rankBit(r.phys) != 0 {
		return fmt.Errorf("%w: rank %d", ErrEvicted, r.phys)
	}
	old := r.membersList()
	// Shrink the topology before renumbering: node sizes are indexed by
	// the current virtual ids.
	topo := r.c.cfg.Topology
	if r.topo != nil {
		topo = r.topo
	}
	r.topo = topo.Normalize(r.N).WithoutRanks(r.N, func(v int) bool {
		return dead&rankBit(old[v]) != 0
	})
	survivors := make([]int, 0, len(old))
	evicted := make([]int, 0, bits.OnesCount64(dead))
	for _, p := range old {
		if dead&rankBit(p) != 0 {
			evicted = append(evicted, p)
			continue
		}
		survivors = append(survivors, p)
	}
	// Update the transport membership first: the evicted ranks' exits
	// must not abort a survivor's next consensus generation.
	r.c.tr.setMembers(survivors)
	r.members = survivors
	r.memberMask &^= dead
	r.N = len(survivors)
	for v, p := range survivors {
		if p == r.phys {
			r.ID = v
			break
		}
	}
	for _, e := range evicted {
		r.c.det.forget(e)
		flight.Record(r.phys, telemetry.FlightEvict, int64(e), 0, 0, 0)
	}
	r.c.noteEvict(evicted)
	flight.Record(r.phys, telemetry.FlightShrink, int64(r.N), int64(len(evicted)), 0, 0)
	if tr := r.c.trace; tr != nil {
		tr.recordInstant(Instant{Name: fmt.Sprintf("shrink world=%d", r.N), Rank: r.phys, Ts: r.wallNow()})
	}
	// Fresh epoch on the shrunken world: in-flight traffic of the
	// abandoned attempt (including anything the dead ranks sent) is
	// silently discarded by the epoch filter.
	r.AdvanceEpoch()
	return nil
}

// noteEvict records evictions at the cluster level (deduplicated across
// the survivor ranks that all report the same consensus).
func (c *Cluster) noteEvict(ranks []int) {
	c.evictMu.Lock()
	for _, e := range ranks {
		if !c.evicted[e] {
			c.evicted[e] = true
			mEvictions.Inc()
		}
	}
	c.evictMu.Unlock()
}

// evictedList returns the evicted physical ranks in ascending order.
func (c *Cluster) evictedList() []int {
	c.evictMu.Lock()
	out := make([]int, 0, len(c.evicted))
	for e := range c.evicted {
		out = append(out, e)
	}
	c.evictMu.Unlock()
	sort.Ints(out)
	return out
}
