package cluster

// Chaos: seeded, probabilistic fault schedules for robustness testing.
//
// A Chaos assigns every message (identified by link, sequence number,
// epoch and delivery attempt) a fate drawn from configurable loss,
// corruption, duplication and delay rates. The draw is a pure hash of
// the seed and the message identity — no shared RNG state — so a
// schedule is exactly reproducible regardless of goroutine interleaving,
// and a retransmission of a faulted message gets an independent draw
// (otherwise a dropped message would be dropped on every replay and no
// retry budget could ever recover it).

import "sync/atomic"

// ChaosSpec configures a probabilistic fault schedule.
type ChaosSpec struct {
	// Seed selects the schedule; the same seed reproduces the same fate
	// for every message identity.
	Seed int64
	// DropRate, CorruptRate, DuplicateRate and DelayRate are independent
	// probabilities in [0, 1]; their sum must be ≤ 1 (one uniform draw is
	// matched against the cumulative ranges, so at most one fault applies
	// per delivery attempt).
	DropRate, CorruptRate, DuplicateRate, DelayRate float64
	// MaxDelaySeconds bounds injected delays: a delayed message arrives up
	// to this many (virtual) seconds late, uniform in (0, MaxDelaySeconds].
	// 0 selects 100µs.
	MaxDelaySeconds float64
	// MaxFaults caps the total number of injected faults across the run
	// (0 = unlimited). Useful to bound worst-case recovery time in tests.
	// Kills are deterministic (not probabilistic) and do not count against
	// the cap.
	MaxFaults int64
	// Kills crashes specific ranks at specific program-order send steps,
	// on top of the probabilistic schedule. A kill matches only original
	// sends (never retransmissions) and is checked before the random draw,
	// so a seeded soak reproduces the same crash point every run.
	Kills []KillRank
}

// KillRank crashes one rank at one send: when rank Rank issues its
// AtStep-th original send (its program-order ordinal across all links,
// FaultContext.RankSeq), the send returns ErrRankKilled and the rank is
// dead for the rest of the run.
type KillRank struct {
	Rank   int
	AtStep int
}

// match reports whether the fault context is the kill point.
func (k KillRank) match(fc FaultContext) bool {
	return fc.Attempt == 0 && fc.From == k.Rank && fc.RankSeq == k.AtStep
}

// Fault returns a hook injecting only this kill (everything else is
// delivered intact) — the minimal schedule for shrink tests.
func (k KillRank) Fault() Fault {
	return func(fc FaultContext) (FaultAction, float64) {
		if k.match(fc) {
			return FaultKill, 0
		}
		return FaultDeliver, 0
	}
}

// ChaosCounts tallies the faults a Chaos actually injected.
type ChaosCounts struct {
	Drops, Corrupts, Duplicates, Delays, Kills int64
}

// Total returns the combined number of injected faults.
func (c ChaosCounts) Total() int64 {
	return c.Drops + c.Corrupts + c.Duplicates + c.Delays + c.Kills
}

// Chaos is a reusable fault schedule; install Fault() as Config.Fault.
// It is safe for concurrent use from all ranks.
type Chaos struct {
	spec                                       ChaosSpec
	drops, corrupts, duplicates, delays, kills atomic.Int64
}

// NewChaos builds a chaos schedule from the spec.
func NewChaos(spec ChaosSpec) *Chaos {
	if spec.MaxDelaySeconds == 0 {
		spec.MaxDelaySeconds = 100e-6
	}
	return &Chaos{spec: spec}
}

// Counts returns the faults injected so far.
func (x *Chaos) Counts() ChaosCounts {
	return ChaosCounts{
		Drops:      x.drops.Load(),
		Corrupts:   x.corrupts.Load(),
		Duplicates: x.duplicates.Load(),
		Delays:     x.delays.Load(),
		Kills:      x.kills.Load(),
	}
}

// take consumes one slot of the MaxFaults cap, reporting whether the
// fault may be injected.
func (x *Chaos) take() bool {
	if x.spec.MaxFaults <= 0 {
		return true
	}
	total := x.drops.Load() + x.corrupts.Load() + x.duplicates.Load() + x.delays.Load()
	return total < x.spec.MaxFaults
}

// Fault returns the fault hook implementing the schedule.
func (x *Chaos) Fault() Fault {
	s := x.spec
	return func(fc FaultContext) (FaultAction, float64) {
		for _, k := range s.Kills {
			if k.match(fc) {
				x.kills.Add(1)
				return FaultKill, 0
			}
		}
		h := chaosHash(s.Seed, fc)
		u := u01(h)
		switch {
		case u < s.DropRate:
			if !x.take() {
				return FaultDeliver, 0
			}
			x.drops.Add(1)
			return FaultDrop, 0
		case u < s.DropRate+s.CorruptRate:
			if !x.take() {
				return FaultDeliver, 0
			}
			x.corrupts.Add(1)
			return FaultCorrupt, 0
		case u < s.DropRate+s.CorruptRate+s.DuplicateRate:
			if !x.take() {
				return FaultDeliver, 0
			}
			x.duplicates.Add(1)
			return FaultDuplicate, 0
		case u < s.DropRate+s.CorruptRate+s.DuplicateRate+s.DelayRate:
			if !x.take() {
				return FaultDeliver, 0
			}
			x.delays.Add(1)
			return FaultDelay, s.MaxDelaySeconds * u01(splitmix64(h))
		}
		return FaultDeliver, 0
	}
}

// splitmix64 is the SplitMix64 mixing function: a cheap, well-distributed
// 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosHash derives a reproducible 64-bit value from a seed and one
// message identity (link, sequence, epoch, attempt).
func chaosHash(seed int64, fc FaultContext) uint64 {
	x := uint64(seed)
	for _, v := range [...]uint64{
		uint64(fc.From), uint64(fc.To), uint64(fc.Seq),
		uint64(fc.Epoch), uint64(fc.Attempt),
	} {
		x = splitmix64(x ^ splitmix64(v))
	}
	return splitmix64(x)
}

// u01 maps a 64-bit hash onto [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }
