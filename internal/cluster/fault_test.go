package cluster

import (
	"errors"
	"testing"
	"time"
)

// twoRankExchange runs a 2-rank cluster where rank 0 sends one message to
// rank 1 and returns rank 1's Recv error (nil when delivery succeeded).
func twoRankExchange(t *testing.T, cfg Config, payload []byte) error {
	t.Helper()
	cfg.Ranks = 2
	var recvErr error
	_, err := Run(cfg, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, payload)
		}
		_, recvErr = r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return recvErr
}

func TestChecksumDetectsCorruption(t *testing.T) {
	err := twoRankExchange(t, Config{
		Fault: FaultOn(OnLink(0, 1, 0), FaultCorrupt, 0),
	}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if !errors.Is(err, ErrMessageCorrupt) {
		t.Fatalf("corrupted message not detected: err = %v", err)
	}
}

func TestChecksumDetectsCorruptionOfEmptyPayload(t *testing.T) {
	err := twoRankExchange(t, Config{
		Fault: FaultOn(OnLink(0, 1, 0), FaultCorrupt, 0),
	}, nil)
	if !errors.Is(err, ErrMessageCorrupt) {
		t.Fatalf("corrupted empty message not detected: err = %v", err)
	}
}

func TestHealthyFabricDelivers(t *testing.T) {
	if err := twoRankExchange(t, Config{}, []byte{9, 9, 9}); err != nil {
		t.Fatalf("healthy delivery failed: %v", err)
	}
}

func TestDropDetectedBySequenceGap(t *testing.T) {
	// Rank 0 sends two messages; the first is dropped. Rank 1's first Recv
	// sees seq 1 where it expected seq 0.
	var recvErr error
	_, err := Run(Config{
		Ranks: 2,
		Fault: FaultOn(OnLink(0, 1, 0), FaultDrop, 0),
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("first")); err != nil {
				return err
			}
			return r.Send(1, []byte("second"))
		}
		_, recvErr = r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !errors.Is(recvErr, ErrMessageLost) {
		t.Fatalf("dropped message not detected as loss: err = %v", recvErr)
	}
}

func TestDropDetectedByTimeout(t *testing.T) {
	// The only message is dropped and the sender stays alive, so only the
	// wall-clock timeout can unblock the receiver.
	var recvErr error
	_, err := Run(Config{
		Ranks:       2,
		Fault:       FaultOn(OnLink(0, 1, 0), FaultDrop, 0),
		RecvTimeout: 50 * time.Millisecond,
	}, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("vanishes")); err != nil {
				return err
			}
			time.Sleep(300 * time.Millisecond)
			return nil
		}
		_, recvErr = r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !errors.Is(recvErr, ErrRecvTimeout) {
		t.Fatalf("dropped message did not time out: err = %v", recvErr)
	}
}

func TestDuplicateDetected(t *testing.T) {
	var first, second error
	_, err := Run(Config{
		Ranks: 2,
		Fault: FaultOn(OnLink(0, 1, 0), FaultDuplicate, 0),
	}, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte("once"))
		}
		_, first = r.Recv(0)
		_, second = r.Recv(0)
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if first != nil {
		t.Fatalf("first copy rejected: %v", first)
	}
	if !errors.Is(second, ErrMessageDuplicate) {
		t.Fatalf("duplicate not detected: err = %v", second)
	}
}

func TestDelayChargesExtraLatency(t *testing.T) {
	const extra = 0.25 // seconds
	var mpi float64
	_, err := Run(Config{
		Ranks: 2,
		Fault: FaultOn(OnLink(0, 1, 0), FaultDelay, extra),
	}, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte{1})
		}
		if _, err := r.Recv(0); err != nil {
			return err
		}
		mpi = r.Breakdown()[CatMPI]
		return nil
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if mpi < extra {
		t.Fatalf("delay not charged: MPI time %g < %g", mpi, extra)
	}
}

func TestBreakdownSharesDeterministicOrder(t *testing.T) {
	res := &Result{Breakdown: map[Category]float64{
		CatMPI: 1, CatCPR: 2, CatHPR: 1,
	}}
	shares := res.BreakdownShares()
	if len(shares) != len(Categories) {
		t.Fatalf("got %d shares, want %d", len(shares), len(Categories))
	}
	for i, s := range shares {
		if s.Category != Categories[i] {
			t.Fatalf("share %d is %s, want %s", i, s.Category, Categories[i])
		}
	}
	if shares[0].Category != CatCPR || shares[0].Fraction != 0.5 {
		t.Fatalf("CPR share wrong: %+v", shares[0])
	}
}
