package cluster

// Transport abstraction. A Cluster charges time through the (α, β) model
// and enforces message integrity (checksums, sequence numbers, epochs) —
// but the bytes themselves move through a Transport. Two implementations
// exist:
//
//   - chanTransport (chantransport.go): the original in-process fabric.
//     Every rank is a goroutine of one process and messages move through
//     buffered Go channels. This is the default and its behavior is
//     byte-for-byte what the pre-Transport cluster did, so all
//     virtual-time numbers stay reproducible.
//   - TCPTransport (tcptransport.go): each rank is its own OS process and
//     messages move as length-prefixed frames over a TCP mesh, so the
//     collectives cross real sockets.
//
// The interface is sealed (its methods are unexported): both backends
// live in this package, and the integrity/reliability layers sit above
// the interface so every Transport gets checksums, NACK-driven
// retransmission and chaos injection for free.

import "time"

// Transport moves framed messages between ranks. Implementations are
// provided by this package (the interface is sealed); callers select one
// via Config.Transport and may hand it to multiple API layers, but only
// the Cluster drives it.
type Transport interface {
	// LocalRank returns (rank, true) when this transport hosts exactly one
	// rank of a multi-process cluster (each peer runs in its own OS
	// process), or (0, false) when all ranks are local goroutines.
	LocalRank() (int, bool)

	// Close releases fabric resources (sockets, listeners). It is safe to
	// call more than once.
	Close() error

	// bind hands the transport the cluster configuration (with defaults
	// applied) before the run starts. Implementations validate that the
	// configured world size matches their own.
	bind(cfg Config) error

	// send delivers `copies` copies of m on the from→to link. The
	// transport takes ownership of m.data: the in-process fabric hands it
	// to the receiver, the TCP fabric recycles it after writing the frame.
	send(from, to int, m message, copies int) error

	// recv returns the next message on the from→to link. ok == false
	// means the sending rank exited (or its connection closed) and the
	// message will never arrive; a timeout > 0 bounds the wall-clock wait
	// and surfaces as ErrRecvTimeout. A non-nil abort channel cancels the
	// wait when closed (cooperative abort on a confirmed rank failure)
	// and surfaces as errAborted; nil means no cancellation.
	recv(from, to int, timeout time.Duration, abort <-chan struct{}) (m message, ok bool, err error)

	// recordRetx stores a pristine copy of an outgoing message in the
	// sender-side replay window of the from→to link (reliable delivery).
	recordRetx(from, to, seq, epoch int, data []byte, sum uint32)

	// retransmit fetches a replay of the identified message from the
	// sender's replay window: the in-process fabric reads the shared
	// window directly, the TCP fabric NACKs the peer over the wire and
	// waits for its replay frame. It returns errNotYetSent when the
	// sender simply has not sent that sequence number yet, or an
	// ErrRetransmitGone-wrapped error when the window no longer holds it.
	retransmit(from, to, seq, epoch int) (data []byte, sum uint32, err error)

	// clearRetx drops every replay window fed by the given rank (epoch
	// advance: the retained traffic belongs to an abandoned attempt).
	clearRetx(rank int)

	// agree is the control plane: every live member contributes
	// (clock, v, propose) and all participants leave together at the
	// returned clock (max over contributions plus the α·ceil(log2 n)
	// tree cost) with the maximum contributed v. It must be immune to
	// injected point-to-point faults.
	//
	// With tolerant == false this is the classic AgreeMax round: a member
	// that exits or disconnects instead of contributing aborts the round
	// for everyone with a *RankFailedError, and dead returns the bitmap
	// of members observed dead. With tolerant == true the round is a
	// membership consensus: it completes without the dead members, and
	// dead returns the union of every participant's propose bitmap plus
	// the members the transport itself observed exited or disconnected.
	agree(rank int, clock float64, v int, propose uint64, tolerant bool) (leave float64, agreed int, dead uint64, err error)

	// setMembers restricts the control plane to the given live physical
	// ranks after a membership shrink: subsequent agree rounds wait only
	// on these members, and the exits of evicted ranks no longer abort
	// rounds. Every surviving rank calls it with the identical list.
	setMembers(members []int)

	// closeRank marks a local rank's body as returned so peers blocked on
	// recv or agree fail fast instead of hanging.
	closeRank(rank int)

	// epochHint returns the wall-clock instant trace timestamps should be
	// anchored to, when the transport has one that is shared by every
	// process of the mesh (the TCP handshake agrees on the minimum of all
	// ranks' start times). ok == false means the transport has no shared
	// epoch and the cluster anchors to its own creation time.
	epochHint() (time.Time, bool)
}
