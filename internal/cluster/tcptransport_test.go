package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// startMesh forms an n-rank TCP mesh on loopback ephemeral ports, every
// rank in its own goroutine (standing in for its own process). It returns
// the connected transports indexed by rank.
func startMesh(t *testing.T, n int) []*TCPTransport {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen rank %d: %v", i, err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	trs := make([]*TCPTransport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trs[i], errs[i] = NewTCPTransport(TCPOptions{
				Rank: i, Peers: peers, Listener: lns[i], DialTimeout: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mesh: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return trs
}

// runMesh executes body once per rank, each rank against its own Cluster
// bound to its own TCPTransport — the in-test equivalent of N processes.
// It returns the per-rank results and the first error.
func runMesh(t *testing.T, cfg Config, trs []*TCPTransport, body func(*Rank) error) ([]*Result, error) {
	t.Helper()
	n := len(trs)
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Transport = trs[i]
			results[i], errs[i] = Run(c, body)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func TestTCPMeshExchange(t *testing.T) {
	trs := startMesh(t, 2)
	cfg := Config{Ranks: 2, ParallelCompute: true}
	results, err := runMesh(t, cfg, trs, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte("over the wire"))
		}
		got, err := r.Recv(0)
		if err != nil {
			return err
		}
		if string(got) != "over the wire" {
			return fmt.Errorf("payload %q", got)
		}
		if r.Now() <= 0 {
			return fmt.Errorf("virtual clock did not advance (%v)", r.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	// The (α, β) model charges the receiver: α + 13 bytes / β.
	c := cfg.withDefaults()
	want := c.Latency.Seconds() + 13/c.BandwidthBytes
	if got := results[1].Time; math.Abs(got-want) > 1e-15 {
		t.Fatalf("rank 1 virtual time %v, want %v", got, want)
	}
	if results[1].WallSeconds <= 0 {
		t.Fatalf("wall-clock time not measured")
	}
}

// ringBody is a deterministic 4-rank ring reduction used to compare the
// two fabrics: N-1 SendRecv rounds accumulating uint32 sums, then an
// AgreeMax. It uses only modeled time (no measured compute), so its
// virtual clocks must be bit-identical on any transport.
func ringBody(acc *[]uint32) func(*Rank) error {
	return func(r *Rank) error {
		buf := make([]byte, 8*4)
		vals := make([]uint32, 8)
		for i := range vals {
			vals[i] = uint32(r.ID + 1)
		}
		for round := 0; round < r.N-1; round++ {
			for i, v := range vals {
				binary.LittleEndian.PutUint32(buf[4*i:], v)
			}
			got, err := r.SendRecv((r.ID+1)%r.N, buf, (r.ID+r.N-1)%r.N)
			if err != nil {
				return err
			}
			for i := range vals {
				vals[i] += binary.LittleEndian.Uint32(got[4*i:])
			}
			r.Elapse(CatHPR, 1e-6)
		}
		if _, err := r.AgreeMax(r.ID); err != nil {
			return err
		}
		*acc = vals
		return nil
	}
}

func TestTCPRingMatchesInProcess(t *testing.T) {
	const n = 4
	cfg := Config{Ranks: n, ParallelCompute: true}

	// Reference run on the default in-process fabric.
	refVals := make([][]uint32, n)
	var mu sync.Mutex
	refRes, err := Run(cfg, func(r *Rank) error {
		var v []uint32
		err := ringBody(&v)(r)
		mu.Lock()
		refVals[r.ID] = v
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	// Same program over the TCP mesh.
	trs := startMesh(t, n)
	tcpVals := make([][]uint32, n)
	tcpRes, err := runMesh(t, cfg, trs, func(r *Rank) error {
		var v []uint32
		err := ringBody(&v)(r)
		mu.Lock()
		tcpVals[r.ID] = v
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatalf("tcp run: %v", err)
	}

	for i := 0; i < n; i++ {
		if len(tcpVals[i]) != len(refVals[i]) {
			t.Fatalf("rank %d: value length %d vs %d", i, len(tcpVals[i]), len(refVals[i]))
		}
		for j := range refVals[i] {
			if tcpVals[i][j] != refVals[i][j] {
				t.Fatalf("rank %d elem %d: tcp %d, in-process %d", i, j, tcpVals[i][j], refVals[i][j])
			}
		}
		// Virtual clocks are modeled, not measured: bit-identical across
		// fabrics.
		if tcpRes[i].Time != refRes.RankTimes[i] {
			t.Fatalf("rank %d virtual time: tcp %v, in-process %v", i, tcpRes[i].Time, refRes.RankTimes[i])
		}
		if len(tcpRes[i].RankTimes) != 1 {
			t.Fatalf("rank %d: multi-process result should carry one local rank time, got %d", i, len(tcpRes[i].RankTimes))
		}
	}
}

func TestTCPReliableCorruptRecovery(t *testing.T) {
	trs := startMesh(t, 2)
	cfg := Config{
		Ranks: 2, ParallelCompute: true, Reliable: true,
		RecvTimeout: 2 * time.Second,
		Fault: FaultOn(func(fc FaultContext) bool {
			return fc.From == 0 && fc.To == 1 && fc.Seq == 1 && fc.Attempt == 0
		}, FaultCorrupt, 0),
	}
	_, err := runMesh(t, cfg, trs, func(r *Rank) error {
		if r.ID == 0 {
			for s := 0; s < 3; s++ {
				if err := r.Send(1, []byte(fmt.Sprintf("payload-%d", s))); err != nil {
					return err
				}
			}
			// Unlike the in-process fabric, a TCP sender must outlive the
			// NACK it services: wait for the receiver's ack before exiting.
			_, err := r.Recv(1)
			return err
		}
		for s := 0; s < 3; s++ {
			got, err := r.Recv(0)
			if err != nil {
				return fmt.Errorf("recv %d: %w", s, err)
			}
			if want := fmt.Sprintf("payload-%d", s); string(got) != want {
				return fmt.Errorf("recv %d: %q, want %q", s, got, want)
			}
		}
		return r.Send(0, []byte("ack"))
	})
	if err != nil {
		t.Fatalf("corrupt recovery over tcp: %v", err)
	}
}

func TestTCPReliableDropRecovery(t *testing.T) {
	trs := startMesh(t, 2)
	cfg := Config{
		Ranks: 2, ParallelCompute: true, Reliable: true,
		RecvTimeout:  200 * time.Millisecond,
		RetryBackoff: time.Microsecond,
		Fault: FaultOn(func(fc FaultContext) bool {
			return fc.From == 0 && fc.To == 1 && fc.Seq == 0 && fc.Attempt == 0
		}, FaultDrop, 0),
	}
	_, err := runMesh(t, cfg, trs, func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, []byte("dropped then replayed")); err != nil {
				return err
			}
			// Stay alive until the receiver has NACKed and recovered: the
			// replay is serviced by this process's reader goroutine, but the
			// transport must not be closed under it.
			_, err := r.Recv(1)
			return err
		}
		got, err := r.Recv(0)
		if err != nil {
			return err
		}
		if string(got) != "dropped then replayed" {
			return fmt.Errorf("payload %q", got)
		}
		return r.Send(0, []byte("done"))
	})
	if err != nil {
		t.Fatalf("drop recovery over tcp: %v", err)
	}
}

func TestTCPAgreeMax(t *testing.T) {
	const n = 3
	trs := startMesh(t, n)
	cfg := Config{Ranks: n, ParallelCompute: true}
	var mu sync.Mutex
	agreed := make([]int, n)
	results, err := runMesh(t, cfg, trs, func(r *Rank) error {
		r.Elapse(CatOther, float64(r.ID)*1e-3) // skewed clocks
		v, err := r.AgreeMax(10 * (r.ID + 1))
		if err != nil {
			return err
		}
		mu.Lock()
		agreed[r.ID] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("agree over tcp: %v", err)
	}
	c := cfg.withDefaults()
	want := float64(n-1)*1e-3 + c.Latency.Seconds()*math.Ceil(math.Log2(n))
	for i := 0; i < n; i++ {
		if agreed[i] != 10*n {
			t.Fatalf("rank %d agreed on %d, want %d", i, agreed[i], 10*n)
		}
		if math.Abs(results[i].Time-want) > 1e-12 {
			t.Fatalf("rank %d left barrier at %v, want %v", i, results[i].Time, want)
		}
	}
}

func TestTCPWorldSizeMismatch(t *testing.T) {
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		tr, err := NewTCPTransport(TCPOptions{Rank: 0, Peers: addrs, Listener: ln0, DialTimeout: 3 * time.Second})
		if tr != nil {
			tr.Close()
		}
		errs[0] = err
	}()
	go func() {
		defer wg.Done()
		// Rank 1 believes the world has three ranks.
		tr, err := NewTCPTransport(TCPOptions{
			Rank: 1, Peers: []string{addrs[0], addrs[1], "127.0.0.1:1"},
			Listener: ln1, DialTimeout: 3 * time.Second,
		})
		if tr != nil {
			tr.Close()
		}
		errs[1] = err
	}()
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatalf("mismatched world sizes formed a mesh")
	}
}

func TestTCPOptionValidation(t *testing.T) {
	if _, err := NewTCPTransport(TCPOptions{Rank: 0, Peers: nil}); err == nil {
		t.Fatalf("empty peer list accepted")
	}
	if _, err := NewTCPTransport(TCPOptions{Rank: 5, Peers: []string{"a", "b"}}); err == nil {
		t.Fatalf("out-of-range rank accepted")
	}
	tr := startMesh(t, 2)[0]
	if _, err := New(Config{Ranks: 3, Transport: tr}); err == nil {
		t.Fatalf("Ranks/world mismatch accepted at bind")
	}
}

func TestTCPPeerFailureSurfaces(t *testing.T) {
	trs := startMesh(t, 2)
	cfg := Config{Ranks: 2, ParallelCompute: true}
	var recvErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := cfg
		c.Transport = trs[0]
		// Rank 0 exits immediately without sending.
		Run(c, func(r *Rank) error { return nil })
	}()
	go func() {
		defer wg.Done()
		c := cfg
		c.Transport = trs[1]
		_, recvErr = Run(c, func(r *Rank) error {
			_, err := r.Recv(0)
			return err
		})
	}()
	wg.Wait()
	if !errors.Is(recvErr, ErrPeerFailed) {
		t.Fatalf("recv from exited tcp peer: %v, want ErrPeerFailed", recvErr)
	}
}

// TestTCPConnResetFeedsDetector is the regression test for the
// connection-death classification: killing one side of a loopback pair
// mid-Recv must surface as a typed *RankFailedError whose cause wraps
// ErrConnReset — fed through the failure detector, not a generic timeout
// — and with fail-fast armed the blocked Recv must abort well before the
// receive deadline.
func TestTCPConnResetFeedsDetector(t *testing.T) {
	trs := startMesh(t, 2)
	// Rank 0 never runs a cluster: after a beat, its side of the pair is
	// torn down abruptly, as if the process died.
	go func() {
		time.Sleep(100 * time.Millisecond)
		if err := trs[0].DropConn(1); err != nil {
			t.Errorf("drop conn: %v", err)
		}
	}()
	cfg := Config{Ranks: 2, ParallelCompute: true, RecvTimeout: 30 * time.Second, Transport: trs[1]}
	start := time.Now()
	var recvErr error
	_, err := Run(cfg, func(r *Rank) error {
		r.SetFailFast(true)
		_, recvErr = r.Recv(0)
		return nil // swallow so Run reports cleanly; recvErr is asserted below
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(recvErr, ErrRankFailed) || !errors.Is(recvErr, ErrPeerFailed) {
		t.Fatalf("recv after conn reset: %v, want ErrRankFailed (and ErrPeerFailed compat)", recvErr)
	}
	var rf *RankFailedError
	if !errors.As(recvErr, &rf) {
		t.Fatalf("recv error %v is not a *RankFailedError", recvErr)
	}
	if rf.Rank != 0 {
		t.Fatalf("failed rank = %d, want 0", rf.Rank)
	}
	if !errors.Is(rf.Cause, ErrConnReset) {
		t.Fatalf("cause = %v, want ErrConnReset", rf.Cause)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cooperative abort took %v, should beat the 30s RecvTimeout by far", elapsed)
	}
}

// runSessions executes body once per rank over an arbitrary Transport
// set (job sessions in these tests), mirroring runMesh.
func runSessions(t *testing.T, cfg Config, sess []Transport, body func(*Rank) error) ([]*Result, error) {
	t.Helper()
	n := len(sess)
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Transport = sess[i]
			results[i], errs[i] = Run(c, body)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// TestTCPSessionsConcurrentJobs is the core multiplexing property: two
// jobs running *simultaneously* over one handshaked mesh must each
// produce exactly the results and virtual clocks of a dedicated
// single-job fabric — no cross-delivery of data, replay or barrier
// traffic between jobs sharing the connections.
func TestTCPSessionsConcurrentJobs(t *testing.T) {
	const n = 4
	cfg := Config{Ranks: n, ParallelCompute: true}

	// Reference: the same program on the in-process fabric.
	refVals := make([][]uint32, n)
	var mu sync.Mutex
	refRes, err := Run(cfg, func(r *Rank) error {
		var v []uint32
		err := ringBody(&v)(r)
		mu.Lock()
		refVals[r.ID] = v
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	trs := startMesh(t, n)
	const jobs = 2
	sess := make([][]Transport, jobs)
	for j := 0; j < jobs; j++ {
		sess[j] = make([]Transport, n)
		for i, tr := range trs {
			s, err := tr.Session(uint32(j + 1))
			if err != nil {
				t.Fatalf("rank %d job %d session: %v", i, j+1, err)
			}
			sess[j][i] = s
		}
	}

	vals := make([][][]uint32, jobs)
	res := make([][]*Result, jobs)
	jobErrs := make([]error, jobs)
	var jwg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		jwg.Add(1)
		go func(j int) {
			defer jwg.Done()
			vals[j] = make([][]uint32, n)
			res[j], jobErrs[j] = runSessions(t, cfg, sess[j], func(r *Rank) error {
				var v []uint32
				err := ringBody(&v)(r)
				mu.Lock()
				vals[j][r.ID] = v
				mu.Unlock()
				return err
			})
		}(j)
	}
	jwg.Wait()
	for j := 0; j < jobs; j++ {
		if jobErrs[j] != nil {
			t.Fatalf("job %d: %v", j+1, jobErrs[j])
		}
		for i := 0; i < n; i++ {
			for k := range refVals[i] {
				if vals[j][i][k] != refVals[i][k] {
					t.Fatalf("job %d rank %d elem %d: %d, want %d", j+1, i, k, vals[j][i][k], refVals[i][k])
				}
			}
			if res[j][i].Time != refRes.RankTimes[i] {
				t.Fatalf("job %d rank %d virtual time %v, want %v", j+1, i, res[j][i].Time, refRes.RankTimes[i])
			}
		}
	}
}

// Job IDs are a monotonic namespace: 0 is reserved, duplicates and
// reuse are rejected, and a closed transport hands out nothing.
func TestTCPSessionIDRules(t *testing.T) {
	trs := startMesh(t, 2)
	tr := trs[0]
	if _, err := tr.Session(0); err == nil {
		t.Fatal("job 0 (the built-in session) was claimable")
	}
	s5, err := tr.Session(5)
	if err != nil {
		t.Fatalf("job 5: %v", err)
	}
	if _, err := tr.Session(5); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
	if _, err := tr.Session(3); err == nil {
		t.Fatal("non-monotonic job ID accepted")
	}
	s5.(*tcpSession).end()
	if _, err := tr.Session(5); err == nil {
		t.Fatal("job ID reused after its session ended")
	}
	tr.Close()
	if _, err := tr.Session(9); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("session on closed transport: %v, want ErrTransportClosed", err)
	}
}

// Ending a session on one side must unblock the peer's receivers for
// that job — and only that job: the bye broadcast closes the job's
// mailboxes remotely while other jobs keep flowing.
func TestTCPSessionEndUnblocksPeerJob(t *testing.T) {
	trs := startMesh(t, 2)
	sa := make([]Transport, 2)
	sb := make([]Transport, 2)
	for i, tr := range trs {
		a, err := tr.Session(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tr.Session(2)
		if err != nil {
			t.Fatal(err)
		}
		sa[i], sb[i] = a, b
	}
	cfg := Config{Ranks: 2, ParallelCompute: true, RecvTimeout: 30 * time.Second}
	var wg sync.WaitGroup
	var recvErr error
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := cfg
		c.Transport = sa[1]
		_, recvErr = Run(c, func(r *Rank) error {
			_, err := r.Recv(0)
			return err
		})
	}()
	// Job 1 on rank 0 ends without sending; its bye must abort the
	// peer's blocked Recv long before the 30s timeout.
	time.Sleep(50 * time.Millisecond)
	c := cfg
	c.Transport = sa[0]
	Run(c, func(r *Rank) error { return nil })
	wg.Wait()
	if !errors.Is(recvErr, ErrPeerFailed) {
		t.Fatalf("recv on ended job: %v, want ErrPeerFailed", recvErr)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("job end took %v to unblock the peer", elapsed)
	}
	// Job 2 is untouched: a normal exchange still works on the same mesh.
	_, err := runSessions(t, Config{Ranks: 2, ParallelCompute: true}, sb, func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, []byte("job 2 lives"))
		}
		got, err := r.Recv(0)
		if err != nil {
			return err
		}
		if string(got) != "job 2 lives" {
			return fmt.Errorf("payload %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("sibling job after bye: %v", err)
	}
}

// SendJob/SetJobHandler carry daemon control traffic over the mesh
// outside any session.
func TestTCPJobFrames(t *testing.T) {
	trs := startMesh(t, 2)
	type jf struct {
		from    int
		job     uint32
		kind    byte
		payload string
	}
	got := make(chan jf, 1)
	trs[1].SetJobHandler(func(from int, job uint32, kind byte, payload []byte) {
		got <- jf{from, job, kind, string(payload)}
	})
	if err := trs[0].SendJob(1, 7, 3, []byte("submit")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if f.from != 0 || f.job != 7 || f.kind != 3 || f.payload != "submit" {
			t.Fatalf("job frame %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job frame never delivered")
	}
	if err := trs[0].SendJob(1, 7, jobByeKind, nil); err == nil {
		t.Fatal("reserved job-frame kind accepted")
	}
}

// TestTCPFormationUnreachablePeer is the regression test for the
// mesh-formation resource leak: a dial that can never succeed must fail
// promptly at the deadline AND leave no live listener behind — before
// the fix the listener (and any already-accepted conns) stayed open on
// the error path.
func TestTCPFormationUnreachablePeer(t *testing.T) {
	// A port that refuses connections: listen, grab the address, close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tr, err := NewTCPTransport(TCPOptions{
		Rank: 1, Peers: []string{deadAddr, ln.Addr().String()},
		Listener: ln, DialTimeout: 500 * time.Millisecond,
	})
	if err == nil {
		tr.Close()
		t.Fatal("mesh with an unreachable peer formed")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("unreachable-peer failure took %v", elapsed)
	}
	// The listener must be closed on the failure path.
	if _, aerr := ln.Accept(); !errors.Is(aerr, net.ErrClosed) {
		t.Fatalf("listener still live after failed formation: Accept returned %v", aerr)
	}
}

// TestTCPFormationEarlyAbort: a failure on the accept side (garbage
// handshake) must abort the dial side immediately instead of letting it
// retry an absent peer until the full deadline.
func TestTCPFormationEarlyAbort(t *testing.T) {
	// Rank 0 never exists: its port refuses connections.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A client that speaks garbage instead of the handshake.
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("not-the-protocol-you-expect-"))
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	tr, err := NewTCPTransport(TCPOptions{
		Rank: 1, Peers: []string{deadAddr, ln.Addr().String(), "127.0.0.1:1"},
		Listener: ln, DialTimeout: 30 * time.Second,
	})
	if err == nil {
		tr.Close()
		t.Fatal("mesh formed against a garbage handshake")
	}
	// The handshake rejection must cascade: well under the 30s dial
	// deadline (the handshake itself has a 5s bound).
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("accept-side failure took %v to abort the dial side", elapsed)
	}
}

// TestTCPFormationClosesAcceptedConns: when formation fails, peers that
// DID complete their handshake must be disconnected, not leaked.
func TestTCPFormationClosesAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 of a 3-rank world: accepts ranks 1 and 2. Only "rank 2"
	// shows up (this test), so formation times out.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr, err := NewTCPTransport(TCPOptions{
			Rank: 0, Peers: []string{ln.Addr().String(), "127.0.0.1:1", "127.0.0.1:1"},
			Listener: ln, DialTimeout: 700 * time.Millisecond,
		})
		if err == nil {
			tr.Close()
			t.Error("2-of-3 mesh formed")
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [tcpHelloLen]byte
	copy(hello[:4], tcpMagic)
	hello[4] = tcpVersion
	binary.LittleEndian.PutUint32(hello[5:9], 2)  // rank 2
	binary.LittleEndian.PutUint32(hello[9:13], 3) // world 3
	binary.LittleEndian.PutUint64(hello[13:21], uint64(time.Now().UnixNano()))
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	// Read rank 0's hello back, then wait: the failed formation must
	// close our accepted connection (EOF), not leave it dangling.
	var peerHello [tcpHelloLen]byte
	if _, err := io.ReadFull(conn, peerHello[:]); err != nil {
		t.Fatalf("handshake reply: %v", err)
	}
	<-done
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(peerHello[:1]); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("accepted conn still open after failed formation (read err %v)", err)
	}
}
