package core

import (
	"fmt"
	"math"
	"testing"

	"hzccl/internal/cluster"
)

func TestBroadcastBothBackends(t *testing.T) {
	for _, nRanks := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < nRanks; root += 2 {
			src := rankField(root, 1000)
			outs := make([][]float32, nRanks)
			c := New(Options{ErrorBound: testEB})
			runCluster(t, nRanks, func(r *cluster.Rank) error {
				out, err := c.BroadcastPlain(r, src, root)
				outs[r.ID] = out
				return err
			})
			for rk, out := range outs {
				for i := range out {
					if out[i] != src[i] {
						t.Fatalf("plain bcast n=%d root=%d rank %d differs at %d", nRanks, root, rk, i)
					}
				}
			}
			runCluster(t, nRanks, func(r *cluster.Rank) error {
				out, err := c.BroadcastCompressed(r, src, root)
				outs[r.ID] = out
				return err
			})
			for rk, out := range outs {
				if len(out) != len(src) {
					t.Fatalf("compressed bcast rank %d: %d elems", rk, len(out))
				}
				for i := range out {
					if d := math.Abs(float64(out[i]) - float64(src[i])); d > testEB+1e-6 {
						t.Fatalf("compressed bcast n=%d root=%d rank %d err %g", nRanks, root, rk, d)
					}
				}
			}
		}
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	c := New(Options{ErrorBound: testEB})
	err := func() error {
		_, err := cluster.Run(cluster.Config{Ranks: 2}, func(r *cluster.Rank) error {
			_, err := c.BroadcastPlain(r, []float32{1}, 5)
			return err
		})
		return err
	}()
	if err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestGatherBothBackends(t *testing.T) {
	for _, nRanks := range []int{1, 2, 4, 7} {
		root := nRanks / 2
		c := New(Options{ErrorBound: testEB})
		var rootOut [][]float32
		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.GatherPlain(r, rankField(r.ID, 500), root)
			if r.ID == root {
				rootOut = out
			} else if out != nil {
				return fmt.Errorf("non-root rank %d received gather output", r.ID)
			}
			return err
		})
		if len(rootOut) != nRanks {
			t.Fatalf("root gathered %d payloads", len(rootOut))
		}
		for origin, vals := range rootOut {
			want := rankField(origin, 500)
			for i := range vals {
				if vals[i] != want[i] {
					t.Fatalf("plain gather n=%d origin %d differs", nRanks, origin)
				}
			}
		}
		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.GatherCompressed(r, rankField(r.ID, 500), root)
			if r.ID == root {
				rootOut = out
			}
			return err
		})
		for origin, vals := range rootOut {
			want := rankField(origin, 500)
			for i := range vals {
				if d := math.Abs(float64(vals[i]) - float64(want[i])); d > testEB+1e-6 {
					t.Fatalf("compressed gather origin %d err %g", origin, d)
				}
			}
		}
	}
}

func TestAllgatherBothBackends(t *testing.T) {
	const nRanks = 6
	c := New(Options{ErrorBound: testEB})
	outs := make([][][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, err := c.AllgatherPlain(r, rankField(r.ID, 700))
		outs[r.ID] = out
		return err
	})
	for rk, all := range outs {
		for origin, vals := range all {
			want := rankField(origin, 700)
			for i := range vals {
				if vals[i] != want[i] {
					t.Fatalf("plain allgather rank %d origin %d differs", rk, origin)
				}
			}
		}
	}
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, err := c.AllgatherCompressed(r, rankField(r.ID, 700))
		outs[r.ID] = out
		return err
	})
	for rk, all := range outs {
		for origin, vals := range all {
			want := rankField(origin, 700)
			tol := testEB + 1e-6
			if origin == rk {
				tol = 0 // own block passes through uncompressed
			}
			for i := range vals {
				if d := math.Abs(float64(vals[i]) - float64(want[i])); d > tol {
					t.Fatalf("compressed allgather rank %d origin %d err %g", rk, origin, d)
				}
			}
		}
	}
}

func TestReducePlainAndHZ(t *testing.T) {
	for _, nRanks := range []int{1, 2, 5, 8} {
		root := nRanks - 1
		n := 1200
		exact := exactSum(nRanks, n)
		c := New(Options{ErrorBound: testEB})

		var got []float32
		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.ReducePlain(r, rankField(r.ID, n), root)
			if r.ID == root {
				got = out
			} else if out != nil {
				return fmt.Errorf("non-root received reduce output")
			}
			return err
		})
		for i := range got {
			if d := math.Abs(float64(got[i]) - exact[i]); d > 1e-3 {
				t.Fatalf("plain reduce n=%d err %g at %d", nRanks, d, i)
			}
		}

		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, _, err := c.ReduceHZ(r, rankField(r.ID, n), root)
			if r.ID == root {
				got = out
			}
			return err
		})
		bound := float64(nRanks)*testEB + 1e-4
		for i := range got {
			if d := math.Abs(float64(got[i]) - exact[i]); d > bound {
				t.Fatalf("hz reduce n=%d err %g at %d (bound %g)", nRanks, d, i, bound)
			}
		}
	}
}

// The homomorphic rooted reduce must match the plain reduce within the
// accumulated quantization budget and charge HPR, never CPT.
func TestReduceHZBreakdown(t *testing.T) {
	const nRanks = 8
	c := New(Options{ErrorBound: testEB})
	res := runCluster(t, nRanks, func(r *cluster.Rank) error {
		_, _, err := c.ReduceHZ(r, rankField(r.ID, 4096), 0)
		return err
	})
	if res.Breakdown[cluster.CatCPT] != 0 {
		t.Errorf("ReduceHZ charged CPT: %v", res.Breakdown)
	}
	for _, cat := range []cluster.Category{cluster.CatCPR, cluster.CatHPR, cluster.CatDPR} {
		if res.Breakdown[cat] == 0 {
			t.Errorf("ReduceHZ missing %s", cat)
		}
	}
}

func TestAlltoallBothBackends(t *testing.T) {
	for _, nRanks := range []int{1, 2, 4, 6} {
		n := 960
		c := New(Options{ErrorBound: testEB})
		outs := make([][][]float32, nRanks)
		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.AlltoallPlain(r, rankField(r.ID, n))
			outs[r.ID] = out
			return err
		})
		for rk, blocks := range outs {
			for src, vals := range blocks {
				want := rankField(src, n)
				s, e := BlockBounds(n, nRanks, rk)
				if len(vals) != e-s {
					t.Fatalf("alltoall rank %d from %d: %d elems want %d", rk, src, len(vals), e-s)
				}
				for i := range vals {
					if vals[i] != want[s+i] {
						t.Fatalf("plain alltoall rank %d from %d differs at %d", rk, src, i)
					}
				}
			}
		}
		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.AlltoallCompressed(r, rankField(r.ID, n))
			outs[r.ID] = out
			return err
		})
		for rk, blocks := range outs {
			for src, vals := range blocks {
				want := rankField(src, n)
				s, _ := BlockBounds(n, nRanks, rk)
				tol := testEB + 1e-6
				if src == rk {
					tol = 0
				}
				for i := range vals {
					if d := math.Abs(float64(vals[i]) - float64(want[s+i])); d > tol {
						t.Fatalf("compressed alltoall rank %d from %d err %g", rk, src, d)
					}
				}
			}
		}
	}
}

// On a slow network the compressed broadcast must beat the plain one in
// virtual time (compressible payload, modeled rates for determinism).
func TestCompressedBroadcastFaster(t *testing.T) {
	const nRanks, n = 8, 1 << 16
	rates := &Rates{CPR: 1e9, DPR: 2e9, CPT: 8e9, HPR: 8e9}
	c := New(Options{ErrorBound: testEB, Rates: rates})
	cfg := cluster.Config{Ranks: nRanks, BandwidthBytes: 0.2e9}
	src := smoothRankField(0, n) // highly compressible

	run := func(f func(r *cluster.Rank) error) float64 {
		res, err := cluster.Run(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	tPlain := run(func(r *cluster.Rank) error {
		_, err := c.BroadcastPlain(r, src, 0)
		return err
	})
	tComp := run(func(r *cluster.Rank) error {
		_, err := c.BroadcastCompressed(r, src, 0)
		return err
	})
	if tComp >= tPlain {
		t.Fatalf("compressed broadcast (%g) not faster than plain (%g)", tComp, tPlain)
	}
}

func TestSegmentedMatchesUnsegmented(t *testing.T) {
	const nRanks, n = 6, 4096
	exact := exactSum(nRanks, n)
	plain := New(Options{ErrorBound: testEB})
	seg := New(Options{ErrorBound: testEB, Segments: 4})

	blocks := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		b, err := seg.ReduceScatterCCollSegmented(r, rankField(r.ID, n))
		blocks[r.ID] = b
		return err
	})
	for rk, block := range blocks {
		k := BlockOwned(rk, nRanks)
		s, _ := BlockBounds(n, nRanks, k)
		for i := range block {
			if d := math.Abs(float64(block[i]) - exact[s+i]); d > 2*float64(nRanks)*testEB+1e-4 {
				t.Fatalf("segmented RS rank %d elem %d err %g", rk, i, d)
			}
		}
	}

	outs := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, err := seg.AllreduceCCollSegmented(r, rankField(r.ID, n))
		outs[r.ID] = out
		return err
	})
	for _, out := range outs {
		checkAllreduce(t, out, exact, nRanks, "segmented allreduce")
	}

	// Segments <= 1 must fall back to the unsegmented implementation and
	// produce identical values.
	one := New(Options{ErrorBound: testEB, Segments: 1})
	a := make([][]float32, nRanks)
	b := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, err := one.AllreduceCCollSegmented(r, rankField(r.ID, n))
		a[r.ID] = out
		return err
	})
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, err := plain.AllreduceCColl(r, rankField(r.ID, n))
		b[r.ID] = out
		return err
	})
	for rk := range a {
		for i := range a[rk] {
			if a[rk][i] != b[rk][i] {
				t.Fatalf("Segments=1 fallback differs at rank %d elem %d", rk, i)
			}
		}
	}
}

// With modeled rates, segmentation must reduce the virtual completion
// time of the C-Coll allreduce when transfers are substantial relative to
// compute: compression of segment k+1 overlaps the wire time of segment
// k. Noisy data (modest ratio) keeps the wire share high — the regime
// segmentation exists for.
func TestSegmentationOverlapsPipeline(t *testing.T) {
	const nRanks, n = 8, 1 << 17
	rates := &Rates{CPR: 1e9, DPR: 2e9, CPT: 8e9, HPR: 8e9}
	cfg := cluster.Config{Ranks: nRanks, BandwidthBytes: 0.3e9}
	run := func(segments int) float64 {
		c := New(Options{ErrorBound: testEB, Rates: rates, Segments: segments})
		res, err := cluster.Run(cfg, func(r *cluster.Rank) error {
			_, err := c.AllreduceCCollSegmented(r, rankField(r.ID, n))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1 := run(1)
	t8 := run(8)
	if t8 >= t1 {
		t.Fatalf("segmentation did not overlap: S=8 %.6fs vs S=1 %.6fs", t8, t1)
	}
}

func TestSegRanges(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{100, 4}, {7, 3}, {5, 10}, {0, 4}, {1, 1}} {
		ranges := segRanges(tc.n, tc.s)
		prev := 0
		for _, rg := range ranges {
			if rg[0] != prev {
				t.Fatalf("n=%d s=%d: gap at %v", tc.n, tc.s, rg)
			}
			prev = rg[1]
		}
		if prev != tc.n {
			t.Fatalf("n=%d s=%d: ranges end at %d", tc.n, tc.s, prev)
		}
	}
}
