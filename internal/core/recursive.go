package core

import (
	"fmt"
	"math/bits"

	"hzccl/internal/cluster"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// Rabenseifner's allreduce: recursive-halving reduce-scatter followed by
// recursive-doubling allgather — log₂(N) rounds instead of the ring's
// N−1, the algorithm MPI implementations prefer once latency matters.
// Provided in both the plain and the homomorphic flavour; the latter
// extends the paper's co-design to a second collective algorithm family
// (compressed blocks are exchanged and reduced homomorphically at every
// halving step, with decompression deferred to the very end).
//
// Non-power-of-two rank counts use the standard fold: the first 2r ranks
// pair up so 2^m ranks remain active; folded ranks receive the final
// result afterwards.

// activeRanks computes the power-of-two active set: p2 active ranks, and
// this rank's id in the active space (-1 if folded away).
func activeRanks(rank, n int) (p2, newrank int) {
	p2 = 1 << uint(bits.Len(uint(n))-1)
	if p2 > n {
		p2 >>= 1
	}
	r := n - p2
	switch {
	case rank < 2*r && rank%2 == 0:
		return p2, -1
	case rank < 2*r:
		return p2, rank / 2
	default:
		return p2, rank - r
	}
}

// oldRank inverts activeRanks for message addressing.
func oldRank(newrank, n, p2 int) int {
	r := n - p2
	if newrank < r {
		return 2*newrank + 1
	}
	return newrank + r
}

// unframeBlobsN unframes a payload and checks the blob count.
func unframeBlobsN(msg []byte, want int) ([][]byte, error) {
	out, err := unframeBlobs(msg)
	if err != nil {
		return nil, err
	}
	if len(out) != want {
		return nil, fmt.Errorf("core: got %d framed blobs, want %d", len(out), want)
	}
	return out, nil
}

// AllreducePlainRecursive is the uncompressed Rabenseifner allreduce.
func (c Collectives) AllreducePlainRecursive(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.allreducePlainRabG(world(r), data)
}

func (c Collectives) allreducePlainRabG(g comm, data []float32) ([]float32, error) {
	n := g.n()
	r := g.r
	acc := make([]float32, len(data))
	copy(acc, data)
	if n == 1 {
		return acc, nil
	}
	p2, newrank := activeRanks(g.id, n)
	rem := n - p2

	// Fold phase: even ranks of the first 2r send their data to the odd
	// partner and wait for the final result.
	if g.id < 2*rem {
		if g.id%2 == 0 {
			if err := g.rawSend(g.id+1, floatbytes.Bytes(acc)); err != nil {
				return nil, err
			}
			got, err := g.rawRecv(g.id + 1)
			if err != nil {
				return nil, err
			}
			return floatbytes.Floats(got), nil
		}
		got, err := g.rawRecv(g.id - 1)
		if err != nil {
			return nil, err
		}
		vals := floatbytes.Floats(got)
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, vals) })
	}

	// Recursive halving over p2 blocks.
	lo, hi := 0, p2
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		partner := oldRank(newrank^dist, n, p2)
		mid := (lo + hi) / 2
		var keepLo, keepHi, sendLo, sendHi int
		if newrank&dist == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		ss, _ := BlockBounds(len(data), p2, sendLo)
		_, se := BlockBounds(len(data), p2, sendHi-1)
		got, err := g.sendRecv(partner, floatbytes.Bytes(acc[ss:se]), partner, false)
		if err != nil {
			return nil, err
		}
		ks, _ := BlockBounds(len(data), p2, keepLo)
		_, ke := BlockBounds(len(data), p2, keepHi-1)
		vals := floatbytes.Floats(got)
		if len(vals) != ke-ks {
			return nil, fmt.Errorf("core: recursive halving size mismatch at rank %d", r.ID)
		}
		c.work(r, cluster.CatCPT, 4*(ke-ks), func() { addInto(acc[ks:ke], vals) })
		lo, hi = keepLo, keepHi
	}

	// Recursive doubling allgather.
	for dist := 1; dist < p2; dist *= 2 {
		partner := oldRank(newrank^dist, n, p2)
		ss, _ := BlockBounds(len(data), p2, lo)
		_, se := BlockBounds(len(data), p2, hi-1)
		got, err := g.sendRecv(partner, floatbytes.Bytes(acc[ss:se]), partner, false)
		if err != nil {
			return nil, err
		}
		// The partner owns the mirrored segment at this distance.
		var plo, phi int
		if newrank&dist == 0 {
			plo, phi = lo+(hi-lo), hi+(hi-lo)
		} else {
			plo, phi = lo-(hi-lo), lo
		}
		ps, _ := BlockBounds(len(data), p2, plo)
		_, pe := BlockBounds(len(data), p2, phi-1)
		vals := floatbytes.Floats(got)
		if len(vals) != pe-ps {
			return nil, fmt.Errorf("core: recursive doubling size mismatch at rank %d", r.ID)
		}
		copy(acc[ps:pe], vals)
		if plo < lo {
			lo = plo
		} else {
			hi = phi
		}
	}

	// Unfold: send the full result back to the folded partner.
	if g.id < 2*rem && g.id%2 == 1 {
		if err := g.rawSend(g.id-1, floatbytes.Bytes(acc)); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// frameBlobs packs a list of byte slices into one message.
func frameBlobs(blobs [][]byte) []byte {
	size := 4
	for _, b := range blobs {
		size += 4 + len(b)
	}
	out := make([]byte, 0, size)
	out = appendU32(out, uint32(len(blobs)))
	for _, b := range blobs {
		out = appendU32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

func unframeBlobs(msg []byte) ([][]byte, error) {
	if len(msg) < 4 {
		return nil, fmt.Errorf("core: short blob frame")
	}
	count := int(readU32(msg))
	if count < 0 || count > 1<<24 {
		return nil, fmt.Errorf("core: bad blob frame count %d", count)
	}
	out := make([][]byte, 0, count)
	o := 4
	for k := 0; k < count; k++ {
		if len(msg) < o+4 {
			return nil, fmt.Errorf("core: truncated blob frame")
		}
		l := int(readU32(msg[o:]))
		o += 4
		if len(msg) < o+l {
			return nil, fmt.Errorf("core: truncated blob payload")
		}
		out = append(out, msg[o:o+l])
		o += l
	}
	return out, nil
}

// AllreduceHZRecursive is the homomorphic Rabenseifner allreduce: each
// rank compresses its p2 blocks once, every halving step exchanges and
// homomorphically reduces compressed block sets, the doubling stage moves
// compressed blocks, and each rank decompresses the p2 blocks at the end.
func (c Collectives) AllreduceHZRecursive(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	return c.allreduceHZRabG(world(r), data)
}

func (c Collectives) allreduceHZRabG(g comm, data []float32) ([]float32, *hzdyn.Stats, error) {
	n := g.n()
	r := g.r
	opt := c.Opt
	stats := &hzdyn.Stats{}
	if n == 1 {
		out := make([]float32, len(data))
		copy(out, data)
		return out, stats, nil
	}
	p2, newrank := activeRanks(g.id, n)
	rem := n - p2

	// Compress all p2 blocks once.
	cblocks := make([][]byte, p2)
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(data), func() {
		for k := 0; k < p2 && cerr == nil; k++ {
			s, e := BlockBounds(len(data), p2, k)
			cblocks[k], cerr = fzlight.Compress(data[s:e], opt.params())
		}
	})
	if cerr != nil {
		return nil, nil, cerr
	}

	homAdd := func(k int, blob []byte) error {
		var herr error
		s, e := BlockBounds(len(data), p2, k)
		c.work(r, cluster.CatHPR, 4*(e-s), func() {
			var st hzdyn.Stats
			cblocks[k], st, herr = hzdyn.Add(cblocks[k], blob)
			stats.Accumulate(st)
		})
		return herr
	}

	// Fold phase on compressed blocks.
	if g.id < 2*rem {
		if g.id%2 == 0 {
			if err := g.rawSend(g.id+1, frameBlobs(cblocks)); err != nil {
				return nil, nil, err
			}
			got, err := g.rawRecv(g.id + 1)
			if err != nil {
				return nil, nil, err
			}
			return floatbytes.Floats(got), stats, nil
		}
		got, err := g.rawRecv(g.id - 1)
		if err != nil {
			return nil, nil, err
		}
		blobs, err := unframeBlobs(got)
		if err != nil {
			return nil, nil, err
		}
		if len(blobs) != p2 {
			return nil, nil, fmt.Errorf("core: fold frame has %d blocks, want %d", len(blobs), p2)
		}
		for k, blob := range blobs {
			if err := homAdd(k, blob); err != nil {
				return nil, nil, err
			}
		}
	}

	// Recursive halving on compressed block sets.
	lo, hi := 0, p2
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		partner := oldRank(newrank^dist, n, p2)
		mid := (lo + hi) / 2
		var keepLo, keepHi, sendLo, sendHi int
		if newrank&dist == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		got, err := g.sendRecv(partner, frameBlobs(cblocks[sendLo:sendHi]), partner, true)
		if err != nil {
			return nil, nil, err
		}
		blobs, err := unframeBlobs(got)
		if err != nil {
			return nil, nil, err
		}
		if len(blobs) != keepHi-keepLo {
			return nil, nil, fmt.Errorf("core: halving frame has %d blocks, want %d", len(blobs), keepHi-keepLo)
		}
		for i, blob := range blobs {
			if err := homAdd(keepLo+i, blob); err != nil {
				return nil, nil, err
			}
		}
		lo, hi = keepLo, keepHi
	}

	// Recursive doubling allgather of compressed blocks.
	for dist := 1; dist < p2; dist *= 2 {
		partner := oldRank(newrank^dist, n, p2)
		got, err := g.sendRecv(partner, frameBlobs(cblocks[lo:hi]), partner, true)
		if err != nil {
			return nil, nil, err
		}
		blobs, err := unframeBlobs(got)
		if err != nil {
			return nil, nil, err
		}
		var plo int
		if newrank&dist == 0 {
			plo = lo + (hi - lo)
		} else {
			plo = lo - (hi - lo)
		}
		if len(blobs) != hi-lo {
			return nil, nil, fmt.Errorf("core: doubling frame has %d blocks, want %d", len(blobs), hi-lo)
		}
		for i, blob := range blobs {
			cblocks[plo+i] = blob
		}
		if plo < lo {
			lo = plo
		} else {
			hi = plo + (hi - lo)
		}
	}

	// Decompress everything.
	out := make([]float32, len(data))
	for k := 0; k < p2; k++ {
		s, e := BlockBounds(len(data), p2, k)
		var derr error
		c.work(r, cluster.CatDPR, 4*(e-s), func() {
			derr = fzlight.DecompressInto(cblocks[k], out[s:e])
		})
		if derr != nil {
			return nil, nil, derr
		}
	}

	// Unfold: ship the raw result to the folded partner.
	if g.id < 2*rem && g.id%2 == 1 {
		if err := g.rawSend(g.id-1, floatbytes.Bytes(out)); err != nil {
			return nil, nil, err
		}
	}
	return out, stats, nil
}

// AllreduceCCollRecursive is the C-Coll (DOC) Rabenseifner allreduce: the
// same recursive-halving/doubling schedule as the plain variant, with
// every exchanged segment compressed before the send (CPR) and
// decompressed after the receive (DPR). Unlike the homomorphic variant
// the reduction happens in the raw domain, so each halving round pays the
// full decompress-operate(-recompress-next-round) cost on a halving
// payload — completing the three-backend coverage of this algorithm
// family for the DegradePolicy ladder.
func (c Collectives) AllreduceCCollRecursive(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.allreduceCCollRabG(world(r), data)
}

func (c Collectives) allreduceCCollRabG(g comm, data []float32) ([]float32, error) {
	n := g.n()
	r := g.r
	opt := c.Opt
	acc := make([]float32, len(data))
	copy(acc, data)
	if n == 1 {
		return acc, nil
	}
	p2, newrank := activeRanks(g.id, n)
	rem := n - p2

	compress := func(vals []float32) ([]byte, error) {
		var out []byte
		var cerr error
		c.work(r, cluster.CatCPR, 4*len(vals), func() {
			out, cerr = fzlight.Compress(vals, opt.params())
		})
		return out, cerr
	}
	decompressInto := func(blob []byte, dst []float32) error {
		var derr error
		c.work(r, cluster.CatDPR, 4*len(dst), func() {
			derr = fzlight.DecompressInto(blob, dst)
		})
		return derr
	}

	// Fold phase: compressed full-vector hand-off to the odd partner.
	if g.id < 2*rem {
		if g.id%2 == 0 {
			comp, err := compress(acc)
			if err != nil {
				return nil, err
			}
			if err := g.rawSend(g.id+1, comp); err != nil {
				return nil, err
			}
			got, err := g.rawRecv(g.id + 1)
			if err != nil {
				return nil, err
			}
			// The final result arrives as the canonical framed block
			// payloads every active rank decoded — decode the same bytes.
			final, err := unframeBlobsN(got, p2)
			if err != nil {
				return nil, err
			}
			out := make([]float32, len(data))
			for k, blob := range final {
				s, e := BlockBounds(len(data), p2, k)
				if err := decompressInto(blob, out[s:e]); err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		got, err := g.rawRecv(g.id - 1)
		if err != nil {
			return nil, err
		}
		vals := make([]float32, len(data))
		if err := decompressInto(got, vals); err != nil {
			return nil, err
		}
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, vals) })
	}

	// Recursive halving over p2 blocks, DOC per round.
	lo, hi := 0, p2
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		partner := oldRank(newrank^dist, n, p2)
		mid := (lo + hi) / 2
		var keepLo, keepHi, sendLo, sendHi int
		if newrank&dist == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		ss, _ := BlockBounds(len(data), p2, sendLo)
		_, se := BlockBounds(len(data), p2, sendHi-1)
		comp, err := compress(acc[ss:se])
		if err != nil {
			return nil, err
		}
		got, err := g.sendRecv(partner, comp, partner, true)
		if err != nil {
			return nil, err
		}
		ks, _ := BlockBounds(len(data), p2, keepLo)
		_, ke := BlockBounds(len(data), p2, keepHi-1)
		vals := make([]float32, ke-ks)
		if err := decompressInto(got, vals); err != nil {
			return nil, err
		}
		c.work(r, cluster.CatCPT, 4*(ke-ks), func() { addInto(acc[ks:ke], vals) })
		lo, hi = keepLo, keepHi
	}

	// Recursive-doubling allgather of canonical compressed blocks: each
	// p2-block is compressed exactly once by the rank whose halving ended
	// on it, and its bytes then travel verbatim (framed, never
	// re-compressed). Every rank — the block's reducer included — decodes
	// the same payload, so the allreduce replicates bitwise across ranks
	// despite quantization, and the DOC allgather pays one CPR plus p2
	// DPRs instead of a recompression per round.
	blobs := make([][]byte, p2)
	{
		s, e := BlockBounds(len(data), p2, lo)
		comp, err := compress(acc[s:e])
		if err != nil {
			return nil, err
		}
		blobs[lo] = comp
	}
	for dist := 1; dist < p2; dist *= 2 {
		partner := oldRank(newrank^dist, n, p2)
		got, err := g.sendRecv(partner, frameBlobs(blobs[lo:hi]), partner, true)
		if err != nil {
			return nil, err
		}
		var plo, phi int
		if newrank&dist == 0 {
			plo, phi = hi, hi+(hi-lo)
		} else {
			plo, phi = lo-(hi-lo), lo
		}
		part, err := unframeBlobsN(got, phi-plo)
		if err != nil {
			return nil, err
		}
		copy(blobs[plo:phi], part)
		if plo < lo {
			lo = plo
		} else {
			hi = phi
		}
	}

	// Decode every block from its canonical bytes (own included).
	out := make([]float32, len(data))
	for k, blob := range blobs {
		s, e := BlockBounds(len(data), p2, k)
		if err := decompressInto(blob, out[s:e]); err != nil {
			return nil, err
		}
	}

	// Unfold: ship the canonical framed blocks to the folded partner.
	if g.id < 2*rem && g.id%2 == 1 {
		if err := g.rawSend(g.id-1, frameBlobs(blobs)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
