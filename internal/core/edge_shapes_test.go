// Edge-shape conformance tests for the core collectives, in an external
// test package so they can drive internal/conformance (which itself
// imports core).
package core_test

import (
	"math"
	"testing"

	"hzccl/internal/cluster"
	"hzccl/internal/conformance"
	"hzccl/internal/core"
)

func varyingGen(n int) func(rank int) []float32 {
	return func(rank int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = float32(math.Sin(float64(rank+1) * float64(i+1) / 17))
		}
		return out
	}
}

// constantGen produces per-rank constant buffers: every fzlight chunk has
// Range=0, driving the constant-block fast paths of the compressor and
// the homomorphic add.
func constantGen(n int) func(rank int) []float32 {
	return func(rank int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = 0.5 * float32(rank+1)
		}
		return out
	}
}

type edgeShape struct {
	name string
	n    int
	gen  func(n int) func(rank int) []float32
}

func edgeShapes() []edgeShape {
	return []edgeShape{
		{"zero-length", 0, varyingGen},
		{"one-element", 1, varyingGen}, // shorter than any world > 1
		{"shorter-than-world", 3, varyingGen},
		{"non-divisible", 37, varyingGen}, // 37 is prime: never divisible by ranks > 1
		{"non-divisible-large", 101, varyingGen},
		{"all-constant", 96, constantGen},
	}
}

// TestCollectiveEdgeShapes runs every flavor of Reduce_scatter and
// Allreduce through the conformance oracle at the shapes ring collectives
// historically get wrong: single-rank "rings", odd rank counts, buffer
// lengths not divisible by the rank count, zero-length and all-constant
// buffers (the constant-block fast paths).
func TestCollectiveEdgeShapes(t *testing.T) {
	oracle := conformance.CollectiveOracle{Opt: core.Options{ErrorBound: 1e-3}}

	for _, ranks := range []int{1, 2, 3, 5, 7} {
		for _, sh := range edgeShapes() {
			gen := sh.gen(sh.n)
			t.Run(sh.name, func(t *testing.T) {
				rep, err := oracle.CheckReduceScatter(ranks, gen)
				if err != nil {
					t.Fatalf("reduce_scatter ranks=%d n=%d: %v", ranks, sh.n, err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("reduce_scatter ranks=%d n=%d: %v", ranks, sh.n, err)
				}
				rep, err = oracle.CheckAllreduce(ranks, gen)
				if err != nil {
					t.Fatalf("allreduce ranks=%d n=%d: %v", ranks, sh.n, err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("allreduce ranks=%d n=%d: %v", ranks, sh.n, err)
				}
			})
		}
	}
}

// edgeTopologies returns the node groupings worth stressing at a given
// world size: the implicit flat grouping, an explicit single node, a
// degenerate one-rank leader node, and (when the world allows) a
// non-uniform three-node split.
func edgeTopologies(ranks int) map[string]*cluster.Topology {
	tops := map[string]*cluster.Topology{
		"flat":        nil,
		"single-node": {NodeSizes: []int{ranks}},
	}
	if ranks > 1 {
		tops["leader-only-node"] = &cluster.Topology{NodeSizes: []int{1, ranks - 1}}
	}
	if ranks >= 5 {
		tops["non-uniform"] = &cluster.Topology{NodeSizes: []int{2, ranks - 3, 1}}
	}
	return tops
}

// TestCollectiveEdgeShapesAllAlgorithms repeats the edge-shape sweep for
// every fixed algorithm under every edge topology: recursive doubling and
// Rabenseifner at non-power-of-two worlds (folding at worlds 3, 5, 6, 7),
// worlds 1-3 where schedules degenerate to copies or single exchanges,
// hierarchical runs over single-node and one-rank-node groupings, data
// shorter than the world (empty owned blocks), and Range=0 constant
// blocks through every schedule's codec boundaries.
func TestCollectiveEdgeShapesAllAlgorithms(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 5, 6, 7} {
		for topoName, topo := range edgeTopologies(ranks) {
			oracle := conformance.CollectiveOracle{
				Opt:        core.Options{ErrorBound: 1e-3},
				Algorithms: core.FixedAlgorithms(),
				Topology:   topo,
			}
			for _, sh := range edgeShapes() {
				gen := sh.gen(sh.n)
				t.Run(sh.name+"/"+topoName, func(t *testing.T) {
					rep, err := oracle.CheckReduceScatter(ranks, gen)
					if err != nil {
						t.Fatalf("reduce_scatter ranks=%d n=%d: %v", ranks, sh.n, err)
					}
					if err := rep.Err(); err != nil {
						t.Fatalf("reduce_scatter ranks=%d n=%d: %v", ranks, sh.n, err)
					}
					rep, err = oracle.CheckAllreduce(ranks, gen)
					if err != nil {
						t.Fatalf("allreduce ranks=%d n=%d: %v", ranks, sh.n, err)
					}
					if err := rep.Err(); err != nil {
						t.Fatalf("allreduce ranks=%d n=%d: %v", ranks, sh.n, err)
					}
				})
			}
		}
	}
}
