// Edge-shape conformance tests for the core collectives, in an external
// test package so they can drive internal/conformance (which itself
// imports core).
package core_test

import (
	"math"
	"testing"

	"hzccl/internal/conformance"
	"hzccl/internal/core"
)

// TestCollectiveEdgeShapes runs every flavor of Reduce_scatter and
// Allreduce through the conformance oracle at the shapes ring collectives
// historically get wrong: single-rank "rings", odd rank counts, buffer
// lengths not divisible by the rank count, zero-length and all-constant
// buffers (the constant-block fast paths).
func TestCollectiveEdgeShapes(t *testing.T) {
	oracle := conformance.CollectiveOracle{Opt: core.Options{ErrorBound: 1e-3}}

	varying := func(n int) func(rank int) []float32 {
		return func(rank int) []float32 {
			out := make([]float32, n)
			for i := range out {
				out[i] = float32(math.Sin(float64(rank+1) * float64(i+1) / 17))
			}
			return out
		}
	}
	constant := func(n int) func(rank int) []float32 {
		return func(rank int) []float32 {
			out := make([]float32, n)
			for i := range out {
				out[i] = 0.5 * float32(rank+1)
			}
			return out
		}
	}

	shapes := []struct {
		name string
		n    int
		gen  func(n int) func(rank int) []float32
	}{
		{"zero-length", 0, varying},
		{"one-element", 1, varying},
		{"non-divisible", 37, varying}, // 37 is prime: never divisible by ranks > 1
		{"non-divisible-large", 101, varying},
		{"all-constant", 96, constant},
	}

	for _, ranks := range []int{1, 2, 3, 5, 7} {
		for _, sh := range shapes {
			gen := sh.gen(sh.n)
			t.Run(sh.name, func(t *testing.T) {
				rep, err := oracle.CheckReduceScatter(ranks, gen)
				if err != nil {
					t.Fatalf("reduce_scatter ranks=%d n=%d: %v", ranks, sh.n, err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("reduce_scatter ranks=%d n=%d: %v", ranks, sh.n, err)
				}
				rep, err = oracle.CheckAllreduce(ranks, gen)
				if err != nil {
					t.Fatalf("allreduce ranks=%d n=%d: %v", ranks, sh.n, err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("allreduce ranks=%d n=%d: %v", ranks, sh.n, err)
				}
			})
		}
	}
}
