package core

import (
	"hzccl/internal/cluster"
)

// comm is a communicator: an ordered group of ranks executing one
// collective together. The algorithm implementations in this package are
// written against comm rather than *cluster.Rank directly, so the same
// ring / recursive / tree code runs at any level of a topology — over
// the whole world, over one node's members, or over the node leaders —
// with group-local peer ids transparently translated to global ranks.
//
// A comm does not change message semantics: sends and receives go
// through the underlying rank (and therefore through whatever transport,
// reliability and fault machinery the cluster is configured with).
type comm struct {
	r *cluster.Rank
	// ranks maps group-local id -> global rank. nil means the identity
	// mapping over the full world (the common, allocation-free case).
	ranks []int
	// id is this rank's local id within the group.
	id int
}

// world wraps a rank as the full-cluster communicator.
func world(r *cluster.Rank) comm { return comm{r: r, id: r.ID} }

// subcomm builds the communicator over the given global ranks (which
// must be sorted in the group's rank order). ok is false when the
// calling rank is not a member.
func subcomm(r *cluster.Rank, members []int) (comm, bool) {
	for i, g := range members {
		if g == r.ID {
			return comm{r: r, ranks: members, id: i}, true
		}
	}
	return comm{}, false
}

// n returns the group size.
func (g comm) n() int {
	if g.ranks == nil {
		return g.r.N
	}
	return len(g.ranks)
}

// global translates a group-local id to a global rank.
func (g comm) global(lid int) int {
	if g.ranks == nil {
		return lid
	}
	return g.ranks[lid]
}

// sendRecv performs one ring exchange with wire-byte telemetry:
// send payload to local id `to`, receive from local id `from`.
func (g comm) sendRecv(to int, payload []byte, from int, compressed bool) ([]byte, error) {
	return ringSendRecv(g.r, g.global(to), payload, g.global(from), compressed)
}

// send posts one counted send to local id `to` (see ringSend).
func (g comm) send(to int, payload []byte, compressed bool) error {
	return ringSend(g.r, g.global(to), payload, compressed)
}

// recv blocks for the next message from local id `from` (see ringRecv).
func (g comm) recv(from int) ([]byte, error) {
	return ringRecv(g.r, g.global(from))
}

// rawSend/rawRecv are the uncounted variants for control-style moves
// (fold/unfold hand-offs, tree edges) that predate wire accounting.
func (g comm) rawSend(to int, data []byte) error {
	return g.r.Send(g.global(to), data)
}

func (g comm) rawRecv(from int) ([]byte, error) {
	return g.r.Recv(g.global(from))
}
