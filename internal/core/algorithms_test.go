package core

import (
	"math"
	"testing"

	"hzccl/internal/cluster"
)

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want Algorithm
	}{
		{"", AlgoRing}, {"ring", AlgoRing},
		{"rd", AlgoRecursiveDoubling}, {"recursive-doubling", AlgoRecursiveDoubling},
		{"rab", AlgoRabenseifner}, {"rabenseifner", AlgoRabenseifner}, {"recursive", AlgoRabenseifner},
		{"hier", AlgoHierarchical}, {"hierarchical", AlgoHierarchical},
		{"auto", AlgoAuto},
	}
	for _, c := range cases {
		got, err := ParseAlgorithm(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("ParseAlgorithm accepted bogus name")
	}
	for _, a := range FixedAlgorithms() {
		if !a.Valid() || a == AlgoAuto {
			t.Errorf("FixedAlgorithms contains %v", a)
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("String/Parse round trip failed for %v", a)
		}
	}
	if !AlgoAuto.Valid() || Algorithm(99).Valid() || Algorithm(-1).Valid() {
		t.Error("Valid() boundaries wrong")
	}
}

// TestRDAllreduce checks the recursive-doubling allreduce for all three
// backends across power-of-two and non-power-of-two worlds.
func TestRDAllreduce(t *testing.T) {
	for _, nRanks := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16} {
		n := 1000
		exact := exactSum(nRanks, n)
		c := New(Options{ErrorBound: testEB})
		outs := make([][]float32, nRanks)

		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.AllreducePlainRD(r, rankField(r.ID, n))
			outs[r.ID] = out
			return err
		})
		for rk, out := range outs {
			if len(out) != n {
				t.Fatalf("plain rd ranks=%d rank %d: %d elems", nRanks, rk, len(out))
			}
			for i := range out {
				if d := math.Abs(float64(out[i]) - exact[i]); d > 1e-3 {
					t.Fatalf("plain rd ranks=%d rank %d elem %d: err %g", nRanks, rk, i, d)
				}
			}
		}

		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.AllreduceCCollRD(r, rankField(r.ID, n))
			outs[r.ID] = out
			return err
		})
		// Every round re-quantizes, so the DOC bound grows with the round
		// count (log₂N + fold), each round contributing ≤ 2eb.
		rounds := 2 + int(math.Ceil(math.Log2(float64(nRanks)+1)))
		docBound := 2*float64(nRanks+rounds)*testEB + 1e-4
		for rk, out := range outs {
			checkNear(t, out, exact, docBound, "ccoll rd", nRanks, rk)
		}

		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, _, err := c.AllreduceHZRD(r, rankField(r.ID, n))
			outs[r.ID] = out
			return err
		})
		hzBound := 2*float64(nRanks)*testEB + 1e-4
		for rk, out := range outs {
			checkNear(t, out, exact, hzBound, "hz rd", nRanks, rk)
		}
	}
}

func checkNear(t *testing.T, out []float32, exact []float64, bound float64, label string, nRanks, rank int) {
	t.Helper()
	if len(out) != len(exact) {
		t.Fatalf("%s ranks=%d rank %d: %d elems, want %d", label, nRanks, rank, len(out), len(exact))
	}
	for i := range out {
		if d := math.Abs(float64(out[i]) - exact[i]); d > bound {
			t.Fatalf("%s ranks=%d rank %d elem %d: err %g > %g", label, nRanks, rank, i, d, bound)
		}
	}
}

func runClusterTopo(t *testing.T, ranks int, topo *cluster.Topology, body func(r *cluster.Rank) error) {
	t.Helper()
	if _, err := cluster.Run(cluster.Config{Ranks: ranks, Topology: topo}, body); err != nil {
		t.Fatal(err)
	}
}

// TestHierAllreduce checks the two-level hierarchical allreduce and
// reduce-scatter for all backends across flat, uniform and non-uniform
// topologies.
func TestHierAllreduce(t *testing.T) {
	cases := []struct {
		ranks int
		topo  *cluster.Topology
	}{
		{1, nil},
		{4, nil}, // no topology: degenerate single node
		{8, cluster.UniformTopology(2, 4)},
		{8, cluster.UniformTopology(8, 1)}, // every rank its own node
		{8, &cluster.Topology{NodeSizes: []int{3, 5}}},
		{16, &cluster.Topology{NodeSizes: []int{3, 5, 8}}},
	}
	n := 1000
	for _, tc := range cases {
		exact := exactSum(tc.ranks, n)
		c := New(Options{ErrorBound: testEB})
		outs := make([][]float32, tc.ranks)
		blocks := make([][]float32, tc.ranks)
		// Hierarchical compressed paths re-quantize at each of the four
		// stage boundaries on top of the per-operand error.
		bound := 2*float64(tc.ranks+8)*testEB + 1e-4
		name := tc.topo.String()

		runClusterTopo(t, tc.ranks, tc.topo, func(r *cluster.Rank) error {
			out, err := c.AllreduceHierPlain(r, rankField(r.ID, n))
			outs[r.ID] = out
			block, err2 := c.ReduceScatterHierPlain(r, rankField(r.ID, n))
			blocks[r.ID] = block
			if err == nil {
				err = err2
			}
			return err
		})
		for rk := range outs {
			checkNear(t, outs[rk], exact, 1e-3, "hier plain "+name, tc.ranks, rk)
			checkOwnedBlock(t, blocks[rk], exact, rk, tc.ranks, 1e-3, "hier plain rs "+name)
		}

		runClusterTopo(t, tc.ranks, tc.topo, func(r *cluster.Rank) error {
			out, err := c.AllreduceHierCColl(r, rankField(r.ID, n))
			outs[r.ID] = out
			block, err2 := c.ReduceScatterHierCColl(r, rankField(r.ID, n))
			blocks[r.ID] = block
			if err == nil {
				err = err2
			}
			return err
		})
		for rk := range outs {
			checkNear(t, outs[rk], exact, bound, "hier ccoll "+name, tc.ranks, rk)
			checkOwnedBlock(t, blocks[rk], exact, rk, tc.ranks, bound, "hier ccoll rs "+name)
		}

		runClusterTopo(t, tc.ranks, tc.topo, func(r *cluster.Rank) error {
			out, _, err := c.AllreduceHierHZ(r, rankField(r.ID, n))
			outs[r.ID] = out
			block, _, err2 := c.ReduceScatterHierHZ(r, rankField(r.ID, n))
			blocks[r.ID] = block
			if err == nil {
				err = err2
			}
			return err
		})
		for rk := range outs {
			checkNear(t, outs[rk], exact, bound, "hier hz "+name, tc.ranks, rk)
			checkOwnedBlock(t, blocks[rk], exact, rk, tc.ranks, bound, "hier hz rs "+name)
		}
	}
}

// checkOwnedBlock verifies a reduce-scatter result against the world
// contract: rank holds block BlockOwned(rank, N) of the exact sum.
func checkOwnedBlock(t *testing.T, block []float32, exact []float64, rank, nRanks int, bound float64, label string) {
	t.Helper()
	s, e := BlockBounds(len(exact), nRanks, BlockOwned(rank, nRanks))
	if len(block) != e-s {
		t.Fatalf("%s rank %d: block len %d, want %d", label, rank, len(block), e-s)
	}
	for i := range block {
		if d := math.Abs(float64(block[i]) - exact[s+i]); d > bound {
			t.Fatalf("%s rank %d elem %d: err %g > %g", label, rank, i, d, bound)
		}
	}
}

// TestTopology exercises the topology helpers directly.
func TestTopology(t *testing.T) {
	topo, err := cluster.ParseTopology("3,5,8")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Nodes() != 3 || topo.MaxNodeSize() != 8 {
		t.Fatalf("nodes=%d max=%d", topo.Nodes(), topo.MaxNodeSize())
	}
	if err := topo.Validate(16); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(15); err == nil {
		t.Error("sum mismatch accepted")
	}
	if got := topo.NodeOf(0); got != 0 {
		t.Errorf("NodeOf(0)=%d", got)
	}
	if got := topo.NodeOf(3); got != 1 {
		t.Errorf("NodeOf(3)=%d", got)
	}
	if got := topo.NodeOf(15); got != 2 {
		t.Errorf("NodeOf(15)=%d", got)
	}
	if got := topo.Leaders(); len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 8 {
		t.Errorf("Leaders()=%v", got)
	}
	if got := topo.Members(1); len(got) != 5 || got[0] != 3 || got[4] != 7 {
		t.Errorf("Members(1)=%v", got)
	}
	if topo.String() != "3,5,8" {
		t.Errorf("String()=%q", topo.String())
	}

	uni, err := cluster.ParseTopology("8x4")
	if err != nil {
		t.Fatal(err)
	}
	if uni.Nodes() != 8 || uni.MaxNodeSize() != 4 || uni.String() != "8x4" {
		t.Errorf("uniform: %v %q", uni.NodeSizes, uni.String())
	}
	var nilTopo *cluster.Topology
	if nilTopo.Normalize(7).NodeSizes[0] != 7 {
		t.Error("Normalize(nil) wrong")
	}
	if nilTopo.String() != "flat" {
		t.Error("nil String() wrong")
	}
	for _, bad := range []string{"", "0x4", "4x0", "3,0,5", "x", "a,b"} {
		if _, err := cluster.ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}

	// A cluster rejects a topology that doesn't match its world size.
	if _, err := cluster.Run(cluster.Config{Ranks: 4, Topology: &cluster.Topology{NodeSizes: []int{3}}},
		func(r *cluster.Rank) error { return nil }); err == nil {
		t.Error("cluster accepted mismatched topology")
	}
}
