package core

import (
	"math"
	"testing"

	"hzccl/internal/cluster"
	"hzccl/internal/telemetry"
)

// An hZCCL allreduce must leave a full telemetry record: compressed bytes
// on the ring (and none raw), spans for every stage it runs, and an hzdyn
// pipeline histogram whose case counts sum to the reduced block pairs.
func TestAllreduceHZTelemetry(t *testing.T) {
	const nodes, n = 4, 4096
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	c := New(Options{ErrorBound: 1e-3})

	before := telemetry.Capture()
	_, err := cluster.Run(cluster.Config{Ranks: nodes}, func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	d := telemetry.Capture().Delta(before)

	if got := d.Counters["core.ring.compressed_bytes"]; got <= 0 {
		t.Fatalf("core.ring.compressed_bytes = %d, want > 0", got)
	}
	if got := d.Counters["core.ring.raw_bytes"]; got != 0 {
		t.Fatalf("core.ring.raw_bytes = %d, want 0 for hZCCL", got)
	}
	// Ring steps: reduce-scatter (N-1 per rank) + allgather (N-1 per rank).
	wantSteps := int64(2 * nodes * (nodes - 1))
	if got := d.Counters["core.ring.steps"]; got != wantSteps {
		t.Fatalf("core.ring.steps = %d, want %d", got, wantSteps)
	}
	for _, h := range []string{
		"core.stage.compress_ns",
		"core.stage.decompress_ns",
		"core.stage.reduce_homomorphic_ns",
		"core.stage.sendrecv_ns",
	} {
		hs := d.Histograms[h]
		if hs.Count <= 0 || hs.Sum <= 0 {
			t.Fatalf("%s = %+v, want nonzero count and sum", h, hs)
		}
	}
	// Pipeline case counts must sum to the total reduced block pairs.
	ph := d.Histograms["hzdyn.pipeline_case"]
	var caseSum int64
	for _, b := range ph.Buckets {
		caseSum += b.Count
	}
	blocks := d.Counters["hzdyn.blocks"]
	if blocks <= 0 || caseSum != blocks || ph.Count != blocks {
		t.Fatalf("pipeline cases sum %d (hist count %d), hzdyn.blocks %d — want all equal and > 0",
			caseSum, ph.Count, blocks)
	}
	// fzlight byte accounting feeds the achieved-ratio gauge.
	if d.Counters["fzlight.compress.raw_bytes"] <= 0 || d.Counters["fzlight.compress.compressed_bytes"] <= 0 {
		t.Fatal("fzlight compress byte counters did not advance")
	}
	if d.Gauges["fzlight.compress.achieved_ratio"] <= 0 {
		t.Fatalf("achieved_ratio gauge = %g, want > 0", d.Gauges["fzlight.compress.achieved_ratio"])
	}
}

// The plain MPI baseline must account its ring traffic as raw bytes.
func TestAllreducePlainCountsRawBytes(t *testing.T) {
	data := make([]float32, 1024)
	for i := range data {
		data[i] = float32(i % 7)
	}
	c := New(Options{ErrorBound: 1e-3})
	before := telemetry.Capture()
	_, err := cluster.Run(cluster.Config{Ranks: 3}, func(r *cluster.Rank) error {
		_, err := c.AllreducePlain(r, data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	d := telemetry.Capture().Delta(before)
	if got := d.Counters["core.ring.raw_bytes"]; got <= 0 {
		t.Fatalf("core.ring.raw_bytes = %d, want > 0", got)
	}
	if got := d.Counters["core.ring.compressed_bytes"]; got != 0 {
		t.Fatalf("core.ring.compressed_bytes = %d, want 0 for plain MPI", got)
	}
}
