package core

import (
	"math"
	"testing"
	"time"

	"hzccl/internal/cluster"
)

func TestActiveRanks(t *testing.T) {
	cases := []struct{ rank, n, p2, newrank int }{
		{0, 8, 8, 0}, {7, 8, 8, 7}, // power of two: identity
		{0, 6, 4, -1}, {1, 6, 4, 0}, {2, 6, 4, -1}, {3, 6, 4, 1}, {4, 6, 4, 2}, {5, 6, 4, 3},
		{0, 5, 4, -1}, {1, 5, 4, 0}, {2, 5, 4, 1}, {4, 5, 4, 3},
	}
	for _, c := range cases {
		p2, nr := activeRanks(c.rank, c.n)
		if p2 != c.p2 || nr != c.newrank {
			t.Errorf("activeRanks(%d,%d) = (%d,%d), want (%d,%d)", c.rank, c.n, p2, nr, c.p2, c.newrank)
		}
		if nr >= 0 && oldRank(nr, c.n, p2) != c.rank {
			t.Errorf("oldRank(%d,%d,%d) != %d", nr, c.n, p2, c.rank)
		}
	}
}

func TestFrameBlobs(t *testing.T) {
	blobs := [][]byte{{1, 2, 3}, {}, {9}}
	got, err := unframeBlobs(frameBlobs(blobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "\x01\x02\x03" || len(got[1]) != 0 || got[2][0] != 9 {
		t.Fatalf("frame round trip: %v", got)
	}
	if _, err := unframeBlobs([]byte{1}); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := unframeBlobs([]byte{2, 0, 0, 0, 10, 0, 0, 0}); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRecursiveAllreduceMatchesExactSum(t *testing.T) {
	for _, nRanks := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16} {
		for _, n := range []int{1024, 1000} {
			exact := exactSum(nRanks, n)
			c := New(Options{ErrorBound: testEB})

			outs := make([][]float32, nRanks)
			runCluster(t, nRanks, func(r *cluster.Rank) error {
				out, err := c.AllreducePlainRecursive(r, rankField(r.ID, n))
				outs[r.ID] = out
				return err
			})
			for rk, out := range outs {
				if len(out) != n {
					t.Fatalf("plain n=%d ranks=%d rank %d: %d elems", n, nRanks, rk, len(out))
				}
				for i := range out {
					if d := math.Abs(float64(out[i]) - exact[i]); d > 1e-3 {
						t.Fatalf("plain recursive n=%d ranks=%d rank %d elem %d: err %g", n, nRanks, rk, i, d)
					}
				}
			}

			runCluster(t, nRanks, func(r *cluster.Rank) error {
				out, _, err := c.AllreduceHZRecursive(r, rankField(r.ID, n))
				outs[r.ID] = out
				return err
			})
			bound := 2*float64(nRanks)*testEB + 1e-4
			for rk, out := range outs {
				if len(out) != n {
					t.Fatalf("hz n=%d ranks=%d rank %d: %d elems", n, nRanks, rk, len(out))
				}
				for i := range out {
					if d := math.Abs(float64(out[i]) - exact[i]); d > bound {
						t.Fatalf("hz recursive n=%d ranks=%d rank %d elem %d: err %g", n, nRanks, rk, i, d)
					}
				}
			}
		}
	}
}

// The recursive algorithm must beat the ring at high latency (its point):
// log2(N) rounds instead of N−1.
func TestRecursiveBeatsRingAtHighLatency(t *testing.T) {
	const nRanks, n = 16, 1 << 12
	rates := &Rates{CPR: 1e9, DPR: 2e9, CPT: 8e9, HPR: 8e9}
	c := New(Options{ErrorBound: testEB, Rates: rates})
	cfg := cluster.Config{Ranks: nRanks, Latency: 200 * time.Microsecond, BandwidthBytes: 1e9}
	run := func(f func(r *cluster.Rank) error) float64 {
		res, err := cluster.Run(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	tRing := run(func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, rankField(r.ID, n))
		return err
	})
	tRec := run(func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZRecursive(r, rankField(r.ID, n))
		return err
	})
	if tRec >= tRing {
		t.Fatalf("recursive (%.6fs) not faster than ring (%.6fs) at 200us latency", tRec, tRing)
	}
}

func TestRecursiveHZBreakdown(t *testing.T) {
	const nRanks = 8
	c := New(Options{ErrorBound: testEB})
	res := runCluster(t, nRanks, func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZRecursive(r, rankField(r.ID, 4096))
		return err
	})
	if res.Breakdown[cluster.CatCPT] != 0 {
		t.Errorf("recursive HZ charged CPT: %v", res.Breakdown)
	}
	for _, cat := range []cluster.Category{cluster.CatCPR, cluster.CatHPR, cluster.CatDPR} {
		if res.Breakdown[cat] == 0 {
			t.Errorf("recursive HZ missing %s", cat)
		}
	}
}

func TestCPRP2PMatchesExactSum(t *testing.T) {
	for _, nRanks := range []int{1, 2, 5, 8} {
		n := 2048
		exact := exactSum(nRanks, n)
		c := New(Options{ErrorBound: testEB})
		outs := make([][]float32, nRanks)
		runCluster(t, nRanks, func(r *cluster.Rank) error {
			out, err := c.AllreduceCPRP2P(r, rankField(r.ID, n))
			outs[r.ID] = out
			return err
		})
		// Per-hop recompression adds up to one eb per forward hop on top
		// of the DOC budget.
		bound := 3*float64(nRanks)*testEB + 1e-4
		for rk, out := range outs {
			if len(out) != n {
				t.Fatalf("ranks=%d rank %d: %d elems", nRanks, rk, len(out))
			}
			for i := range out {
				if d := math.Abs(float64(out[i]) - exact[i]); d > bound {
					t.Fatalf("cpr-p2p ranks=%d rank %d elem %d: err %g (bound %g)", nRanks, rk, i, d, bound)
				}
			}
		}
	}
}

// The paper's baseline ordering: hZCCL < C-Coll < CPR-P2P in virtual time
// (modeled rates, deterministic).
func TestBaselineOrdering(t *testing.T) {
	const nRanks, n = 8, 1 << 16
	rates := &Rates{CPR: 1e9, DPR: 2e9, CPT: 8e9, HPR: 9e9}
	c := New(Options{ErrorBound: testEB, Rates: rates})
	cfg := cluster.Config{Ranks: nRanks, BandwidthBytes: 0.4e9}
	run := func(f func(r *cluster.Rank) error) float64 {
		res, err := cluster.Run(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	tP2P := run(func(r *cluster.Rank) error {
		_, err := c.AllreduceCPRP2P(r, smoothRankField(r.ID, n))
		return err
	})
	tCColl := run(func(r *cluster.Rank) error {
		_, err := c.AllreduceCColl(r, smoothRankField(r.ID, n))
		return err
	})
	tHZ := run(func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, smoothRankField(r.ID, n))
		return err
	})
	if !(tHZ < tCColl && tCColl < tP2P) {
		t.Fatalf("expected hZ < C-Coll < CPR-P2P, got %.6f %.6f %.6f", tHZ, tCColl, tP2P)
	}
}
