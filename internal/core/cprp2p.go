package core

import (
	"hzccl/internal/bufpool"
	"hzccl/internal/cluster"
	"hzccl/internal/fzlight"
)

// CPR-P2P is the pre-C-Coll baseline the paper positions C-Coll against
// (§III-A, citing Zhou et al.): compression is bolted onto every
// point-to-point message independently, with no collective-level co-design.
// In the allgather stage this means each forwarded block is decompressed
// on arrival and recompressed before the next hop — (N−1)·(CPR+DPR) per
// rank instead of C-Coll's 1·CPR + (N−1)·DPR — which is exactly the
// overhead C-Coll's "compress once" allgather removes.

// AllreduceCPRP2P is the ring allreduce with per-message compression: the
// reduce-scatter stage matches C-Coll's (each round compresses what it
// sends and decompresses what it receives — there is nothing left to
// strip there), but the allgather stage re-compresses at every hop.
func (c Collectives) AllreduceCPRP2P(r *cluster.Rank, data []float32) ([]float32, error) {
	block, err := c.ReduceScatterCColl(r, data)
	if err != nil {
		return nil, err
	}
	n := r.N
	opt := c.Opt
	out := make([]float32, len(data))
	k := BlockOwned(r.ID, n)
	s, e := BlockBounds(len(data), n, k)
	copy(out[s:e], block)
	if n == 1 {
		return out, nil
	}
	next, prev := (r.ID+1)%n, (r.ID-1+n)%n
	params := opt.params()
	cur := block
	for step := 0; step < n-1; step++ {
		// Per-message compression: the forwarded block is recompressed at
		// every hop (the naive point-to-point treatment). The compressed
		// payload and the received container live in pooled buffers that
		// recycle as soon as the transport copy / decode consumes them.
		payload := bufpool.Bytes(fzlight.CompressBound(len(cur), params))
		var m int
		var cerr error
		c.work(r, cluster.CatCPR, 4*len(cur), func() {
			m, cerr = fzlight.CompressInto(payload, cur, params)
		})
		if cerr != nil {
			bufpool.PutBytes(payload)
			return nil, cerr
		}
		got, err := ringSendRecv(r, next, payload[:m], prev, true)
		bufpool.PutBytes(payload) // copied on send: dead either way
		if err != nil {
			return nil, err
		}
		origin := (r.ID - step - 1 + n) % n
		ok := BlockOwned(origin, n)
		os, oe := BlockBounds(len(data), n, ok)
		recv := bufpool.Float32s(oe - os)
		var derr error
		c.work(r, cluster.CatDPR, 4*(oe-os), func() {
			derr = fzlight.DecompressInto(got, recv)
		})
		bufpool.PutBytes(got)
		if derr != nil {
			bufpool.PutFloat32s(recv)
			return nil, derr
		}
		copy(out[os:oe], recv)
		bufpool.PutFloat32s(recv)
		// The forwarded values live on in the output array, so the next
		// hop compresses from there instead of retaining recv.
		cur = out[os:oe]
	}
	return out, nil
}
