package core

import (
	"math"
	"testing"
	"time"

	"hzccl/internal/cluster"
)

// With modeled rates the virtual time of a collective is a deterministic
// function of the op counts — exactly the paper's cost equations. Verify
// the hZ allreduce charge matches N·CPR + (N−1)·HPR + N·DPR plus the
// modeled communication, independent of wall-clock noise.
func TestModeledChargingMatchesEquations(t *testing.T) {
	const nRanks, n = 4, 1 << 12
	rates := &Rates{CPR: 1e9, DPR: 2e9, CPT: 4e9, HPR: 8e9}
	c := New(Options{ErrorBound: 1e-3, Rates: rates})
	cfg := cluster.Config{Ranks: nRanks, Latency: time.Microsecond, BandwidthBytes: 1e9}

	res, err := cluster.Run(cfg, func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, smoothRankField(r.ID, n))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	raw := float64(4 * n)
	m := raw / nRanks
	wantCPR := raw / rates.CPR * nRanks              // each rank compresses all its blocks
	wantHPR := m * (nRanks - 1) / rates.HPR * nRanks // N-1 homomorphic adds per rank
	wantDPR := m * nRanks / rates.DPR * nRanks       // N block decompressions per rank
	for cat, want := range map[cluster.Category]float64{
		cluster.CatCPR: wantCPR,
		cluster.CatHPR: wantHPR,
		cluster.CatDPR: wantDPR,
	} {
		if got := res.Breakdown[cat]; math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%s charge %g, want %g", cat, got, want)
		}
	}
	if res.Breakdown[cluster.CatCPT] != 0 {
		t.Errorf("hZ allreduce charged CPT: %v", res.Breakdown)
	}
	// Determinism: a second run charges identical times.
	res2, err := cluster.Run(cfg, func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, smoothRankField(r.ID, n))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Time != res.Time {
		t.Errorf("modeled runs differ: %g vs %g", res.Time, res2.Time)
	}
}

// The MT mode must divide modeled charges by MTSpeedup exactly.
func TestModeledMTScaling(t *testing.T) {
	const nRanks, n = 4, 1 << 12
	rates := &Rates{CPR: 1e9, DPR: 2e9, CPT: 4e9, HPR: 8e9}
	run := func(mode Mode) *cluster.Result {
		c := New(Options{ErrorBound: 1e-3, Mode: mode, Rates: rates, MTSpeedup: 8})
		res, err := cluster.Run(cluster.Config{Ranks: nRanks}, func(r *cluster.Rank) error {
			_, err := c.AllreduceCColl(r, smoothRankField(r.ID, n))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	st := run(SingleThread)
	mt := run(MultiThread)
	for _, cat := range []cluster.Category{cluster.CatCPR, cluster.CatDPR, cluster.CatCPT} {
		ratio := st.Breakdown[cat] / mt.Breakdown[cat]
		if math.Abs(ratio-8) > 1e-6 {
			t.Errorf("%s ST/MT charge ratio %g, want 8", cat, ratio)
		}
	}
}

// Quiesce must serialize with Time sections but charge nothing.
func TestQuiesceChargesNothing(t *testing.T) {
	res, err := cluster.Run(cluster.Config{Ranks: 2}, func(r *cluster.Rank) error {
		r.Quiesce(func() { time.Sleep(2 * time.Millisecond) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 0 {
		t.Fatalf("Quiesce charged %g seconds", res.Time)
	}
}
