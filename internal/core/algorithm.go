package core

import "fmt"

// Algorithm selects which collective algorithm family a reduction runs.
// Every algorithm is implemented for all three backends (Plain, C-Coll,
// hZCCL), so backend degradation ladders apply unchanged whichever
// algorithm is selected.
type Algorithm int

// Algorithms. The zero value is the ring, preserving the behavior of all
// code written before algorithm selection existed.
const (
	// AlgoRing is the bandwidth-optimal ring (N−1 reduce-scatter steps +
	// N−1 allgather steps) — the paper's showcase schedule.
	AlgoRing Algorithm = iota
	// AlgoRecursiveDoubling exchanges full partial vectors pairwise over
	// log₂(N) rounds — latency-optimal, bandwidth-heavy; wins for small
	// messages.
	AlgoRecursiveDoubling
	// AlgoRabenseifner is recursive-halving reduce-scatter followed by
	// recursive-doubling allgather: log₂(N) rounds at near-ring bandwidth.
	AlgoRabenseifner
	// AlgoHierarchical is the two-level topology-aware schedule: ring
	// reduce-scatter inside each node, ring exchange among node leaders,
	// then an intra-node binomial broadcast (or scatter, for
	// reduce-scatter). Node grouping comes from cluster.Config.Topology.
	AlgoHierarchical
	// AlgoAuto asks the (α, β) cost model to pick per message size, world
	// size, backend and topology. Resolved before the collective runs;
	// the chosen fixed algorithm is what actually executes.
	AlgoAuto
)

// NumAlgorithms counts the fixed (non-auto) algorithms.
const NumAlgorithms = int(AlgoAuto)

func (a Algorithm) String() string {
	switch a {
	case AlgoRing:
		return "ring"
	case AlgoRecursiveDoubling:
		return "rd"
	case AlgoRabenseifner:
		return "rabenseifner"
	case AlgoHierarchical:
		return "hierarchical"
	case AlgoAuto:
		return "auto"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm parses the CLI spellings of an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "ring", "":
		return AlgoRing, nil
	case "rd", "recursive-doubling":
		return AlgoRecursiveDoubling, nil
	case "rab", "rabenseifner", "recursive":
		return AlgoRabenseifner, nil
	case "hier", "hierarchical":
		return AlgoHierarchical, nil
	case "auto":
		return AlgoAuto, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want ring|rd|rabenseifner|hierarchical|auto)", s)
}

// Valid reports whether a names a defined algorithm (including AlgoAuto).
func (a Algorithm) Valid() bool { return a >= AlgoRing && a <= AlgoAuto }

// FixedAlgorithms lists every concrete algorithm (everything but
// AlgoAuto) in deterministic selection order.
func FixedAlgorithms() []Algorithm {
	return []Algorithm{AlgoRing, AlgoRecursiveDoubling, AlgoRabenseifner, AlgoHierarchical}
}
