package core

import (
	"fmt"

	"hzccl/internal/cluster"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// Recursive-doubling allreduce: every rank keeps a full-length partial
// vector and exchanges it pairwise with partners at doubling distances —
// log₂(N) rounds of full-message traffic. Latency-optimal, so it wins
// the small-message regime where the ring's 2(N−1) message latencies
// dominate; the cost model (internal/costmodel) encodes the crossover.
//
// Non-power-of-two rank counts reuse the Rabenseifner fold (activeRanks):
// the first 2r ranks pair up so a power of two remains active, and folded
// ranks receive the final result during the unfold.
//
// Three flavours: Plain exchanges raw vectors and sums in float32;
// C-Coll compresses every outgoing vector and decompresses every incoming
// one (DOC per round); HZ compresses once and combines the compressed
// partial vectors homomorphically each round, decompressing only at the
// end.

// AllreducePlainRD is the uncompressed recursive-doubling allreduce.
func (c Collectives) AllreducePlainRD(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.allreducePlainRDG(world(r), data)
}

func (c Collectives) allreducePlainRDG(g comm, data []float32) ([]float32, error) {
	n := g.n()
	r := g.r
	acc := make([]float32, len(data))
	copy(acc, data)
	if n == 1 {
		return acc, nil
	}
	p2, newrank := activeRanks(g.id, n)
	rem := n - p2

	// Fold: even ranks of the first 2r hand their vector to the odd
	// partner and wait for the final result.
	if g.id < 2*rem {
		if g.id%2 == 0 {
			if err := g.rawSend(g.id+1, floatbytes.Bytes(acc)); err != nil {
				return nil, err
			}
			got, err := g.rawRecv(g.id + 1)
			if err != nil {
				return nil, err
			}
			return floatbytes.Floats(got), nil
		}
		got, err := g.rawRecv(g.id - 1)
		if err != nil {
			return nil, err
		}
		vals := floatbytes.Floats(got)
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, vals) })
	}

	// Doubling rounds: exchange full partial vectors.
	for dist := 1; dist < p2; dist <<= 1 {
		partner := oldRank(newrank^dist, n, p2)
		got, err := g.sendRecv(partner, floatbytes.Bytes(acc), partner, false)
		if err != nil {
			return nil, err
		}
		vals := floatbytes.Floats(got)
		if len(vals) != len(acc) {
			return nil, fmt.Errorf("core: recursive doubling size mismatch at rank %d", r.ID)
		}
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, vals) })
	}

	// Unfold: return the finished vector to the folded partner.
	if g.id < 2*rem && g.id%2 == 1 {
		if err := g.rawSend(g.id-1, floatbytes.Bytes(acc)); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// AllreduceCCollRD is the C-Coll (DOC) recursive-doubling allreduce:
// every round compresses the outgoing vector, decompresses the incoming
// one, and reduces in the raw domain. Both partners reduce in the
// *quantized* domain of what went on the wire — each rank decodes its own
// outgoing payload alongside the partner's, so a round produces
// dec(cₐ)+dec(c_b) on both sides. Float32 addition is commutative, which
// makes the result bitwise identical across ranks at every round: the
// allreduce replication contract survives compression, at the cost of one
// extra decompression per round.
func (c Collectives) AllreduceCCollRD(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.allreduceCCollRDG(world(r), data)
}

func (c Collectives) allreduceCCollRDG(g comm, data []float32) ([]float32, error) {
	n := g.n()
	r := g.r
	opt := c.Opt
	acc := make([]float32, len(data))
	copy(acc, data)
	if n == 1 {
		return acc, nil
	}
	p2, newrank := activeRanks(g.id, n)
	rem := n - p2

	compress := func(vals []float32) ([]byte, error) {
		var out []byte
		var cerr error
		c.work(r, cluster.CatCPR, 4*len(vals), func() {
			out, cerr = fzlight.Compress(vals, opt.params())
		})
		return out, cerr
	}
	decompressInto := func(blob []byte, dst []float32) error {
		var derr error
		c.work(r, cluster.CatDPR, 4*len(dst), func() {
			derr = fzlight.DecompressInto(blob, dst)
		})
		return derr
	}

	if g.id < 2*rem {
		if g.id%2 == 0 {
			comp, err := compress(acc)
			if err != nil {
				return nil, err
			}
			if err := g.rawSend(g.id+1, comp); err != nil {
				return nil, err
			}
			got, err := g.rawRecv(g.id + 1)
			if err != nil {
				return nil, err
			}
			out := make([]float32, len(data))
			if err := decompressInto(got, out); err != nil {
				return nil, err
			}
			return out, nil
		}
		got, err := g.rawRecv(g.id - 1)
		if err != nil {
			return nil, err
		}
		vals := make([]float32, len(data))
		if err := decompressInto(got, vals); err != nil {
			return nil, err
		}
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, vals) })
	}

	vals := make([]float32, len(data))
	for dist := 1; dist < p2; dist <<= 1 {
		partner := oldRank(newrank^dist, n, p2)
		comp, err := compress(acc)
		if err != nil {
			return nil, err
		}
		got, err := g.sendRecv(partner, comp, partner, true)
		if err != nil {
			return nil, err
		}
		// Re-anchor the accumulator to the quantized value the partner
		// received, so both sides of the exchange add the same two
		// operands (see AllreduceCCollRD).
		if err := decompressInto(comp, acc); err != nil {
			return nil, err
		}
		if err := decompressInto(got, vals); err != nil {
			return nil, err
		}
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, vals) })
	}

	// Non-power-of-two unfold: the folded partner can only decode
	// dec(comp(final)), so *every* rank re-anchors to that same quantized
	// value — compress is deterministic on the (already identical) active
	// accumulators, hence the folded ranks decode the very bytes the
	// active ranks re-anchored to and replication holds world-wide.
	if rem > 0 {
		comp, err := compress(acc)
		if err != nil {
			return nil, err
		}
		if err := decompressInto(comp, acc); err != nil {
			return nil, err
		}
		if g.id < 2*rem && g.id%2 == 1 {
			if err := g.rawSend(g.id-1, comp); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceHZRD is the homomorphic recursive-doubling allreduce: the
// partial vector is compressed once, every round exchanges compressed
// partials and combines them with the homomorphic add, and the result
// decompresses once at the end — CPR + log₂(N)·HPR + DPR on the critical
// path.
func (c Collectives) AllreduceHZRD(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	return c.allreduceHZRDG(world(r), data)
}

func (c Collectives) allreduceHZRDG(g comm, data []float32) ([]float32, *hzdyn.Stats, error) {
	n := g.n()
	r := g.r
	opt := c.Opt
	stats := &hzdyn.Stats{}
	if n == 1 {
		out := make([]float32, len(data))
		copy(out, data)
		return out, stats, nil
	}
	p2, newrank := activeRanks(g.id, n)
	rem := n - p2

	var acc []byte
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(data), func() {
		acc, cerr = fzlight.Compress(data, opt.params())
	})
	if cerr != nil {
		return nil, nil, cerr
	}

	homAdd := func(blob []byte) error {
		var herr error
		c.work(r, cluster.CatHPR, 4*len(data), func() {
			var st hzdyn.Stats
			acc, st, herr = hzdyn.Add(acc, blob)
			stats.Accumulate(st)
		})
		return herr
	}
	decompress := func(blob []byte) ([]float32, error) {
		var out []float32
		var derr error
		c.work(r, cluster.CatDPR, 4*len(data), func() {
			out, derr = fzlight.Decompress(blob)
		})
		return out, derr
	}

	// Fold on compressed vectors.
	if g.id < 2*rem {
		if g.id%2 == 0 {
			if err := g.rawSend(g.id+1, acc); err != nil {
				return nil, nil, err
			}
			got, err := g.rawRecv(g.id + 1)
			if err != nil {
				return nil, nil, err
			}
			out, err := decompress(got)
			if err != nil {
				return nil, nil, err
			}
			return out, stats, nil
		}
		got, err := g.rawRecv(g.id - 1)
		if err != nil {
			return nil, nil, err
		}
		if err := homAdd(got); err != nil {
			return nil, nil, err
		}
	}

	// Doubling rounds on compressed partial vectors.
	for dist := 1; dist < p2; dist <<= 1 {
		partner := oldRank(newrank^dist, n, p2)
		got, err := g.sendRecv(partner, acc, partner, true)
		if err != nil {
			return nil, nil, err
		}
		if err := homAdd(got); err != nil {
			return nil, nil, err
		}
	}

	// Unfold ships the compressed final vector; the folded partner pays
	// its own DPR.
	if g.id < 2*rem && g.id%2 == 1 {
		if err := g.rawSend(g.id-1, acc); err != nil {
			return nil, nil, err
		}
	}
	out, err := decompress(acc)
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}
