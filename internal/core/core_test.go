package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"hzccl/internal/cluster"
	"hzccl/internal/hzdyn"
)

// rankField builds deterministic per-rank input data.
func rankField(rank, n int) []float32 {
	rng := rand.New(rand.NewSource(int64(rank)*7919 + 17))
	out := make([]float32, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = float32(math.Sin(float64(i)*0.01+float64(rank)) + v)
	}
	return out
}

// exactSum returns the element-wise float64 sum across ranks.
func exactSum(nRanks, n int) []float64 {
	out := make([]float64, n)
	for r := 0; r < nRanks; r++ {
		d := rankField(r, n)
		for i, v := range d {
			out[i] += float64(v)
		}
	}
	return out
}

const testEB = 1e-3

func runCluster(t *testing.T, ranks int, body func(r *cluster.Rank) error) *cluster.Result {
	t.Helper()
	res, err := cluster.Run(cluster.Config{Ranks: ranks}, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkAllreduce verifies out ≈ exact sum within the accumulated error
// bound: each of the N operands contributes ≤ eb of quantization error,
// plus recompression rounds for DOC backends (≤ 2N·eb total, generous).
func checkAllreduce(t *testing.T, out []float32, exact []float64, nRanks int, label string) {
	t.Helper()
	bound := 2*float64(nRanks)*testEB + 1e-4
	for i := range out {
		if d := math.Abs(float64(out[i]) - exact[i]); d > bound {
			t.Fatalf("%s: element %d error %g exceeds %g", label, i, d, bound)
		}
	}
}

func TestAllreduceBackendsMatchExactSum(t *testing.T) {
	for _, nRanks := range []int{2, 4, 7} {
		for _, n := range []int{256, 1000, 4096} {
			exact := exactSum(nRanks, n)
			for _, mode := range []Mode{SingleThread, MultiThread} {
				c := New(Options{ErrorBound: testEB, Mode: mode, MTThreads: 4})

				outs := make([][]float32, nRanks)
				runCluster(t, nRanks, func(r *cluster.Rank) error {
					out, err := c.AllreducePlain(r, rankField(r.ID, n))
					outs[r.ID] = out
					return err
				})
				for rk, out := range outs {
					// plain allreduce is exact up to float32 addition order
					for i := range out {
						if d := math.Abs(float64(out[i]) - exact[i]); d > 1e-3 {
							t.Fatalf("plain rank %d elem %d: err %g", rk, i, d)
						}
					}
				}

				runCluster(t, nRanks, func(r *cluster.Rank) error {
					out, err := c.AllreduceCColl(r, rankField(r.ID, n))
					outs[r.ID] = out
					return err
				})
				for _, out := range outs {
					checkAllreduce(t, out, exact, nRanks, fmt.Sprintf("ccoll n=%d ranks=%d mode=%v", n, nRanks, mode))
				}

				runCluster(t, nRanks, func(r *cluster.Rank) error {
					out, _, err := c.AllreduceHZ(r, rankField(r.ID, n))
					outs[r.ID] = out
					return err
				})
				for _, out := range outs {
					checkAllreduce(t, out, exact, nRanks, fmt.Sprintf("hz n=%d ranks=%d mode=%v", n, nRanks, mode))
				}
			}
		}
	}
}

func TestAllRanksAgree(t *testing.T) {
	const nRanks, n = 5, 2000
	c := New(Options{ErrorBound: testEB})
	outs := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, _, err := c.AllreduceHZ(r, rankField(r.ID, n))
		outs[r.ID] = out
		return err
	})
	for rk := 1; rk < nRanks; rk++ {
		for i := range outs[0] {
			if outs[rk][i] != outs[0][i] {
				t.Fatalf("rank %d disagrees with rank 0 at element %d: %v vs %v", rk, i, outs[rk][i], outs[0][i])
			}
		}
	}
}

func TestReduceScatterBackendsAgree(t *testing.T) {
	const nRanks, n = 6, 3000
	exact := exactSum(nRanks, n)
	c := New(Options{ErrorBound: testEB})

	check := func(label string, blocks [][]float32) {
		t.Helper()
		for rk, block := range blocks {
			k := BlockOwned(rk, nRanks)
			s, e := BlockBounds(n, nRanks, k)
			if len(block) != e-s {
				t.Fatalf("%s rank %d: block length %d want %d", label, rk, len(block), e-s)
			}
			for i := range block {
				if d := math.Abs(float64(block[i]) - exact[s+i]); d > 2*float64(nRanks)*testEB+1e-4 {
					t.Fatalf("%s rank %d elem %d: err %g", label, rk, i, d)
				}
			}
		}
	}

	blocks := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		b, err := c.ReduceScatterPlain(r, rankField(r.ID, n))
		blocks[r.ID] = b
		return err
	})
	check("plain", blocks)

	runCluster(t, nRanks, func(r *cluster.Rank) error {
		b, err := c.ReduceScatterCColl(r, rankField(r.ID, n))
		blocks[r.ID] = b
		return err
	})
	check("ccoll", blocks)

	runCluster(t, nRanks, func(r *cluster.Rank) error {
		b, _, err := c.ReduceScatterHZ(r, rankField(r.ID, n))
		blocks[r.ID] = b
		return err
	})
	check("hz", blocks)
}

func TestSingleRank(t *testing.T) {
	c := New(Options{ErrorBound: testEB})
	data := rankField(0, 500)
	runCluster(t, 1, func(r *cluster.Rank) error {
		out, err := c.AllreducePlain(r, data)
		if err != nil {
			return err
		}
		for i := range out {
			if out[i] != data[i] {
				return fmt.Errorf("single-rank plain allreduce altered data")
			}
		}
		out, _, err = c.AllreduceHZ(r, data)
		if err != nil {
			return err
		}
		for i := range out {
			if d := math.Abs(float64(out[i]) - float64(data[i])); d > testEB+1e-6 {
				return fmt.Errorf("single-rank hz allreduce error %g", d)
			}
		}
		block, err := c.ReduceScatterPlain(r, data)
		if err != nil {
			return err
		}
		if len(block) != len(data) {
			return fmt.Errorf("single-rank reduce-scatter returned %d elems", len(block))
		}
		return nil
	})
}

func TestUnevenBlockSizes(t *testing.T) {
	// Data length not divisible by rank count.
	const nRanks, n = 4, 1003
	exact := exactSum(nRanks, n)
	c := New(Options{ErrorBound: testEB})
	outs := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, _, err := c.AllreduceHZ(r, rankField(r.ID, n))
		outs[r.ID] = out
		return err
	})
	for _, out := range outs {
		if len(out) != n {
			t.Fatalf("output length %d want %d", len(out), n)
		}
		checkAllreduce(t, out, exact, nRanks, "uneven")
	}
}

func TestHZNaiveMatchesHZValues(t *testing.T) {
	const nRanks, n = 4, 2048
	c := New(Options{ErrorBound: testEB})
	fused := make([][]float32, nRanks)
	naive := make([][]float32, nRanks)
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, _, err := c.AllreduceHZ(r, rankField(r.ID, n))
		fused[r.ID] = out
		return err
	})
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		out, _, err := c.AllreduceHZNaive(r, rankField(r.ID, n))
		naive[r.ID] = out
		return err
	})
	for rk := range fused {
		for i := range fused[rk] {
			// naive recompresses (may re-quantize), so allow one extra eb
			if d := math.Abs(float64(fused[rk][i]) - float64(naive[rk][i])); d > 2*testEB {
				t.Fatalf("rank %d elem %d: fused %v vs naive %v", rk, i, fused[rk][i], naive[rk][i])
			}
		}
	}
}

// smoothRankField builds per-rank data with the statistics of the RTM
// datasets the paper's collective evaluation uses: a long-wavelength
// oscillation (mostly constant blocks at eb=1e-3) over half the domain and
// exact zeros elsewhere. On such data the homomorphic pipelines ①–③
// dominate and HPR ≪ DPR + CPT, which is the premise of the co-design.
func smoothRankField(rank, n int) []float32 {
	out := make([]float32, n)
	for i := n / 2; i < n; i++ {
		// Amplitude small relative to eb·(#blocks) so that quantization-cell
		// crossings are rare: ~90% of blocks are constant, as in the
		// paper's RTM data (Table V).
		out[i] = float32(0.15 * math.Sin(float64(i)*2e-5+float64(rank)))
	}
	return out
}

// The co-design claims, in virtual time on identical inputs:
// hZCCL < C-Coll for both RS and AR, and the naive (unfused) hZ allreduce
// is slower than the fused one. Calibrated rates (HPR well above DPR+CPT,
// the constant-block-dominated regime of the paper's RTM data) make the
// comparison deterministic while the collectives still run real data.
func TestRelativePerformanceShape(t *testing.T) {
	const nRanks, n = 8, 1 << 16
	c := New(Options{
		ErrorBound: testEB,
		Rates:      &Rates{CPR: 1e9, DPR: 1.8e9, CPT: 8e9, HPR: 9e9},
	})

	run := func(f func(r *cluster.Rank) error) float64 {
		return runCluster(t, nRanks, f).Time
	}

	tCColl := run(func(r *cluster.Rank) error {
		_, err := c.AllreduceCColl(r, smoothRankField(r.ID, n))
		return err
	})
	tHZ := run(func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, smoothRankField(r.ID, n))
		return err
	})
	tNaive := run(func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZNaive(r, smoothRankField(r.ID, n))
		return err
	})
	if tHZ >= tCColl {
		t.Errorf("hZCCL allreduce (%.6fs) not faster than C-Coll (%.6fs)", tHZ, tCColl)
	}
	if tHZ >= tNaive {
		t.Errorf("fused hZCCL allreduce (%.6fs) not faster than naive (%.6fs)", tHZ, tNaive)
	}
}

// Breakdown sanity: C-Coll charges CPR/DPR/CPT and no HPR; hZCCL charges
// HPR and never CPT.
func TestBreakdownCategories(t *testing.T) {
	const nRanks, n = 4, 1 << 14
	c := New(Options{ErrorBound: testEB})
	res := runCluster(t, nRanks, func(r *cluster.Rank) error {
		_, err := c.AllreduceCColl(r, rankField(r.ID, n))
		return err
	})
	if res.Breakdown[cluster.CatHPR] != 0 {
		t.Errorf("C-Coll charged HPR: %v", res.Breakdown)
	}
	for _, cat := range []cluster.Category{cluster.CatCPR, cluster.CatDPR, cluster.CatCPT} {
		if res.Breakdown[cat] == 0 {
			t.Errorf("C-Coll missing %s: %v", cat, res.Breakdown)
		}
	}
	res = runCluster(t, nRanks, func(r *cluster.Rank) error {
		_, _, err := c.AllreduceHZ(r, rankField(r.ID, n))
		return err
	})
	if res.Breakdown[cluster.CatCPT] != 0 {
		t.Errorf("hZCCL charged CPT: %v", res.Breakdown)
	}
	if res.Breakdown[cluster.CatHPR] == 0 {
		t.Errorf("hZCCL missing HPR: %v", res.Breakdown)
	}
}

func TestPipelineStatsAggregation(t *testing.T) {
	const nRanks, n = 4, 1 << 14
	c := New(Options{ErrorBound: testEB})
	var mu sync.Mutex
	total := hzdyn.Stats{}
	runCluster(t, nRanks, func(r *cluster.Rank) error {
		_, st, err := c.AllreduceHZ(r, rankField(r.ID, n))
		if err != nil {
			return err
		}
		mu.Lock()
		total.Blocks += st.Blocks
		mu.Unlock()
		return nil
	})
	if total.Blocks == 0 {
		t.Fatal("no homomorphic blocks recorded")
	}
}

func TestBlockOwnedCoversAllBlocks(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		seen := make(map[int]bool)
		for r := 0; r < n; r++ {
			seen[BlockOwned(r, n)] = true
		}
		if len(seen) != n {
			t.Fatalf("n=%d: BlockOwned not a permutation: %v", n, seen)
		}
	}
}

func TestModeString(t *testing.T) {
	if SingleThread.String() != "single-thread" || MultiThread.String() != "multi-thread" {
		t.Fatal("mode strings wrong")
	}
}
