package core

import (
	"fmt"

	"hzccl/internal/cluster"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// This file extends the framework beyond the paper's two showcase
// operations to the rest of the collective family the C-Coll substrate
// (Huang et al., IPDPS'24) covers: Broadcast, Reduce, Gather, Allgather
// and Alltoall. Data-movement collectives gain compression by compressing
// once at the source and decompressing once at each sink; the computation
// collective (Reduce) additionally gains the homomorphic treatment, with
// partial sums travelling in compressed form up a binomial tree.

// vrank maps a rank into the rotated coordinate system where `root` is 0,
// the standard trick for rooted binomial-tree collectives.
func vrank(rank, root, n int) int { return (rank - root + n) % n }

func unvrank(v, root, n int) int { return (v + root) % n }

// BroadcastPlain sends root's data to every rank through a binomial tree
// (the MPICH algorithm for mid-sized messages) and returns each rank's
// copy. Non-root ranks pass their (ignored) local buffer for its length.
func (c Collectives) BroadcastPlain(r *cluster.Rank, data []float32, root int) ([]float32, error) {
	payload, err := c.bcastBytes(r, func() []byte { return floatbytes.Bytes(data) }, root)
	if err != nil {
		return nil, err
	}
	if r.ID == root {
		out := make([]float32, len(data))
		copy(out, data)
		return out, nil
	}
	return floatbytes.Floats(payload), nil
}

// BroadcastCompressed is the compression-accelerated broadcast: the root
// compresses once (CPR), compressed bytes traverse the tree, and every
// non-root rank decompresses once (DPR) — the C-Coll broadcast design.
func (c Collectives) BroadcastCompressed(r *cluster.Rank, data []float32, root int) ([]float32, error) {
	opt := c.Opt
	var comp []byte
	var cerr error
	payload, err := c.bcastBytes(r, func() []byte {
		c.work(r, cluster.CatCPR, 4*len(data), func() {
			comp, cerr = fzlight.Compress(data, opt.params())
		})
		if cerr != nil {
			return nil
		}
		return comp
	}, root)
	if cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	if r.ID == root {
		if comp == nil {
			return nil, fmt.Errorf("core: broadcast root compression failed")
		}
		out := make([]float32, len(data))
		copy(out, data)
		return out, nil
	}
	var out []float32
	var derr error
	h, err := fzlight.ParseHeader(payload)
	if err != nil {
		return nil, err
	}
	c.work(r, cluster.CatDPR, 4*h.DataLen, func() {
		out, derr = fzlight.Decompress(payload)
	})
	if derr != nil {
		return nil, derr
	}
	return out, nil
}

// bcastBytes moves one opaque payload from root to all ranks along a
// binomial tree. makePayload runs only on the root.
func (c Collectives) bcastBytes(r *cluster.Rank, makePayload func() []byte, root int) ([]byte, error) {
	return bcastBytesG(world(r), makePayload, root)
}

// bcastBytesG is the communicator form of the binomial broadcast; root is
// a group-local id. The hierarchical collectives run it over one node's
// members with the leader as root.
func bcastBytesG(g comm, makePayload func() []byte, root int) ([]byte, error) {
	n := g.n()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("core: broadcast root %d out of range", root)
	}
	var payload []byte
	if g.id == root {
		payload = makePayload()
		if payload == nil && n > 1 {
			return nil, fmt.Errorf("core: broadcast payload construction failed")
		}
	}
	if n == 1 {
		return payload, nil
	}
	v := vrank(g.id, root, n)
	// Receive from the parent: v with its lowest set bit cleared (the
	// MPICH binomial schedule).
	if v != 0 {
		parent := v & (v - 1)
		got, err := g.rawRecv(unvrank(parent, root, n))
		if err != nil {
			return nil, err
		}
		payload = got
	}
	// Forward to children v|mask for every mask below v's lowest set bit.
	for mask := nextPow2(n) >> 1; mask > 0; mask >>= 1 {
		child := v | mask
		if mask < lowbitFloor(v) && child < n {
			if err := g.rawSend(unvrank(child, root, n), payload); err != nil {
				return nil, err
			}
		}
	}
	return payload, nil
}

// lowbitFloor returns the value of v's lowest set bit, or a large sentinel
// for v == 0 (the root forwards to every level).
func lowbitFloor(v int) int {
	if v == 0 {
		return 1 << 30
	}
	return v & -v
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// GatherPlain collects every rank's data at root (concatenated in rank
// order). Only the root receives a non-nil result.
func (c Collectives) GatherPlain(r *cluster.Rank, data []float32, root int) ([][]float32, error) {
	payloads, err := c.gatherBytes(r, floatbytes.Bytes(data), root)
	if err != nil || payloads == nil {
		return nil, err
	}
	out := make([][]float32, len(payloads))
	for i, p := range payloads {
		out[i] = floatbytes.Floats(p)
	}
	return out, nil
}

// GatherCompressed compresses each rank's contribution once (CPR at the
// leaf) and decompresses everything at the root (N−1 DPR).
func (c Collectives) GatherCompressed(r *cluster.Rank, data []float32, root int) ([][]float32, error) {
	opt := c.Opt
	var comp []byte
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(data), func() {
		comp, cerr = fzlight.Compress(data, opt.params())
	})
	if cerr != nil {
		return nil, cerr
	}
	payloads, err := c.gatherBytes(r, comp, root)
	if err != nil || payloads == nil {
		return nil, err
	}
	out := make([][]float32, len(payloads))
	for i, p := range payloads {
		if i == r.ID {
			own := make([]float32, len(data))
			copy(own, data)
			out[i] = own
			continue
		}
		h, err := fzlight.ParseHeader(p)
		if err != nil {
			return nil, err
		}
		dst := make([]float32, h.DataLen)
		var derr error
		c.work(r, cluster.CatDPR, 4*h.DataLen, func() {
			derr = fzlight.DecompressInto(p, dst)
		})
		if derr != nil {
			return nil, derr
		}
		out[i] = dst
	}
	return out, nil
}

// gatherBytes funnels one payload per rank to the root along a binomial
// tree (children fold their subtree's payloads into the parent). Returns
// payloads indexed by origin rank at the root, nil elsewhere.
func (c Collectives) gatherBytes(r *cluster.Rank, own []byte, root int) ([][]byte, error) {
	n := r.N
	if root < 0 || root >= n {
		return nil, fmt.Errorf("core: gather root %d out of range", root)
	}
	collected := map[int][]byte{r.ID: own}
	if n > 1 {
		v := vrank(r.ID, root, n)
		// Receive from children (low bits below our lowest set bit).
		for mask := 1; mask < n; mask <<= 1 {
			if mask >= lowbitFloor(v) {
				break
			}
			child := v | mask
			if child >= n {
				continue
			}
			blob, err := r.Recv(unvrank(child, root, n))
			if err != nil {
				return nil, err
			}
			if err := decodeGatherBlob(blob, collected); err != nil {
				return nil, err
			}
		}
		// Send the folded subtree to the parent.
		if v != 0 {
			parent := v & (v - 1)
			if err := r.Send(unvrank(parent, root, n), encodeGatherBlob(collected)); err != nil {
				return nil, err
			}
			return nil, nil
		}
	}
	out := make([][]byte, n)
	for origin, p := range collected {
		out[origin] = p
	}
	return out, nil
}

// encodeGatherBlob packs {origin, payload} pairs into one message.
func encodeGatherBlob(m map[int][]byte) []byte {
	size := 4
	for _, p := range m {
		size += 8 + len(p)
	}
	out := make([]byte, 0, size)
	out = appendU32(out, uint32(len(m)))
	for origin, p := range m {
		out = appendU32(out, uint32(origin))
		out = appendU32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

func decodeGatherBlob(blob []byte, into map[int][]byte) error {
	if len(blob) < 4 {
		return fmt.Errorf("core: short gather blob")
	}
	count := int(readU32(blob))
	o := 4
	for k := 0; k < count; k++ {
		if len(blob) < o+8 {
			return fmt.Errorf("core: truncated gather blob")
		}
		origin := int(readU32(blob[o:]))
		plen := int(readU32(blob[o+4:]))
		o += 8
		if len(blob) < o+plen {
			return fmt.Errorf("core: truncated gather payload")
		}
		into[origin] = blob[o : o+plen]
		o += plen
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// AllgatherPlain gives every rank every other rank's data (rank-indexed).
func (c Collectives) AllgatherPlain(r *cluster.Rank, data []float32) ([][]float32, error) {
	gathered, err := allgatherBytes(world(r), floatbytes.Bytes(data), false)
	if err != nil {
		return nil, err
	}
	out := make([][]float32, len(gathered))
	for i, p := range gathered {
		if i == r.ID {
			own := make([]float32, len(data))
			copy(own, data)
			out[i] = own
			continue
		}
		out[i] = floatbytes.Floats(p)
	}
	return out, nil
}

// AllgatherCompressed is the C-Coll allgather: compress once, ring the
// compressed bytes, decompress N−1 received chunks.
func (c Collectives) AllgatherCompressed(r *cluster.Rank, data []float32) ([][]float32, error) {
	opt := c.Opt
	var comp []byte
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(data), func() {
		comp, cerr = fzlight.Compress(data, opt.params())
	})
	if cerr != nil {
		return nil, cerr
	}
	gathered, err := allgatherBytes(world(r), comp, true)
	if err != nil {
		return nil, err
	}
	out := make([][]float32, len(gathered))
	for i, p := range gathered {
		if i == r.ID {
			own := make([]float32, len(data))
			copy(own, data)
			out[i] = own
			continue
		}
		h, err := fzlight.ParseHeader(p)
		if err != nil {
			return nil, err
		}
		dst := make([]float32, h.DataLen)
		var derr error
		c.work(r, cluster.CatDPR, 4*h.DataLen, func() {
			derr = fzlight.DecompressInto(p, dst)
		})
		if derr != nil {
			return nil, derr
		}
		out[i] = dst
	}
	return out, nil
}

// ReducePlain sums data across ranks at the root via a binomial tree of
// raw partial sums. Only the root receives a non-nil result.
func (c Collectives) ReducePlain(r *cluster.Rank, data []float32, root int) ([]float32, error) {
	n := r.N
	if root < 0 || root >= n {
		return nil, fmt.Errorf("core: reduce root %d out of range", root)
	}
	acc := make([]float32, len(data))
	copy(acc, data)
	v := vrank(r.ID, root, n)
	for mask := 1; mask < n; mask <<= 1 {
		if mask >= lowbitFloor(v) {
			break
		}
		child := v | mask
		if child >= n {
			continue
		}
		got, err := r.Recv(unvrank(child, root, n))
		if err != nil {
			return nil, err
		}
		var recvVals []float32
		r.Quiesce(func() { recvVals = floatbytes.Floats(got) })
		c.work(r, cluster.CatCPT, 4*len(acc), func() { addInto(acc, recvVals) })
	}
	if v != 0 {
		parent := v & (v - 1)
		var payload []byte
		r.Quiesce(func() { payload = floatbytes.Bytes(acc) })
		if err := r.Send(unvrank(parent, root, n), payload); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return acc, nil
}

// ReduceHZ is the homomorphic rooted reduce: each rank compresses once,
// partial sums combine in compressed form at every tree level (HPR), and
// only the root decompresses — the rooted analogue of the paper's
// Reduce_scatter co-design, cost CPR + log2(N)·HPR + 1·DPR on the
// critical path.
func (c Collectives) ReduceHZ(r *cluster.Rank, data []float32, root int) ([]float32, *hzdyn.Stats, error) {
	n := r.N
	if root < 0 || root >= n {
		return nil, nil, fmt.Errorf("core: reduce root %d out of range", root)
	}
	opt := c.Opt
	stats := &hzdyn.Stats{}
	var acc []byte
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(data), func() {
		acc, cerr = fzlight.Compress(data, opt.params())
	})
	if cerr != nil {
		return nil, nil, cerr
	}
	v := vrank(r.ID, root, n)
	for mask := 1; mask < n; mask <<= 1 {
		if mask >= lowbitFloor(v) {
			break
		}
		child := v | mask
		if child >= n {
			continue
		}
		got, err := r.Recv(unvrank(child, root, n))
		if err != nil {
			return nil, nil, err
		}
		var herr error
		c.work(r, cluster.CatHPR, 4*len(data), func() {
			var st hzdyn.Stats
			acc, st, herr = hzdyn.Add(acc, got)
			stats.Accumulate(st)
		})
		if herr != nil {
			return nil, nil, herr
		}
	}
	if v != 0 {
		parent := v & (v - 1)
		if err := r.Send(unvrank(parent, root, n), acc); err != nil {
			return nil, nil, err
		}
		return nil, stats, nil
	}
	var out []float32
	var derr error
	c.work(r, cluster.CatDPR, 4*len(data), func() {
		out, derr = fzlight.Decompress(acc)
	})
	if derr != nil {
		return nil, nil, derr
	}
	return out, stats, nil
}

// AlltoallPlain performs the personalized exchange: rank i's block j goes
// to rank j. data must contain N equal blocks (BlockBounds layout);
// returns the N received blocks indexed by source rank.
func (c Collectives) AlltoallPlain(r *cluster.Rank, data []float32) ([][]float32, error) {
	return c.alltoall(r, data, false)
}

// AlltoallCompressed compresses each outgoing block (the online-compression
// point-to-point design the paper's related work covers).
func (c Collectives) AlltoallCompressed(r *cluster.Rank, data []float32) ([][]float32, error) {
	return c.alltoall(r, data, true)
}

func (c Collectives) alltoall(r *cluster.Rank, data []float32, compressed bool) ([][]float32, error) {
	n := r.N
	opt := c.Opt
	out := make([][]float32, n)
	// Own block.
	s, e := BlockBounds(len(data), n, r.ID)
	own := make([]float32, e-s)
	copy(own, data[s:e])
	out[r.ID] = own
	// Pairwise exchange schedule: in round k, exchange with rank^... for
	// non-power-of-two we use the simple (i+k) mod n pattern.
	for k := 1; k < n; k++ {
		to := (r.ID + k) % n
		from := (r.ID - k + n) % n
		bs, be := BlockBounds(len(data), n, to)
		var payload []byte
		if compressed {
			var cerr error
			c.work(r, cluster.CatCPR, 4*(be-bs), func() {
				payload, cerr = fzlight.Compress(data[bs:be], opt.params())
			})
			if cerr != nil {
				return nil, cerr
			}
		} else {
			r.Quiesce(func() { payload = floatbytes.Bytes(data[bs:be]) })
		}
		got, err := ringSendRecv(r, to, payload, from, compressed)
		if err != nil {
			return nil, err
		}
		if compressed {
			h, err := fzlight.ParseHeader(got)
			if err != nil {
				return nil, err
			}
			dst := make([]float32, h.DataLen)
			var derr error
			c.work(r, cluster.CatDPR, 4*h.DataLen, func() {
				derr = fzlight.DecompressInto(got, dst)
			})
			if derr != nil {
				return nil, derr
			}
			out[from] = dst
		} else {
			var vals []float32
			r.Quiesce(func() { vals = floatbytes.Floats(got) })
			out[from] = vals
		}
	}
	return out, nil
}
