package core

import (
	"hzccl/internal/cluster"
	"hzccl/internal/telemetry"
)

// Telemetry for the collective hot paths. Every compute stage routed
// through Collectives.work records a real wall-clock span into the
// histogram of its breakdown category (independently of the virtual-time
// charge, which may be modeled via Rates), and every ring exchange counts
// the bytes it put on the wire, split into compressed and raw so the
// bytes-saved-on-the-ring figure falls out of two counters.
var (
	mStageCompressNS   = telemetry.H("core.stage.compress_ns", telemetry.DurationBuckets())
	mStageDecompressNS = telemetry.H("core.stage.decompress_ns", telemetry.DurationBuckets())
	mStageReduceRawNS  = telemetry.H("core.stage.reduce_raw_ns", telemetry.DurationBuckets())
	mStageReduceHomNS  = telemetry.H("core.stage.reduce_homomorphic_ns", telemetry.DurationBuckets())
	mStageOtherNS      = telemetry.H("core.stage.other_ns", telemetry.DurationBuckets())
	mStageSendRecvNS   = telemetry.H("core.stage.sendrecv_ns", telemetry.DurationBuckets())

	mRingSteps           = telemetry.C("core.ring.steps")
	mRingCompressedBytes = telemetry.C("core.ring.compressed_bytes")
	mRingRawBytes        = telemetry.C("core.ring.raw_bytes")
)

// stageHist maps a breakdown category to its span histogram.
func stageHist(cat cluster.Category) *telemetry.Histogram {
	switch cat {
	case cluster.CatCPR:
		return mStageCompressNS
	case cluster.CatDPR:
		return mStageDecompressNS
	case cluster.CatCPT:
		return mStageReduceRawNS
	case cluster.CatHPR:
		return mStageReduceHomNS
	}
	return mStageOtherNS
}

// countRingBytes attributes one ring exchange's outgoing payload to the
// compressed or raw wire-byte counter.
func countRingBytes(payload []byte, compressed bool) {
	mRingSteps.Inc()
	if compressed {
		mRingCompressedBytes.Add(int64(len(payload)))
	} else {
		mRingRawBytes.Add(int64(len(payload)))
	}
}

// ringSendRecv wraps Rank.SendRecv with a wall-clock span and wire-byte
// accounting. compressed says whether payload is an fZ-light container
// (vs raw float bytes).
func ringSendRecv(r *cluster.Rank, to int, payload []byte, from int, compressed bool) ([]byte, error) {
	sp := mStageSendRecvNS.Start()
	got, err := r.SendRecv(to, payload, from)
	sp.End()
	if err == nil {
		countRingBytes(payload, compressed)
	}
	return got, err
}

// ringSend posts one ring send with wire-byte accounting. Split from
// ringRecv so the pipelined collectives can slide compute between the
// send and the matching receive.
func ringSend(r *cluster.Rank, to int, payload []byte, compressed bool) error {
	if err := r.Send(to, payload); err != nil {
		return err
	}
	countRingBytes(payload, compressed)
	return nil
}

// ringRecv completes one ring exchange, spanning the blocking receive.
func ringRecv(r *cluster.Rank, from int) ([]byte, error) {
	sp := mStageSendRecvNS.Start()
	got, err := r.Recv(from)
	sp.End()
	return got, err
}
