package core

import (
	"fmt"

	"hzccl/internal/cluster"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// Two-level hierarchical collectives. Ranks group into "nodes"
// (cluster.Config.Topology); the schedule exploits the fact that
// intra-node links are effectively free next to inter-node ones:
//
//  1. ring reduce-scatter among the node's members, so each member holds
//     a fully node-reduced block,
//  2. members ship their blocks to the node leader, which assembles the
//     node-partial vector,
//  3. ring allreduce among the node leaders only — the sole stage that
//     crosses node boundaries moves each byte once per leader pair
//     instead of once per rank pair,
//  4. binomial broadcast of the finished vector inside each node (or, for
//     reduce-scatter, a scatter of just each member's owned block).
//
// With no topology configured, Normalize yields a single node holding
// every rank: stage 3 degenerates to a 1-rank no-op and the schedule is a
// ring reduce-scatter plus gather/broadcast — correct, if pointless, so
// the cost model never selects it for flat clusters.
//
// Compression crosses every stage boundary honestly: for the C-Coll and
// hZCCL backends the member→leader blocks and the leader→member result
// travel compressed (CPR at the producer, DPR at the consumer), and stage
// 3 runs the backend's own ring allreduce among the leaders.

// hierComms splits the world into this rank's intra-node communicator and
// (for leaders) the inter-node leader communicator. leader is false — and
// inter unusable — for non-leader ranks.
func hierComms(r *cluster.Rank) (intra comm, inter comm, leader bool) {
	topo := r.Config().Topology.Normalize(r.N)
	node := topo.NodeOf(r.ID)
	intra, _ = subcomm(r, topo.Members(node))
	inter, leader = subcomm(r, topo.Leaders())
	return intra, inter, leader
}

// codec is one backend's wire form for the hierarchical stage boundaries:
// raw float bits for Plain, fzlight-compressed for C-Coll and hZCCL.
type codec struct {
	encode func(vals []float32) ([]byte, error)
	decode func(payload []byte, dst []float32) error
	// compressed labels payloads for the wire-byte telemetry split.
	compressed bool
}

func rawCodec() codec {
	return codec{
		encode: func(vals []float32) ([]byte, error) { return floatbytes.Bytes(vals), nil },
		decode: func(payload []byte, dst []float32) error {
			if floatbytes.ToFloat32(dst, payload) != len(dst) {
				return fmt.Errorf("core: hierarchical block size mismatch")
			}
			return nil
		},
	}
}

// compressedCodec charges CPR on encode and DPR on decode to the
// performing rank.
func (c Collectives) compressedCodec(r *cluster.Rank) codec {
	opt := c.Opt
	return codec{
		compressed: true,
		encode: func(vals []float32) ([]byte, error) {
			var out []byte
			var cerr error
			c.work(r, cluster.CatCPR, 4*len(vals), func() {
				out, cerr = fzlight.Compress(vals, opt.params())
			})
			return out, cerr
		},
		decode: func(payload []byte, dst []float32) error {
			var derr error
			c.work(r, cluster.CatDPR, 4*len(dst), func() {
				derr = fzlight.DecompressInto(payload, dst)
			})
			return derr
		},
	}
}

// gatherNodePartial runs stage 2: every member sends its reduced block to
// the leader (local id 0), which assembles the full node-partial vector.
// Non-leader ranks return nil.
func gatherNodePartial(g comm, dataLen int, block []float32, cd codec) ([]float32, error) {
	m := g.n()
	if m == 1 {
		out := make([]float32, dataLen)
		copy(out, block)
		return out, nil
	}
	if g.id != 0 {
		payload, err := cd.encode(block)
		if err != nil {
			return nil, err
		}
		if err := g.send(0, payload, cd.compressed); err != nil {
			return nil, err
		}
		return nil, nil
	}
	partial := make([]float32, dataLen)
	s, e := BlockBounds(dataLen, m, BlockOwned(0, m))
	copy(partial[s:e], block)
	for j := 1; j < m; j++ {
		payload, err := g.recv(j)
		if err != nil {
			return nil, err
		}
		bs, be := BlockBounds(dataLen, m, BlockOwned(j, m))
		if err := cd.decode(payload, partial[bs:be]); err != nil {
			return nil, fmt.Errorf("core: leader %d assembling member %d block: %w", g.r.ID, j, err)
		}
	}
	return partial, nil
}

// bcastResult runs stage 4 of the allreduce: the leader encodes the
// finished vector once and the binomial tree fans it out; members decode.
func bcastResult(g comm, full []float32, dataLen int, leader bool, cd codec) ([]float32, error) {
	var cerr error
	payload, err := bcastBytesG(g, func() []byte {
		var p []byte
		p, cerr = cd.encode(full)
		if cerr != nil {
			return nil
		}
		return p
	}, 0)
	if cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	if leader {
		return full, nil
	}
	out := make([]float32, dataLen)
	if err := cd.decode(payload, out); err != nil {
		return nil, err
	}
	return out, nil
}

// scatterOwnedBlocks runs stage 4 of the reduce-scatter: the leader sends
// each member only the block that member owns under the *world*
// reduce-scatter contract (block BlockOwned(globalRank, worldN)), instead
// of broadcasting the whole vector.
func scatterOwnedBlocks(g comm, full []float32, dataLen int, cd codec) ([]float32, error) {
	r := g.r
	ownBlock := func(global int) (int, int) {
		return BlockBounds(dataLen, r.N, BlockOwned(global, r.N))
	}
	if g.id == 0 {
		for j := 1; j < g.n(); j++ {
			s, e := ownBlock(g.global(j))
			payload, err := cd.encode(full[s:e])
			if err != nil {
				return nil, err
			}
			if err := g.send(j, payload, cd.compressed); err != nil {
				return nil, err
			}
		}
		s, e := ownBlock(r.ID)
		out := make([]float32, e-s)
		copy(out, full[s:e])
		return out, nil
	}
	payload, err := g.recv(0)
	if err != nil {
		return nil, err
	}
	s, e := ownBlock(r.ID)
	out := make([]float32, e-s)
	if err := cd.decode(payload, out); err != nil {
		return nil, err
	}
	return out, nil
}

// hierPartial runs stages 1–3 generically: intraRS produces each member's
// node-reduced block, the blocks gather at the leader, and interAR reduces
// the node partials across leaders. Non-leaders return full == nil.
func hierPartial(r *cluster.Rank, data []float32, cd codec,
	intraRS func(g comm, data []float32) ([]float32, error),
	interAR func(g comm, data []float32) ([]float32, error)) (intra comm, full []float32, leader bool, err error) {
	intra, inter, leader := hierComms(r)
	block, err := intraRS(intra, data)
	if err != nil {
		return intra, nil, leader, err
	}
	partial, err := gatherNodePartial(intra, len(data), block, cd)
	if err != nil {
		return intra, nil, leader, err
	}
	if leader {
		full, err = interAR(inter, partial)
		if err != nil {
			return intra, nil, leader, err
		}
	}
	return intra, full, leader, nil
}

// ---------------------------------------------------------------------------
// Plain
// ---------------------------------------------------------------------------

// AllreduceHierPlain is the hierarchical allreduce for the Plain backend.
func (c Collectives) AllreduceHierPlain(r *cluster.Rank, data []float32) ([]float32, error) {
	cd := rawCodec()
	intra, full, leader, err := hierPartial(r, data, cd, c.reduceScatterPlainG, c.allreducePlainG)
	if err != nil {
		return nil, err
	}
	return bcastResult(intra, full, len(data), leader, cd)
}

// ReduceScatterHierPlain is the hierarchical reduce-scatter for the Plain
// backend: same as the allreduce through stage 3, then the leader
// scatters each member only its owned world block.
func (c Collectives) ReduceScatterHierPlain(r *cluster.Rank, data []float32) ([]float32, error) {
	cd := rawCodec()
	intra, full, _, err := hierPartial(r, data, cd, c.reduceScatterPlainG, c.allreducePlainG)
	if err != nil {
		return nil, err
	}
	return scatterOwnedBlocks(intra, full, len(data), cd)
}

// ---------------------------------------------------------------------------
// C-Coll
// ---------------------------------------------------------------------------

// AllreduceHierCColl is the hierarchical C-Coll allreduce: DOC rings at
// both levels, compressed stage boundaries.
func (c Collectives) AllreduceHierCColl(r *cluster.Rank, data []float32) ([]float32, error) {
	cd := c.compressedCodec(r)
	intra, full, leader, err := hierPartial(r, data, cd, c.reduceScatterCCollG, c.allreduceCCollG)
	if err != nil {
		return nil, err
	}
	return bcastResult(intra, full, len(data), leader, cd)
}

// ReduceScatterHierCColl is the hierarchical C-Coll reduce-scatter.
func (c Collectives) ReduceScatterHierCColl(r *cluster.Rank, data []float32) ([]float32, error) {
	cd := c.compressedCodec(r)
	intra, full, _, err := hierPartial(r, data, cd, c.reduceScatterCCollG, c.allreduceCCollG)
	if err != nil {
		return nil, err
	}
	return scatterOwnedBlocks(intra, full, len(data), cd)
}

// ---------------------------------------------------------------------------
// hZCCL
// ---------------------------------------------------------------------------

// hierHZStages adapts the homomorphic ring stages to hierPartial's
// signature, accumulating hzdyn stats across both levels.
func (c Collectives) hierHZStages(stats *hzdyn.Stats) (
	intraRS func(g comm, data []float32) ([]float32, error),
	interAR func(g comm, data []float32) ([]float32, error)) {
	intraRS = func(g comm, data []float32) ([]float32, error) {
		block, st, err := c.reduceScatterHZG(g, data)
		if err != nil {
			return nil, err
		}
		stats.Accumulate(*st)
		return block, nil
	}
	interAR = func(g comm, data []float32) ([]float32, error) {
		full, st, err := c.allreduceHZG(g, data)
		if err != nil {
			return nil, err
		}
		stats.Accumulate(*st)
		return full, nil
	}
	return intraRS, interAR
}

// AllreduceHierHZ is the hierarchical hZCCL allreduce: the intra-node
// reduce-scatter and the inter-node leader allreduce both run the
// homomorphic ring, and the vector crosses the two stage boundaries
// compressed.
func (c Collectives) AllreduceHierHZ(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	stats := &hzdyn.Stats{}
	cd := c.compressedCodec(r)
	intraRS, interAR := c.hierHZStages(stats)
	intra, full, leader, err := hierPartial(r, data, cd, intraRS, interAR)
	if err != nil {
		return nil, nil, err
	}
	out, err := bcastResult(intra, full, len(data), leader, cd)
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// ReduceScatterHierHZ is the hierarchical hZCCL reduce-scatter.
func (c Collectives) ReduceScatterHierHZ(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	stats := &hzdyn.Stats{}
	cd := c.compressedCodec(r)
	intraRS, interAR := c.hierHZStages(stats)
	intra, full, _, err := hierPartial(r, data, cd, intraRS, interAR)
	if err != nil {
		return nil, nil, err
	}
	out, err := scatterOwnedBlocks(intra, full, len(data), cd)
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}
