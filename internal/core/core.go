// Package core implements the collective communication algorithms at the
// heart of hZCCL (paper §III-C): ring Reduce_scatter, ring Allgather and
// ring Allreduce in three flavours —
//
//   - Plain: no compression, the original MPI baseline.
//   - CColl: the C-Coll baseline, compression-accelerated collectives with
//     the traditional decompress-operate-compress (DOC) workflow. Every
//     round pays CPR + DPR + CPT.
//   - HZ: the hZCCL co-design. Each rank compresses its N blocks once,
//     every subsequent round reduces *compressed* blocks homomorphically
//     (HPR), and Allreduce additionally skips the decompression at the end
//     of Reduce_scatter and the compression at the start of Allgather by
//     moving compressed blocks straight through the Allgather ring.
//
// All three run on the cluster substrate, move real data and charge
// virtual time per category, so collective times, speedups and runtime
// breakdowns (Figures 2, 7–12; Table VII) come from the same code paths.
package core

import (
	"fmt"
	"sync"

	"hzccl/internal/bufpool"
	"hzccl/internal/cluster"
	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
)

// Mode selects the compression threading mode of a collective run.
type Mode int

// Modes, matching the paper's "single-thread" and "multi-thread" variants.
const (
	SingleThread Mode = iota
	MultiThread
)

func (m Mode) String() string {
	if m == MultiThread {
		return "multi-thread"
	}
	return "single-thread"
}

// Options configures the compression-accelerated collectives.
type Options struct {
	// ErrorBound is the absolute error bound handed to fZ-light.
	ErrorBound float64
	// BlockSize is the fZ-light small-block length (0 = default 32).
	BlockSize int
	// Mode selects single- or multi-thread compression.
	Mode Mode
	// MTThreads is the compressor chunk count in multi-thread mode
	// (paper: 18 threads, one socket). Default 18.
	MTThreads int
	// MTSpeedup models the parallel speedup of compression-class work in
	// multi-thread mode. Measured single-core wall time is divided by it.
	// Default 12 (18 threads at ~2/3 efficiency, the memory-bound scaling
	// Broadwell STREAM shows). Only used when Mode == MultiThread.
	MTSpeedup float64
	// Segments splits each C-Coll round's block into this many pieces so
	// compression, transfer and decompression pipeline against each other
	// (the overlap §III-A attributes to C-Coll). ≤ 1 disables
	// segmentation. Used by the *Segmented collective variants.
	Segments int
	// Rates, when non-nil, switches compute charging from measured wall
	// time to a calibrated model: each operation costs rawBytes/rate
	// seconds (divided by MTSpeedup in multi-thread mode). The real work
	// still executes — only its virtual-time charge is modeled. Use this
	// for large rank counts, where per-call measurement overhead on tiny
	// blocks would otherwise dominate the single-thread-measured times.
	Rates *Rates
}

// Rates holds calibrated component throughputs in raw bytes per second
// (single-thread). See costmodel.Measure for one way to obtain them.
type Rates struct {
	CPR float64 // compression
	DPR float64 // decompression
	CPT float64 // raw element-wise sum
	HPR float64 // homomorphic reduction
}

func (o Options) withDefaults() Options {
	if o.MTThreads == 0 {
		o.MTThreads = 18
	}
	if o.MTSpeedup == 0 {
		o.MTSpeedup = 12
	}
	return o
}

func (o Options) threads() int {
	if o.Mode == MultiThread {
		return o.MTThreads
	}
	return 1
}

// scale converts measured wall time into charged virtual time for
// compression-class work.
func (o Options) scale() float64 {
	if o.Mode == MultiThread {
		return 1 / o.MTSpeedup
	}
	return 1
}

// work executes f (real work over rawBytes of raw-equivalent data) and
// charges virtual time for it: measured wall time when no Rates are set,
// or rawBytes/rate otherwise. Multi-thread mode divides either charge by
// MTSpeedup.
func (c Collectives) work(r *cluster.Rank, cat cluster.Category, rawBytes int, f func()) {
	o := c.Opt
	inner := f
	h := stageHist(cat)
	f = func() {
		sp := h.Start()
		inner()
		sp.End()
	}
	if o.Rates == nil {
		r.TimeScaled(cat, o.scale(), f)
		return
	}
	var rate float64
	switch cat {
	case cluster.CatCPR:
		rate = o.Rates.CPR
	case cluster.CatDPR:
		rate = o.Rates.DPR
	case cluster.CatCPT:
		rate = o.Rates.CPT
	case cluster.CatHPR:
		rate = o.Rates.HPR
	default:
		rate = o.Rates.CPT
	}
	r.Quiesce(f)
	if rate > 0 {
		r.Elapse(cat, float64(rawBytes)/rate*o.scale())
	}
}

func (o Options) params() fzlight.Params {
	return fzlight.Params{ErrorBound: o.ErrorBound, BlockSize: o.BlockSize, Threads: o.threads()}
}

// Collectives bundles Options; its methods are the collective operations.
// Each method must be called from within a cluster rank body, by every
// rank, with equal-length data.
type Collectives struct {
	Opt Options
}

// New returns a Collectives with defaulted options.
func New(opt Options) Collectives { return Collectives{Opt: opt.withDefaults()} }

// BlockOwned returns the index of the reduced block rank `rank` holds
// after a ring Reduce_scatter over n ranks.
func BlockOwned(rank, n int) int { return (rank + 1) % n }

// BlockBounds returns the [start,end) element range of reduce-scatter
// block k when dataLen elements are partitioned across n ranks.
func BlockBounds(dataLen, n, k int) (int, int) { return fzlight.ChunkBounds(dataLen, n, k) }

// addInto accumulates src into dst element-wise.
func addInto(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

// ---------------------------------------------------------------------------
// Plain (no compression) — the "original MPI" baseline.
// ---------------------------------------------------------------------------

// ReduceScatterPlain performs a ring reduce-scatter of data (summed
// element-wise across ranks) and returns this rank's fully reduced block
// (block index BlockOwned(rank, N)).
func (c Collectives) ReduceScatterPlain(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.reduceScatterPlainG(world(r), data)
}

func (c Collectives) reduceScatterPlainG(g comm, data []float32) ([]float32, error) {
	n := g.n()
	r := g.r
	if n == 1 {
		out := make([]float32, len(data))
		copy(out, data)
		return out, nil
	}
	var acc []float32
	r.Quiesce(func() {
		acc = make([]float32, len(data))
		copy(acc, data)
	})
	next, prev := (g.id+1)%n, (g.id-1+n)%n
	for step := 0; step < n-1; step++ {
		sendIdx := (g.id - step + n) % n
		recvIdx := (g.id - step - 1 + n) % n
		s, e := BlockBounds(len(data), n, sendIdx)
		var payload []byte
		r.Quiesce(func() { payload = floatbytes.Bytes(acc[s:e]) })
		got, err := g.sendRecv(next, payload, prev, false)
		if err != nil {
			return nil, err
		}
		rs, re := BlockBounds(len(data), n, recvIdx)
		var recvVals []float32
		r.Quiesce(func() { recvVals = floatbytes.Floats(got) })
		if len(recvVals) != re-rs {
			return nil, fmt.Errorf("core: reduce-scatter size mismatch at rank %d step %d", r.ID, step)
		}
		c.work(r, cluster.CatCPT, 4*(re-rs), func() { addInto(acc[rs:re], recvVals) })
	}
	s, e := BlockBounds(len(data), n, BlockOwned(g.id, n))
	out := make([]float32, e-s)
	copy(out, acc[s:e])
	return out, nil
}

// allgatherBytes runs a ring allgather of opaque payloads over the
// communicator. The result maps origin local id → payload (own entry
// included). compressed labels the payloads for the wire-byte telemetry
// split.
func allgatherBytes(g comm, own []byte, compressed bool) ([][]byte, error) {
	n := g.n()
	out := make([][]byte, n)
	out[g.id] = own
	if n == 1 {
		return out, nil
	}
	next, prev := (g.id+1)%n, (g.id-1+n)%n
	cur := own
	for step := 0; step < n-1; step++ {
		got, err := g.sendRecv(next, cur, prev, compressed)
		if err != nil {
			return nil, err
		}
		origin := (g.id - step - 1 + n) % n
		out[origin] = got
		cur = got
	}
	return out, nil
}

// AllreducePlain is the original MPI ring allreduce: plain reduce-scatter
// followed by plain allgather of the raw reduced blocks.
func (c Collectives) AllreducePlain(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.allreducePlainG(world(r), data)
}

func (c Collectives) allreducePlainG(g comm, data []float32) ([]float32, error) {
	r := g.r
	block, err := c.reduceScatterPlainG(g, data)
	if err != nil {
		return nil, err
	}
	var own []byte
	r.Quiesce(func() { own = floatbytes.Bytes(block) })
	gathered, err := allgatherBytes(g, own, false)
	if err != nil {
		return nil, err
	}
	return assembleBlocks(g, len(data), gathered, func(payload []byte, dst []float32) error {
		var bad bool
		r.Quiesce(func() { bad = floatbytes.ToFloat32(dst, payload) != len(dst) })
		if bad {
			return fmt.Errorf("core: allgather block size mismatch")
		}
		return nil
	})
}

// assembleBlocks reconstructs the full output array from per-origin
// payloads, decoding each into the block the origin local id owned.
func assembleBlocks(g comm, dataLen int, gathered [][]byte,
	decode func(payload []byte, dst []float32) error) ([]float32, error) {
	out := make([]float32, dataLen)
	for origin, payload := range gathered {
		k := BlockOwned(origin, g.n())
		s, e := BlockBounds(dataLen, g.n(), k)
		if err := decode(payload, out[s:e]); err != nil {
			return nil, fmt.Errorf("core: rank %d decoding block %d: %w", g.r.ID, k, err)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// C-Coll — compression-accelerated collectives with the DOC workflow.
// ---------------------------------------------------------------------------

// ReduceScatterCColl is the C-Coll ring reduce-scatter: each round
// compresses the outgoing block (CPR), decompresses the incoming block
// (DPR) and reduces it in the raw domain (CPT) — the paper's
// T = (N−1)(CPR + DPR + CPT).
func (c Collectives) ReduceScatterCColl(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.reduceScatterCCollG(world(r), data)
}

func (c Collectives) reduceScatterCCollG(g comm, data []float32) ([]float32, error) {
	n := g.n()
	r := g.r
	if n == 1 {
		out := make([]float32, len(data))
		copy(out, data)
		return out, nil
	}
	params := c.Opt.params()
	acc := bufpool.Float32s(len(data))
	defer bufpool.PutFloat32s(acc)
	r.Quiesce(func() { copy(acc, data) })
	next, prev := (g.id+1)%n, (g.id-1+n)%n
	for step := 0; step < n-1; step++ {
		sendIdx := (g.id - step + n) % n
		recvIdx := (g.id - step - 1 + n) % n
		s, e := BlockBounds(len(data), n, sendIdx)
		payload := bufpool.Bytes(fzlight.CompressBound(e-s, params))
		var m int
		var cerr error
		c.work(r, cluster.CatCPR, 4*(e-s), func() {
			m, cerr = fzlight.CompressInto(payload, acc[s:e], params)
		})
		if cerr != nil {
			bufpool.PutBytes(payload)
			return nil, cerr
		}
		got, err := g.sendRecv(next, payload[:m], prev, true)
		// Send copied the payload (and the reliable layer keeps its own
		// pristine copy), so the buffer is dead either way.
		bufpool.PutBytes(payload)
		if err != nil {
			return nil, err
		}
		rs, re := BlockBounds(len(data), n, recvIdx)
		recvVals := bufpool.Float32s(re - rs)
		var derr error
		c.work(r, cluster.CatDPR, 4*(re-rs), func() {
			derr = fzlight.DecompressInto(got, recvVals)
		})
		if derr != nil {
			bufpool.PutFloat32s(recvVals)
			return nil, derr
		}
		c.work(r, cluster.CatCPT, 4*(re-rs), func() { addInto(acc[rs:re], recvVals) })
		bufpool.PutFloat32s(recvVals)
		bufpool.PutBytes(got)
	}
	s, e := BlockBounds(len(data), n, BlockOwned(g.id, n))
	out := make([]float32, e-s)
	copy(out, acc[s:e])
	return out, nil
}

// AllreduceCColl is the C-Coll ring allreduce: DOC reduce-scatter, then an
// allgather that compresses the local reduced block once (CPR), moves
// compressed bytes around the ring, and decompresses the N−1 received
// blocks (DPR) — the paper's T_AG = CPR + (N−1)·DPR.
func (c Collectives) AllreduceCColl(r *cluster.Rank, data []float32) ([]float32, error) {
	return c.allreduceCCollG(world(r), data)
}

func (c Collectives) allreduceCCollG(g comm, data []float32) ([]float32, error) {
	block, err := c.reduceScatterCCollG(g, data)
	if err != nil {
		return nil, err
	}
	opt := c.Opt
	var own []byte
	var cerr error
	c.work(g.r, cluster.CatCPR, 4*len(block), func() {
		own, cerr = fzlight.Compress(block, opt.params())
	})
	if cerr != nil {
		return nil, cerr
	}
	return c.allgatherAssembleCompressed(g, own, len(data))
}

// allgatherAssembleCompressed runs the compressed allgather tail shared by
// the C-Coll and hZCCL allreduces: every rank's compressed block travels
// the ring, each origin's payload decompresses into its owned range, and
// the payload buffers (the local one included) recycle through bufpool
// once decoded. Safe because allgatherBytes holds exactly one reference to
// each payload and Send copies on enqueue.
func (c Collectives) allgatherAssembleCompressed(g comm, own []byte, dataLen int) ([]float32, error) {
	gathered, err := allgatherBytes(g, own, true)
	if err != nil {
		return nil, err
	}
	out, err := assembleBlocks(g, dataLen, gathered, func(payload []byte, dst []float32) error {
		var derr error
		c.work(g.r, cluster.CatDPR, 4*len(dst), func() {
			derr = fzlight.DecompressInto(payload, dst)
		})
		return derr
	})
	if err != nil {
		return nil, err
	}
	for _, p := range gathered {
		bufpool.PutBytes(p)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// hZCCL — homomorphic compression-accelerated collectives.
// ---------------------------------------------------------------------------

// reduceScatterHZCompressed runs the hZCCL ring reduce-scatter and stops
// before the final decompression, returning this rank's fully reduced
// block in compressed form. Cost: N·CPR + (N−1)·HPR.
//
// The round-1 compression is pipelined against the ring (paper §III-C):
// the step-0 outgoing block — always block index r.ID — compresses and
// sends first, so the first exchange is already in flight while the
// remaining N−1 blocks compress. The CPR charge is unchanged (it is split
// 1 + (N−1) around the first send); only the send timestamp moves earlier,
// which is exactly the compute/communication overlap the co-design is
// after. Every compressed block lives in a bufpool buffer and recycles the
// moment it is dead: outgoing blocks right after Send (the transport
// copies on enqueue — see cluster.Send — and the reliable layer's
// retransmit window keeps its own pristine copy), received payloads and
// replaced accumulators right after the homomorphic Add consumes them.
// Only the owned block's buffer escapes, to the caller.
func (c Collectives) reduceScatterHZCompressed(g comm, data []float32) ([]byte, *hzdyn.Stats, error) {
	n := g.n()
	r := g.r
	params := c.Opt.params()
	stats := &hzdyn.Stats{}

	cblocks := make([][]byte, n)
	compressBlock := func(k int) error {
		s, e := BlockBounds(len(data), n, k)
		buf := bufpool.Bytes(fzlight.CompressBound(e-s, params))
		m, err := fzlight.CompressInto(buf, data[s:e], params)
		if err != nil {
			bufpool.PutBytes(buf)
			return err
		}
		cblocks[k] = buf[:m]
		return nil
	}

	first := g.id // the block sent at step 0
	fs, fe := BlockBounds(len(data), n, first)
	var cerr error
	c.work(r, cluster.CatCPR, 4*(fe-fs), func() { cerr = compressBlock(first) })
	if cerr != nil {
		return nil, nil, cerr
	}
	if n == 1 {
		return cblocks[0], stats, nil
	}

	next, prev := (g.id+1)%n, (g.id-1+n)%n
	for step := 0; step < n-1; step++ {
		sendIdx := (g.id - step + n) % n
		recvIdx := (g.id - step - 1 + n) % n
		if err := g.send(next, cblocks[sendIdx], true); err != nil {
			return nil, nil, err
		}
		bufpool.PutBytes(cblocks[sendIdx]) // copied on send: dead here
		cblocks[sendIdx] = nil
		if step == 0 {
			// The other N−1 blocks compress while the first exchange is in
			// flight (the remaining N−1 of the N × CPR charge).
			c.work(r, cluster.CatCPR, 4*(len(data)-(fe-fs)), func() {
				cerr = c.compressBlocksExcept(compressBlock, first, n)
			})
			if cerr != nil {
				return nil, nil, cerr
			}
		}
		got, err := g.recv(prev)
		if err != nil {
			return nil, nil, err
		}
		rs, re := BlockBounds(len(data), n, recvIdx)
		var herr error
		c.work(r, cluster.CatHPR, 4*(re-rs), func() {
			out := bufpool.Bytes(hzdyn.AddBound(len(cblocks[recvIdx]), len(got)))
			m, st, err := hzdyn.AddInto(out, cblocks[recvIdx], got)
			if err != nil {
				bufpool.PutBytes(out)
				herr = err
				return
			}
			bufpool.PutBytes(cblocks[recvIdx])
			bufpool.PutBytes(got)
			cblocks[recvIdx] = out[:m]
			stats.Accumulate(st)
		})
		if herr != nil {
			return nil, nil, herr
		}
	}
	return cblocks[BlockOwned(g.id, n)], stats, nil
}

// compressBlocksExcept compresses every reduce-scatter block except
// `first` — concurrently across blocks when virtual-time charging is
// modeled (Options.Rates), since the charge then depends only on byte
// counts and the wall-clock win is free; sequentially when compute time is
// measured, so the measurement stays single-core physical.
func (c Collectives) compressBlocksExcept(compressBlock func(int) error, first, n int) error {
	if c.Opt.Rates == nil || n <= 2 {
		for k := 0; k < n; k++ {
			if k == first {
				continue
			}
			if err := compressBlock(k); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for k := 0; k < n; k++ {
		if k == first {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = compressBlock(k)
		}(k)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// ReduceScatterHZ is the hZCCL ring reduce-scatter (paper cost
// N·CPR + 1·DPR + (N−1)·HPR): compress once, reduce homomorphically, and
// decompress only the final owned block.
func (c Collectives) ReduceScatterHZ(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	return c.reduceScatterHZG(world(r), data)
}

func (c Collectives) reduceScatterHZG(g comm, data []float32) ([]float32, *hzdyn.Stats, error) {
	comp, stats, err := c.reduceScatterHZCompressed(g, data)
	if err != nil {
		return nil, nil, err
	}
	bs, be := BlockBounds(len(data), g.n(), BlockOwned(g.id, g.n()))
	var out []float32
	var derr error
	c.work(g.r, cluster.CatDPR, 4*(be-bs), func() {
		out, derr = fzlight.Decompress(comp)
	})
	bufpool.PutBytes(comp) // exclusively ours, dead after the decode
	if derr != nil {
		return nil, nil, derr
	}
	return out, stats, nil
}

// AllreduceHZ is the fully co-designed hZCCL allreduce: the reduce-scatter
// stage keeps its result compressed (no DPR), the allgather stage sends
// those compressed blocks directly (no CPR), and each rank decompresses
// the N gathered blocks at the end — the paper's
// T = N·CPR + (N−1)·HPR + (N−1)·DPR.
func (c Collectives) AllreduceHZ(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	return c.allreduceHZG(world(r), data)
}

func (c Collectives) allreduceHZG(g comm, data []float32) ([]float32, *hzdyn.Stats, error) {
	comp, stats, err := c.reduceScatterHZCompressed(g, data)
	if err != nil {
		return nil, nil, err
	}
	out, err := c.allgatherAssembleCompressed(g, comp, len(data))
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// AllreduceHZNaive is the ablation variant that does NOT fuse the stages:
// it decompresses at the end of reduce-scatter and recompresses before the
// allgather, paying the extra DPR + CPR the co-design removes. It exists
// to quantify the benefit of the Allreduce-specific optimization
// (paper §III-C2).
func (c Collectives) AllreduceHZNaive(r *cluster.Rank, data []float32) ([]float32, *hzdyn.Stats, error) {
	block, stats, err := c.ReduceScatterHZ(r, data) // includes final DPR
	if err != nil {
		return nil, nil, err
	}
	var own []byte
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(block), func() {
		own, cerr = fzlight.Compress(block, c.Opt.params())
	})
	if cerr != nil {
		return nil, nil, cerr
	}
	out, err := c.allgatherAssembleCompressed(world(r), own, len(data))
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}
