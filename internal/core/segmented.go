package core

import (
	"fmt"

	"hzccl/internal/cluster"
	"hzccl/internal/fzlight"
)

// Segmented pipelining. The paper notes that C-Coll "overlaps the
// compression with communication to reduce the overall collective
// runtime" (§III-A); the mechanism is segmentation: each per-round block
// is split into S segments so that compressing segment k+1 overlaps the
// transfer of segment k, and the receiver decompresses segment k while
// k+1 is still in flight. In the virtual-time model this overlap falls
// out naturally — each segment's arrival is pinned to the sender's clock
// at *its* send, so downstream work on early segments proceeds while
// later segments are still being produced.
//
// Segmentation applies to the C-Coll backend (the hZCCL backend already
// hides most compression by compressing once up front); Options.Segments
// ≤ 1 disables it.

// segRanges splits n elements into s contiguous ranges (balanced like
// ChunkBounds).
func segRanges(n, s int) [][2]int {
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	out := make([][2]int, s)
	for i := 0; i < s; i++ {
		a, b := fzlight.ChunkBounds(n, s, i)
		out[i] = [2]int{a, b}
	}
	return out
}

// ReduceScatterCCollSegmented is ReduceScatterCColl with per-round
// segmentation and one-deep pipelining: while segment k is in flight, the
// sender is already compressing segment k+1 and the receiver is reducing
// segment k−1, so the wire time hides behind the DOC pipeline whenever
// per-segment compression outweighs per-segment transfer.
func (c Collectives) ReduceScatterCCollSegmented(r *cluster.Rank, data []float32) ([]float32, error) {
	n := r.N
	segs := c.Opt.Segments
	if segs <= 1 || n == 1 {
		return c.ReduceScatterCColl(r, data)
	}
	opt := c.Opt
	var acc []float32
	r.Quiesce(func() {
		acc = make([]float32, len(data))
		copy(acc, data)
	})
	next, prev := (r.ID+1)%n, (r.ID-1+n)%n
	for step := 0; step < n-1; step++ {
		sendIdx := (r.ID - step + n) % n
		recvIdx := (r.ID - step - 1 + n) % n
		s, e := BlockBounds(len(data), n, sendIdx)
		rs, re := BlockBounds(len(data), n, recvIdx)
		sendRanges := segRanges(e-s, segs)
		recvRanges := segRanges(re-rs, segs)

		reduceSeg := func(k int, got []byte) error {
			ra, rb := rs+recvRanges[k][0], rs+recvRanges[k][1]
			recvVals := make([]float32, rb-ra)
			var derr error
			c.work(r, cluster.CatDPR, 4*(rb-ra), func() {
				derr = fzlight.DecompressInto(got, recvVals)
			})
			if derr != nil {
				return derr
			}
			if len(recvVals) != rb-ra {
				return fmt.Errorf("core: segmented reduce-scatter size mismatch at rank %d step %d seg %d", r.ID, step, k)
			}
			c.work(r, cluster.CatCPT, 4*(rb-ra), func() { addInto(acc[ra:rb], recvVals) })
			return nil
		}

		// One-deep pipeline: compress+send segment k, then drain segment
		// k−1 — its transfer overlapped the compression just performed.
		for k := range sendRanges {
			a, b := s+sendRanges[k][0], s+sendRanges[k][1]
			var payload []byte
			var cerr error
			c.work(r, cluster.CatCPR, 4*(b-a), func() {
				payload, cerr = fzlight.Compress(acc[a:b], opt.params())
			})
			if cerr != nil {
				return nil, cerr
			}
			if err := r.Send(next, payload); err != nil {
				return nil, err
			}
			countRingBytes(payload, true)
			if k > 0 {
				got, err := r.Recv(prev)
				if err != nil {
					return nil, err
				}
				if err := reduceSeg(k-1, got); err != nil {
					return nil, err
				}
			}
		}
		got, err := r.Recv(prev)
		if err != nil {
			return nil, err
		}
		if err := reduceSeg(len(recvRanges)-1, got); err != nil {
			return nil, err
		}
	}
	s, e := BlockBounds(len(data), n, BlockOwned(r.ID, n))
	out := make([]float32, e-s)
	copy(out, acc[s:e])
	return out, nil
}

// AllreduceCCollSegmented is AllreduceCColl with the segmented
// reduce-scatter stage. The allgather stage stays unsegmented: it moves
// already-compressed bytes with no compute to overlap, so cutting it up
// would only multiply per-message latency.
func (c Collectives) AllreduceCCollSegmented(r *cluster.Rank, data []float32) ([]float32, error) {
	segs := c.Opt.Segments
	if segs <= 1 || r.N == 1 {
		return c.AllreduceCColl(r, data)
	}
	block, err := c.ReduceScatterCCollSegmented(r, data)
	if err != nil {
		return nil, err
	}
	opt := c.Opt
	var own []byte
	var cerr error
	c.work(r, cluster.CatCPR, 4*len(block), func() {
		own, cerr = fzlight.Compress(block, opt.params())
	})
	if cerr != nil {
		return nil, cerr
	}
	gathered, err := allgatherBytes(world(r), own, true)
	if err != nil {
		return nil, err
	}
	return assembleBlocks(world(r), len(data), gathered, func(payload []byte, dst []float32) error {
		var derr error
		c.work(r, cluster.CatDPR, 4*len(dst), func() {
			derr = fzlight.DecompressInto(payload, dst)
		})
		return derr
	})
}
