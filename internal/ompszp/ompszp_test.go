package ompszp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smooth(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = float32(math.Sin(float64(i)*0.01) + v)
	}
	return out
}

func maxAbsErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func tol(eb float64, data []float32) float64 {
	maxAbs := 0.0
	for _, v := range data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	// float32 quantization arithmetic costs a few extra ulps vs fzlight
	return eb*(1+1e-5) + maxAbs*1e-6
}

func TestRoundTrip(t *testing.T) {
	data := smooth(10000, 1)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		for _, threads := range []int{1, 4} {
			for _, bs := range []int{32, 16, 50} {
				comp, err := Compress(data, Params{ErrorBound: eb, BlockSize: bs, Threads: threads})
				if err != nil {
					t.Fatalf("eb=%g: %v", eb, err)
				}
				h, err := ParseHeader(comp)
				if err != nil {
					t.Fatal(err)
				}
				got, err := DecompressThreads(comp, h, threads)
				if err != nil {
					t.Fatal(err)
				}
				if m := maxAbsErr(data, got); m > tol(eb, data) {
					t.Fatalf("eb=%g bs=%d: err %g", eb, bs, m)
				}
			}
		}
	}
}

func TestZeroBlockElision(t *testing.T) {
	// Half zeros, half signal: zero blocks cost 1 byte each.
	n := 8192
	data := make([]float32, n)
	sig := smooth(n/2, 2)
	copy(data[n/2:], sig)
	comp, err := Compress(data, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		if got[i] != 0 {
			t.Fatalf("zero block not reconstructed exactly at %d: %v", i, got[i])
		}
	}
	if m := maxAbsErr(data, got); m > tol(1e-3, data) {
		t.Fatalf("err %g", m)
	}
	// All-zero input compresses to ~1 byte per block.
	zeros := make([]float32, n)
	zcomp, err := Compress(zeros, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(zcomp) > fixedHeader+n/DefaultBlockSize+8 {
		t.Fatalf("all-zero input compressed to %d bytes", len(zcomp))
	}
}

func TestThreadsDontChangeOutput(t *testing.T) {
	data := smooth(5003, 3)
	a, err := Compress(data, Params{ErrorBound: 1e-3, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(data, Params{ErrorBound: 1e-3, Threads: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("thread count changed output size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("thread count changed output at byte %d", i)
		}
	}
}

func TestParamAndInputValidation(t *testing.T) {
	if _, err := Compress([]float32{1}, Params{ErrorBound: 0}); !errors.Is(err, ErrBadParams) {
		t.Errorf("want ErrBadParams, got %v", err)
	}
	if _, err := Compress([]float32{float32(math.NaN())}, Params{ErrorBound: 1e-3}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("want ErrNonFinite, got %v", err)
	}
	if _, err := Compress([]float32{1e9}, Params{ErrorBound: 1e-9}); !errors.Is(err, ErrRange) {
		t.Errorf("want ErrRange, got %v", err)
	}
}

func TestCorruptStreams(t *testing.T) {
	data := smooth(1000, 4)
	comp, err := Compress(data, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Decompress(comp[:len(comp)-3]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), comp...)
	copy(bad, "NOPE")
	if _, err := Decompress(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	comp, err := Compress(nil, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d elements", len(got))
	}
}

// ompSZp stores one outlier per small block; fZ-light stores one per
// chunk. On smooth high-ratio data ompSZp must therefore be measurably
// larger — this is the paper's Table III ratio gap.
func TestPerBlockOutlierOverhead(t *testing.T) {
	n := 1 << 16
	data := make([]float32, n) // constant zero-free value => all-constant blocks
	for i := range data {
		data[i] = 3.5
	}
	comp, err := Compress(data, Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// marker+outlier = 5 bytes per 32-element block
	want := fixedHeader + (n/DefaultBlockSize)*5
	if len(comp) != want {
		t.Fatalf("constant blocks: %d bytes, want %d", len(comp), want)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []float32, ebSeed uint8) bool {
		eb := []float64{1e-1, 1e-2, 1e-3}[ebSeed%3]
		clean := make([]float32, 0, len(raw))
		for _, v := range raw {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) || math.Abs(f64) > 1e3 {
				continue
			}
			clean = append(clean, v)
		}
		comp, err := Compress(clean, Params{ErrorBound: eb, Threads: 2})
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxAbsErr(clean, got) <= tol(eb, clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
