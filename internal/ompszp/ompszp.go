// Package ompszp implements the ompSZp baseline of the hZCCL paper: a CPU
// port of cuSZp's GPU parallelism strategy, used as the compression
// baseline in Tables III/IV and Figure 6.
//
// It deliberately keeps the design decisions the paper identifies as
// suboptimal on CPUs, because it exists to be compared against:
//
//   - Single-layer block partitioning: the input is one flat sequence of
//     small blocks; worker threads are assigned blocks in a strided
//     (round-robin) pattern, hopping between distant memory regions
//     exactly as GPU thread blocks do.
//   - One outlier per small block: every block stores its first quantized
//     value (4 bytes), versus fZ-light's single outlier per thread-chunk.
//   - Unfused quantization and prediction: quantization materializes a
//     full int32 copy of the dataset, and prediction reads it back in a
//     second pass, doubling memory traffic.
//   - A global synchronization between the metadata pass and the encoding
//     pass (cuSZp's grid-wide sync), implemented as a serial prefix sum
//     over per-block sizes.
//   - Bit-shuffle encoding: magnitudes are transposed one bit plane at a
//     time rather than byte planes + residual bits.
//   - Zero-block elision: blocks whose raw values are all exactly 0.0 are
//     stored as a 1-byte marker with no outlier. (This is the feature that
//     lets ompSZp beat fZ-light on very sparse data such as RTM
//     Simulation Setting 1 at loose bounds — Table III.)
//   - float32 quantization arithmetic, as on the GPU; reconstruction
//     quality is marginally below fZ-light's float64 path.
package ompszp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"hzccl/internal/bitio"
	"hzccl/internal/bufpool"
)

// DefaultBlockSize matches cuSZp's 32-element blocks.
const DefaultBlockSize = 32

// zeroMarker tags a block whose raw values were all exactly zero.
const zeroMarker = 0xFF

// quantLimit bounds |v|/(2·eb) so float32 arithmetic keeps integer
// resolution.
const quantLimit = 1 << 21

// Errors returned by the codec.
var (
	ErrBadParams  = errors.New("ompszp: invalid parameters")
	ErrRange      = errors.New("ompszp: value exceeds float32 quantization range")
	ErrNonFinite  = errors.New("ompszp: input contains NaN or Inf")
	ErrCorrupt    = errors.New("ompszp: corrupt or truncated stream")
	ErrBadMagic   = errors.New("ompszp: not an ompSZp stream")
	ErrBadVersion = errors.New("ompszp: unsupported stream version")
)

// Params configures compression.
type Params struct {
	// ErrorBound is the absolute error bound. Must be > 0.
	ErrorBound float64
	// BlockSize is the small-block length (default 32).
	BlockSize int
	// Threads is the number of strided workers (default 1).
	Threads int
}

func (p Params) withDefaults() Params {
	if p.BlockSize == 0 {
		p.BlockSize = DefaultBlockSize
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	return p
}

const (
	magic       = "OSZ1"
	version     = 1
	fixedHeader = 24
)

// Header describes a compressed ompSZp stream.
type Header struct {
	ErrorBound float64
	BlockSize  int
	DataLen    int
}

// blockMeta is the per-block metadata produced by the first pass.
type blockMeta struct {
	codeLen int8 // -1 for zero block
	outlier int32
	size    int32 // encoded bytes incl. marker
}

// metaPool recycles the per-call block-metadata slices of CompressInto so
// the steady state performs no heap allocations. The *[]blockMeta boxes
// sync.Pool requires are themselves recycled through metaBoxes, so a
// steady-state get/put cycle allocates nothing (same scheme as bufpool).
var (
	metaPool  sync.Pool
	metaBoxes sync.Pool
)

func getMetas(n int) []blockMeta {
	if x := metaPool.Get(); x != nil {
		box := x.(*[]blockMeta)
		s := *box
		*box = nil
		metaBoxes.Put(box)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]blockMeta, n, n+n/4)
}

func putMetas(s []blockMeta) {
	var box *[]blockMeta
	if x := metaBoxes.Get(); x != nil {
		box = x.(*[]blockMeta)
	} else {
		box = new([]blockMeta)
	}
	*box = s[:0]
	metaPool.Put(box)
}

// CompressBound returns a dst size always sufficient for CompressInto of
// n float32 values under p: every block costs at most a marker, an
// outlier, its sign bytes and 32 full bit planes.
func CompressBound(n int, p Params) int {
	p = p.withDefaults()
	B := p.BlockSize
	nblocks := (n + B - 1) / B
	return fixedHeader + nblocks*(5+bitio.SignBytes(B)+32*((B+7)/8))
}

// Compress compresses data with the cuSZp-style two-pass pipeline.
func Compress(data []float32, p Params) ([]byte, error) {
	out := make([]byte, CompressBound(len(data), p))
	n, err := CompressInto(out, data, p)
	if err != nil {
		return nil, err
	}
	return out[:n:n], nil
}

// CompressInto compresses data into dst (at least CompressBound bytes)
// and returns the stream size. All scratch — the global quantization
// array, block metadata, the offset scan and the per-worker delta/
// magnitude buffers — is pooled, so the steady state allocates nothing
// beyond the goroutines of multi-threaded runs.
func CompressInto(dst []byte, data []float32, p Params) (int, error) {
	p = p.withDefaults()
	if !(p.ErrorBound > 0) || math.IsInf(p.ErrorBound, 0) {
		return 0, fmt.Errorf("%w: ErrorBound %v", ErrBadParams, p.ErrorBound)
	}
	if len(dst) < CompressBound(len(data), p) {
		return 0, fmt.Errorf("%w: dst too small", ErrBadParams)
	}
	B := p.BlockSize
	nblocks := (len(data) + B - 1) / B

	// Pass 1 (unfused): quantize the whole input into a global integer
	// array, then derive per-block prediction metadata from it.
	quant := bufpool.Int32s(len(data))
	defer bufpool.PutInt32s(quant)
	metas := getMetas(nblocks)
	defer putMetas(metas)
	recip := float32(1 / (2 * p.ErrorBound))
	if p.Threads <= 1 {
		// Serial fast path: plain loop, no closures, no mutex — keeps the
		// single-threaded steady state allocation-free.
		for bi := 0; bi < nblocks; bi++ {
			start := bi * B
			end := start + B
			if end > len(data) {
				end = len(data)
			}
			m, err := quantizeBlock(data[start:end], quant[start:end], recip)
			if err != nil {
				return 0, err
			}
			metas[bi] = m
		}
	} else {
		var pass1Err error
		var mu sync.Mutex
		strided(nblocks, p.Threads, func(bi, _ int) {
			start := bi * B
			end := start + B
			if end > len(data) {
				end = len(data)
			}
			m, err := quantizeBlock(data[start:end], quant[start:end], recip)
			if err != nil {
				mu.Lock()
				if pass1Err == nil {
					pass1Err = err
				}
				mu.Unlock()
				return
			}
			metas[bi] = m
		})
		if pass1Err != nil {
			return 0, pass1Err
		}
	}

	// Global synchronization: a serial prefix sum over block sizes (the
	// CPU analogue of cuSZp's grid sync + scan).
	offsets := bufpool.Int64s(nblocks + 1)
	defer bufpool.PutInt64s(offsets)
	offsets[0] = 0
	for i, m := range metas {
		offsets[i+1] = offsets[i] + int64(m.size)
	}

	writeHeader(dst, p.ErrorBound, B, len(data))

	// Pass 2: encode each block at its offset, again strided. Each
	// worker owns one pooled delta/magnitude scratch pair.
	if p.Threads <= 1 {
		sc := encodeScratch{deltas: bufpool.Int32s(B), mags: bufpool.Uint32s(B)}
		for bi := 0; bi < nblocks; bi++ {
			start := bi * B
			end := start + B
			if end > len(data) {
				end = len(data)
			}
			encodeBlock(dst[fixedHeader+offsets[bi]:fixedHeader+offsets[bi+1]],
				quant[start:end], metas[bi], &sc)
		}
		bufpool.PutInt32s(sc.deltas)
		bufpool.PutUint32s(sc.mags)
		return int(int64(fixedHeader) + offsets[nblocks]), nil
	}
	workers := p.Threads
	if workers > nblocks {
		workers = nblocks
	}
	scratch := make([]encodeScratch, 0, 8)
	for w := 0; w < workers; w++ {
		scratch = append(scratch, encodeScratch{
			deltas: bufpool.Int32s(B),
			mags:   bufpool.Uint32s(B),
		})
	}
	defer func() {
		for _, s := range scratch {
			bufpool.PutInt32s(s.deltas)
			bufpool.PutUint32s(s.mags)
		}
	}()
	strided(nblocks, p.Threads, func(bi, w int) {
		start := bi * B
		end := start + B
		if end > len(data) {
			end = len(data)
		}
		encodeBlock(dst[fixedHeader+offsets[bi]:fixedHeader+offsets[bi+1]],
			quant[start:end], metas[bi], &scratch[w])
	})
	return int(int64(fixedHeader) + offsets[nblocks]), nil
}

// encodeScratch is one worker's reusable delta/magnitude buffers.
type encodeScratch struct {
	deltas []int32
	mags   []uint32
}

func quantizeBlock(blk []float32, q []int32, recip float32) (blockMeta, error) {
	zero := true
	for i, v := range blk {
		if v != 0 {
			zero = false
		}
		x := v * recip
		if !(x < quantLimit && x > -quantLimit) {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return blockMeta{}, ErrNonFinite
			}
			return blockMeta{}, ErrRange
		}
		if x >= 0 {
			q[i] = int32(x + 0.5)
		} else {
			q[i] = int32(x - 0.5)
		}
	}
	if zero {
		return blockMeta{codeLen: -1, size: 1}, nil
	}
	// Second read of the quantized values for prediction (unfused).
	var maxmag uint32
	prev := q[0]
	for i := 1; i < len(q); i++ {
		d := q[i] - prev
		prev = q[i]
		m := uint32(d)
		if d < 0 {
			m = uint32(-d)
		}
		if m > maxmag {
			maxmag = m
		}
	}
	c := bits.Len32(maxmag)
	size := 1 + 4 // marker + per-block outlier
	if c > 0 {
		size += bitio.SignBytes(len(q)) + c*((len(q)+7)/8)
	}
	return blockMeta{codeLen: int8(c), outlier: q[0], size: int32(size)}, nil
}

func encodeBlock(dst []byte, q []int32, m blockMeta, sc *encodeScratch) {
	if m.codeLen < 0 {
		dst[0] = zeroMarker
		return
	}
	c := int(m.codeLen)
	dst[0] = byte(c)
	binary.LittleEndian.PutUint32(dst[1:], uint32(m.outlier))
	if c == 0 {
		return
	}
	n := len(q)
	deltas := sc.deltas[:n]
	mags := sc.mags[:n]
	mags[0] = 0 // the delta loop below assigns indices 1..n-1 only
	prev := q[0]
	deltas[0] = 0
	for i := 1; i < n; i++ {
		d := q[i] - prev
		prev = q[i]
		deltas[i] = d
		if d < 0 {
			mags[i] = uint32(-d)
		} else {
			mags[i] = uint32(d)
		}
	}
	o := 5
	o += bitio.PackSigns(dst[o:], deltas)
	bitio.BitShuffle(dst[o:], mags, c)
}

// Decompress decodes a stream produced by Compress.
func Decompress(comp []byte) ([]float32, error) {
	h, err := ParseHeader(comp)
	if err != nil {
		return nil, err
	}
	return DecompressThreads(comp, h, 1)
}

// DecompressThreads decodes with the given worker count (strided blocks,
// after a serial offset-scan pass — the decompression-side analogue of the
// global synchronization).
func DecompressThreads(comp []byte, h *Header, threads int) ([]float32, error) {
	out := make([]float32, h.DataLen)
	if err := DecompressInto(out, comp, h, threads); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto decodes a stream into dst, which must hold exactly
// h.DataLen values. The offset scan and the per-worker delta/magnitude
// scratch are pooled, so single-threaded steady-state decompression
// performs zero heap allocations.
func DecompressInto(dst []float32, comp []byte, h *Header, threads int) error {
	if len(dst) != h.DataLen {
		return fmt.Errorf("%w: dst length %d, want %d", ErrBadParams, len(dst), h.DataLen)
	}
	B := h.BlockSize
	nblocks := (h.DataLen + B - 1) / B
	// Offset scan: walk the markers to find where each block starts.
	offsets := bufpool.Int64s(nblocks + 1)
	defer bufpool.PutInt64s(offsets)
	o := int64(fixedHeader)
	for bi := 0; bi < nblocks; bi++ {
		offsets[bi] = o
		if o >= int64(len(comp)) {
			return ErrCorrupt
		}
		start := bi * B
		end := start + B
		if end > h.DataLen {
			end = h.DataLen
		}
		n := end - start
		mk := comp[o]
		switch {
		case mk == zeroMarker:
			o++
		case mk == 0:
			o += 5
		case int(mk) <= 32:
			o += int64(5 + bitio.SignBytes(n) + int(mk)*((n+7)/8))
		default:
			return fmt.Errorf("%w: marker %d", ErrCorrupt, mk)
		}
	}
	offsets[nblocks] = o
	if o != int64(len(comp)) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, int64(len(comp))-o)
	}

	eb2 := 2 * h.ErrorBound
	if threads <= 1 {
		// Serial fast path: no closures, no mutex, one pooled scratch pair.
		sc := encodeScratch{deltas: bufpool.Int32s(B), mags: bufpool.Uint32s(B)}
		for bi := 0; bi < nblocks; bi++ {
			start := bi * B
			end := start + B
			if end > h.DataLen {
				end = h.DataLen
			}
			if err := decodeBlock(comp[offsets[bi]:offsets[bi+1]], dst[start:end], eb2, &sc); err != nil {
				bufpool.PutInt32s(sc.deltas)
				bufpool.PutUint32s(sc.mags)
				return err
			}
		}
		bufpool.PutInt32s(sc.deltas)
		bufpool.PutUint32s(sc.mags)
		return nil
	}
	workers := threads
	if workers > nblocks {
		workers = nblocks
	}
	scratch := make([]encodeScratch, 0, 8)
	for w := 0; w < workers; w++ {
		scratch = append(scratch, encodeScratch{
			deltas: bufpool.Int32s(B),
			mags:   bufpool.Uint32s(B),
		})
	}
	defer func() {
		for _, s := range scratch {
			bufpool.PutInt32s(s.deltas)
			bufpool.PutUint32s(s.mags)
		}
	}()
	var decErr error
	var mu sync.Mutex
	strided(nblocks, threads, func(bi, w int) {
		start := bi * B
		end := start + B
		if end > h.DataLen {
			end = h.DataLen
		}
		if err := decodeBlock(comp[offsets[bi]:offsets[bi+1]], dst[start:end], eb2, &scratch[w]); err != nil {
			mu.Lock()
			if decErr == nil {
				decErr = err
			}
			mu.Unlock()
		}
	})
	return decErr
}

func decodeBlock(src []byte, dst []float32, eb2 float64, sc *encodeScratch) error {
	if len(src) < 1 {
		return ErrCorrupt
	}
	if src[0] == zeroMarker {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	c := int(src[0])
	if len(src) < 5 {
		return ErrCorrupt
	}
	outlier := int32(binary.LittleEndian.Uint32(src[1:]))
	n := len(dst)
	acc := outlier
	if c == 0 {
		v := float32(eb2 * float64(acc))
		for i := range dst {
			dst[i] = v
		}
		return nil
	}
	need := 5 + bitio.SignBytes(n) + c*((n+7)/8)
	if len(src) < need {
		return ErrCorrupt
	}
	mags := sc.mags[:n]
	deltas := sc.deltas[:n]
	for i := range mags {
		mags[i] = 0 // BitUnshuffle ORs bit planes into its target
	}
	o := 5 + bitio.SignBytes(n)
	bitio.BitUnshuffle(src[o:], mags, c)
	for i := range deltas {
		deltas[i] = int32(mags[i])
	}
	bitio.ApplySigns(src[5:], deltas)
	for i := 0; i < n; i++ {
		acc += deltas[i]
		dst[i] = float32(eb2 * float64(acc))
	}
	return nil
}

// strided runs fn(blockIndex, worker) for every block, assigning blocks
// to workers round-robin (worker w handles blocks w, w+T, w+2T, ...),
// reproducing the GPU-style access pattern. The worker index lets call
// sites hand each goroutine its own scratch. Threads <= 1 runs inline on
// worker 0 with no goroutine or WaitGroup traffic.
func strided(nblocks, threads int, fn func(bi, worker int)) {
	if threads <= 1 || nblocks <= 1 {
		for i := 0; i < nblocks; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nblocks; i += threads {
				fn(i, w)
			}
		}(w)
	}
	wg.Wait()
}

func writeHeader(dst []byte, eb float64, blockSize, dataLen int) {
	copy(dst, magic)
	dst[4] = version
	dst[5] = 0
	binary.LittleEndian.PutUint16(dst[6:], uint16(blockSize))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(eb))
	binary.LittleEndian.PutUint64(dst[16:], uint64(dataLen))
}

// ParseHeader validates and decodes the stream header.
func ParseHeader(comp []byte) (*Header, error) {
	if len(comp) < fixedHeader {
		return nil, ErrCorrupt
	}
	if string(comp[:4]) != magic {
		return nil, ErrBadMagic
	}
	if comp[4] != version {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, comp[4])
	}
	h := &Header{
		BlockSize:  int(binary.LittleEndian.Uint16(comp[6:])),
		ErrorBound: math.Float64frombits(binary.LittleEndian.Uint64(comp[8:])),
		DataLen:    int(binary.LittleEndian.Uint64(comp[16:])),
	}
	if h.BlockSize < 1 || h.DataLen < 0 || !(h.ErrorBound > 0) {
		return nil, ErrCorrupt
	}
	return h, nil
}
