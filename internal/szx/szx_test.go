package szx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ramp(n int, slope float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(slope * float64(i))
	}
	return out
}

func maxAbsErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 10000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i)*0.001) + rng.NormFloat64()*0.01)
	}
	for _, eb := range []float64{1e-1, 1e-2, 1e-3} {
		comp, err := Compress(data, Params{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if m := maxAbsErr(data, got); m > eb*(1+1e-6) {
			t.Fatalf("eb=%g: max err %g", eb, m)
		}
	}
}

func TestConstantBlocks(t *testing.T) {
	// A slow ramp where every 128-block spans less than 2eb: all constant.
	data := ramp(1280, 1e-4)
	comp, err := Compress(data, Params{ErrorBound: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	frac, err := ConstantFraction(comp)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Fatalf("constant fraction %g, want 1", frac)
	}
	// ~5 bytes per 128-value block
	if len(comp) > 24+10*5+8 {
		t.Fatalf("compressed to %d bytes", len(comp))
	}
	// Staircase artifact: the reconstruction has exactly one value per block.
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		v := got[b*128]
		for i := b * 128; i < (b+1)*128; i++ {
			if got[i] != v {
				t.Fatalf("block %d not constant", b)
			}
		}
	}
}

func TestRawBlocksLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float32, 4096)
	for i := range data {
		data[i] = rng.Float32() * 100 // far beyond any bound: raw blocks
	}
	comp, err := Compress(data, Params{ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	frac, _ := ConstantFraction(comp)
	if frac != 0 {
		t.Fatalf("noise should have no constant blocks, got %g", frac)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("raw block not lossless at %d", i)
		}
	}
}

func TestValidationAndCorruption(t *testing.T) {
	if _, err := Compress([]float32{1}, Params{}); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero bound: %v", err)
	}
	if _, err := Compress([]float32{float32(math.NaN())}, Params{ErrorBound: 1}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN: %v", err)
	}
	comp, err := Compress(ramp(1000, 0.01), Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Decompress(comp[:len(comp)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), comp...)
	copy(bad, "WRNG")
	if _, err := Decompress(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
}

func TestEmptyAndTail(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 129, 300} {
		data := ramp(n, 0.01)
		comp, err := Compress(data, Params{ErrorBound: 1e-2})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d", n, len(got))
		}
		if m := maxAbsErr(data, got); m > 1e-2*(1+1e-6) {
			t.Fatalf("n=%d: err %g", n, m)
		}
	}
}

func TestPropertyBound(t *testing.T) {
	f := func(raw []float32, ebSeed uint8) bool {
		eb := []float64{1e-1, 1e-2}[ebSeed%2]
		clean := raw[:0:0]
		for _, v := range raw {
			f64 := float64(v)
			if !math.IsNaN(f64) && !math.IsInf(f64, 0) && math.Abs(f64) < 1e6 {
				clean = append(clean, v)
			}
		}
		comp, err := Compress(clean, Params{ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxAbsErr(clean, got) <= eb*(1+1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
