// Package szx implements a simplified SZx-style compressor, the
// "fastest CPU compressor" the hZCCL paper weighs (and rejects) as the
// basis for its pipeline in §III-B1: SZx's constant-block design collapses
// every block whose value range fits inside the error bound to a single
// constant, which is extremely fast and compresses smooth regions well but
// degrades reconstruction quality (staircase artifacts) and leaves
// non-smooth blocks essentially uncompressed.
//
// The format here keeps SZx's two decisive properties — midpoint-constant
// blocks and raw passthrough for everything else — so the paper's quality
// argument (Section III-B1, quantified in the szx-quality experiment) can
// be reproduced without the full leading-zero bitplane machinery.
package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"hzccl/internal/floatbytes"
)

// DefaultBlockSize matches SZx's 128-element blocks.
const DefaultBlockSize = 128

// Errors returned by the codec.
var (
	ErrBadParams = errors.New("szx: invalid parameters")
	ErrNonFinite = errors.New("szx: input contains NaN or Inf")
	ErrCorrupt   = errors.New("szx: corrupt or truncated stream")
	ErrBadMagic  = errors.New("szx: not an SZx stream")
)

// Params configures compression.
type Params struct {
	// ErrorBound is the absolute error bound. Must be > 0.
	ErrorBound float64
	// BlockSize is the constant-block length (default 128).
	BlockSize int
}

const (
	magic       = "SZX1"
	fixedHeader = 24

	markerConstant = 0x01
	markerRaw      = 0x00
)

// Compress compresses data with the constant-block scheme: a block whose
// (max−min)/2 fits within the bound stores only its midpoint; any other
// block is stored raw.
func Compress(data []float32, p Params) ([]byte, error) {
	if !(p.ErrorBound > 0) || math.IsInf(p.ErrorBound, 0) {
		return nil, fmt.Errorf("%w: ErrorBound %v", ErrBadParams, p.ErrorBound)
	}
	B := p.BlockSize
	if B == 0 {
		B = DefaultBlockSize
	}
	if B < 1 {
		return nil, fmt.Errorf("%w: BlockSize %d", ErrBadParams, B)
	}
	out := make([]byte, fixedHeader, fixedHeader+len(data)*4+len(data)/B+64)
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[4:], uint32(B))
	binary.LittleEndian.PutUint64(out[8:], math.Float64bits(p.ErrorBound))
	binary.LittleEndian.PutUint64(out[16:], uint64(len(data)))

	for base := 0; base < len(data); base += B {
		end := base + B
		if end > len(data) {
			end = len(data)
		}
		blk := data[base:end]
		mn, mx := blk[0], blk[0]
		for _, v := range blk {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, ErrNonFinite
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if float64(mx)-float64(mn) <= 2*p.ErrorBound {
			mid := mn + (mx-mn)/2
			out = append(out, markerConstant)
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(mid))
			out = append(out, buf[:]...)
		} else {
			out = append(out, markerRaw)
			off := len(out)
			out = append(out, make([]byte, 4*len(blk))...)
			floatbytes.FromFloat32(out[off:], blk)
		}
	}
	return out, nil
}

// Decompress reconstructs a compressed stream.
func Decompress(comp []byte) ([]float32, error) {
	if len(comp) < fixedHeader {
		return nil, ErrCorrupt
	}
	if string(comp[:4]) != magic {
		return nil, ErrBadMagic
	}
	B := int(binary.LittleEndian.Uint32(comp[4:]))
	rawLen := binary.LittleEndian.Uint64(comp[16:])
	if B < 1 {
		return nil, ErrCorrupt
	}
	payload := uint64(len(comp) - fixedHeader)
	// Every block costs at least 1 marker byte.
	if rawLen > payload*uint64(B) {
		return nil, ErrCorrupt
	}
	n := int(rawLen)
	out := make([]float32, n)
	o := fixedHeader
	for base := 0; base < n; base += B {
		end := base + B
		if end > n {
			end = n
		}
		bn := end - base
		if o >= len(comp) {
			return nil, ErrCorrupt
		}
		switch comp[o] {
		case markerConstant:
			if len(comp) < o+5 {
				return nil, ErrCorrupt
			}
			v := math.Float32frombits(binary.LittleEndian.Uint32(comp[o+1:]))
			for i := base; i < end; i++ {
				out[i] = v
			}
			o += 5
		case markerRaw:
			if len(comp) < o+1+4*bn {
				return nil, ErrCorrupt
			}
			floatbytes.ToFloat32(out[base:end], comp[o+1:o+1+4*bn])
			o += 1 + 4*bn
		default:
			return nil, fmt.Errorf("%w: marker %d", ErrCorrupt, comp[o])
		}
	}
	if o != len(comp) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-o)
	}
	return out, nil
}

// ConstantFraction reports the fraction of constant blocks in a stream
// (the knob that determines both SZx's ratio and its artifact severity).
func ConstantFraction(comp []byte) (float64, error) {
	if len(comp) < fixedHeader || string(comp[:4]) != magic {
		return 0, ErrBadMagic
	}
	B := int(binary.LittleEndian.Uint32(comp[4:]))
	n := int(binary.LittleEndian.Uint64(comp[16:]))
	if B < 1 {
		return 0, ErrCorrupt
	}
	o := fixedHeader
	blocks, constant := 0, 0
	for base := 0; base < n; base += B {
		end := base + B
		if end > n {
			end = n
		}
		if o >= len(comp) {
			return 0, ErrCorrupt
		}
		blocks++
		if comp[o] == markerConstant {
			constant++
			o += 5
		} else {
			o += 1 + 4*(end-base)
		}
	}
	if blocks == 0 {
		return 0, nil
	}
	return float64(constant) / float64(blocks), nil
}
