// Package szx implements a simplified SZx-style compressor, the
// "fastest CPU compressor" the hZCCL paper weighs (and rejects) as the
// basis for its pipeline in §III-B1: SZx's constant-block design collapses
// every block whose value range fits inside the error bound to a single
// constant, which is extremely fast and compresses smooth regions well but
// degrades reconstruction quality (staircase artifacts) and leaves
// non-smooth blocks essentially uncompressed.
//
// The format here keeps SZx's two decisive properties — midpoint-constant
// blocks and raw passthrough for everything else — so the paper's quality
// argument (Section III-B1, quantified in the szx-quality experiment) can
// be reproduced without the full leading-zero bitplane machinery.
package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"hzccl/internal/floatbytes"
)

// DefaultBlockSize matches SZx's 128-element blocks.
const DefaultBlockSize = 128

// Errors returned by the codec.
var (
	ErrBadParams = errors.New("szx: invalid parameters")
	ErrNonFinite = errors.New("szx: input contains NaN or Inf")
	ErrCorrupt   = errors.New("szx: corrupt or truncated stream")
	ErrBadMagic  = errors.New("szx: not an SZx stream")
)

// Params configures compression.
type Params struct {
	// ErrorBound is the absolute error bound. Must be > 0.
	ErrorBound float64
	// BlockSize is the constant-block length (default 128).
	BlockSize int
}

const (
	magic       = "SZX1"
	fixedHeader = 24

	markerConstant = 0x01
	markerRaw      = 0x00
)

// CompressBound returns a dst size always sufficient for CompressInto of
// n values with block size B: each block costs at most a marker plus its
// raw float32 bytes (constant blocks cost 5 bytes, never more than a raw
// one-element block).
func CompressBound(n, blockSize int) int {
	B := blockSize
	if B == 0 {
		B = DefaultBlockSize
	}
	if B < 1 {
		return fixedHeader
	}
	nblocks := (n + B - 1) / B
	return fixedHeader + 4*n + 5*nblocks
}

// Compress compresses data with the constant-block scheme: a block whose
// (max−min)/2 fits within the bound stores only its midpoint; any other
// block is stored raw.
func Compress(data []float32, p Params) ([]byte, error) {
	out := make([]byte, CompressBound(len(data), p.BlockSize))
	n, err := CompressInto(out, data, p)
	if err != nil {
		return nil, err
	}
	return out[:n:n], nil
}

// CompressInto compresses data into dst (at least CompressBound bytes)
// and returns the stream size. It performs no heap allocations.
func CompressInto(dst []byte, data []float32, p Params) (int, error) {
	if !(p.ErrorBound > 0) || math.IsInf(p.ErrorBound, 0) {
		return 0, fmt.Errorf("%w: ErrorBound %v", ErrBadParams, p.ErrorBound)
	}
	B := p.BlockSize
	if B == 0 {
		B = DefaultBlockSize
	}
	if B < 1 {
		return 0, fmt.Errorf("%w: BlockSize %d", ErrBadParams, B)
	}
	if len(dst) < CompressBound(len(data), B) {
		return 0, fmt.Errorf("%w: dst too small", ErrBadParams)
	}
	copy(dst, magic)
	binary.LittleEndian.PutUint32(dst[4:], uint32(B))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(p.ErrorBound))
	binary.LittleEndian.PutUint64(dst[16:], uint64(len(data)))
	o := fixedHeader

	for base := 0; base < len(data); base += B {
		end := base + B
		if end > len(data) {
			end = len(data)
		}
		blk := data[base:end]
		mn, mx := blk[0], blk[0]
		for _, v := range blk {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return 0, ErrNonFinite
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if float64(mx)-float64(mn) <= 2*p.ErrorBound {
			mid := mn + (mx-mn)/2
			dst[o] = markerConstant
			binary.LittleEndian.PutUint32(dst[o+1:], math.Float32bits(mid))
			o += 5
		} else {
			dst[o] = markerRaw
			floatbytes.FromFloat32(dst[o+1:], blk)
			o += 1 + 4*len(blk)
		}
	}
	return o, nil
}

// Decompress reconstructs a compressed stream.
func Decompress(comp []byte) ([]float32, error) {
	n, err := DataLen(comp)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	if err := DecompressInto(out, comp); err != nil {
		return nil, err
	}
	return out, nil
}

// DataLen returns the number of float32 values a stream decodes to.
func DataLen(comp []byte) (int, error) {
	if len(comp) < fixedHeader {
		return 0, ErrCorrupt
	}
	if string(comp[:4]) != magic {
		return 0, ErrBadMagic
	}
	B := int(binary.LittleEndian.Uint32(comp[4:]))
	rawLen := binary.LittleEndian.Uint64(comp[16:])
	if B < 1 {
		return 0, ErrCorrupt
	}
	payload := uint64(len(comp) - fixedHeader)
	// Every block costs at least 1 marker byte.
	if rawLen > payload*uint64(B) {
		return 0, ErrCorrupt
	}
	return int(rawLen), nil
}

// DecompressInto reconstructs a stream into dst, which must hold exactly
// DataLen values. It performs no heap allocations.
func DecompressInto(dst []float32, comp []byte) error {
	n, err := DataLen(comp)
	if err != nil {
		return err
	}
	if len(dst) != n {
		return fmt.Errorf("%w: dst length %d, want %d", ErrBadParams, len(dst), n)
	}
	B := int(binary.LittleEndian.Uint32(comp[4:]))
	out := dst
	o := fixedHeader
	for base := 0; base < n; base += B {
		end := base + B
		if end > n {
			end = n
		}
		bn := end - base
		if o >= len(comp) {
			return ErrCorrupt
		}
		switch comp[o] {
		case markerConstant:
			if len(comp) < o+5 {
				return ErrCorrupt
			}
			v := math.Float32frombits(binary.LittleEndian.Uint32(comp[o+1:]))
			for i := base; i < end; i++ {
				out[i] = v
			}
			o += 5
		case markerRaw:
			if len(comp) < o+1+4*bn {
				return ErrCorrupt
			}
			floatbytes.ToFloat32(out[base:end], comp[o+1:o+1+4*bn])
			o += 1 + 4*bn
		default:
			return fmt.Errorf("%w: marker %d", ErrCorrupt, comp[o])
		}
	}
	if o != len(comp) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(comp)-o)
	}
	return nil
}

// ConstantFraction reports the fraction of constant blocks in a stream
// (the knob that determines both SZx's ratio and its artifact severity).
func ConstantFraction(comp []byte) (float64, error) {
	if len(comp) < fixedHeader || string(comp[:4]) != magic {
		return 0, ErrBadMagic
	}
	B := int(binary.LittleEndian.Uint32(comp[4:]))
	n := int(binary.LittleEndian.Uint64(comp[16:]))
	if B < 1 {
		return 0, ErrCorrupt
	}
	o := fixedHeader
	blocks, constant := 0, 0
	for base := 0; base < n; base += B {
		end := base + B
		if end > n {
			end = n
		}
		if o >= len(comp) {
			return 0, ErrCorrupt
		}
		blocks++
		if comp[o] == markerConstant {
			constant++
			o += 5
		} else {
			o += 1 + 4*(end-base)
		}
	}
	if blocks == 0 {
		return 0, nil
	}
	return float64(constant) / float64(blocks), nil
}
