// Package metrics computes the data-quality and performance metrics used
// throughout the hZCCL evaluation: NRMSE, PSNR, max absolute/relative
// error, error standard deviation, compression ratio and throughput.
package metrics

import "math"

// ErrorStats summarizes the reconstruction error of recon against orig.
type ErrorStats struct {
	N int
	// Mismatched is set when the inputs had different lengths and the
	// comparison was skipped; all other fields are zero in that case.
	Mismatched bool
	Min        float64 // min of the original data
	Max        float64 // max of the original data
	Range      float64 // Max - Min
	MaxAbs     float64 // max_i |orig_i - recon_i|
	MaxRel     float64 // MaxAbs / Range
	MSE        float64
	RMSE       float64
	NRMSE      float64 // RMSE / Range
	PSNR       float64 // 20·log10(Range/RMSE)
	ErrStd     float64 // standard deviation of the error, normalized by Range
}

// Compare computes ErrorStats for a reconstruction. Both slices must have
// the same length: on a length mismatch the comparison is skipped and the
// result is a zero ErrorStats (N = 0) with Mismatched set, so callers
// cannot misread a skipped comparison as a perfect one over len(orig)
// values. An empty input yields a zero value.
func Compare(orig, recon []float32) ErrorStats {
	var s ErrorStats
	if len(orig) != len(recon) {
		s.Mismatched = true
		return s
	}
	s.N = len(orig)
	if len(orig) == 0 {
		return s
	}
	s.Min, s.Max = float64(orig[0]), float64(orig[0])
	var sumErr, sumSq float64
	for i := range orig {
		o := float64(orig[i])
		if o < s.Min {
			s.Min = o
		}
		if o > s.Max {
			s.Max = o
		}
		e := o - float64(recon[i])
		if a := math.Abs(e); a > s.MaxAbs {
			s.MaxAbs = a
		}
		sumErr += e
		sumSq += e * e
	}
	n := float64(s.N)
	s.Range = s.Max - s.Min
	s.MSE = sumSq / n
	s.RMSE = math.Sqrt(s.MSE)
	mean := sumErr / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	switch {
	case s.Range > 0:
		s.NRMSE = s.RMSE / s.Range
		s.MaxRel = s.MaxAbs / s.Range
		s.ErrStd = std / s.Range
		if s.RMSE > 0 {
			s.PSNR = 20 * math.Log10(s.Range/s.RMSE)
		} else {
			s.PSNR = math.Inf(1)
		}
	case s.RMSE == 0:
		// A constant field reconstructed exactly: no error, so the
		// range-normalized metrics are legitimately zero and PSNR is
		// unbounded.
		s.PSNR = math.Inf(1)
	default:
		// A constant field reconstructed with error: there is no range to
		// normalize by, so the relative metrics are undefined — NaN, not
		// the perfect-looking 0 this case used to report. Callers print
		// them as "n/a"; the absolute metrics (MaxAbs, RMSE) still tell
		// the real story.
		s.NRMSE = math.NaN()
		s.MaxRel = math.NaN()
		s.ErrStd = math.NaN()
		s.PSNR = math.NaN()
	}
	return s
}

// Ratio returns the compression ratio origBytes/compBytes (0 if compBytes
// is zero).
func Ratio(origBytes, compBytes int) float64 {
	if compBytes == 0 {
		return 0
	}
	return float64(origBytes) / float64(compBytes)
}

// GBps converts bytes processed in the given number of seconds to GB/s
// (decimal gigabytes, as in the paper).
func GBps(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}

// MinMax returns the minimum and maximum of the data (0,0 for empty input).
func MinMax(data []float32) (float64, float64) {
	if len(data) == 0 {
		return 0, 0
	}
	mn, mx := float64(data[0]), float64(data[0])
	for _, v := range data {
		f := float64(v)
		if f < mn {
			mn = f
		}
		if f > mx {
			mx = f
		}
	}
	return mn, mx
}

// AbsBound converts a relative error bound to an absolute one for the
// given data: abs = rel · (max − min). The paper's Tables III–VI sweep
// relative bounds 1e-1..1e-4.
func AbsBound(rel float64, data []float32) float64 {
	mn, mx := MinMax(data)
	r := mx - mn
	if r == 0 {
		r = 1
	}
	return rel * r
}

// ErrAutocorr returns the lag-1 autocorrelation of the reconstruction
// error. Quantization noise decorrelates (values near 0); block-constant
// schemes such as SZx leave staircase artifacts whose errors are strongly
// correlated across neighbours (values near 1) — the quality degradation
// the hZCCL paper cites when rejecting SZx's pipeline (§III-B1).
func ErrAutocorr(orig, recon []float32) float64 {
	n := len(orig)
	if n < 2 || n != len(recon) {
		return 0
	}
	errs := make([]float64, n)
	mean := 0.0
	for i := range orig {
		errs[i] = float64(orig[i]) - float64(recon[i])
		mean += errs[i]
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := errs[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (errs[i+1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
