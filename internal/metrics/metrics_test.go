package metrics

import (
	"math"
	"testing"
)

func TestCompareExact(t *testing.T) {
	a := []float32{0, 1, 2, 3, 4}
	s := Compare(a, a)
	if s.MaxAbs != 0 || s.NRMSE != 0 || !math.IsInf(s.PSNR, 1) {
		t.Fatalf("identical data: %+v", s)
	}
	if s.Min != 0 || s.Max != 4 || s.Range != 4 {
		t.Fatalf("range stats wrong: %+v", s)
	}
}

func TestCompareKnownError(t *testing.T) {
	orig := []float32{0, 10}
	recon := []float32{1, 10} // error (1, 0)
	s := Compare(orig, recon)
	if math.Abs(s.MaxAbs-1) > 1e-12 {
		t.Fatalf("MaxAbs %g", s.MaxAbs)
	}
	if math.Abs(s.MaxRel-0.1) > 1e-12 {
		t.Fatalf("MaxRel %g", s.MaxRel)
	}
	wantRMSE := math.Sqrt(0.5)
	if math.Abs(s.RMSE-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE %g want %g", s.RMSE, wantRMSE)
	}
	if math.Abs(s.NRMSE-wantRMSE/10) > 1e-12 {
		t.Fatalf("NRMSE %g", s.NRMSE)
	}
	wantPSNR := 20 * math.Log10(10/wantRMSE)
	if math.Abs(s.PSNR-wantPSNR) > 1e-9 {
		t.Fatalf("PSNR %g want %g", s.PSNR, wantPSNR)
	}
	// error std: errors are {-1, 0}, mean -0.5, std 0.5, normalized by 10
	if math.Abs(s.ErrStd-0.05) > 1e-12 {
		t.Fatalf("ErrStd %g", s.ErrStd)
	}
}

func TestCompareDegenerate(t *testing.T) {
	if s := Compare(nil, nil); s.N != 0 || s.Mismatched {
		t.Fatal("empty input")
	}
	// A length mismatch must not report N = len(orig): that would read as
	// "compared N values, zero error" when nothing was compared at all.
	if s := Compare([]float32{1}, []float32{1, 2}); s.N != 0 || !s.Mismatched {
		t.Fatalf("length mismatch should yield N=0 and Mismatched, got %+v", s)
	}
	if s := Compare([]float32{1, 2}, []float32{1}); s.N != 0 || !s.Mismatched {
		t.Fatalf("length mismatch should yield N=0 and Mismatched, got %+v", s)
	}
	// constant data with error: zero range, see TestCompareConstantField
	s := Compare([]float32{5, 5}, []float32{5, 6})
	if s.Range != 0 || !math.IsNaN(s.NRMSE) {
		t.Fatalf("constant orig: %+v", s)
	}
}

// TestCompareConstantField locks in the Range == 0 semantics: a constant
// original used to report NRMSE = MaxRel = PSNR = 0 even when the
// reconstruction was wrong — indistinguishable from a terrible PSNR and
// easily misread as perfect relative error. Now the relative metrics are
// NaN (undefined: there is no range to normalize by) whenever there IS
// error, and PSNR is +Inf only for an exact reconstruction.
func TestCompareConstantField(t *testing.T) {
	// Exact reconstruction of a constant field: no error at all.
	s := Compare([]float32{3, 3, 3}, []float32{3, 3, 3})
	if s.Range != 0 || s.RMSE != 0 {
		t.Fatalf("exact constant: %+v", s)
	}
	if !math.IsInf(s.PSNR, 1) {
		t.Fatalf("exact constant PSNR = %v, want +Inf", s.PSNR)
	}
	if s.NRMSE != 0 || s.MaxRel != 0 || s.ErrStd != 0 {
		t.Fatalf("exact constant relative metrics should be 0: %+v", s)
	}

	// Constant field with reconstruction error: the absolute metrics are
	// real, the range-normalized ones undefined.
	s = Compare([]float32{3, 3, 3}, []float32{3, 4, 3})
	if s.MaxAbs != 1 {
		t.Fatalf("MaxAbs %v, want 1", s.MaxAbs)
	}
	if s.RMSE == 0 {
		t.Fatalf("RMSE must be nonzero: %+v", s)
	}
	for name, v := range map[string]float64{
		"NRMSE": s.NRMSE, "MaxRel": s.MaxRel, "ErrStd": s.ErrStd, "PSNR": s.PSNR,
	} {
		if !math.IsNaN(v) {
			t.Fatalf("%s = %v for constant field with error, want NaN", name, v)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(100, 10) != 10 || Ratio(100, 0) != 0 {
		t.Fatal("ratio wrong")
	}
}

func TestGBps(t *testing.T) {
	if GBps(2e9, 2) != 1 {
		t.Fatal("GBps wrong")
	}
	if GBps(100, 0) != 0 || GBps(100, -1) != 0 {
		t.Fatal("degenerate GBps")
	}
}

func TestMinMaxAndAbsBound(t *testing.T) {
	mn, mx := MinMax([]float32{3, -1, 7})
	if mn != -1 || mx != 7 {
		t.Fatalf("minmax %g %g", mn, mx)
	}
	if mn, mx := MinMax(nil); mn != 0 || mx != 0 {
		t.Fatal("empty minmax")
	}
	if b := AbsBound(1e-2, []float32{0, 100}); math.Abs(b-1) > 1e-12 {
		t.Fatalf("AbsBound %g", b)
	}
	// constant data falls back to range 1
	if b := AbsBound(1e-2, []float32{5, 5}); math.Abs(b-1e-2) > 1e-15 {
		t.Fatalf("constant AbsBound %g", b)
	}
}

func TestErrAutocorr(t *testing.T) {
	n := 1024
	orig := make([]float32, n)
	stair := make([]float32, n)
	noise := make([]float32, n)
	for i := range orig {
		orig[i] = float32(i) * 0.01
		stair[i] = float32(i/64*64) * 0.01 // constant-block reconstruction
		if i%2 == 0 {
			noise[i] = orig[i] + 0.005
		} else {
			noise[i] = orig[i] - 0.005
		}
	}
	if ac := ErrAutocorr(orig, stair); ac < 0.8 {
		t.Errorf("staircase autocorrelation %g, want near 1", ac)
	}
	if ac := ErrAutocorr(orig, noise); ac > -0.5 {
		t.Errorf("alternating noise autocorrelation %g, want near -1", ac)
	}
	if ErrAutocorr(nil, nil) != 0 || ErrAutocorr(orig, orig[:10]) != 0 {
		t.Error("degenerate inputs")
	}
	if ErrAutocorr(orig, orig) != 0 {
		t.Error("zero error should give zero autocorrelation")
	}
}
