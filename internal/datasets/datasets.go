// Package datasets provides seeded synthetic generators standing in for
// the five application datasets of the hZCCL evaluation (Table I):
// RTM Simulation Setting 1 and 2 (proprietary seismic wavefields), NYX
// (cosmology), CESM-ATM (climate) and Hurricane (weather).
//
// The real datasets are either proprietary (RTM) or multi-GB downloads
// (SDRBench); the generators reproduce the statistics the compressor and
// the homomorphic pipeline selector actually react to:
//
//   - the fraction of exactly-zero / locally-constant regions, which
//     drives constant-block (code-length-0) frequency and hence the
//     hZ-dynamic pipeline mix (paper Table V);
//   - the smooth-component spectrum, which sets delta magnitudes and hence
//     code lengths and compression ratio at each error bound;
//   - the noise floor relative to the value range, which determines where
//     in the 1e-1..1e-4 relative-error-bound sweep blocks stop being
//     constant (the ratio ladder of Table III).
//
// Every generator is deterministic in (dataset, field, length).
package datasets

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Meta describes one synthetic application dataset.
type Meta struct {
	Name   string
	Domain string
	// DefaultLen is the per-field element count used by the experiment
	// harness when none is specified (scaled down from the paper's sizes
	// to suit a single machine).
	DefaultLen int
	// Fields is the number of distinct fields the generator can produce.
	Fields int
}

// Catalog lists the five datasets in the paper's Table I order.
var Catalog = []Meta{
	{Name: "SimSet1", Domain: "Seismic Wave", DefaultLen: 1 << 22, Fields: 8},
	{Name: "SimSet2", Domain: "Seismic Wave", DefaultLen: 1 << 22, Fields: 8},
	{Name: "NYX", Domain: "Cosmology", DefaultLen: 1 << 22, Fields: 6},
	{Name: "CESM-ATM", Domain: "Climate Simu.", DefaultLen: 1 << 22, Fields: 8},
	{Name: "Hurricane", Domain: "Weather Simu.", DefaultLen: 1 << 22, Fields: 8},
}

// Names returns the dataset names in catalog order.
func Names() []string {
	out := make([]string, len(Catalog))
	for i, m := range Catalog {
		out[i] = m.Name
	}
	return out
}

// Lookup returns the Meta for a dataset name.
func Lookup(name string) (Meta, error) {
	for _, m := range Catalog {
		if m.Name == name {
			return m, nil
		}
	}
	return Meta{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// Field generates field f of the named dataset with n elements.
func Field(name string, f, n int) ([]float32, error) {
	if n < 0 {
		return nil, fmt.Errorf("datasets: negative length %d", n)
	}
	switch name {
	case "SimSet1":
		return simSet1(f, n), nil
	case "SimSet2":
		return simSet2(f, n), nil
	case "NYX":
		return nyx(f, n), nil
	case "CESM-ATM":
		return cesmATM(f, n), nil
	case "Hurricane":
		return hurricane(f, n), nil
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// Pair returns the two fields the Table V experiment reduces
// homomorphically for the named dataset. The pairs are chosen to exercise
// the same pipeline mixes the paper reports: NYX → almost all ①,
// Hurricane → almost all ③, CESM-ATM → almost all ④, the RTM settings →
// mixtures.
func Pair(name string, n int) (a, b []float32, err error) {
	a, err = Field(name, 0, n)
	if err != nil {
		return nil, nil, err
	}
	b, err = Field(name, 1, n)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

func rng(name string, field int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", name, field)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// simSet1 models an early reverse-time-migration snapshot: the wavefront
// has only traversed part of the volume, so roughly half the samples are
// exactly zero and the rest hold a high-amplitude oscillatory packet.
// Odd-numbered fields model the very first timesteps, whose residual
// energy sits below typical error bounds (they quantize to constant
// streams — the source of Sim-1's pipeline-①/③ split in Table V).
func simSet1(field, n int) []float32 {
	r := rng("SimSet1", field)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	if field%2 == 1 {
		// Near-silent snapshot: tiny residue, far below eb at any REL.
		for i := range out {
			out[i] = float32(r.NormFloat64() * 1e-7)
		}
		return out
	}
	// Wave packet covering ~46% of the domain.
	start := int(float64(n) * (0.10 + 0.05*r.Float64()))
	width := int(float64(n) * 0.46)
	if start+width > n {
		width = n - start
	}
	carrier := 2 * math.Pi / (160 + 40*r.Float64()) // wavelength ≈ 160-200 samples
	phase := r.Float64() * 2 * math.Pi
	noise := newAR1(r, 0.95, 3.0)
	for i := start; i < start+width; i++ {
		t := float64(i - start)
		env := math.Sin(math.Pi * t / float64(width)) // smooth envelope
		out[i] = float32(env * (1000*math.Sin(carrier*t+phase) + noise.next()))
	}
	return out
}

// simSet2 models a late RTM snapshot: the wavefield fills the volume and
// is dominated by long-wavelength oscillations, giving very high
// compression ratios that persist even at tight bounds (Table III's
// 126→57 ladder). A field-dependent 15% of the domain carries a
// higher-frequency reflection overlay.
func simSet2(field, n int) []float32 {
	r := rng("SimSet2", field)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	// Long-wavelength swells: wavelengths are fractions of the domain so a
	// 32-sample block sees far less than one quantization step at REL
	// 1e-3, keeping ~85% of blocks constant (paper Table V).
	const waves = 5
	freqs := make([]float64, waves)
	phases := make([]float64, waves)
	amps := make([]float64, waves)
	for w := range freqs {
		freqs[w] = 2 * math.Pi / (float64(n) * (0.5 + 0.7*r.Float64()))
		phases[w] = r.Float64() * 2 * math.Pi
		amps[w] = 40 + 30*r.Float64()
	}
	// A reflection overlay with sample-scale detail: even fields carry a
	// narrow one (→ pipeline ③ share), odd fields a wider one (→ the
	// pipeline ② share when reduced as the right operand).
	overlayFrac := 0.02
	if field%2 == 1 {
		overlayFrac = 0.11
	}
	busyStart := int(float64(n) * (0.1 + 0.6*r.Float64()))
	busyEnd := busyStart + int(float64(n)*overlayFrac)
	if busyEnd > n {
		busyEnd = n
	}
	fine := 2 * math.Pi / 90
	for i := range out {
		t := float64(i)
		v := 0.0
		for w := 0; w < waves; w++ {
			v += amps[w] * math.Sin(freqs[w]*t+phases[w])
		}
		if i >= busyStart && i < busyEnd {
			v += 25 * math.Sin(fine*t)
		}
		out[i] = float32(v)
	}
	return out
}

// nyx models a baryon-density field: the exponential of a smooth Gaussian
// process. The range is set by a handful of sharp halos, so at any
// relative bound the absolute bound is enormous compared to the low
// densities filling most of the volume — which is why almost every block
// pair lands in pipeline ① (paper: 99.36%).
func nyx(field, n int) []float32 {
	r := rng("NYX", field)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	g := newAR1(r, 0.999, 0.08)
	for i := range out {
		out[i] = float32(math.Exp(3.2*g.next()) - 1)
	}
	// A few sharp halos dominate the range.
	for h := 0; h < 1+n/(1<<18); h++ {
		c := r.Intn(n)
		peak := 1e5 * (0.5 + r.Float64())
		for d := -40; d <= 40; d++ {
			i := c + d
			if i < 0 || i >= n {
				continue
			}
			out[i] += float32(peak * math.Exp(-float64(d*d)/200))
		}
	}
	return out
}

// cesmATM models an atmosphere variable: strong latitudinal banding plus
// grid-scale variability at ~0.4% of the range. At REL 1e-3 the
// variability sits several quantization steps above the bound, so nearly
// every block is non-constant and reductions go through pipeline ④
// (paper: 88.64%).
func cesmATM(field, n int) []float32 {
	r := rng("CESM-ATM", field)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	band := 2 * math.Pi / (float64(n)/24 + 1)
	phase := r.Float64() * 2 * math.Pi
	noise := newAR1(r, 0.3, 0.55)
	// Polar caps: ~6% of the domain is flat (sea-ice mask), providing the
	// small pipeline-①/②/③ remainder.
	capLen := n * 3 / 100
	for i := range out {
		v := 120*math.Sin(band*float64(i)+phase) + 160
		if i < capLen || i >= n-capLen {
			out[i] = float32(200.0)
			continue
		}
		out[i] = float32(v + noise.next())
	}
	return out
}

// hurricane models paired weather fields: even fields are
// turbulence-dominated (wind speed around the eyewall, fine structure
// everywhere), odd fields are synoptic-scale smooth (pressure). Reducing
// field 0 with field 1 therefore sends nearly every block through
// pipeline ③ — the left operand stays encoded, the right is constant
// (paper: 99.25%).
func hurricane(field, n int) []float32 {
	r := rng("Hurricane", field)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	if field%2 == 1 {
		// Pressure-anomaly field: fluctuations orders of magnitude below
		// the wind field's quantization step, centered on zero so every
		// value quantizes to the same integer (no cell-boundary flicker).
		g := newAR1(r, 0.99, 0.001)
		for i := range out {
			out[i] = float32(0.01 * g.next())
		}
		return out
	}
	eye := float64(n) * (0.4 + 0.2*r.Float64())
	noise := newAR1(r, 0.6, 0.9)
	for i := range out {
		d := math.Abs(float64(i)-eye) / float64(n)
		swirl := 70 * math.Exp(-d*18) // vortex profile
		background := 12 * math.Sin(2*math.Pi*float64(i)/float64(n)*6)
		out[i] = float32(swirl + background + noise.next())
	}
	return out
}

// ar1 is a first-order autoregressive process: x' = a·x + σ·ξ.
type ar1 struct {
	r     *rand.Rand
	a, sd float64
	x     float64
}

func newAR1(r *rand.Rand, a, sd float64) *ar1 { return &ar1{r: r, a: a, sd: sd} }

func (p *ar1) next() float64 {
	p.x = p.a*p.x + p.sd*p.r.NormFloat64()
	return p.x
}

// Quantiles returns the q-quantiles of data (sorted copies; used by tests
// and the dataset summary tool).
func Quantiles(data []float32, qs ...float64) []float64 {
	if len(data) == 0 {
		return make([]float64, len(qs))
	}
	sorted := make([]float64, len(data))
	for i, v := range data {
		sorted[i] = float64(v)
	}
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}
