package datasets

import (
	"fmt"
	"math"
)

// Dimensional variants. The paper's application data is 2D/3D (Table I:
// CESM-ATM 1800×3600 slices, NYX 512³ volumes, Hurricane 100×500×500);
// these generators expose the same statistics with explicit geometry so
// the Lorenzo predictors (Compress2D/Compress3D) have real structure to
// exploit across rows and planes.

// Field2D generates a height×width row-major field for the named dataset.
// The vertical correlation is strong (adjacent rows are nearly identical),
// as in latitude-banded climate fields.
func Field2D(name string, f, height, width int) ([]float32, error) {
	if height < 0 || width < 0 {
		return nil, fmt.Errorf("datasets: negative dims %dx%d", height, width)
	}
	// Base row carries the dataset's 1D statistics.
	base, err := Field(name, f, width)
	if err != nil {
		return nil, err
	}
	r := rng(name+"/2d", f)
	out := make([]float32, height*width)
	rowAmp := make([]float64, height)
	drift := newAR1(r, 0.995, 0.01)
	for i := range rowAmp {
		rowAmp[i] = 1 + drift.next()
	}
	for i := 0; i < height; i++ {
		a := rowAmp[i]
		phase := 0.3 * math.Sin(2*math.Pi*float64(i)/math.Max(1, float64(height)))
		for j := 0; j < width; j++ {
			out[i*width+j] = float32(a*float64(base[j]) + phase)
		}
	}
	return out, nil
}

// Field3D generates a depth×height×width volume (x fastest): stacked 2D
// slices with slow cross-plane evolution, the structure reverse-time
// migration and cosmology snapshots share.
func Field3D(name string, f, depth, height, width int) ([]float32, error) {
	if depth < 0 {
		return nil, fmt.Errorf("datasets: negative depth %d", depth)
	}
	slice, err := Field2D(name, f, height, width)
	if err != nil {
		return nil, err
	}
	r := rng(name+"/3d", f)
	out := make([]float32, depth*height*width)
	evo := newAR1(r, 0.99, 0.005)
	plane := height * width
	for z := 0; z < depth; z++ {
		scale := 1 + evo.next()
		shift := 0.05 * math.Sin(2*math.Pi*float64(z)/math.Max(1, float64(depth)))
		for i := 0; i < plane; i++ {
			out[z*plane+i] = float32(scale*float64(slice[i]) + shift)
		}
	}
	return out, nil
}
