package datasets

import (
	"math"
	"testing"

	"hzccl/internal/fzlight"
	"hzccl/internal/hzdyn"
	"hzccl/internal/metrics"
)

const testLen = 1 << 18

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := Field(name, 0, 10000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Field(name, 0, 10000)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", name, i)
			}
		}
		c, err := Field(name, 1, 10000)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: fields 0 and 1 are identical", name)
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Field("nope", 0, 10); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown lookup accepted")
	}
	if _, err := Field("NYX", 0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestCatalogComplete(t *testing.T) {
	if len(Catalog) != 5 {
		t.Fatalf("want 5 datasets, got %d", len(Catalog))
	}
	for _, m := range Catalog {
		data, err := Field(m.Name, 0, 1024)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(data) != 1024 {
			t.Fatalf("%s: wrong length", m.Name)
		}
		if _, err := Field(m.Name, 0, 0); err != nil {
			t.Fatalf("%s: zero length: %v", m.Name, err)
		}
	}
}

// The generators must reproduce the pipeline-selection profile of the
// paper's Table V (REL 1e-3): NYX nearly all ①, Hurricane nearly all ③,
// CESM-ATM dominated by ④, the RTM settings mixtures of ① with ②/③.
func TestTableVPipelineProfiles(t *testing.T) {
	profile := func(name string) hzdyn.Stats {
		t.Helper()
		a, b, err := Pair(name, testLen)
		if err != nil {
			t.Fatal(err)
		}
		// Shared absolute bound from the pair's combined range, REL 1e-3.
		eb := metrics.AbsBound(1e-3, a)
		if eb2 := metrics.AbsBound(1e-3, b); eb2 > eb {
			eb = eb2
		}
		p := fzlight.Params{ErrorBound: eb}
		ca, err := fzlight.Compress(a, p)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := fzlight.Compress(b, p)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := hzdyn.Add(ca, cb)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := profile("NYX")
	if f := st.Fraction(hzdyn.PipelineBothConstant); f < 0.90 {
		t.Errorf("NYX: pipeline1 fraction %.3f, want > 0.90 (paper 0.9936)", f)
	}

	st = profile("Hurricane")
	if f := st.Fraction(hzdyn.PipelineRightConstant); f < 0.90 {
		t.Errorf("Hurricane: pipeline3 fraction %.3f, want > 0.90 (paper 0.9925)", f)
	}

	st = profile("CESM-ATM")
	if f := st.Fraction(hzdyn.PipelineBothEncoded); f < 0.60 {
		t.Errorf("CESM-ATM: pipeline4 fraction %.3f, want > 0.60 (paper 0.8864)", f)
	}

	st = profile("SimSet1")
	p1 := st.Fraction(hzdyn.PipelineBothConstant)
	p3 := st.Fraction(hzdyn.PipelineRightConstant)
	if p1+p3 < 0.9 || p1 < 0.25 || p3 < 0.25 {
		t.Errorf("SimSet1: p1=%.3f p3=%.3f, want a ①/③ mixture (paper 0.54/0.46)", p1, p3)
	}

	st = profile("SimSet2")
	if f := st.Fraction(hzdyn.PipelineBothConstant); f < 0.5 {
		t.Errorf("SimSet2: pipeline1 fraction %.3f, want > 0.5 (paper 0.8446)", f)
	}
	if f := st.Fraction(hzdyn.PipelineBothConstant); f > 0.995 {
		t.Errorf("SimSet2: pipeline1 fraction %.3f, want a visible non-① share", f)
	}
}

// The compression-ratio ladder must fall as the bound tightens and stay in
// a plausible band at both ends (Table III shape).
func TestRatioLadder(t *testing.T) {
	for _, name := range Names() {
		data, err := Field(name, 0, testLen)
		if err != nil {
			t.Fatal(err)
		}
		var prev float64 = 1e18
		for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
			eb := metrics.AbsBound(rel, data)
			comp, err := fzlight.Compress(data, fzlight.Params{ErrorBound: eb})
			if err != nil {
				t.Fatalf("%s rel=%g: %v", name, rel, err)
			}
			ratio := metrics.Ratio(4*len(data), len(comp))
			if ratio > prev*1.05 {
				t.Errorf("%s: ratio increased when bound tightened (rel=%g: %.1f after %.1f)", name, rel, ratio, prev)
			}
			prev = ratio
			if rel == 1e-1 && ratio < 20 {
				t.Errorf("%s: ratio %.1f at REL 1e-1, want > 20", name, ratio)
			}
			if rel == 1e-4 && (ratio < 2 || ratio > 130) {
				t.Errorf("%s: ratio %.1f at REL 1e-4, want within [2,130]", name, ratio)
			}
		}
	}
}

func TestQuantiles(t *testing.T) {
	data := []float32{5, 1, 4, 2, 3}
	q := Quantiles(data, 0, 0.5, 1)
	if q[0] != 1 || q[1] != 3 || q[2] != 5 {
		t.Fatalf("got %v", q)
	}
	q = Quantiles(nil, 0.5)
	if q[0] != 0 {
		t.Fatalf("empty quantiles: %v", q)
	}
}

func TestDimensionalFields(t *testing.T) {
	f2, err := Field2D("CESM-ATM", 0, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 32*64 {
		t.Fatalf("2D length %d", len(f2))
	}
	// adjacent rows must be strongly correlated (that's the point)
	var diff, mag float64
	for j := 0; j < 64; j++ {
		diff += math.Abs(float64(f2[64+j] - f2[j]))
		mag += math.Abs(float64(f2[j]))
	}
	if diff > 0.2*mag+1 {
		t.Fatalf("rows not correlated: diff %g mag %g", diff, mag)
	}
	f3, err := Field3D("NYX", 0, 4, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) != 4*16*16 {
		t.Fatalf("3D length %d", len(f3))
	}
	// determinism
	g3, err := Field3D("NYX", 0, 4, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f3 {
		if f3[i] != g3[i] {
			t.Fatal("3D field not deterministic")
		}
	}
	if _, err := Field2D("nope", 0, 4, 4); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Field3D("NYX", 0, -1, 4, 4); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := Field2D("NYX", 0, -1, 4); err == nil {
		t.Fatal("negative height accepted")
	}
}
