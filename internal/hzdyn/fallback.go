package hzdyn

import (
	"errors"
	"fmt"

	"hzccl/internal/fzlight"
)

// AddWithFallback homomorphically sums two fZ-light streams and, when the
// quantized sum overflows int32 (ErrOverflow), transparently falls back to
// the traditional decompress-operate-compress workflow: both operands are
// reconstructed, summed in the raw domain and recompressed with the
// geometry recorded in the container header.
//
// An Add overflow implies the summed quantized magnitudes exceed the
// codec's quantization range, so recompressing at the original bound would
// fail too; the fallback therefore widens the error bound by the smallest
// power-of-two factor that makes the sum representable. The widened bound
// is recorded in the result header, so the precision change is
// self-describing (and a later homomorphic Add against unwidened peers
// fails ErrGeometry instead of silently mixing bounds).
//
// fellBack reports which path produced the result. The fallback
// re-quantizes the raw sum, so unlike the homomorphic path it introduces
// one fresh quantization error of at most the (possibly widened) error
// bound — the same contract every DOC round of a C-Coll collective has.
func AddWithFallback(a, b []byte) (sum []byte, fellBack bool, st Stats, err error) {
	sum, st, err = Add(a, b)
	if err == nil || !errors.Is(err, ErrOverflow) {
		return sum, false, st, err
	}
	sum, err = docAdd(a, b)
	return sum, true, st, err
}

// maxWidenings bounds the error-bound doubling loop in docAdd; 64 factors
// of two cover any finite float64 magnitude.
const maxWidenings = 64

// compressWidening compresses via fn, doubling the error bound on each
// ErrRange until the data fits (see AddWithFallback).
func compressWidening(p fzlight.Params, fn func(fzlight.Params) ([]byte, error)) ([]byte, error) {
	for i := 0; i < maxWidenings; i++ {
		out, err := fn(p)
		if !errors.Is(err, fzlight.ErrRange) {
			return out, err
		}
		p.ErrorBound *= 2
	}
	return nil, fmt.Errorf("hzdyn: fallback: %w after widening the error bound %d times", fzlight.ErrRange, maxWidenings)
}

// docAdd is the decompress-operate-compress reference path: it works for
// any pair of streams Add accepts, at DOC cost.
func docAdd(a, b []byte) ([]byte, error) {
	h, err := fzlight.ParseHeader(a)
	if err != nil {
		return nil, fmt.Errorf("hzdyn: fallback: left operand: %w", err)
	}
	p := fzlight.Params{ErrorBound: h.ErrorBound, BlockSize: h.BlockSize, Threads: h.NumChunks}
	if h.Float64 {
		da, err := fzlight.Decompress64(a)
		if err != nil {
			return nil, fmt.Errorf("hzdyn: fallback: left operand: %w", err)
		}
		db, err := fzlight.Decompress64(b)
		if err != nil {
			return nil, fmt.Errorf("hzdyn: fallback: right operand: %w", err)
		}
		if len(da) != len(db) {
			return nil, ErrGeometry
		}
		for i := range da {
			da[i] += db[i]
		}
		return compressWidening(p, func(p fzlight.Params) ([]byte, error) {
			return fzlight.Compress64(da, p)
		})
	}
	da, err := fzlight.Decompress(a)
	if err != nil {
		return nil, fmt.Errorf("hzdyn: fallback: left operand: %w", err)
	}
	db, err := fzlight.Decompress(b)
	if err != nil {
		return nil, fmt.Errorf("hzdyn: fallback: right operand: %w", err)
	}
	if len(da) != len(db) {
		return nil, ErrGeometry
	}
	for i := range da {
		da[i] += db[i]
	}
	return compressWidening(p, func(p fzlight.Params) ([]byte, error) {
		switch h.Version {
		case 2:
			return fzlight.Compress2D(da, h.DataLen/h.Width, h.Width, p)
		case 3:
			plane := h.Width * h.Height
			return fzlight.Compress3D(da, h.DataLen/plane, h.Height, h.Width, p)
		}
		return fzlight.Compress(da, p)
	})
}
