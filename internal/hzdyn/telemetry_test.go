package hzdyn

import (
	"math"
	"testing"

	"hzccl/internal/fzlight"
	"hzccl/internal/telemetry"
)

// fourCaseOperands builds one chunk of four 32-element blocks per operand,
// arranged so the reducer is forced through each pipeline exactly once:
//
//	pair 0: a const,    b const    → ① both-constant
//	pair 1: a const,    b varying  → ② left-constant
//	pair 2: a varying,  b const    → ③ right-constant
//	pair 3: a varying,  b varying  → ④ both-encoded
//
// A block is constant iff every quantized delta in it is zero, including
// the delta across the preceding block boundary, so the varying blocks
// are bumps that return to the operand's base value before a constant
// block follows.
func fourCaseOperands(t *testing.T, eb float64) (a, b []byte) {
	t.Helper()
	const B = 32
	bump := func(i int) float64 {
		// Zero at both block edges, amplitude far above the quantization
		// step in between.
		return math.Sin(math.Pi*float64(i)/float64(B-1)) * 1000 * eb * float64(2+i%3)
	}
	av := make([]float32, 4*B)
	bv := make([]float32, 4*B)
	for i := 0; i < B; i++ {
		av[0*B+i] = 1.0 // pair 0: const
		bv[0*B+i] = 2.0
		av[1*B+i] = 1.0 // pair 1: a const, b bump
		bv[1*B+i] = float32(2.0 + bump(i))
		av[2*B+i] = float32(1.0 + bump(i)) // pair 2: a bump, b const
		bv[2*B+i] = 2.0
		av[3*B+i] = float32(1.0 + bump(i)) // pair 3: both bump
		bv[3*B+i] = float32(2.0 + bump((i+5)%B))
	}
	p := fzlight.Params{ErrorBound: eb, BlockSize: B}
	ca, err := fzlight.Compress(av, p)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fzlight.Compress(bv, p)
	if err != nil {
		t.Fatal(err)
	}
	return ca, cb
}

// TestPipelineSelectionFourCases drives the heuristic through each of the
// paper's four cases and asserts both the returned Stats and the global
// telemetry histogram record exactly one block pair per case.
func TestPipelineSelectionFourCases(t *testing.T) {
	const eb = 1e-3
	ca, cb := fourCaseOperands(t, eb)

	before := telemetry.Capture()
	sum, st, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}

	if st.Blocks != 4 {
		t.Fatalf("blocks = %d, want 4", st.Blocks)
	}
	for p := PipelineBothConstant; p <= PipelineBothEncoded; p++ {
		if st.Pipeline[p] != 1 {
			t.Fatalf("pipeline %d count = %d, want 1 (stats %+v)", p, st.Pipeline[p], st)
		}
	}

	d := telemetry.Capture().Delta(before)
	ph := d.Histograms["hzdyn.pipeline_case"]
	if ph.Count != 4 {
		t.Fatalf("telemetry pipeline_case count = %d, want 4", ph.Count)
	}
	want := map[string]int64{"1": 1, "2": 1, "3": 1, "4": 1}
	got := map[string]int64{}
	var sumCases int64
	for _, bkt := range ph.Buckets {
		got[bkt.Le] = bkt.Count
		sumCases += bkt.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Fatalf("telemetry case le=%s count = %d, want %d (buckets %v)", le, got[le], n, ph.Buckets)
		}
	}
	if blocks := d.Counters["hzdyn.blocks"]; sumCases != blocks {
		t.Fatalf("case counts sum %d != hzdyn.blocks %d", sumCases, blocks)
	}
	if calls := d.Counters["hzdyn.add.calls"]; calls != 1 {
		t.Fatalf("hzdyn.add.calls = %d, want 1", calls)
	}

	// The homomorphic sum must still decompress to a+b within 2·eb.
	da, err := fzlight.Decompress(ca)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fzlight.Decompress(cb)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fzlight.Decompress(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if diff := math.Abs(float64(ds[i]) - float64(da[i]) - float64(db[i])); diff > 2*eb+1e-9 {
			t.Fatalf("sum error %g at %d exceeds 2·eb", diff, i)
		}
	}
}

// StaticAdd routes every pair through pipeline ④; the telemetry histogram
// must reflect that.
func TestStaticAddRecordsAllBothEncoded(t *testing.T) {
	ca, cb := fourCaseOperands(t, 1e-3)
	before := telemetry.Capture()
	if _, err := StaticAdd(ca, cb); err != nil {
		t.Fatal(err)
	}
	d := telemetry.Capture().Delta(before)
	ph := d.Histograms["hzdyn.pipeline_case"]
	if ph.Count != 4 {
		t.Fatalf("pipeline_case count = %d, want 4", ph.Count)
	}
	for _, bkt := range ph.Buckets {
		if bkt.Le != "4" {
			t.Fatalf("static add used pipeline le=%s (buckets %v), want only 4", bkt.Le, ph.Buckets)
		}
	}
}

// Quantized-sum overflow must be tallied as a fallback.
func TestOverflowFallbackCounter(t *testing.T) {
	const eb = 1e-3
	// q ≈ 3e8 per value: one doubling stays in int32 range, ×8 overflows.
	vals := make([]float32, 64)
	for i := range vals {
		vals[i] = 6e5
	}
	c, err := fzlight.Compress(vals, fzlight.Params{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	before := telemetry.Capture()
	if _, err := ScaleInt(c, 8); err != ErrOverflow {
		t.Fatalf("ScaleInt err = %v, want ErrOverflow", err)
	}
	d := telemetry.Capture().Delta(before)
	if got := d.Counters["hzdyn.overflow_fallbacks"]; got != 1 {
		t.Fatalf("overflow_fallbacks = %d, want 1", got)
	}
}
