package hzdyn

import (
	"math/rand"
	"testing"

	"hzccl/internal/fzlight"
)

// Homomorphic reduction runs on buffers received from the network, so it
// must reject corruption gracefully: errors, never panics.

func TestAddRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float32, 800)
	for i := range data {
		data[i] = rng.Float32()
	}
	good, err := fzlight.Compress(data, fzlight.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1000; trial++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		_, _, _ = Add(good, buf)
		_, _, _ = Add(buf, good)
	}
}

func TestAddCorruptedPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]float32, 2000)
	for i := range data {
		data[i] = rng.Float32() * 10
	}
	p := fzlight.Params{ErrorBound: 1e-3, Threads: 2}
	a, err := fzlight.Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1500; trial++ {
		bad := append([]byte(nil), a...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := 40 + rng.Intn(len(bad)-40)
			bad[pos] ^= byte(1 + rng.Intn(255))
		}
		// must not panic regardless of which operand is corrupt
		_, _, _ = Add(a, bad)
		_, _, _ = Add(bad, a)
		_, _ = ScaleInt(bad, 3)
	}
}
