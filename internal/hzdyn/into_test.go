package hzdyn

// Tests for the allocation-free Into API: AddInto/ScaleIntInto must be
// byte-for-byte drop-ins for Add/ScaleInt (on 1D and on the 2D fallback
// path), reject short destinations, and — in the single-chunk steady
// state the ring collectives run — perform zero allocations per op.

import (
	"bytes"
	"errors"
	"testing"

	"hzccl/internal/fzlight"
)

// AddInto must produce exactly the container Add allocates, across the
// single-chunk fast path, the multi-chunk compaction path, and the empty
// input.
func TestAddIntoMatchesAdd(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 1000, 4097} {
		for _, threads := range []int{1, 4} {
			a := smooth(n, 100+int64(n), 1)
			b := smooth(n, 200+int64(n), 2)
			p := fzlight.Params{ErrorBound: 1e-3, Threads: threads}
			ca := compress(t, a, p)
			cb := compress(t, b, p)
			want, wantStats, err := Add(ca, cb)
			if err != nil {
				t.Fatalf("Add(n=%d,t=%d): %v", n, threads, err)
			}
			dst := make([]byte, AddBound(len(ca), len(cb)))
			m, stats, err := AddInto(dst, ca, cb)
			if err != nil {
				t.Fatalf("AddInto(n=%d,t=%d): %v", n, threads, err)
			}
			if !bytes.Equal(dst[:m], want) {
				t.Fatalf("n=%d t=%d: AddInto output differs from Add (%d vs %d bytes)",
					n, threads, m, len(want))
			}
			if stats != wantStats {
				t.Fatalf("n=%d t=%d: AddInto stats %+v differ from Add stats %+v",
					n, threads, stats, wantStats)
			}
		}
	}
}

// The 2D container has no lite header, so AddInto falls back to the
// allocating chunk path — the result must still match Add exactly.
func TestAddIntoMatchesAdd2D(t *testing.T) {
	rows, cols := 64, 65
	a := smooth(rows*cols, 11, 1)
	b := smooth(rows*cols, 12, 1)
	p := fzlight.Params{ErrorBound: 1e-3}
	ca, err := fzlight.Compress2D(a, rows, cols, p)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fzlight.Compress2D(b, rows, cols, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, AddBound(len(ca), len(cb)))
	m, _, err := AddInto(dst, ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:m], want) {
		t.Fatalf("2D AddInto output differs from Add (%d vs %d bytes)", m, len(want))
	}
}

// A destination below AddBound must be rejected before any write.
func TestAddIntoShortOutput(t *testing.T) {
	a := smooth(1000, 1, 1)
	b := smooth(1000, 2, 1)
	p := fzlight.Params{ErrorBound: 1e-3}
	ca := compress(t, a, p)
	cb := compress(t, b, p)
	dst := make([]byte, AddBound(len(ca), len(cb))-1)
	if _, _, err := AddInto(dst, ca, cb); !errors.Is(err, fzlight.ErrShortOutput) {
		t.Fatalf("short dst: got %v, want ErrShortOutput", err)
	}
}

// ScaleIntInto must match ScaleInt byte-for-byte on 1D containers.
func TestScaleIntIntoMatchesScaleInt(t *testing.T) {
	for _, n := range []int{1, 32, 1000, 4097} {
		for _, threads := range []int{1, 4} {
			for _, k := range []int32{0, 1, 3, -2} {
				data := smooth(n, 300+int64(n), 1)
				p := fzlight.Params{ErrorBound: 1e-3, Threads: threads}
				comp := compress(t, data, p)
				want, err := ScaleInt(comp, k)
				if err != nil {
					t.Fatalf("ScaleInt(n=%d,t=%d,k=%d): %v", n, threads, k, err)
				}
				bound, err := ScaleBound(comp)
				if err != nil {
					t.Fatal(err)
				}
				dst := make([]byte, bound)
				m, err := ScaleIntInto(dst, comp, k)
				if err != nil {
					t.Fatalf("ScaleIntInto(n=%d,t=%d,k=%d): %v", n, threads, k, err)
				}
				if !bytes.Equal(dst[:m], want) {
					t.Fatalf("n=%d t=%d k=%d: ScaleIntInto output differs from ScaleInt",
						n, threads, k)
				}
			}
		}
	}
}

// The single-chunk steady state — one homomorphic add per ring step —
// must not allocate once the scratch pools are warm. scripts/bench.sh
// gates CI on the benchmark twin of this assertion.
func TestAddIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	a := smooth(1<<14, 21, 1)
	b := smooth(1<<14, 22, 2)
	p := fzlight.Params{ErrorBound: 1e-3}
	ca := compress(t, a, p)
	cb := compress(t, b, p)
	dst := make([]byte, AddBound(len(ca), len(cb)))
	for i := 0; i < 4; i++ {
		if _, _, err := AddInto(dst, ca, cb); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := AddInto(dst, ca, cb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AddInto allocates %v objects/op, want 0", allocs)
	}
}

// ScaleIntInto follows the same discipline as AddInto: the single-chunk
// steady state must not allocate at all once the pools are warm.
func TestScaleIntIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	data := smooth(1<<14, 23, 1)
	p := fzlight.Params{ErrorBound: 1e-3}
	comp := compress(t, data, p)
	bound, err := ScaleBound(comp)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, bound)
	for i := 0; i < 4; i++ {
		if _, err := ScaleIntInto(dst, comp, 3); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ScaleIntInto(dst, comp, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScaleIntInto allocates %v objects/op, want 0", allocs)
	}
}

// The multi-chunk path pools its index/error scratch: the only per-call
// allocations left are the per-chunk goroutine spawns, so the steady
// state must stay within a small per-chunk budget instead of the four
// fresh slices it used to allocate every call.
func TestScaleIntIntoMultiChunkScratchPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	data := smooth(1<<14, 24, 1)
	p := fzlight.Params{ErrorBound: 1e-3, Threads: 4}
	comp := compress(t, data, p)
	h, err := fzlight.ParseHeaderLite(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumChunks < 2 {
		t.Fatalf("want a multi-chunk container, got %d chunks", h.NumChunks)
	}
	bound, err := ScaleBound(comp)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, bound)
	for i := 0; i < 4; i++ {
		if _, err := ScaleIntInto(dst, comp, 3); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ScaleIntInto(dst, comp, 3); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: one closure allocation per chunk goroutine plus slack for
	// the WaitGroup escape; the unpooled version cost 4 extra slices.
	budget := float64(2*h.NumChunks + 2)
	if allocs > budget {
		t.Fatalf("multi-chunk ScaleIntInto allocates %v objects/op, want <= %v (scratch not pooled?)", allocs, budget)
	}
}
