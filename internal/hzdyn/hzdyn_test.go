package hzdyn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hzccl/internal/fzlight"
)

func smooth(n int, seed int64, scale float64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.01
		out[i] = float32(scale * (math.Sin(float64(i)*0.02) + v))
	}
	return out
}

func compress(t *testing.T, data []float32, p fzlight.Params) []byte {
	t.Helper()
	c, err := fzlight.Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func decompress(t *testing.T, c []byte) []float32 {
	t.Helper()
	d, err := fzlight.Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The central homomorphism theorem: decompressing the homomorphic sum is
// bit-identical to adding the two decompressed streams in the quantized
// domain. We verify value-level equality of 2eb·(qa+qb) against the
// quantized sum, which is exact because both sides compute the same
// integer before one float multiplication.
func TestHomomorphismExact(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 1000, 4097} {
		for _, threads := range []int{1, 4} {
			a := smooth(n, 10+int64(n), 1)
			b := smooth(n, 20+int64(n), 2)
			p := fzlight.Params{ErrorBound: 1e-3, Threads: threads}
			ca := compress(t, a, p)
			cb := compress(t, b, p)
			sum, stats, err := Add(ca, cb)
			if err != nil {
				t.Fatalf("n=%d threads=%d: %v", n, threads, err)
			}
			got := decompress(t, sum)
			da := decompress(t, ca)
			db := decompress(t, cb)
			for i := range got {
				// Recover the quantized integers from the reconstructions
				// (they are exact up to float32 rounding, so Round restores
				// them), then compare in the integer domain.
				qa := math.Round(float64(da[i]) / (2 * 1e-3))
				qb := math.Round(float64(db[i]) / (2 * 1e-3))
				want := float32(2 * 1e-3 * (qa + qb))
				if got[i] != want {
					t.Fatalf("n=%d i=%d: got %v want %v", n, i, got[i], want)
				}
			}
			if n > 0 && stats.Blocks == 0 {
				t.Fatal("no blocks counted")
			}
		}
	}
}

// Against the DOC reference: Add(C(a), C(b)) must decompress to the same
// values as compress(decompress(C(a)) + decompress(C(b))) with zero
// additional quantization error — in fact the homomorphic result is
// *better* because DOC re-quantizes.
func TestNoAdditionalError(t *testing.T) {
	a := smooth(5000, 1, 1)
	b := smooth(5000, 2, 1)
	eb := 1e-3
	p := fzlight.Params{ErrorBound: eb, Threads: 3}
	ca := compress(t, a, p)
	cb := compress(t, b, p)
	sum, _, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got := decompress(t, sum)
	for i := range got {
		exact := float64(a[i]) + float64(b[i])
		if d := math.Abs(float64(got[i]) - exact); d > 2*eb+1e-6 {
			t.Fatalf("i=%d: homomorphic sum error %g exceeds 2·eb", i, d)
		}
	}
}

func TestStaticAddMatchesDynamic(t *testing.T) {
	a := smooth(3000, 3, 1)
	b := smooth(3000, 4, 5)
	p := fzlight.Params{ErrorBound: 1e-2, Threads: 2}
	ca := compress(t, a, p)
	cb := compress(t, b, p)
	dyn, _, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StaticAdd(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dyn, st) {
		t.Fatal("dynamic and static homomorphic adds produced different streams")
	}
}

func TestCommutativity(t *testing.T) {
	a := smooth(2000, 5, 1)
	b := smooth(2000, 6, 3)
	p := fzlight.Params{ErrorBound: 1e-3}
	ca := compress(t, a, p)
	cb := compress(t, b, p)
	ab, _, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	ba, _, err := Add(cb, ca)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, ba) {
		t.Fatal("homomorphic add is not commutative")
	}
}

func TestAssociativityInValues(t *testing.T) {
	p := fzlight.Params{ErrorBound: 1e-3, Threads: 2}
	a := compress(t, smooth(1500, 7, 1), p)
	b := compress(t, smooth(1500, 8, 2), p)
	c := compress(t, smooth(1500, 9, 3), p)
	ab, _, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	abc1, _, err := Add(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, _, err := Add(b, c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, _, err := Add(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(abc1, abc2) {
		t.Fatal("homomorphic add is not associative")
	}
}

func TestPipelineSelection(t *testing.T) {
	n := 4096
	zero := make([]float32, n)
	flat := make([]float32, n) // constant after quantization
	for i := range flat {
		flat[i] = 7
	}
	wavy := smooth(n, 11, 100) // non-constant blocks at eb=1e-4
	p := fzlight.Params{ErrorBound: 1e-4}

	cz := compress(t, zero, p)
	cf := compress(t, flat, p)
	cw := compress(t, wavy, p)

	_, st, err := Add(cz, cf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pipeline[PipelineBothConstant] != st.Blocks {
		t.Fatalf("constant+constant should be all pipeline 1, got %+v", st)
	}
	_, st, err = Add(cz, cw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fraction(PipelineLeftConstant) < 0.9 {
		t.Fatalf("zero+wavy should be mostly pipeline 2, got %+v", st)
	}
	_, st, err = Add(cw, cz)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fraction(PipelineRightConstant) < 0.9 {
		t.Fatalf("wavy+zero should be mostly pipeline 3, got %+v", st)
	}
	_, st, err = Add(cw, cw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fraction(PipelineBothEncoded) < 0.9 {
		t.Fatalf("wavy+wavy should be mostly pipeline 4, got %+v", st)
	}
}

func TestGeometryMismatch(t *testing.T) {
	a := smooth(1000, 12, 1)
	ca := compress(t, a, fzlight.Params{ErrorBound: 1e-3})
	cases := [][]byte{
		compress(t, a, fzlight.Params{ErrorBound: 1e-4}),             // eb differs
		compress(t, a, fzlight.Params{ErrorBound: 1e-3, Threads: 2}), // chunks differ
		compress(t, a, fzlight.Params{ErrorBound: 1e-3, BlockSize: 64}),
		compress(t, a[:999], fzlight.Params{ErrorBound: 1e-3}), // length differs
	}
	for i, cb := range cases {
		if _, _, err := Add(ca, cb); !errors.Is(err, ErrGeometry) {
			t.Errorf("case %d: want ErrGeometry, got %v", i, err)
		}
	}
}

func TestCorruptOperand(t *testing.T) {
	a := compress(t, smooth(500, 13, 1), fzlight.Params{ErrorBound: 1e-3})
	if _, _, err := Add(a[:8], a); err == nil {
		t.Error("truncated left operand accepted")
	}
	if _, _, err := Add(a, a[:8]); err == nil {
		t.Error("truncated right operand accepted")
	}
}

func TestScaleInt(t *testing.T) {
	a := smooth(3000, 14, 1)
	p := fzlight.Params{ErrorBound: 1e-3, Threads: 2}
	ca := compress(t, a, p)
	for _, k := range []int32{0, 1, 2, 7, -3} {
		scaled, err := ScaleInt(ca, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got := decompress(t, scaled)
		base := decompress(t, ca)
		for i := range got {
			want := float64(base[i]) * float64(k)
			if math.Abs(float64(got[i])-want) > 1e-5*math.Abs(want)+1e-9 {
				t.Fatalf("k=%d i=%d: got %v want %v", k, i, got[i], want)
			}
		}
	}
}

func TestScaleIntOverflow(t *testing.T) {
	a := smooth(100, 15, 100)
	ca := compress(t, a, fzlight.Params{ErrorBound: 1e-6})
	if _, err := ScaleInt(ca, math.MaxInt32); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
}

func TestRepeatedAddsMatchDirectSum(t *testing.T) {
	// Simulates what a ring reduction does: fold K streams pairwise.
	const K = 16
	n := 2048
	eb := 1e-3
	p := fzlight.Params{ErrorBound: eb, Threads: 2}
	exact := make([]float64, n)
	var acc []byte
	for k := 0; k < K; k++ {
		data := smooth(n, 100+int64(k), 1)
		for i, v := range data {
			exact[i] += float64(v)
		}
		c := compress(t, data, p)
		if acc == nil {
			acc = c
			continue
		}
		var err error
		acc, _, err = Add(acc, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	got := decompress(t, acc)
	for i := range got {
		if d := math.Abs(float64(got[i]) - exact[i]); d > K*eb+1e-5 {
			t.Fatalf("i=%d: folded sum error %g exceeds K·eb=%g", i, d, K*eb)
		}
	}
}

// Property-based: homomorphic addition equals value-wise addition of the
// reconstructions, for arbitrary in-range inputs.
func TestPropertyHomomorphism(t *testing.T) {
	f := func(raw []float32, seed uint8) bool {
		clean := make([]float32, 0, len(raw))
		for _, v := range raw {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) || math.Abs(f64) > 1e3 {
				continue
			}
			clean = append(clean, v)
		}
		other := make([]float32, len(clean))
		rng := rand.New(rand.NewSource(int64(seed)))
		for i := range other {
			other[i] = float32(rng.NormFloat64() * 10)
		}
		p := fzlight.Params{ErrorBound: 1e-2, Threads: 1 + int(seed%3)}
		ca, err := fzlight.Compress(clean, p)
		if err != nil {
			return false
		}
		cb, err := fzlight.Compress(other, p)
		if err != nil {
			return false
		}
		sum, _, err := Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := fzlight.Decompress(sum)
		if err != nil {
			return false
		}
		da, _ := fzlight.Decompress(ca)
		db, _ := fzlight.Decompress(cb)
		for i := range got {
			want := float64(da[i]) + float64(db[i])
			if math.Abs(float64(got[i])-want) > 1e-6*math.Abs(want)+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
