//go:build race

package hzdyn

// raceEnabled reports that this build runs under the race detector,
// whose instrumentation allocates and distorts AllocsPerRun counts.
const raceEnabled = true
