//go:build !race

package hzdyn

const raceEnabled = false
