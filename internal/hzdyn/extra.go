package hzdyn

import "errors"

// This file extends the reducer beyond the paper's 'sum' example, in the
// direction its future-work section sketches: any linear operation on the
// quantized domain is homomorphic in the fZ-light format.

// ErrNoOperands means Fold was called with an empty operand list. It is a
// usage error, deliberately distinct from the stream-corruption class
// (fzlight.ErrCorrupt): callers that triage corrupt data — the degradation
// ladder in particular — must not mistake an empty fold for bad bytes.
var ErrNoOperands = errors.New("hzdyn: fold of zero operands")

// Sub homomorphically subtracts b from a:
// Decompress(Sub(a,b)) == Decompress(a) − Decompress(b) exactly in the
// quantized domain. Implemented as a + (−1)·b; the negation shares the
// Add fast paths because only sign bits change. A b whose quantized
// outlier is exactly MinInt32 cannot be negated in int32 and surfaces as
// ErrOverflow rather than wrapping.
func Sub(a, b []byte) ([]byte, Stats, error) {
	nb, err := ScaleInt(b, -1)
	if err != nil {
		return nil, Stats{}, err
	}
	return Add(a, nb)
}

// Fold reduces many compressed streams into one with pairwise homomorphic
// additions, accumulating pipeline statistics — the pattern a rank uses
// when stacking locally buffered contributions. At least one operand is
// required; an empty list returns ErrNoOperands.
func Fold(streams [][]byte) ([]byte, Stats, error) {
	var total Stats
	if len(streams) == 0 {
		return nil, total, ErrNoOperands
	}
	acc := streams[0]
	for _, s := range streams[1:] {
		sum, st, err := Add(acc, s)
		if err != nil {
			return nil, total, err
		}
		total.add(st)
		acc = sum
	}
	return acc, total, nil
}
