package hzdyn

import "hzccl/internal/fzlight"

// This file extends the reducer beyond the paper's 'sum' example, in the
// direction its future-work section sketches: any linear operation on the
// quantized domain is homomorphic in the fZ-light format.

// Sub homomorphically subtracts b from a:
// Decompress(Sub(a,b)) == Decompress(a) − Decompress(b) exactly in the
// quantized domain. Implemented as a + (−1)·b; the negation shares the
// Add fast paths because only sign bits change.
func Sub(a, b []byte) ([]byte, Stats, error) {
	nb, err := ScaleInt(b, -1)
	if err != nil {
		return nil, Stats{}, err
	}
	return Add(a, nb)
}

// Fold reduces many compressed streams into one with pairwise homomorphic
// additions, accumulating pipeline statistics — the pattern a rank uses
// when stacking locally buffered contributions. At least one operand is
// required.
func Fold(streams [][]byte) ([]byte, Stats, error) {
	var total Stats
	if len(streams) == 0 {
		return nil, total, fzlight.ErrCorrupt
	}
	acc := streams[0]
	for _, s := range streams[1:] {
		sum, st, err := Add(acc, s)
		if err != nil {
			return nil, total, err
		}
		total.add(st)
		acc = sum
	}
	return acc, total, nil
}
