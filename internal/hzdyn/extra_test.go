package hzdyn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hzccl/internal/fzlight"
)

func TestSub(t *testing.T) {
	a := smooth(3000, 20, 2)
	b := smooth(3000, 21, 1)
	p := fzlight.Params{ErrorBound: 1e-3, Threads: 2}
	ca := compress(t, a, p)
	cb := compress(t, b, p)
	diff, _, err := Sub(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got := decompress(t, diff)
	da := decompress(t, ca)
	db := decompress(t, cb)
	for i := range got {
		want := float64(da[i]) - float64(db[i])
		if d := math.Abs(float64(got[i]) - want); d > 1e-6*math.Abs(want)+1e-7 {
			t.Fatalf("i=%d: got %v want %v", i, got[i], want)
		}
	}
}

func TestSubSelfIsZero(t *testing.T) {
	a := smooth(2000, 22, 3)
	ca := compress(t, a, fzlight.Params{ErrorBound: 1e-2})
	diff, _, err := Sub(ca, ca)
	if err != nil {
		t.Fatal(err)
	}
	got := decompress(t, diff)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("a-a != 0 at %d: %v", i, v)
		}
	}
	// and the result is maximally compressed (all-constant blocks)
	st, err := fzlight.Stats(diff)
	if err != nil {
		t.Fatal(err)
	}
	if st.ConstantBlocks != st.Blocks {
		t.Fatalf("self-difference not all-constant: %d/%d", st.ConstantBlocks, st.Blocks)
	}
}

func TestFold(t *testing.T) {
	const k = 5
	n := 2048
	p := fzlight.Params{ErrorBound: 1e-3}
	exact := make([]float64, n)
	streams := make([][]byte, k)
	for s := 0; s < k; s++ {
		data := smooth(n, 30+int64(s), 1)
		for i, v := range data {
			exact[i] += float64(v)
		}
		streams[s] = compress(t, data, p)
	}
	sum, st, err := Fold(streams)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks == 0 {
		t.Fatal("no stats accumulated")
	}
	got := decompress(t, sum)
	for i := range got {
		if d := math.Abs(float64(got[i]) - exact[i]); d > k*1e-3+1e-5 {
			t.Fatalf("fold error %g at %d", d, i)
		}
	}
	// single operand: identity
	one, _, err := Fold(streams[:1])
	if err != nil {
		t.Fatal(err)
	}
	if string(one) != string(streams[0]) {
		t.Fatal("single-operand fold changed the stream")
	}
	if _, _, err := Fold(nil); err == nil {
		t.Fatal("empty fold accepted")
	}
}

// An empty fold is a usage error, not data corruption: it must surface as
// the typed ErrNoOperands and stay out of the fzlight.ErrCorrupt class so
// the degradation ladder never treats it as a corrupt stream.
func TestFoldEmptyIsTypedUsageError(t *testing.T) {
	_, _, err := Fold(nil)
	if !errors.Is(err, ErrNoOperands) {
		t.Fatalf("Fold(nil): got %v, want ErrNoOperands", err)
	}
	if errors.Is(err, fzlight.ErrCorrupt) {
		t.Fatalf("Fold(nil) error %v matches fzlight.ErrCorrupt; must stay out of the corruption class", err)
	}
	if _, _, err := Fold([][]byte{}); !errors.Is(err, ErrNoOperands) {
		t.Fatalf("Fold(empty): got %v, want ErrNoOperands", err)
	}
}

// Sub negates its right operand in int32; a quantized outlier of exactly
// MinInt32 has no int32 negation. The scale kernel must widen and report
// ErrOverflow instead of wrapping back to MinInt32 and corrupting the
// difference silently.
func TestSubNegationOverflow(t *testing.T) {
	// Quantized outlier 2^28 (eb=0.5 → code = round(v) = 2^28, inside the
	// 2^29 quantizer limit), scaled by −8 to land exactly on MinInt32.
	v := []float32{1 << 28}
	p := fzlight.Params{ErrorBound: 0.5}
	c := compress(t, v, p)
	cmin, err := ScaleInt(c, -8)
	if err != nil {
		t.Fatalf("scaling to MinInt32 must fit: %v", err)
	}
	// Sanity: the MinInt32 stream itself is valid and decodes exactly.
	if got := decompress(t, cmin); got[0] != float32(math.MinInt32) {
		t.Fatalf("MinInt32 stream decodes to %v", got[0])
	}
	if _, _, err := Sub(c, cmin); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Sub with MinInt32-coded operand: got %v, want ErrOverflow", err)
	}
}

// The 2D Lorenzo predictor is linear, so version-2 containers must be
// exactly as homomorphic as 1D ones.
func TestHomomorphicAdd2D(t *testing.T) {
	h, w := 64, 48
	a := make([]float32, h*w)
	b := make([]float32, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			a[i*w+j] = float32(math.Sin(float64(i)*0.1) * math.Cos(float64(j)*0.1) * 5)
			b[i*w+j] = float32(float64(i)*0.02 + float64(j)*0.03)
		}
	}
	p := fzlight.Params{ErrorBound: 1e-3, Threads: 3}
	ca, err := fzlight.Compress2D(a, h, w, p)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fzlight.Compress2D(b, h, w, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, st, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks == 0 {
		t.Fatal("no blocks")
	}
	got, err := fzlight.Decompress(sum)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := fzlight.Decompress(ca)
	db, _ := fzlight.Decompress(cb)
	for i := range got {
		want := float64(da[i]) + float64(db[i])
		if d := math.Abs(float64(got[i]) - want); d > 1e-6*math.Abs(want)+1e-7 {
			t.Fatalf("2D homomorphism broken at %d: got %v want %v", i, got[i], want)
		}
	}
	// 1D and 2D containers of the same data must NOT mix.
	c1, err := fzlight.Compress(a, fzlight.Params{ErrorBound: 1e-3, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Add(ca, c1); err == nil {
		t.Fatal("mixed 1D/2D geometry accepted")
	}
	// ScaleInt on 2D streams
	scaled, err := ScaleInt(ca, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := fzlight.Decompress(scaled)
	for i := range ds {
		want := 2 * float64(da[i])
		if d := math.Abs(float64(ds[i]) - want); d > 1e-6*math.Abs(want)+1e-7 {
			t.Fatalf("2D scale broken at %d", i)
		}
	}
}

// smooth64 builds a double-precision field for the float64 tests.
func smooth64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 1e-7
		out[i] = math.Sin(float64(i)*0.001) + v
	}
	return out
}

func TestCompress64Homomorphic(t *testing.T) {
	a := smooth64(4096, 3)
	b := smooth64(4096, 4)
	p := fzlight.Params{ErrorBound: 1e-9, Threads: 2}
	ca, err := fzlight.Compress64(a, p)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fzlight.Compress64(b, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, _, err := Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fzlight.Decompress64(sum)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := fzlight.Decompress64(ca)
	db, _ := fzlight.Decompress64(cb)
	for i := range got {
		want := da[i] + db[i]
		if d := math.Abs(got[i] - want); d > 1e-12*math.Abs(want)+1e-15 {
			t.Fatalf("float64 homomorphism broken at %d: got %v want %v", i, got[i], want)
		}
	}
	// mixing precisions must be rejected
	a32 := make([]float32, 4096)
	for i, v := range a {
		a32[i] = float32(v)
	}
	c32, err := fzlight.Compress(a32, fzlight.Params{ErrorBound: 1e-9, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Add(ca, c32); err == nil {
		t.Fatal("mixed-precision homomorphic add accepted")
	}
}
