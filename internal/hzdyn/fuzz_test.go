package hzdyn

import (
	"math"
	"testing"

	"hzccl/internal/floatbytes"
	"hzccl/internal/fzlight"
)

// FuzzAdd feeds arbitrary byte pairs to the homomorphic reducer: it must
// never panic, and whenever it succeeds the result must itself decompress.
func FuzzAdd(f *testing.F) {
	data := []float32{1, -2, 3, -4, 5, -6, 7, -8}
	a, err := fzlight.Compress(data, fzlight.Params{ErrorBound: 1e-2})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(a, a)
	f.Add(a, []byte{})
	f.Add([]byte("FZL1junk"), a)
	decodes := func(comp []byte) error {
		h, err := fzlight.ParseHeader(comp)
		if err != nil {
			return err
		}
		if h.Float64 {
			_, err = fzlight.Decompress64(comp)
		} else {
			_, err = fzlight.Decompress(comp)
		}
		return err
	}
	f.Fuzz(func(t *testing.T, x, y []byte) {
		sum, _, err := Add(x, y)
		if err != nil {
			return
		}
		if err := decodes(sum); err != nil {
			t.Fatalf("Add succeeded but its output does not decompress: %v", err)
		}
		if s, err := ScaleInt(x, 3); err == nil {
			// scaled output must also stay decodable
			if err := decodes(s); err != nil {
				t.Fatalf("ScaleInt output does not decompress: %v", err)
			}
		}
	})
}

// FuzzHomomorphism checks the central invariant on arbitrary float inputs:
// the homomorphic sum equals the sum of reconstructions.
func FuzzHomomorphism(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 64, 64}, []byte{0, 0, 0, 64, 0, 0, 128, 64})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		va := floatbytes.Floats(rawA)
		vb := floatbytes.Floats(rawB)
		n := len(va)
		if len(vb) < n {
			n = len(vb)
		}
		clean := func(v []float32) []float32 {
			out := make([]float32, 0, n)
			for _, x := range v[:n] {
				f64 := float64(x)
				if math.IsNaN(f64) || math.IsInf(f64, 0) || math.Abs(f64) > 1e4 {
					x = 0
				}
				out = append(out, x)
			}
			return out
		}
		a, b := clean(va), clean(vb)
		p := fzlight.Params{ErrorBound: 1e-2}
		ca, err := fzlight.Compress(a, p)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := fzlight.Compress(b, p)
		if err != nil {
			t.Fatal(err)
		}
		sum, _, err := Add(ca, cb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fzlight.Decompress(sum)
		if err != nil {
			t.Fatal(err)
		}
		da, _ := fzlight.Decompress(ca)
		db, _ := fzlight.Decompress(cb)
		for i := range got {
			want := float64(da[i]) + float64(db[i])
			// Tolerance scales with the operand magnitudes: under
			// cancellation the homomorphic sum (exact in the quantized
			// domain) is *more* accurate than adding the two float32
			// reconstructions, which each carry an ulp of their own size.
			ulps := (math.Abs(float64(da[i])) + math.Abs(float64(db[i]))) * math.Pow(2, -22)
			if d := math.Abs(float64(got[i]) - want); d > ulps+1e-6 {
				t.Fatalf("homomorphism violated at %d: got %v want %v", i, got[i], want)
			}
		}
	})
}
